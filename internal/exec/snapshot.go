package exec

import (
	"bytes"
	"errors"
	"fmt"

	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/wasm"
)

// Snapshot is a frozen image of one instance's mutable state: guest
// memory (plus the host reserve), memory size, globals, the indirect
// call table, the MTE tag image and generator state, the PAC instance
// keys, and the §7.2/§7.4 accounting needed to make a restored instance
// indistinguishable from the one captured. Snapshots are immutable once
// taken and safe to restore from concurrently — that is what lets one
// post-initialization image fan out to a whole pool (Wizer-style
// pre-initialization: run the expensive start/init once, fork the
// result forever after).
//
// A snapshot is captured by Instance.Snapshot and consumed either by
// Config.Snapshot at instantiation (NewInstance skips data-segment
// replay, whole-memory tagging, and the start function, restoring the
// image instead) or by Instance.RestoreFromSnapshot on a live instance
// (the pooled-reset fast path). Under the cagecow build tag on Linux
// the capture also materializes a sealed memfd image so restores can
// map it MAP_PRIVATE instead of copying; see doc.go for the build-tag
// matrix.
type Snapshot struct {
	module      *wasm.Module
	features    core.Features
	memType     wasm.MemoryType
	memSize     uint64
	hostReserve uint64
	mem         []byte // memSize+hostReserve bytes, private copy
	globals     []uint64
	table       []int32
	keys        core.InstanceKeys
	sandbox     uint8 // sandbox tag the image was captured under
	// signedPtrs records whether any i64.pointer_sign executed before
	// the capture. If none did, the image cannot contain signed
	// pointers, and a fork may rotate its PAC modifier per §6.3; if any
	// did, forks must adopt the snapshot keys so stored signatures keep
	// authenticating.
	signedPtrs bool

	// MTE state (zero without MTE features).
	tags            []uint8
	tagsSize        uint64
	tagRng          uint64
	granulesTagged  uint64
	tagsGenerated   uint64
	startupGranules uint64

	// spans are the non-zero runs of mem (at chunk granularity) and
	// sparse says whether they cover less than half of it. A freshly
	// initialized image is mostly zeros — data segments, a dirtied heap
	// prefix, the host-reserve pattern — so the bulk-copy restore path
	// can beat a full memcpy by zero-filling (write-only, memclr speed)
	// and copying only the spans.
	spans  []memSpan
	sparse bool

	// cow is the mmap-backed copy-on-write image ([mem | tags] in one
	// sealed memfd); nil when the build or kernel cannot provide one,
	// in which case restores bulk-copy.
	cow *cowImage
}

// memSpan is a half-open byte range [off, end) of the snapshot image.
type memSpan struct{ off, end int }

// snapshotChunk is the granularity of the non-zero scan. Runs are
// merged across adjacent non-zero chunks, so the span list stays short
// even for fragmented images.
const snapshotChunk = 4096

var zeroChunk [snapshotChunk]byte

// nonZeroSpans returns the maximal runs of chunks containing any
// non-zero byte.
func nonZeroSpans(b []byte) []memSpan {
	var spans []memSpan
	for off := 0; off < len(b); off += snapshotChunk {
		end := off + snapshotChunk
		if end > len(b) {
			end = len(b)
		}
		if bytes.Equal(b[off:end], zeroChunk[:end-off]) {
			continue
		}
		if n := len(spans); n > 0 && spans[n-1].end == off {
			spans[n-1].end = end
		} else {
			spans = append(spans, memSpan{off, end})
		}
	}
	return spans
}

// errCOWUnavailable is returned by the stub cowImage on builds without
// the cagecow tag (or off Linux).
var errCOWUnavailable = errors.New("exec: copy-on-write snapshot images unavailable in this build")

// SnapshotRestoreMode names the restore fast path this build uses:
// "cow" when the cagecow build tag is active on Linux (restores map a
// MAP_PRIVATE view of the frozen image), "copy" otherwise (restores
// bulk-copy into retained capacity).
func SnapshotRestoreMode() string { return snapshotRestoreMode }

// MemorySize returns the guest-visible memory size of the image.
func (s *Snapshot) MemorySize() uint64 { return s.memSize }

// Close releases the snapshot's copy-on-write image, if any. Instances
// already restored from it keep their private mappings; the snapshot
// must not be restored from afterwards. Close is optional — a snapshot
// cached for the process lifetime never needs it.
func (s *Snapshot) Close() {
	if s.cow != nil {
		s.cow.close()
		s.cow = nil
	}
}

// WithoutCOW returns a view of the snapshot that restores by bulk copy
// even when a copy-on-write image exists. It shares the underlying
// (immutable) state with s; Close on either affects the one shared COW
// image. Benchmarks use it to price the two restore paths against each
// other within one build.
func (s *Snapshot) WithoutCOW() *Snapshot {
	c := *s
	c.cow = nil
	return &c
}

// Snapshot captures the instance's current mutable state. The instance
// must be quiescent: not closed and with no invocation in flight
// (snapshots are taken between calls, never during one). The instance
// remains fully usable afterwards; the snapshot shares nothing with it.
func (inst *Instance) Snapshot() (*Snapshot, error) {
	if inst.closed {
		return nil, fmt.Errorf("exec: snapshot of closed instance")
	}
	if inst.depth != 0 {
		return nil, fmt.Errorf("exec: snapshot with invocation in flight (depth %d)", inst.depth)
	}
	s := &Snapshot{
		module:      inst.module,
		features:    inst.features,
		memType:     inst.memType,
		memSize:     inst.memSize,
		hostReserve: inst.hostReserve,
		mem:         append([]byte(nil), inst.mem...),
		globals:     append([]uint64(nil), inst.globals...),
		table:       append([]int32(nil), inst.table...),
		keys:        inst.keys,
		sandbox:     inst.sandbox,
		signedPtrs:  inst.counter.Get(arch.EvPACSign) > 0,

		startupGranules: inst.StartupGranulesTagged,
	}
	s.spans = nonZeroSpans(s.mem)
	var nz int
	for _, sp := range s.spans {
		nz += sp.end - sp.off
	}
	// Sparse restore (zero-fill + copy spans) moves memSize + 2·nz
	// bytes; a full memcpy moves 2·memSize. Prefer sparse below the
	// break-even point.
	s.sparse = 2*nz < len(s.mem)
	if inst.tags != nil {
		s.tags = inst.tags.CloneTags()
		s.tagsSize = inst.tags.Size()
		s.tagRng = inst.tags.RandState()
		s.granulesTagged = inst.segs.GranulesTagged
		s.tagsGenerated = inst.segs.TagsGenerated
	}
	if len(s.mem) > 0 {
		s.cow = newCOWImage(s.mem, s.tags)
	}
	return s, nil
}

// RestoreFromSnapshot returns the instance to the exact state captured
// in s: memory, globals, table, MTE tags and generator state, PAC
// state, and accounting. It is the single restore helper both the
// pooled reset path and snapshot-based instantiation (Config.Snapshot)
// go through. seed seeds the fork's fresh per-lifetime randomness where
// the image permits it (see below); 0 keeps the instance's current
// derivations.
//
// The restored instance keeps its own sandbox tag — sandbox identity is
// applied at access time through the tagged heap base, never stored in
// guest memory, so the image is portable across tags; the tag image is
// remapped where the identities differ. PAC keys: when the image
// provably contains no signed pointers (no i64.pointer_sign executed
// before the capture), the fork rotates its modifier from seed,
// preserving the §6.3 one-modifier-per-lifetime property; when the
// image does carry signatures, the fork must adopt the snapshot's keys
// so they keep authenticating — forks of such a snapshot share a
// modifier (see the package docs for the Reset-semantics migration
// note).
//
// Restore cost: with a copy-on-write image (cagecow build tag, Linux),
// memory restore is an mmap of clean shared pages — O(1)-ish in heap
// size; otherwise it is one bulk copy into retained capacity — a
// zero-fill plus non-zero-span copy when the image is mostly zeros
// (the common post-init shape), a straight memcpy otherwise. Tag-array
// work is skipped entirely when the instance's static tag layout
// already matches (no segments feature), so no stg-loop events are
// charged for work the fork never performs.
func (inst *Instance) RestoreFromSnapshot(s *Snapshot, seed uint64) error {
	if s == nil {
		return fmt.Errorf("exec: restore from nil snapshot")
	}
	if inst.closed {
		return fmt.Errorf("exec: restore of closed instance")
	}
	if inst.module != s.module {
		return fmt.Errorf("exec: snapshot belongs to a different module")
	}
	if inst.features != s.features {
		return fmt.Errorf("exec: snapshot captured under different features (have %+v, want %+v)",
			s.features, inst.features)
	}

	// Clean-memory elision: when the last restore left memory equal to
	// this same image and nothing could have written it since — no
	// store path ran (memDirty), no raw view ever escaped (memExposed)
	// — the memory bytes, size, and backing mapping are all already
	// exactly the image, so the clear+copy (the dominant cost of
	// recycling a pooled instance) is skipped. grow sets memDirty, so a
	// clean instance also has the image's sizes. Tag state and the
	// frame-machine scrub below still run; their own witnesses keep
	// them O(1) in the common case.
	memClean := inst.lastImage == s && !inst.memDirty && !inst.memExposed

	// The previous mapping (if any) must outlive every read from state
	// that may still alias it; it is released at the end.
	oldUnmap := inst.memUnmap
	inst.memUnmap = nil

	if inst.gmap != nil {
		// Guard-region backend: the reservation must never be replaced by
		// a COW view or a heap buffer — the guard handlers index gmem
		// directly — so restore is always recommit + copy. Spans are
		// clipped to the guest size: an image captured on the heap
		// backend carries host-reserve bytes past memSize that have no
		// home (and no mapping) here.
		if !memClean {
			if err := inst.gmap.SetCommitted(s.memSize); err != nil {
				return err
			}
			inst.mem = inst.gmem[:s.memSize]
			clear(inst.mem)
			copySpansClipped(inst.mem, s)
		}
		inst.memSize = s.memSize
		// hostReserve stays 0: the guard layout has no host region.

		inst.globals = append(inst.globals[:0], s.globals...)
		inst.table = append(inst.table[:0], s.table...)
		switch {
		case s.signedPtrs:
			inst.keys = s.keys
		case !inst.fixedModifier && seed != 0:
			inst.keys = core.NewInstanceKeys(inst.keys.Key, deriveModifier(seed))
		}
		inst.StartupGranulesTagged = s.startupGranules
		inst.depth = 0
		inst.arenaTop = 0
		inst.frames = inst.frames[:0]
		clear(inst.vals)
		inst.meter = nil
		inst.callCtx = nil
		inst.memLimitPages = 0
		inst.lastImage = s
		inst.memDirty = false
		if oldUnmap != nil {
			oldUnmap()
		}
		return nil
	}

	restored := false
	if memClean {
		// Memory (and any private mapping backing it) already equals the
		// image; keep both untouched.
		inst.memUnmap = oldUnmap
		oldUnmap = nil
		inst.restoreTags(s, nil)
		restored = true
	}
	if !restored && s.cow != nil {
		if mem, tagView, unmap, err := s.cow.mapView(); err == nil {
			inst.mem = mem
			inst.memUnmap = unmap
			inst.restoreTags(s, tagView)
			restored = true
		}
	}
	if !restored {
		switch {
		case len(inst.mem) != len(s.mem):
			// A fresh buffer arrives zeroed; only the spans need copying.
			inst.mem = make([]byte, len(s.mem))
			copySpans(inst.mem, s)
		default:
			if oldUnmap != nil {
				// The retained buffer is itself a private mapping of the
				// right size; overwrite it in place (dirtying private
				// pages) rather than unmapping and reallocating.
				inst.memUnmap = oldUnmap
				oldUnmap = nil
			}
			if s.sparse {
				clear(inst.mem)
				copySpans(inst.mem, s)
			} else {
				copy(inst.mem, s.mem)
			}
		}
		inst.restoreTags(s, nil)
	}
	inst.memSize = s.memSize
	inst.hostReserve = s.hostReserve

	inst.globals = append(inst.globals[:0], s.globals...)
	inst.table = append(inst.table[:0], s.table...)

	// PAC: adopt the image's keys when it carries signatures (they must
	// keep authenticating); otherwise rotate the modifier per §6.3 so no
	// two forked lifetimes share one.
	switch {
	case s.signedPtrs:
		inst.keys = s.keys
	case !inst.fixedModifier && seed != 0:
		inst.keys = core.NewInstanceKeys(inst.keys.Key, deriveModifier(seed))
	}
	inst.StartupGranulesTagged = s.startupGranules

	// Frame-machine and per-call state: same scrub as ResetState, so a
	// restore after a trapped execution leaves nothing behind.
	inst.depth = 0
	inst.arenaTop = 0
	inst.frames = inst.frames[:0]
	clear(inst.vals)
	inst.meter = nil
	inst.callCtx = nil
	inst.memLimitPages = 0
	inst.lastImage = s
	inst.memDirty = false

	if oldUnmap != nil {
		oldUnmap()
	}
	return nil
}

// MarkMemoryDirty discards the clean-memory witness, forcing the next
// RestoreFromSnapshot to take the full clear+copy path. The scale-out
// benchmark's locked mode uses it to price the pre-elision restore;
// it is never needed for correctness.
func (inst *Instance) MarkMemoryDirty() { inst.memDirty = true }

// restoreTags restores the MTE tag state from s. cowTags, when non-nil,
// is the tag region of a freshly mapped private view of the snapshot
// image, which can be adopted without copying.
func (inst *Instance) restoreTags(s *Snapshot, cowTags []uint8) {
	if inst.tags == nil {
		return
	}
	defer func() {
		inst.tags.SetRandState(s.tagRng)
		inst.tags.PendingFault() // drain any latched async fault
		inst.segs.GranulesTagged = s.granulesTagged
		inst.segs.TagsGenerated = s.tagsGenerated
		inst.tagRestoreMark = s.granulesTagged
	}()
	if !inst.features.MemSafety {
		// Without segments the tag image is static: uniformly the
		// sandbox tag over guest memory, runtime tag over the host
		// reserve. When the instance's own image already has that shape
		// at the right size — armed by the previous restore and
		// unperturbed since (the segment counter is the witness) — there
		// is nothing to do: tag restore is O(1) regardless of heap size.
		if inst.tagsStatic && inst.tags.Size() == s.tagsSize &&
			inst.segs.GranulesTagged == inst.tagRestoreMark {
			return
		}
		inst.tags.RestoreTags(s.tags, s.tagsSize, s.sandbox, inst.sandbox)
		inst.tagsStatic = true
		return
	}
	inst.tagsStatic = false
	if cowTags != nil {
		inst.tags.AdoptTags(cowTags, s.tagsSize)
		if s.sandbox != inst.sandbox {
			// Only reachable when sandbox identities can differ under
			// segments — the combined mode's single-tag budget makes
			// this remap an identity in practice (§6.4).
			remapTags(cowTags, s.sandbox, inst.sandbox)
		}
		return
	}
	inst.tags.RestoreTags(s.tags, s.tagsSize, s.sandbox, inst.sandbox)
}

// copySpans copies the non-zero spans of the snapshot image into dst,
// which must already be zero everywhere else.
func copySpans(dst []byte, s *Snapshot) {
	for _, sp := range s.spans {
		copy(dst[sp.off:sp.end], s.mem[sp.off:sp.end])
	}
}

// copySpansClipped is copySpans for a destination shorter than the
// image (the guard backend's guest-only view of a heap-backed image,
// whose host-reserve tail is dropped).
func copySpansClipped(dst []byte, s *Snapshot) {
	for _, sp := range s.spans {
		if sp.off >= len(dst) {
			return
		}
		end := sp.end
		if end > len(dst) {
			end = len(dst)
		}
		copy(dst[sp.off:end], s.mem[sp.off:end])
	}
}

// remapTags rewrites granules tagged from to the tag to.
func remapTags(tags []uint8, from, to uint8) {
	for i, t := range tags {
		if t == from {
			tags[i] = to
		}
	}
}

// releaseMapping unmaps the copy-on-write view backing the instance's
// memory, if any. Callers must have replaced (or be discarding) every
// reference into the view first: inst.mem and, when adopted, the tag
// array.
func (inst *Instance) releaseMapping() {
	if inst.memUnmap != nil {
		inst.memUnmap()
		inst.memUnmap = nil
	}
}
