//go:build race

package exec

// raceEnabled reports that the race detector is active. The detector
// instruments allocations and inflates testing.AllocsPerRun, so the
// zero-allocation gate skips itself under -race (the same programs are
// still executed race-checked by the rest of the suite).
const raceEnabled = true
