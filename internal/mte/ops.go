package mte

// TagStoreOp names one of the tag-setting store instructions benchmarked
// in paper Table 4 / Fig. 16. The variants differ in how many granules a
// single instruction tags and whether it also zeroes the data bytes.
type TagStoreOp int

const (
	// OpSTG tags one granule, data untouched.
	OpSTG TagStoreOp = iota
	// OpST2G tags two granules, data untouched.
	OpST2G
	// OpSTZG tags one granule and zeroes its 16 data bytes.
	OpSTZG
	// OpST2ZG tags two granules and zeroes their 32 data bytes.
	OpST2ZG
	// OpSTGP tags one granule and stores a 16-byte register pair.
	OpSTGP
)

// String returns the instruction mnemonic.
func (op TagStoreOp) String() string {
	switch op {
	case OpSTG:
		return "stg"
	case OpST2G:
		return "st2g"
	case OpSTZG:
		return "stzg"
	case OpST2ZG:
		return "st2zg"
	case OpSTGP:
		return "stgp"
	default:
		return "tagstore(?)"
	}
}

// Granules is the number of 16-byte granules a single instruction covers.
func (op TagStoreOp) Granules() int {
	if op == OpST2G || op == OpST2ZG {
		return 2
	}
	return 1
}

// ZeroesData reports whether the instruction also initializes the data
// bytes (so no separate memset is needed).
func (op TagStoreOp) ZeroesData() bool {
	return op == OpSTZG || op == OpST2ZG || op == OpSTGP
}

// AllTagStoreOps lists the variants in paper Table 4 order.
var AllTagStoreOps = []TagStoreOp{OpSTG, OpST2G, OpSTGP, OpSTZG, OpST2ZG}

// Apply executes the semantic effect of op at addr: tagging the covered
// granules and, for zeroing variants, clearing the data bytes in buf.
// addr must be aligned to the instruction's coverage.
func (op TagStoreOp) Apply(m *Memory, buf []byte, addr uint64, tag uint8) error {
	length := uint64(op.Granules()) * GranuleSize
	if err := m.SetTagRange(addr, length, tag); err != nil {
		return err
	}
	if op.ZeroesData() && addr+length <= uint64(len(buf)) {
		for i := addr; i < addr+length; i++ {
			buf[i] = 0
		}
	}
	return nil
}
