package exec

import (
	"context"
	"fmt"
	"math"

	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/ir"
	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/profile"
	"cage/internal/ptrlayout"
	"cage/internal/vmem"
	"cage/internal/wasm"
)

// Config controls instantiation.
type Config struct {
	// Features selects the active Cage components (paper Table 3).
	Features core.Features
	// HostModules is the host surface the module links against; with
	// Imports and Linker nil, imports resolve against these modules
	// (freezing them). Embedders outside internal/exec provide host
	// functions exclusively this way (or pre-resolved via Imports).
	HostModules []*HostModule
	// Imports is an optional pre-resolved import table (ResolveImports),
	// typically cached per compiled module so pooled instances share one
	// snapshot instead of re-linking. It takes precedence over
	// HostModules and Linker; NewInstance verifies it fits the module.
	Imports *ImportTable
	// Linker resolves imports when Imports is nil; nil with no
	// HostModules means no imports allowed. Low-level: only this package
	// (and its tests) construct Linkers.
	Linker *Linker
	// HostData is an arbitrary embedder value attached to the instance
	// and reachable from every host function via HostContext.Data: the
	// per-instance state (allocator binding, WASI system) that host
	// closures must not capture once import tables are shared.
	HostData any
	// ProcessKey is the process-wide PAC key; zero value gets a
	// deterministic default.
	ProcessKey pac.Key
	// Modifier is the per-instance PAC modifier (paper §6.3); 0 derives
	// one from Seed.
	Modifier uint64
	// Seed seeds deterministic tag/modifier generation.
	Seed uint64
	// Counter receives instruction events; nil allocates a private one.
	Counter *arch.Counter
	// Sandboxes shares sandbox-tag allocation across instances of one
	// process; nil allocates a private allocator.
	Sandboxes *core.SandboxAllocator
	// MaxCallDepth bounds recursion; 0 means the default (1024). The
	// bound is exact: it counts live activations (guest frames plus
	// in-flight host crossings), and exceeding it traps with
	// TrapStackOverflow at a deterministic frame count.
	MaxCallDepth int
	// MaxStackWords bounds the value arena — the contiguous slots
	// holding every live frame's params, locals, and operand stack — in
	// 64-bit words; 0 means the default (1<<22 words, 32 MiB). Exceeding
	// it traps with TrapStackOverflow, so deep recursion is bounded in
	// bytes as well as frames.
	MaxStackWords uint64
	// SkipBoundsChecks emulates a buggy bounds-check lowering such as
	// CVE-2023-26489 (paper §3): software sandboxing silently breaks,
	// while MTE sandboxing still catches the escape. Test/demo use only.
	SkipBoundsChecks bool
	// Program is an optional pre-lowered instruction stream for the
	// module, typically shared from an engine cache so pooled instances
	// skip the lowering pass. It must have been produced by
	// LowerModule (or ir.Lower with LowerConfig) for the same module
	// and an equivalent configuration; nil lowers privately.
	Program *ir.Program
	// HostReserve appends a host-owned, runtime-tagged region after the
	// guest memory for sandbox-escape demonstrations; 0 means 4 KiB.
	HostReserve uint64
	// Profile, when non-nil, records the hot opcode sequences this
	// instance executes (the pair/triple counters behind the
	// superinstruction pass, internal/fuse). Recording costs one
	// predictable branch per retired instruction when armed and nothing
	// when nil; the recorder is single-goroutine like the instance.
	Profile *profile.Recorder
	// Snapshot, when non-nil, instantiates by restoring this frozen
	// image (Instance.Snapshot) instead of replaying data segments,
	// tagging the whole memory, and running the start function — the
	// §7.2 costs a pre-initialized fork skips. The snapshot must have
	// been captured from an instance of the same module under the same
	// Features.
	Snapshot *Snapshot
}

// strategyFor derives the sandboxing strategy from the module's memory
// kind and the active features (paper Table 3 → Figs. 12–13).
func strategyFor(mt wasm.MemoryType, f core.Features) memStrategy {
	switch {
	case !mt.Memory64:
		return stratGuard32
	case f.Sandbox:
		return stratMTE64
	default:
		return stratBounds64
	}
}

// LowerConfig derives the ir lowering configuration NewInstance uses
// for module m under cfg. Cache layers key lowered programs on it (plus
// the module's content hash).
func LowerConfig(m *wasm.Module, cfg Config) ir.Config {
	var mt wasm.MemoryType
	if len(m.Mems) > 0 {
		mt = m.Mems[0]
	}
	mode := ir.ModeGuard32
	switch strategyFor(mt, cfg.Features) {
	case stratBounds64:
		mode = ir.ModeBounds64
	case stratMTE64:
		mode = ir.ModeMTE64
	}
	return ir.Config{
		Mode:       mode,
		SkipBounds: cfg.SkipBoundsChecks,
		MemSafety:  cfg.Features.MemSafety,
		PtrAuth:    cfg.Features.PtrAuth,
		Harden:     cfg.Features.SpectreHarden,
		// Guard-region opcodes only make sense for the guard32 strategy
		// with real bounds checks, and only when the build can back them
		// with a vmem reservation. Supported() is constant per process,
		// so this derivation (and the program-cache identity built on it)
		// is stable.
		Guard: mode == ir.ModeGuard32 && !cfg.SkipBoundsChecks && vmem.Supported(),
	}
}

// LowerModule lowers m exactly as NewInstance would under cfg, for
// embedders that cache lowered programs and pass them back via
// Config.Program.
func LowerModule(m *wasm.Module, cfg Config) (*ir.Program, error) {
	return ir.Lower(m, LowerConfig(m, cfg))
}

// memStrategy is how the engine enforces the sandbox on each access.
type memStrategy int

const (
	// stratGuard32 models 32-bit wasm with virtual-memory guard pages:
	// no per-access cost.
	stratGuard32 memStrategy = iota
	// stratBounds64 is wasm64 with explicit software bounds checks.
	stratBounds64
	// stratMTE64 is Cage's MTE-based sandboxing (Fig. 12b).
	stratMTE64
)

// Instance is an instantiated module.
type Instance struct {
	module  *wasm.Module
	mem     []byte // guest memory followed by the host-reserve region
	memSize uint64 // guest-visible size in bytes
	memType wasm.MemoryType
	globals []uint64
	table   []int32
	prog    *ir.Program
	imports []HostFunc

	// Guard-region memory backend (cageguard build tag; programs with
	// Cfg.Guard set). gmap is the vmem reservation and gmem its full
	// Bytes() — ReservationSize long, PROT_NONE past the committed
	// prefix — which the OpLoadG32G/OpStoreG32G handlers index directly
	// so the MMU performs the bounds check. mem remains the committed
	// guest-visible prefix view (gmem[:memSize]); hostReserve is 0 for
	// guard instances. Both are nil on the heap backend.
	gmem []byte
	gmap *vmem.Mapping

	// prof, when armed (Config.Profile), receives every retired
	// instruction for hot-sequence recording.
	prof *profile.Recorder

	features core.Features
	policy   core.Policy
	strategy memStrategy
	segs     *core.Segments
	tags     *mte.Memory
	keys     core.InstanceKeys
	sandbox  uint8  // this instance's sandbox tag
	heapBase uint64 // tagged heap base (Fig. 12b)

	// Recycling state (Reset/Close): the sandbox allocator the tag must
	// return to, the host-reserve size, and whether the PAC modifier was
	// pinned by the embedder (and must survive reseeding).
	sandboxes     *core.SandboxAllocator
	hostReserve   uint64
	fixedModifier bool
	closed        bool

	counter      *arch.Counter
	maxCallDepth int
	depth        int // live activations: guest frames + in-flight host crossings
	skipBounds   bool

	// Frame-machine state (frame.go). vals is the one contiguous value
	// arena holding params, locals, and operand stack for every live
	// frame; frames is the typed frame-record stack. Both retain their
	// capacity across calls and Reset, so steady-state guest→guest calls
	// allocate nothing. arenaTop is the first free arena slot outside
	// any running dispatch loop — the base a re-entrant invocation (the
	// embedder, or a host function via HostContext.Call) builds on.
	vals          []uint64
	frames        []frameRec
	arenaTop      int
	maxStackWords uint64

	// Per-call interruption state (call.go): meter is non-nil only while
	// an InvokeWith with a cancellable context or a fuel budget is in
	// flight — the dispatch loop's checkpoints reduce to one nil test
	// otherwise — and memLimitPages caps memory.grow for the call.
	// callCtx is the in-flight call's context, handed to host functions
	// through their HostContext (nil outside InvokeWith). All three are
	// only touched by the goroutine driving the instance.
	meter         *meter
	memLimitPages uint64
	callCtx       context.Context

	// hostData is the embedder value host functions reach through
	// HostContext.Data (Config.HostData).
	hostData any

	// Snapshot/restore state (snapshot.go). memUnmap releases the
	// copy-on-write view backing mem (nil when mem is heap-allocated).
	// tagsStatic arms the O(1) tag restore fast path: it records that
	// the last restore left the static no-segments tag layout in place,
	// and tagRestoreMark is the segment counter value that restore
	// observed (any segment activity since invalidates the layout).
	memUnmap       func()
	tagsStatic     bool
	tagRestoreMark uint64

	// Memory-clean witness (snapshot.go): lastImage is the snapshot the
	// last restore left memory equal to, and memDirty records whether
	// any potentially-writing access happened since — every guest store
	// path, host write, grow, and fill/copy sets it. While the witness
	// holds (same image, no writes), a restore can skip the memory
	// clear+copy entirely, making pooled recycling of a read-mostly
	// guest O(1) in heap size. memExposed latches permanently once a
	// raw view escapes via Memory/HostRegion: the caller may retain the
	// slice and write through it at any time, so such an instance can
	// never prove its memory clean again.
	lastImage  *Snapshot
	memDirty   bool
	memExposed bool

	// StartupGranulesTagged records how many granules were tagged at
	// instantiation (the §7.2 startup-cost experiment).
	StartupGranulesTagged uint64
}

// defaultHostReserve is the size of the host-owned region used by
// sandbox-escape demonstrations.
const defaultHostReserve = 4096

// NewInstance validates, links, and instantiates a module.
func NewInstance(m *wasm.Module, cfg Config) (*Instance, error) {
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	inst := &Instance{
		module:       m,
		features:     cfg.Features,
		policy:       core.NewPolicy(cfg.Features),
		counter:      cfg.Counter,
		maxCallDepth: cfg.MaxCallDepth,
		skipBounds:   cfg.SkipBoundsChecks,
		hostData:     cfg.HostData,
		prof:         cfg.Profile,
	}
	if inst.counter == nil {
		inst.counter = &arch.Counter{}
	}
	if inst.maxCallDepth == 0 {
		inst.maxCallDepth = 1024
	}
	inst.maxStackWords = cfg.MaxStackWords
	if inst.maxStackWords == 0 {
		inst.maxStackWords = defaultMaxStackWords
	}
	// If any later instantiation step fails, return the sandbox tag so a
	// pooled engine retrying instantiation does not leak tag budget, and
	// release the guard-region reservation so retries do not leak 4 GiB
	// of address space per attempt.
	instantiated := false
	defer func() {
		if !instantiated {
			if inst.sandboxes != nil {
				inst.sandboxes.Release(inst.sandbox)
			}
			if inst.gmap != nil {
				inst.gmap.Unmap()
			}
		}
	}()

	// Resolve imports: adopt the shared pre-resolved snapshot when the
	// embedder cached one, otherwise link now (structured LinkErrors).
	switch {
	case cfg.Imports != nil:
		if err := cfg.Imports.matches(m); err != nil {
			return nil, err
		}
		inst.imports = cfg.Imports.funcs
	default:
		linker := cfg.Linker
		if linker == nil {
			linker = NewLinker()
			for _, hm := range cfg.HostModules {
				if err := linker.AddModule(hm); err != nil {
					return nil, err
				}
			}
		}
		table, err := linker.Resolve(m)
		if err != nil {
			return nil, err
		}
		inst.imports = table.funcs
	}

	// Strategy and lowering before memory: the (possibly adopted)
	// program's Guard bit decides which memory backend the instance
	// needs, so the program must exist first.
	if len(m.Mems) > 0 {
		inst.memType = m.Mems[0]
	}
	inst.strategy = strategyFor(inst.memType, cfg.Features)
	if inst.strategy == stratGuard32 && (cfg.Features.MemSafety || cfg.Features.Sandbox) {
		return nil, fmt.Errorf("exec: Cage features require a 64-bit memory (wasm64)")
	}

	// Lower function bodies to the flat executable form, or adopt a
	// shared pre-lowered program (engine caches lower once per module
	// hash + configuration and hand the result to every instance). An
	// adopted program's Guard bit is authoritative: a program lowered
	// without guard opcodes (an embedder cache built off-build, a
	// hand-constructed test program) runs on the heap backend even when
	// this build could guard, and vice versa fails cleanly below when
	// the backend is unavailable.
	lcfg := LowerConfig(m, cfg)
	if cfg.Program != nil {
		lcfg.Guard = cfg.Program.Cfg.Guard
		if !cfg.Program.Matches(m, lcfg) {
			return nil, fmt.Errorf("exec: pre-lowered program does not match module/configuration (have %+v, want %+v)",
				cfg.Program.Cfg, lcfg)
		}
		inst.prog = cfg.Program
	} else {
		prog, err := ir.Lower(m, lcfg)
		if err != nil {
			return nil, err
		}
		inst.prog = prog
	}

	// Memory. Guard programs get the vmem reservation (no host-reserve
	// region: every byte past the guest prefix is PROT_NONE, which is
	// the point); everything else gets the heap buffer with the
	// host-reserve tail.
	hostReserve := cfg.HostReserve
	if hostReserve == 0 {
		hostReserve = defaultHostReserve
	}
	if inst.prog.Cfg.Guard {
		hostReserve = 0
	}
	inst.hostReserve = hostReserve
	if len(m.Mems) > 0 {
		// When restoring from a snapshot the image supplies the memory
		// (and its tag layout) wholesale; allocating and tagging here
		// would be thrown away — but a guard instance still needs its
		// reservation (RestoreFromSnapshot commits into it).
		initSize := inst.memType.Limits.Min * wasm.PageSize
		switch {
		case inst.prog.Cfg.Guard:
			commit := initSize
			if cfg.Snapshot != nil {
				commit = 0
			}
			gm, err := vmem.Map(commit)
			if err != nil {
				return nil, err
			}
			inst.gmap = gm
			inst.gmem = gm.Bytes()
			inst.mem = inst.gmem[:commit]
			inst.memSize = commit
		case cfg.Snapshot == nil:
			inst.memSize = initSize
			inst.mem = make([]byte, inst.memSize+hostReserve)
			inst.fillHostReserve()
		}
	}

	// MTE state.
	if cfg.Features.MemSafety || cfg.Features.Sandbox {
		mode := cfg.Features.MTEMode
		if mode == mte.ModeDisabled {
			mode = mte.ModeSync
		}
		inst.tags = mte.NewMemory(uint64(len(inst.mem)), mode)
		if cfg.Seed != 0 {
			inst.tags.Seed(cfg.Seed)
		}
		if err := inst.tags.SetExcludeMask(inst.policy.IRGExclude); err != nil {
			return nil, err
		}
		inst.segs = core.NewSegments(inst.tags, inst.policy, func() []byte { return inst.mem })
		inst.segs.SetLimit(func() uint64 { return inst.memSize })
	}

	// Sandbox tag assignment (Fig. 12b).
	if cfg.Features.Sandbox {
		alloc := cfg.Sandboxes
		if alloc == nil {
			alloc = core.NewSandboxAllocator(inst.policy)
		}
		tag, err := alloc.Acquire()
		if err != nil {
			return nil, err
		}
		inst.sandboxes = alloc
		inst.sandbox = tag
		inst.heapBase = ptrlayout.WithTag(0, tag)
		// Tag the guest linear memory with the sandbox tag; the host
		// reserve stays runtime-tagged (zero).
		if inst.memSize > 0 {
			if err := inst.tags.SetTagRange(0, inst.memSize, tag); err != nil {
				return nil, err
			}
			inst.StartupGranulesTagged += inst.memSize / mte.GranuleSize
		}
	}

	// PAC state.
	key := cfg.ProcessKey
	if (key == pac.Key{}) {
		key = pac.KeyFromSeed(0xCA6E)
	}
	modifier := cfg.Modifier
	if modifier == 0 {
		modifier = deriveModifier(cfg.Seed)
	} else {
		inst.fixedModifier = true
	}
	inst.keys = core.NewInstanceKeys(key, modifier)

	// Globals, table + element segments, data segments. Shared with
	// Instance recycling (reset.go), which must replay them identically.
	// A snapshot restore installs all three from the image instead.
	if cfg.Snapshot == nil {
		inst.initGlobals()
		if err := inst.initTable(); err != nil {
			return nil, err
		}
		if err := inst.initData(); err != nil {
			return nil, err
		}
	}

	// Start function (shared with recycling, reset.go) — or, for a
	// pre-initialized fork, the snapshot restore that replaces it (the
	// image was captured after the start/init already ran).
	if cfg.Snapshot != nil {
		if err := inst.RestoreFromSnapshot(cfg.Snapshot, cfg.Seed); err != nil {
			return nil, err
		}
	} else if err := inst.RunStart(); err != nil {
		return nil, err
	}
	instantiated = true
	return inst, nil
}

// fillHostReserve stamps a recognizable pattern over the host-owned
// region after guest memory, standing in for runtime data a sandbox
// escape would leak.
func (inst *Instance) fillHostReserve() {
	for i := inst.memSize; i < uint64(len(inst.mem)); i++ {
		inst.mem[i] = 0x5A
	}
}

// initGlobals (re)loads every global from its initializer.
func (inst *Instance) initGlobals() {
	inst.globals = inst.globals[:0]
	for _, g := range inst.module.Globals {
		inst.globals = append(inst.globals, g.Init)
	}
}

// initTable (re)builds the indirect-call table from element segments.
func (inst *Instance) initTable() error {
	m := inst.module
	if len(m.Tables) == 0 {
		return nil
	}
	if inst.table == nil {
		inst.table = make([]int32, m.Tables[0].Limits.Min)
	}
	for i := range inst.table {
		inst.table[i] = -1
	}
	for _, es := range m.Elems {
		for i, fidx := range es.Funcs {
			slot := int(es.Offset) + i
			if slot >= len(inst.table) {
				return fmt.Errorf("exec: element segment exceeds table size")
			}
			inst.table[slot] = int32(fidx)
		}
	}
	return nil
}

// initData replays the active data segments into linear memory.
func (inst *Instance) initData() error {
	for _, d := range inst.module.Datas {
		if d.Offset+uint64(len(d.Bytes)) > inst.memSize {
			return fmt.Errorf("exec: data segment [%d, +%d) exceeds memory size %d",
				d.Offset, len(d.Bytes), inst.memSize)
		}
		copy(inst.mem[d.Offset:], d.Bytes)
	}
	return nil
}

// Module returns the underlying module.
func (inst *Instance) Module() *wasm.Module { return inst.module }

// HostData returns the embedder value attached at instantiation
// (Config.HostData), also reachable from host functions via
// HostContext.Data.
func (inst *Instance) HostData() any { return inst.hostData }

// SetHostData replaces the instance's host data. It must not race an
// in-flight invocation; embedders normally set it once via
// Config.HostData and mutate the pointed-to state instead.
func (inst *Instance) SetHostData(v any) { inst.hostData = v }

// Program returns the lowered instruction stream the instance executes.
func (inst *Instance) Program() *ir.Program { return inst.prog }

// Memory returns the guest-visible linear memory. The returned slice
// aliases live instance state and may be retained and written at any
// time, so calling this permanently disables the clean-memory restore
// elision for the instance.
func (inst *Instance) Memory() []byte {
	inst.memExposed = true
	return inst.mem[:inst.memSize]
}

// MemorySize returns the guest memory size in bytes.
func (inst *Instance) MemorySize() uint64 { return inst.memSize }

// HostRegion returns the host-owned bytes after the guest memory (used
// by sandbox-escape demonstrations). Like Memory, the view aliases live
// state, so it permanently disables the clean-memory restore elision.
func (inst *Instance) HostRegion() []byte {
	inst.memExposed = true
	return inst.mem[inst.memSize:]
}

// Counter returns the instruction-event counter.
func (inst *Instance) Counter() *arch.Counter { return inst.counter }

// Segments returns the Cage segment manager (nil without MTE features).
func (inst *Instance) Segments() *core.Segments { return inst.segs }

// Tags returns the MTE tag memory (nil without MTE features).
func (inst *Instance) Tags() *mte.Memory { return inst.tags }

// SandboxTag returns the instance's sandbox tag (0 without sandboxing).
func (inst *Instance) SandboxTag() uint8 { return inst.sandbox }

// Keys returns the instance's pointer-authentication state.
func (inst *Instance) Keys() core.InstanceKeys { return inst.keys }

// Policy returns the derived tag policy.
func (inst *Instance) Policy() core.Policy { return inst.policy }

// Features returns the active feature set.
func (inst *Instance) Features() core.Features { return inst.features }

// Invoke calls an exported function by name. On return it polls the
// asynchronous MTE fault flag — the "context switch" check of paper
// §2.3 — so violations recorded in async or asymmetric mode surface as
// (late) traps here.
func (inst *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	fidx, ok := inst.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("exec: no exported function %q", name)
	}
	res, err := inst.invoke(fidx, args)
	if err == nil {
		err = inst.pollAsyncFault()
	}
	return res, err
}

// InvokeIndex calls a function by index.
func (inst *Instance) InvokeIndex(fidx uint32, args ...uint64) ([]uint64, error) {
	res, err := inst.invoke(fidx, args)
	if err == nil {
		err = inst.pollAsyncFault()
	}
	return res, err
}

// pollAsyncFault reports a latched asynchronous tag fault as a trap.
func (inst *Instance) pollAsyncFault() error {
	if inst.tags == nil {
		return nil
	}
	if f := inst.tags.PendingFault(); f != nil {
		return newTrap(TrapTagMismatch, "deferred: %v", f)
	}
	return nil
}

// GlobalValue reads an exported global's raw bits.
func (inst *Instance) GlobalValue(name string) (uint64, bool) {
	for _, e := range inst.module.Exports {
		if e.Kind == wasm.ExportGlobal && e.Name == name {
			return inst.globals[e.Idx], true
		}
	}
	return 0, false
}

// Value encoding helpers for embedders.

// F64Bits returns the raw bits of a float64 value.
func F64Bits(v float64) uint64 { return math.Float64bits(v) }

// F64Val decodes a float64 from raw bits.
func F64Val(bits uint64) float64 { return math.Float64frombits(bits) }

// I32Bits sign-extends an int32 into value bits.
func I32Bits(v int32) uint64 { return uint64(uint32(v)) }
