package serve

import (
	"fmt"
	"net/http/httptest"

	"cage"
	"cage/internal/bench"
)

// Saturation benchmark: a live cage-serve daemon is stood up per
// sandbox preset, a fixed workload is registered through the real
// upload path, and the load generator sweeps concurrency levels,
// recording p50/p99 latency and throughput into the cage-bench
// "saturation" record (the types live in internal/bench with the rest
// of the JSON schema).

// saturationSource is the benchmark guest: the quickstart's allocate-
// and-sum loop — a malloc, a store/load pass, and enough arithmetic to
// exercise the configuration's memory-access mode.
const saturationSource = `
extern char* malloc(long n);
long run(long n) {
    long* a = (long*)malloc(n * 8);
    long s = 0;
    for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
    return s;
}
`

// SaturationConfigs are the four sandbox presets the sweep compares:
// the two baselines (guard pages, software bounds) against MTE
// sandboxing alone and the full Cage hardening.
func SaturationConfigs() []string {
	return []string{"baseline32", "baseline64", "sandbox", "full"}
}

// MeasureSaturation stands up a live server per sandbox preset and
// sweeps concurrency against it over real loopback HTTP. quick selects
// the CI smoke shape (small problem size, few levels, few requests).
func MeasureSaturation(quick bool) (*bench.SaturationRecord, error) {
	levels := []int{1, 2, 4, 8, 16, 32}
	perClient, n := 50, 4096
	if quick {
		levels = []int{1, 4, 16}
		perClient, n = 8, 256
	}
	rec := &bench.SaturationRecord{Workload: "sum", N: n, RequestsPerClient: perClient}
	for _, name := range SaturationConfigs() {
		cfg, err := cage.ConfigByName(name)
		if err != nil {
			return nil, err
		}
		srv, err := New(Options{Config: cfg, ConfigName: name})
		if err != nil {
			return nil, err
		}
		points, err := sweepServer(srv, name, levels, perClient, n)
		srv.Close()
		if err != nil {
			return nil, err
		}
		rec.Points = append(rec.Points, points...)
	}
	return rec, nil
}

// sweepServer runs the concurrency sweep against one live server.
func sweepServer(srv *Server, name string, levels []int, perClient, n int) ([]bench.SaturationPoint, error) {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL, Tenant: "bench"}
	id, err := client.Upload([]byte(saturationSource))
	if err != nil {
		return nil, fmt.Errorf("serve: registering saturation workload under %s: %w", name, err)
	}
	req := InvokeRequest{Module: id, Function: "run", Args: []uint64{uint64(n)}}
	var points []bench.SaturationPoint
	for _, cc := range levels {
		lr := RunLoad(client, req, cc, cc*perClient)
		points = append(points, bench.SaturationPoint{
			Config:        name,
			Concurrency:   cc,
			Requests:      lr.Requests,
			Errors:        lr.Errors,
			P50Ns:         lr.P50.Nanoseconds(),
			P99Ns:         lr.P99.Nanoseconds(),
			ThroughputRPS: lr.Throughput,
		})
	}
	return points, nil
}
