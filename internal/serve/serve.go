package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cage"
	"cage/internal/exec"
)

// TenantHeader names the request header carrying the tenant identity;
// requests without it run as DefaultTenant. The header is the only
// tenant credential, so per-tenant state must stay bounded against
// hostile values: past Options.MaxTenants distinct names, unknown
// tenants share the OverflowTenant aggregate.
const (
	TenantHeader   = "X-Cage-Tenant"
	DefaultTenant  = "default"
	OverflowTenant = "(other)"
)

const (
	// DefaultMaxTenants bounds first-sight tenant creation when
	// Options.MaxTenants is 0.
	DefaultMaxTenants = 256
	// DefaultMaxUploadBytes is the server-wide upload cap applied when
	// Options.MaxUploadBytes is 0, so a tenant policy with no
	// MaxModuleBytes still cannot stream an unbounded body into memory.
	DefaultMaxUploadBytes = 64 << 20
)

// maxInvokeBody bounds an invoke request body; invocation arguments are
// a function name plus scalar args, so anything near this is hostile.
const maxInvokeBody = 1 << 20

// Options configures a Server.
type Options struct {
	// Config is the sandbox preset every module is compiled and executed
	// under (the server's one engine).
	Config cage.Config
	// ConfigName labels Config in /v1/stats (e.g. the cage.ConfigByName
	// preset the CLI resolved).
	ConfigName string
	// DefaultQuota applies to every tenant without an explicit entry in
	// Tenants. The zero policy is unbounded.
	DefaultQuota QuotaPolicy
	// Tenants overrides the policy per tenant name.
	Tenants map[string]QuotaPolicy
	// MaxTenants caps how many distinct tenant states (admission
	// semaphore, counters, metrics label series) the server creates on
	// first sight of an unknown X-Cage-Tenant value — the header is
	// unauthenticated, so unbounded creation is a memory and metrics-
	// cardinality DoS. Names listed in Tenants always get their own
	// state; past the cap every other unknown name shares one aggregate
	// state (DefaultQuota, labeled OverflowTenant). 0 means
	// DefaultMaxTenants; negative lifts the cap.
	MaxTenants int
	// MaxUploadBytes is the server-wide hard cap on one upload body,
	// enforced even for tenants whose policy leaves MaxModuleBytes at 0
	// (unlimited). 0 means DefaultMaxUploadBytes; negative lifts the cap.
	MaxUploadBytes int64
	// PoolLimit overrides the engine's per-module live-instance cap
	// (0 keeps the config's §7.4 tag budget).
	PoolLimit int
	// ExtendedSandboxes lifts the 15-sandbox budget via §6.4 tag reuse.
	ExtendedSandboxes bool
	// LegacyHotPath routes POST /v1/invoke through the original
	// allocate-per-request handler (stdlib JSON decode/encode, CallOption
	// closures) instead of the pooled zero-allocation path. Semantics
	// are identical; the knob exists so the scaling benchmark can A/B
	// the two paths inside one binary. Leave it off in production.
	LegacyHotPath bool
}

// Server is the multi-tenant execution daemon: one engine (plus a
// Spectre-hardened sibling when some tenant policy asks for it), a
// content-addressed module registry, per-tenant admission and quotas,
// and a metrics surface. See the package documentation for the HTTP
// contract.
type Server struct {
	opts Options
	eng  *cage.Engine
	// hardEng is the Spectre-hardened twin of eng — Options.Config with
	// SpectreHarden set, otherwise identical — serving tenants whose
	// policy sets SpectreHardened. nil when no policy does: the sibling
	// engine carries its own instance pools and §7.4 tag budget, so it
	// is not built speculatively.
	hardEng *cage.Engine
	reg     registry
	mux     *http.ServeMux

	// tenants is the authoritative name → state map, written only under
	// mu; tenantSnap is its immutable published copy. Every request
	// resolves its tenant off the snapshot with one atomic load — the
	// mutex is touched only the first time a name is seen, so neither a
	// tenant burst nor a stats scrape can stall the invoke hot path.
	mu         sync.Mutex
	tenants    map[string]*tenant
	tenantSnap atomic.Pointer[map[string]*tenant]
}

// New builds a Server (and its engine) for the options.
func New(opts Options) (*Server, error) {
	tune := func(eng *cage.Engine) error {
		if opts.ExtendedSandboxes {
			if err := eng.EnableExtendedSandboxes(); err != nil {
				return err
			}
		}
		if opts.PoolLimit > 0 {
			if err := eng.SetPoolLimit(opts.PoolLimit); err != nil {
				return err
			}
		}
		return nil
	}
	eng := cage.NewEngine(opts.Config)
	if err := tune(eng); err != nil {
		return nil, err
	}
	s := &Server{opts: opts, eng: eng, tenants: make(map[string]*tenant)}
	needHardened := opts.DefaultQuota.SpectreHardened
	for _, p := range opts.Tenants {
		needHardened = needHardened || p.SpectreHardened
	}
	if needHardened {
		hcfg := opts.Config
		hcfg.SpectreHarden = true
		s.hardEng = cage.NewEngine(hcfg)
		if err := tune(s.hardEng); err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/modules", s.handleUpload)
	mux.HandleFunc("GET /v1/modules", s.handleList)
	mux.HandleFunc("POST /v1/invoke", s.handleInvoke)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying engine (tests and embedders).
func (s *Server) Engine() *cage.Engine { return s.eng }

// Close retires every pooled instance. In-flight requests must have
// drained (the HTTP server shut down) first.
func (s *Server) Close() {
	s.eng.Close()
	if s.hardEng != nil {
		s.hardEng.Close()
	}
}

// engineFor picks the engine a tenant's invocations run on: the
// Spectre-hardened sibling when its policy asks for it, the base
// engine otherwise.
func (s *Server) engineFor(tn *tenant) *cage.Engine {
	if tn.policy.SpectreHardened && s.hardEng != nil {
		return s.hardEng
	}
	return s.eng
}

// tenantFor returns (creating on first sight) the tenant state for a
// request. Creation is bounded: once MaxTenants distinct states exist,
// unknown names collapse into the shared OverflowTenant aggregate, so
// an attacker cycling header values cannot grow the tenant map or the
// /metrics label space without bound.
func (s *Server) tenantFor(r *http.Request) *tenant {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		name = DefaultTenant
	}
	// Fast path: every tenant that has ever sent a request is in the
	// published snapshot — one atomic load, one map index, no lock.
	if m := s.tenantSnap.Load(); m != nil {
		if t, ok := (*m)[name]; ok {
			return t
		}
	}
	return s.tenantForSlow(name)
}

// tenantForSlow creates (or races to find) the state for a first-sight
// name under the mutex, then republishes the snapshot.
func (s *Server) tenantForSlow(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	policy, known := s.opts.Tenants[name]
	if !known {
		policy = s.opts.DefaultQuota
		if limit := s.maxTenants(); limit >= 0 && len(s.tenants) >= limit {
			name = OverflowTenant
			if t, ok := s.tenants[name]; ok {
				return t
			}
		}
	}
	t := newTenant(name, policy)
	s.tenants[name] = t
	snap := make(map[string]*tenant, len(s.tenants))
	for k, v := range s.tenants {
		snap[k] = v
	}
	s.tenantSnap.Store(&snap)
	return t
}

// maxTenants resolves Options.MaxTenants (0 → default, negative → no
// cap, reported as -1).
func (s *Server) maxTenants() int {
	switch {
	case s.opts.MaxTenants > 0:
		return s.opts.MaxTenants
	case s.opts.MaxTenants < 0:
		return -1
	}
	return DefaultMaxTenants
}

// uploadLimit resolves the effective body cap for one tenant's upload:
// the tenant's MaxModuleBytes quota tightened by the server-wide
// MaxUploadBytes backstop. 0 means genuinely unlimited (both caps
// explicitly lifted).
func (s *Server) uploadLimit(policy QuotaPolicy) int64 {
	limit := s.opts.MaxUploadBytes
	if limit == 0 {
		limit = DefaultMaxUploadBytes
	} else if limit < 0 {
		limit = 0
	}
	if q := policy.MaxModuleBytes; q > 0 && (limit == 0 || q < limit) {
		limit = q
	}
	return limit
}

// apiError is the structured error body: {"error": {...}}.
type apiError struct {
	// Code is a stable machine-readable discriminator.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// Trap names the guest trap for code "guest_trap" (exec.TrapCode
	// strings, e.g. "fuel exhausted").
	Trap string `json:"trap,omitempty"`
	// RetryAfterMs accompanies code "queue_full" (it mirrors the
	// Retry-After header at millisecond resolution).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, errorBody{Error: e})
}

// UploadResponse answers POST /v1/modules.
type UploadResponse struct {
	// Module is the content-hash id ("sha256:…") to invoke by.
	Module string `json:"module"`
	// Cached reports that the content was already registered.
	Cached bool `json:"cached"`
	// Exports lists the module's callable functions.
	Exports []string `json:"exports"`
	// Init is the module's registered pre-initialization function, ""
	// for none. Ids are content-addressed and first-registrant-wins, so
	// a cached re-upload reports the original registration's init, not
	// the re-upload's ?init= parameter.
	Init string `json:"init,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tn := s.tenantFor(r)
	body := r.Body
	if limit := s.uploadLimit(tn.policy); limit > 0 {
		body = http.MaxBytesReader(w, r.Body, limit)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			tn.m.stripe().badRequest.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, apiError{
				Code:    "module_too_large",
				Message: fmt.Sprintf("upload exceeds the %d-byte module size limit", tooLarge.Limit),
			})
			return
		}
		tn.m.stripe().canceled.Add(1)
		return
	}

	// A byte-identical re-upload is answered from the registry before
	// any compile, engine-cache, or quota work — re-registering
	// existing content is free and costs the server nothing.
	if entry, ok := s.reg.lookupSource(data); ok {
		writeJSON(w, http.StatusOK, UploadResponse{Module: entry.id, Cached: true, Exports: entry.exportNames(), Init: entry.initFn})
		return
	}

	// A tenant with no quota headroom is refused before its body is
	// compiled: rejected uploads must not consume engine-cache memory.
	// (This also refuses a re-upload of registered content whose bytes
	// differ from the creating upload's — dedup against the canonical
	// encoding would require the compile this check exists to avoid.)
	if max := tn.policy.MaxModules; max > 0 && tn.modules.Load() >= int64(max) {
		s.rejectModuleQuota(w, tn)
		return
	}

	var mod *cage.Module
	if isWasm(data) {
		mod, err = s.eng.DecodeModule(data)
		if err != nil {
			tn.m.stripe().badRequest.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code: "invalid_module", Message: err.Error(),
			})
			return
		}
	} else {
		mod, err = s.eng.CompileSource(string(data))
		if err != nil {
			tn.m.stripe().badRequest.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code: "compile_error", Message: err.Error(),
			})
			return
		}
	}

	// ?init= names a Wizer-style pre-initialization function: the first
	// invocation runs it once and snapshots the result; every checkout
	// after that forks from the frozen image. Validated here so a bad
	// name fails the upload, not the first unlucky invoke.
	initFn := r.URL.Query().Get("init")
	if initFn != "" {
		sig, ok := exportedFuncs(mod.Raw())[initFn]
		if !ok {
			tn.m.stripe().badRequest.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code:    "init_not_found",
				Message: fmt.Sprintf("module exports no function %q to pre-initialize with", initFn),
			})
			return
		}
		if sig.params != 0 {
			tn.m.stripe().badRequest.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code:    "init_bad_signature",
				Message: fmt.Sprintf("init function %q takes %d arguments; pre-initialization functions take none", initFn, sig.params),
			})
			return
		}
	}

	// The MaxModules charge is reserved under the registry lock, before
	// the entry is inserted: a rejected upload leaves no entry behind,
	// so re-uploading the same bytes cannot ride a cached hit around
	// the quota. Finding existing content reserves nothing.
	entry, created, err := s.reg.register(tn.name, data, mod, initFn, func() error {
		if max := tn.policy.MaxModules; max > 0 {
			if tn.modules.Add(1) > int64(max) {
				tn.modules.Add(-1)
				return errModuleQuota
			}
		}
		return nil
	})
	switch {
	case errors.Is(err, errModuleQuota):
		s.rejectModuleQuota(w, tn)
		return
	case err != nil:
		tn.m.stripe().failures.Add(1)
		writeError(w, http.StatusInternalServerError, apiError{
			Code: "internal", Message: err.Error(),
		})
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, UploadResponse{Module: entry.id, Cached: !created, Exports: entry.exportNames(), Init: entry.initFn})
}

// rejectModuleQuota answers an upload from a tenant with no MaxModules
// headroom.
func (s *Server) rejectModuleQuota(w http.ResponseWriter, tn *tenant) {
	tn.m.stripe().badRequest.Add(1)
	writeError(w, http.StatusForbidden, apiError{
		Code:    "module_quota_exceeded",
		Message: fmt.Sprintf("tenant %q may register at most %d modules", tn.name, tn.policy.MaxModules),
	})
}

// ModuleInfo is one GET /v1/modules entry.
type ModuleInfo struct {
	Module    string   `json:"module"`
	SizeBytes int64    `json:"size_bytes"`
	Exports   []string `json:"exports"`
	Init      string   `json:"init,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := struct {
		Modules []ModuleInfo `json:"modules"`
	}{Modules: make([]ModuleInfo, 0, len(entries))}
	for _, e := range entries {
		out.Modules = append(out.Modules, ModuleInfo{Module: e.id, SizeBytes: e.size, Exports: e.exportNames(), Init: e.initFn})
	}
	writeJSON(w, http.StatusOK, out)
}

// InvokeRequest is the POST /v1/invoke body.
type InvokeRequest struct {
	// Module is a registered module id ("sha256:…").
	Module string `json:"module"`
	// Function is the exported function to call.
	Function string `json:"function"`
	// Args are the raw 64-bit argument bits.
	Args []uint64 `json:"args"`
	// Fuel asks for a per-call fuel budget; the tenant policy clamps it.
	Fuel uint64 `json:"fuel,omitempty"`
	// TimeoutMs asks for a per-call wall-clock bound in milliseconds;
	// the tenant policy clamps it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// InvokeResponse is the 200 body of POST /v1/invoke.
type InvokeResponse struct {
	// Values are the return values as raw 64-bit bits.
	Values []uint64 `json:"values"`
	// Fuel is the timing-model event total the call consumed.
	Fuel uint64 `json:"fuel"`
	// Events breaks Fuel down by event name (non-zero entries only).
	Events map[string]uint64 `json:"events,omitempty"`
}

// decodeInvokeRequest parses an invoke body strictly: unknown fields,
// trailing garbage, and non-integer args are errors, so a malformed
// request is a 400, never a silent partial parse.
func decodeInvokeRequest(body io.Reader) (*InvokeRequest, error) {
	dec := json.NewDecoder(io.LimitReader(body, maxInvokeBody))
	dec.DisallowUnknownFields()
	var req InvokeRequest
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after request object")
	}
	if req.Module == "" {
		return nil, errors.New("missing field \"module\"")
	}
	if req.Function == "" {
		return nil, errors.New("missing field \"function\"")
	}
	if req.TimeoutMs < 0 {
		return nil, errors.New("negative timeout_ms")
	}
	return &req, nil
}

// handleInvokeLegacy is the original allocate-per-request invoke
// handler: stdlib JSON decode and (indented) encode, CallOption
// closures, an EventCounts map per response. It answers bit-for-bit
// like the hot path in hotpath.go and is kept callable behind
// Options.LegacyHotPath so the scaling benchmark can measure the two
// inside one binary.
func (s *Server) handleInvokeLegacy(w http.ResponseWriter, r *http.Request) {
	tn := s.tenantFor(r)
	tn.m.stripe().requests.Add(1)

	req, err := decodeInvokeRequest(r.Body)
	if err != nil {
		tn.m.stripe().badRequest.Add(1)
		writeError(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	entry, ok := s.reg.lookup(req.Module)
	if !ok {
		tn.m.stripe().badRequest.Add(1)
		writeError(w, http.StatusNotFound, apiError{
			Code: "module_not_found", Message: fmt.Sprintf("no module %q is registered", req.Module),
		})
		return
	}
	entry.m.stripe().requests.Add(1)
	sig, ok := entry.funcs[req.Function]
	if !ok {
		tn.m.stripe().badRequest.Add(1)
		entry.m.stripe().badRequest.Add(1)
		writeError(w, http.StatusNotFound, apiError{
			Code:    "function_not_found",
			Message: fmt.Sprintf("module %q exports no function %q", req.Module, req.Function),
		})
		return
	}
	if len(req.Args) != sig.params {
		tn.m.stripe().badRequest.Add(1)
		entry.m.stripe().badRequest.Add(1)
		writeError(w, http.StatusUnprocessableEntity, apiError{
			Code:    "bad_arity",
			Message: fmt.Sprintf("%s takes %d arguments, got %d", req.Function, sig.params, len(req.Args)),
		})
		return
	}

	// Admission: the tenant's own concurrency gate, before any engine
	// resource is touched. The wait rides the request context, so a
	// disconnected client leaves the queue immediately.
	err = tn.admit(r.Context())
	switch {
	case errors.Is(err, errQueueFull):
		tn.m.stripe().rejected.Add(1)
		entry.m.stripe().rejected.Add(1)
		retry := tn.policy.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, apiError{
			Code:         "queue_full",
			Message:      fmt.Sprintf("tenant %q has %d invocations in flight and a full queue", tn.name, tn.policy.MaxConcurrent),
			RetryAfterMs: retry.Milliseconds(),
		})
		return
	case err != nil: // client disconnected while queued
		tn.m.stripe().canceled.Add(1)
		entry.m.stripe().canceled.Add(1)
		return
	}
	defer tn.release()

	tn.active.Add(1)
	defer tn.active.Add(-1)

	eng := s.engineFor(tn)

	// Pre-initialization: the first admitted invocation of an ?init=
	// module builds the post-init snapshot (charging the one-time init
	// fuel to this tenant); everyone after forks the frozen image free.
	if err := s.ensureSnapshot(r.Context(), tn, entry, eng); err != nil {
		var trap *exec.Trap
		switch {
		case errors.As(err, &trap):
			tn.m.stripe().traps.Add(1)
			entry.m.stripe().traps.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code:    "init_trap",
				Message: fmt.Sprintf("pre-initialization %q trapped: %v", entry.initFn, err),
				Trap:    trap.Code.String(),
			})
		case r.Context().Err() != nil:
			tn.m.stripe().canceled.Add(1)
			entry.m.stripe().canceled.Add(1)
		default:
			tn.m.stripe().failures.Add(1)
			entry.m.stripe().failures.Add(1)
			writeError(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
		}
		return
	}

	opts := tn.policy.callOptions(req.Fuel, time.Duration(req.TimeoutMs)*time.Millisecond)
	res, err := eng.Call(r.Context(), entry.mod, req.Function, req.Args, opts...)

	// Fuel is charged win or lose: a trapped call consumed real events.
	tn.m.stripe().fuel.Add(res.Fuel)
	entry.m.stripe().fuel.Add(res.Fuel)

	switch {
	case err == nil:
		tn.m.stripe().ok.Add(1)
		entry.m.stripe().ok.Add(1)
		writeJSON(w, http.StatusOK, InvokeResponse{
			Values: res.Values,
			Fuel:   res.Fuel,
			Events: res.Events.EventCounts(),
		})
	case cage.IsInterrupted(err):
		if r.Context().Err() != nil {
			// The client is gone; there is no one to answer. The guest
			// was interrupted at the next checkpoint and its instance
			// reset — nothing leaks — so just account for it.
			tn.m.stripe().canceled.Add(1)
			entry.m.stripe().canceled.Add(1)
			return
		}
		tn.m.stripe().interrupted.Add(1)
		entry.m.stripe().interrupted.Add(1)
		writeError(w, http.StatusRequestTimeout, apiError{
			Code: "timeout",
			Message: fmt.Sprintf("call exceeded its %v budget",
				tn.policy.effectiveTimeout(time.Duration(req.TimeoutMs)*time.Millisecond)),
			Trap: exec.TrapInterrupted.String(),
		})
	default:
		var trap *exec.Trap
		if errors.As(err, &trap) {
			tn.m.stripe().traps.Add(1)
			entry.m.stripe().traps.Add(1)
			writeError(w, http.StatusUnprocessableEntity, apiError{
				Code: "guest_trap", Message: err.Error(), Trap: trap.Code.String(),
			})
			return
		}
		tn.m.stripe().failures.Add(1)
		entry.m.stripe().failures.Add(1)
		writeError(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
	}
}

// ensureSnapshot makes sure a module registered with an init function
// has its post-init snapshot built on eng, running the init at most
// once per engine for the module's lifetime (the base and hardened
// engines keep separate pools, so each forks its own image). The
// one-time init fuel is charged to the tenant whose invocation
// triggered the build — never again to anyone: every later request on
// that engine forks the frozen image without re-running init (see the
// quota regression test). The init runs under the triggering tenant's
// own call policy, so a hostile init cannot outrun the quotas its
// owner's requests live under.
func (s *Server) ensureSnapshot(ctx context.Context, tn *tenant, entry *moduleEntry, eng *cage.Engine) error {
	if entry.initFn == "" {
		return nil
	}
	entry.snapMu.Lock()
	defer entry.snapMu.Unlock()
	if entry.snapDone[eng] {
		return nil
	}
	snap, err := eng.Snapshot(ctx, entry.mod,
		cage.WithInit(entry.initFn),
		cage.WithInitOptions(tn.policy.callOptions(0, 0)...))
	if err != nil {
		return err
	}
	if entry.snapDone == nil {
		entry.snapDone = make(map[*cage.Engine]bool)
	}
	entry.snapDone[eng] = true
	tn.m.stripe().fuel.Add(snap.InitFuel())
	entry.m.stripe().fuel.Add(snap.InitFuel())
	return nil
}

// StatsSnapshot assembles the /v1/stats document (exported for
// embedders that want the counters without HTTP).
func (s *Server) StatsSnapshot() *Stats {
	es := s.eng.Stats()
	memMode, fusion := s.eng.DispatchMode()
	out := &Stats{
		Config:        s.opts.ConfigName,
		RestoreMode:   s.eng.RestoreMode(),
		MemoryMode:    memMode,
		FusionProfile: fusion,
		ModuleCache:   cacheSnapshot(es.Cache),
		ProgramCache:  cacheSnapshot(es.Programs),
		Snapshots:     snapshotCacheSnapshot(es.Snapshots),
		Pools:         poolSnapshot(es.Pools),
		Tenants:       make(map[string]TenantStats),
		Modules:       make(map[string]ModuleStats),
	}
	var tenants []*tenant
	if m := s.tenantSnap.Load(); m != nil {
		tenants = make([]*tenant, 0, len(*m))
		for _, t := range *m {
			tenants = append(tenants, t)
		}
	}
	for _, t := range tenants {
		out.Tenants[t.name] = TenantStats{
			CounterStats: t.m.snapshot(),
			QueueDepth:   int(t.waiting.Load()),
			Active:       int(t.active.Load()),
			Hardened:     t.policy.SpectreHardened,
		}
	}
	for _, e := range s.reg.list() {
		out.Modules[e.id] = ModuleStats{
			CounterStats: e.m.snapshot(),
			SizeBytes:    e.size,
			Pool:         poolSnapshot(s.eng.PoolStatsFor(e.mod)),
		}
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.StatsSnapshot().writeProm(w)
}
