module cage

go 1.24
