// Package core implements the heart of the Cage extension: memory
// segments backed by MTE tags (paper §4.2, Fig. 11), the tag-budget
// policy that splits tag bits between internal memory safety and
// external sandboxing (paper §6.4, Fig. 13), the per-instance
// pointer-authentication state (paper §6.3), and the concurrency-safe
// sandbox-tag allocator enforcing the 15-sandboxes-per-process limit
// (paper §7.4).
//
// Paper map:
//
//   - Segments            — the segment.new / segment.set_tag /
//     segment.free semantics of Fig. 11, eqs. 5–10
//   - Policy / NewPolicy  — the Fig. 13 / §6.4 tag-budget split and
//     index masking
//   - SandboxAllocator    — §6.4 tag assignment at instantiation, §7.4
//     budget, and the tag-reuse scaling extension the paper sketches
//   - InstanceKeys        — §6.3 per-instance PAC modifiers over the
//     process key, Fig. 11 eqs. 11–13
package core
