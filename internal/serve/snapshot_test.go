package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"cage"
)

// initGuestSource is a guest whose init function leaves observable
// state behind: every fork must see token==1234567 and inits==1 without
// ever re-running setup.
const initGuestSource = `
long token;
long inits;

long setup() {
    inits = inits + 1;
    token = 1234567;
    return token;
}

long get_token(long x) { return token + x; }

long init_count(long unused) { return inits; }
`

// TestInitSnapshotChargedOnce pins the pre-initialization contract:
// the ?init= function runs exactly once (at snapshot time, triggered by
// the first invocation), every request is served from a fork that sees
// the post-init state, and the one-time init fuel is charged to the
// triggering tenant only — never per request, never to other tenants.
func TestInitSnapshotChargedOnce(t *testing.T) {
	ts, srv := newTestServer(t, Options{Config: cage.FullHardening(), ConfigName: "full"})

	var up UploadResponse
	resp := postJSON(t, ts, "/v1/modules?init=setup", "alice", []byte(initGuestSource), &up)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload with init: status %d", resp.StatusCode)
	}
	if up.Init != "setup" {
		t.Fatalf("upload response init = %q, want %q", up.Init, "setup")
	}

	// Alice's requests: every fork sees the post-init globals.
	const aliceN = 5
	var aliceCallFuel, initFuel uint64
	for i := 0; i < aliceN; i++ {
		r, res, eb := invoke(t, ts, "alice", InvokeRequest{Module: up.Module, Function: "get_token", Args: []uint64{uint64(i)}})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("alice invoke %d: status %d (%+v)", i, r.StatusCode, eb.Error)
		}
		if want := uint64(1234567 + i); res.Values[0] != want {
			t.Fatalf("fork %d did not see the pre-initialized state: get_token = %d, want %d", i, res.Values[0], want)
		}
		aliceCallFuel += res.Fuel
		if i == 0 {
			// Whatever alice's tally holds beyond her first call's own
			// fuel is the one-time init charge.
			initFuel = srv.StatsSnapshot().Tenants["alice"].Fuel - res.Fuel
		}
	}

	// Bob arrives after the snapshot exists: his forks see the same
	// state, and init ran exactly once across both tenants.
	r, res, _ := invoke(t, ts, "bob", InvokeRequest{Module: up.Module, Function: "init_count", Args: []uint64{0}})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("bob invoke: status %d", r.StatusCode)
	}
	if res.Values[0] != 1 {
		t.Fatalf("init ran %d times, want exactly 1 (per-request re-init defeats the snapshot)", res.Values[0])
	}
	bobCallFuel := res.Fuel

	stats := srv.StatsSnapshot()
	alice, bob := stats.Tenants["alice"], stats.Tenants["bob"]
	// Bob pays exactly his per-call fuel: the init cost must not bleed
	// into tenants who didn't trigger the build.
	if bob.Fuel != bobCallFuel {
		t.Errorf("bob charged %d fuel for a %d-fuel call — init fuel leaked per-request", bob.Fuel, bobCallFuel)
	}
	// Alice pays her per-call fuel plus the init exactly once: her
	// final tally must equal calls + the single init charge observed
	// after request one, with nothing added by requests two through N.
	if initFuel == 0 {
		t.Error("alice was never charged the one-time init fuel")
	}
	if alice.Fuel != aliceCallFuel+initFuel {
		t.Errorf("alice charged %d fuel, want calls(%d) + one-time init(%d): init charged per request",
			alice.Fuel, aliceCallFuel, initFuel)
	}

	// Observability: the snapshot cache built one image and served every
	// checkout by forking it.
	if stats.Snapshots.Entries == 0 {
		t.Error("snapshot cache holds no entries after pre-initialization")
	}
	if stats.Snapshots.Restores == 0 {
		t.Error("no checkout was served by forking the snapshot")
	}
	if stats.RestoreMode != "copy" && stats.RestoreMode != "cow" {
		t.Errorf("restore_mode = %q, want copy or cow", stats.RestoreMode)
	}

	// The Prometheus rendering carries the same counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	prom := buf.String()
	for _, w := range []string{
		`cage_cache_misses_total{cache="snapshot"}`,
		`# TYPE cage_snapshot_restores_total counter`,
		`cage_snapshot_restore_mode{mode="` + stats.RestoreMode + `"} 1`,
	} {
		if !strings.Contains(prom, w) {
			t.Errorf("/metrics output missing %q", w)
		}
	}
}

// TestInitUploadValidation pins the upload-time init checks: a bad name
// or arity fails the upload with a stable code instead of deferring the
// failure to the first unlucky invocation.
func TestInitUploadValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{Config: cage.Baseline64(), ConfigName: "baseline64"})

	var eb errorBody
	resp := postJSON(t, ts, "/v1/modules?init=nope", "", []byte(initGuestSource), &eb)
	if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "init_not_found" {
		t.Errorf("unknown init: got (%d, %q), want (422, init_not_found)", resp.StatusCode, eb.Error.Code)
	}

	eb = errorBody{}
	resp = postJSON(t, ts, "/v1/modules?init=get_token", "", []byte(initGuestSource), &eb)
	if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "init_bad_signature" {
		t.Errorf("init with params: got (%d, %q), want (422, init_bad_signature)", resp.StatusCode, eb.Error.Code)
	}

	// A valid registration wins the id; a cached re-upload reports the
	// original init spec regardless of its own ?init= parameter.
	var up UploadResponse
	resp = postJSON(t, ts, "/v1/modules?init=setup", "", []byte(initGuestSource), &up)
	if resp.StatusCode != http.StatusCreated || up.Init != "setup" {
		t.Fatalf("valid init upload: status %d init %q", resp.StatusCode, up.Init)
	}
	var again UploadResponse
	resp = postJSON(t, ts, "/v1/modules?init=init_count", "", []byte(initGuestSource), &again)
	if resp.StatusCode != http.StatusOK || !again.Cached || again.Init != "setup" {
		t.Errorf("re-upload: status %d cached %t init %q, want (200, true, setup)", resp.StatusCode, again.Cached, again.Init)
	}
}
