// The 4 GiB+ reservation needs a 64-bit address space; 32-bit Linux
// targets use the stub like every other platform.
//go:build cageguard && linux && (amd64 || arm64)

package vmem

import (
	"fmt"
	"sync"
	"syscall"
	"unsafe"
)

// Mapping is one live guard-region reservation; see the package docs
// for the commit/decommit contract.
type Mapping struct {
	region    []byte // the full reservation, PROT_NONE past committed
	committed uint64
}

var (
	probeOnce sync.Once
	probeOK   bool
)

// Supported reports whether the kernel grants PROT_NONE reservations
// of the guard size. Probed once; the result is constant per process.
func Supported() bool {
	probeOnce.Do(func() {
		m, err := Map(0)
		if err == nil {
			probeOK = m.Unmap() == nil
		}
	})
	return probeOK
}

// Map reserves ReservationSize bytes of PROT_NONE address space and
// commits the first commit bytes read-write.
func Map(commit uint64) (*Mapping, error) {
	if commit > GuestLimit {
		return nil, fmt.Errorf("vmem: commit %d exceeds guest limit %d", commit, GuestLimit)
	}
	region, err := syscall.Mmap(-1, 0, int(ReservationSize),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS|syscall.MAP_NORESERVE)
	if err != nil {
		return nil, fmt.Errorf("vmem: reserve %d bytes: %w", ReservationSize, err)
	}
	m := &Mapping{region: region}
	if err := m.SetCommitted(commit); err != nil {
		m.Unmap()
		return nil, err
	}
	return m, nil
}

// Bytes returns the full reservation. Indexing past Committed() is the
// point: it faults in the MMU instead of in a Go bounds check.
func (m *Mapping) Bytes() []byte { return m.region }

// Committed returns the size of the readable-writable prefix.
func (m *Mapping) Committed() uint64 { return m.committed }

// SetCommitted grows or shrinks the committed prefix to exactly n
// bytes (page-rounded). Growth exposes fresh zero pages; shrink
// discards the tail's pages and returns the range to PROT_NONE.
func (m *Mapping) SetCommitted(n uint64) error {
	if n > GuestLimit {
		return fmt.Errorf("vmem: commit %d exceeds guest limit %d", n, GuestLimit)
	}
	page := uint64(syscall.Getpagesize())
	want := (n + page - 1) / page * page
	have := (m.committed + page - 1) / page * page
	switch {
	case want > have:
		if err := mprotect(m.region[have:want], syscall.PROT_READ|syscall.PROT_WRITE); err != nil {
			return fmt.Errorf("vmem: commit [%d,%d): %w", have, want, err)
		}
	case want < have:
		// Discard first so the pages come back zeroed if ever
		// re-committed, then seal the range.
		if err := madviseFree(m.region[want:have]); err != nil {
			return fmt.Errorf("vmem: decommit [%d,%d): %w", want, have, err)
		}
		if err := mprotect(m.region[want:have], syscall.PROT_NONE); err != nil {
			return fmt.Errorf("vmem: seal [%d,%d): %w", want, have, err)
		}
	}
	m.committed = n
	return nil
}

// Owns reports whether addr falls inside the reservation — the
// executor's fault classifier.
func (m *Mapping) Owns(addr uintptr) bool {
	base := uintptr(unsafe.Pointer(&m.region[0]))
	return addr >= base && addr < base+uintptr(len(m.region))
}

// GuestAddr translates a faulting host address to the guest offset it
// named, for trap messages.
func (m *Mapping) GuestAddr(addr uintptr) uint64 {
	return uint64(addr - uintptr(unsafe.Pointer(&m.region[0])))
}

// Unmap releases the reservation. The mapping (and every slice of
// Bytes) must not be touched afterwards.
func (m *Mapping) Unmap() error {
	if m.region == nil {
		return nil
	}
	region := m.region
	m.region = nil
	m.committed = 0
	return syscall.Munmap(region)
}

func mprotect(b []byte, prot int) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MPROTECT,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(prot))
	if errno != 0 {
		return errno
	}
	return nil
}

func madviseFree(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MADV_DONTNEED))
	if errno != 0 {
		return errno
	}
	return nil
}
