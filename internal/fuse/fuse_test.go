package fuse_test

// Structural tests for the superinstruction pass. Semantic equivalence
// (results, traps, event counts) is pinned by the differential suite in
// internal/exec; here we check the rewrite's static contracts: fused
// instructions expand back to their constituents, fences survive
// untouched, every branch target lands inside the rewritten stream,
// profile gating works, and the pass refuses to run twice.

import (
	"testing"

	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/polybench"
	"cage/internal/profile"
)

// lowerKernel builds and lowers a polybench kernel under feats.
func lowerKernel(t *testing.T, name string, wasm64 bool, feats core.Features) *ir.Program {
	t.Helper()
	k, err := polybench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := polybench.Build(k, codegen.Options{
		Wasm64:         wasm64,
		StackSanitizer: feats.MemSafety,
		PtrAuth:        feats.PtrAuth,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := exec.LowerModule(m, exec.Config{Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func countFused(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, in := range f.Code {
			if in.Op.IsFused() {
				n++
			}
		}
	}
	return n
}

// TestFuseRoundTrip: walking the fused and unfused streams in lockstep,
// every fused instruction's Constituents() must reproduce the original
// instructions it replaced — same opcodes, and same immediates for the
// non-branch constituents (branch constituents carry remapped PCs,
// checked separately by TestFuseBranchTargetsValid and the differential
// suite).
func TestFuseRoundTrip(t *testing.T) {
	p := lowerKernel(t, "gemm", true, core.Features{})
	q := fuse.Fuse(p, nil)
	if countFused(q) == 0 {
		t.Fatal("exhaustive fusion produced no fused instructions")
	}
	for fi := range q.Funcs {
		orig, fused := p.Funcs[fi].Code, q.Funcs[fi].Code
		i := 0
		for _, in := range fused {
			cons := in.Constituents()
			if cons == nil {
				// Unfused instruction: must match the original verbatim
				// except for remapped branch immediates.
				if in.Op != orig[i].Op {
					t.Fatalf("func %d pc %d: op %v, original %v", fi, i, in.Op, orig[i].Op)
				}
				i++
				continue
			}
			for _, c := range cons {
				if c.Op != orig[i].Op {
					t.Fatalf("func %d pc %d: constituent %v, original %v", fi, i, c.Op, orig[i].Op)
				}
				switch c.Op {
				case ir.OpLocalGet, ir.OpLocalSet, ir.OpConst:
					if c.A != orig[i].A {
						t.Fatalf("func %d pc %d: %v immediate %#x, original %#x",
							fi, i, c.Op, c.A, orig[i].A)
					}
				}
				i++
			}
		}
		if i != len(orig) {
			t.Fatalf("func %d: expansion covers %d of %d instructions", fi, i, len(orig))
		}
	}
}

// TestFusePreservesFences: under the hardened preset every speculation
// barrier must survive fusion in place — no pattern may absorb or cross
// an OpFence.
func TestFusePreservesFences(t *testing.T) {
	feats := core.CageAll()
	feats.SpectreHarden = true
	p := lowerKernel(t, "gemm", true, feats)
	q := fuse.Fuse(p, nil)
	if countFused(q) == 0 {
		t.Fatal("hardened program fused nothing")
	}
	count := func(p *ir.Program) (n int) {
		for _, f := range p.Funcs {
			for _, in := range f.Code {
				if in.Op == ir.OpFence {
					n++
				}
				for _, c := range in.Constituents() {
					if c.Op == ir.OpFence {
						t.Fatal("fused instruction contains a fence constituent")
					}
				}
			}
		}
		return
	}
	before, after := count(p), count(q)
	if before == 0 {
		t.Fatal("hardened lowering produced no fences")
	}
	if before != after {
		t.Fatalf("fence count changed: %d before fusion, %d after", before, after)
	}
}

// TestFuseBranchTargetsValid: after the PC remap, every branch —
// plain, table, and packed inside a fused instruction — must target a
// PC inside the rewritten stream.
func TestFuseBranchTargetsValid(t *testing.T) {
	for _, name := range []string{"gemm", "jacobi-1d", "durbin"} {
		p := fuse.Fuse(lowerKernel(t, name, true, core.Features{}), nil)
		for fi, f := range p.Funcs {
			check := func(pc, target int) {
				if target < 0 || target >= len(f.Code) {
					t.Fatalf("%s func %d pc %d: branch target %d outside [0,%d)",
						name, fi, pc, target, len(f.Code))
				}
			}
			for pc, in := range f.Code {
				switch in.Op {
				case ir.OpGoto, ir.OpBr, ir.OpBrIf, ir.OpBrIfZ:
					check(pc, int(in.B))
				case ir.OpBrTable:
					for _, bt := range in.Targets {
						check(pc, int(bt.PC))
					}
				case ir.OpFusedSetBr, ir.OpFusedCmpBrIf, ir.OpFusedCmpBrIfZ, ir.OpFusedCmpEqzBrIf:
					check(pc, ir.FusedBranchTarget(in.B))
				}
			}
		}
	}
}

// TestFuseProfileGating: an empty profile fuses nothing (no sequence
// reaches MinCount); a profile naming one hot pair fuses only that
// pattern.
func TestFuseProfileGating(t *testing.T) {
	p := lowerKernel(t, "gemm", true, core.Features{})

	empty := &profile.Profile{}
	if n := countFused(fuse.Fuse(p, empty)); n != 0 {
		t.Fatalf("empty profile fused %d instructions, want 0", n)
	}

	one := &profile.Profile{Seqs: []profile.Seq{{
		Ops:   []string{ir.OpLocalGet.String(), ir.OpLocalGet.String()},
		Count: 1000,
	}}}
	q := fuse.Fuse(p, one)
	if n := countFused(q); n == 0 {
		t.Fatal("single-pair profile fused nothing")
	}
	for _, f := range q.Funcs {
		for _, in := range f.Code {
			if in.Op.IsFused() && in.Op != ir.OpFusedGetGet {
				t.Fatalf("profile named only get+get, got %v", in.Op)
			}
		}
	}
}

// TestFuseIdempotent: a fused program is returned unchanged — PCs have
// already moved once and must not move again.
func TestFuseIdempotent(t *testing.T) {
	p := fuse.Fuse(lowerKernel(t, "gemm", true, core.Features{}), nil)
	if q := fuse.Fuse(p, nil); q != p {
		t.Fatal("refusing a fused program must return it unchanged")
	}
}
