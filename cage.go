// Package cage is a pure-Go reproduction of "Cage: Hardware-Accelerated
// Safe WebAssembly" (CGO 2025): a wasm64 toolchain and runtime that
// provides spatial and temporal memory safety for unmodified C programs
// using (simulated) Arm MTE and PAC.
//
// The package is a facade over the internal subsystems:
//
//   - a MiniC compiler with the paper's two sanitizer passes (stack
//     hardening per Algorithm 1, pointer authentication per Fig. 9)
//   - a wasm64 engine implementing the Cage instruction extension
//     (segment.new / segment.set_tag / segment.free / i64.pointer_sign /
//     i64.pointer_auth, Figs. 7, 10, 11)
//   - MTE-based sandboxing replacing software bounds checks (Figs. 12, 13)
//   - a hardened dlmalloc-style allocator (Fig. 8a)
//   - timing models of the Pixel 8's Cortex-X3/A715/A510 cores that
//     price executions for the paper's evaluation
//
// # Invocation API
//
// Execution is driven through the context-first Call API:
// Engine.Call(ctx, mod, fn, args, opts...) and Instance.Call(ctx, fn,
// args, opts...) return a Result carrying the return values, the fuel
// consumed, and the timing-model event snapshot. Per-call options bound
// the call: WithFuel meters it deterministically, WithTimeout /
// WithDeadline interrupt it (in addition to whatever deadline or
// cancellation ctx itself carries), WithStackDepth bounds recursion at
// an exact frame count, WithValueStack bounds the execution arena in
// words (both trap with TrapStackOverflow), and WithMemoryLimit caps
// memory.grow. Invoke and InvokeF64 remain as deprecated wrappers over
// Call with a background context.
//
// # Host modules
//
// Embedders extend the host surface with Engine.NewHostModule (or
// Runtime.NewHostModule) before the first call: typed adapters
// (HostFunc1, HostVoid2, ...) lower Go functions onto wasm import
// slots, and every host function receives a HostContext carrying the
// call's context, a bounds-checked Memory view over guest memory,
// ConsumeFuel debiting against WithFuel budgets, and re-entrant guest
// Call riding the per-call meter chain. The host surface freezes at
// first use (ErrEngineStarted), so resolved import tables are
// snapshotted per compiled module and shared by pooled instances; the
// built-in WASI, hardened-libc, and env surfaces register through the
// same API. Link failures are structured LinkErrors wrapping
// ErrUnresolvedImport / ErrImportTypeMismatch.
//
// # Execution pipeline
//
// Modules flow compile → lower → cache → pool. CompileSource (or
// DecodeModule) produces a validated wasm.Module; before the first
// execution the module is lowered (internal/ir) into a flat,
// pre-resolved instruction stream specialized for the configuration —
// branch targets become absolute PCs, immediates are decoded once, and
// each memory access is compiled to the configuration's sandboxing
// mode (guard pages, software bounds checks, or MTE). A Runtime caches
// one lowered program per (module content hash, configuration) and
// every instance shares it; an Engine adds the compiled-module cache
// and the recycled-instance pool on top, so steady-state invocations
// touch neither the compiler nor the lowerer nor the §7.2
// instantiation costs.
//
// Every layer of that pipeline is interruptible. A queued checkout —
// blocked on the pool's live cap or on the §7.4 sandbox-tag budget —
// selects on the call's context and abandons the queue when it ends. A
// running guest polls an atomic interrupt flag (armed by a per-call
// context watcher) and the fuel budget at every taken branch and
// function call in the lowered dispatch loop, trapping with
// TrapInterrupted or TrapFuelExhausted; unbounded calls keep the
// zero-cost variant of those checkpoints (a nil test). The interrupted
// instance is reset like any trapped one before the pool reuses it, so
// cancellation never poisons a pooled instance or leaks a tag.
//
// # Quick start
//
//	tc := cage.NewToolchain(cage.FullHardening())
//	mod, err := tc.CompileSource(`
//	    extern char* malloc(long n);
//	    long sum(long n) {
//	        long* a = (long*)malloc(n * 8);
//	        long s = 0;
//	        for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
//	        return s;
//	    }`)
//	rt := cage.NewRuntime(cage.FullHardening())
//	inst, err := rt.Instantiate(mod)
//	res, err := inst.Invoke("sum", 100)
package cage

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/engine"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/minicc"
	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/profile"
	"cage/internal/vmem"
	"cage/internal/wasi"
	"cage/internal/wasm"
)

// Config selects the Cage components for both compilation and execution
// (paper Table 3 configurations).
type Config struct {
	// Wasm64 selects 64-bit linear memory (required by every Cage
	// feature); false builds the wasm32 guard-page baseline.
	Wasm64 bool
	// MemorySafety enables segments: the stack sanitizer at compile
	// time, tag-checked memory and the hardened allocator at run time.
	MemorySafety bool
	// Sandboxing replaces wasm64 software bounds checks with MTE-based
	// sandboxing.
	Sandboxing bool
	// PointerAuth signs and authenticates function pointers.
	PointerAuth bool
	// SpectreHarden layers the Swivel-style speculation mitigations on
	// top of the selected components, in the timing model only: the
	// lowering inserts fence barriers before indirect branches and
	// returns, and the executor charges a BTB flush at every sandbox
	// transition. Execution semantics are bit-identical to the same
	// configuration without it — results, traps, and memory images match
	// — so the flag surfaces purely as extra fence/btb_flush events and
	// the fuel they cost (the mitigation tax of the paper's threat-model
	// discussion).
	SpectreHarden bool
}

// Preset configurations (paper Table 3).

// Baseline32 is 32-bit WebAssembly with guard-page sandboxing.
func Baseline32() Config { return Config{} }

// Baseline64 is 64-bit WebAssembly with software bounds checks.
func Baseline64() Config { return Config{Wasm64: true} }

// MemorySafetyOnly enables only the internal memory-safety extension.
func MemorySafetyOnly() Config { return Config{Wasm64: true, MemorySafety: true} }

// PointerAuthOnly enables only pointer authentication.
func PointerAuthOnly() Config { return Config{Wasm64: true, PointerAuth: true} }

// SandboxingOnly enables only MTE-based external sandboxing.
func SandboxingOnly() Config { return Config{Wasm64: true, Sandboxing: true} }

// FullHardening enables every Cage component.
func FullHardening() Config {
	return Config{Wasm64: true, MemorySafety: true, Sandboxing: true, PointerAuth: true}
}

// Hardened is FullHardening plus the modeled Spectre mitigations:
// speculation fences at indirect branches and returns, and BTB flushes
// at sandbox transitions. Same semantics as FullHardening — only the
// event/fuel accounting differs.
func Hardened() Config {
	cfg := FullHardening()
	cfg.SpectreHarden = true
	return cfg
}

// ConfigByName maps the preset names the CLI tools share (full,
// hardened, baseline32, baseline64, memsafety, ptrauth, sandbox) to
// their Config, so every tool resolves a name to the exact same
// configuration.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "full":
		return FullHardening(), nil
	case "hardened":
		return Hardened(), nil
	case "baseline32":
		return Baseline32(), nil
	case "baseline64":
		return Baseline64(), nil
	case "memsafety":
		return MemorySafetyOnly(), nil
	case "ptrauth":
		return PointerAuthOnly(), nil
	case "sandbox":
		return SandboxingOnly(), nil
	}
	return Config{}, fmt.Errorf("cage: unknown config %q", name)
}

// Features exposes the core feature selection this configuration
// implies — the form the lowering and execution layers consume. Tools
// that lower modules outside a Runtime (cage-objdump -lowered) use it
// so their output matches what an engine under the same preset
// executes.
func (c Config) Features() core.Features { return c.features() }

func (c Config) features() core.Features {
	return core.Features{
		MemSafety:     c.MemorySafety,
		Sandbox:       c.Sandboxing,
		PtrAuth:       c.PointerAuth,
		MTEMode:       mte.ModeSync,
		SpectreHarden: c.SpectreHarden,
	}
}

func (c Config) codegenOptions() codegen.Options {
	return codegen.Options{
		Wasm64:         c.Wasm64,
		StackSanitizer: c.MemorySafety,
		PtrAuth:        c.PointerAuth,
	}
}

// Module is a compiled WebAssembly module.
type Module struct {
	wasm *wasm.Module

	// Content hash for the lowered-program cache, computed lazily from
	// the binary encoding (the same identity the module cache uses).
	hashOnce sync.Once
	hash     [sha256.Size]byte
	hashErr  error
}

// contentHash returns the module's binary-encoding SHA-256, memoized.
func (m *Module) contentHash() ([sha256.Size]byte, error) {
	m.hashOnce.Do(func() {
		bin, err := wasm.Encode(m.wasm)
		if err != nil {
			m.hashErr = err
			return
		}
		m.hash = sha256.Sum256(bin)
	})
	return m.hash, m.hashErr
}

// Raw exposes the underlying module representation.
func (m *Module) Raw() *wasm.Module { return m.wasm }

// Encode serializes the module to the binary format.
func (m *Module) Encode() ([]byte, error) { return wasm.Encode(m.wasm) }

// DecodeModule parses a binary module image.
func DecodeModule(bin []byte) (*Module, error) {
	raw, err := wasm.Decode(bin)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(raw); err != nil {
		return nil, err
	}
	return &Module{wasm: raw}, nil
}

// Toolchain compiles MiniC source to (hardened) wasm modules.
type Toolchain struct {
	cfg Config
}

// NewToolchain builds a compiler pipeline for the configuration.
func NewToolchain(cfg Config) *Toolchain { return &Toolchain{cfg: cfg} }

// CompileSource compiles a MiniC translation unit.
func (tc *Toolchain) CompileSource(src string) (*Module, error) {
	file, err := minicc.Parse(src)
	if err != nil {
		return nil, err
	}
	layout := minicc.Layout64
	if !tc.cfg.Wasm64 {
		layout = minicc.Layout32
	}
	prog, err := minicc.Analyze(file, layout)
	if err != nil {
		return nil, err
	}
	raw, err := codegen.Compile(prog, tc.cfg.codegenOptions())
	if err != nil {
		return nil, err
	}
	return &Module{wasm: raw}, nil
}

// Runtime instantiates modules under a shared process context: one PAC
// process key, one sandbox-tag allocator (at most 15 sandboxes per
// process, paper §7.4), and one host surface. Instantiate is safe to
// call concurrently; the sandbox allocator serializes tag assignment
// internally.
type Runtime struct {
	cfg       Config
	key       pac.Key
	sandboxes *core.SandboxAllocator
	seed      atomic.Uint64
	stdout    io.Writer
	stderr    io.Writer

	// Host surface: the built-in modules (hardened libc, WASI, env)
	// plus embedder modules registered via NewHostModule. The set
	// freezes at the first Instantiate — afterwards NewHostModule fails
	// with ErrEngineStarted — so resolved import tables can be cached
	// per module and shared by pooled instances.
	hostMu      sync.Mutex
	hostStarted bool
	hostMods    []*exec.HostModule

	// programs caches lowered instruction streams per (module content
	// hash, lowering config): every instance of one module under this
	// runtime shares a single ir.Program, so the lowering pass runs
	// once per process instead of once per instantiation. imports is
	// the same idea for resolved import tables (keyed on the content
	// hash alone: the host surface is frozen and configuration does not
	// influence linking).
	programs engine.Cache[*ir.Program]
	imports  engine.Cache[*exec.ImportTable]

	// dispatch is the hot-sequence profile driving superinstruction
	// fusion (internal/fuse) over freshly lowered programs. It defaults
	// to the checked-in polybench corpus; SetDispatchProfile swaps it
	// (nil disables fusion). The profile's identity is part of the
	// program cache key, so programs fused under different profiles
	// never alias.
	dispatch atomic.Pointer[profile.Profile]
}

// NewRuntime creates a process-level runtime for the configuration.
func NewRuntime(cfg Config) *Runtime {
	rt := &Runtime{
		cfg:       cfg,
		key:       pac.KeyFromSeed(0xCA6E_2025),
		sandboxes: core.NewSandboxAllocator(core.NewPolicy(cfg.features())),
	}
	rt.hostMods = append(rt.hostMods, alloc.HostModules()...)
	rt.hostMods = append(rt.hostMods, wasi.HostModule())
	rt.hostMods = append(rt.hostMods, envHostModules(rt)...)
	rt.seed.Store(1)
	rt.dispatch.Store(profile.Default())
	return rt
}

// SetDispatchProfile selects the hot-sequence profile that drives
// superinstruction fusion for programs lowered after the call; nil
// disables fusion entirely (the unfused tier). Programs already cached
// under another profile are unaffected — the profile identity is part
// of the cache key — so the method is safe at any point, though setting
// it before the first Instantiate avoids lowering twice. The default is
// the checked-in polybench corpus (profile.Default).
func (rt *Runtime) SetDispatchProfile(p *profile.Profile) { rt.dispatch.Store(p) }

// DispatchMode reports the execution tier this runtime builds programs
// for: the linear-memory backend ("guard" when the cageguard build
// backs guard32 memories with a vmem reservation, "bounds" otherwise)
// and the identity of the fusion profile driving the superinstruction
// pass ("none" when fusion is disabled).
func (rt *Runtime) DispatchMode() (memory, fusion string) {
	memory = "bounds"
	if vmem.Supported() {
		memory = "guard"
	}
	return memory, rt.dispatch.Load().ID()
}

// NewHostModule creates an embedder host module named name and
// registers it with the runtime: its functions become importable by
// every module instantiated afterwards. Functions land in the guest's
// import namespace alongside the built-ins — a module named "env"
// extends the default env surface (MiniC extern functions resolve
// there), and a per-function name collision with a built-in surfaces
// as a link error at Instantiate.
//
// The host surface is fixed at the runtime's first Instantiate (the
// engine's first Call); afterwards NewHostModule fails with
// ErrEngineStarted, mirroring SetPoolLimit and friends.
func (rt *Runtime) NewHostModule(name string) (*HostModule, error) {
	rt.hostMu.Lock()
	defer rt.hostMu.Unlock()
	if rt.hostStarted {
		return nil, ErrEngineStarted
	}
	hm := exec.NewHostModule(name)
	rt.hostMods = append(rt.hostMods, hm)
	return hm, nil
}

// hostModules freezes and returns the runtime's host surface.
func (rt *Runtime) hostModules() []*exec.HostModule {
	rt.hostMu.Lock()
	defer rt.hostMu.Unlock()
	if !rt.hostStarted {
		rt.hostStarted = true
		for _, hm := range rt.hostMods {
			hm.Freeze()
		}
	}
	return rt.hostMods
}

// importTable resolves (with caching) m's imports against the frozen
// host surface. Link failures carry structured detail: errors.Is
// ErrUnresolvedImport / ErrImportTypeMismatch, errors.As *LinkError.
func (rt *Runtime) importTable(m *Module) (*exec.ImportTable, error) {
	mods := rt.hostModules()
	hash, err := m.contentHash()
	if err != nil {
		return exec.ResolveImports(m.wasm, mods...)
	}
	key := engine.Key{Hash: hash, Variant: "imports"}
	return rt.imports.GetOrBuild(key, func() (*exec.ImportTable, error) {
		return exec.ResolveImports(m.wasm, mods...)
	})
}

// SetStdio routes WASI fd_write output.
func (rt *Runtime) SetStdio(stdout, stderr io.Writer) {
	rt.stdout, rt.stderr = stdout, stderr
}

// EnableExtendedSandboxes lifts the 15-sandbox-per-process limit by
// reusing tags across instances with disjoint, guard-separated memory
// ranges — the scaling extension the paper sketches in §6.4.
func (rt *Runtime) EnableExtendedSandboxes() { rt.sandboxes.EnableTagReuse() }

// Instance is a running module.
type Instance struct {
	inst  *exec.Instance
	alloc *alloc.Allocator
}

// hostState is the per-instance host-side state every host function
// reaches through HostContext.Data: the hardened allocator binding
// (alloc.Provider) and the WASI system (wasi.Provider). One value per
// instance keeps the host modules themselves stateless, so a single
// resolved import table serves every pooled instance of a module.
type hostState struct {
	alloc *alloc.Allocator
	wasi  *wasi.System
}

func (h *hostState) HeapAllocator() *alloc.Allocator { return h.alloc }
func (h *hostState) WASISystem() *wasi.System        { return h.wasi }

// Instantiate validates, links (WASI + hardened libc + env helpers +
// registered embedder host modules), and instantiates a module. The
// first Instantiate freezes the runtime's host surface.
func (rt *Runtime) Instantiate(m *Module) (*Instance, error) {
	return rt.instantiate(m, nil)
}

// instantiate is Instantiate with an optional snapshot: when snap is
// non-nil the instance is forked from the frozen image (exec restores
// memory/globals/table/tags, the allocator adopts the image's heap
// bookkeeping) instead of replaying data segments, tagging memory, and
// running the start function.
func (rt *Runtime) instantiate(m *Module, snap *Snapshot) (*Instance, error) {
	table, err := rt.importTable(m)
	if err != nil {
		return nil, err
	}
	state := &hostState{wasi: wasi.New(rt.stdout, rt.stderr)}
	ecfg := exec.Config{
		Features:   rt.cfg.features(),
		Imports:    table,
		HostData:   state,
		ProcessKey: rt.key,
		Seed:       rt.seed.Add(1),
		Sandboxes:  rt.sandboxes,
	}
	if snap != nil {
		ecfg.Snapshot = snap.exec
	}
	prog, err := rt.loweredProgram(m, ecfg)
	if err != nil {
		return nil, err
	}
	ecfg.Program = prog
	inst, err := exec.NewInstance(m.wasm, ecfg)
	if err != nil {
		return nil, err
	}
	out := &Instance{inst: inst}
	if heapBase, ok := inst.GlobalValue("__heap_base"); ok {
		out.alloc, err = alloc.New(inst, heapBase)
		if err != nil {
			inst.Close() // return the sandbox tag
			return nil, err
		}
		if snap != nil && snap.hasHeap {
			out.alloc.Restore(snap.heap)
		}
		state.alloc = out.alloc
	}
	return out, nil
}

// loweredProgram returns the shared lowered program for m under the
// runtime's configuration, lowering on first use. The cache is keyed by
// the module's content hash plus the derived lowering config — exactly
// the compiled-module cache's identity — with singleflight semantics.
// A module whose binary encoding fails (never produced by this
// toolchain) is lowered privately instead of cached.
func (rt *Runtime) loweredProgram(m *Module, ecfg exec.Config) (*ir.Program, error) {
	lcfg := exec.LowerConfig(m.wasm, ecfg)
	prof := rt.dispatch.Load()
	build := func() (*ir.Program, error) {
		p, err := ir.Lower(m.wasm, lcfg)
		if err != nil || prof == nil {
			return p, err
		}
		return fuse.Fuse(p, prof), nil
	}
	hash, err := m.contentHash()
	if err != nil {
		return build()
	}
	variant := fmt.Sprintf("ir|%+v", lcfg)
	if prof != nil {
		variant += "|fuse|" + prof.ID()
	}
	key := engine.Key{Hash: hash, Variant: variant}
	return rt.programs.GetOrBuild(key, build)
}

// ProgramCacheStats snapshots the lowered-program cache counters.
func (rt *Runtime) ProgramCacheStats() engine.CacheStats { return rt.programs.Stats() }

// Invoke calls an exported function with raw 64-bit argument bits.
//
// Deprecated: use Call, which adds context cancellation, deadlines, and
// per-call fuel/stack/memory bounds. Invoke delegates to Call with a
// background context.
func (i *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	res, err := i.Call(context.Background(), name, args)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// InvokeF64 calls an exported function returning a double.
//
// Deprecated: use Call and Result.F64.
func (i *Instance) InvokeF64(name string, args ...uint64) (float64, error) {
	res, err := i.Call(context.Background(), name, args)
	if err != nil {
		return 0, err
	}
	return res.F64(name)
}

// Memory exposes the guest linear memory.
func (i *Instance) Memory() []byte { return i.inst.Memory() }

// Counter exposes the lowered-code event counter for timing analysis.
func (i *Instance) Counter() *arch.Counter { return i.inst.Counter() }

// Allocator exposes the hardened allocator (nil if the module declares
// no memory).
func (i *Instance) Allocator() *alloc.Allocator { return i.alloc }

// Raw exposes the underlying engine instance.
func (i *Instance) Raw() *exec.Instance { return i.inst }

// Close retires the instance, returning its sandbox tag to the process
// allocator (§6.4 tag budget). Pooled instances are closed by their
// Engine; call this only for instances created via Runtime.Instantiate.
func (i *Instance) Close() error { return i.inst.Close() }

// envHostModules builds the small env host surface MiniC programs use,
// in both the wasm64 ("env") and ILP32 wasm32 ("env32") ABI variants,
// on the typed adapters (print_str's Str parameter is the (ptr, len)
// pair read through the bounds-checked Memory view). The print
// functions read rt.stdout at call time, so SetStdio keeps working.
func envHostModules(rt *Runtime) []*exec.HostModule {
	build := func(hm *exec.HostModule) *exec.HostModule {
		exec.Func1(hm, "sqrt", func(_ *exec.HostContext, x float64) (float64, error) {
			return math.Sqrt(x), nil
		})
		exec.Void1(hm, "print_double", func(_ *exec.HostContext, v float64) error {
			if rt.stdout != nil {
				fmt.Fprintf(rt.stdout, "%g\n", v)
			}
			return nil
		})
		exec.Void1(hm, "print_str", func(_ *exec.HostContext, s exec.Str) error {
			if rt.stdout != nil {
				fmt.Fprintf(rt.stdout, "%s", string(s))
			}
			return nil
		})
		exec.Void1(hm, "sink", func(_ *exec.HostContext, _ exec.Ptr) error { return nil })
		return hm
	}
	env := build(exec.NewHostModule("env"))
	exec.Void1(env, "print_long", func(_ *exec.HostContext, v int64) error {
		if rt.stdout != nil {
			fmt.Fprintf(rt.stdout, "%d\n", v)
		}
		return nil
	})
	env32 := build(exec.NewHostModule("env32").Ptr32())
	exec.Void1(env32, "print_long", func(_ *exec.HostContext, v int32) error {
		if rt.stdout != nil {
			fmt.Fprintf(rt.stdout, "%d\n", v)
		}
		return nil
	})
	return []*exec.HostModule{env, env32}
}

// Trap classification helpers for embedders.

// IsMemorySafetyViolation reports a spatial/temporal violation caught by
// MTE (tag mismatch) or by a segment instruction (double free, invalid
// segment).
func IsMemorySafetyViolation(err error) bool {
	var t *exec.Trap
	if errors.As(err, &t) {
		return t.Code == exec.TrapTagMismatch || t.Code == exec.TrapSegment
	}
	// Host-side allocator violations (invalid/double free) surface as
	// host traps wrapping alloc errors.
	return errors.Is(err, alloc.ErrInvalidFree)
}

// IsSandboxViolation reports an attempted sandbox escape.
func IsSandboxViolation(err error) bool {
	var t *exec.Trap
	if errors.As(err, &t) {
		return t.Code == exec.TrapOutOfBounds || t.Code == exec.TrapTagMismatch
	}
	return false
}

// IsAuthFailure reports a failed pointer authentication.
func IsAuthFailure(err error) bool {
	var t *exec.Trap
	return errors.As(err, &t) && t.Code == exec.TrapAuthFailure
}
