// Command cage-objdump disassembles a wasm binary into a WAT-style text
// listing, including the Cage extension instructions.
//
// Usage:
//
//	cage-objdump module.wasm
package main

import (
	"fmt"
	"os"

	"cage/internal/wasm"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: cage-objdump module.wasm")
		os.Exit(2)
	}
	bin, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(wasm.Wat(m))
}
