package mte

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewMemoryStartsUntagged(t *testing.T) {
	m := NewMemory(1024, ModeSync)
	for a := uint64(0); a < 1024; a += GranuleSize {
		if m.TagAt(a) != 0 {
			t.Fatalf("granule %#x tagged %d at startup", a, m.TagAt(a))
		}
	}
}

func TestSetTagRangeAndCheck(t *testing.T) {
	m := NewMemory(256, ModeSync)
	if err := m.SetTagRange(32, 64, 5); err != nil {
		t.Fatal(err)
	}
	// Matching tag passes.
	if err := m.CheckAccess(40, 8, 5, false); err != nil {
		t.Errorf("matching access failed: %v", err)
	}
	// Wrong tag faults synchronously.
	err := m.CheckAccess(40, 8, 3, true)
	var tf *TagFault
	if !errors.As(err, &tf) {
		t.Fatalf("wrong-tag access: got %v, want TagFault", err)
	}
	if tf.PtrTag != 3 || tf.MemTag != 5 || !tf.Write {
		t.Errorf("fault details: %+v", tf)
	}
	// Untagged pointer to untagged memory passes.
	if err := m.CheckAccess(0, 16, 0, false); err != nil {
		t.Errorf("untagged access failed: %v", err)
	}
	// Untagged pointer to tagged memory faults (segment provenance).
	if err := m.CheckAccess(32, 8, 0, false); err == nil {
		t.Error("untagged pointer accessed tagged segment")
	}
}

func TestSetTagRangeAlignment(t *testing.T) {
	m := NewMemory(256, ModeSync)
	if err := m.SetTagRange(8, 16, 1); err == nil {
		t.Error("unaligned address accepted")
	}
	if err := m.SetTagRange(16, 8, 1); err == nil {
		t.Error("unaligned length accepted")
	}
	if err := m.SetTagRange(240, 32, 1); err == nil {
		t.Error("out-of-bounds range accepted")
	}
}

func TestAccessSpanningTagBoundaryFaults(t *testing.T) {
	m := NewMemory(256, ModeSync)
	if err := m.SetTagRange(0, 16, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.SetTagRange(16, 16, 9); err != nil {
		t.Fatal(err)
	}
	// An 8-byte access straddling the two granules cannot match both.
	if err := m.CheckAccess(12, 8, 4, false); err == nil {
		t.Error("access spanning differently-tagged granules passed")
	}
}

func TestAsyncModeLatchesFault(t *testing.T) {
	m := NewMemory(128, ModeAsync)
	if err := m.SetTagRange(0, 32, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckAccess(0, 8, 2, true); err != nil {
		t.Fatalf("async mode returned sync fault: %v", err)
	}
	f := m.PendingFault()
	if f == nil {
		t.Fatal("async fault not latched")
	}
	if !f.Async {
		t.Error("latched fault not marked async")
	}
	if m.PendingFault() != nil {
		t.Error("PendingFault did not clear the latch")
	}
}

func TestAsymmetricMode(t *testing.T) {
	m := NewMemory(128, ModeAsymmetric)
	if err := m.SetTagRange(0, 32, 7); err != nil {
		t.Fatal(err)
	}
	// Reads are async.
	if err := m.CheckAccess(0, 8, 2, false); err != nil {
		t.Errorf("asymmetric read should be async, got %v", err)
	}
	if m.PendingFault() == nil {
		t.Error("asymmetric read fault not latched")
	}
	// Writes are sync.
	if err := m.CheckAccess(0, 8, 2, true); err == nil {
		t.Error("asymmetric write should fault synchronously")
	}
}

func TestDisabledModeChecksNothing(t *testing.T) {
	m := NewMemory(128, ModeDisabled)
	if err := m.SetTagRange(0, 32, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckAccess(0, 8, 2, true); err != nil {
		t.Errorf("disabled mode faulted: %v", err)
	}
	if m.PendingFault() != nil {
		t.Error("disabled mode latched a fault")
	}
}

func TestRandomTagRespectsExcludeMask(t *testing.T) {
	m := NewMemory(64, ModeSync)
	// Exclude tag 0 and tags 8..15 (the Cage sandbox-bit reservation).
	if err := m.SetExcludeMask(0xFF01); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tag := m.RandomTag()
		if tag == 0 || tag >= 8 {
			t.Fatalf("RandomTag produced excluded tag %d", tag)
		}
	}
}

func TestExcludeAllRejected(t *testing.T) {
	m := NewMemory(64, ModeSync)
	if err := m.SetExcludeMask(0xFFFF); err == nil {
		t.Error("exclude mask with no usable tags accepted")
	}
}

func TestNextTagSkipsExcluded(t *testing.T) {
	m := NewMemory(64, ModeSync)
	if err := m.SetExcludeMask(1 << 0); err != nil { // exclude zero tag
		t.Fatal(err)
	}
	if got := m.NextTag(15); got != 1 {
		t.Errorf("NextTag(15) = %d, want 1 (skipping excluded 0)", got)
	}
	if got := m.NextTag(3); got != 4 {
		t.Errorf("NextTag(3) = %d, want 4", got)
	}
}

func TestRandomTagUniformCoverage(t *testing.T) {
	m := NewMemory(64, ModeSync)
	m.Seed(42)
	seen := make(map[uint8]int)
	for i := 0; i < 4800; i++ {
		seen[m.RandomTag()]++
	}
	if len(seen) != 16 {
		t.Fatalf("RandomTag covered %d/16 tags", len(seen))
	}
	for tag, n := range seen {
		if n < 150 {
			t.Errorf("tag %d drawn only %d/4800 times", tag, n)
		}
	}
}

func TestGrowPreservesTags(t *testing.T) {
	m := NewMemory(64, ModeSync)
	if err := m.SetTagRange(0, 32, 9); err != nil {
		t.Fatal(err)
	}
	m.Grow(256)
	if m.Size() != 256 {
		t.Fatalf("Size after grow = %d", m.Size())
	}
	if m.TagAt(0) != 9 {
		t.Error("grow lost existing tags")
	}
	if m.TagAt(128) != 0 {
		t.Error("grown region not zero-tagged")
	}
}

func TestRangeTagProperty(t *testing.T) {
	// Property: after SetTagRange(addr, len, tag), RangeTag over any
	// sub-range reports (tag, true).
	f := func(startG, lenG uint8, tag uint8) bool {
		m := NewMemory(4096, ModeSync)
		start := uint64(startG%64) * GranuleSize
		length := (uint64(lenG%64) + 1) * GranuleSize
		if start+length > 4096 {
			length = 4096 - start
		}
		if length == 0 {
			return true
		}
		if err := m.SetTagRange(start, length, tag%16); err != nil {
			return false
		}
		got, ok := m.RangeTag(start, length)
		return ok && got == tag%16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagStoreOpProperties(t *testing.T) {
	// Table 4 invariants.
	cases := []struct {
		op       TagStoreOp
		granules int
		zeroes   bool
	}{
		{OpSTG, 1, false},
		{OpST2G, 2, false},
		{OpSTZG, 1, true},
		{OpST2ZG, 2, true},
		{OpSTGP, 1, true},
	}
	for _, c := range cases {
		if c.op.Granules() != c.granules {
			t.Errorf("%v.Granules() = %d, want %d", c.op, c.op.Granules(), c.granules)
		}
		if c.op.ZeroesData() != c.zeroes {
			t.Errorf("%v.ZeroesData() = %v, want %v", c.op, c.op.ZeroesData(), c.zeroes)
		}
	}
}

func TestTagStoreOpApply(t *testing.T) {
	m := NewMemory(128, ModeSync)
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = 0xAA
	}
	if err := OpSTZG.Apply(m, buf, 16, 3); err != nil {
		t.Fatal(err)
	}
	if m.TagAt(16) != 3 {
		t.Error("stzg did not tag")
	}
	if buf[16] != 0 || buf[31] != 0 {
		t.Error("stzg did not zero data")
	}
	if buf[15] != 0xAA || buf[32] != 0xAA {
		t.Error("stzg zeroed bytes outside its granule")
	}
	if err := OpST2G.Apply(m, buf, 32, 4); err != nil {
		t.Fatal(err)
	}
	if m.TagAt(32) != 4 || m.TagAt(48) != 4 {
		t.Error("st2g did not tag two granules")
	}
	if buf[32] != 0xAA {
		t.Error("st2g must not zero data")
	}
}
