package bench

// Scaling record: the multicore scale-out benchmark's JSON shape. The
// measurement lives in internal/serve (serve.MeasureScaling) — it
// drives the serve handler in-process (no network round-trip, so the
// numbers price the serve/engine hot path itself rather than loopback
// TCP) under two modes: "locked", the pre-scale-out path (mutex-guarded
// engine caches, condvar-only pool checkout, the allocating legacy
// request handler), and "fast", the sharded/lock-free/zero-alloc path.
// The record is the PR's trajectory artifact: the fast path must pull
// ahead as concurrency exceeds GOMAXPROCS, where lock convoys and
// allocator pressure dominate the locked path.

// ScalingPoint is one (path, GOMAXPROCS, concurrency) measurement.
type ScalingPoint struct {
	// Path is "locked" (pre-PR semantics: mutexed caches, condvar pool,
	// allocating handler) or "fast" (sharded caches, Treiber-stack
	// checkout, zero-alloc handler).
	Path string `json:"path"`
	// GOMAXPROCS is the scheduler width the point ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Concurrency is the number of in-flight client goroutines.
	Concurrency int `json:"concurrency"`
	// Requests is how many invocations the point measured; Errors counts
	// failures (a healthy sweep stays inside quota, so this should be 0).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// P50Ns/P99Ns are request-latency percentiles, comparable within one
	// run of one machine only.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// ThroughputRPS is successful requests per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MutexWaitNs is the runtime/metrics /sync/mutex/wait/total delta
	// across the point — total goroutine-nanoseconds blocked on mutexes,
	// the direct witness that the fast path removed lock convoys.
	MutexWaitNs int64 `json:"mutex_wait_ns"`
	// AllocsPerOp is heap objects allocated per request
	// (/gc/heap/allocs:objects delta over requests).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ScalingRecord is the cage-bench JSON "scaling" record: same-binary
// A/B of the locked and fast serve paths across GOMAXPROCS ×
// concurrency.
type ScalingRecord struct {
	// Workload names the benchmark guest; N is its problem size.
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// RequestsPerClient is the per-concurrency-level request multiplier.
	RequestsPerClient int `json:"requests_per_client"`
	// Points holds every (path, gomaxprocs, concurrency) measurement in
	// sweep order.
	Points []ScalingPoint `json:"points"`
	// Speedup maps "g<gomaxprocs>/c<concurrency>" to fast÷locked
	// throughput at that cell.
	Speedup map[string]float64 `json:"speedup"`
}
