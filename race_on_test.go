//go:build race

package cage

// raceTestEnabled skips allocation-count gates under -race, whose
// instrumentation allocates on paths that are heap-free in real builds.
const raceTestEnabled = true
