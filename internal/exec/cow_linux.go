//go:build cagecow && linux && (amd64 || arm64)

package exec

import (
	"syscall"
	"unsafe"
)

// snapshotRestoreMode: this build restores snapshots by mapping a
// MAP_PRIVATE copy-on-write view of a sealed memfd image.
const snapshotRestoreMode = "cow"

// Linux memfd/seal constants (the frozen syscall package predates
// memfd_create, so the syscall number lives in cow_sysnum_*.go).
const (
	mfdCloexec      = 0x1
	mfdAllowSealing = 0x2
	fAddSeals       = 1024 + 9 // F_ADD_SEALS
	sealSeal        = 0x1
	sealShrink      = 0x2
	sealGrow        = 0x4
	sealWrite       = 0x8
)

// cowImage is a sealed memfd holding the frozen snapshot image — the
// memory bytes followed by the tag bytes. Every restore maps a private
// (MAP_PRIVATE) view: forks share the clean pages read-only and the
// kernel copies only what each fork dirties, so restoring a multi-MiB
// heap costs one mmap, not one memcpy.
type cowImage struct {
	fd     int
	memLen int
	tagLen int
}

// newCOWImage materializes the image, or returns nil when the kernel
// refuses anything (the caller then falls back to copy restores — a
// snapshot never fails just because COW is unavailable).
func newCOWImage(mem, tags []byte) *cowImage {
	name := []byte("cage-snapshot\x00")
	fd, _, errno := syscall.Syscall(sysMemfdCreate,
		uintptr(unsafe.Pointer(&name[0])), mfdCloexec|mfdAllowSealing, 0)
	if errno != 0 {
		return nil
	}
	img := &cowImage{fd: int(fd), memLen: len(mem), tagLen: len(tags)}
	if !img.writeAll(mem, 0) || !img.writeAll(tags, int64(len(mem))) {
		img.close()
		return nil
	}
	// Seal the image shut: it can never shrink, grow, or be written
	// again, so every fork maps exactly the frozen state. MAP_PRIVATE
	// views remain writable — private dirty pages never reach the file.
	syscall.Syscall(syscall.SYS_FCNTL, fd, fAddSeals,
		sealSeal|sealShrink|sealGrow|sealWrite)
	return img
}

func (c *cowImage) writeAll(b []byte, off int64) bool {
	for len(b) > 0 {
		n, err := syscall.Pwrite(c.fd, b, off)
		if err != nil || n <= 0 {
			return false
		}
		b = b[n:]
		off += int64(n)
	}
	return true
}

// mapView maps one private copy-on-write view of the image. mem and
// tags alias a single mapping; unmap releases it and must only run once
// neither slice is referenced anymore.
func (c *cowImage) mapView() (mem, tags []byte, unmap func(), err error) {
	total := c.memLen + c.tagLen
	view, err := syscall.Mmap(c.fd, 0, total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, nil, err
	}
	return view[:c.memLen:c.memLen], view[c.memLen:total:total],
		func() { _ = syscall.Munmap(view) }, nil
}

// close releases the backing memfd. Existing private views survive; new
// mapViews fail.
func (c *cowImage) close() {
	if c != nil && c.fd >= 0 {
		_ = syscall.Close(c.fd)
		c.fd = -1
	}
}
