package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"cage"
)

// TestServeRequestZeroAlloc is the serve-layer CI gate: one admitted
// invoke — tenant resolution, body parse, module/function lookup,
// admission, pooled checkout, guest call, response encode — performs
// zero steady-state heap allocations when the tenant policy carries no
// fuel or timeout bound and the context is not cancellable. This is
// the contract the whole hot path exists for; any regression here is a
// per-request allocation at serving rates.
func TestServeRequestZeroAlloc(t *testing.T) {
	if raceServeEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	srv, err := New(Options{
		Config:       cage.SandboxingOnly(),
		ConfigName:   "sandbox",
		DefaultQuota: QuotaPolicy{MaxConcurrent: 8, MaxQueue: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Register through the real handler once (setup may allocate).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/modules", bytes.NewReader([]byte(guestSource))))
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload: status %d", rec.Code)
	}
	var up UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/invoke", nil)
	tn := srv.tenantFor(req)
	body := fmt.Sprintf(`{"module":%q,"function":"add","args":[3,4]}`, up.Module)
	ctx := context.Background()

	sc := getScratch()
	defer putScratch(sc)
	sc.buf = append(sc.buf[:0], body...)

	// Warm: spawn the instance, build the pool, publish every snapshot
	// map, and verify the response while we are at it.
	srv.invokePooled(ctx, tn, sc)
	if sc.status != http.StatusOK {
		t.Fatalf("warm invoke: status %d (%+v)", sc.status, sc.apiErr)
	}
	var resp InvokeResponse
	if err := json.Unmarshal(sc.out, &resp); err != nil {
		t.Fatalf("response %q is not JSON: %v", sc.out, err)
	}
	if len(resp.Values) != 1 || resp.Values[0] != 7 {
		t.Fatalf("add(3,4) = %v, want [7]", resp.Values)
	}
	if resp.Fuel == 0 || len(resp.Events) == 0 {
		t.Fatalf("telemetry missing: fuel=%d events=%v", resp.Fuel, resp.Events)
	}

	if n := testing.AllocsPerRun(500, func() {
		srv.invokePooled(ctx, tn, sc)
		if sc.status != http.StatusOK {
			panic("invoke failed mid-measurement")
		}
	}); n != 0 {
		t.Fatalf("admitted invoke allocates %v/op steady-state, want 0", n)
	}
}

// BenchmarkServeRequest prices one admitted invoke through the full
// hot path (parse, lookup, admission, pooled checkout, guest call,
// encode), the serve-layer companion to the engine-layer checkout and
// cache benchmarks.
func BenchmarkServeRequest(b *testing.B) {
	srv, err := New(Options{Config: cage.SandboxingOnly(), ConfigName: "sandbox"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/modules", bytes.NewReader([]byte(guestSource))))
	if rec.Code != http.StatusCreated {
		b.Fatalf("upload: status %d", rec.Code)
	}
	var up UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		b.Fatal(err)
	}
	tn := srv.tenantFor(httptest.NewRequest(http.MethodPost, "/v1/invoke", nil))
	sc := getScratch()
	defer putScratch(sc)
	sc.buf = append(sc.buf[:0], fmt.Sprintf(`{"module":%q,"function":"add","args":[3,4]}`, up.Module)...)
	ctx := context.Background()
	srv.invokePooled(ctx, tn, sc)
	if sc.status != http.StatusOK {
		b.Fatalf("status %d (%+v)", sc.status, sc.apiErr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.invokePooled(ctx, tn, sc)
	}
}

// TestHotPathMatchesLegacy runs the same request corpus against a hot
// server and a LegacyHotPath server and requires identical status
// codes and semantically identical JSON bodies — the A/B knob must be
// a pure performance switch, never a behavior switch.
func TestHotPathMatchesLegacy(t *testing.T) {
	mk := func(legacy bool) (*httptest.Server, string) {
		opts := Options{
			Config:        cage.SandboxingOnly(),
			ConfigName:    "sandbox",
			DefaultQuota:  QuotaPolicy{Fuel: 1_000_000, MaxConcurrent: 4, MaxQueue: 4},
			LegacyHotPath: legacy,
		}
		ts, _ := newTestServer(t, opts)
		up := uploadSource(t, ts, "", guestSource)
		return ts, up.Module
	}
	hot, hotMod := mk(false)
	leg, legMod := mk(true)
	if hotMod != legMod {
		t.Fatalf("content addressing diverged: %q vs %q", hotMod, legMod)
	}

	bodies := []string{
		fmt.Sprintf(`{"module":%q,"function":"add","args":[3,4]}`, hotMod),
		fmt.Sprintf(`{"module":%q,"function":"add","args":[3,4],"fuel":100000}`, hotMod),
		fmt.Sprintf(`  {  "function" : "add" , "module" : %q , "args" : [ 1 , 2 ] }  `, hotMod),
		fmt.Sprintf(`{"module":%q,"function":"crash","args":[5]}`, hotMod),
		fmt.Sprintf(`{"module":%q,"function":"spin","args":[0],"fuel":10000}`, hotMod),
		fmt.Sprintf(`{"module":%q,"function":"add","args":[3]}`, hotMod),      // bad arity
		fmt.Sprintf(`{"module":%q,"function":"nope","args":[]}`, hotMod),      // unknown function
		fmt.Sprintf(`{"module":%q,"function":"add","args":null}`, hotMod),     // null args
		fmt.Sprintf(`{"module":%q,"function":"add","argz":[1,2]}`, hotMod),    // unknown field
		fmt.Sprintf(`{"module":%q,"function":"add","args":[1.5,2]}`, hotMod),  // float arg
		fmt.Sprintf(`{"module":%q,"function":"add","args":[-1,2]}`, hotMod),   // negative arg
		fmt.Sprintf(`{"module":%q,"function":"add","args":[01,2]}`, hotMod),   // leading zero
		fmt.Sprintf(`{"module":%q,"function":"add"}{"x":1}`, hotMod),          // trailing data
		fmt.Sprintf(`{"module":%q,"function":"add","timeout_ms":-5}`, hotMod), // negative timeout
		`{"module":"sha256:x","function":"add","args":[]}`,                    // escaped string
		`{"module":"sha256:feed","function":"add","args":[1,2]}`,              // unknown module
		`{"module":"","function":""}`,
		`{"function":"add"}`,
		`{}`,
		`{`,
		``,
		`[]`,
		`{"module":"m","function":"f","args":[18446744073709551615]}`,
		`{"module":"m","function":"f","args":[18446744073709551616]}`, // uint64 overflow
	}

	for i, body := range bodies {
		var hotRaw, legRaw json.RawMessage
		hotResp := postJSON(t, hot, "/v1/invoke", "ab", []byte(body), &hotRaw)
		legResp := postJSON(t, leg, "/v1/invoke", "ab", []byte(body), &legRaw)
		if hotResp.StatusCode != legResp.StatusCode {
			t.Errorf("body %d %q: hot status %d, legacy %d", i, body, hotResp.StatusCode, legResp.StatusCode)
			continue
		}
		var hv, lv any
		if err := json.Unmarshal(hotRaw, &hv); err != nil {
			t.Errorf("body %d: hot response not JSON: %v", i, err)
			continue
		}
		if err := json.Unmarshal(legRaw, &lv); err != nil {
			t.Errorf("body %d: legacy response not JSON: %v", i, err)
			continue
		}
		if fmt.Sprintf("%v", hv) != fmt.Sprintf("%v", lv) {
			t.Errorf("body %d %q: hot %s, legacy %s", i, body, hotRaw, legRaw)
		}
	}
}

// TestParseInvokeFastDifferential pins the fast parser against the
// strict stdlib decoder on a corpus of accept/fallback edges: whenever
// the fast parser accepts a body, the stdlib decoder must agree on
// every field (or reject with exactly the validation error the fast
// path raises itself).
func TestParseInvokeFastDifferential(t *testing.T) {
	bodies := []string{
		`{"module":"m","function":"f","args":[1,2,3],"fuel":9,"timeout_ms":50}`,
		`{"module":"m","function":"f"}`,
		`{"args":[7],"function":"f","module":"m"}`,
		`{"module":"m","function":"f","args":[]}`,
		`{"module":"m","function":"f","args":null}`,
		`{"module":"m","function":"f","args":[0]}`,
		`{"module":"m","function":"f","args":[18446744073709551615]}`,
		`  { "module" : "m" , "function" : "f" }  `,
		`{"module":"","function":""}`,
		`{}`,
		`{"module":"m","function":"f","args":[1],"args":[2,3]}`, // duplicate key: last wins
		`{"module":"m","module":"n","function":"f"}`,
	}
	sc := getScratch()
	defer putScratch(sc)
	for _, body := range bodies {
		sc.buf = append(sc.buf[:0], body...)
		if !sc.parseInvokeFast() {
			t.Errorf("fast parser refused in-grammar body %q", body)
			continue
		}
		req, err := decodeInvokeRequest(bytes.NewReader([]byte(body)))
		if err != nil {
			verr := sc.validate()
			if verr == nil || verr.Error() != err.Error() {
				t.Errorf("body %q: stdlib rejects (%v), fast validate says %v", body, err, verr)
			}
			continue
		}
		if string(sc.module) != req.Module || string(sc.function) != req.Function ||
			sc.fuel != req.Fuel || sc.timeoutMs != req.TimeoutMs ||
			fmt.Sprint(sc.args) != fmt.Sprint([]uint64(req.Args)) {
			t.Errorf("body %q: fast (%q %q %v fuel=%d t=%d) != stdlib (%q %q %v fuel=%d t=%d)",
				body, sc.module, sc.function, sc.args, sc.fuel, sc.timeoutMs,
				req.Module, req.Function, req.Args, req.Fuel, req.TimeoutMs)
		}
	}

	// Out-of-grammar bodies must fall back, never mis-parse.
	for _, body := range []string{
		`{"module":"m","function":"f","args":[1.5]}`,
		`{"module":"m","function":"f","args":[-1]}`,
		`{"module":"m","function":"f","args":[01]}`,
		`{"module":"m","function":"f","args":[1e3]}`,
		`{"module":"m","function":"f","fuel":18446744073709551616}`,
		`{"module":"m","function":"f","timeout_ms":-5}`,
		`{"module":"m","function":"f","unknown":1}`,
		`{"module":"m\n","function":"f"}`,
		`{"module":"m","function":"f"}{"x":1}`,
		`{"module":"m","function":"f"} trailing`,
		`{"module":"m","function":"f",}`,
		`{"module":"m" "function":"f"}`,
		`[1,2]`,
		`{`,
		``,
	} {
		sc.buf = append(sc.buf[:0], body...)
		if sc.parseInvokeFast() {
			t.Errorf("fast parser accepted out-of-grammar body %q", body)
		}
	}
}
