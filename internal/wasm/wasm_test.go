package wasm

import (
	"strings"
	"testing"
	"testing/quick"
)

// testModule builds a small valid wasm64 module exercising most of the
// encoder surface: imports, memory, table, globals, data, elems, and a
// body containing Cage instructions.
func testModule() *Module {
	m := &Module{}
	ti := m.AddType(FuncType{Params: []ValType{I64, I64}, Results: []ValType{I64}})
	hostTi := m.AddType(FuncType{Params: []ValType{I64}, Results: nil})
	m.Imports = append(m.Imports, Import{Module: "env", Name: "log", TypeIdx: hostTi})
	m.Mems = []MemoryType{{Limits: Limits{Min: 1, Max: 4, HasMax: true}, Memory64: true}}
	m.Tables = []TableType{{Limits: Limits{Min: 2, HasMax: false}}}
	m.Globals = []Global{
		{Type: GlobalType{Type: I64, Mutable: true}, Init: 1024},
		{Type: GlobalType{Type: F64, Mutable: false}, Init: F64Bits(3.5)},
	}
	add := Function{
		TypeIdx: ti,
		Locals:  []ValType{I64},
		Body: []Instr{
			LocalGet(0), LocalGet(1), Op(OpI64Add), LocalTee(2),
			LocalGet(2), Op(OpI64Add), End(),
		},
	}
	seg := Function{
		TypeIdx: m.AddType(FuncType{Params: []ValType{I64}, Results: []ValType{I64}}),
		Body: []Instr{
			LocalGet(0), I64Const(32), SegmentNew(16),
			PointerSign(), PointerAuth(),
			End(),
		},
	}
	m.Funcs = append(m.Funcs, add, seg)
	m.Exports = append(m.Exports,
		Export{Name: "add", Kind: ExportFunc, Idx: 1},
		Export{Name: "seg", Kind: ExportFunc, Idx: 2},
		Export{Name: "memory", Kind: ExportMemory, Idx: 0},
	)
	m.Elems = []ElemSegment{{Offset: 0, Funcs: []uint32{1, 2}}}
	m.Datas = []DataSegment{{Offset: 8, Bytes: []byte("hello")}}
	return m
}

func TestValidateTestModule(t *testing.T) {
	if err := Validate(testModule()); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testModule()
	bin, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Types) != len(m.Types) || len(got.Funcs) != len(m.Funcs) ||
		len(got.Imports) != 1 || len(got.Exports) != 3 {
		t.Fatalf("round trip lost sections: %+v", got)
	}
	if !got.Mems[0].Memory64 {
		t.Error("memory64 flag lost")
	}
	if got.Mems[0].Limits.Max != 4 || !got.Mems[0].Limits.HasMax {
		t.Error("memory limits lost")
	}
	if got.Globals[1].Init != F64Bits(3.5) {
		t.Error("f64 global initializer lost")
	}
	if string(got.Datas[0].Bytes) != "hello" {
		t.Error("data segment lost")
	}
	if err := Validate(got); err != nil {
		t.Errorf("decoded module invalid: %v", err)
	}
	// The Cage instructions must survive the round trip.
	body := got.Funcs[1].Body
	var sawNew, sawSign, sawAuth bool
	for _, in := range body {
		switch in.Op {
		case OpSegmentNew:
			sawNew = true
			if in.Offset != 16 {
				t.Errorf("segment.new offset = %d, want 16", in.Offset)
			}
		case OpPointerSign:
			sawSign = true
		case OpPointerAuth:
			sawAuth = true
		}
	}
	if !sawNew || !sawSign || !sawAuth {
		t.Errorf("Cage instructions lost in round trip: new=%v sign=%v auth=%v",
			sawNew, sawSign, sawAuth)
	}
}

func TestEncodeDecodeInstrProperty(t *testing.T) {
	// Property: i64 constants of any value survive the round trip.
	f := func(v int64) bool {
		m := &Module{}
		ti := m.AddType(FuncType{Results: []ValType{I64}})
		m.Funcs = []Function{{TypeIdx: ti, Body: []Instr{I64Const(v), End()}}}
		bin, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(bin)
		if err != nil {
			return false
		}
		return int64(got.Funcs[0].Body[0].X) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte{0x00, 0x61, 0x73, 0x6D, 0x02, 0, 0, 0}); err == nil {
		t.Error("wrong version accepted")
	}
}

func mod1(body ...Instr) *Module {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{I64}})
	m.Mems = []MemoryType{{Limits: Limits{Min: 1}, Memory64: true}}
	m.Funcs = []Function{{TypeIdx: ti, Body: body}}
	return m
}

func TestValidateTypeMismatch(t *testing.T) {
	m := mod1(I32Const(1), End()) // i32 where i64 expected
	if err := Validate(m); err == nil {
		t.Error("result type mismatch accepted")
	}
}

func TestValidateStackUnderflow(t *testing.T) {
	m := mod1(Op(OpI64Add), End())
	if err := Validate(m); err == nil {
		t.Error("stack underflow accepted")
	}
}

func TestValidateLeftoverOperands(t *testing.T) {
	m := mod1(I64Const(1), I64Const(2), End())
	if err := Validate(m); err == nil {
		t.Error("leftover operand accepted")
	}
}

func TestValidateBranchDepth(t *testing.T) {
	m := mod1(Block(BlockVoid), Br(5), End(), I64Const(0), End())
	if err := Validate(m); err == nil {
		t.Error("out-of-range branch depth accepted")
	}
}

func TestValidateUnreachablePolymorphism(t *testing.T) {
	// After unreachable, the stack is polymorphic: this is valid.
	m := mod1(Op(OpUnreachable), Op(OpI64Add), End())
	if err := Validate(m); err != nil {
		t.Errorf("unreachable polymorphism rejected: %v", err)
	}
}

func TestValidateLocalIndex(t *testing.T) {
	m := mod1(LocalGet(3), End())
	if err := Validate(m); err == nil {
		t.Error("out-of-range local accepted")
	}
}

func TestValidateImmutableGlobalSet(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{})
	m.Globals = []Global{{Type: GlobalType{Type: I64, Mutable: false}}}
	m.Funcs = []Function{{TypeIdx: ti, Body: []Instr{I64Const(1), GlobalSet(0), End()}}}
	if err := Validate(m); err == nil {
		t.Error("global.set on immutable global accepted")
	}
}

// Fig. 10 typing rules for the Cage extension.

func TestCageTypingRequiresMemory(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{I64}})
	m.Funcs = []Function{{TypeIdx: ti, Body: []Instr{
		I64Const(0), I64Const(16), SegmentNew(0), End(),
	}}}
	err := Validate(m)
	if err == nil {
		t.Fatal("segment.new without memory accepted (violates C.memory = n)")
	}
	if !strings.Contains(err.Error(), "memory") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCageTypingRequiresWasm64(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{I64}})
	m.Mems = []MemoryType{{Limits: Limits{Min: 1}, Memory64: false}}
	m.Funcs = []Function{{TypeIdx: ti, Body: []Instr{
		I64Const(0), I64Const(16), SegmentNew(0), End(),
	}}}
	if err := Validate(m); err == nil {
		t.Fatal("segment.new on 32-bit memory accepted")
	}
}

func TestCageTypingOperandTypes(t *testing.T) {
	// segment.new: i64 i64 -> i64. Using an i32 length must fail.
	m := mod1(I64Const(0), I32Const(16), SegmentNew(0), End())
	if err := Validate(m); err == nil {
		t.Error("segment.new with i32 length accepted")
	}
	// segment.set_tag: i64 i64 i64 -> ε.
	ok := &Module{}
	ti := ok.AddType(FuncType{})
	ok.Mems = []MemoryType{{Limits: Limits{Min: 1}, Memory64: true}}
	ok.Funcs = []Function{{TypeIdx: ti, Body: []Instr{
		I64Const(0), I64Const(1 << 56), I64Const(16), SegmentSetTag(0),
		I64Const(1 << 56), I64Const(16), SegmentFree(0),
		End(),
	}}}
	if err := Validate(ok); err != nil {
		t.Errorf("well-typed segment ops rejected: %v", err)
	}
	// pointer_sign: i64 -> i64 even without a memory (Fig. 10 has no
	// memory premise for the pointer instructions).
	noMem := &Module{}
	ti2 := noMem.AddType(FuncType{Results: []ValType{I64}})
	noMem.Funcs = []Function{{TypeIdx: ti2, Body: []Instr{
		I64Const(5), PointerSign(), PointerAuth(), End(),
	}}}
	if err := Validate(noMem); err != nil {
		t.Errorf("pointer_sign without memory rejected: %v", err)
	}
}

func TestValidateCallSignatures(t *testing.T) {
	m := &Module{}
	callee := m.AddType(FuncType{Params: []ValType{I64}, Results: []ValType{I64}})
	caller := m.AddType(FuncType{Results: []ValType{I64}})
	m.Funcs = []Function{
		{TypeIdx: callee, Body: []Instr{LocalGet(0), End()}},
		{TypeIdx: caller, Body: []Instr{I32Const(1), Call(0), End()}}, // wrong arg type
	}
	if err := Validate(m); err == nil {
		t.Error("call with wrong argument type accepted")
	}
}

func TestValidateMemAlignment(t *testing.T) {
	// Alignment immediate larger than the access size is invalid.
	m := mod1(I64Const(0), Instr{Op: OpI64Load, X: 4, Offset: 0}, End())
	if err := Validate(m); err == nil {
		t.Error("over-aligned load accepted")
	}
}

func TestValidateIfElseResults(t *testing.T) {
	// if with a result but no else is invalid.
	m := mod1(I32Const(1), If(BlockI64), I64Const(1), End(), End())
	if err := Validate(m); err == nil {
		t.Error("if-with-result without else accepted")
	}
	// With both arms it is valid.
	m2 := mod1(I32Const(1), If(BlockI64), I64Const(1), Else(), I64Const(2), End(), End())
	if err := Validate(m2); err != nil {
		t.Errorf("valid if/else rejected: %v", err)
	}
}

func TestOpcodeStringCoverage(t *testing.T) {
	for op, name := range opNames {
		if op.String() != name {
			t.Errorf("String mismatch for %v", name)
		}
	}
	if !OpSegmentNew.IsCage() || OpI64Add.IsCage() {
		t.Error("IsCage misclassifies")
	}
	if OpI64Load.AccessSize() != 8 || OpI32Store16.AccessSize() != 2 {
		t.Error("AccessSize wrong")
	}
}

func TestFuncTypeAtSpansImports(t *testing.T) {
	m := testModule()
	ft, err := m.FuncTypeAt(0) // the import
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 1 || ft.Params[0] != I64 {
		t.Errorf("import signature: %v", ft)
	}
	ft, err = m.FuncTypeAt(1) // first defined func
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 2 {
		t.Errorf("defined signature: %v", ft)
	}
	if _, err := m.FuncTypeAt(99); err == nil {
		t.Error("out-of-range index accepted")
	}
}
