package engine

import "sync/atomic"

// fastPathsOn selects, at construction/first-use time, whether caches
// and pools use the lock-free sharded layout (the default) or the
// pre-sharding single-mutex layout. It exists so benchmarks can run a
// same-binary A/B of the two paths; it is latched per object (a Cache
// on first use, a Pool at NewPool), so flipping it mid-flight never
// splits one object's state across two disciplines.
var fastPathsOn atomic.Bool

func init() { fastPathsOn.Store(true) }

// SetFastPaths selects the concurrency layout for caches and pools
// created (or first used) after the call: true (the default) is the
// lock-free sharded fast path, false is the legacy single-mutex path.
// It is a measurement hook for same-binary A/B runs, not a production
// knob.
func SetFastPaths(on bool) { fastPathsOn.Store(on) }

// FastPaths reports the layout new caches and pools will latch.
func FastPaths() bool { return fastPathsOn.Load() }
