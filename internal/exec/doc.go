// Package exec executes Cage-extended wasm64 modules: an interpreter
// implementing the paper's small-step semantics (Fig. 11), three
// sandboxing strategies (32-bit guard pages, 64-bit software bounds
// checks, MTE-based tagging per Fig. 12b/13), pointer authentication for
// indirect calls (Figs. 9–11), and instruction-event accounting for the
// timing model.
//
// Execution runs over the lowered form of internal/ir: NewInstance
// lowers the module's functions once (or adopts a cached ir.Program
// via Config.Program) and Invoke drives a flat dispatch loop with
// pre-resolved branches and mode-specialized memory opcodes — the
// sandboxing strategy is baked into the instruction stream at lower
// time, so the hot path never branches on it. Each lowered opcode
// reports its fixed cost events, keeping the arch timing model exact.
//
// # Interruption points
//
// InvokeWith is the bounded-call entry (call.go): it arms a per-call
// meter carrying an atomic interrupt flag (set by a context watcher
// goroutine) and a fuel limit measured in timing-model events. The
// dispatch loop polls the meter at every taken branch — br, taken
// br_if, br_table, the superset of loop back-edges — and at every
// function-call entry, so a guest infinite loop or runaway recursion is
// reached within one iteration. A tripped checkpoint unwinds with
// TrapInterrupted (wrapping ctx.Err()) or TrapFuelExhausted; like any
// trap, the unwind leaves the instance resettable, so pooled engines
// recycle interrupted instances normally. When no context cancellation
// and no fuel budget apply, the meter is nil and every checkpoint
// degenerates to a single never-taken pointer test — the zero-cost nop
// variant that keeps unmetered dispatch at full speed.
//
// # Host functions and the privilege model
//
// Host functions are defined in HostModules — typed adapters
// (Func0..Func4, Void0..Void4) or raw slots — and linked either via
// Config.HostModules or, for pooled engines, via a Config.Imports
// snapshot resolved once per compiled module (ResolveImports). Link
// failures are structured LinkErrors wrapping ErrUnresolvedImport /
// ErrImportTypeMismatch. Every host function receives a HostContext:
// the in-flight call's context, a Memory view, fuel accounting, and
// re-entrant guest Call.
//
// Host code runs with runtime privileges, which draws a precise line
// through the MTE machinery:
//
//   - Guest accesses (lowered loads/stores) are subject to the full
//     sandbox: bounds or masking, and tag checks under MTE modes. A
//     mismatch traps.
//   - The HostContext Memory view accepts guest pointers (untagging
//     them the way the address-lowering helpers do), enforces bounds
//     against the guest-visible memory size, and charges the timing
//     model — but performs no tag check. The host is the runtime: like
//     the kernel servicing a syscall, it accesses memory under its own
//     privilege, and a tag check against a guest-chosen tag would add
//     no integrity (the host's bounds check is what keeps it inside
//     the sandbox). This mirrors real MTE, where EL1 accesses are
//     checked against TCF settings of the kernel, not the process.
//   - The Instance.ReadBytes/WriteBytes/ReadU64/WriteU64 accessors take
//     physical offsets with no untagging and no event accounting; they
//     are for runtime subsystems (the hardened allocator's metadata
//     walks) that already hold canonical addresses.
//   - The HostSegment* wrappers go through the same segment semantics
//     (and event accounting) as the guest's segment.* instructions, so
//     allocator tagging behaves exactly like in-guest tagging.
//
// A blocking host function should select on HostContext.Context: when
// the call's deadline fires, returning the context error makes the
// guest trap with TrapInterrupted, and even a host function that
// swallows the cancellation is caught by the post-host meter check.
//
// Paper map:
//
//   - NewInstance      — instantiation: linking, lowering, sandbox-tag
//     assignment and whole-memory tagging (Fig. 12b, the §7.2 startup
//     cost)
//   - Instance.Invoke  — execution with the Fig. 7/10/11 instruction
//     extension (segment.*, i64.pointer_sign / i64.pointer_auth);
//     InvokeWith adds context interruption and per-call fuel, stack,
//     and memory bounds
//   - Instance.Reset   — instance recycling for pooled engines: restores
//     the freshly-instantiated state (memory, tags, PAC modifier)
//     without re-paying validation and precompilation
//   - Instance.Close   — teardown returning the sandbox tag to the
//     §6.4/§7.4 budget
//   - Trap             — the trap taxonomy embedders classify violations
//     with (tag mismatch, auth failure, bounds, segment misuse)
package exec
