package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAcquireContextBlocksUntilRelease(t *testing.T) {
	pol := NewPolicy(Features{Sandbox: true})
	a := NewSandboxAllocator(pol)

	var tags []uint8
	for i := 0; i < pol.MaxSandboxes; i++ {
		tag, err := a.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		tags = append(tags, tag)
	}
	if _, err := a.Acquire(); !errors.Is(err, ErrSandboxesExhausted) {
		t.Fatalf("non-blocking Acquire past the budget: %v", err)
	}

	got := make(chan uint8, 1)
	go func() {
		tag, err := a.AcquireContext(context.Background())
		if err != nil {
			t.Errorf("AcquireContext: %v", err)
		}
		got <- tag
	}()
	select {
	case tag := <-got:
		t.Fatalf("AcquireContext returned tag %d with no free budget", tag)
	case <-time.After(50 * time.Millisecond):
	}

	a.Release(tags[0])
	select {
	case tag := <-got:
		if tag == RuntimeTag {
			t.Fatalf("blocked acquire yielded the runtime tag")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AcquireContext still blocked after Release")
	}
}

func TestAcquireContextHonorsDeadline(t *testing.T) {
	pol := NewPolicy(Features{MemSafety: true, Sandbox: true}) // combined: budget 1
	a := NewSandboxAllocator(pol)
	if _, err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := a.AcquireContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}

// TestAcquireContextContended hammers a 1-tag budget from many
// goroutines, each holding the tag briefly; every waiter must
// eventually get a turn and the refcount must end at zero.
func TestAcquireContextContended(t *testing.T) {
	pol := NewPolicy(Features{MemSafety: true, Sandbox: true})
	a := NewSandboxAllocator(pol)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				tag, err := a.AcquireContext(ctx)
				if err != nil {
					t.Errorf("AcquireContext: %v", err)
					return
				}
				a.Release(tag)
			}
		}()
	}
	wg.Wait()
	if n := a.InUse(); n != 0 {
		t.Fatalf("%d sandboxes leaked", n)
	}
}
