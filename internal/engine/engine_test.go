package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cage/internal/alloc"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/mte"
)

// --- Cache ---

func TestCacheHitSemantics(t *testing.T) {
	var c Cache[int]
	builds := 0
	build := func() (int, error) { builds++; return 42, nil }

	k1 := KeyOfString("source A", "cfg1")
	for i := 0; i < 3; i++ {
		v, err := c.GetOrBuild(k1, build)
		if err != nil || v != 42 {
			t.Fatalf("GetOrBuild = %d, %v", v, err)
		}
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}

	// Same content under a different variant is a distinct entry.
	if _, err := c.GetOrBuild(KeyOfString("source A", "cfg2"), build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Errorf("build ran %d times after variant change, want 2", builds)
	}

	s := c.Stats()
	if s.Misses != 2 || s.Hits != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 misses, 2 hits, 2 entries", s)
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	var c Cache[int]
	calls := 0
	failing := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 7, nil
	}
	k := KeyOfString("x", "v")
	if _, err := c.GetOrBuild(k, failing); err == nil {
		t.Fatal("first build should fail")
	}
	v, err := c.GetOrBuild(k, failing)
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v; want 7, nil", v, err)
	}
	if calls != 2 {
		t.Errorf("build ran %d times, want 2 (failure must not be cached)", calls)
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[int]
	var builds atomic.Int32
	release := make(chan struct{})
	build := func() (int, error) {
		builds.Add(1)
		<-release
		return 1, nil
	}
	k := KeyOfString("shared", "v")
	const workers = 8
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrBuild(k, build)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times across %d concurrent lookups, want 1", n, workers)
	}
	for i, v := range results {
		if v != 1 {
			t.Errorf("worker %d got %d", i, v)
		}
	}
}

// --- Pool over synthetic instances ---

// fake is a synthetic Resetter that records its lifecycle and can be
// armed to fail its next reset.
type fake struct {
	resets    atomic.Uint64
	closed    atomic.Bool
	failReset atomic.Bool
}

func (f *fake) Reset(seed uint64) error {
	f.resets.Add(1)
	if f.failReset.Load() {
		return errors.New("poisoned")
	}
	return nil
}

func (f *fake) Close() error { f.closed.Store(true); return nil }

func TestPoolCheckoutCheckinConcurrent(t *testing.T) {
	var spawned atomic.Int32
	p := NewPool(4, func(context.Context) (Resetter, error) {
		spawned.Add(1)
		return &fake{}, nil
	})
	defer p.Close()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				inst, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				p.Put(inst)
			}
		}()
	}
	wg.Wait()

	if n := spawned.Load(); n > 4 {
		t.Errorf("spawned %d instances, cap is 4", n)
	}
	s := p.Stats()
	if s.Recycled != workers*iters {
		t.Errorf("recycled = %d, want %d", s.Recycled, workers*iters)
	}
	if s.Live > 4 || s.Idle > 4 || s.Discarded != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPoolDiscardsOnResetFailure(t *testing.T) {
	p := NewPool(2, func(context.Context) (Resetter, error) { return &fake{}, nil })
	defer p.Close()

	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	f := inst.(*fake)
	f.failReset.Store(true)
	p.Put(inst)

	if !f.closed.Load() {
		t.Error("instance with failing reset was not closed")
	}
	s := p.Stats()
	if s.Discarded != 1 || s.Live != 0 {
		t.Errorf("stats = %+v, want 1 discarded, 0 live", s)
	}

	// The slot freed by the discard must be reusable.
	next, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if next == inst {
		t.Error("discarded instance was checked out again")
	}
	p.Put(next)
}

func TestPoolBlocksAtCap(t *testing.T) {
	p := NewPool(1, func(context.Context) (Resetter, error) { return &fake{}, nil })
	defer p.Close()

	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Resetter)
	go func() {
		second, err := p.Get()
		if err != nil {
			t.Error(err)
		}
		got <- second
	}()
	// Give the second Get a chance to (wrongly) complete.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("second Get returned before checkin despite cap 1")
	default:
	}
	p.Put(inst)
	second := <-got
	if second != inst {
		t.Error("blocked Get did not receive the recycled instance")
	}
	p.Put(second)
}

// TestPoolGetContextCancelledWhileQueued: a checkout queued on the live
// cap must be abandonable — GetContext returns the context error, no cap
// slot leaks, and the pool keeps serving later checkouts.
func TestPoolGetContextCancelledWhileQueued(t *testing.T) {
	p := NewPool(1, func(context.Context) (Resetter, error) { return &fake{}, nil })
	defer p.Close()

	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := p.GetContext(ctx)
		queued <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the checkout queue on the cap
	cancel()
	select {
	case err := <-queued:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoned GetContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetContext did not observe cancellation while queued")
	}

	// The abandoned checkout must not have consumed the recycled slot.
	p.Put(inst)
	again, err := p.Get()
	if err != nil {
		t.Fatalf("Get after abandoned checkout: %v", err)
	}
	p.Put(again)
}

// TestPoolGetContextCancelledInSpawn: a spawn blocked on a shared budget
// (modelled by a spawn that waits for ctx) is abandoned with the
// checkout's context, and the reserved cap slot is returned.
func TestPoolGetContextCancelledInSpawn(t *testing.T) {
	p := NewPool(1, func(ctx context.Context) (Resetter, error) {
		<-ctx.Done() // a queued budget wait that only ctx can end
		return nil, ctx.Err()
	})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.GetContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetContext = %v, want context.DeadlineExceeded", err)
	}
	if s := p.Stats(); s.Live != 0 || s.Spawned != 0 {
		t.Errorf("stats after abandoned spawn = %+v, want no live instances", s)
	}
}

// TestPoolConcurrentSpawnFailuresAllReturn is the regression test for a
// deadlock: concurrent Gets on an empty pool whose spawns all fail must
// every one return the error — a failing spawner is not a live instance
// another Get may wait on.
func TestPoolConcurrentSpawnFailuresAllReturn(t *testing.T) {
	spawnErr := errors.New("budget exhausted")
	p := NewPool(0, func(context.Context) (Resetter, error) { return nil, spawnErr })
	defer p.Close()

	const workers = 8
	done := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func() {
			_, err := p.Get()
			done <- err
		}()
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, spawnErr) {
				t.Errorf("Get = %v, want spawn error", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("Get %d hung on concurrent spawn failure", i)
		}
	}
}

// TestPoolSpawnFailureWaitsForLiveInstance: when spawning fails but the
// pool has a live instance checked out, Get waits for its checkin
// instead of failing — and must see it even if the checkin raced the
// failed spawn.
func TestPoolSpawnFailureWaitsForLiveInstance(t *testing.T) {
	only := &fake{}
	first := true
	p := NewPool(0, func(context.Context) (Resetter, error) {
		if first {
			first = false
			return only, nil
		}
		return nil, errors.New("budget exhausted")
	})
	defer p.Close()

	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Resetter, 1)
	go func() {
		second, err := p.Get()
		if err != nil {
			t.Errorf("Get with a live instance = %v, want wait", err)
		}
		got <- second
	}()
	time.Sleep(20 * time.Millisecond) // let the second Get hit the failing spawn
	p.Put(inst)
	select {
	case second := <-got:
		if second != only {
			t.Error("waiter did not receive the recycled instance")
		}
		p.Put(second)
	case <-time.After(5 * time.Second):
		t.Fatal("Get hung despite a checked-in instance")
	}
}

func TestPoolClosedGetFails(t *testing.T) {
	p := NewPool(0, func(context.Context) (Resetter, error) { return &fake{}, nil })
	inst, _ := p.Get()
	p.Put(inst)
	p.Close()
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Get after Close = %v, want ErrPoolClosed", err)
	}
	if !inst.(*fake).closed.Load() {
		t.Error("idle instance not closed by pool Close")
	}
}

// TestPoolSetClosedDoesNotResurrect: For after Close must hand out
// closed pools, not silently revive the set and leak new instances.
func TestPoolSetClosedDoesNotResurrect(t *testing.T) {
	var s PoolSet
	key := "module"
	p := s.For(key, func(context.Context) (Resetter, error) { return &fake{}, nil })
	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(inst)
	s.Close()
	again := s.For(key, func(context.Context) (Resetter, error) { return &fake{}, nil })
	if _, err := again.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Get on resurrected pool = %v, want ErrPoolClosed", err)
	}
}

// --- Pool over real hardened instances ---

const poolSource = `
extern char* malloc(long n);
extern void free(char* p);

long sum(long n) {
    long* a = (long*)malloc(n * 8);
    long s = 0;
    for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
    free((char*)a);
    return s;
}

long uaf(void) {
    long* a = (long*)malloc(32);
    a[0] = 9;
    free((char*)a);
    return a[0];
}
`

// hardenedInstance pairs an interpreter instance with its allocator, the
// unit the cage facade pools.
type hardenedInstance struct {
	inst *exec.Instance
	a    *alloc.Allocator
}

func (h *hardenedInstance) Reset(seed uint64) error {
	if err := h.inst.ResetState(seed); err != nil {
		return err
	}
	h.a.Reset()
	return h.inst.RunStart()
}

func (h *hardenedInstance) Close() error { return h.inst.Close() }

// spawnHardened builds a spawner compiling poolSource once and
// instantiating it under full memory safety.
func spawnHardened(t *testing.T) func(context.Context) (Resetter, error) {
	t.Helper()
	file, err := minicc.Parse(poolSource)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true, StackSanitizer: true})
	if err != nil {
		t.Fatal(err)
	}
	var seeds atomic.Uint64
	return func(context.Context) (Resetter, error) {
		host := &alloc.Host{}
		inst, err := exec.NewInstance(m, exec.Config{
			Features:    core.Features{MemSafety: true, MTEMode: mte.ModeSync},
			HostModules: alloc.HostModules(),
			HostData:    host,
			Seed:        seeds.Add(1),
		})
		if err != nil {
			return nil, err
		}
		heapBase, ok := inst.GlobalValue("__heap_base")
		if !ok {
			return nil, fmt.Errorf("module lacks __heap_base")
		}
		host.A, err = alloc.New(inst, heapBase)
		if err != nil {
			return nil, err
		}
		return &hardenedInstance{inst: inst, a: host.A}, nil
	}
}

// TestPoolTrapDoesNotPoisonNextCheckout is the regression test for the
// core pooling guarantee: a memory-safety trap mid-invocation leaves
// arbitrary state behind (live segments, latched faults, a half-written
// heap), and the checkin reset must scrub all of it before the instance
// is visible again.
func TestPoolTrapDoesNotPoisonNextCheckout(t *testing.T) {
	p := NewPool(1, spawnHardened(t))
	defer p.Close()

	// First lifetime: trap on a use-after-free.
	r, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	h := r.(*hardenedInstance)
	if _, err := h.inst.Invoke("uaf"); err == nil {
		t.Fatal("use-after-free did not trap under MemSafety")
	}
	p.Put(r)

	// Next checkouts (cap 1, so the same recycled instance) must behave
	// like a fresh instantiation.
	for i := 0; i < 3; i++ {
		r, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		h := r.(*hardenedInstance)
		res, err := h.inst.Invoke("sum", 100)
		if err != nil {
			t.Fatalf("checkout %d after trap: %v", i, err)
		}
		if res[0] != 4950 {
			t.Fatalf("checkout %d after trap: sum = %d, want 4950", i, res[0])
		}
		p.Put(r)
	}
	if s := p.Stats(); s.Spawned != 1 {
		t.Errorf("spawned = %d, want 1 (instance must be recycled, not respawned)", s.Spawned)
	}
}

func TestPoolConcurrentRealInstances(t *testing.T) {
	p := NewPool(4, spawnHardened(t))
	defer p.Close()

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				h := r.(*hardenedInstance)
				res, err := h.inst.Invoke("sum", 50)
				if err != nil {
					t.Error(err)
				} else if res[0] != 1225 {
					t.Errorf("sum = %d, want 1225", res[0])
				}
				p.Put(r)
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.Spawned > 4 {
		t.Errorf("spawned = %d, cap is 4", s.Spawned)
	}
}
