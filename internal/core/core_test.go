package core

import (
	"errors"
	"testing"
	"testing/quick"

	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/ptrlayout"
)

func TestPolicyExternalOnly(t *testing.T) {
	p := NewPolicy(Features{Sandbox: true, MTEMode: mte.ModeSync})
	if p.MaxSandboxes != 15 {
		t.Errorf("MaxSandboxes = %d, want 15", p.MaxSandboxes)
	}
	// Fig. 13a: bits 56-59 masked from indices.
	if p.MaskIndex(0xF<<56|0x1234) != 0x1234 {
		t.Error("external-only mask must clear all tag bits")
	}
}

func TestPolicyInternalOnly(t *testing.T) {
	p := NewPolicy(Features{MemSafety: true, MTEMode: mte.ModeSync})
	if p.UsableTags() != 15 {
		t.Errorf("UsableTags = %d, want 15", p.UsableTags())
	}
	if got := p.CollisionProbability(); got < 0.066 || got > 0.067 {
		t.Errorf("collision probability = %f, want 1/15", got)
	}
}

func TestPolicyCombined(t *testing.T) {
	// Paper §6.4: 3 bits internal + 1 bit sandbox; §7.4: collision 1/7.
	p := NewPolicy(CageAll())
	if p.UsableTags() != 7 {
		t.Errorf("UsableTags = %d, want 7", p.UsableTags())
	}
	if got := p.CollisionProbability(); got < 0.142 || got > 0.143 {
		t.Errorf("collision probability = %f, want 1/7", got)
	}
	if p.MaxSandboxes != 1 {
		t.Errorf("combined mode MaxSandboxes = %d, want 1", p.MaxSandboxes)
	}
	// Fig. 13b: only bit 56 masked.
	idx := uint64(0xF<<56 | 0x42)
	if p.MaskIndex(idx) != uint64(0xE<<56|0x42) {
		t.Errorf("combined mask = %#x", p.MaskIndex(idx))
	}
	if p.GuardTag() != 1 {
		t.Errorf("combined GuardTag = %d, want 1", p.GuardTag())
	}
}

func TestSandboxAllocatorExhaustion(t *testing.T) {
	a := NewSandboxAllocator(NewPolicy(Features{Sandbox: true, MTEMode: mte.ModeSync}))
	seen := map[uint8]bool{}
	for i := 0; i < 15; i++ {
		tag, err := a.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if tag == RuntimeTag {
			t.Fatal("allocator handed out the runtime tag")
		}
		if seen[tag] {
			t.Fatalf("tag %d handed out twice", tag)
		}
		seen[tag] = true
	}
	if _, err := a.Acquire(); !errors.Is(err, ErrSandboxesExhausted) {
		t.Errorf("16th acquire: %v", err)
	}
	// Releasing recycles.
	a.Release(3)
	if tag, err := a.Acquire(); err != nil || tag != 3 {
		t.Errorf("recycled acquire = %d, %v", tag, err)
	}
}

func newSegs(t *testing.T, f Features, size uint64) (*Segments, []byte) {
	t.Helper()
	buf := make([]byte, size)
	tags := mte.NewMemory(size, mte.ModeSync)
	tags.Seed(99)
	pol := NewPolicy(f)
	if err := tags.SetExcludeMask(pol.IRGExclude); err != nil {
		t.Fatal(err)
	}
	return NewSegments(tags, pol, func() []byte { return buf }), buf
}

func TestSegmentLifecycle(t *testing.T) {
	segs, buf := newSegs(t, Features{MemSafety: true, MTEMode: mte.ModeSync}, 4096)
	buf[64] = 0xFF
	tagged, err := segs.New(64, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Tag(tagged) == 0 {
		t.Error("segment.new produced tag 0 (reserved)")
	}
	if buf[64] != 0 {
		t.Error("segment.new did not zero memory")
	}
	if err := segs.Tags().CheckAccess(64, 8, ptrlayout.Tag(tagged), true); err != nil {
		t.Errorf("owner access rejected: %v", err)
	}
	if err := segs.Free(tagged, 128, 0); err != nil {
		t.Fatal(err)
	}
	if err := segs.Tags().CheckAccess(64, 8, ptrlayout.Tag(tagged), false); err == nil {
		t.Error("use-after-free not caught")
	}
	if err := segs.Free(tagged, 128, 0); err == nil {
		t.Error("double free not caught")
	}
}

func TestSegmentOffsetFolding(t *testing.T) {
	// The static offset o lets compilers fold constant offsets (Fig. 7).
	segs, _ := newSegs(t, Features{MemSafety: true, MTEMode: mte.ModeSync}, 4096)
	tagged, err := segs.New(0, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Address(tagged) != 256 {
		t.Errorf("offset-folded address = %#x, want 256", ptrlayout.Address(tagged))
	}
}

func TestSegmentAlignmentAndBounds(t *testing.T) {
	segs, _ := newSegs(t, Features{MemSafety: true, MTEMode: mte.ModeSync}, 4096)
	if _, err := segs.New(8, 32, 0); err == nil {
		t.Error("unaligned address accepted")
	}
	if _, err := segs.New(0, 24, 0); err == nil {
		t.Error("unaligned length accepted")
	}
	if _, err := segs.New(4096-16, 64, 0); err == nil {
		t.Error("out-of-bounds segment accepted")
	}
}

func TestFreeTagDiffersProperty(t *testing.T) {
	// Property: after free, the region's tag differs from the owner's.
	f := func(slot uint8) bool {
		segs, _ := newSegs(t, Features{MemSafety: true, MTEMode: mte.ModeSync}, 8192)
		addr := uint64(slot%64) * 16 * 2
		tagged, err := segs.New(addr, 32, 0)
		if err != nil {
			return false
		}
		if err := segs.Free(tagged, 32, 0); err != nil {
			return false
		}
		newTag, ok := segs.Tags().RangeTag(ptrlayout.Address(tagged), 32)
		return ok && newTag != ptrlayout.Tag(tagged)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombinedModeTagsCarrySandboxBit(t *testing.T) {
	segs, _ := newSegs(t, CageAll(), 4096)
	for i := 0; i < 50; i++ {
		tagged, err := segs.New(uint64(i)*64, 32, 0)
		if err != nil {
			t.Fatal(err)
		}
		tag := ptrlayout.Tag(tagged)
		if tag&1 == 0 {
			t.Fatalf("combined-mode allocation tag %#x lacks the sandbox bit", tag)
		}
		if tag == 1 {
			t.Fatalf("combined-mode allocation used the guard tag")
		}
	}
}

func TestInstanceKeysSignAuth(t *testing.T) {
	k1 := NewInstanceKeys(pacKey(1), 111)
	k2 := NewInstanceKeys(pacKey(1), 222) // same process key, other instance
	signed := k1.Sign(0x8650)
	if _, err := k2.Auth(signed); err == nil {
		t.Error("cross-instance modifier reuse authenticated")
	}
	got, err := k1.Auth(signed)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x8650 {
		t.Errorf("auth = %#x", got)
	}
}

// pacKey derives a deterministic process key for tests.
func pacKey(seed uint64) pac.Key { return pac.KeyFromSeed(seed) }
