package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cage"
	"cage/internal/wasm"
)

// wasmMagic opens every binary wasm image; bodies without it are
// treated as MiniC source.
var wasmMagic = []byte{0x00, 'a', 's', 'm'}

// funcSig is the arity of one exported function, pre-resolved at
// registration so invokes validate the target without a checkout.
type funcSig struct {
	// name is the canonical exported name. The hot path parses the
	// request's function name as a []byte view and looks it up with a
	// no-copy map index; this field gives it an interned string to hand
	// to Engine.CallWith without converting (and so allocating) its own.
	name    string
	params  int
	results int
}

// moduleEntry is one registered module.
type moduleEntry struct {
	id   string
	mod  *cage.Module
	size int64 // canonical encoded size
	// tenant is the first registrant (informational; ids are global).
	tenant string
	funcs  map[string]funcSig
	m      counters

	// initFn is the pre-initialization function named by the creating
	// upload's ?init= parameter ("" for none). The first invocation runs
	// it once under Engine.Snapshot; every later checkout forks from the
	// frozen post-init image.
	initFn string
	// snapMu serializes the one-time snapshot build; snapDone latches
	// success per engine — the base and Spectre-hardened engines keep
	// separate pools, so each needs its own post-init image. Failures do
	// not latch, so a transient build error (e.g. the triggering client
	// disconnecting mid-init) is retried by the next invocation instead
	// of bricking the module.
	snapMu   sync.Mutex
	snapDone map[*cage.Engine]bool
}

// exportNames lists the entry's callable exports, sorted.
func (e *moduleEntry) exportNames() []string {
	names := make([]string, 0, len(e.funcs))
	for name := range e.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// registry content-addresses compiled modules: the id is the SHA-256 of
// the module's canonical binary encoding, so the same program uploaded
// as source or as binary — by any tenant — lands on one entry, one
// engine cache slot, and one instance pool.
type registry struct {
	mu   sync.RWMutex
	byID map[string]*moduleEntry
	// bySrc maps the SHA-256 of the bytes a creating upload POSTed to
	// its entry, so a byte-identical re-upload is answered before any
	// compile or engine-cache work. One alias per entry (the creating
	// body only), so the index is bounded by the registry itself.
	bySrc map[[32]byte]*moduleEntry
	// snap is the immutable published copy of byID. Invokes resolve
	// modules off it with a plain atomic load — no lock, no allocation —
	// while register (rare, upload path) clones and republishes under
	// mu. Readers of a snapshot map never see writes: every mutation
	// builds a fresh map.
	snap atomic.Pointer[map[string]*moduleEntry]
}

// lookupSource finds the entry a byte-identical upload created.
func (r *registry) lookupSource(body []byte) (*moduleEntry, bool) {
	key := sha256.Sum256(body)
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.bySrc[key]
	return e, ok
}

// lookup finds a registered module. Lock-free: it reads the published
// snapshot, so a stats scrape or upload burst never stalls an invoke.
func (r *registry) lookup(id string) (*moduleEntry, bool) {
	m := r.snap.Load()
	if m == nil {
		return nil, false
	}
	e, ok := (*m)[id]
	return e, ok
}

// lookupBytes is lookup for an id still held as a []byte view into the
// request buffer. The map index converts without copying (a compiler-
// recognized pattern), so the hot path resolves modules with zero
// allocations.
func (r *registry) lookupBytes(id []byte) (*moduleEntry, bool) {
	m := r.snap.Load()
	if m == nil {
		return nil, false
	}
	e, ok := (*m)[string(id)]
	return e, ok
}

// list snapshots the entries sorted by id.
func (r *registry) list() []*moduleEntry {
	m := r.snap.Load()
	if m == nil {
		return nil
	}
	out := make([]*moduleEntry, 0, len(*m))
	for _, e := range *m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// register adds (or finds) the entry for a compiled module. created
// reports whether this call inserted it. Before inserting a new entry
// — and still holding the registry lock, so the outcome is atomic —
// register calls reserve, the caller's claim against its MaxModules
// quota; a reserve error aborts the insert and is returned verbatim,
// leaving no trace of the rejected module in the registry. Finding an
// existing entry never calls reserve (re-registering content is free).
// src is the upload body that produced mod, indexed on creation so
// byte-identical re-uploads skip compilation entirely. initFn is the
// creating upload's pre-initialization function; content is
// first-registrant-wins, so a re-register of existing content keeps the
// original init spec.
func (r *registry) register(tenant string, src []byte, mod *cage.Module, initFn string, reserve func() error) (e *moduleEntry, created bool, err error) {
	bin, err := mod.Encode()
	if err != nil {
		return nil, false, fmt.Errorf("serve: encoding module for registration: %w", err)
	}
	hash := sha256.Sum256(bin)
	id := "sha256:" + hex.EncodeToString(hash[:])

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		return e, false, nil
	}
	if reserve != nil {
		if err := reserve(); err != nil {
			return nil, false, err
		}
	}
	e = &moduleEntry{
		id:     id,
		mod:    mod,
		size:   int64(len(bin)),
		tenant: tenant,
		funcs:  exportedFuncs(mod.Raw()),
		initFn: initFn,
	}
	if r.byID == nil {
		r.byID = make(map[string]*moduleEntry)
		r.bySrc = make(map[[32]byte]*moduleEntry)
	}
	r.byID[id] = e
	r.bySrc[sha256.Sum256(src)] = e
	snap := make(map[string]*moduleEntry, len(r.byID))
	for k, v := range r.byID {
		snap[k] = v
	}
	r.snap.Store(&snap)
	return e, true, nil
}

// exportedFuncs resolves every function export's arity.
func exportedFuncs(m *wasm.Module) map[string]funcSig {
	funcs := make(map[string]funcSig)
	for _, exp := range m.Exports {
		if exp.Kind != wasm.ExportFunc {
			continue
		}
		ft, err := m.FuncTypeAt(exp.Idx)
		if err != nil {
			continue // validated modules never hit this
		}
		funcs[exp.Name] = funcSig{name: exp.Name, params: len(ft.Params), results: len(ft.Results)}
	}
	return funcs
}

// isWasm reports whether an upload body is a binary module image.
func isWasm(body []byte) bool { return bytes.HasPrefix(body, wasmMagic) }
