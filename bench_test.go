package cage

// Benchmark harness: one testing.B target per table/figure of the
// paper's evaluation, plus wall-clock microbenchmarks of the simulation
// substrates themselves. The paper-shaped numbers (modeled milliseconds
// on the three Tensor G3 cores, overhead percentages) are emitted as
// custom benchmark metrics; `go test -bench . -benchmem` regenerates
// everything.

import (
	"context"
	"io"
	"strings"
	"testing"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/bench"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/polybench"
	"cage/internal/wasm"
)

// BenchmarkTable1_InstCycles regenerates paper Table 1: MTE/PAC
// instruction throughput (instructions/cycle) and latency (cycles) on
// the three cores.
func BenchmarkTable1_InstCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range arch.Cores() {
			_ = c.MeasureAll(1_000_000)
		}
	}
	x3 := arch.NewCortexX3()
	b.ReportMetric(x3.MeasureThroughput(arch.IRG, 1_000_000), "X3-irg-ipc")
	b.ReportMetric(x3.MeasureLatency(arch.PACDA, 1_000_000), "X3-pacda-lat")
	a510 := arch.NewCortexA510()
	b.ReportMetric(a510.MeasureLatency(arch.AUTDA, 1_000_000), "A510-autda-lat")
}

// BenchmarkFig4_MTEModes regenerates paper Fig. 4: a 128 MiB memset with
// MTE disabled / asynchronous / synchronous.
func BenchmarkFig4_MTEModes(b *testing.B) {
	var rows []bench.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig4Rows()
	}
	for _, r := range rows {
		b.ReportMetric(r.NoneMs, r.Core+"-none-ms")
		b.ReportMetric(r.SyncMs, r.Core+"-sync-ms")
		b.ReportMetric(r.AsyncMs, r.Core+"-async-ms")
	}
}

// BenchmarkTable2_CVEMitigation regenerates paper Table 2: every CVE
// analog is exploited on the baseline and trapped under Cage.
func BenchmarkTable2_CVEMitigation(b *testing.B) {
	var rows []bench.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table2Rows()
		if err != nil {
			b.Fatal(err)
		}
	}
	mitigated := 0
	for _, r := range rows {
		if r.CageTrapped && r.BaselineDamage != 0 {
			mitigated++
		}
	}
	b.ReportMetric(float64(mitigated), "mitigated-CVEs")
}

// BenchmarkFig14_PolyBench regenerates paper Fig. 14: the PolyBench/C
// suite across the six Table 3 variants, priced on the three cores.
// Means are normalized to the wasm64 baseline = 100.
func BenchmarkFig14_PolyBench(b *testing.B) {
	var res *bench.Fig14Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFig14(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, v := range []string{"baseline wasm32", "Cage-mem-safety", "Cage-sandboxing", "Cage"} {
		for _, c := range res.Cores {
			name := strings.ReplaceAll(v, " ", "-") + "@" + c
			b.ReportMetric(res.MeanPct[v][c], name)
		}
	}
}

// BenchmarkFig15_PtrAuth regenerates paper Fig. 15: static vs dynamic vs
// authenticated dynamic calls on the modified 2mm (kernel region only),
// normalized to static = 100.
func BenchmarkFig15_PtrAuth(b *testing.B) {
	var res *bench.Fig15Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunFig15(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []string{"dynamic", "ptr-auth"} {
		for _, c := range res.Cores {
			b.ReportMetric(res.Pct[mode][c], mode+"@"+c)
		}
	}
}

// BenchmarkFig16_TagInit regenerates paper Table 4 / Fig. 16: the
// tagged-memory initialization variants over 128 MiB.
func BenchmarkFig16_TagInit(b *testing.B) {
	var cells []bench.Fig16Cell
	for i := 0; i < b.N; i++ {
		cells = bench.Fig16Cells()
	}
	for _, c := range cells {
		if c.Core == "Cortex-X3" {
			b.ReportMetric(c.Ms, c.Variant.String()+"-ms")
		}
	}
}

// BenchmarkStartup regenerates the §7.2 startup experiment: instantiate
// a 128 MiB module under MTE sandboxing and call an empty export.
func BenchmarkStartup(b *testing.B) {
	var res *bench.StartupResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunStartup()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.GranulesTagged), "granules")
	b.ReportMetric(res.TaggingMs["Cortex-X3"], "X3-tagging-ms")
}

// BenchmarkMemoryOverhead regenerates the §7.3 accounting.
func BenchmarkMemoryOverhead(b *testing.B) {
	var res *bench.MemoryResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.RunMemoryOverhead(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Total, "total-overhead-pct")
	b.ReportMetric(100*res.TagStorage, "tag-storage-pct")
}

// --- Substrate wall-clock microbenchmarks ---

// BenchmarkEngineGemm measures raw engine throughput on gemm under the
// baseline and the full Cage configuration.
func BenchmarkEngineGemm(b *testing.B) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts codegen.Options, feats core.Features) {
		m, err := polybench.Build(k, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := polybench.RunModule(m, k.TestN, feats, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline64", func(b *testing.B) {
		run(b, codegen.Options{Wasm64: true}, core.Features{})
	})
	b.Run("full-cage", func(b *testing.B) {
		run(b, codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}, core.CageAll())
	})
}

// BenchmarkEngineInstancing compares the per-invocation cost of a fresh
// Runtime.Instantiate against Engine's pooled recycling on a PolyBench
// kernel under full Cage. Fresh instantiation pays validation, import
// resolution, function precompilation, memory allocation, and
// whole-memory tagging (§7.2) every call; the pooled path pays a reset.
func BenchmarkEngineInstancing(b *testing.B) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	raw, err := polybench.Build(k, codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true})
	if err != nil {
		b.Fatal(err)
	}
	mod := &Module{wasm: raw}
	cfg := FullHardening()
	// Small problem size: the short-lived-invocation regime where the
	// §7.2 startup costs dominate and pooling pays off most.
	n := uint64(4)

	b.Run("fresh-instantiate", func(b *testing.B) {
		rt := NewRuntime(cfg)
		for i := 0; i < b.N; i++ {
			inst, err := rt.Instantiate(mod)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := inst.Invoke("run", n); err != nil {
				b.Fatal(err)
			}
			inst.Close()
		}
	})
	b.Run("engine-pooled", func(b *testing.B) {
		eng := NewEngine(cfg)
		defer eng.Close()
		if _, err := eng.Invoke(mod, "run", n); err != nil { // warm the pool
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Invoke(mod, "run", n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineCompileCached measures the module cache: the first
// CompileSource pays the full toolchain, every later one is a hash
// lookup.
func BenchmarkEngineCompileCached(b *testing.B) {
	k, err := polybench.ByName("2mm")
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(FullHardening())
	defer eng.Close()
	if _, err := eng.CompileSource(k.Source); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CompileSource(k.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiler measures toolchain throughput end to end.
func BenchmarkCompiler(b *testing.B) {
	k, err := polybench.ByName("2mm")
	if err != nil {
		b.Fatal(err)
	}
	opts := codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}
	for i := 0; i < b.N; i++ {
		if _, err := polybench.Build(k, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocator measures hardened malloc/free pairs.
func BenchmarkAllocator(b *testing.B) {
	m := &wasm.Module{}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 16, Max: 256, HasMax: true}, Memory64: true}}
	for _, hardened := range []struct {
		name string
		feat core.Features
	}{
		{"baseline", core.Features{}},
		{"hardened", core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
	} {
		b.Run(hardened.name, func(b *testing.B) {
			inst, err := exec.NewInstance(m, exec.Config{Features: hardened.feat, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			a, err := alloc.New(inst, 4096)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := a.Malloc(64)
				if err != nil {
					b.Fatal(err)
				}
				if err := a.Free(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPACSignAuth measures the simulated PAC primitives.
func BenchmarkPACSignAuth(b *testing.B) {
	cfg := pac.DefaultConfig
	key := pac.KeyFromSeed(1)
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cfg.Sign(uint64(i)<<4, 42, key)
		}
	})
	b.Run("auth", func(b *testing.B) {
		signed := cfg.Sign(0x8650, 42, key)
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Auth(signed, 42, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMTETagOps measures the simulated tag memory.
func BenchmarkMTETagOps(b *testing.B) {
	mem := mte.NewMemory(1<<20, mte.ModeSync)
	b.Run("set-tag-range-4k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mem.SetTagRange(0, 4096, uint8(i%15+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check-access", func(b *testing.B) {
		if err := mem.SetTagRange(0, 4096, 5); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if err := mem.CheckAccess(uint64(i%4000), 8, 5, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHostCall prices one guest→host crossing through the public
// host-module API: the typed adapter (signature derived from the Go
// function, args marshalled) against the raw slot (uint64 bits
// straight through). Each iteration runs a guest loop of `calls` host
// calls on a checked-out pooled instance, so the ns/hostcall metric
// isolates the crossing from pool and dispatch overhead.
func BenchmarkHostCall(b *testing.B) {
	const src = `
		extern long host_add(long a, long b);
		long run(long n) {
		    long s = 0;
		    for (long i = 0; i < n; i++) { s = host_add(s, i); }
		    return s;
		}`
	const calls = 1024
	run := func(b *testing.B, register func(hm *HostModule)) {
		eng := NewEngine(Baseline64())
		defer eng.Close()
		hm, err := eng.NewHostModule("env")
		if err != nil {
			b.Fatal(err)
		}
		register(hm)
		mod, err := eng.CompileSource(src)
		if err != nil {
			b.Fatal(err)
		}
		err = eng.WithInstance(mod, func(inst *Instance) error {
			want := uint64(calls * (calls - 1) / 2)
			res, err := inst.Call(context.Background(), "run", []uint64{calls})
			if err != nil {
				return err
			}
			if res.Values[0] != want {
				b.Fatalf("host add sum = %d, want %d", res.Values[0], want)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inst.Call(context.Background(), "run", []uint64{calls}); err != nil {
					return err
				}
			}
			b.StopTimer()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/calls, "ns/hostcall")
	}
	b.Run("typed", func(b *testing.B) {
		run(b, func(hm *HostModule) {
			HostFunc2(hm, "host_add", func(_ *HostContext, a, x int64) (int64, error) {
				return a + x, nil
			})
		})
	})
	b.Run("raw", func(b *testing.B) {
		run(b, func(hm *HostModule) {
			hm.Func("host_add",
				FuncType{Params: []ValType{I64, I64}, Results: []ValType{I64}},
				func(_ *HostContext, args []uint64) ([]uint64, error) {
					return []uint64{args[0] + args[1]}, nil
				})
		})
	})
}

// BenchmarkReportAll exercises the whole harness once per iteration,
// discarding output; it is the cage-bench CLI's hot path.
func BenchmarkReportAll(b *testing.B) {
	if testing.Short() {
		b.Skip("full harness")
	}
	for i := 0; i < b.N; i++ {
		if err := bench.RunAll(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}
