// Package adversary is the scenario-harness generalization of the
// Table 2 runner in cage/internal/exploit: instead of one hard-coded
// baseline-vs-Cage comparison per CVE, it evaluates a matrix of
// adversarial scenarios against every preset configuration and emits a
// machine-readable verdict table.
//
// A Scenario is a guest program (MiniC compiled by the preset's
// toolchain, or a raw wasm module) plus its oracle: the verdict the
// scenario must produce under each configuration. Verdicts share the
// exploit package's vocabulary — a run is
//
//   - exploited: it completed and the damage (or leakage) indicator
//     fired;
//   - trapped: a runtime defense aborted it, carrying the
//     exploit.TrapClass of the trap (memory-safety, sandbox, ptrauth);
//   - mitigated-timing: the attack's speculative channel is closed by
//     the hardened preset's modeled mitigations — every executed
//     return/indirect-branch site was fenced and sandbox transitions
//     flushed the BTB — observable purely in the event stream;
//   - harmless: it completed without damage (benign inputs only; in a
//     matrix cell this means the attack failed to demonstrate anything
//     and the cell is a mismatch).
//
// Three scenario families ship with the package:
//
//   - table2: the eight exploit.Cases CVE reproductions, with the
//     oracle delegated to exploit.Expected so the two suites can never
//     disagree on what "mitigated" means.
//   - speculative: Spectre-style leak models — a bounds-check-bypass
//     gadget and a poisoned indirect-branch gadget. The programs are
//     architecturally benign; the leak is modeled, and the verdict is
//     derived from the event stream: a configuration mitigates the
//     scenario exactly when its fence events cover every executed
//     speculation site and a BTB flush guards the sandbox boundary.
//     Only the hardened preset does.
//   - corruption: in-sandbox corruption — intra-allocation heap and
//     stack smashing that stays inside one MTE tag granule. No
//     WebAssembly configuration can stop these (the paper's §3 threat
//     model excludes them), and the oracle expects every preset to
//     report exploited.
//
// Run executes every scenario against every preset and returns the
// Table; Table.Mismatches is the empty slice exactly when the
// implementation honors the paper's security claims.
package adversary
