package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Resetter is the unit a Pool recycles. Reset must return the value to
// its initial state (seed drives any fresh randomness the new lifetime
// needs); Close releases resources held against shared budgets (e.g.
// the instance's sandbox tag).
type Resetter interface {
	Reset(seed uint64) error
	Close() error
}

// PoolStats is a point-in-time pool counter snapshot.
type PoolStats struct {
	Spawned   uint64 // instances created
	Recycled  uint64 // successful checkins (reset ok)
	Discarded uint64 // instances dropped because reset failed
	Idle      int    // instances ready for checkout
	Live      int    // spawned minus closed (checked out + idle)
}

// Pool recycles instances of one compiled module across invocations.
//
// Checkout (GetContext) prefers an idle instance; otherwise it spawns
// one, unless doing so would exceed the pool's live cap — then it
// queues until a checkin frees one or the context ends, so a caller
// holding a deadline can abandon a contended checkout without leaking
// anything. Checkin (Put) resets the instance before making it visible
// again, so state poisoned by a trapped execution never leaks into the
// next checkout; instances whose reset fails are closed and discarded.
//
// The uncontended checkout/checkin pair is lock-free: idle instances
// live on a Treiber stack (see lifo) and Get/Put exchange them in at
// most two CAS operations each, with the mutex-and-condvar path below
// reserved for spawning, cap exhaustion, and teardown. See the package
// documentation for the full concurrency model.
//
// All methods are safe for concurrent use.
type Pool struct {
	spawn func(ctx context.Context) (Resetter, error)

	// NextSeed supplies the reset seed for each checkin. Pools sharing a
	// process (one PAC key) must share one seed source so no two
	// instance lifetimes — across any pool — derive the same PAC
	// modifier (§6.3). Nil falls back to a pool-private counter, which
	// is only safe for a process with a single pool.
	NextSeed func() uint64

	// fast is the lock-free idle stack; nil when the pool latched the
	// legacy single-mutex layout (SetFastPaths(false)).
	fast *lifo

	// waiters counts checkouts registered on the condvar and not yet
	// woken. A lock-free Put broadcasts only when it observes one, so
	// the empty-queue steady state pays an atomic load, not a lock.
	waiters atomic.Int32

	// closedHint mirrors closed for the lock-free paths; authoritative
	// state is still closed, under mu.
	closedHint atomic.Bool

	// Monotonic counters and gauges, atomic so Stats never touches mu.
	// liveN and idleSlowN are written only under mu (the fast stack
	// keeps its own size); spawned/recycled/discarded are written
	// wherever the event happens.
	spawned   atomic.Uint64
	recycled  atomic.Uint64
	discarded atomic.Uint64
	liveN     atomic.Int64
	idleSlowN atomic.Int64

	seed atomic.Uint64 // pool-private seed counter (NextSeed == nil)

	mu       sync.Mutex
	idle     []Resetter // slow-path idle list: legacy mode and fast-stack overflow
	spawning int        // spawn attempts in flight (reserve cap slots)
	max      int
	closed   bool
	// wake is a channel-shaped broadcast condition variable: it is
	// closed (and lazily replaced) whenever a checkout might newly
	// succeed — checkin, discard, reclaim, close, failed spawn — so
	// queued GetContext calls can select on it against ctx.Done().
	// Broadcast (vs. the old cond.Signal) wakes every waiter per event;
	// that is a deliberate tradeoff for cancellability, matching the
	// core.SandboxAllocator condvar, and queue depth is bounded by the
	// caller's concurrency (at most the §7.4 budget's overflow).
	wake chan struct{}
}

// lifoDefaultCap sizes the fast stack when the pool is uncapped (or
// absurdly capped): enough idle slots for any realistic core count,
// with overflow spilling harmlessly to the mutex-guarded idle list.
const lifoDefaultCap = 256

// NewPool creates a pool over spawn. The spawn function receives the
// checkout's context so a queued spawn (e.g. one waiting on a shared
// sandbox-tag budget) can be abandoned with it. max bounds live
// instances (checked out plus idle); 0 means unlimited. Embedders
// running under a sandbox-tag budget (§7.4) should pass the budget as
// max so checkouts queue instead of failing with ErrSandboxesExhausted.
func NewPool(max int, spawn func(ctx context.Context) (Resetter, error)) *Pool {
	p := &Pool{spawn: spawn, max: max}
	p.seed.Store(0x6361_6765) // "cage"
	if FastPaths() {
		c := max
		if c <= 0 || c > 4096 {
			c = lifoDefaultCap
		}
		p.fast = newLifo(c)
	}
	return p
}

// waitLocked returns the channel closed at the next wakeLocked.
func (p *Pool) waitLocked() chan struct{} {
	if p.wake == nil {
		p.wake = make(chan struct{})
	}
	return p.wake
}

// wakeLocked wakes every queued checkout (they re-examine the pool).
func (p *Pool) wakeLocked() {
	if p.wake != nil {
		close(p.wake)
		p.wake = nil
	}
}

// nextSeed draws the next reset seed from NextSeed or the private
// counter.
func (p *Pool) nextSeed() uint64 {
	if p.NextSeed != nil {
		return p.NextSeed()
	}
	return p.seed.Add(1)
}

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = fmt.Errorf("engine: pool is closed")

// Get checks an instance out of the pool, spawning or blocking as the
// cap dictates. It is GetContext with a background context.
func (p *Pool) Get() (Resetter, error) {
	return p.GetContext(context.Background())
}

// GetContext checks an instance out of the pool, spawning or queueing
// as the cap dictates. A queued checkout — whether blocked on the live
// cap or inside a spawn waiting on a shared budget — is abandoned
// cleanly when ctx ends: GetContext returns ctx.Err() and no instance
// or budget reservation leaks.
//
// The hit path (an idle instance is available) is lock-free and
// allocation-free: one pop off the Treiber stack, at most two CAS ops.
func (p *Pool) GetContext(ctx context.Context) (Resetter, error) {
	if p.fast != nil && !p.closedHint.Load() && ctx.Err() == nil {
		if inst, ok := p.fast.pop(); ok {
			return inst, nil
		}
	}
	return p.getSlow(ctx)
}

// getSlow is the spawn/queue path, entered when the fast stack is
// empty. It preserves the pre-fast-path semantics exactly: cap slots
// are reserved across spawns, spawn failures with live instances wait
// for a checkin instead of failing, and queued checkouts abandon on
// ctx. The fast stack is re-polled at every turn of the loop (and once
// after each condvar registration — see sleepLocked) so a lock-free
// checkin cannot strand a queued waiter.
func (p *Pool) getSlow(ctx context.Context) (Resetter, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if p.fast != nil {
			if inst, ok := p.fast.pop(); ok {
				p.mu.Unlock()
				return inst, nil
			}
		}
		if n := len(p.idle); n > 0 {
			inst := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.idleSlowN.Store(int64(len(p.idle)))
			p.mu.Unlock()
			return inst, nil
		}
		if p.max == 0 || int(p.liveN.Load())+p.spawning < p.max {
			p.spawning++
			p.mu.Unlock()
			inst, err := p.spawn(ctx)
			p.mu.Lock()
			p.spawning--
			if err != nil {
				// The cap slot this spawn reserved is free again; let
				// blocked waiters retry.
				p.wakeLocked()
				if ctx.Err() != nil {
					// The spawn was abandoned by our own context; report
					// that, not whatever wrapped error it surfaced as.
					p.mu.Unlock()
					return nil, ctx.Err()
				}
				if p.liveN.Load() > 0 && !p.closed {
					// Spawning can fail on a shared budget the cap does
					// not see (several pools over one sandbox
					// allocator). This pool's live instances will be
					// checked in eventually; wait for one instead of
					// failing the request — unless one arrived while we
					// were spawning.
					if p.fast != nil {
						if inst, ok := p.fast.pop(); ok {
							p.mu.Unlock()
							return inst, nil
						}
					}
					if len(p.idle) == 0 {
						if inst, ok := p.sleepLocked(ctx); ok {
							return inst, nil
						}
						p.mu.Lock()
					}
					continue
				}
				p.mu.Unlock()
				return nil, err
			}
			p.liveN.Add(1)
			p.spawned.Add(1)
			p.mu.Unlock()
			return inst, nil
		}
		if inst, ok := p.sleepLocked(ctx); ok {
			return inst, nil
		}
		p.mu.Lock()
	}
}

// sleepLocked parks the checkout until the next pool event or ctx end.
// Called with mu held; releases it. The waiter registers (obtains the
// wake channel, bumps waiters), then re-polls the fast stack once
// before sleeping: a lock-free Put either lands its push before that
// re-poll (we take the instance) or runs its waiters check after our
// registration (it broadcasts) — sequential consistency of the atomics
// leaves no third ordering, so no wakeup is lost. On a hit the
// instance is returned with mu released; otherwise the caller must
// re-lock and re-examine the pool.
func (p *Pool) sleepLocked(ctx context.Context) (Resetter, bool) {
	ch := p.waitLocked()
	p.waiters.Add(1)
	p.mu.Unlock()
	if p.fast != nil {
		if inst, ok := p.fast.pop(); ok {
			p.waiters.Add(-1)
			return inst, true
		}
	}
	select {
	case <-ch:
	case <-ctx.Done():
	}
	p.waiters.Add(-1)
	return nil, false
}

// Put checks an instance back in. The instance is reset first; a reset
// failure closes and discards it (freeing its slot under the cap).
//
// When the reset succeeds and the pool is open, checkin is lock-free:
// one push onto the Treiber stack, at most two CAS ops, no allocation.
func (p *Pool) Put(inst Resetter) {
	err := inst.Reset(p.nextSeed())
	if err == nil && p.fast != nil && !p.closedHint.Load() {
		if p.fast.push(inst) {
			p.recycled.Add(1)
			if p.closedHint.Load() {
				// Close raced our push; drain so nothing lingers live
				// in a closed pool.
				p.drainFast()
			}
			if p.waiters.Load() > 0 {
				p.mu.Lock()
				p.wakeLocked()
				p.mu.Unlock()
			}
			return
		}
	}
	p.putSlow(inst, err)
}

// putSlow handles reset failures, closed pools, legacy mode, and
// fast-stack overflow under the pool mutex.
func (p *Pool) putSlow(inst Resetter, err error) {
	p.mu.Lock()
	if err != nil || p.closed {
		p.liveN.Add(-1)
		if err != nil {
			p.discarded.Add(1)
		}
		p.wakeLocked()
		p.mu.Unlock()
		inst.Close()
		return
	}
	p.idle = append(p.idle, inst)
	p.idleSlowN.Store(int64(len(p.idle)))
	p.recycled.Add(1)
	p.wakeLocked()
	p.mu.Unlock()
}

// drainFast closes everything on the fast stack; only called once the
// pool is closed, when no checkout can legitimately race the pops.
func (p *Pool) drainFast() {
	for {
		inst, ok := p.fast.pop()
		if !ok {
			return
		}
		p.mu.Lock()
		p.liveN.Add(-1)
		p.wakeLocked()
		p.mu.Unlock()
		inst.Close()
	}
}

// ReclaimIdle closes up to n idle instances, freeing whatever shared
// budget they hold (sandbox tags, memory). Returns how many were
// reclaimed. Used by engines whose pools compete for one tag budget: a
// pool that cannot spawn may reclaim a sibling's idle instance and
// retry.
func (p *Pool) ReclaimIdle(n int) int {
	p.mu.Lock()
	k := n
	if k > len(p.idle) {
		k = len(p.idle)
	}
	evicted := make([]Resetter, 0, k)
	evicted = append(evicted, p.idle[len(p.idle)-k:]...)
	p.idle = p.idle[:len(p.idle)-k]
	p.idleSlowN.Store(int64(len(p.idle)))
	if p.fast != nil {
		for len(evicted) < n {
			inst, ok := p.fast.pop()
			if !ok {
				break
			}
			evicted = append(evicted, inst)
		}
	}
	p.liveN.Add(-int64(len(evicted)))
	if len(evicted) > 0 {
		p.wakeLocked() // cap slots freed
	}
	p.mu.Unlock()
	for _, inst := range evicted {
		inst.Close()
	}
	return len(evicted)
}

// Discard removes a checked-out instance from the pool without
// recycling it (e.g. after an invocation error the embedder considers
// fatal for the instance).
func (p *Pool) Discard(inst Resetter) {
	p.mu.Lock()
	p.liveN.Add(-1)
	p.discarded.Add(1)
	p.wakeLocked()
	p.mu.Unlock()
	inst.Close()
}

// Close retires all idle instances and fails future checkouts.
// Instances currently checked out are closed as they come back.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.closedHint.Store(true)
	idle := p.idle
	p.idle = nil
	p.idleSlowN.Store(0)
	if p.fast != nil {
		for {
			inst, ok := p.fast.pop()
			if !ok {
				break
			}
			idle = append(idle, inst)
		}
	}
	p.liveN.Add(-int64(len(idle)))
	p.wakeLocked()
	p.mu.Unlock()
	for _, inst := range idle {
		inst.Close()
	}
}

// Stats returns a snapshot of the pool counters. It reads only atomics
// — never the pool mutex — so scraping cannot stall checkouts.
func (p *Pool) Stats() PoolStats {
	idle := p.idleSlowN.Load()
	if p.fast != nil {
		idle += int64(p.fast.size.Load())
	}
	return PoolStats{
		Spawned:   p.spawned.Load(),
		Recycled:  p.recycled.Load(),
		Discarded: p.discarded.Load(),
		Idle:      int(idle),
		Live:      int(p.liveN.Load()),
	}
}

// PoolSet lazily manages one Pool per key (e.g. per compiled module).
// Lookup of an existing pool is lock-free (the key→pool table is an
// immutable map republished on insert); only pool creation takes the
// set mutex. The zero value is ready to use.
type PoolSet struct {
	// NextSeed, when non-nil, is installed on every created pool so all
	// pools of one process share a seed source (see Pool.NextSeed).
	NextSeed func() uint64

	// snap is the published key→pool table; mutations clone under mu
	// and republish.
	snap atomic.Pointer[map[any]*Pool]

	mu      sync.Mutex
	limit   int  // live-instance cap applied to pools as they are created
	started bool // a pool has been built; limit is frozen
	closed  bool
}

// ErrSetStarted is returned by SetLimit once a pool exists: that pool
// was built under the old limit and would never observe a new one.
var ErrSetStarted = fmt.Errorf("engine: pool set already built a pool; set the limit before first use")

// SetLimit sets the live-instance cap applied to pools as they are
// created (0 = unlimited). The check and the mutation share the set's
// lock with pool creation, so a SetLimit racing the first checkout
// either wins (the pool sees the new limit) or fails with
// ErrSetStarted — it can never return success while a pool built under
// the old limit ignores it.
func (s *PoolSet) SetLimit(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return ErrSetStarted
	}
	s.limit = n
	return nil
}

// Lookup returns the pool for key if one has been created, without
// locking. Callers on the hot path use it to skip For's spawn-closure
// setup entirely once the pool exists.
func (s *PoolSet) Lookup(key any) (*Pool, bool) {
	if m := s.snap.Load(); m != nil {
		p, ok := (*m)[key]
		return p, ok
	}
	return nil, false
}

// For returns the pool for key, creating it with spawn on first use.
func (s *PoolSet) For(key any, spawn func(ctx context.Context) (Resetter, error)) *Pool {
	if p, ok := s.Lookup(key); ok {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = true
	if m := s.snap.Load(); m != nil {
		if p, ok := (*m)[key]; ok {
			return p
		}
	}
	p := NewPool(s.limit, spawn)
	p.NextSeed = s.NextSeed
	if s.closed {
		// A closed set must not resurrect: hand out a pool whose
		// Get fails with ErrPoolClosed instead of silently leaking
		// fresh instances past the one Close that already ran.
		p.closed = true
		p.closedHint.Store(true)
	}
	old := s.snap.Load()
	n := 1
	if old != nil {
		n += len(*old)
	}
	next := make(map[any]*Pool, n)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = p
	s.snap.Store(&next)
	return p
}

// ReclaimIdle closes up to n idle instances across the set's pools,
// returning how many were reclaimed. See Pool.ReclaimIdle.
func (s *PoolSet) ReclaimIdle(n int) int {
	m := s.snap.Load()
	if m == nil {
		return 0
	}
	freed := 0
	for _, p := range *m {
		if freed >= n {
			break
		}
		freed += p.ReclaimIdle(n - freed)
	}
	return freed
}

// StatsFor snapshots the pool for key alone; ok is false when no pool
// has been created for it yet (no checkout has happened). Services
// exporting per-module occupancy (cage-serve's /stats) use this to
// attribute live instances, recycles, and discards to one module
// instead of the set-wide sum. Lock-free, like Pool.Stats.
func (s *PoolSet) StatsFor(key any) (stats PoolStats, ok bool) {
	p, ok := s.Lookup(key)
	if !ok {
		return PoolStats{}, false
	}
	return p.Stats(), true
}

// Stats sums the counters of every pool in the set without locking.
func (s *PoolSet) Stats() PoolStats {
	m := s.snap.Load()
	if m == nil {
		return PoolStats{}
	}
	var sum PoolStats
	for _, p := range *m {
		ps := p.Stats()
		sum.Spawned += ps.Spawned
		sum.Recycled += ps.Recycled
		sum.Discarded += ps.Discarded
		sum.Idle += ps.Idle
		sum.Live += ps.Live
	}
	return sum
}

// Close closes every pool in the set; later For calls yield pools that
// fail checkout with ErrPoolClosed.
func (s *PoolSet) Close() {
	s.mu.Lock()
	m := s.snap.Load()
	s.snap.Store(nil)
	s.closed = true
	s.mu.Unlock()
	if m == nil {
		return
	}
	for _, p := range *m {
		p.Close()
	}
}
