// Command cage-objdump disassembles a wasm binary into a WAT-style text
// listing, including the Cage extension instructions.
//
// With -lowered it additionally disassembles the internal/ir program
// the interpreter actually executes — absolute-PC branches, specialized
// memory opcodes, PAC nop variants — as lowered for the chosen
// configuration, with each function's frame layout: the FrameSize the
// frame machine reserves in the value arena and the slot ranges for
// params, declared locals, and the operand stack. That is the form in
// which interrupt-check placement is audited: every br/br_if/br_ifz/
// br_table taken edge in the lowered stream (the superset of loop
// back-edges) and every call/call_indirect is a cancellation and fuel
// checkpoint of the context-first Call API.
//
// The lowered listing shows the program in the form the engine caches
// and executes: after the profile-guided superinstruction pass
// (internal/fuse) driven by the checked-in polybench corpus, or by a
// profile recorded with `cage-bench -record-profile` and passed via
// -profile. Each fused superinstruction is printed with its
// constituent ops expanded inline, so the listing remains auditable
// against the wasm source; -nofuse shows the raw pre-fusion stream.
//
// Usage:
//
//	cage-objdump [-lowered] [-nofuse] [-profile file.json] [-config full|hardened|baseline32|baseline64|memsafety|ptrauth|sandbox] module.wasm
//	cage-objdump -profile file.json
//
// With -profile and no module, the recorded hot-sequence table itself
// is dumped, hottest first — the view of what drives fusion decisions.
//
// Under -config=hardened the lowered listing additionally shows the
// speculation barriers of the Spectre-hardened preset: a fence
// annotation immediately before every return, call_indirect, and
// br_table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cage"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/profile"
	"cage/internal/wasm"
)

// loadProfile resolves the -profile flag: a path to a recorded JSON
// profile, or the empty string for the embedded polybench corpus.
func loadProfile(path string) (*profile.Profile, error) {
	if path == "" {
		return profile.Default(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profile.ReadJSON(f)
}

// dumpProfile prints the hot-sequence table, hottest first.
func dumpProfile(p *profile.Profile) {
	fmt.Printf(";; hot-sequence profile (id=%s, %d seqs)\n", p.ID(), len(p.Seqs))
	for _, s := range p.Seqs {
		fmt.Printf("%10d  %s\n", s.Count, strings.Join(s.Ops, " ; "))
	}
}

func main() {
	lowered := flag.Bool("lowered", false, "also disassemble the lowered internal/ir program")
	nofuse := flag.Bool("nofuse", false, "show the lowered program before the superinstruction pass")
	profPath := flag.String("profile", "", "recorded hot-sequence profile (JSON); empty = embedded polybench corpus")
	cfgName := flag.String("config", "full", "configuration the lowered program is specialized for")
	flag.Parse()

	if flag.NArg() == 0 && *profPath != "" {
		// Profile-table mode: no module, just dump the recorded table.
		p, err := loadProfile(*profPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
			os.Exit(1)
		}
		dumpProfile(p)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cage-objdump [-lowered] [-nofuse] [-profile file.json] [-config name] module.wasm")
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(wasm.Wat(m))
	if !*lowered {
		return
	}

	cfg, err := cage.ConfigByName(*cfgName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(2)
	}
	lcfg := exec.LowerConfig(m, exec.Config{Features: cfg.Features()})
	prog, err := ir.Lower(m, lcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: lower: %v\n", err)
		os.Exit(1)
	}

	fusion := "nofuse"
	if !*nofuse {
		prof, err := loadProfile(*profPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
			os.Exit(1)
		}
		prog = fuse.Fuse(prog, prof)
		fusion = "profile=" + prof.ID()
	}

	fmt.Printf("\n;; lowered program (config=%s mode=%s memsafety=%t ptrauth=%t harden=%t %s)\n",
		*cfgName, lcfg.Mode, lcfg.MemSafety, lcfg.PtrAuth, lcfg.Harden, fusion)
	numImports := len(m.Imports)
	for i := range prog.Funcs {
		fn := &prog.Funcs[i]
		fmt.Printf(";; func[%d] params=%d results=%d locals=%d maxstack=%d framesize=%d\n",
			numImports+i, fn.NumParams, fn.NumResults, fn.NumLocals, fn.MaxStack, fn.FrameSize)
		// The frame machine's slot layout: one activation occupies
		// FrameSize contiguous arena slots — params, declared locals,
		// then the operand stack.
		fmt.Printf(";;   frame: slots [0,%d) params | [%d,%d) locals | [%d,%d) operand stack\n",
			fn.NumParams, fn.NumParams, fn.StackBase(), fn.StackBase(), fn.FrameSize)
		for pc, in := range fn.Code {
			fmt.Printf("  %4d: %s\n", pc, in)
			// A superinstruction's constituents, expanded inline so the
			// listing stays auditable against the wasm source.
			for _, c := range in.Constituents() {
				fmt.Printf("        ;; = %s\n", c)
			}
		}
	}
}
