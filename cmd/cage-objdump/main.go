// Command cage-objdump disassembles a wasm binary into a WAT-style text
// listing, including the Cage extension instructions.
//
// With -lowered it additionally disassembles the internal/ir program
// the interpreter actually executes — absolute-PC branches, specialized
// memory opcodes, PAC nop variants — as lowered for the chosen
// configuration, with each function's frame layout: the FrameSize the
// frame machine reserves in the value arena and the slot ranges for
// params, declared locals, and the operand stack. That is the form in
// which interrupt-check placement is audited: every br/br_if/br_ifz/
// br_table taken edge in the lowered stream (the superset of loop
// back-edges) and every call/call_indirect is a cancellation and fuel
// checkpoint of the context-first Call API.
//
// Usage:
//
//	cage-objdump [-lowered] [-config full|hardened|baseline32|baseline64|memsafety|ptrauth|sandbox] module.wasm
//
// Under -config=hardened the lowered listing additionally shows the
// speculation barriers of the Spectre-hardened preset: a fence
// annotation immediately before every return, call_indirect, and
// br_table.
package main

import (
	"flag"
	"fmt"
	"os"

	"cage"
	"cage/internal/exec"
	"cage/internal/ir"
	"cage/internal/wasm"
)

func main() {
	lowered := flag.Bool("lowered", false, "also disassemble the lowered internal/ir program")
	cfgName := flag.String("config", "full", "configuration the lowered program is specialized for")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cage-objdump [-lowered] [-config name] module.wasm")
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(wasm.Wat(m))
	if !*lowered {
		return
	}

	cfg, err := cage.ConfigByName(*cfgName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: %v\n", err)
		os.Exit(2)
	}
	lcfg := exec.LowerConfig(m, exec.Config{Features: cfg.Features()})
	prog, err := ir.Lower(m, lcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-objdump: lower: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n;; lowered program (config=%s mode=%s memsafety=%t ptrauth=%t harden=%t)\n",
		*cfgName, lcfg.Mode, lcfg.MemSafety, lcfg.PtrAuth, lcfg.Harden)
	numImports := len(m.Imports)
	for i := range prog.Funcs {
		fn := &prog.Funcs[i]
		fmt.Printf(";; func[%d] params=%d results=%d locals=%d maxstack=%d framesize=%d\n",
			numImports+i, fn.NumParams, fn.NumResults, fn.NumLocals, fn.MaxStack, fn.FrameSize)
		// The frame machine's slot layout: one activation occupies
		// FrameSize contiguous arena slots — params, declared locals,
		// then the operand stack.
		fmt.Printf(";;   frame: slots [0,%d) params | [%d,%d) locals | [%d,%d) operand stack\n",
			fn.NumParams, fn.NumParams, fn.StackBase(), fn.StackBase(), fn.FrameSize)
		for pc, in := range fn.Code {
			fmt.Printf("  %4d: %s\n", pc, in)
		}
	}
}
