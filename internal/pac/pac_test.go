package pac

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"cage/internal/ptrlayout"
)

func TestSignAuthRoundTrip(t *testing.T) {
	key := KeyFromSeed(1)
	cfg := DefaultConfig
	ptr := uint64(0x8650)
	signed := cfg.Sign(ptr, 0, key)
	if signed == ptr {
		t.Fatal("signing did not change the pointer")
	}
	got, err := cfg.Auth(signed, 0, key)
	if err != nil {
		t.Fatalf("Auth failed on valid signature: %v", err)
	}
	if got != ptr {
		t.Errorf("Auth returned %#x, want %#x", got, ptr)
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	cfg := DefaultConfig
	signed := cfg.Sign(0x8650, 0, KeyFromSeed(1))
	if _, err := cfg.Auth(signed, 0, KeyFromSeed(2)); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("Auth under wrong key: got %v, want ErrAuthFailed", err)
	}
}

func TestAuthRejectsWrongModifier(t *testing.T) {
	// Cage gives every instance its own modifier because PAC keys are
	// per-process (paper §6.3); a signature minted under one instance's
	// modifier must not validate under another's.
	cfg := DefaultConfig
	key := KeyFromSeed(7)
	signed := cfg.Sign(0x1234, 111, key)
	if _, err := cfg.Auth(signed, 222, key); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("cross-modifier Auth: got %v, want ErrAuthFailed", err)
	}
	if _, err := cfg.Auth(signed, 111, key); err != nil {
		t.Errorf("same-modifier Auth failed: %v", err)
	}
}

func TestAuthRejectsTamperedPointer(t *testing.T) {
	cfg := DefaultConfig
	key := KeyFromSeed(3)
	signed := cfg.Sign(0x8000, 0, key)
	tampered := signed ^ 0x10 // flip an address bit
	if _, err := cfg.Auth(tampered, 0, key); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("tampered pointer authenticated: %v", err)
	}
}

func TestNonFPACProducesPoisonedPointer(t *testing.T) {
	cfg := Config{Layout: ptrlayout.MTEAndPAC, FPAC: false}
	key := KeyFromSeed(3)
	signed := cfg.Sign(0x8000, 0, key)
	got, err := cfg.Auth(signed^0x10, 0, key)
	if err != nil {
		t.Fatalf("non-FPAC Auth must not error, got %v", err)
	}
	if got&(1<<62) == 0 {
		t.Errorf("non-FPAC failure must poison the pointer, got %#x", got)
	}
}

func TestStripRemovesSignatureOnly(t *testing.T) {
	cfg := DefaultConfig
	key := KeyFromSeed(9)
	ptr := ptrlayout.WithTag(0xBEEF0, 5)
	signed := cfg.Sign(ptr, 42, key)
	stripped := cfg.Strip(signed)
	if stripped != ptr {
		t.Errorf("Strip = %#x, want %#x", stripped, ptr)
	}
}

func TestSignPreservesMTETag(t *testing.T) {
	cfg := DefaultConfig
	key := KeyFromSeed(11)
	ptr := ptrlayout.WithTag(0x4000, 0xC)
	signed := cfg.Sign(ptr, 0, key)
	if ptrlayout.Tag(signed) != 0xC {
		t.Errorf("signing clobbered the MTE tag: %#x", ptrlayout.Tag(signed))
	}
	got, err := cfg.Auth(signed, 0, key)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Tag(got) != 0xC {
		t.Error("authentication clobbered the MTE tag")
	}
}

func TestSignAuthProperty(t *testing.T) {
	key := KeyFromSeed(99)
	cfg := DefaultConfig
	f := func(addr uint64, mod uint64) bool {
		ptr := addr & ((1 << 48) - 1) // canonical user pointer
		signed := cfg.Sign(ptr, mod, key)
		got, err := cfg.Auth(signed, mod, key)
		return err == nil && got == ptr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForgeryResistanceProperty(t *testing.T) {
	// Random signatures must essentially never validate: with 10
	// signature bits a blind guess passes with p = 2^-10, so 200 random
	// forgeries passing more than a handful of times indicates a broken
	// MAC. We tolerate up to 3 lucky guesses.
	cfg := DefaultConfig
	key := KeyFromSeed(1234)
	lucky := 0
	x := uint64(88172645463325252)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < 200; i++ {
		forged := cfg.Layout.Insert(next()&((1<<48)-1), next())
		if _, err := cfg.Auth(forged, 0, key); err == nil {
			lucky++
		}
	}
	if lucky > 3 {
		t.Errorf("%d/200 forged signatures validated", lucky)
	}
}

func TestKeyIndependence(t *testing.T) {
	// Two instances (two keys) must produce different signatures for
	// the same pointer, so leaked pointers are not reusable (paper §4.2).
	cfg := DefaultConfig
	a := cfg.Sign(0x8650, 0, KeyFromSeed(5))
	b := cfg.Sign(0x8650, 0, KeyFromSeed(6))
	if a == b {
		t.Error("different keys produced identical signed pointers")
	}
}

func TestNewKeyFromEntropy(t *testing.T) {
	k1, err := NewKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("two fresh keys are identical")
	}
}

func TestSigBits(t *testing.T) {
	if got := DefaultConfig.SigBits(); got != 10 {
		t.Errorf("MTE+PAC SigBits = %d, want 10", got)
	}
	if got := (Config{Layout: ptrlayout.PACOnly}).SigBits(); got != 15 {
		t.Errorf("PAC-only SigBits = %d, want 15", got)
	}
}
