// Package wasi provides the minimal WASI (WebAssembly System Interface)
// host surface the Cage toolchain needs, ported to wasm64 the way the
// paper ports wasi-libc (§6.2): pointers and sizes in the ABI widen from
// 32 to 64 bits.
//
// Implemented calls: fd_write (stdout/stderr via io.Writer), proc_exit,
// clock_time_get (virtual, deterministic), random_get (seeded,
// deterministic), args_sizes_get/args_get, environ_sizes_get/environ_get.
//
// # Host surface and privilege model
//
// The functions are defined once, as a process-shared exec.HostModule
// (HostModule()); each call resolves its per-instance *System through
// the instance's host data (any value implementing Provider), so one
// resolved import table serves every pooled instance. Guest memory is
// touched exclusively through the HostContext's bounds-checked Memory
// view: guest pointers are untagged before use and every access is
// bounds-checked against the guest-visible memory size and charged to
// the timing model — but, like all host-side accesses, WASI runs with
// runtime privileges and is not subject to MTE tag checks (see the
// exec package comment for why). A fault surfaces to the guest as the
// WASI errno, never as a runtime panic.
package wasi

import (
	"errors"
	"io"

	"cage/internal/exec"
)

// Module is the WASI import-module name.
const Module = "wasi_snapshot_preview1"

// Errno values (subset). Untyped so they compare against both raw
// uint64 slots and the i32 results of the typed host surface.
const (
	ErrnoSuccess = 0
	ErrnoBadf    = 8
	ErrnoFault   = 21
	ErrnoInval   = 28
)

// System is one instance's WASI state.
type System struct {
	Stdout io.Writer
	Stderr io.Writer
	Args   []string
	Env    []string
	// clock is virtual time in nanoseconds, advanced per query so
	// repeated reads are monotone yet deterministic.
	clock uint64
	// rng is the deterministic random_get state.
	rng uint64
}

// New creates a WASI system writing to the given stdout/stderr.
func New(stdout, stderr io.Writer) *System {
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}
	return &System{Stdout: stdout, Stderr: stderr, clock: 1_000_000_000, rng: 0x853C49E6748FEA9B}
}

func (s *System) next() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Provider locates an instance's WASI state from its host data
// (exec.Config.HostData / HostContext.Data).
type Provider interface {
	WASISystem() *System
}

// WASISystem implements Provider, so a *System can itself serve as the
// instance host data in the simple single-subsystem case.
func (s *System) WASISystem() *System { return s }

// systemOf resolves the calling instance's WASI state.
func systemOf(hc *exec.HostContext) (*System, error) {
	if p, ok := hc.Data().(Provider); ok {
		if s := p.WASISystem(); s != nil {
			return s, nil
		}
	}
	return nil, errors.New("wasi: instance has no WASI system bound (HostData must implement wasi.Provider)")
}

// HostModule builds the WASI host surface on the typed host-module
// builder. The module is stateless — per-instance state lives in the
// *System the host data provides — so embedders register it once and
// share it across instances.
func HostModule() *exec.HostModule {
	hm := exec.NewHostModule(Module)

	// fd_write(fd: i32, iovs: i64, iovs_len: i64, nwritten: i64) -> i32
	exec.Func4(hm, "fd_write", func(hc *exec.HostContext, fd int32, iovs exec.Ptr, iovsLen uint64, nwritten exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		var w io.Writer
		switch fd {
		case 1:
			w = s.Stdout
		case 2:
			w = s.Stderr
		default:
			return ErrnoBadf, nil
		}
		mem := hc.Memory()
		var written uint64
		for i := uint64(0); i < iovsLen; i++ {
			base, err := mem.ReadU64(uint64(iovs) + i*16)
			if err != nil {
				return ErrnoFault, nil
			}
			length, err := mem.ReadU64(uint64(iovs) + i*16 + 8)
			if err != nil {
				return ErrnoFault, nil
			}
			buf, err := mem.ReadBytes(base, length)
			if err != nil {
				return ErrnoFault, nil
			}
			if _, err := w.Write(buf); err != nil {
				return ErrnoInval, nil
			}
			written += length
		}
		if err := mem.WriteU64(uint64(nwritten), written); err != nil {
			return ErrnoFault, nil
		}
		return ErrnoSuccess, nil
	})

	// proc_exit(code: i32)
	exec.Void1(hm, "proc_exit", func(_ *exec.HostContext, code int32) error {
		return &exec.Trap{Code: exec.TrapExit, ExitCode: code}
	})

	// clock_time_get(id: i32, precision: i64, out: i64) -> i32
	exec.Func3(hm, "clock_time_get", func(hc *exec.HostContext, _ int32, _ uint64, out exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		s.clock += 1000 // deterministic 1 µs per query
		if err := hc.Memory().WriteU64(uint64(out), s.clock); err != nil {
			return ErrnoFault, nil
		}
		return ErrnoSuccess, nil
	})

	// random_get(buf: i64, len: i64) -> i32
	exec.Func2(hm, "random_get", func(hc *exec.HostContext, buf exec.Ptr, n uint64) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		// Bounds before allocation: a guest-controlled length must not
		// size a host buffer larger than the memory it could land in.
		if n > hc.Memory().Size() {
			return ErrnoFault, nil
		}
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(s.next())
		}
		if err := hc.Memory().WriteBytes(uint64(buf), b); err != nil {
			return ErrnoFault, nil
		}
		return ErrnoSuccess, nil
	})

	// args_sizes_get(argc: i64, argv_buf_size: i64) -> i32
	exec.Func2(hm, "args_sizes_get", func(hc *exec.HostContext, argc, bufSize exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		return writeSizes(hc, s.Args, argc, bufSize)
	})

	// args_get(argv: i64, argv_buf: i64) -> i32
	exec.Func2(hm, "args_get", func(hc *exec.HostContext, argv, argvBuf exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		return writeStringTable(hc, s.Args, argv, argvBuf)
	})

	// environ_sizes_get / environ_get mirror the args pair.
	exec.Func2(hm, "environ_sizes_get", func(hc *exec.HostContext, envc, bufSize exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		return writeSizes(hc, s.Env, envc, bufSize)
	})
	exec.Func2(hm, "environ_get", func(hc *exec.HostContext, environ, environBuf exec.Ptr) (int32, error) {
		s, err := systemOf(hc)
		if err != nil {
			return 0, err
		}
		return writeStringTable(hc, s.Env, environ, environBuf)
	})

	return hm
}

// writeSizes reports a string list's count and NUL-terminated byte
// total (the args_sizes_get/environ_sizes_get contract).
func writeSizes(hc *exec.HostContext, strs []string, countAddr, totalAddr exec.Ptr) (int32, error) {
	total := uint64(0)
	for _, s := range strs {
		total += uint64(len(s)) + 1
	}
	mem := hc.Memory()
	if err := mem.WriteU64(uint64(countAddr), uint64(len(strs))); err != nil {
		return ErrnoFault, nil
	}
	if err := mem.WriteU64(uint64(totalAddr), total); err != nil {
		return ErrnoFault, nil
	}
	return ErrnoSuccess, nil
}

// writeStringTable lays out NUL-terminated strings at bufAddr and their
// pointers at tableAddr (the args_get/environ_get contract).
func writeStringTable(hc *exec.HostContext, strs []string, tableAddr, bufAddr exec.Ptr) (int32, error) {
	mem := hc.Memory()
	cursor := uint64(bufAddr)
	for i, str := range strs {
		if err := mem.WriteU64(uint64(tableAddr)+uint64(i)*8, cursor); err != nil {
			return ErrnoFault, nil
		}
		if err := mem.WriteBytes(cursor, append([]byte(str), 0)); err != nil {
			return ErrnoFault, nil
		}
		cursor += uint64(len(str)) + 1
	}
	return ErrnoSuccess, nil
}
