package bench

import (
	"fmt"
	"io"

	"cage/internal/core"
	"cage/internal/mte"
)

// SecurityAnalysis reproduces the §7.4 probability analysis.
type SecurityAnalysis struct {
	// CollisionInternalOnly is the adjacent-allocation tag-collision
	// probability with all tag bits available (paper: 1/15).
	CollisionInternalOnly float64
	// CollisionCombined is the probability when MTE also carries the
	// sandbox (paper: 1/7).
	CollisionCombined float64
	// MaxSandboxes is the per-process sandbox limit (paper: 15).
	MaxSandboxes int
	// PACSigBits is the signature width with MTE enabled (Fig. 3: 10
	// usable bits on Linux, at least 7 guaranteed).
	PACSigBits int
}

// AnalyzeSecurity derives the numbers from the tag policies.
func AnalyzeSecurity() SecurityAnalysis {
	internal := core.NewPolicy(core.Features{MemSafety: true, MTEMode: mte.ModeSync})
	combined := core.NewPolicy(core.CageAll())
	external := core.NewPolicy(core.Features{Sandbox: true, MTEMode: mte.ModeSync})
	return SecurityAnalysis{
		CollisionInternalOnly: internal.CollisionProbability(),
		CollisionCombined:     combined.CollisionProbability(),
		MaxSandboxes:          external.MaxSandboxes,
		PACSigBits:            10,
	}
}

// SecurityReport prints the analysis.
func SecurityReport(w io.Writer) {
	a := AnalyzeSecurity()
	fmt.Fprintf(w, "tag collision probability (internal only): 1/%d = %.1f%%\n",
		int(1/a.CollisionInternalOnly+0.5), 100*a.CollisionInternalOnly)
	fmt.Fprintf(w, "tag collision probability (with MTE sandboxing): 1/%d = %.1f%%\n",
		int(1/a.CollisionCombined+0.5), 100*a.CollisionCombined)
	fmt.Fprintf(w, "sandboxes per process: %d (+1 runtime tag)\n", a.MaxSandboxes)
	fmt.Fprintf(w, "PAC signature bits alongside MTE: %d\n", a.PACSigBits)
	fmt.Fprintln(w, "deterministic guarantees: off-by-one overflow/underflow,")
	fmt.Fprintln(w, "use-after-free and double-free are caught at least until reuse")
}
