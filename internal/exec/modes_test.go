package exec

import (
	"testing"
	"testing/quick"

	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

// Tests for the MTE check modes and cross-cutting engine properties.

func asyncCfg(mode mte.Mode) Config {
	return Config{Features: core.Features{MemSafety: true, MTEMode: mode}, Seed: 21}
}

// uafModule builds a module whose f() reads through a dangling segment
// pointer and then runs to completion (so only async delivery can
// report it late).
func uafModule() *wasm.Module {
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(32), wasm.SegmentFree(0),
		wasm.LocalGet(0), wasm.Load(wasm.OpI64Load, 0), // dangling read
		wasm.Op(wasm.OpDrop),
		wasm.I64Const(7),
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	return m
}

func TestAsyncModeDefersFaultToInvokeBoundary(t *testing.T) {
	// Synchronous mode traps inside the run.
	if _, err := run1(t, asyncCfg(mte.ModeSync), uafModule()); !IsTrap(err, TrapTagMismatch) {
		t.Fatalf("sync: got %v", err)
	}
	// Asynchronous mode lets the access complete and reports the fault
	// at the next context switch — our Invoke boundary (paper §2.3).
	_, err := run1(t, asyncCfg(mte.ModeAsync), uafModule())
	if !IsTrap(err, TrapTagMismatch) {
		t.Fatalf("async: fault not delivered at invoke boundary: %v", err)
	}
	tr := err.(*Trap)
	if tr.Msg == "" || tr.Msg[:8] != "deferred" {
		t.Errorf("async fault should be marked deferred, got %q", tr.Msg)
	}
}

func TestAsymmetricModeReadsDeferredWritesImmediate(t *testing.T) {
	// Read UAF: deferred.
	if _, err := run1(t, asyncCfg(mte.ModeAsymmetric), uafModule()); !IsTrap(err, TrapTagMismatch) {
		t.Fatalf("asymmetric read: %v", err)
	}
	// Write UAF: synchronous.
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(32), wasm.SegmentFree(0),
		wasm.LocalGet(0), wasm.I64Const(1), wasm.Store(wasm.OpI64Store, 0),
		wasm.I64Const(7),
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	_, err := run1(t, asyncCfg(mte.ModeAsymmetric), m)
	if !IsTrap(err, TrapTagMismatch) {
		t.Fatalf("asymmetric write: %v", err)
	}
	if msg := err.(*Trap).Msg; len(msg) >= 8 && msg[:8] == "deferred" {
		t.Error("asymmetric write fault must be synchronous, was deferred")
	}
}

func TestMemoryGrowPreservesHostRegionAndSandboxTags(t *testing.T) {
	m := i64m(
		wasm.I64Const(1), wasm.Op(wasm.OpMemoryGrow), wasm.Op(wasm.OpDrop),
		// Store+load in the freshly grown page (beyond the old limit).
		wasm.I64Const(70*1024), wasm.I64Const(5), wasm.Store(wasm.OpI64Store, 0),
		wasm.I64Const(70*1024), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	inst, err := NewInstance(m, sandboxCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f")
	if err != nil {
		t.Fatalf("access to grown page: %v", err)
	}
	if res[0] != 5 {
		t.Errorf("grown-page value = %d", res[0])
	}
	// The host-reserve pattern survived the grow.
	host := inst.HostRegion()
	for i, b := range host {
		if b != 0x5A {
			t.Fatalf("host region corrupted at %d: %#x", i, b)
		}
	}
	// New pages carry the sandbox tag.
	if tag := inst.Tags().TagAt(70 * 1024); tag != inst.SandboxTag() {
		t.Errorf("grown page tagged %d, want sandbox tag %d", tag, inst.SandboxTag())
	}
}

// TestAdjacentSegmentsNeverShareTagsWithHeaders is the Fig. 8a property:
// with untagged metadata slots between allocations, an overflow off any
// allocation lands on a differently-tagged granule, for every allocation
// pattern.
func TestAdjacentSegmentsNeverShareTagsWithHeaders(t *testing.T) {
	f := func(sizes []uint8, seed uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		m := i64m(wasm.I64Const(0), wasm.End())
		inst, err := NewInstance(m, Config{
			Features: core.Features{MemSafety: true, MTEMode: mte.ModeSync},
			Seed:     uint64(seed) + 1,
		})
		if err != nil {
			return false
		}
		addr := uint64(1024)
		var ends []uint64
		var tags []uint8
		for _, s := range sizes {
			length := (uint64(s%64) + 1) * 16
			tagged, err := inst.HostSegmentNew(addr, length)
			if err != nil {
				return false
			}
			tags = append(tags, ptrlayout.Tag(tagged))
			ends = append(ends, addr+length)
			addr += length + 16 // untagged header slot between allocations
		}
		// One byte past every allocation must carry a different tag.
		for i, end := range ends {
			if inst.Tags().TagAt(end) == tags[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWasm32OutOfBoundsGuardPage(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 1, HasMax: true}, Memory64: false}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{
		wasm.I32Const(1 << 20), wasm.Load(wasm.OpI32Load, 0),
		wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("f"); !IsTrap(err, TrapOutOfBounds) {
		t.Errorf("wasm32 OOB: got %v", err)
	}
}

// TestArithmeticAgainstGoSemantics cross-checks the interpreter's i64
// arithmetic against Go's, over random operands.
func TestArithmeticAgainstGoSemantics(t *testing.T) {
	mk := func(op wasm.Opcode) *wasm.Module {
		return buildModule([]wasm.ValType{wasm.I64, wasm.I64}, []wasm.ValType{wasm.I64}, nil,
			wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op(op), wasm.End())
	}
	type oper struct {
		op wasm.Opcode
		fn func(a, b uint64) uint64
	}
	ops := []oper{
		{wasm.OpI64Add, func(a, b uint64) uint64 { return a + b }},
		{wasm.OpI64Sub, func(a, b uint64) uint64 { return a - b }},
		{wasm.OpI64Mul, func(a, b uint64) uint64 { return a * b }},
		{wasm.OpI64And, func(a, b uint64) uint64 { return a & b }},
		{wasm.OpI64Or, func(a, b uint64) uint64 { return a | b }},
		{wasm.OpI64Xor, func(a, b uint64) uint64 { return a ^ b }},
		{wasm.OpI64Shl, func(a, b uint64) uint64 { return a << (b & 63) }},
		{wasm.OpI64ShrU, func(a, b uint64) uint64 { return a >> (b & 63) }},
	}
	insts := make([]*Instance, len(ops))
	for i, o := range ops {
		var err error
		insts[i], err = NewInstance(mk(o.op), Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	f := func(a, b uint64) bool {
		for i, o := range ops {
			res, err := insts[i].Invoke("f", a, b)
			if err != nil || res[0] != o.fn(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
