package exec

import (
	"testing"

	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/wasm"
)

// Clean-memory restore elision tests. RestoreFromSnapshot may skip the
// memory clear+copy only when it can prove nothing wrote guest memory
// since the last restore of the same image. These tests attack that
// proof: every write channel — guest stores, host writes, raw Memory()
// views, memory.grow — must break the witness, or a pooled instance
// would leak one tenant's writes into the next tenant's checkout.

// elisionModule builds a module exporting peek(addr) and poke(addr,
// val) plus a pure add(a, b) that never touches memory.
func elisionModule() *wasm.Module {
	m := &wasm.Module{}
	peek := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	poke := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 16, HasMax: true}, Memory64: true}}
	m.Funcs = []wasm.Function{
		{TypeIdx: peek, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.Load(wasm.OpI64Load, 0), wasm.End()}},
		{TypeIdx: poke, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.LocalGet(1), wasm.Store(wasm.OpI64Store, 0),
			wasm.LocalGet(1), wasm.End()}},
		{TypeIdx: poke, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op(wasm.OpI64Add), wasm.End()}},
	}
	m.Exports = []wasm.Export{
		{Name: "peek", Kind: wasm.ExportFunc, Idx: 0},
		{Name: "poke", Kind: wasm.ExportFunc, Idx: 1},
		{Name: "add", Kind: wasm.ExportFunc, Idx: 2},
	}
	return m
}

// elisionFeatures are the sandbox shapes the witness must hold under:
// every address-translation strategy has its own store sites.
var elisionFeatures = []struct {
	name  string
	feats core.Features
}{
	{"plain", core.Features{}},
	{"sandbox", core.Features{Sandbox: true, MTEMode: mte.ModeSync}},
	{"memsafety", core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
}

func TestRestoreElisionGuestStores(t *testing.T) {
	for _, tc := range elisionFeatures {
		t.Run(tc.name, func(t *testing.T) {
			m := elisionModule()
			inst, err := NewInstance(m, Config{Features: tc.feats})
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			snap, err := inst.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 4; round++ {
				// Dirty the heap, then restore: the write must vanish.
				if _, err := inst.Invoke("poke", 128, 0xDEAD+uint64(round)); err != nil {
					t.Fatalf("round %d poke: %v", round, err)
				}
				if err := inst.RestoreFromSnapshot(snap, uint64(round+1)); err != nil {
					t.Fatalf("round %d restore: %v", round, err)
				}
				if res, err := inst.Invoke("peek", 128); err != nil || res[0] != 0 {
					t.Fatalf("round %d: write leaked across restore: peek = %v, %v", round, res, err)
				}
				// The peek dirtied nothing; the next restore must elide
				// (white-box: the witness is armed) — and a pure call
				// after it must still see clean memory.
				if inst.lastImage != snap || inst.memDirty || inst.memExposed {
					t.Fatalf("round %d: witness not armed (lastImage=%v dirty=%v exposed=%v)",
						round, inst.lastImage == snap, inst.memDirty, inst.memExposed)
				}
				if err := inst.RestoreFromSnapshot(snap, uint64(round+100)); err != nil {
					t.Fatalf("round %d elided restore: %v", round, err)
				}
				if res, err := inst.Invoke("add", 3, 4); err != nil || res[0] != 7 {
					t.Fatalf("round %d add after elided restore: %v, %v", round, res, err)
				}
				if res, err := inst.Invoke("peek", 128); err != nil || res[0] != 0 {
					t.Fatalf("round %d: stale byte after elided restore: %v, %v", round, res, err)
				}
			}
		})
	}
}

func TestRestoreElisionHostWrites(t *testing.T) {
	m := elisionModule()
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Arm the witness with one elidable round trip.
	if err := inst.RestoreFromSnapshot(snap, 1); err != nil {
		t.Fatal(err)
	}
	// A runtime-privilege host write must break it.
	if err := inst.WriteU64(256, 0xFEED); err != nil {
		t.Fatal(err)
	}
	if err := inst.RestoreFromSnapshot(snap, 2); err != nil {
		t.Fatal(err)
	}
	if res, err := inst.Invoke("peek", 256); err != nil || res[0] != 0 {
		t.Fatalf("host write leaked across restore: %v, %v", res, err)
	}
}

func TestRestoreElisionRawMemoryView(t *testing.T) {
	m := elisionModule()
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.RestoreFromSnapshot(snap, 1); err != nil {
		t.Fatal(err)
	}
	// Once a raw view has escaped, every later restore must pay the
	// full copy — the holder can write between any two restores. (The
	// view itself must be re-acquired per round: under cagecow a
	// restore remaps the backing, invalidating old slices.)
	for round := 0; round < 3; round++ {
		inst.Memory()[512] = 0xAB
		if err := inst.RestoreFromSnapshot(snap, uint64(round+2)); err != nil {
			t.Fatal(err)
		}
		if res, err := inst.Invoke("peek", 512); err != nil || res[0] != 0 {
			t.Fatalf("round %d: raw-view write leaked across restore: %v, %v", round, res, err)
		}
	}
}

func TestRestoreElisionAfterGrow(t *testing.T) {
	m := elisionModule()
	// Extra func: grow(pages) -> old size, via memory.grow.
	grow := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Funcs = append(m.Funcs, wasm.Function{TypeIdx: grow, Body: []wasm.Instr{
		wasm.LocalGet(0), wasm.Op(wasm.OpMemoryGrow), wasm.End()}})
	m.Exports = append(m.Exports, wasm.Export{Name: "grow", Kind: wasm.ExportFunc, Idx: 3})

	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.RestoreFromSnapshot(snap, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("grow", 1); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := inst.MemorySize(); got != 2*wasm.PageSize {
		t.Fatalf("after grow: size %d", got)
	}
	if err := inst.RestoreFromSnapshot(snap, 2); err != nil {
		t.Fatal(err)
	}
	if got := inst.MemorySize(); got != snap.MemorySize() {
		t.Fatalf("grow survived restore: size %d, want %d", got, snap.MemorySize())
	}
	if res, err := inst.Invoke("peek", 128); err != nil || res[0] != 0 {
		t.Fatalf("post-grow restore: %v, %v", res, err)
	}
}
