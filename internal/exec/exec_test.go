package exec

import (
	"math"
	"testing"

	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

func archEvBoundsCheck() arch.Event { return arch.EvBoundsCheck }

// buildModule makes a wasm64 module with one exported function "f".
func buildModule(params, results []wasm.ValType, locals []wasm.ValType, body ...wasm.Instr) *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: params, Results: results})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 16, HasMax: true}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Locals: locals, Body: body}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	return m
}

func run1(t *testing.T, cfg Config, m *wasm.Module, args ...uint64) (uint64, error) {
	t.Helper()
	inst, err := NewInstance(m, cfg)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Invoke("f", args...)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		t.Fatalf("expected 1 result, got %d", len(res))
	}
	return res[0], nil
}

func i64m(body ...wasm.Instr) *wasm.Module {
	return buildModule(nil, []wasm.ValType{wasm.I64}, nil, body...)
}

func TestArithmeticBasics(t *testing.T) {
	cases := []struct {
		name string
		body []wasm.Instr
		want uint64
	}{
		{"add", []wasm.Instr{wasm.I64Const(40), wasm.I64Const(2), wasm.Op(wasm.OpI64Add), wasm.End()}, 42},
		{"sub", []wasm.Instr{wasm.I64Const(40), wasm.I64Const(2), wasm.Op(wasm.OpI64Sub), wasm.End()}, 38},
		{"mul", []wasm.Instr{wasm.I64Const(6), wasm.I64Const(7), wasm.Op(wasm.OpI64Mul), wasm.End()}, 42},
		{"divs", []wasm.Instr{wasm.I64Const(-84), wasm.I64Const(2), wasm.Op(wasm.OpI64DivS), wasm.End()}, ^uint64(41)},
		{"rem", []wasm.Instr{wasm.I64Const(47), wasm.I64Const(5), wasm.Op(wasm.OpI64RemU), wasm.End()}, 2},
		{"and", []wasm.Instr{wasm.I64Const(0xFF), wasm.I64Const(0x0F), wasm.Op(wasm.OpI64And), wasm.End()}, 0x0F},
		{"shl", []wasm.Instr{wasm.I64Const(1), wasm.I64Const(56), wasm.Op(wasm.OpI64Shl), wasm.End()}, 1 << 56},
		{"clz", []wasm.Instr{wasm.I64Const(1), wasm.Op(wasm.OpI64Clz), wasm.End()}, 63},
		{"eqz", []wasm.Instr{wasm.I64Const(0), wasm.Op(wasm.OpI64Eqz), wasm.Op(wasm.OpI64ExtendI32U), wasm.End()}, 1},
		{"lts", []wasm.Instr{wasm.I64Const(-1), wasm.I64Const(1), wasm.Op(wasm.OpI64LtS), wasm.Op(wasm.OpI64ExtendI32U), wasm.End()}, 1},
		{"ltu", []wasm.Instr{wasm.I64Const(-1), wasm.I64Const(1), wasm.Op(wasm.OpI64LtU), wasm.Op(wasm.OpI64ExtendI32U), wasm.End()}, 0},
		{"rotl", []wasm.Instr{wasm.I64Const(math.MinInt64), wasm.I64Const(1), wasm.Op(wasm.OpI64Rotl), wasm.End()}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := run1(t, Config{}, i64m(c.body...))
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestF64Arithmetic(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.F64}, nil,
		wasm.F64Const(1.5), wasm.F64Const(2.25), wasm.Op(wasm.OpF64Mul),
		wasm.F64Const(0.625), wasm.Op(wasm.OpF64Add),
		wasm.Op(wasm.OpF64Sqrt),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if f := math.Float64frombits(got); f != 2.0 {
		t.Errorf("got %v, want 2.0", f)
	}
}

func TestDivTraps(t *testing.T) {
	_, err := run1(t, Config{}, i64m(
		wasm.I64Const(1), wasm.I64Const(0), wasm.Op(wasm.OpI64DivU), wasm.End()))
	if !IsTrap(err, TrapDivByZero) {
		t.Errorf("div by zero: got %v", err)
	}
	_, err = run1(t, Config{}, i64m(
		wasm.I64Const(math.MinInt64), wasm.I64Const(-1), wasm.Op(wasm.OpI64DivS), wasm.End()))
	if !IsTrap(err, TrapIntOverflow) {
		t.Errorf("div overflow: got %v", err)
	}
}

func TestTruncTraps(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.F64Const(math.NaN()), wasm.Op(wasm.OpI64TruncF64S), wasm.End())
	if _, err := run1(t, Config{}, m); !IsTrap(err, TrapIntOverflow) {
		t.Errorf("trunc NaN: got %v", err)
	}
}

func TestControlFlowLoopSum(t *testing.T) {
	// sum 1..10 with a loop: local0 = i, local1 = acc.
	m := buildModule(nil, []wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64, wasm.I64},
		wasm.Block(wasm.BlockVoid),
		wasm.Loop(wasm.BlockVoid),
		// if i >= 10 break
		wasm.LocalGet(0), wasm.I64Const(10), wasm.Op(wasm.OpI64GeS), wasm.BrIf(1),
		// i++
		wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Add), wasm.LocalSet(0),
		// acc += i
		wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op(wasm.OpI64Add), wasm.LocalSet(1),
		wasm.Br(0),
		wasm.End(),
		wasm.End(),
		wasm.LocalGet(1),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestIfElse(t *testing.T) {
	mk := func(cond int32) *wasm.Module {
		return buildModule(nil, []wasm.ValType{wasm.I64}, nil,
			wasm.I32Const(cond),
			wasm.If(wasm.BlockI64),
			wasm.I64Const(111),
			wasm.Else(),
			wasm.I64Const(222),
			wasm.End(),
			wasm.End())
	}
	if got, _ := run1(t, Config{}, mk(1)); got != 111 {
		t.Errorf("true arm: %d", got)
	}
	if got, _ := run1(t, Config{}, mk(0)); got != 222 {
		t.Errorf("false arm: %d", got)
	}
}

func TestBrTable(t *testing.T) {
	mk := func(sel int32) *wasm.Module {
		return buildModule(nil, []wasm.ValType{wasm.I64}, nil,
			wasm.Block(wasm.BlockVoid),
			wasm.Block(wasm.BlockVoid),
			wasm.Block(wasm.BlockVoid),
			wasm.I32Const(sel),
			wasm.BrTable([]uint32{0, 1}, 2),
			wasm.End(),
			wasm.I64Const(100), wasm.Op(wasm.OpReturn),
			wasm.End(),
			wasm.I64Const(200), wasm.Op(wasm.OpReturn),
			wasm.End(),
			wasm.I64Const(300),
			wasm.End())
	}
	for sel, want := range map[int32]uint64{0: 100, 1: 200, 7: 300} {
		if got, err := run1(t, Config{}, mk(sel)); err != nil || got != want {
			t.Errorf("br_table(%d) = %d, %v; want %d", sel, got, err, want)
		}
	}
}

func TestDirectCall(t *testing.T) {
	m := &wasm.Module{}
	unary := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	main := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Funcs = []wasm.Function{
		{TypeIdx: unary, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.I64Const(2), wasm.Op(wasm.OpI64Mul), wasm.End()}},
		{TypeIdx: main, Body: []wasm.Instr{
			wasm.I64Const(21), wasm.Call(0), wasm.End()}},
	}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 1}}
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("call result = %d", got)
	}
}

func TestRecursionFactorialAndDepthLimit(t *testing.T) {
	m := &wasm.Module{}
	fac := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: fac, Body: []wasm.Instr{
		wasm.LocalGet(0), wasm.I64Const(2), wasm.Op(wasm.OpI64LtS),
		wasm.If(wasm.BlockI64),
		wasm.I64Const(1),
		wasm.Else(),
		wasm.LocalGet(0),
		wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Sub), wasm.Call(0),
		wasm.Op(wasm.OpI64Mul),
		wasm.End(),
		wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 3628800 {
		t.Errorf("10! = %d", res[0])
	}
	// Depth limit.
	inst2, err := NewInstance(m, Config{MaxCallDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst2.Invoke("f", 1000); !IsTrap(err, TrapCallDepth) {
		t.Errorf("deep recursion: got %v", err)
	}
}

func TestCallIndirectAndSignatureCheck(t *testing.T) {
	m := &wasm.Module{}
	unary := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	nullary := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	main := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: 4}}}
	m.Funcs = []wasm.Function{
		{TypeIdx: unary, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Add), wasm.End()}},
		{TypeIdx: nullary, Body: []wasm.Instr{wasm.I64Const(7), wasm.End()}},
		{TypeIdx: main, Body: []wasm.Instr{
			wasm.I64Const(10),
			wasm.LocalGet(0),
			wasm.CallIndirect(unary),
			wasm.End()}},
	}
	m.Elems = []wasm.ElemSegment{{Offset: 0, Funcs: []uint32{0, 1}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 2}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 11 {
		t.Errorf("indirect call = %d", res[0])
	}
	// Entry 1 has the wrong signature.
	if _, err := inst.Invoke("f", 1); !IsTrap(err, TrapIndirectCall) {
		t.Errorf("signature mismatch: got %v", err)
	}
	// Entry 2 is null.
	if _, err := inst.Invoke("f", 2); !IsTrap(err, TrapIndirectCall) {
		t.Errorf("null entry: got %v", err)
	}
	// Entry 99 is out of range.
	if _, err := inst.Invoke("f", 99); !IsTrap(err, TrapIndirectCall) {
		t.Errorf("out of range: got %v", err)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(64), wasm.I64Const(0x1122334455667788),
		wasm.Store(wasm.OpI64Store, 0),
		wasm.I64Const(64), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1122334455667788 {
		t.Errorf("load = %#x", got)
	}
}

func TestSubWidthLoads(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(0), wasm.I32Const(-1), wasm.Store(wasm.OpI32Store8, 0),
		wasm.I64Const(0), wasm.Load(wasm.OpI64Load8S, 0),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got) != -1 {
		t.Errorf("load8_s = %d, want -1", int64(got))
	}
}

func TestBoundsCheck64(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(1<<20), wasm.Load(wasm.OpI64Load, 0), // beyond 1 page
		wasm.End())
	_, err := run1(t, Config{}, m)
	if !IsTrap(err, TrapOutOfBounds) {
		t.Errorf("OOB load: got %v", err)
	}
	// The bounds check must be counted (wasm64 software sandboxing).
	inst, _ := NewInstance(buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(0), wasm.Load(wasm.OpI64Load, 0), wasm.End()), Config{})
	if _, err := inst.Invoke("f"); err != nil {
		t.Fatal(err)
	}
	if inst.Counter().Get(archEvBoundsCheck()) != 1 {
		t.Error("bounds check event not counted")
	}
}

func TestMemoryGrow(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(2), wasm.Op(wasm.OpMemoryGrow), wasm.Op(wasm.OpDrop),
		wasm.Op(wasm.OpMemorySize),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("pages after grow = %d, want 3", got)
	}
	// Growing past max fails with ^0.
	m2 := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.I64Const(100), wasm.Op(wasm.OpMemoryGrow),
		wasm.End())
	got, err = run1(t, Config{}, m2)
	if err != nil {
		t.Fatal(err)
	}
	if got != ^uint64(0) {
		t.Errorf("grow past max = %d", got)
	}
}

func TestMemoryFillAndCopy(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		// fill [0,16) with 0xAB
		wasm.I64Const(0), wasm.I32Const(0xAB), wasm.I64Const(16), wasm.Op(wasm.OpMemoryFill),
		// copy [0,8) -> [32,40)
		wasm.I64Const(32), wasm.I64Const(0), wasm.I64Const(8), wasm.Op(wasm.OpMemoryCopy),
		wasm.I64Const(32), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xABABABABABABABAB {
		t.Errorf("fill+copy = %#x", got)
	}
}

func TestHostFunctionCall(t *testing.T) {
	m := &wasm.Module{}
	hostTy := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	main := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{{Module: "env", Name: "triple", TypeIdx: hostTy}}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: main, Body: []wasm.Instr{
		wasm.I64Const(14), wasm.Call(0), wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 1}}
	l := NewLinker()
	l.Define("env", "triple", HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}},
		Fn: func(_ *HostContext, args []uint64) ([]uint64, error) {
			return []uint64{args[0] * 3}, nil
		},
	})
	got, err := run1(t, Config{Linker: l}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("host call = %d", got)
	}
}

// --- Cage semantics (paper Fig. 11) ---

func memSafetyCfg() Config {
	return Config{Features: core.Features{MemSafety: true, MTEMode: mte.ModeSync}, Seed: 7}
}

func TestSegmentNewReturnsTaggedPointer(t *testing.T) {
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.End())
	got, err := run1(t, memSafetyCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Address(got) != 64 {
		t.Errorf("tagged pointer address = %#x, want 64", ptrlayout.Address(got))
	}
	if ptrlayout.Tag(got) == 0 {
		t.Error("segment.new returned an untagged pointer")
	}
}

func TestSegmentAccessProvenance(t *testing.T) {
	// Access through the tagged pointer works; access through the raw
	// pointer traps (Fig. 11 rules 1-2).
	ok := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(123), wasm.Store(wasm.OpI64Store, 0),
		wasm.LocalGet(0), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	ok.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	got, err := run1(t, memSafetyCfg(), ok)
	if err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Errorf("tagged access = %d", got)
	}

	bad := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0), wasm.Op(wasm.OpDrop),
		wasm.I64Const(64), wasm.Load(wasm.OpI64Load, 0), // raw pointer into segment
		wasm.End())
	if _, err := run1(t, memSafetyCfg(), bad); !IsTrap(err, TrapTagMismatch) {
		t.Errorf("raw access into segment: got %v", err)
	}
}

func TestSegmentNewZeroesMemory(t *testing.T) {
	m := i64m(
		// Pre-fill [64, 96) through untagged memory.
		wasm.I64Const(64), wasm.I64Const(0x4242424242424242), wasm.Store(wasm.OpI64Store, 0),
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	got, err := run1(t, memSafetyCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("segment.new did not zero memory: %#x", got)
	}
}

func TestSegmentOutOfBoundsTraps(t *testing.T) {
	m := i64m(
		wasm.I64Const(1<<20), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.End())
	if _, err := run1(t, memSafetyCfg(), m); !IsTrap(err, TrapSegment) {
		t.Errorf("OOB segment.new: got %v", err)
	}
	unaligned := i64m(
		wasm.I64Const(8), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.End())
	if _, err := run1(t, memSafetyCfg(), unaligned); !IsTrap(err, TrapSegment) {
		t.Errorf("unaligned segment.new: got %v", err)
	}
}

func TestUseAfterFreeTraps(t *testing.T) {
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(32), wasm.SegmentFree(0),
		wasm.LocalGet(0), wasm.Load(wasm.OpI64Load, 0), // dangling pointer
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	if _, err := run1(t, memSafetyCfg(), m); !IsTrap(err, TrapTagMismatch) {
		t.Errorf("use after free: got %v", err)
	}
}

func TestDoubleFreeTraps(t *testing.T) {
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(32), wasm.SegmentFree(0),
		wasm.LocalGet(0), wasm.I64Const(32), wasm.SegmentFree(0), // double free
		wasm.I64Const(0),
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	if _, err := run1(t, memSafetyCfg(), m); !IsTrap(err, TrapSegment) {
		t.Errorf("double free: got %v", err)
	}
}

func TestSegmentSetTagTransfersOwnership(t *testing.T) {
	m := i64m(
		// Segment A at 64 with tag T.
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0), wasm.LocalSet(0),
		// Transfer [128,160) to tag T via a T-tagged pointer at 128.
		wasm.I64Const(128),
		wasm.LocalGet(0), wasm.I64Const(64), wasm.Op(wasm.OpI64Add), // A-tagged ptr at 128
		wasm.I64Const(32),
		wasm.SegmentSetTag(0),
		// Access the transferred region through the T-tagged pointer.
		wasm.LocalGet(0), wasm.I64Const(64), wasm.Op(wasm.OpI64Add),
		wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	if _, err := run1(t, memSafetyCfg(), m); err != nil {
		t.Errorf("set_tag ownership transfer failed: %v", err)
	}
}

func TestPointerSignAuthRoundTrip(t *testing.T) {
	cfg := Config{Features: core.Features{PtrAuth: true}, Seed: 3}
	m := i64m(
		wasm.I64Const(0x8650), wasm.PointerSign(), wasm.PointerAuth(),
		wasm.End())
	got, err := run1(t, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x8650 {
		t.Errorf("sign/auth round trip = %#x", got)
	}
}

func TestPointerAuthForgeryTraps(t *testing.T) {
	cfg := Config{Features: core.Features{PtrAuth: true}, Seed: 3}
	m := i64m(
		wasm.I64Const(0x8650), wasm.PointerSign(),
		wasm.I64Const(1<<40), wasm.Op(wasm.OpI64Xor), // corrupt the pointer
		wasm.PointerAuth(),
		wasm.End())
	if _, err := run1(t, cfg, m); !IsTrap(err, TrapAuthFailure) {
		t.Errorf("forged pointer: got %v", err)
	}
}

func TestPointerAuthCrossInstance(t *testing.T) {
	// A pointer signed in instance 1 must not authenticate in instance
	// 2 (paper §4.2: per-instance keys/modifiers).
	sign := i64m(wasm.I64Const(0x1234), wasm.PointerSign(), wasm.End())
	i1, err := NewInstance(sign, Config{Features: core.Features{PtrAuth: true}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := i1.Invoke("f")
	if err != nil {
		t.Fatal(err)
	}
	signed := res[0]

	auth := buildModule([]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64}, nil,
		wasm.LocalGet(0), wasm.PointerAuth(), wasm.End())
	i2, err := NewInstance(auth, Config{Features: core.Features{PtrAuth: true}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := i2.Invoke("f", signed); !IsTrap(err, TrapAuthFailure) {
		t.Errorf("cross-instance reuse: got %v", err)
	}
	// Same instance still authenticates.
	i1b, err := NewInstance(auth, Config{Features: core.Features{PtrAuth: true}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := i1b.Invoke("f", signed); err != nil {
		t.Errorf("same-key auth failed: %v", err)
	}
}

func TestCageFallbackWithoutFeatures(t *testing.T) {
	// Without MemSafety, segment.new degrades to the identity so
	// unhardened platforms still run hardened binaries (paper §4.1).
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Errorf("fallback segment.new = %#x, want 64", got)
	}
}

// --- Sandboxing (paper Fig. 12b/13) ---

func sandboxCfg() Config {
	return Config{Features: core.Features{Sandbox: true, MTEMode: mte.ModeSync}, Seed: 11}
}

func TestMTESandboxAllowsInBounds(t *testing.T) {
	m := i64m(
		wasm.I64Const(128), wasm.I64Const(77), wasm.Store(wasm.OpI64Store, 0),
		wasm.I64Const(128), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	got, err := run1(t, sandboxCfg(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("sandboxed access = %d", got)
	}
}

func TestMTESandboxCatchesEscape(t *testing.T) {
	// Accessing beyond the linear memory hits runtime-tagged (zero)
	// granules and faults via MTE, not via a software bounds check.
	m := i64m(
		wasm.I64Const(1<<20), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	if _, err := run1(t, sandboxCfg(), m); !IsTrap(err, TrapTagMismatch) {
		t.Errorf("sandbox escape: got %v", err)
	}
}

func TestMTESandboxMasksForgedTagBits(t *testing.T) {
	// An index with forged tag bits (trying to alias the runtime's tag
	// zero) is masked before address computation (Fig. 13a).
	m := i64m(
		wasm.I64Const(int64(uint64(15)<<56|128)), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	if _, err := run1(t, sandboxCfg(), m); err != nil {
		t.Errorf("masked forged-tag access should succeed in-bounds: %v", err)
	}
}

func TestBuggyLoweringEscapesBoundsButNotMTE(t *testing.T) {
	// CVE-2023-26489 analog: with the buggy lowering, software bounds
	// checks are skipped and the guest reads host memory; under MTE
	// sandboxing the same bug still traps (paper §3, §7.4).
	leak := i64m(
		wasm.I64Const(64*1024+8), wasm.Load(wasm.OpI64Load, 0), // host region
		wasm.End())
	got, err := run1(t, Config{SkipBoundsChecks: true}, leak)
	if err != nil {
		t.Fatalf("buggy bounds-check lowering should leak, got %v", err)
	}
	if got != 0x5A5A5A5A5A5A5A5A {
		t.Errorf("leaked %#x, want host pattern", got)
	}
	cfg := sandboxCfg()
	cfg.SkipBoundsChecks = true
	if _, err := run1(t, cfg, leak); !IsTrap(err, TrapTagMismatch) {
		t.Errorf("MTE sandbox with buggy lowering: got %v", err)
	}
}

func TestSandboxTagLimit(t *testing.T) {
	// 15 sandboxes per process; the 16th must fail (paper §7.4).
	alloc := core.NewSandboxAllocator(core.NewPolicy(core.Features{Sandbox: true, MTEMode: mte.ModeSync}))
	m := i64m(wasm.I64Const(1), wasm.End())
	for i := 0; i < 15; i++ {
		cfg := sandboxCfg()
		cfg.Sandboxes = alloc
		if _, err := NewInstance(m, cfg); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	cfg := sandboxCfg()
	cfg.Sandboxes = alloc
	if _, err := NewInstance(m, cfg); err == nil {
		t.Error("16th sandbox accepted")
	}
}

func TestCombinedModeInternalPlusExternal(t *testing.T) {
	// Full Cage: segments work inside the sandbox, escapes still trap.
	m := i64m(
		wasm.I64Const(64), wasm.I64Const(32), wasm.SegmentNew(0),
		wasm.LocalTee(0),
		wasm.I64Const(99), wasm.Store(wasm.OpI64Store, 0),
		wasm.LocalGet(0), wasm.Load(wasm.OpI64Load, 0),
		wasm.End())
	m.Funcs[0].Locals = []wasm.ValType{wasm.I64}
	got, err := run1(t, Config{Features: core.CageAll(), Seed: 5}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("combined-mode segment access = %d", got)
	}
	esc := i64m(wasm.I64Const(1<<21), wasm.Load(wasm.OpI64Load, 0), wasm.End())
	if _, err := run1(t, Config{Features: core.CageAll(), Seed: 5}, esc); !IsTrap(err, TrapTagMismatch) {
		t.Errorf("combined-mode escape: got %v", err)
	}
}

func TestWasm32GuardPages(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: false}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{
		wasm.I32Const(16), wasm.I32Const(5), wasm.Store(wasm.OpI32Store, 0),
		wasm.I32Const(16), wasm.Load(wasm.OpI32Load, 0),
		wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f")
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 5 {
		t.Errorf("wasm32 access = %d", res[0])
	}
	// No bounds-check events under guard pages.
	if inst.Counter().Get(archEvBoundsCheck()) != 0 {
		t.Error("guard-page strategy counted bounds checks")
	}
	// Cage features on wasm32 must be rejected.
	if _, err := NewInstance(m, memSafetyCfg()); err == nil {
		t.Error("MemSafety accepted on 32-bit memory")
	}
}

func TestStartupTaggingAccounted(t *testing.T) {
	m := i64m(wasm.I64Const(0), wasm.End())
	m.Mems[0].Limits.Min = 4 // 256 KiB
	inst, err := NewInstance(m, sandboxCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(4*wasm.PageSize) / 16
	if inst.StartupGranulesTagged != want {
		t.Errorf("startup granules = %d, want %d", inst.StartupGranulesTagged, want)
	}
}
