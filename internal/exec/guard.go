package exec

import (
	"runtime/debug"
)

// This file is the fault-recovery half of the guard-region memory
// backend (internal/vmem): the dispatch loop's guard load/store
// handlers index the full mmap reservation with no Go-level bounds
// check, so an out-of-bounds guest access arrives here as a hardware
// fault. runProtected converts exactly those faults — and nothing
// else — into the TrapOutOfBounds the explicit bounds check raises.

// guardProbeSink receives guard store probes' last-byte reads; being a
// package-level variable, writes to it are observable and the probe
// load cannot be optimized away.
var guardProbeSink byte

// runProtected wraps one dispatch-loop run in the guard fault handler.
// On the heap backend it is a tail call with zero overhead; with a
// guard mapping it arms runtime.SetPanicOnFault so an MMU fault inside
// the reservation surfaces as a recoverable runtime.Error carrying the
// faulting address instead of killing the process.
//
// The recover path is strict: only a fault panic whose address the
// mapping owns becomes a trap. Any other panic — a genuine executor
// bug, a fault in unrelated memory — is re-raised unchanged, so guard
// recovery can never mask a real crash. Frame-machine state left
// behind by the aborted run is scrubbed by invoke's re-entry barrier,
// the same unwind path every other trap takes.
func (inst *Instance) runProtected(barrier int) (err error) {
	if inst.gmap == nil {
		return inst.run(barrier)
	}
	old := debug.SetPanicOnFault(true)
	defer func() {
		debug.SetPanicOnFault(old)
		if r := recover(); r != nil {
			f, ok := r.(interface {
				error
				Addr() uintptr
			})
			if !ok || !inst.gmap.Owns(f.Addr()) {
				panic(r)
			}
			err = newTrap(TrapOutOfBounds, "address 0x%x (guard region)",
				inst.gmap.GuestAddr(f.Addr()))
		}
	}()
	return inst.run(barrier)
}
