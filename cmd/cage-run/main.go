// Command cage-run executes a wasm binary under the Cage runtime.
//
// Usage:
//
//	cage-run [-config full|baseline32|baseline64|memsafety|ptrauth|sandbox]
//	         [-invoke name] [-args "1 2 3"] module.wasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cage"
)

func configByName(name string) (cage.Config, error) {
	switch name {
	case "full":
		return cage.FullHardening(), nil
	case "baseline32":
		return cage.Baseline32(), nil
	case "baseline64":
		return cage.Baseline64(), nil
	case "memsafety":
		return cage.MemorySafetyOnly(), nil
	case "ptrauth":
		return cage.PointerAuthOnly(), nil
	case "sandbox":
		return cage.SandboxingOnly(), nil
	}
	return cage.Config{}, fmt.Errorf("unknown config %q", name)
}

func main() {
	cfgName := flag.String("config", "full", "runtime configuration")
	invoke := flag.String("invoke", "main", "exported function to call")
	argStr := flag.String("args", "", "space-separated integer arguments")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cage-run [flags] module.wasm")
		os.Exit(2)
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	mod, err := cage.DecodeModule(bin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	rt := cage.NewRuntime(cfg)
	rt.SetStdio(os.Stdout, os.Stderr)
	inst, err := rt.Instantiate(mod)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	var args []uint64
	for _, f := range strings.Fields(*argStr) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-run: bad argument %q: %v\n", f, err)
			os.Exit(2)
		}
		args = append(args, uint64(v))
	}
	res, err := inst.Invoke(*invoke, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	for _, v := range res {
		fmt.Printf("%d (0x%x)\n", int64(v), v)
	}
}
