package polybench

import (
	"testing"

	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
)

func TestKernelRegistryComplete(t *testing.T) {
	want := []string{
		"gemm", "2mm", "3mm", "atax", "bicg", "gemver", "gesummv", "mvt",
		"syrk", "syr2k", "trisolv", "trmm", "cholesky", "durbin",
		"jacobi-1d", "jacobi-2d", "seidel-2d",
		"doitgen", "symm", "lu", "covariance", "correlation",
		"floyd-warshall", "fdtd-2d", "gramschmidt",
	}
	if len(Kernels()) != len(want) {
		t.Fatalf("registry has %d kernels, want %d", len(Kernels()), len(want))
	}
	for _, name := range want {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing kernel %s", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelsMatchReferenceBaseline(t *testing.T) {
	// Every kernel must reproduce its reference checksum when compiled
	// without any hardening (the wasm64 baseline).
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if err := Validate(k, codegen.Options{Wasm64: true}, core.Features{}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestKernelsMatchReferenceUnderFullCage(t *testing.T) {
	// Hardening must never change results: full Cage (stack sanitizer,
	// pointer auth, MTE sandboxing, hardened allocator) produces
	// bit-identical checksums.
	opts := codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if err := Validate(k, opts, core.CageAll()); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestKernelsMatchReferenceWasm32(t *testing.T) {
	// The wasm32 baseline (guard-page sandboxing) must agree too.
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if err := Validate(k, codegen.Options{Wasm64: false}, core.Features{}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestFig15VariantsAgree(t *testing.T) {
	// The three call variants of the modified 2mm compute the same
	// checksum; only their cost differs.
	for _, mode := range []CallMode{CallStatic, CallDynamic, CallAuthenticated} {
		k := TwoMMVariant(mode)
		opts := codegen.Options{Wasm64: true}
		feats := core.Features{}
		if mode == CallAuthenticated {
			opts.PtrAuth = true
			feats.PtrAuth = true
		}
		if err := Validate(k, opts, feats); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestFig15CallCostsOrdered(t *testing.T) {
	// Event accounting: dynamic dispatch must add indirect-call events,
	// and authentication must add pac events on top.
	run := func(mode CallMode) *arch.Counter {
		k := TwoMMVariant(mode)
		opts := codegen.Options{Wasm64: true}
		feats := core.Features{}
		if mode == CallAuthenticated {
			opts.PtrAuth = true
			feats.PtrAuth = true
		}
		var ctr arch.Counter
		if _, err := Run(k, k.TestN, opts, feats, &ctr); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return &ctr
	}
	static := run(CallStatic)
	dynamic := run(CallDynamic)
	authed := run(CallAuthenticated)

	if static.Get(arch.EvCallIndirect) != 0 {
		t.Error("static variant made indirect calls")
	}
	if dynamic.Get(arch.EvCallIndirect) == 0 {
		t.Error("dynamic variant made no indirect calls")
	}
	if authed.Get(arch.EvPACAuth) == 0 {
		t.Error("authenticated variant performed no authentications")
	}
	if dynamic.Get(arch.EvPACAuth) != 0 {
		t.Error("unauthenticated variant performed authentications")
	}
	// Priced on any core, static < dynamic <= authenticated.
	x3 := arch.NewCortexX3()
	if !(static.Cycles(x3) < dynamic.Cycles(x3)) {
		t.Error("dynamic dispatch not more expensive than static")
	}
	if !(dynamic.Cycles(x3) < authed.Cycles(x3)) {
		t.Error("authentication added no cost")
	}
}

func TestEventMixLooksLikeCompiledCode(t *testing.T) {
	// Sanity-check the Fig. 14 cost inputs: a matmul kernel should be
	// dominated by loads, float math, and loop overhead.
	var ctr arch.Counter
	k, _ := ByName("gemm")
	if _, err := Run(k, k.TestN, codegen.Options{Wasm64: true}, core.Features{}, &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.Get(arch.EvFMul) == 0 || ctr.Get(arch.EvLoad) == 0 || ctr.Get(arch.EvBranch) == 0 {
		t.Error("gemm event mix is missing expected classes")
	}
	// wasm64 baseline: every load/store carries a software bounds check.
	if ctr.Get(arch.EvBoundsCheck) != ctr.Get(arch.EvLoad)+ctr.Get(arch.EvStore) {
		t.Errorf("bounds checks %d != loads %d + stores %d",
			ctr.Get(arch.EvBoundsCheck), ctr.Get(arch.EvLoad), ctr.Get(arch.EvStore))
	}
}
