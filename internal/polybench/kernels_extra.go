package polybench

// Additional PolyBench/C kernels: doitgen, symm, lu, covariance,
// correlation, floyd-warshall, fdtd-2d, gramschmidt.

func init() {
	register(Kernel{
		Name: "doitgen", TestN: 8, BenchN: 14,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * n * 8);
    double* C4 = (double*)malloc(n * n * 8);
    double* s = (double*)malloc(n * 8);
    for (long r = 0; r < n; r++) {
        for (long q = 0; q < n; q++) {
            for (long p = 0; p < n; p++) {
                A[(r * n + q) * n + p] = initA(r * n + q, p, n);
            }
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { C4[i * n + j] = initB(i, j, n); }
    }
    for (long r = 0; r < n; r++) {
        for (long q = 0; q < n; q++) {
            for (long p = 0; p < n; p++) {
                double acc = 0.0;
                for (long k = 0; k < n; k++) {
                    acc += A[(r * n + q) * n + k] * C4[k * n + p];
                }
                s[p] = acc;
            }
            for (long p = 0; p < n; p++) { A[(r * n + q) * n + p] = s[p]; }
        }
    }
    double out = 0.0;
    for (long i = 0; i < n * n * n; i++) { out += A[i]; }
    free((char*)A); free((char*)C4); free((char*)s);
    return out;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n*n)
			C4 := make([]float64, n*n)
			s := make([]float64, n)
			for r := 0; r < n; r++ {
				for q := 0; q < n; q++ {
					for p := 0; p < n; p++ {
						A[(r*n+q)*n+p] = refInitA(r*n+q, p, n)
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					C4[i*n+j] = refInitB(i, j, n)
				}
			}
			for r := 0; r < n; r++ {
				for q := 0; q < n; q++ {
					for p := 0; p < n; p++ {
						acc := 0.0
						for k := 0; k < n; k++ {
							acc += A[(r*n+q)*n+k] * C4[k*n+p]
						}
						s[p] = acc
					}
					for p := 0; p < n; p++ {
						A[(r*n+q)*n+p] = s[p]
					}
				}
			}
			return sum(A)
		},
	})

	register(Kernel{
		Name: "symm", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double temp2 = 0.0;
            for (long k = 0; k < i; k++) {
                C[k * n + j] += alpha * B[i * n + j] * A[i * n + k];
                temp2 += B[k * n + j] * A[i * n + k];
            }
            C[i * n + j] = beta * C[i * n + j]
                + alpha * B[i * n + j] * A[i * n + i] + alpha * temp2;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += C[i]; }
    free((char*)A); free((char*)B); free((char*)C);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, C := matA(n), matB(n), matC(n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					temp2 := 0.0
					for k := 0; k < i; k++ {
						C[k*n+j] += alpha * B[i*n+j] * A[i*n+k]
						temp2 += B[k*n+j] * A[i*n+k]
					}
					C[i*n+j] = beta*C[i*n+j] + alpha*B[i*n+j]*A[i*n+i] + alpha*temp2
				}
			}
			return sum(C)
		},
	})

	register(Kernel{
		Name: "lu", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n) * 0.1;
            if (i == j) { A[i * n + j] = A[i * n + j] + (double)n; }
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < i; j++) {
            double w = A[i * n + j];
            for (long k = 0; k < j; k++) { w -= A[i * n + k] * A[k * n + j]; }
            A[i * n + j] = w / A[j * n + j];
        }
        for (long j = i; j < n; j++) {
            double w = A[i * n + j];
            for (long k = 0; k < i; k++) { w -= A[i * n + k] * A[k * n + j]; }
            A[i * n + j] = w;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += A[i]; }
    free((char*)A);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = refInitA(i, j, n) * 0.1
					if i == j {
						A[i*n+j] += float64(n)
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					w := A[i*n+j]
					for k := 0; k < j; k++ {
						w -= A[i*n+k] * A[k*n+j]
					}
					A[i*n+j] = w / A[j*n+j]
				}
				for j := i; j < n; j++ {
					w := A[i*n+j]
					for k := 0; k < i; k++ {
						w -= A[i*n+k] * A[k*n+j]
					}
					A[i*n+j] = w
				}
			}
			return sum(A)
		},
	})

	register(Kernel{
		Name: "covariance", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* data = (double*)malloc(n * n * 8);
    double* mean = (double*)malloc(n * 8);
    double* cov = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { data[i * n + j] = initA(i, j, n); }
    }
    for (long j = 0; j < n; j++) {
        double m = 0.0;
        for (long i = 0; i < n; i++) { m += data[i * n + j]; }
        mean[j] = m / (double)n;
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { data[i * n + j] -= mean[j]; }
    }
    for (long i = 0; i < n; i++) {
        for (long j = i; j < n; j++) {
            double c = 0.0;
            for (long k = 0; k < n; k++) { c += data[k * n + i] * data[k * n + j]; }
            c = c / ((double)n - 1.0);
            cov[i * n + j] = c;
            cov[j * n + i] = c;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += cov[i]; }
    free((char*)data); free((char*)mean); free((char*)cov);
    return acc;
}`,
		Reference: func(n int) float64 {
			data := matA(n)
			mean := make([]float64, n)
			cov := make([]float64, n*n)
			for j := 0; j < n; j++ {
				m := 0.0
				for i := 0; i < n; i++ {
					m += data[i*n+j]
				}
				mean[j] = m / float64(n)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					data[i*n+j] -= mean[j]
				}
			}
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					c := 0.0
					for k := 0; k < n; k++ {
						c += data[k*n+i] * data[k*n+j]
					}
					c = c / (float64(n) - 1.0)
					cov[i*n+j] = c
					cov[j*n+i] = c
				}
			}
			return sum(cov)
		},
	})

	register(Kernel{
		Name: "correlation", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
extern double sqrt(double x);
double run(long n) {
    double* data = (double*)malloc(n * n * 8);
    double* mean = (double*)malloc(n * 8);
    double* stddev = (double*)malloc(n * 8);
    double* corr = (double*)malloc(n * n * 8);
    double eps = 0.1;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { data[i * n + j] = initA(i, j, n) + 0.5; }
    }
    for (long j = 0; j < n; j++) {
        double m = 0.0;
        for (long i = 0; i < n; i++) { m += data[i * n + j]; }
        mean[j] = m / (double)n;
    }
    for (long j = 0; j < n; j++) {
        double s = 0.0;
        for (long i = 0; i < n; i++) {
            double d = data[i * n + j] - mean[j];
            s += d * d;
        }
        s = sqrt(s / (double)n);
        if (s <= eps) { s = 1.0; }
        stddev[j] = s;
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            data[i * n + j] = (data[i * n + j] - mean[j]) / (sqrt((double)n) * stddev[j]);
        }
    }
    for (long i = 0; i < n; i++) {
        corr[i * n + i] = 1.0;
        for (long j = i + 1; j < n; j++) {
            double c = 0.0;
            for (long k = 0; k < n; k++) { c += data[k * n + i] * data[k * n + j]; }
            corr[i * n + j] = c;
            corr[j * n + i] = c;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += corr[i]; }
    free((char*)data); free((char*)mean); free((char*)stddev); free((char*)corr);
    return acc;
}`,
		Reference: func(n int) float64 {
			data := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					data[i*n+j] = refInitA(i, j, n) + 0.5
				}
			}
			mean := make([]float64, n)
			stddev := make([]float64, n)
			corr := make([]float64, n*n)
			eps := 0.1
			for j := 0; j < n; j++ {
				m := 0.0
				for i := 0; i < n; i++ {
					m += data[i*n+j]
				}
				mean[j] = m / float64(n)
			}
			for j := 0; j < n; j++ {
				s := 0.0
				for i := 0; i < n; i++ {
					d := data[i*n+j] - mean[j]
					s += d * d
				}
				s = refSqrt(s / float64(n))
				if s <= eps {
					s = 1.0
				}
				stddev[j] = s
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					data[i*n+j] = (data[i*n+j] - mean[j]) / (refSqrt(float64(n)) * stddev[j])
				}
			}
			for i := 0; i < n; i++ {
				corr[i*n+i] = 1.0
				for j := i + 1; j < n; j++ {
					c := 0.0
					for k := 0; k < n; k++ {
						c += data[k*n+i] * data[k*n+j]
					}
					corr[i*n+j] = c
					corr[j*n+i] = c
				}
			}
			return sum(corr)
		},
	})

	register(Kernel{
		Name: "floyd-warshall", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    long* path = (long*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            path[i * n + j] = (i * j) % 7 + 1;
            if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) {
                path[i * n + j] = 999;
            }
        }
    }
    for (long k = 0; k < n; k++) {
        for (long i = 0; i < n; i++) {
            for (long j = 0; j < n; j++) {
                long through = path[i * n + k] + path[k * n + j];
                if (through < path[i * n + j]) { path[i * n + j] = through; }
            }
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += (double)path[i]; }
    free((char*)path);
    return acc;
}`,
		Reference: func(n int) float64 {
			path := make([]int64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					path[i*n+j] = int64((i*j)%7 + 1)
					if (i+j)%13 == 0 || (i+j)%7 == 0 || (i+j)%11 == 0 {
						path[i*n+j] = 999
					}
				}
			}
			for k := 0; k < n; k++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if t := path[i*n+k] + path[k*n+j]; t < path[i*n+j] {
							path[i*n+j] = t
						}
					}
				}
			}
			acc := 0.0
			for _, v := range path {
				acc += float64(v)
			}
			return acc
		},
	})

	register(Kernel{
		Name: "fdtd-2d", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* ex = (double*)malloc(n * n * 8);
    double* ey = (double*)malloc(n * n * 8);
    double* hz = (double*)malloc(n * n * 8);
    long tmax = 6;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            ex[i * n + j] = ((double)i * ((double)j + 1.0)) / (double)n;
            ey[i * n + j] = ((double)i * ((double)j + 2.0)) / (double)n;
            hz[i * n + j] = ((double)i * ((double)j + 3.0)) / (double)n;
        }
    }
    for (long t = 0; t < tmax; t++) {
        for (long j = 0; j < n; j++) { ey[j] = (double)t; }
        for (long i = 1; i < n; i++) {
            for (long j = 0; j < n; j++) {
                ey[i * n + j] = ey[i * n + j] - 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
            }
        }
        for (long i = 0; i < n; i++) {
            for (long j = 1; j < n; j++) {
                ex[i * n + j] = ex[i * n + j] - 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
            }
        }
        for (long i = 0; i < n - 1; i++) {
            for (long j = 0; j < n - 1; j++) {
                hz[i * n + j] = hz[i * n + j] - 0.7 * (ex[i * n + j + 1] - ex[i * n + j]
                    + ey[(i + 1) * n + j] - ey[i * n + j]);
            }
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += ex[i] + ey[i] + hz[i]; }
    free((char*)ex); free((char*)ey); free((char*)hz);
    return acc;
}`,
		Reference: func(n int) float64 {
			ex := make([]float64, n*n)
			ey := make([]float64, n*n)
			hz := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					ex[i*n+j] = (float64(i) * (float64(j) + 1.0)) / float64(n)
					ey[i*n+j] = (float64(i) * (float64(j) + 2.0)) / float64(n)
					hz[i*n+j] = (float64(i) * (float64(j) + 3.0)) / float64(n)
				}
			}
			for t := 0; t < 6; t++ {
				for j := 0; j < n; j++ {
					ey[j] = float64(t)
				}
				for i := 1; i < n; i++ {
					for j := 0; j < n; j++ {
						ey[i*n+j] = ey[i*n+j] - 0.5*(hz[i*n+j]-hz[(i-1)*n+j])
					}
				}
				for i := 0; i < n; i++ {
					for j := 1; j < n; j++ {
						ex[i*n+j] = ex[i*n+j] - 0.5*(hz[i*n+j]-hz[i*n+j-1])
					}
				}
				for i := 0; i < n-1; i++ {
					for j := 0; j < n-1; j++ {
						hz[i*n+j] = hz[i*n+j] - 0.7*(ex[i*n+j+1]-ex[i*n+j]+ey[(i+1)*n+j]-ey[i*n+j])
					}
				}
			}
			acc := 0.0
			for i := 0; i < n*n; i++ {
				acc += ex[i] + ey[i] + hz[i]
			}
			return acc
		},
	})

	register(Kernel{
		Name: "gramschmidt", TestN: 10, BenchN: 20,
		Source: prelude + initHelpers + `
extern double sqrt(double x);
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* R = (double*)malloc(n * n * 8);
    double* Q = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n) + 0.1;
            if (i == j) { A[i * n + j] = A[i * n + j] + 1.0; }
            R[i * n + j] = 0.0;
            Q[i * n + j] = 0.0;
        }
    }
    for (long k = 0; k < n; k++) {
        double nrm = 0.0;
        for (long i = 0; i < n; i++) { nrm += A[i * n + k] * A[i * n + k]; }
        R[k * n + k] = sqrt(nrm);
        for (long i = 0; i < n; i++) { Q[i * n + k] = A[i * n + k] / R[k * n + k]; }
        for (long j = k + 1; j < n; j++) {
            double r = 0.0;
            for (long i = 0; i < n; i++) { r += Q[i * n + k] * A[i * n + j]; }
            R[k * n + j] = r;
            for (long i = 0; i < n; i++) {
                A[i * n + j] = A[i * n + j] - Q[i * n + k] * R[k * n + j];
            }
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n * n; i++) { acc += R[i] + Q[i]; }
    free((char*)A); free((char*)R); free((char*)Q);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n)
			R := make([]float64, n*n)
			Q := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = refInitA(i, j, n) + 0.1
					if i == j {
						A[i*n+j] += 1.0
					}
				}
			}
			for k := 0; k < n; k++ {
				nrm := 0.0
				for i := 0; i < n; i++ {
					nrm += A[i*n+k] * A[i*n+k]
				}
				R[k*n+k] = refSqrt(nrm)
				for i := 0; i < n; i++ {
					Q[i*n+k] = A[i*n+k] / R[k*n+k]
				}
				for j := k + 1; j < n; j++ {
					r := 0.0
					for i := 0; i < n; i++ {
						r += Q[i*n+k] * A[i*n+j]
					}
					R[k*n+j] = r
					for i := 0; i < n; i++ {
						A[i*n+j] = A[i*n+j] - Q[i*n+k]*R[k*n+j]
					}
				}
			}
			acc := 0.0
			for i := 0; i < n*n; i++ {
				acc += R[i] + Q[i]
			}
			return acc
		},
	})
}
