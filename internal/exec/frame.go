package exec

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cage/internal/arch"
	"cage/internal/ir"
	"cage/internal/pac"
	"cage/internal/wasm"
)

// This file is the frame machine: the single dispatch loop that executes
// every live guest activation out of one contiguous per-instance value
// arena. A guest→guest call pushes a frame record and opens the callee's
// frame at the caller's operand-stack top — the arguments already sit in
// the callee's parameter slots, so nothing is copied and nothing is
// allocated. A return slides the results down onto the caller's stack.
// Go recursion and Go allocation only happen at the sandbox boundary:
// the embedder's entry into invoke, and a host function re-entering the
// guest through HostContext.Call.

// frameRec is one live guest activation: the function, the pc to resume
// at once its callee returns, and where its frame begins in the arena.
type frameRec struct {
	fn   *ir.Func
	pc   int // resume pc (the instruction after the call) while a callee runs
	base int // arena index of frame slot 0 (first parameter)
}

// defaultMaxStackWords bounds the value arena when Config.MaxStackWords
// is zero: 1<<22 slots = 32 MiB, far above any legitimate frame tower
// under the default 1024-frame depth bound, but exact — a guest that
// reaches it traps with TrapStackOverflow instead of eating host memory.
const defaultMaxStackWords = 1 << 22

// growArena extends the value arena to at least need slots. Absolute
// indices stay valid across growth (the arena is only ever indexed, never
// held by pointer), and a pooled instance retains the grown arena across
// Reset, so steady-state execution never re-grows.
func (inst *Instance) growArena(need int) {
	newCap := 2 * len(inst.vals)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]uint64, newCap)
	copy(grown, inst.vals)
	inst.vals = grown
}

// pushGuestFrame opens a callee activation whose parameters already sit
// at newBase (the caller's operand-stack top minus the argument count).
// It enforces the exact frame-count and arena-word bounds, grows the
// arena if needed, zeroes the callee's declared locals — the arena is
// reused, so a fresh frame must not see a dead frame's values — and
// pushes the frame record.
func (inst *Instance) pushGuestFrame(callee *ir.Func, newBase int) error {
	if inst.depth >= inst.maxCallDepth {
		return newTrap(TrapStackOverflow, "frame %d exceeds depth limit %d",
			inst.depth+1, inst.maxCallDepth)
	}
	need := newBase + callee.FrameSize
	if uint64(need) > inst.maxStackWords {
		return newTrap(TrapStackOverflow, "value stack %d words exceeds limit %d",
			need, inst.maxStackWords)
	}
	if need > len(inst.vals) {
		inst.growArena(need)
	}
	lb := newBase + callee.NumParams
	clear(inst.vals[lb : lb+callee.NumLocals])
	inst.depth++
	inst.frames = append(inst.frames, frameRec{fn: callee, base: newBase})
	return nil
}

// invoke runs function fidx with args, returning result values. It is
// the boundary entry into the frame machine — the embedder's Invoke /
// InvokeWith, the start function, and a host function re-entering the
// guest all come through here. Each entry is a re-entry barrier: its
// frames stack above every frame already live (arenaTop marks the first
// free arena slot, maintained by the dispatch loop across host
// crossings), and however the run unwinds — normal return, trap, or a
// panic out of a host function — the barrier state is restored, so an
// outer in-flight activation can always continue.
func (inst *Instance) invoke(fidx uint32, args []uint64) ([]uint64, error) {
	return inst.invokeInto(fidx, args, nil)
}

// invokeInto is invoke with an optional caller-provided result buffer
// (see CallOptions.Results): when resBuf has the capacity, the result
// values are written into it and no slice is allocated.
func (inst *Instance) invokeInto(fidx uint32, args []uint64, resBuf []uint64) ([]uint64, error) {
	// Interrupt checkpoint: every call boundary polls the per-call meter
	// (if armed), so cancellation reaches even loop-free recursion.
	if m := inst.meter; m != nil {
		if err := m.check(inst.counter); err != nil {
			return nil, err
		}
	}
	if int(fidx) < len(inst.imports) {
		if inst.depth >= inst.maxCallDepth {
			return nil, newTrap(TrapStackOverflow, "frame %d exceeds depth limit %d",
				inst.depth+1, inst.maxCallDepth)
		}
		inst.depth++
		defer func() { inst.depth-- }()
		return inst.callHost(int(fidx), args)
	}
	di := int(fidx) - len(inst.imports)
	if di >= len(inst.prog.Funcs) {
		return nil, newTrap(TrapIndirectCall, "function index %d out of range", fidx)
	}
	fn := &inst.prog.Funcs[di]
	if len(args) != fn.NumParams {
		return nil, newTrap(TrapIndirectCall, "function %d expects %d args, got %d",
			fidx, fn.NumParams, len(args))
	}
	if inst.features.SpectreHarden {
		// Sandbox transition (host→guest entry): the hardened config
		// flushes the branch-target buffer so predictor state trained on
		// one side of the boundary cannot steer indirect branches on the
		// other.
		inst.counter.Add(arch.EvBTBFlush, 1)
	}

	// Re-entry barrier: everything below this entry's frame belongs to
	// an outer activation and is restored verbatim on exit.
	base := inst.arenaTop
	barrier := len(inst.frames)
	entryDepth := inst.depth
	defer func() {
		inst.frames = inst.frames[:barrier]
		inst.arenaTop = base
		inst.depth = entryDepth
	}()

	// The one argument copy of the call tree: boundary args into the
	// entry frame. Guest→guest calls inside run never copy again.
	if err := inst.pushGuestFrame(fn, base); err != nil {
		return nil, err
	}
	copy(inst.vals[base:], args)

	if err := inst.runProtected(barrier); err != nil {
		return nil, err
	}
	var res []uint64
	if cap(resBuf) >= fn.NumResults {
		res = resBuf[:fn.NumResults]
	} else {
		res = make([]uint64, fn.NumResults)
	}
	copy(res, inst.vals[base:base+fn.NumResults])
	return res, nil
}

// callHost crosses the sandbox boundary into an imported host
// function. The host runs under a HostContext carrying the in-flight
// call's context; on return, errors are classified:
//
//   - a *Trap propagates unchanged (so a re-entrant guest call's trap,
//     or WASI's proc_exit, keeps its code);
//   - a context error — a blocking host function that observed
//     cancellation via HostContext.Context — becomes TrapInterrupted,
//     exactly like a cancellation caught at a guest checkpoint;
//   - anything else is a TrapHost.
//
// Even a successful host return re-polls the meter chain, so a
// deadline that fired while the guest was parked inside the host traps
// here instead of running guest code until the next branch.
//
// args may be a view into the value arena (the dispatch loop passes the
// caller's operand-stack top directly); it is valid for the duration of
// the host call only, which is exactly the HostContext lifetime host
// functions are already bound to.
func (inst *Instance) callHost(idx int, args []uint64) ([]uint64, error) {
	hf := inst.imports[idx]
	hc := HostContext{inst: inst, ctx: inst.callCtx}
	res, err := hf.Fn(&hc, args)
	if err != nil {
		var t *Trap
		if errors.As(err, &t) {
			return nil, t
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, &Trap{Code: TrapInterrupted, Msg: "during host call", Cause: err}
		}
		return nil, &Trap{Code: TrapHost, Msg: err.Error()}
	}
	if m := inst.meter; m != nil {
		if err := m.checkSync(inst.counter); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// branchRepair applies a branch's precomputed stack repair: carry the
// top arity values, truncate to the recorded height, in place.
func branchRepair(stack []uint64, keep, arity int) []uint64 {
	if arity > 0 {
		copy(stack[keep:keep+arity], stack[len(stack)-arity:])
	}
	return stack[:keep+arity]
}

// run drives the frame machine until the activation that entered at
// barrier returns: one flat dispatch loop over the pre-resolved
// instruction stream of whichever frame is on top. There is no control
// stack and no end/else matching — branches carry absolute target PCs
// and their stack repair — and each opcode reports its cost event(s) to
// the arch timing model, so one execution can still be priced on all
// three cores afterwards.
//
// The hot loop sees the top frame through two slice views into the
// value arena — locals (params + declared locals) and stack (the
// operand stack, capped at the frame's end) — so the per-opcode code is
// exactly the flat-dispatch fast path, with no absolute arithmetic.
// Frame arithmetic happens only at the call, return, and host-crossing
// blocks at the bottom, which re-derive the views from inst.vals; that
// re-derivation is also what keeps the views valid when a push or a
// re-entrant HostContext.Call grows the arena.
func (inst *Instance) run(barrier int) error {
	ctr := inst.counter
	// mtr is the per-call interruption meter, nil for unbounded calls:
	// every taken branch below (the superset of loop back-edges) and
	// every call is an interrupt checkpoint, and the unmetered variant
	// of that checkpoint is a single never-taken nil test.
	mtr := inst.meter
	// rec is the hot-sequence recorder, nil unless the embedder armed
	// profiling (Config.Profile): the unarmed cost is one never-taken
	// nil test per retired instruction.
	rec := inst.prof

	entry := &inst.frames[len(inst.frames)-1]
	code := entry.fn.Code
	sb := entry.base + entry.fn.StackBase()
	locals := inst.vals[entry.base:sb:sb]
	stack := inst.vals[sb : sb : entry.base+entry.fn.FrameSize]
	pc := 0
	// callIdx/callN feed the shared call block at the bottom of the loop
	// (OpCall and OpCallIndirect converge there after resolving the
	// callee); declared outside the loop so the per-iteration fast path
	// never touches them.
	callIdx, callN := 0, 0
	// aluOp feeds the shared fused-ALU block at the bottom of the loop
	// (the ALU-carrying fused superinstructions converge there); like
	// callIdx/callN it lives outside the loop so the fast path never
	// touches it. aluOp2 holds the pending second ALU of the two-ALU
	// superinstructions; the fused-ALU block always consumes it, so it
	// is zero whenever the main switch dispatches.
	var aluOp, aluOp2 wasm.Opcode

	for {
		in := &code[pc]
		if rec != nil {
			rec.Note(&code[0], pc, in.Op)
		}
		switch in.Op {
		case ir.OpUnreachable:
			return newTrap(TrapUnreachable, "at pc %d", pc)

		case ir.OpGoto:
			pc = int(in.B)
			continue

		case ir.OpBr:
			ctr.Add(arch.EvBranch, 1)
			stack = branchRepair(stack, ir.BranchKeep(in.A), ir.BranchArity(in.A))
			pc = int(in.B)
			if mtr != nil {
				if err := mtr.check(ctr); err != nil {
					return err
				}
			}
			continue

		case ir.OpBrIf:
			ctr.Add(arch.EvBranch, 1)
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) != 0 {
				stack = branchRepair(stack, ir.BranchKeep(in.A), ir.BranchArity(in.A))
				pc = int(in.B)
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}

		case ir.OpBrIfZ:
			ctr.Add(arch.EvBranch, 1)
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) == 0 {
				pc = int(in.B)
				// Taken BrIfZ is a branch like any other and therefore an
				// interrupt checkpoint; skipping it would let a loop whose
				// only taken edges are if-conditionals outrun WithTimeout
				// and WithFuel.
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}

		case ir.OpBrTable:
			ctr.Add(arch.EvBrTable, 1)
			i := uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			ts := in.Targets
			t := ts[len(ts)-1] // default
			if uint64(i) < uint64(len(ts)-1) {
				t = ts[i]
			}
			stack = branchRepair(stack, int(t.Keep), int(t.Arity))
			pc = int(t.PC)
			if mtr != nil {
				if err := mtr.check(ctr); err != nil {
					return err
				}
			}
			continue

		case ir.OpReturn:
			ctr.Add(arch.EvReturn, 1)
			goto ret
		case ir.OpRetEnd:
			goto ret

		case ir.OpFence:
			// Speculation barrier of the hardened lowering: no semantic
			// effect, priced as a pipeline drain by the timing model.
			ctr.Add(arch.EvFence, 1)

		case ir.OpCall:
			ctr.Add(arch.EvCall, 1)
			callIdx, callN = int(in.A), int(in.B)
			goto call

		case ir.OpCallIndirect:
			ctr.Add(arch.EvCallIndirect, 1)
			ti := uint32(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if uint64(ti) >= uint64(len(inst.table)) {
				return newTrap(TrapIndirectCall, "table index %d out of range", ti)
			}
			fidx := inst.table[ti]
			if fidx < 0 {
				return newTrap(TrapIndirectCall, "null table entry %d", ti)
			}
			want := inst.module.Types[in.A]
			got, err := inst.module.FuncTypeAt(uint32(fidx))
			if err != nil {
				return newTrap(TrapIndirectCall, "%v", err)
			}
			if !got.Equal(want) {
				return newTrap(TrapIndirectCall,
					"signature mismatch: table entry %d has %v, expected %v", ti, got, want)
			}
			callIdx, callN = int(fidx), int(in.B)
			goto call

		case ir.OpDrop:
			stack = stack[:len(stack)-1]

		case ir.OpSelect:
			ctr.Add(arch.EvSelect, 1)
			if uint32(stack[len(stack)-1]) == 0 {
				stack[len(stack)-3] = stack[len(stack)-2]
			}
			stack = stack[:len(stack)-2]

		case ir.OpLocalGet:
			ctr.Add(arch.EvLocal, 1)
			stack = append(stack, locals[in.A])
		case ir.OpLocalSet:
			ctr.Add(arch.EvLocal, 1)
			locals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case ir.OpLocalTee:
			ctr.Add(arch.EvLocal, 1)
			locals[in.A] = stack[len(stack)-1]

		case ir.OpGlobalGet:
			ctr.Add(arch.EvGlobal, 1)
			stack = append(stack, inst.globals[in.A])
		case ir.OpGlobalSet:
			ctr.Add(arch.EvGlobal, 1)
			inst.globals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]

		case ir.OpConst:
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, in.A)

		case ir.OpMemorySize:
			ctr.Add(arch.EvALU, 1)
			stack = append(stack, inst.memSize/wasm.PageSize)
		case ir.OpMemoryGrow:
			ctr.Add(arch.EvMemGrow, 1)
			stack[len(stack)-1] = inst.memoryGrow(stack[len(stack)-1])
		case ir.OpMemoryFill:
			n, err := inst.memoryFill(stack)
			if err != nil {
				return err
			}
			stack = stack[:n]
		case ir.OpMemoryCopy:
			n, err := inst.memoryCopy(stack)
			if err != nil {
				return err
			}
			stack = stack[:n]

		case ir.OpSegmentNew:
			length := stack[len(stack)-1]
			ptr := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			tagged, err := inst.segmentNew(ptr, length, in.A)
			if err != nil {
				return err
			}
			stack = append(stack, tagged)
		case ir.OpSegmentSetTag:
			length := stack[len(stack)-1]
			tagged := stack[len(stack)-2]
			ptr := stack[len(stack)-3]
			stack = stack[:len(stack)-3]
			if err := inst.segmentSetTag(ptr, tagged, length, in.A); err != nil {
				return err
			}
		case ir.OpSegmentFree:
			length := stack[len(stack)-1]
			tagged := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if err := inst.segmentFree(tagged, length, in.A); err != nil {
				return err
			}

		case ir.OpPtrSign:
			ctr.Add(arch.EvPACSign, 1)
			stack[len(stack)-1] = inst.keys.Sign(stack[len(stack)-1])
		case ir.OpPtrSignNop:
			// PAC disabled: the instruction is a no-op fallback, but the
			// timing model still prices the lowered pacda.
			ctr.Add(arch.EvPACSign, 1)
		case ir.OpPtrAuth:
			ctr.Add(arch.EvPACAuth, 1)
			v, err := inst.keys.Auth(stack[len(stack)-1])
			if err != nil {
				if errors.Is(err, pac.ErrAuthFailed) {
					return newTrap(TrapAuthFailure, "i64.pointer_auth at pc %d", pc)
				}
				return err
			}
			stack[len(stack)-1] = v
		case ir.OpPtrAuthNop:
			ctr.Add(arch.EvPACAuth, 1)

		// Loads, specialized per address-translation mode at lower time.
		case ir.OpLoadG32:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrG32(stack[len(stack)-1], in.A, sz, inst.memSize)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadG32NC:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrG32(stack[len(stack)-1], in.A, sz, uint64(len(inst.mem)))
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadB64:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-1], in.A, sz, false, true, false)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadB64NC:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-1], in.A, sz, false, false, false)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadB64Tag:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-1], in.A, sz, false, true, true)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadB64NCTag:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-1], in.A, sz, false, false, true)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadMTE:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrMTE(stack[len(stack)-1], in.A, sz, false, true)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadMTENC:
			ctr.Add(arch.EvLoad, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrMTE(stack[len(stack)-1], in.A, sz, false, false)
			if err != nil {
				return err
			}
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B), readScalar(inst.mem, addr, sz))
		case ir.OpLoadG32G:
			// Guard-region load: no Go-level bounds check at all. gmem is
			// the full 4 GiB+headroom reservation, so the index math can
			// never trip a slice bound; an uncommitted page faults in the
			// MMU and runProtected converts it to TrapOutOfBounds. Event
			// accounting matches OpLoadG32 exactly (guard32 charges no
			// per-access check events either way).
			ctr.Add(arch.EvLoad, 1)
			addr := uint64(uint32(stack[len(stack)-1])) + in.A
			stack[len(stack)-1] = extendLoad(ir.MemOp(in.B),
				readScalarFast(inst.gmem, addr, ir.MemSize(in.B)))

		// Stores, same specialization.
		case ir.OpStoreG32:
			ctr.Add(arch.EvStore, 1)
			inst.memDirty = true
			sz := ir.MemSize(in.B)
			addr, err := inst.addrG32(stack[len(stack)-2], in.A, sz, inst.memSize)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreG32NC:
			ctr.Add(arch.EvStore, 1)
			inst.memDirty = true
			sz := ir.MemSize(in.B)
			addr, err := inst.addrG32(stack[len(stack)-2], in.A, sz, uint64(len(inst.mem)))
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreB64:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-2], in.A, sz, true, true, false)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreB64NC:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-2], in.A, sz, true, false, false)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreB64Tag:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-2], in.A, sz, true, true, true)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreB64NCTag:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrB64(stack[len(stack)-2], in.A, sz, true, false, true)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreMTE:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrMTE(stack[len(stack)-2], in.A, sz, true, true)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreMTENC:
			ctr.Add(arch.EvStore, 1)
			sz := ir.MemSize(in.B)
			addr, err := inst.addrMTE(stack[len(stack)-2], in.A, sz, true, false)
			if err != nil {
				return err
			}
			writeScalar(inst.mem, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]
		case ir.OpStoreG32G:
			// Guard-region store; see OpLoadG32G. The probe read of the
			// access's last byte makes the store all-or-nothing: if any
			// byte falls past the committed prefix the probe faults before
			// the write starts, so a trapped store is never partially
			// visible.
			ctr.Add(arch.EvStore, 1)
			inst.memDirty = true
			sz := ir.MemSize(in.B)
			addr := uint64(uint32(stack[len(stack)-2])) + in.A
			gm := inst.gmem
			guardProbeSink = gm[addr+sz-1]
			writeScalarFast(gm, addr, sz, stack[len(stack)-1])
			stack = stack[:len(stack)-2]

		// Fused superinstructions (internal/fuse): each case executes its
		// constituents in order with the constituents' exact events and
		// trap points, so a fused program is observationally identical to
		// its unfused twin — results, traps, and event stream — and only
		// the dispatch count differs. Operand-stack peaks are also
		// identical (the constituents run one by one), so the frame's
		// precomputed MaxStack still bounds every append below. The
		// ALU-carrying cases converge on the fusedALU block at the bottom
		// of the loop, which runs the constituent without leaving the
		// dispatch frame.
		case ir.OpFusedGetGet:
			ctr.Add(arch.EvLocal, 2)
			stack = append(stack, locals[in.A], locals[in.B])
		case ir.OpFusedGet4:
			ctr.Add(arch.EvLocal, 4)
			stack = append(stack, locals[in.A>>48], locals[(in.A>>32)&0xFFFF],
				locals[(in.A>>16)&0xFFFF], locals[in.A&0xFFFF])
		case ir.OpFusedGetConst:
			ctr.Add(arch.EvLocal, 1)
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, locals[in.A], in.B)
		case ir.OpFusedConstALU:
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, in.A)
			aluOp = wasm.Opcode(in.B)
			goto fusedALU
		case ir.OpFusedGetALU:
			ctr.Add(arch.EvLocal, 1)
			stack = append(stack, locals[in.A])
			aluOp = wasm.Opcode(in.B)
			goto fusedALU
		case ir.OpFusedGetGetALU:
			ctr.Add(arch.EvLocal, 2)
			stack = append(stack, locals[in.A>>32], locals[uint32(in.A)])
			aluOp = wasm.Opcode(in.B)
			goto fusedALU
		case ir.OpFusedGetConstALU:
			ctr.Add(arch.EvLocal, 1)
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, locals[ir.FusedBranchAux(in.B)], in.A)
			aluOp = wasm.Opcode(uint32(in.B))
			goto fusedALU
		case ir.OpFusedALUSet:
			aluOp = wasm.Opcode(in.B)
			goto fusedALU
		case ir.OpFusedSetGet:
			// set then get, in order: when both name the same local the
			// get observes the just-set value, exactly like the unfused
			// pair.
			ctr.Add(arch.EvLocal, 2)
			locals[in.A] = stack[len(stack)-1]
			stack[len(stack)-1] = locals[in.B]
		case ir.OpFusedSetBr:
			ctr.Add(arch.EvLocal, 1)
			locals[ir.FusedBranchAux(in.B)] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ctr.Add(arch.EvBranch, 1)
			stack = branchRepair(stack, ir.BranchKeep(in.A), ir.BranchArity(in.A))
			pc = ir.FusedBranchTarget(in.B)
			if mtr != nil {
				if err := mtr.check(ctr); err != nil {
					return err
				}
			}
			continue
		case ir.OpFusedCmpBrIf, ir.OpFusedCmpBrIfZ, ir.OpFusedCmpEqzBrIf:
			aluOp = wasm.Opcode(ir.FusedBranchAux(in.B))
			goto fusedALU
		case ir.OpFusedLoadALU:
			// Load constituent first: EvLoad, then the guard-region direct
			// access (no Go-level bounds check; see OpLoadG32G) or the
			// per-variant translated path out of line.
			ctr.Add(arch.EvLoad, 1)
			if ir.FusedMemVariant(in.B) == ir.OpLoadG32G {
				addr := uint64(uint32(stack[len(stack)-1])) + in.A
				stack[len(stack)-1] = extendLoad(ir.FusedMemOp(in.B),
					readScalarFast(inst.gmem, addr, ir.FusedMemSize(in.B)))
			} else {
				v, err := inst.fusedMemLoad(in, in.A, stack[len(stack)-1])
				if err != nil {
					return err
				}
				stack[len(stack)-1] = v
			}
			aluOp = ir.FusedMemALU(in.B)
			goto fusedALU
		case ir.OpFusedALULoad, ir.OpFusedALUStore:
			aluOp = ir.FusedMemALU(in.B)
			goto fusedALU
		case ir.OpFusedConstALUALU:
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, in.A)
			aluOp = wasm.Opcode(in.B & 0xFF)
			aluOp2 = wasm.Opcode((in.B >> 8) & 0xFF)
			goto fusedALU
		case ir.OpFusedGetALUGetALU:
			ctr.Add(arch.EvLocal, 1)
			stack = append(stack, locals[in.A>>32])
			aluOp = wasm.Opcode(in.B & 0xFF)
			aluOp2 = wasm.Opcode((in.B >> 8) & 0xFF)
			goto fusedALU
		case ir.OpFusedGetGetCmpEqzBr:
			ctr.Add(arch.EvLocal, 2)
			stack = append(stack, locals[in.A>>32], locals[uint32(in.A)])
			aluOp = wasm.Opcode(ir.FusedBranchAux(in.B))
			goto fusedALU
		case ir.OpFusedIncBr:
			ctr.Add(arch.EvLocal, 1)
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, locals[ir.FusedBranchAux(in.B)], in.A>>8)
			aluOp = wasm.Opcode(in.A & 0xFF)
			goto fusedALU
		case ir.OpFusedGet3ALUGetALU:
			ctr.Add(arch.EvLocal, 3)
			stack = append(stack, locals[in.A>>48], locals[(in.A>>32)&0xFFFF],
				locals[(in.A>>16)&0xFFFF])
			aluOp = wasm.Opcode(in.B & 0xFF)
			aluOp2 = wasm.Opcode((in.B >> 8) & 0xFF)
			goto fusedALU
		case ir.OpFusedConstALUALULoadALU:
			ctr.Add(arch.EvConst, 1)
			stack = append(stack, in.A>>32)
			aluOp = wasm.Opcode((in.B >> 32) & 0xFF)
			aluOp2 = wasm.Opcode((in.B >> 40) & 0xFF)
			goto fusedALU
		case ir.OpFusedALUSetIncBr:
			aluOp = wasm.Opcode(in.A >> 48)
			aluOp2 = wasm.Opcode(in.A & 0xFF)
			goto fusedALU

		default:
			// Fast path for the hottest pure-value opcodes, inlined so a
			// tight arithmetic loop never leaves the dispatch frame; the
			// event accounting is identical to the numeric ALU's, which
			// the differential suite holds both executors to. Everything
			// else (divisions, truncations, the float library calls)
			// falls through to the shared numeric ALU.
			op := wasm.Opcode(in.Op - ir.OpNumericBase)
			l := len(stack)
			switch op {
			case wasm.OpI64Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] += stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI64Sub:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] -= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI64And:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] &= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI64Or:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] |= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI64Xor:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] ^= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI64Shl:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] <<= stack[l-1] & 63
				stack = stack[:l-1]
			case wasm.OpI64ShrS:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(int64(stack[l-2]) >> (stack[l-1] & 63))
				stack = stack[:l-1]
			case wasm.OpI64ShrU:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] >>= stack[l-1] & 63
				stack = stack[:l-1]
			case wasm.OpI64Mul:
				ctr.Add(arch.EvMul, 1)
				stack[l-2] *= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI32Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) + uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Sub:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) - uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32And:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) & uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Or:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) | uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Xor:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) ^ uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Mul:
				ctr.Add(arch.EvMul, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) * uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64LtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int64(stack[l-2]) < int64(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64LtU:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(stack[l-2] < stack[l-1])
				stack = stack[:l-1]
			case wasm.OpI64GtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int64(stack[l-2]) > int64(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64GeS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int64(stack[l-2]) >= int64(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64LeS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int64(stack[l-2]) <= int64(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64Eq:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(stack[l-2] == stack[l-1])
				stack = stack[:l-1]
			case wasm.OpI64Ne:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(stack[l-2] != stack[l-1])
				stack = stack[:l-1]
			case wasm.OpI64Eqz:
				ctr.Add(arch.EvCmp, 1)
				stack[l-1] = b2u(stack[l-1] == 0)
			case wasm.OpI32LtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int32(stack[l-2]) < int32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32LtU:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(uint32(stack[l-2]) < uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32GtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int32(stack[l-2]) > int32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32GeS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int32(stack[l-2]) >= int32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32LeS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int32(stack[l-2]) <= int32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Eq:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(uint32(stack[l-2]) == uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Ne:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(uint32(stack[l-2]) != uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Eqz:
				ctr.Add(arch.EvCmp, 1)
				stack[l-1] = b2u(uint32(stack[l-1]) == 0)
			case wasm.OpI32WrapI64:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = uint64(uint32(stack[l-1]))
			case wasm.OpI64ExtendI32S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = uint64(int64(int32(stack[l-1])))
			case wasm.OpI64ExtendI32U:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = uint64(uint32(stack[l-1]))
			case wasm.OpF64ConvertI64S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = math.Float64bits(float64(int64(stack[l-1])))
			case wasm.OpF64ConvertI32S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = math.Float64bits(float64(int32(stack[l-1])))
			case wasm.OpF64Add:
				ctr.Add(arch.EvFAdd, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) + math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpF64Sub:
				ctr.Add(arch.EvFAdd, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) - math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpF64Mul:
				ctr.Add(arch.EvFMul, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) * math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			default:
				n, err := inst.numeric(op, stack, l)
				if err != nil {
					return err
				}
				stack = stack[:n]
			}
		}
		pc++
		continue

	fusedALU:
		// Shared ALU-constituent executor for the fused superinstructions:
		// one inline copy of the hottest constituents (the profile
		// corpus's top ALU ops), with the out-of-line executor as the
		// fallback for the rest. Event charges are copied from the
		// dispatch fast path above, so fused streams stay event-identical
		// to unfused ones. The ALU-first superinstructions then run their
		// second constituent in the switch below; ALU-last ones retire
		// directly.
		{
			l := len(stack)
			switch aluOp {
			case wasm.OpI32Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) + uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] += stack[l-1]
				stack = stack[:l-1]
			case wasm.OpI32Mul:
				ctr.Add(arch.EvMul, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) * uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64Mul:
				ctr.Add(arch.EvMul, 1)
				stack[l-2] *= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpF64Add:
				ctr.Add(arch.EvFAdd, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) + math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpF64Mul:
				ctr.Add(arch.EvFMul, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) * math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32LtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int32(stack[l-2]) < int32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64LtS:
				ctr.Add(arch.EvCmp, 1)
				stack[l-2] = b2u(int64(stack[l-2]) < int64(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Eqz:
				ctr.Add(arch.EvCmp, 1)
				stack[l-1] = b2u(uint32(stack[l-1]) == 0)
			case wasm.OpI64ExtendI32S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = uint64(int64(int32(stack[l-1])))
			case wasm.OpI32Sub:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) - uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64Sub:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] -= stack[l-1]
				stack = stack[:l-1]
			case wasm.OpF64Sub:
				ctr.Add(arch.EvFAdd, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) - math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpF64ConvertI32S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = math.Float64bits(float64(int32(stack[l-1])))
			case wasm.OpF64ConvertI64S:
				ctr.Add(arch.EvConv, 1)
				stack[l-1] = math.Float64bits(float64(int64(stack[l-1])))
			default:
				var err error
				if stack, err = inst.fusedALUSlow(aluOp, stack); err != nil {
					return err
				}
			}
		}
		if aluOp2 != 0 {
			// First ALU of a two-ALU superinstruction just ran; stage the
			// interleaved constituent (the second local.get, when the op
			// has one), promote the pending ALU, and loop back. aluOp2 is
			// zero on the second pass, so the op then retires through the
			// switch below.
			switch in.Op {
			case ir.OpFusedGetALUGetALU:
				ctr.Add(arch.EvLocal, 1)
				stack = append(stack, locals[uint32(in.A)])
			case ir.OpFusedGet3ALUGetALU:
				ctr.Add(arch.EvLocal, 1)
				stack = append(stack, locals[in.A&0xFFFF])
			case ir.OpFusedALUSetIncBr:
				// set x; get y; const c — retire the reduction, then set
				// up the induction-variable bump for the second ALU.
				ctr.Add(arch.EvLocal, 2)
				ctr.Add(arch.EvConst, 1)
				locals[(in.A>>32)&0xFFFF] = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				stack = append(stack, locals[(in.A>>16)&0xFFFF], (in.A>>8)&0xFF)
			}
			aluOp, aluOp2 = aluOp2, 0
			goto fusedALU
		}
		switch in.Op {
		case ir.OpFusedALUSet:
			ctr.Add(arch.EvLocal, 1)
			locals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case ir.OpFusedALULoad:
			ctr.Add(arch.EvLoad, 1)
			if ir.FusedMemVariant(in.B) == ir.OpLoadG32G {
				addr := uint64(uint32(stack[len(stack)-1])) + in.A
				stack[len(stack)-1] = extendLoad(ir.FusedMemOp(in.B),
					readScalarFast(inst.gmem, addr, ir.FusedMemSize(in.B)))
			} else {
				v, err := inst.fusedMemLoad(in, in.A, stack[len(stack)-1])
				if err != nil {
					return err
				}
				stack[len(stack)-1] = v
			}
		case ir.OpFusedConstALUALULoadALU:
			// The load constituent (offset lives in A's low half; the
			// high half is the already-pushed constant), then the
			// trailing ALU — inlined for the multiply-accumulate ops the
			// pattern exists for, out of line for the rest.
			ctr.Add(arch.EvLoad, 1)
			if ir.FusedMemVariant(in.B) == ir.OpLoadG32G {
				addr := uint64(uint32(stack[len(stack)-1])) + uint64(uint32(in.A))
				stack[len(stack)-1] = extendLoad(ir.FusedMemOp(in.B),
					readScalarFast(inst.gmem, addr, ir.FusedMemSize(in.B)))
			} else {
				v, err := inst.fusedMemLoad(in, uint64(uint32(in.A)), stack[len(stack)-1])
				if err != nil {
					return err
				}
				stack[len(stack)-1] = v
			}
			l := len(stack)
			switch alu3 := ir.FusedMemALU(in.B); alu3 {
			case wasm.OpF64Add:
				ctr.Add(arch.EvFAdd, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) + math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpF64Mul:
				ctr.Add(arch.EvFMul, 1)
				stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) * math.Float64frombits(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI32Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] = uint64(uint32(stack[l-2]) + uint32(stack[l-1]))
				stack = stack[:l-1]
			case wasm.OpI64Add:
				ctr.Add(arch.EvALU, 1)
				stack[l-2] += stack[l-1]
				stack = stack[:l-1]
			default:
				var err error
				if stack, err = inst.fusedALUSlow(alu3, stack); err != nil {
					return err
				}
			}
		case ir.OpFusedALUStore:
			ctr.Add(arch.EvStore, 1)
			inst.memDirty = true
			if ir.FusedMemVariant(in.B) == ir.OpStoreG32G {
				// Guard-region store with the all-or-nothing probe; see
				// OpStoreG32G.
				sz := ir.FusedMemSize(in.B)
				addr := uint64(uint32(stack[len(stack)-2])) + in.A
				gm := inst.gmem
				guardProbeSink = gm[addr+sz-1]
				writeScalarFast(gm, addr, sz, stack[len(stack)-1])
			} else if err := inst.fusedMemStore(in, stack[len(stack)-2], stack[len(stack)-1]); err != nil {
				return err
			}
			stack = stack[:len(stack)-2]
		case ir.OpFusedCmpBrIf:
			ctr.Add(arch.EvBranch, 1)
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) != 0 {
				stack = branchRepair(stack, ir.BranchKeep(in.A), ir.BranchArity(in.A))
				pc = ir.FusedBranchTarget(in.B)
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}
		case ir.OpFusedCmpBrIfZ:
			ctr.Add(arch.EvBranch, 1)
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if uint32(c) == 0 {
				pc = ir.FusedBranchTarget(in.B)
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}
		case ir.OpFusedCmpEqzBrIf:
			ctr.Add(arch.EvCmp, 1) // the i32.eqz constituent
			eq := uint32(stack[len(stack)-1]) == 0
			stack = stack[:len(stack)-1]
			ctr.Add(arch.EvBranch, 1)
			if eq {
				stack = branchRepair(stack, ir.BranchKeep(in.A), ir.BranchArity(in.A))
				pc = ir.FusedBranchTarget(in.B)
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}
		case ir.OpFusedGetGetCmpEqzBr:
			ctr.Add(arch.EvCmp, 1) // the i32.eqz constituent
			eq := uint32(stack[len(stack)-1]) == 0
			stack = stack[:len(stack)-1]
			ctr.Add(arch.EvBranch, 1)
			if eq {
				// Zero repair pack (the fuse pass only matches it):
				// keep=0, arity=0 truncates the operand stack.
				stack = stack[:0]
				pc = ir.FusedBranchTarget(in.B)
				if mtr != nil {
					if err := mtr.check(ctr); err != nil {
						return err
					}
				}
				continue
			}
		case ir.OpFusedIncBr:
			ctr.Add(arch.EvLocal, 1)
			locals[ir.FusedBranchAux(in.B)] = stack[len(stack)-1]
			ctr.Add(arch.EvBranch, 1)
			stack = stack[:0] // zero repair pack; see OpFusedGetGetCmpEqzBr
			pc = ir.FusedBranchTarget(in.B)
			if mtr != nil {
				if err := mtr.check(ctr); err != nil {
					return err
				}
			}
			continue
		case ir.OpFusedALUSetIncBr:
			ctr.Add(arch.EvLocal, 1)
			locals[(in.A>>16)&0xFFFF] = stack[len(stack)-1]
			ctr.Add(arch.EvBranch, 1)
			stack = stack[:0] // zero repair pack; see OpFusedGetGetCmpEqzBr
			pc = ir.FusedBranchTarget(in.B)
			if mtr != nil {
				if err := mtr.check(ctr); err != nil {
					return err
				}
			}
			continue
		}
		pc++
		continue

	call:
		// Interrupt checkpoint at every call entry, host and guest alike,
		// so cancellation reaches even loop-free recursion.
		if mtr != nil {
			if err := mtr.check(ctr); err != nil {
				return err
			}
		}
		{
			top := &inst.frames[len(inst.frames)-1]
			sbTop := top.base + top.fn.StackBase()
			if callIdx < len(inst.imports) {
				// Host crossing. Publish the arena top so a re-entrant
				// HostContext.Call opens its barrier frame above this one,
				// and hand the host the argument slots in place — valid
				// for the duration of the call, like the HostContext
				// itself.
				if inst.depth >= inst.maxCallDepth {
					return newTrap(TrapStackOverflow, "frame %d exceeds depth limit %d",
						inst.depth+1, inst.maxCallDepth)
				}
				inst.depth++
				inst.arenaTop = sbTop + len(stack)
				args := stack[len(stack)-callN : len(stack) : len(stack)]
				res, err := inst.callHost(callIdx, args)
				inst.depth--
				if err != nil {
					return err
				}
				if inst.features.SpectreHarden {
					// Returning from the host re-enters the sandbox: same
					// BTB flush as the entry in invoke, so host-trained
					// predictor state never survives into guest code.
					ctr.Add(arch.EvBTBFlush, 1)
				}
				// A re-entrant call may have grown the arena; re-derive
				// the views from inst.vals before touching the stack.
				height := len(stack) - callN
				if len(res) > cap(stack)-height {
					return &Trap{Code: TrapHost, Msg: fmt.Sprintf(
						"host function %d returned %d values, caller frame has room for %d",
						callIdx, len(res), cap(stack)-height)}
				}
				locals = inst.vals[top.base:sbTop:sbTop]
				stack = inst.vals[sbTop : sbTop+height : top.base+top.fn.FrameSize]
				stack = append(stack, res...)
				pc++
				continue
			}
			di := callIdx - len(inst.imports)
			if di >= len(inst.prog.Funcs) {
				return newTrap(TrapIndirectCall, "function index %d out of range", callIdx)
			}
			callee := &inst.prog.Funcs[di]
			// The callee's parameter slots are the caller's top callN
			// operand-stack values, in place: no argument copy.
			newBase := sbTop + len(stack) - callN
			top.pc = pc + 1
			// Inline push fast path: bounds hold and the arena is already
			// big enough — the steady state for every call after the first
			// at a given depth. pushGuestFrame handles growth and traps.
			nsb := newBase + callee.StackBase()
			need := newBase + callee.FrameSize
			if inst.depth < inst.maxCallDepth &&
				need <= len(inst.vals) && uint64(need) <= inst.maxStackWords {
				lb := newBase + callee.NumParams
				clear(inst.vals[lb : lb+callee.NumLocals])
				inst.depth++
				inst.frames = append(inst.frames, frameRec{fn: callee, base: newBase})
			} else if err := inst.pushGuestFrame(callee, newBase); err != nil {
				return err
			}
			locals = inst.vals[newBase:nsb:nsb]
			stack = inst.vals[nsb:nsb:need]
			code = callee.Code
			pc = 0
			continue
		}

	ret:
		{
			// Slide the results down over the dead frame — they land
			// exactly on the caller's operand-stack top, where the call's
			// arguments used to be.
			arity := int(in.A)
			nf := len(inst.frames) - 1
			deadBase := inst.frames[nf].base
			if arity == 1 {
				// The overwhelmingly common single-result return skips the
				// memmove.
				inst.vals[deadBase] = stack[len(stack)-1]
			} else if arity > 0 {
				copy(inst.vals[deadBase:deadBase+arity], stack[len(stack)-arity:])
			}
			inst.depth--
			inst.frames = inst.frames[:nf]
			if nf == barrier {
				return nil
			}
			caller := &inst.frames[nf-1]
			csb := caller.base + caller.fn.StackBase()
			height := deadBase + arity - csb
			locals = inst.vals[caller.base:csb:csb]
			stack = inst.vals[csb : csb+height : caller.base+caller.fn.FrameSize]
			code = caller.fn.Code
			pc = caller.pc
			continue
		}
	}
}

// b2u is the wasm boolean encoding: 1 for true, 0 for false.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
