package wasm

import (
	"bytes"
	"fmt"
	"math"
)

// MaxFunctionLocals bounds the declared locals of one function. The
// spec leaves the limit to implementations; this matches the order of
// magnitude production engines allow and keeps a hostile code section
// from amplifying a few run-length bytes into gigabytes.
const MaxFunctionLocals = 1 << 16

// Decode parses a binary module image.
func Decode(buf []byte) (*Module, error) {
	if len(buf) < len(magicHeader) || !bytes.Equal(buf[:len(magicHeader)], magicHeader) {
		return nil, fmt.Errorf("wasm: bad magic/version header")
	}
	r := &reader{buf: buf, pos: len(magicHeader)}
	m := &Module{}
	var funcTypeIdxs []uint32

	for !r.eof() {
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.uleb32()
		if err != nil {
			return nil, err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return nil, err
		}
		sr := &reader{buf: body}
		switch id {
		case secType:
			if err := decodeTypes(sr, m); err != nil {
				return nil, err
			}
		case secImport:
			if err := decodeImports(sr, m); err != nil {
				return nil, err
			}
		case secFunction:
			n, err := sr.uleb32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				ti, err := sr.uleb32()
				if err != nil {
					return nil, err
				}
				funcTypeIdxs = append(funcTypeIdxs, ti)
			}
		case secTable:
			if err := decodeTables(sr, m); err != nil {
				return nil, err
			}
		case secMemory:
			if err := decodeMems(sr, m); err != nil {
				return nil, err
			}
		case secGlobal:
			if err := decodeGlobals(sr, m); err != nil {
				return nil, err
			}
		case secExport:
			if err := decodeExports(sr, m); err != nil {
				return nil, err
			}
		case secStart:
			v, err := sr.uleb32()
			if err != nil {
				return nil, err
			}
			m.Start = &v
		case secElem:
			if err := decodeElems(sr, m); err != nil {
				return nil, err
			}
		case secCode:
			if err := decodeCode(sr, m, funcTypeIdxs); err != nil {
				return nil, err
			}
		case secData:
			if err := decodeDatas(sr, m); err != nil {
				return nil, err
			}
		default:
			// Unknown/custom sections are skipped.
		}
	}
	return m, nil
}

func decodeTypes(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("wasm: type %d: unexpected form 0x%x", i, form)
		}
		var ft FuncType
		np, err := r.uleb32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			b, err := r.byte()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, ValType(b))
		}
		nr, err := r.uleb32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nr; j++ {
			b, err := r.byte()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, ValType(b))
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImports(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mod, err := r.name()
		if err != nil {
			return err
		}
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		if kind != 0x00 {
			return fmt.Errorf("wasm: import %s.%s: only function imports are supported", mod, name)
		}
		ti, err := r.uleb32()
		if err != nil {
			return err
		}
		m.Imports = append(m.Imports, Import{Module: mod, Name: name, TypeIdx: ti})
	}
	return nil
}

func decodeLimits(r *reader) (Limits, bool, error) {
	flags, err := r.byte()
	if err != nil {
		return Limits{}, false, err
	}
	var l Limits
	mem64 := flags&0x04 != 0
	l.HasMax = flags&0x01 != 0
	if l.Min, err = r.uleb(); err != nil {
		return Limits{}, false, err
	}
	if l.HasMax {
		if l.Max, err = r.uleb(); err != nil {
			return Limits{}, false, err
		}
	}
	return l, mem64, nil
}

func decodeTables(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		et, err := r.byte()
		if err != nil {
			return err
		}
		if et != 0x70 {
			return fmt.Errorf("wasm: table %d: unsupported element type 0x%x", i, et)
		}
		l, _, err := decodeLimits(r)
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, TableType{Limits: l})
	}
	return nil
}

func decodeMems(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		l, mem64, err := decodeLimits(r)
		if err != nil {
			return err
		}
		m.Mems = append(m.Mems, MemoryType{Limits: l, Memory64: mem64})
	}
	return nil
}

func decodeConstExpr(r *reader) (ValType, uint64, error) {
	op, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	var t ValType
	var bits uint64
	switch Opcode(op) {
	case OpI32Const:
		v, err := r.sleb()
		if err != nil {
			return 0, 0, err
		}
		t, bits = I32, uint64(uint32(int32(v)))
	case OpI64Const:
		v, err := r.sleb()
		if err != nil {
			return 0, 0, err
		}
		t, bits = I64, uint64(v)
	case OpF32Const:
		raw, err := r.bytes(4)
		if err != nil {
			return 0, 0, err
		}
		t, bits = F32, uint64(getU32(raw))
	case OpF64Const:
		raw, err := r.bytes(8)
		if err != nil {
			return 0, 0, err
		}
		t, bits = F64, getU64(raw)
	default:
		return 0, 0, fmt.Errorf("wasm: unsupported const expression opcode 0x%x", op)
	}
	end, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if Opcode(end) != OpEnd {
		return 0, 0, fmt.Errorf("wasm: const expression not terminated by end")
	}
	return t, bits, nil
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func decodeGlobals(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		vt, err := r.byte()
		if err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		t, bits, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		if t != ValType(vt) {
			return fmt.Errorf("wasm: global %d: init type %v does not match declared %v", i, t, ValType(vt))
		}
		m.Globals = append(m.Globals, Global{
			Type: GlobalType{Type: ValType(vt), Mutable: mut == 1},
			Init: bits,
		})
	}
	return nil
}

func decodeExports(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		idx, err := r.uleb32()
		if err != nil {
			return err
		}
		m.Exports = append(m.Exports, Export{Name: name, Kind: ExportKind(kind), Idx: idx})
	}
	return nil
}

func decodeElems(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := r.byte()
		if err != nil {
			return err
		}
		if flag != 0x00 {
			return fmt.Errorf("wasm: element segment %d: unsupported flags 0x%x", i, flag)
		}
		_, off, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		cnt, err := r.uleb32()
		if err != nil {
			return err
		}
		seg := ElemSegment{Offset: uint32(off)}
		for j := uint32(0); j < cnt; j++ {
			f, err := r.uleb32()
			if err != nil {
				return err
			}
			seg.Funcs = append(seg.Funcs, f)
		}
		m.Elems = append(m.Elems, seg)
	}
	return nil
}

func decodeDatas(r *reader, m *Module) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := r.byte()
		if err != nil {
			return err
		}
		if flag != 0x00 {
			return fmt.Errorf("wasm: data segment %d: unsupported flags 0x%x", i, flag)
		}
		_, off, err := decodeConstExpr(r)
		if err != nil {
			return err
		}
		sz, err := r.uleb32()
		if err != nil {
			return err
		}
		raw, err := r.bytes(int(sz))
		if err != nil {
			return err
		}
		m.Datas = append(m.Datas, DataSegment{Offset: off, Bytes: append([]byte{}, raw...)})
	}
	return nil
}

func decodeCode(r *reader, m *Module, typeIdxs []uint32) error {
	n, err := r.uleb32()
	if err != nil {
		return err
	}
	if int(n) != len(typeIdxs) {
		return fmt.Errorf("wasm: code section has %d bodies for %d declared functions", n, len(typeIdxs))
	}
	for i := uint32(0); i < n; i++ {
		size, err := r.uleb32()
		if err != nil {
			return err
		}
		body, err := r.bytes(int(size))
		if err != nil {
			return err
		}
		f := Function{TypeIdx: typeIdxs[i]}
		br := &reader{buf: body}
		nruns, err := br.uleb32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nruns; j++ {
			cnt, err := br.uleb32()
			if err != nil {
				return err
			}
			t, err := br.byte()
			if err != nil {
				return err
			}
			// A run-length count amplifies a few input bytes into an
			// arbitrarily large allocation; bound it like production
			// engines do.
			if uint64(len(f.Locals))+uint64(cnt) > MaxFunctionLocals {
				return fmt.Errorf("wasm: function %d declares more than %d locals", i, MaxFunctionLocals)
			}
			for k := uint32(0); k < cnt; k++ {
				f.Locals = append(f.Locals, ValType(t))
			}
		}
		for !br.eof() {
			in, err := decodeInstr(br)
			if err != nil {
				return fmt.Errorf("wasm: function %d: %w", i, err)
			}
			f.Body = append(f.Body, in)
		}
		m.Funcs = append(m.Funcs, f)
	}
	return nil
}

func decodeInstr(r *reader) (Instr, error) {
	b, err := r.byte()
	if err != nil {
		return Instr{}, err
	}
	op := Opcode(b)
	in := Instr{Op: op}
	switch op {
	case 0xFC:
		sub, err := r.uleb32()
		if err != nil {
			return Instr{}, err
		}
		switch sub {
		case 0x0A:
			in.Op = OpMemoryCopy
			if _, err := r.bytes(2); err != nil {
				return Instr{}, err
			}
		case 0x0B:
			in.Op = OpMemoryFill
			if _, err := r.bytes(1); err != nil {
				return Instr{}, err
			}
		default:
			return Instr{}, fmt.Errorf("unsupported 0xFC sub-opcode %d", sub)
		}
		return in, nil
	case 0xE0:
		sub, err := r.byte()
		if err != nil {
			return Instr{}, err
		}
		in.Op = Opcode(0xE000 | uint32(sub))
		if !in.Op.IsCage() {
			return Instr{}, fmt.Errorf("unknown Cage sub-opcode 0x%x", sub)
		}
		switch in.Op {
		case OpSegmentNew, OpSegmentSetTag, OpSegmentFree:
			if in.Offset, err = r.uleb(); err != nil {
				return Instr{}, err
			}
		}
		return in, nil
	case OpBlock, OpLoop, OpIf:
		bt, err := r.sleb()
		if err != nil {
			return Instr{}, err
		}
		in.Block = BlockType(bt)
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
		OpGlobalGet, OpGlobalSet:
		if in.X, err = r.uleb(); err != nil {
			return Instr{}, err
		}
	case OpBrTable:
		cnt, err := r.uleb32()
		if err != nil {
			return Instr{}, err
		}
		for j := uint32(0); j < cnt; j++ {
			t, err := r.uleb32()
			if err != nil {
				return Instr{}, err
			}
			in.Targets = append(in.Targets, t)
		}
		if in.X, err = r.uleb(); err != nil {
			return Instr{}, err
		}
	case OpCallIndirect:
		if in.X, err = r.uleb(); err != nil {
			return Instr{}, err
		}
		if _, err := r.byte(); err != nil { // table index
			return Instr{}, err
		}
	case OpMemorySize, OpMemoryGrow:
		if _, err := r.byte(); err != nil {
			return Instr{}, err
		}
	case OpI32Const:
		v, err := r.sleb()
		if err != nil {
			return Instr{}, err
		}
		in.X = uint64(uint32(int32(v)))
	case OpI64Const:
		v, err := r.sleb()
		if err != nil {
			return Instr{}, err
		}
		in.X = uint64(v)
	case OpF32Const:
		raw, err := r.bytes(4)
		if err != nil {
			return Instr{}, err
		}
		in.F = float64(math.Float32frombits(getU32(raw)))
	case OpF64Const:
		raw, err := r.bytes(8)
		if err != nil {
			return Instr{}, err
		}
		in.F = math.Float64frombits(getU64(raw))
	default:
		if op.isMemAccess() {
			if in.X, err = r.uleb(); err != nil {
				return Instr{}, err
			}
			if in.Offset, err = r.uleb(); err != nil {
				return Instr{}, err
			}
		} else if _, ok := opNames[op]; !ok {
			return Instr{}, fmt.Errorf("unknown opcode 0x%x", b)
		}
	}
	return in, nil
}
