package exec_test

// Differential tests: the lowered flat-dispatch pipeline must be
// observationally identical to the legacy re-scanning interpreter
// (legacy_test.go) — same results, same trap codes, and same
// timing-model event counts, so the paper's Fig. 14/15 numbers are
// unchanged by the execution-pipeline refactor.

import (
	"errors"
	"testing"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/mte"
	"cage/internal/polybench"
	"cage/internal/wasm"
)

// newKernelInstance instantiates a polybench module with the hardened
// allocator wired up, mirroring polybench.RunModule but keeping the
// instance handle.
func newKernelInstance(t testing.TB, m *wasm.Module, feats core.Features, ctr *arch.Counter) *exec.Instance {
	t.Helper()
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features: feats, HostModules: polybench.HostModules(), HostData: host,
		Seed: 1234, Counter: ctr,
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		t.Fatal("module lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		t.Fatalf("allocator: %v", err)
	}
	return inst
}

func TestLoweredMatchesLegacyOnPolybench(t *testing.T) {
	kernels := []string{"gemm", "2mm", "atax", "jacobi-1d", "durbin"}
	configs := []struct {
		name  string
		opts  codegen.Options
		feats core.Features
	}{
		{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
		{"memsafety", codegen.Options{Wasm64: true, StackSanitizer: true},
			core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
		{"sandbox", codegen.Options{Wasm64: true},
			core.Features{Sandbox: true, MTEMode: mte.ModeSync}},
		{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
			core.CageAll()},
	}
	for _, name := range kernels {
		k, err := polybench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range configs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				m, err := polybench.Build(k, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}

				var ctrLow arch.Counter
				low := newKernelInstance(t, m, cfg.feats, &ctrLow)
				lowRes, lowErr := low.Invoke("run", uint64(k.TestN))

				var ctrLeg arch.Counter
				leg := newKernelInstance(t, m, cfg.feats, &ctrLeg)
				lr, err := exec.NewLegacyRunner(leg)
				if err != nil {
					t.Fatal(err)
				}
				legRes, legErr := lr.Invoke("run", uint64(k.TestN))

				if (lowErr == nil) != (legErr == nil) {
					t.Fatalf("error mismatch: lowered=%v legacy=%v", lowErr, legErr)
				}
				if lowErr != nil {
					t.Fatalf("kernel failed under both executors: %v", lowErr)
				}
				if len(lowRes) != len(legRes) {
					t.Fatalf("result arity: lowered=%d legacy=%d", len(lowRes), len(legRes))
				}
				for i := range lowRes {
					if lowRes[i] != legRes[i] {
						t.Fatalf("result[%d]: lowered=%#x legacy=%#x", i, lowRes[i], legRes[i])
					}
				}
				// The checksum must also match the C reference.
				if got, want := exec.F64Val(lowRes[0]), k.Reference(k.TestN); got != want {
					// Allow the same tolerance polybench.Validate uses.
					diff := got - want
					if diff < 0 {
						diff = -diff
					}
					scale := want
					if scale < 0 {
						scale = -scale
					}
					if diff > 1e-9*scale {
						t.Fatalf("checksum %g, reference %g", got, want)
					}
				}
				// Event-count identity keeps the paper's timing figures
				// stable across the refactor.
				for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
					if ctrLow.Get(ev) != ctrLeg.Get(ev) {
						t.Errorf("event %v: lowered=%d legacy=%d", ev, ctrLow.Get(ev), ctrLeg.Get(ev))
					}
				}
			})
		}
	}
}

// callKernelSources are call-heavy and deep-recursion programs for the
// frame-machine differential suite: recursive fib (exponential call
// tree), mutual recursion (call chains alternating between functions),
// and deep linear recursion (hundreds of simultaneously live frames —
// the arena keeps growing while the legacy oracle recurses through the
// Go stack). Each must produce identical results, traps, and arch-event
// counts under both executors.
var callKernelSources = []struct {
	name string
	src  string
	arg  uint64
	want uint64
}{
	{"fib", `
long fib(long n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
long run(long n) { return fib(n); }`, 18, 2584},
	{"mutual", `
long is_odd(long n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
long is_even(long n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
long run(long n) { return is_even(n); }`, 601, 0},
	{"deep", `
long deep(long n) {
    if (n == 0) { return 0; }
    return deep(n - 1) + 1;
}
long run(long n) { return deep(n); }`, 900, 900},
}

// TestFrameMachineMatchesLegacyOnCallKernels is the call-path half of
// the differential suite: where the polybench kernels exercise loops
// and memory, these kernels exercise the frame machine's call/return
// discipline (in-place parameter frames, result slides, deep frame
// towers) against the legacy recursive interpreter, across the same
// four configurations.
func TestFrameMachineMatchesLegacyOnCallKernels(t *testing.T) {
	configs := []struct {
		name  string
		opts  codegen.Options
		feats core.Features
	}{
		{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
		{"memsafety", codegen.Options{Wasm64: true, StackSanitizer: true},
			core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
		{"sandbox", codegen.Options{Wasm64: true},
			core.Features{Sandbox: true, MTEMode: mte.ModeSync}},
		{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
			core.CageAll()},
	}
	for _, k := range callKernelSources {
		for _, cfg := range configs {
			t.Run(k.name+"/"+cfg.name, func(t *testing.T) {
				file, err := minicc.Parse(k.src)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := minicc.Analyze(file, minicc.Layout64)
				if err != nil {
					t.Fatal(err)
				}
				m, err := codegen.Compile(prog, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}

				var ctrLow arch.Counter
				low, err := exec.NewInstance(m, exec.Config{Features: cfg.feats, Seed: 99, Counter: &ctrLow})
				if err != nil {
					t.Fatal(err)
				}
				lowRes, lowErr := low.Invoke("run", k.arg)

				var ctrLeg arch.Counter
				leg, err := exec.NewInstance(m, exec.Config{Features: cfg.feats, Seed: 99, Counter: &ctrLeg})
				if err != nil {
					t.Fatal(err)
				}
				lr, err := exec.NewLegacyRunner(leg)
				if err != nil {
					t.Fatal(err)
				}
				legRes, legErr := lr.Invoke("run", k.arg)

				if (lowErr == nil) != (legErr == nil) {
					t.Fatalf("error mismatch: frame machine=%v legacy=%v", lowErr, legErr)
				}
				if lowErr != nil {
					t.Fatalf("kernel failed under both executors: %v", lowErr)
				}
				if lowRes[0] != k.want || legRes[0] != k.want {
					t.Fatalf("results: frame machine=%d legacy=%d, want %d", lowRes[0], legRes[0], k.want)
				}
				for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
					if ctrLow.Get(ev) != ctrLeg.Get(ev) {
						t.Errorf("event %v: frame machine=%d legacy=%d", ev, ctrLow.Get(ev), ctrLeg.Get(ev))
					}
				}
			})
		}
	}
}

// TestFrameMachineMatchesLegacyStackOverflow: both executors must trap
// runaway recursion with the same code at the same exact depth.
func TestFrameMachineMatchesLegacyStackOverflow(t *testing.T) {
	src := callKernelSources[2].src // deep
	file, err := minicc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true})
	if err != nil {
		t.Fatal(err)
	}
	const depth = 64
	low, err := exec.NewInstance(m, exec.Config{MaxCallDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	leg, err := exec.NewInstance(m, exec.Config{MaxCallDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := exec.NewLegacyRunner(leg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the deepest argument the frame machine accepts, then require
	// the legacy oracle to agree on both sides of the boundary.
	deepest := -1
	for n := 0; n < depth+2; n++ {
		if _, err := low.Invoke("run", uint64(n)); err != nil {
			if !exec.IsTrap(err, exec.TrapStackOverflow) {
				t.Fatalf("run(%d) = %v, want TrapStackOverflow", n, err)
			}
			deepest = n - 1
			break
		}
	}
	if deepest < 0 {
		t.Fatal("depth bound never tripped")
	}
	if _, err := lr.Invoke("run", uint64(deepest)); err != nil {
		t.Fatalf("legacy disagrees below the boundary: run(%d) = %v", deepest, err)
	}
	if _, err := lr.Invoke("run", uint64(deepest+1)); !exec.IsTrap(err, exec.TrapStackOverflow) {
		t.Fatalf("legacy disagrees above the boundary: run(%d) = %v", deepest+1, err)
	}
}

// trapModule builds a single-function module exporting f.
func trapModule(results []wasm.ValType, body []wasm.Instr, mem *wasm.MemoryType, tableSize uint64) *wasm.Module {
	m := &wasm.Module{
		Types:   []wasm.FuncType{{Results: results}},
		Funcs:   []wasm.Function{{TypeIdx: 0, Body: body}},
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}},
	}
	if mem != nil {
		m.Mems = []wasm.MemoryType{*mem}
	}
	if tableSize > 0 {
		m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: tableSize}}}
	}
	return m
}

// trapCase is one entry of the trap-parity matrix shared by the
// legacy-oracle and fused-tier differential suites.
type trapCase struct {
	name  string
	mod   *wasm.Module
	feats core.Features
	code  exec.TrapCode
}

// trapCases builds the trap matrix fresh on each call (instances
// mutate nothing, but modules must not be shared across fused/unfused
// lowering in one test).
func trapCases() []trapCase {
	mem64 := &wasm.MemoryType{Limits: wasm.Limits{Min: 1}, Memory64: true}
	mem32 := &wasm.MemoryType{Limits: wasm.Limits{Min: 1}}
	cases := []trapCase{
		{
			"unreachable",
			trapModule(nil, []wasm.Instr{wasm.Op(wasm.OpUnreachable), wasm.Op(wasm.OpEnd)}, nil, 0),
			core.Features{}, exec.TrapUnreachable,
		},
		{
			"div-by-zero",
			trapModule([]wasm.ValType{wasm.I64}, []wasm.Instr{
				wasm.I64Const(1), wasm.I64Const(0), wasm.Op(wasm.OpI64DivS), wasm.Op(wasm.OpEnd),
			}, nil, 0),
			core.Features{}, exec.TrapDivByZero,
		},
		{
			"oob-load-bounds64",
			trapModule([]wasm.ValType{wasm.I64}, []wasm.Instr{
				wasm.I64Const(1 << 20), wasm.Load(wasm.OpI64Load, 0), wasm.Op(wasm.OpEnd),
			}, mem64, 0),
			core.Features{}, exec.TrapOutOfBounds,
		},
		{
			"oob-store-guard32",
			trapModule(nil, []wasm.Instr{
				wasm.I32Const(70000), wasm.I32Const(7), wasm.Store(wasm.OpI32Store, 0), wasm.Op(wasm.OpEnd),
			}, mem32, 0),
			core.Features{}, exec.TrapOutOfBounds,
		},
		{
			"oob-load-mte-sandbox",
			trapModule([]wasm.ValType{wasm.I64}, []wasm.Instr{
				wasm.I64Const(1 << 20), wasm.Load(wasm.OpI64Load, 0), wasm.Op(wasm.OpEnd),
			}, mem64, 0),
			core.Features{Sandbox: true, MTEMode: mte.ModeSync}, exec.TrapTagMismatch,
		},
		{
			"call-depth",
			trapModule(nil, []wasm.Instr{wasm.Call(0), wasm.Op(wasm.OpEnd)}, nil, 0),
			core.Features{}, exec.TrapCallDepth,
		},
		{
			"null-indirect",
			trapModule(nil, []wasm.Instr{
				wasm.I32Const(0), wasm.CallIndirect(0), wasm.Op(wasm.OpEnd),
			}, nil, 1),
			core.Features{}, exec.TrapIndirectCall,
		},
		{
			"segment-double-free",
			trapModule(nil, []wasm.Instr{
				// new(ptr=64, len=16) -> tagged; free twice.
				wasm.I64Const(64), wasm.I64Const(16), wasm.SegmentNew(0),
				wasm.LocalTee(0),
				wasm.I64Const(16), wasm.SegmentFree(0),
				wasm.LocalGet(0), wasm.I64Const(16), wasm.SegmentFree(0),
				wasm.Op(wasm.OpEnd),
			}, mem64, 0),
			core.Features{MemSafety: true, MTEMode: mte.ModeSync}, exec.TrapSegment,
		},
	}
	for i := range cases {
		if cases[i].name == "segment-double-free" {
			cases[i].mod.Funcs[0].Locals = []wasm.ValType{wasm.I64}
		}
	}
	return cases
}

func TestLoweredMatchesLegacyTraps(t *testing.T) {
	for _, tc := range trapCases() {
		t.Run(tc.name, func(t *testing.T) {
			low, err := exec.NewInstance(tc.mod, exec.Config{Features: tc.feats, Seed: 7})
			if err != nil {
				t.Fatalf("instantiate lowered: %v", err)
			}
			_, lowErr := low.Invoke("f")

			leg, err := exec.NewInstance(tc.mod, exec.Config{Features: tc.feats, Seed: 7})
			if err != nil {
				t.Fatalf("instantiate legacy: %v", err)
			}
			lr, err := exec.NewLegacyRunner(leg)
			if err != nil {
				t.Fatal(err)
			}
			_, legErr := lr.Invoke("f")

			var lowTrap, legTrap *exec.Trap
			if !errors.As(lowErr, &lowTrap) {
				t.Fatalf("lowered did not trap: %v", lowErr)
			}
			if !errors.As(legErr, &legTrap) {
				t.Fatalf("legacy did not trap: %v", legErr)
			}
			if lowTrap.Code != tc.code {
				t.Errorf("lowered trap %v (%s), want %v", lowTrap.Code, lowTrap.Msg, tc.code)
			}
			if legTrap.Code != lowTrap.Code {
				t.Errorf("trap mismatch: lowered=%v legacy=%v", lowTrap.Code, legTrap.Code)
			}
		})
	}
}

// TestLoweredBrTableParity drives the same br_table through both
// executors across every selector value, default included.
func TestLoweredBrTableParity(t *testing.T) {
	// f(i) selects via br_table over three nested blocks and returns a
	// distinct constant per arm.
	m := &wasm.Module{
		Types: []wasm.FuncType{{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}}},
		Funcs: []wasm.Function{{TypeIdx: 0, Body: []wasm.Instr{
			wasm.Block(wasm.BlockVoid),
			wasm.Block(wasm.BlockVoid),
			wasm.Block(wasm.BlockVoid),
			wasm.LocalGet(0),
			wasm.BrTable([]uint32{0, 1}, 2),
			wasm.Op(wasm.OpEnd),
			wasm.I64Const(10), wasm.Op(wasm.OpReturn),
			wasm.Op(wasm.OpEnd),
			wasm.I64Const(20), wasm.Op(wasm.OpReturn),
			wasm.Op(wasm.OpEnd),
			wasm.I64Const(30),
			wasm.Op(wasm.OpEnd),
		}}},
		Exports: []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}},
	}
	for sel := uint64(0); sel < 5; sel++ {
		low, err := exec.NewInstance(m, exec.Config{})
		if err != nil {
			t.Fatal(err)
		}
		lowRes, err := low.Invoke("f", sel)
		if err != nil {
			t.Fatalf("sel %d lowered: %v", sel, err)
		}
		leg, err := exec.NewInstance(m, exec.Config{})
		if err != nil {
			t.Fatal(err)
		}
		lr, err := exec.NewLegacyRunner(leg)
		if err != nil {
			t.Fatal(err)
		}
		legRes, err := lr.Invoke("f", sel)
		if err != nil {
			t.Fatalf("sel %d legacy: %v", sel, err)
		}
		if lowRes[0] != legRes[0] {
			t.Fatalf("sel %d: lowered=%d legacy=%d", sel, lowRes[0], legRes[0])
		}
	}
}
