package exec

// The pre-lowering re-scanning interpreter: function bodies keep their
// wasm.Instr form, control flow is resolved into matchEnd/matchElse
// side tables re-consulted at every block, if, and branch, and calls
// recurse through Go with freshly allocated locals, args, and results
// per activation. It serves as the oracle for the frame machine — the
// differential tests require identical results, identical traps, and
// identical timing-model event counts — and as the legacy tier of the
// dispatch benchmarks (BenchmarkLoweredVsLegacy, BenchmarkCallOverhead,
// and internal/bench's dispatch record), which is why it lives in the
// package proper rather than a _test file. It shares the instance's
// state and the un-specialized effectiveAddr path, so any semantic
// drift between the two executors is a real bug, not a harness
// artifact.

import (
	"errors"
	"fmt"
	"math"

	"cage/internal/arch"
	"cage/internal/pac"
	"cage/internal/wasm"
)

// legacyFunc is a function body with control-flow targets resolved.
type legacyFunc struct {
	fn        *wasm.Function
	typ       wasm.FuncType
	matchEnd  []int32 // for block/loop/if/else: pc of the matching end
	matchElse []int32 // for if: pc of its else, or -1
}

func legacyCompile(m *wasm.Module, f *wasm.Function) (legacyFunc, error) {
	cf := legacyFunc{
		fn:        f,
		typ:       m.Types[f.TypeIdx],
		matchEnd:  make([]int32, len(f.Body)),
		matchElse: make([]int32, len(f.Body)),
	}
	for i := range cf.matchElse {
		cf.matchElse[i] = -1
	}
	var stack []int
	var elses []int
	for pc, in := range f.Body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, pc)
			elses = append(elses, -1)
		case wasm.OpElse:
			if len(stack) == 0 {
				return cf, newTrap(TrapUnreachable, "else without if at pc %d", pc)
			}
			cf.matchElse[stack[len(stack)-1]] = int32(pc)
			elses[len(elses)-1] = pc
		case wasm.OpEnd:
			if len(stack) == 0 {
				continue // function-level end
			}
			open := stack[len(stack)-1]
			cf.matchEnd[open] = int32(pc)
			if e := elses[len(elses)-1]; e >= 0 {
				cf.matchEnd[e] = int32(pc)
			}
			stack = stack[:len(stack)-1]
			elses = elses[:len(elses)-1]
		}
	}
	return cf, nil
}

// legacyCtrl is a runtime control-stack entry.
type legacyCtrl struct {
	op     wasm.Opcode
	height int
	arity  int
	endPC  int32
	loopPC int32
}

// LegacyRunner executes an instance's module with the pre-lowering
// interpreter against the instance's live state.
type LegacyRunner struct {
	inst  *Instance
	funcs []legacyFunc
}

// NewLegacyRunner resolves control flow for every function of inst's
// module, the pre-lowering analogue of the lowering pass.
func NewLegacyRunner(inst *Instance) (*LegacyRunner, error) {
	m := inst.module
	lr := &LegacyRunner{inst: inst, funcs: make([]legacyFunc, len(m.Funcs))}
	for i := range m.Funcs {
		cf, err := legacyCompile(m, &m.Funcs[i])
		if err != nil {
			return nil, err
		}
		lr.funcs[i] = cf
	}
	return lr, nil
}

// Invoke calls an exported function through the legacy interpreter.
func (lr *LegacyRunner) Invoke(name string, args ...uint64) ([]uint64, error) {
	fidx, ok := lr.inst.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("exec: no exported function %q", name)
	}
	res, err := lr.invoke(fidx, args)
	if err == nil {
		err = lr.inst.pollAsyncFault()
	}
	return res, err
}

func (lr *LegacyRunner) invoke(fidx uint32, args []uint64) ([]uint64, error) {
	inst := lr.inst
	if inst.depth >= inst.maxCallDepth {
		return nil, newTrap(TrapStackOverflow, "call depth %d", inst.depth)
	}
	inst.depth++
	defer func() { inst.depth-- }()

	if int(fidx) < len(inst.imports) {
		hf := inst.imports[fidx]
		res, err := hf.Fn(&HostContext{inst: inst, ctx: inst.callCtx}, args)
		if err != nil {
			var t *Trap
			if errors.As(err, &t) {
				return nil, t
			}
			return nil, &Trap{Code: TrapHost, Msg: err.Error()}
		}
		return res, nil
	}
	di := int(fidx) - len(inst.imports)
	if di >= len(lr.funcs) {
		return nil, newTrap(TrapIndirectCall, "function index %d out of range", fidx)
	}
	cf := &lr.funcs[di]
	if len(args) != len(cf.typ.Params) {
		return nil, newTrap(TrapIndirectCall, "function %d expects %d args, got %d",
			fidx, len(cf.typ.Params), len(args))
	}
	locals := make([]uint64, len(cf.typ.Params)+len(cf.fn.Locals))
	copy(locals, args)
	return lr.run(cf, locals)
}

func (lr *LegacyRunner) doLoad(in wasm.Instr, stack *[]uint64) error {
	inst := lr.inst
	inst.counter.Add(arch.EvLoad, 1)
	s := *stack
	idx := s[len(s)-1]
	size := in.Op.AccessSize()
	addr, err := inst.effectiveAddr(idx, in.Offset, size, false)
	if err != nil {
		return err
	}
	s[len(s)-1] = extendLoad(in.Op, readScalar(inst.mem, addr, size))
	return nil
}

func (lr *LegacyRunner) doStore(in wasm.Instr, stack *[]uint64) error {
	inst := lr.inst
	inst.counter.Add(arch.EvStore, 1)
	s := *stack
	val := s[len(s)-1]
	idx := s[len(s)-2]
	*stack = s[:len(s)-2]
	size := in.Op.AccessSize()
	addr, err := inst.effectiveAddr(idx, in.Offset, size, true)
	if err != nil {
		return err
	}
	writeScalar(inst.mem, addr, size, val)
	return nil
}

// run executes a compiled function body by re-scanning dispatch.
func (lr *LegacyRunner) run(cf *legacyFunc, locals []uint64) ([]uint64, error) {
	inst := lr.inst
	body := cf.fn.Body
	ctr := inst.counter
	var stack []uint64
	ctrls := []legacyCtrl{{op: wasm.OpEnd, arity: len(cf.typ.Results), endPC: int32(len(body) - 1)}}

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	branch := func(d int, pc int) int {
		idx := len(ctrls) - 1 - d
		fr := ctrls[idx]
		if fr.op == wasm.OpLoop {
			stack = stack[:fr.height]
			ctrls = ctrls[:idx+1]
			return int(fr.loopPC)
		}
		vals := stack[len(stack)-fr.arity:]
		tmp := make([]uint64, fr.arity)
		copy(tmp, vals)
		stack = append(stack[:fr.height], tmp...)
		ctrls = ctrls[:idx]
		return int(fr.endPC)
	}

	pc := 0
	for pc < len(body) {
		in := body[pc]
		op := in.Op
		switch op {
		case wasm.OpUnreachable:
			return nil, newTrap(TrapUnreachable, "at pc %d", pc)
		case wasm.OpNop:
		case wasm.OpBlock:
			arity := 0
			if _, ok := in.Block.Result(); ok {
				arity = 1
			}
			ctrls = append(ctrls, legacyCtrl{op: op, height: len(stack), arity: arity, endPC: cf.matchEnd[pc]})
		case wasm.OpLoop:
			ctrls = append(ctrls, legacyCtrl{op: op, height: len(stack), endPC: cf.matchEnd[pc], loopPC: int32(pc)})
		case wasm.OpIf:
			ctr.Add(arch.EvBranch, 1)
			arity := 0
			if _, ok := in.Block.Result(); ok {
				arity = 1
			}
			cond := pop()
			ctrls = append(ctrls, legacyCtrl{op: op, height: len(stack), arity: arity, endPC: cf.matchEnd[pc]})
			if uint32(cond) == 0 {
				if e := cf.matchElse[pc]; e >= 0 {
					pc = int(e)
				} else {
					pc = int(cf.matchEnd[pc]) - 1
				}
			}
		case wasm.OpElse:
			pc = int(cf.matchEnd[pc]) - 1
		case wasm.OpEnd:
			ctrls = ctrls[:len(ctrls)-1]
			if len(ctrls) == 0 {
				res := make([]uint64, len(cf.typ.Results))
				copy(res, stack[len(stack)-len(res):])
				return res, nil
			}
		case wasm.OpBr:
			ctr.Add(arch.EvBranch, 1)
			pc = branch(int(in.X), pc)
		case wasm.OpBrIf:
			ctr.Add(arch.EvBranch, 1)
			if uint32(pop()) != 0 {
				pc = branch(int(in.X), pc)
			}
		case wasm.OpBrTable:
			ctr.Add(arch.EvBrTable, 1)
			i := uint32(pop())
			d := uint32(in.X)
			if uint64(i) < uint64(len(in.Targets)) {
				d = in.Targets[i]
			}
			pc = branch(int(d), pc)
		case wasm.OpReturn:
			ctr.Add(arch.EvReturn, 1)
			res := make([]uint64, len(cf.typ.Results))
			copy(res, stack[len(stack)-len(res):])
			return res, nil
		case wasm.OpCall:
			ctr.Add(arch.EvCall, 1)
			ft, err := inst.module.FuncTypeAt(uint32(in.X))
			if err != nil {
				return nil, newTrap(TrapIndirectCall, "%v", err)
			}
			n := len(ft.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := lr.invoke(uint32(in.X), args)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpCallIndirect:
			ctr.Add(arch.EvCallIndirect, 1)
			ti := uint32(pop())
			if uint64(ti) >= uint64(len(inst.table)) {
				return nil, newTrap(TrapIndirectCall, "table index %d out of range", ti)
			}
			fidx := inst.table[ti]
			if fidx < 0 {
				return nil, newTrap(TrapIndirectCall, "null table entry %d", ti)
			}
			want := inst.module.Types[in.X]
			got, err := inst.module.FuncTypeAt(uint32(fidx))
			if err != nil {
				return nil, newTrap(TrapIndirectCall, "%v", err)
			}
			if !got.Equal(want) {
				return nil, newTrap(TrapIndirectCall,
					"signature mismatch: table entry %d has %v, expected %v", ti, got, want)
			}
			n := len(want.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := lr.invoke(uint32(fidx), args)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			ctr.Add(arch.EvSelect, 1)
			c := uint32(pop())
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}
		case wasm.OpLocalGet:
			ctr.Add(arch.EvLocal, 1)
			push(locals[in.X])
		case wasm.OpLocalSet:
			ctr.Add(arch.EvLocal, 1)
			locals[in.X] = pop()
		case wasm.OpLocalTee:
			ctr.Add(arch.EvLocal, 1)
			locals[in.X] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			ctr.Add(arch.EvGlobal, 1)
			push(inst.globals[in.X])
		case wasm.OpGlobalSet:
			ctr.Add(arch.EvGlobal, 1)
			inst.globals[in.X] = pop()
		case wasm.OpI32Const, wasm.OpI64Const:
			ctr.Add(arch.EvConst, 1)
			push(in.X)
		case wasm.OpF32Const:
			ctr.Add(arch.EvConst, 1)
			push(uint64(math.Float32bits(float32(in.F))))
		case wasm.OpF64Const:
			ctr.Add(arch.EvConst, 1)
			push(math.Float64bits(in.F))
		case wasm.OpMemorySize:
			ctr.Add(arch.EvALU, 1)
			push(inst.memSize / wasm.PageSize)
		case wasm.OpMemoryGrow:
			ctr.Add(arch.EvMemGrow, 1)
			push(inst.memoryGrow(pop()))
		case wasm.OpMemoryFill:
			n, err := inst.memoryFill(stack)
			if err != nil {
				return nil, err
			}
			stack = stack[:n]
		case wasm.OpMemoryCopy:
			n, err := inst.memoryCopy(stack)
			if err != nil {
				return nil, err
			}
			stack = stack[:n]
		case wasm.OpSegmentNew:
			length := pop()
			ptr := pop()
			tagged, err := inst.segmentNew(ptr, length, in.Offset)
			if err != nil {
				return nil, err
			}
			push(tagged)
		case wasm.OpSegmentSetTag:
			length := pop()
			tagged := pop()
			ptr := pop()
			if err := inst.segmentSetTag(ptr, tagged, length, in.Offset); err != nil {
				return nil, err
			}
		case wasm.OpSegmentFree:
			length := pop()
			tagged := pop()
			if err := inst.segmentFree(tagged, length, in.Offset); err != nil {
				return nil, err
			}
		case wasm.OpPointerSign:
			ctr.Add(arch.EvPACSign, 1)
			if inst.features.PtrAuth {
				push(inst.keys.Sign(pop()))
			}
		case wasm.OpPointerAuth:
			ctr.Add(arch.EvPACAuth, 1)
			if inst.features.PtrAuth {
				v, err := inst.keys.Auth(pop())
				if err != nil {
					if errors.Is(err, pac.ErrAuthFailed) {
						return nil, newTrap(TrapAuthFailure, "i64.pointer_auth at pc %d", pc)
					}
					return nil, err
				}
				push(v)
			}
		default:
			if op.IsLoad() {
				if err := lr.doLoad(in, &stack); err != nil {
					return nil, err
				}
			} else if op.IsStore() {
				if err := lr.doStore(in, &stack); err != nil {
					return nil, err
				}
			} else {
				n, err := inst.numeric(op, stack, len(stack))
				if err != nil {
					return nil, err
				}
				stack = stack[:n]
			}
		}
		pc++
	}
	return nil, newTrap(TrapUnreachable, "fell off function body")
}
