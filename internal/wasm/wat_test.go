package wasm

import (
	"strings"
	"testing"
)

func TestWatRendering(t *testing.T) {
	m := testModule()
	out := Wat(m)
	for _, want := range []string{
		"(module",
		`(import "env" "log"`,
		"(memory i64 1 4)",
		"(table 2 funcref)",
		"(global (;0;) (mut i64) (i64.const 1024))",
		"local.get 0",
		"i64.add",
		"segment.new offset=16",
		"i64.pointer_sign",
		"i64.pointer_auth",
		`(export "add" (func 1))`,
		`(export "memory" (memory 0))`,
		"(elem (i32.const 0) func 1 2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WAT output missing %q\n%s", want, out)
		}
	}
}

func TestWatBlockIndentation(t *testing.T) {
	m := &Module{}
	ti := m.AddType(FuncType{Results: []ValType{I64}})
	m.Funcs = []Function{{TypeIdx: ti, Body: []Instr{
		Block(BlockVoid),
		Loop(BlockVoid),
		Br(0),
		End(),
		End(),
		I64Const(1),
		End(),
	}}}
	out := Wat(m)
	// The loop body is nested two levels deep.
	if !strings.Contains(out, "        br 0") {
		t.Errorf("nested br not indented:\n%s", out)
	}
	// The function-closing end does not appear as an instruction: only
	// the block end and the loop end remain.
	if strings.Count(out, "end\n") != 2 {
		t.Errorf("expected exactly two block ends:\n%s", out)
	}
}
