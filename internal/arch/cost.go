package arch

// Lowered-code cost model regenerating paper Fig. 14 and Fig. 15.
//
// The wasm engine reports one event per lowered operation it executes
// (an ALU op, a load with or without a bounds check, a tag-store granule,
// a PAC authentication, ...). A Counter accumulates event counts; the
// per-core WasmCosts table converts counts into estimated cycles of the
// natively-lowered code. Out-of-order cores amortize bounds-check
// compare+branch pairs almost entirely through speculation, while the
// in-order A510 pays for them serially — the table encodes exactly that
// asymmetry, which produces the paper's 6–8 % vs 52 % wasm64 overheads.

// Event enumerates the cost-relevant operations the engine reports.
type Event int

const (
	// EvConst covers constant materialization.
	EvConst Event = iota
	// EvLocal covers local.get/local.set/local.tee (mostly registers).
	EvLocal
	// EvGlobal covers global.get/global.set.
	EvGlobal
	// EvALU covers integer add/sub/bitwise/shift/rot.
	EvALU
	// EvCmp covers integer and float comparisons.
	EvCmp
	// EvMul covers integer multiply.
	EvMul
	// EvDivInt covers integer divide/remainder.
	EvDivInt
	// EvConv covers conversions/extensions/truncations/reinterprets.
	EvConv
	// EvFAdd covers float add/sub/neg/abs/min/max/copysign.
	EvFAdd
	// EvFMul covers float multiply.
	EvFMul
	// EvFDiv covers float divide and sqrt.
	EvFDiv
	// EvSelect covers select.
	EvSelect
	// EvBranch covers br/br_if/if/loop back-edges (predicted branches).
	EvBranch
	// EvBrTable covers br_table dispatch.
	EvBrTable
	// EvCall covers direct calls (prologue+epilogue amortized).
	EvCall
	// EvCallIndirect covers the full dynamic-dispatch penalty of a
	// call_indirect: table bounds + null + signature checks, the
	// unpredictable branch, argument spills, and the optimization the
	// compiler loses by not being able to inline the callee. It is
	// calibrated against the paper's Fig. 15 static-vs-dynamic deltas.
	EvCallIndirect
	// EvReturn covers returns.
	EvReturn
	// EvLoad covers memory loads (access itself, check accounted apart).
	EvLoad
	// EvStore covers memory stores.
	EvStore
	// EvBoundsCheck covers an explicit software bounds check (wasm64).
	EvBoundsCheck
	// EvMask covers the index-masking AND of MTE sandboxing (Fig. 13).
	EvMask
	// EvTagCheckLoad covers the hardware tag check riding on a load.
	EvTagCheckLoad
	// EvTagCheckStore covers the hardware tag check riding on a store.
	EvTagCheckStore
	// EvIRG covers random-tag generation.
	EvIRG
	// EvADDG covers tag arithmetic.
	EvADDG
	// EvSTGGranule covers one tagged granule written by stg-style ops.
	EvSTGGranule
	// EvPACSign covers i64.pointer_sign lowered to pacda.
	EvPACSign
	// EvPACAuth covers i64.pointer_auth lowered to autda.
	EvPACAuth
	// EvMemGrow covers memory.grow.
	EvMemGrow
	// EvHost covers work performed inside host functions, reported
	// explicitly via HostContext.ConsumeFuel: one event approximates one
	// cycle of host-side work, so metered calls can account for time the
	// guest spends on the other side of the sandbox boundary.
	EvHost
	// EvFence covers the Swivel-style speculation barrier the hardened
	// lowering inserts before every indirect branch and return: a
	// full-pipeline serialization (isb/sb-class) that closes the
	// speculative window a poisoned predictor would otherwise exploit.
	// Out-of-order cores pay for the drained window; the in-order A510
	// barely speculates, so its barrier is nearly free — the inverse of
	// the bounds-check asymmetry above.
	EvFence
	// EvBTBFlush covers the branch-target-buffer invalidation charged at
	// each sandbox transition (host→guest entry) under the hardened
	// config, so a tenant cannot leave poisoned predictor state for the
	// code on the other side of the boundary.
	EvBTBFlush
	// NumEvents is the table size.
	NumEvents
)

var eventNames = [...]string{
	EvConst: "const", EvLocal: "local", EvGlobal: "global", EvALU: "alu",
	EvCmp: "cmp", EvMul: "mul", EvDivInt: "divint", EvConv: "conv",
	EvFAdd: "fadd", EvFMul: "fmul", EvFDiv: "fdiv", EvSelect: "select",
	EvBranch: "branch", EvBrTable: "brtable", EvCall: "call",
	EvCallIndirect: "call_indirect", EvReturn: "return", EvLoad: "load",
	EvStore: "store", EvBoundsCheck: "boundscheck", EvMask: "mask",
	EvTagCheckLoad: "tagcheck_ld", EvTagCheckStore: "tagcheck_st",
	EvIRG: "irg", EvADDG: "addg", EvSTGGranule: "stg_granule",
	EvPACSign: "pac_sign", EvPACAuth: "pac_auth", EvMemGrow: "memgrow",
	EvHost: "host", EvFence: "fence", EvBTBFlush: "btb_flush",
}

// String returns the event's short name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "event(?)"
}

// WasmCosts maps each event to estimated cycles on one core.
type WasmCosts [NumEvents]float64

// Counter accumulates event counts during execution. It is independent
// of any core; costs are applied afterwards, so one run can be priced on
// all three cores.
type Counter struct {
	counts [NumEvents]uint64
}

// Add records n occurrences of ev. It is the single hottest call in the
// dispatch loop (one per lowered operation), so it does exactly one
// read-modify-write; Total sums on demand instead of maintaining a
// running total here.
func (c *Counter) Add(ev Event, n uint64) { c.counts[ev] += n }

// Get returns the count for ev.
func (c *Counter) Get(ev Event) uint64 { return c.counts[ev] }

// Total returns the total event count. It walks the (small, fixed)
// event table; callers on hot paths — the fuel metering of the exec
// layer compares totals at interrupt checkpoints — only run at branch
// and call boundaries, where the walk is noise.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// Reset zeroes all counts.
func (c *Counter) Reset() { *c = Counter{} }

// Merge adds other's counts into c.
func (c *Counter) Merge(other *Counter) {
	for i, n := range other.counts {
		c.counts[i] += n
	}
}

// Snapshot returns a copy of the counter.
func (c *Counter) Snapshot() Counter { return *c }

// DeltaSince returns the events accumulated after prev was snapshotted,
// used to time a kernel region exclusive of setup (the PolyBench-timer
// methodology of §7.1).
func (c *Counter) DeltaSince(prev Counter) Counter {
	var d Counter
	for i := range c.counts {
		d.counts[i] = c.counts[i] - prev.counts[i]
	}
	return d
}

// EventCounts returns the non-zero event counts keyed by event name,
// the stable serialization used by machine-readable bench output.
func (c *Counter) EventCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for ev, n := range c.counts {
		if n != 0 {
			out[Event(ev).String()] = n
		}
	}
	return out
}

// Cycles prices the accumulated events on core.
func (c *Counter) Cycles(core *Core) float64 {
	var cycles float64
	for ev, n := range c.counts {
		if n != 0 {
			cycles += float64(n) * core.Wasm[ev]
		}
	}
	return cycles
}

// Millis prices the accumulated events on core in milliseconds.
func (c *Counter) Millis(core *Core) float64 {
	return core.Millis(c.Cycles(core))
}

// Cost tables. The big OoO core sustains ~6 µops/cycle with speculation;
// the A715 is slightly narrower; the dual-issue in-order A510 exposes
// branch and load latencies. Bounds checks (compare+branch) are nearly
// free under speculation but cost the in-order core a serialization
// penalty; index masking is a single fused AND; MTE tag checks run in
// parallel with the access and only tax the core marginally.
var (
	wasmCostsX3 = WasmCosts{
		EvConst: 0.05, EvLocal: 0.05, EvGlobal: 0.16, EvALU: 0.18,
		EvCmp: 0.16, EvMul: 0.33, EvDivInt: 7.0, EvConv: 0.28,
		EvFAdd: 0.25, EvFMul: 0.25, EvFDiv: 7.0, EvSelect: 0.30,
		EvBranch: 0.25, EvBrTable: 2.0, EvCall: 3.0, EvCallIndirect: 48.0,
		EvReturn: 1.0, EvLoad: 0.34, EvStore: 0.34,
		EvBoundsCheck: 0.14, EvMask: 0.016,
		EvTagCheckLoad: 0.012, EvTagCheckStore: 0.012,
		EvIRG: 0.90, EvADDG: 0.50, EvSTGGranule: 1.20,
		EvPACSign: 1.2, EvPACAuth: 1.5, EvMemGrow: 300, EvHost: 1.0,
		EvFence: 22.0, EvBTBFlush: 260,
	}
	wasmCostsA715 = WasmCosts{
		EvConst: 0.06, EvLocal: 0.06, EvGlobal: 0.20, EvALU: 0.22,
		EvCmp: 0.20, EvMul: 0.40, EvDivInt: 8.0, EvConv: 0.33,
		EvFAdd: 0.30, EvFMul: 0.30, EvFDiv: 8.0, EvSelect: 0.35,
		EvBranch: 0.30, EvBrTable: 2.5, EvCall: 3.5, EvCallIndirect: 42.0,
		EvReturn: 1.2, EvLoad: 0.40, EvStore: 0.40,
		EvBoundsCheck: 0.30, EvMask: 0.03,
		EvTagCheckLoad: 0.05, EvTagCheckStore: 0.05,
		EvIRG: 1.30, EvADDG: 0.27, EvSTGGranule: 2.00,
		EvPACSign: 1.1, EvPACAuth: 1.4, EvMemGrow: 300, EvHost: 1.1,
		EvFence: 18.0, EvBTBFlush: 220,
	}
	wasmCostsA510 = WasmCosts{
		EvConst: 0.20, EvLocal: 0.25, EvGlobal: 0.55, EvALU: 0.60,
		EvCmp: 0.55, EvMul: 1.10, EvDivInt: 12.0, EvConv: 0.90,
		EvFAdd: 1.40, EvFMul: 1.50, EvFDiv: 14.0, EvSelect: 0.80,
		EvBranch: 1.10, EvBrTable: 5.0, EvCall: 7.0, EvCallIndirect: 220.0,
		EvReturn: 2.5, EvLoad: 1.35, EvStore: 1.10,
		EvBoundsCheck: 6.00, EvMask: 0.30,
		EvTagCheckLoad: 0.25, EvTagCheckStore: 0.25,
		EvIRG: 2.00, EvADDG: 0.45, EvSTGGranule: 2.50,
		EvPACSign: 5.2, EvPACAuth: 8.2, EvMemGrow: 300, EvHost: 2.0,
		EvFence: 3.0, EvBTBFlush: 80,
	}
)
