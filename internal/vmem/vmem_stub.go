//go:build !cageguard || !linux || !(amd64 || arm64)

package vmem

import "errors"

// ErrUnsupported is returned by Map on builds without the guard
// backend (no cageguard tag, non-Linux, or 32-bit address space).
var ErrUnsupported = errors.New("vmem: guard-region mappings unavailable in this build (need -tags=cageguard on 64-bit Linux)")

// Mapping is the stub guard-region handle; never instantiated in this
// build.
type Mapping struct{}

// Supported reports whether guard mappings exist in this build: no.
func Supported() bool { return false }

// Map always fails in this build.
func Map(commit uint64) (*Mapping, error) { return nil, ErrUnsupported }

// Bytes is unreachable in this build (Map never succeeds).
func (m *Mapping) Bytes() []byte { return nil }

// Committed is unreachable in this build.
func (m *Mapping) Committed() uint64 { return 0 }

// SetCommitted is unreachable in this build.
func (m *Mapping) SetCommitted(n uint64) error { return ErrUnsupported }

// Owns is unreachable in this build.
func (m *Mapping) Owns(addr uintptr) bool { return false }

// GuestAddr is unreachable in this build.
func (m *Mapping) GuestAddr(addr uintptr) uint64 { return 0 }

// Unmap is unreachable in this build.
func (m *Mapping) Unmap() error { return nil }
