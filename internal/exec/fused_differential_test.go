package exec_test

// Differential tests for the fused dispatch tier: a program rewritten
// by the superinstruction pass (internal/fuse) must be observationally
// identical to its unfused twin — same results, same trap codes, and
// the same timing-model event stream — on every configuration preset,
// Spectre-hardened included. Together with the legacy-oracle suite in
// differential_test.go this pins the full three-tier tower: legacy ≡
// unfused ≡ fused.

import (
	"context"
	"errors"
	"testing"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/minicc"
	"cage/internal/mte"
	"cage/internal/polybench"
	"cage/internal/wasm"
)

// dispatchConfigs are the presets the fused tier must be bit-identical
// on: the Table 3 configurations plus the Spectre-hardened stack.
var dispatchConfigs = []struct {
	name  string
	opts  codegen.Options
	feats core.Features
}{
	{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
	{"memsafety", codegen.Options{Wasm64: true, StackSanitizer: true},
		core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
	{"sandbox", codegen.Options{Wasm64: true},
		core.Features{Sandbox: true, MTEMode: mte.ModeSync}},
	{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
		core.CageAll()},
	{"hardened", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
		hardenedFeatures()},
}

// newFusedKernelInstance is newKernelInstance with the module's lowered
// program fused exhaustively before instantiation.
func newFusedKernelInstance(t testing.TB, m *wasm.Module, feats core.Features, ctr *arch.Counter) *exec.Instance {
	t.Helper()
	prog, err := exec.LowerModule(m, exec.Config{Features: feats})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return newFusedBenchInstance(t, m, feats, ctr, fuse.Fuse(prog, nil))
}

// newFusedBenchInstance is newKernelInstance with an explicit
// pre-lowered (typically fused) program.
func newFusedBenchInstance(t testing.TB, m *wasm.Module, feats core.Features, ctr *arch.Counter, prog *ir.Program) *exec.Instance {
	t.Helper()
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features: feats, HostModules: polybench.HostModules(), HostData: host,
		Seed: 1234, Counter: ctr, Program: prog,
	})
	if err != nil {
		t.Fatalf("instantiate fused: %v", err)
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		t.Fatal("module lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		t.Fatalf("allocator: %v", err)
	}
	return inst
}

func TestFusedMatchesUnfusedOnPolybench(t *testing.T) {
	kernels := []string{"gemm", "2mm", "atax", "jacobi-1d", "durbin"}
	for _, name := range kernels {
		k, err := polybench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range dispatchConfigs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				m, err := polybench.Build(k, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}

				var ctrPlain arch.Counter
				plain := newKernelInstance(t, m, cfg.feats, &ctrPlain)
				plainRes, plainErr := plain.Invoke("run", uint64(k.TestN))

				var ctrFused arch.Counter
				fused := newFusedKernelInstance(t, m, cfg.feats, &ctrFused)
				fusedRes, fusedErr := fused.Invoke("run", uint64(k.TestN))

				if (plainErr == nil) != (fusedErr == nil) {
					t.Fatalf("error mismatch: unfused=%v fused=%v", plainErr, fusedErr)
				}
				if plainErr != nil {
					t.Fatalf("kernel failed under both tiers: %v", plainErr)
				}
				if len(plainRes) != len(fusedRes) {
					t.Fatalf("result arity: unfused=%d fused=%d", len(plainRes), len(fusedRes))
				}
				for i := range plainRes {
					if plainRes[i] != fusedRes[i] {
						t.Fatalf("result[%d]: unfused=%#x fused=%#x", i, plainRes[i], fusedRes[i])
					}
				}
				for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
					if ctrPlain.Get(ev) != ctrFused.Get(ev) {
						t.Errorf("event %v: unfused=%d fused=%d", ev, ctrPlain.Get(ev), ctrFused.Get(ev))
					}
				}
			})
		}
	}
}

// TestFusedMatchesUnfusedTraps drives the trap-matrix modules through
// the fused tier: same trap codes at the same sites.
func TestFusedMatchesUnfusedTraps(t *testing.T) {
	for _, tc := range trapCases() {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := exec.NewInstance(tc.mod, exec.Config{Features: tc.feats, Seed: 7})
			if err != nil {
				t.Fatalf("instantiate unfused: %v", err)
			}
			_, plainErr := plain.Invoke("f")

			prog, err := exec.LowerModule(tc.mod, exec.Config{Features: tc.feats})
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			fusedInst, err := exec.NewInstance(tc.mod, exec.Config{
				Features: tc.feats, Seed: 7, Program: fuse.Fuse(prog, nil),
			})
			if err != nil {
				t.Fatalf("instantiate fused: %v", err)
			}
			_, fusedErr := fusedInst.Invoke("f")

			var plainTrap, fusedTrap *exec.Trap
			if !errors.As(plainErr, &plainTrap) {
				t.Fatalf("unfused did not trap: %v", plainErr)
			}
			if !errors.As(fusedErr, &fusedTrap) {
				t.Fatalf("fused did not trap: %v", fusedErr)
			}
			if plainTrap.Code != tc.code || fusedTrap.Code != tc.code {
				t.Errorf("trap codes: unfused=%v fused=%v, want %v",
					plainTrap.Code, fusedTrap.Code, tc.code)
			}
		})
	}
}

// FuzzFuse feeds MiniC programs through the full pipeline and asserts
// the fuse pass's two contracts on whatever the fuzzer synthesizes:
// every branch target in the fused stream is a valid absolute PC, and
// execution is oracle-equivalent to the unfused program (results, trap
// codes, event stream). Seeds come from the differential suite's call
// kernels plus a memory-heavy loop.
func FuzzFuse(f *testing.F) {
	for _, k := range callKernelSources {
		f.Add(k.src, k.arg)
	}
	f.Add(`
extern char* malloc(long n);
long run(long n) {
    long* a = (long*)malloc(n * 8);
    long s = 0;
    for (long i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}`, uint64(64))
	f.Fuzz(func(t *testing.T, src string, arg uint64) {
		file, err := minicc.Parse(src)
		if err != nil {
			t.Skip()
		}
		mprog, err := minicc.Analyze(file, minicc.Layout64)
		if err != nil {
			t.Skip()
		}
		m, err := codegen.Compile(mprog, codegen.Options{Wasm64: true})
		if err != nil {
			t.Skip()
		}
		prog, err := exec.LowerModule(m, exec.Config{})
		if err != nil {
			t.Skip()
		}
		fusedProg := fuse.Fuse(prog, nil)

		// Contract 1: branch-target validity after the PC remap.
		for fi, fn := range fusedProg.Funcs {
			check := func(target int) {
				if target < 0 || target >= len(fn.Code) {
					t.Fatalf("func %d: branch target %d outside [0,%d)", fi, target, len(fn.Code))
				}
			}
			for _, in := range fn.Code {
				switch in.Op {
				case ir.OpGoto, ir.OpBr, ir.OpBrIf, ir.OpBrIfZ:
					check(int(in.B))
				case ir.OpBrTable:
					for _, bt := range in.Targets {
						check(int(bt.PC))
					}
				case ir.OpFusedSetBr, ir.OpFusedCmpBrIf, ir.OpFusedCmpBrIfZ,
					ir.OpFusedCmpEqzBrIf, ir.OpFusedGetGetCmpEqzBr, ir.OpFusedIncBr,
					ir.OpFusedALUSetIncBr:
					check(ir.FusedBranchTarget(in.B))
				}
			}
		}

		// Contract 2: oracle equivalence under a fuel bound (fuzzed
		// programs may loop forever; both tiers must run dry at the
		// same event count).
		const fuel = 200_000
		var ctrPlain arch.Counter
		plain, err := exec.NewInstance(m, exec.Config{Seed: 5, Counter: &ctrPlain})
		if err != nil {
			t.Skip() // e.g. unresolved imports the fuzzer invented
		}
		plainRes, plainErr := plain.InvokeWith(context.Background(), "run",
			[]uint64{arg % 1024}, exec.CallOptions{Fuel: fuel})

		var ctrFused arch.Counter
		fusedInst, err := exec.NewInstance(m, exec.Config{
			Seed: 5, Counter: &ctrFused, Program: fusedProg,
		})
		if err != nil {
			t.Fatalf("fused instantiation failed where unfused succeeded: %v", err)
		}
		fusedRes, fusedErr := fusedInst.InvokeWith(context.Background(), "run",
			[]uint64{arg % 1024}, exec.CallOptions{Fuel: fuel})

		if (plainErr == nil) != (fusedErr == nil) {
			t.Fatalf("error mismatch: unfused=%v fused=%v", plainErr, fusedErr)
		}
		if plainErr != nil {
			var pt, ft *exec.Trap
			if errors.As(plainErr, &pt) != errors.As(fusedErr, &ft) || (pt != nil && pt.Code != ft.Code) {
				t.Fatalf("trap mismatch: unfused=%v fused=%v", plainErr, fusedErr)
			}
			return
		}
		if len(plainRes.Values) != len(fusedRes.Values) {
			t.Fatalf("result arity: unfused=%d fused=%d", len(plainRes.Values), len(fusedRes.Values))
		}
		for i := range plainRes.Values {
			if plainRes.Values[i] != fusedRes.Values[i] {
				t.Fatalf("result[%d]: unfused=%#x fused=%#x", i, plainRes.Values[i], fusedRes.Values[i])
			}
		}
		for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
			if ctrPlain.Get(ev) != ctrFused.Get(ev) {
				t.Fatalf("event %v: unfused=%d fused=%d", ev, ctrPlain.Get(ev), ctrFused.Get(ev))
			}
		}
	})
}
