package cage

import (
	"context"
	"testing"
	"time"
)

// TestCallWithMatchesCall pins CallSpec to the option list it mirrors:
// same bounds, same traps, same results.
func TestCallWithMatchesCall(t *testing.T) {
	eng := NewEngine(SandboxingOnly())
	defer eng.Close()
	mod, err := eng.CompileSource(callTestSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	want, err := eng.Call(ctx, mod, "work", []uint64{1000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.CallWith(ctx, mod, "work", []uint64{1000}, CallSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != want.Values[0] || got.Fuel != want.Fuel {
		t.Fatalf("CallWith = %v/%d fuel, Call = %v/%d fuel", got.Values, got.Fuel, want.Values, want.Fuel)
	}

	// Fuel exhaustion must trap identically through the spec.
	_, errOpt := eng.Call(ctx, mod, "spin", []uint64{0}, WithFuel(10_000))
	_, errSpec := eng.CallWith(ctx, mod, "spin", []uint64{0}, CallSpec{Fuel: 10_000})
	if !IsFuelExhausted(errOpt) || !IsFuelExhausted(errSpec) {
		t.Fatalf("fuel trap: opt=%v spec=%v", errOpt, errSpec)
	}

	// Timeouts must interrupt identically.
	_, errSpec = eng.CallWith(ctx, mod, "spin", []uint64{0}, CallSpec{Timeout: 10 * time.Millisecond})
	if !IsInterrupted(errSpec) {
		t.Fatalf("spec timeout: %v", errSpec)
	}

	// Stack bounds travel too.
	_, errSpec = eng.CallWith(ctx, mod, "rec", []uint64{1 << 20}, CallSpec{StackDepth: 64})
	if errSpec == nil {
		t.Fatal("spec stack bound did not trap")
	}
}

// TestCallWithZeroAlloc pins the whole admitted-call round trip —
// pool lookup, lock-free checkout, invoke, reset (snapshot fork),
// lock-free checkin — at zero steady-state heap allocations when the
// spec carries no timeout and the context is not cancellable.
func TestCallWithZeroAlloc(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	eng := NewEngine(SandboxingOnly())
	defer eng.Close()
	mod, err := eng.CompileSource(callTestSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	args := []uint64{64}
	spec := CallSpec{Results: make([]uint64, 4)}

	// Warm: spawn the instance, capture the baseline snapshot, build the
	// pool, publish every cache map.
	for i := 0; i < 3; i++ {
		if _, err := eng.CallWith(ctx, mod, "work", args, spec); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(200, func() {
		res, err := eng.CallWith(ctx, mod, "work", args, spec)
		if err != nil || res.Values[0] != 2016 {
			panic("bad result")
		}
	}); n != 0 {
		t.Fatalf("CallWith allocates %v/op steady-state, want 0", n)
	}
}
