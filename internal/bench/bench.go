package bench

import (
	"fmt"
	"io"
	"strings"

	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/mte"
)

// Variant is one Table 3 runtime configuration.
type Variant struct {
	Name     string
	PtrWidth int
	Compile  codegen.Options
	Features core.Features
}

// Table3Variants returns the six benchmark configurations in paper
// order.
func Table3Variants() []Variant {
	sync := mte.ModeSync
	return []Variant{
		{
			Name: "baseline wasm32", PtrWidth: 32,
			Compile: codegen.Options{Wasm64: false},
		},
		{
			Name: "baseline wasm64", PtrWidth: 64,
			Compile: codegen.Options{Wasm64: true},
		},
		{
			Name: "Cage-mem-safety", PtrWidth: 64,
			Compile:  codegen.Options{Wasm64: true, StackSanitizer: true},
			Features: core.Features{MemSafety: true, MTEMode: sync},
		},
		{
			Name: "Cage-ptr-auth", PtrWidth: 64,
			Compile:  codegen.Options{Wasm64: true, PtrAuth: true},
			Features: core.Features{PtrAuth: true},
		},
		{
			Name: "Cage-sandboxing", PtrWidth: 64,
			Compile:  codegen.Options{Wasm64: true},
			Features: core.Features{Sandbox: true, MTEMode: sync},
		},
		{
			Name: "Cage", PtrWidth: 64,
			Compile:  codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
			Features: core.CageAll(),
		},
	}
}

// VariantByName finds a Table 3 variant.
func VariantByName(name string) (Variant, error) {
	for _, v := range Table3Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("bench: unknown variant %q", name)
}

// table is a minimal text-table writer for harness output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// RunAll executes every experiment and writes the paper-style report.
// quick shrinks problem sizes for fast smoke runs.
func RunAll(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "== Table 1: MTE/PAC instruction throughput and latency ==")
	Table1Report(w)

	fmt.Fprintln(w, "\n== Fig. 4: 128 MiB memset under MTE modes ==")
	Fig4Report(w)

	fmt.Fprintln(w, "\n== Table 2: CVE mitigation matrix ==")
	if err := Table2Report(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== Fig. 14: PolyBench/C runtime overheads (Table 3 variants) ==")
	fig14, err := RunFig14(quick)
	if err != nil {
		return err
	}
	fig14.Report(w)

	fmt.Fprintln(w, "\n== Fig. 15: pointer authentication call overhead ==")
	fig15, err := RunFig15(quick)
	if err != nil {
		return err
	}
	fig15.Report(w)

	fmt.Fprintln(w, "\n== Table 4 / Fig. 16: tagged-memory initialization ==")
	Fig16Report(w)

	fmt.Fprintln(w, "\n== §7.2: instance startup overhead ==")
	if err := StartupReport(w); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== §7.3: memory overhead ==")
	if err := MemoryReport(w, quick); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== §7.4: security analysis ==")
	SecurityReport(w)
	return nil
}
