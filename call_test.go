package cage

import (
	"context"
	"errors"
	"testing"
	"time"

	"cage/internal/exec"
)

// callTestSource exercises every per-call bound: an infinite loop for
// interruption, bounded work for fuel accounting, recursion for the
// stack-depth option.
const callTestSource = `
long spin(long n) {
    while (1) { n = n + 1; }
    return n;
}
long work(long n) {
    long s = 0;
    for (long i = 0; i < n; i++) { s = s + i; }
    return s;
}
long rec(long n) {
    if (n <= 0) { return 0; }
    return rec(n - 1) + 1;
}
`

func compileCallTest(t *testing.T, eng *Engine) *Module {
	t.Helper()
	mod, err := eng.CompileSource(callTestSource)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestCallTimeoutInterruptsInfiniteLoop is the acceptance criterion: a
// guest for(;;) invoked with a 100ms timeout returns TrapInterrupted
// promptly, and the pooled instance is reset and reusable afterwards —
// no poisoned pool slot, no leaked sandbox tag.
func TestCallTimeoutInterruptsInfiniteLoop(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	start := time.Now()
	_, err := eng.Call(context.Background(), mod, "spin", []uint64{0},
		WithTimeout(100*time.Millisecond))
	elapsed := time.Since(start)
	if !IsInterrupted(err) {
		t.Fatalf("Call(spin) = %v, want TrapInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("interrupted trap does not wrap context.DeadlineExceeded: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("interruption took %v, want promptly after the 100ms deadline", elapsed)
	}

	// Under FullHardening the process owns a single sandbox tag: if the
	// interrupted call leaked it or poisoned the pool slot, these reuse
	// calls would hang or fail.
	for i := 0; i < 3; i++ {
		res, err := eng.Call(context.Background(), mod, "work", []uint64{100})
		if err != nil {
			t.Fatalf("Call(work) %d after interrupt: %v", i, err)
		}
		if len(res.Values) != 1 || res.Values[0] != 4950 {
			t.Fatalf("Call(work) %d after interrupt = %v, want 4950", i, res.Values)
		}
	}
	if s := eng.Stats(); s.Pools.Discarded != 0 {
		t.Errorf("pool discarded %d instances; an interrupt must reset, not discard", s.Pools.Discarded)
	}
}

// TestCallContextCancelInterrupts covers caller-side cancellation (as
// opposed to option-derived deadlines).
func TestCallContextCancelInterrupts(t *testing.T) {
	eng := NewEngine(MemorySafetyOnly())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := eng.Call(ctx, mod, "spin", []uint64{0})
	if !IsInterrupted(err) {
		t.Fatalf("Call(spin) = %v, want TrapInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("interrupted trap does not wrap context.Canceled: %v", err)
	}
}

// TestCallAlreadyCancelledContext: a dead context fails before any
// guest code runs.
func TestCallAlreadyCancelledContext(t *testing.T) {
	eng := NewEngine(Baseline64())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Call(ctx, mod, "work", []uint64{10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Call on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestCallFuelExhaustionDeterministic: a fuel-exhausted run traps
// identically — same trap, same fuel reading — on every repeat.
func TestCallFuelExhaustionDeterministic(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	// Measure the unmetered cost once, then pick a budget well below it.
	full, err := eng.Call(context.Background(), mod, "work", []uint64{10000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Fuel == 0 {
		t.Fatal("unmetered call reported zero fuel")
	}
	budget := full.Fuel / 4

	var readings []uint64
	for i := 0; i < 3; i++ {
		res, err := eng.Call(context.Background(), mod, "work", []uint64{10000}, WithFuel(budget))
		if !IsFuelExhausted(err) {
			t.Fatalf("run %d = %v, want TrapFuelExhausted", i, err)
		}
		readings = append(readings, res.Fuel)
	}
	for i := 1; i < len(readings); i++ {
		if readings[i] != readings[0] {
			t.Fatalf("fuel at exhaustion differs across repeats: %v", readings)
		}
	}

	// A sufficient budget completes and consumes the unmetered amount.
	res, err := eng.Call(context.Background(), mod, "work", []uint64{10000}, WithFuel(full.Fuel+1))
	if err != nil {
		t.Fatalf("metered call with sufficient fuel: %v", err)
	}
	if res.Fuel != full.Fuel {
		t.Errorf("metered run consumed %d fuel, unmetered %d; metering must not change execution", res.Fuel, full.Fuel)
	}
	if res.Events.Total() != res.Fuel {
		t.Errorf("Result.Events total %d != Result.Fuel %d", res.Events.Total(), res.Fuel)
	}
}

// TestCallCancelledQueuedCheckout: under the combined configuration the
// process owns one §7.4 tag. A checkout queued behind it must be
// abandonable via ctx, must surface the context error, and must not
// leak the tag — the release path is exercised under -race in CI.
func TestCallCancelledQueuedCheckout(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	modA, err := eng.CompileSource(`long fa(long n) { return n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	modB, err := eng.CompileSource(`long fb(long n) { return n + 2; }`)
	if err != nil {
		t.Fatal(err)
	}

	holding := make(chan struct{})
	release := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		aDone <- eng.WithInstance(modA, func(inst *Instance) error {
			close(holding)
			<-release
			_, err := inst.Call(context.Background(), "fa", []uint64{1})
			return err
		})
	}()
	<-holding

	// B's checkout queues on the held tag and is abandoned by its
	// deadline.
	_, err = eng.Call(context.Background(), modB, "fb", []uint64{1},
		WithTimeout(50*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Call = %v, want context.DeadlineExceeded", err)
	}

	// Release A; the tag must be intact and serve B.
	close(release)
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	res, err := eng.Call(context.Background(), modB, "fb", []uint64{1})
	if err != nil {
		t.Fatalf("Call(modB) after abandoned checkout: %v", err)
	}
	if res.Values[0] != 3 {
		t.Fatalf("fb = %d, want 3", res.Values[0])
	}
}

// TestCallStackDepthOption: WithStackDepth bounds recursion per call
// without disturbing the instance default.
func TestCallStackDepthOption(t *testing.T) {
	eng := NewEngine(Baseline64())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	_, err := eng.Call(context.Background(), mod, "rec", []uint64{100}, WithStackDepth(10))
	var trap *exec.Trap
	if !errors.As(err, &trap) || trap.Code != exec.TrapCallDepth {
		t.Fatalf("rec(100) under WithStackDepth(10) = %v, want TrapCallDepth", err)
	}

	// The override must not stick to the pooled instance.
	res, err := eng.Call(context.Background(), mod, "rec", []uint64{100})
	if err != nil {
		t.Fatalf("rec(100) with default depth: %v", err)
	}
	if res.Values[0] != 100 {
		t.Fatalf("rec(100) = %d, want 100", res.Values[0])
	}
}

// TestConfigurationAfterFirstCallFails is the regression test for the
// unsynchronized pools.Limit mutation: pool parameters are frozen once
// the engine has served an invocation.
func TestConfigurationAfterFirstCallFails(t *testing.T) {
	eng := NewEngine(MemorySafetyOnly())
	defer eng.Close()
	if err := eng.SetPoolLimit(4); err != nil {
		t.Fatalf("SetPoolLimit before first Call: %v", err)
	}
	mod := compileCallTest(t, eng)
	if _, err := eng.Call(context.Background(), mod, "work", []uint64{10}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetPoolLimit(8); !errors.Is(err, ErrEngineStarted) {
		t.Errorf("SetPoolLimit after Call = %v, want ErrEngineStarted", err)
	}
	if err := eng.EnableExtendedSandboxes(); !errors.Is(err, ErrEngineStarted) {
		t.Errorf("EnableExtendedSandboxes after Call = %v, want ErrEngineStarted", err)
	}
}

// TestInvokeDelegatesToCall: the deprecated wrappers stay behaviorally
// identical to the old API.
func TestInvokeDelegatesToCall(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	res, err := eng.Invoke(mod, "work", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != 4950 {
		t.Fatalf("Invoke(work, 100) = %v, want [4950]", res)
	}
}

// TestCallValueStackOption: WithValueStack bounds the call's value
// arena in words, per call, with an exact TrapStackOverflow.
func TestCallValueStackOption(t *testing.T) {
	eng := NewEngine(Baseline64())
	defer eng.Close()
	mod := compileCallTest(t, eng)

	_, err := eng.Call(context.Background(), mod, "rec", []uint64{100}, WithValueStack(64))
	var trap *exec.Trap
	if !errors.As(err, &trap) || trap.Code != exec.TrapStackOverflow {
		t.Fatalf("rec(100) under WithValueStack(64) = %v, want TrapStackOverflow", err)
	}

	// The override must not stick to the pooled instance.
	res, err := eng.Call(context.Background(), mod, "rec", []uint64{100})
	if err != nil {
		t.Fatalf("rec(100) with default arena: %v", err)
	}
	if res.Values[0] != 100 {
		t.Fatalf("rec(100) = %d, want 100", res.Values[0])
	}
}
