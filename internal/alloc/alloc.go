// Package alloc is the Cage-hardened heap allocator, the reproduction of
// the paper's modified dlmalloc in wasi-libc (§6.2, Fig. 8a).
//
// Layout: the heap is a run of contiguous blocks, each a 16-byte header
// followed by a 16-byte-aligned payload. Headers are allocator metadata
// and stay untagged (guard-tagged), so they both protect themselves from
// heap overflows and act as the guard slots that keep adjacent
// allocations from ever sharing a tag — an overflow off the end of one
// allocation always runs into an untagged header first (Fig. 8a).
//
// On malloc the allocator rounds the request up to 16 bytes, carves a
// block, and creates a segment over the payload (segment.new), returning
// the tagged pointer. On free it verifies ownership and retags via
// segment.free, catching use-after-free and double-free. Without the
// memory-safety feature the same allocator runs untagged, which is the
// wasm64 baseline configuration.
package alloc

import (
	"errors"
	"fmt"

	"cage/internal/exec"
	"cage/internal/mte"
	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

// HeaderSize is the untagged metadata slot preceding every payload.
const HeaderSize = 16

// headerMagic guards against corrupted or forged headers; it occupies
// the top 16 bits of the first header word.
const headerMagic uint64 = 0xCA6E << 48

// ErrOutOfMemory is returned when the heap cannot grow any further.
var ErrOutOfMemory = errors.New("alloc: out of memory")

// ErrInvalidFree is returned for frees of unknown or corrupt pointers.
var ErrInvalidFree = errors.New("alloc: invalid free")

// block is a free-list entry (address of the header, total block size
// including the header).
type block struct {
	addr uint64
	size uint64
}

// Allocator manages a heap region inside one instance's linear memory.
type Allocator struct {
	inst      *exec.Instance
	hardened  bool
	heapStart uint64
	heapEnd   uint64  // current break
	free      []block // sorted by address, coalesced

	// Stats for the memory-overhead experiment (§7.3).
	Allocs uint64
	Frees  uint64
	InUse  uint64 // live payload bytes
	Peak   uint64
	Meta   uint64 // live metadata bytes
}

// New creates an allocator for inst managing [heapStart, memSize).
// heapStart must be 16-byte aligned.
func New(inst *exec.Instance, heapStart uint64) (*Allocator, error) {
	if heapStart%16 != 0 {
		return nil, fmt.Errorf("alloc: heap start %#x not 16-byte aligned", heapStart)
	}
	if heapStart > inst.MemorySize() {
		return nil, fmt.Errorf("alloc: heap start %#x beyond memory", heapStart)
	}
	return &Allocator{
		inst:      inst,
		hardened:  inst.Features().MemSafety,
		heapStart: heapStart,
		heapEnd:   heapStart,
	}, nil
}

// Reset abandons every live allocation and returns the heap to its
// initial empty state. Callers must reset (or re-instantiate) the
// backing instance first: Reset assumes the linear memory has been
// re-zeroed and all MTE tags cleared, so it only has to forget its own
// bookkeeping — break pointer, free list, and §7.3 statistics.
func (a *Allocator) Reset() {
	a.heapEnd = a.heapStart
	a.free = a.free[:0]
	a.Allocs, a.Frees = 0, 0
	a.InUse, a.Peak, a.Meta = 0, 0, 0
}

// HeapState is the allocator's snapshotted bookkeeping: break pointer,
// free list, and §7.3 statistics. It pairs with an exec.Snapshot of the
// backing instance — the heap's data and tags live in the instance
// image; this is the host-side metadata that must travel with them.
// A HeapState is immutable once captured and safe to Restore from
// concurrently into different allocators.
type HeapState struct {
	heapEnd uint64
	free    []block
	allocs  uint64
	frees   uint64
	inUse   uint64
	peak    uint64
	meta    uint64
}

// Snapshot captures the allocator's current bookkeeping.
func (a *Allocator) Snapshot() HeapState {
	return HeapState{
		heapEnd: a.heapEnd,
		free:    append([]block(nil), a.free...),
		allocs:  a.Allocs,
		frees:   a.Frees,
		inUse:   a.InUse,
		peak:    a.Peak,
		meta:    a.Meta,
	}
}

// Restore rewinds the allocator to a captured HeapState. The caller
// must have restored the backing instance from the matching snapshot
// first, exactly as Reset assumes a re-zeroed memory.
func (a *Allocator) Restore(s HeapState) {
	a.heapEnd = s.heapEnd
	a.free = append(a.free[:0], s.free...)
	a.Allocs, a.Frees = s.allocs, s.frees
	a.InUse, a.Peak, a.Meta = s.inUse, s.peak, s.meta
}

// Hardened reports whether allocations are tagged.
func (a *Allocator) Hardened() bool { return a.hardened }

// HeapBytes returns the total bytes the heap has claimed.
func (a *Allocator) HeapBytes() uint64 { return a.heapEnd - a.heapStart }

// align16 rounds n up to a multiple of 16.
func align16(n uint64) uint64 { return (n + 15) &^ 15 }

// Malloc allocates size bytes and returns the (tagged) payload pointer.
func (a *Allocator) Malloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 16
	}
	payload := align16(size)
	total := HeaderSize + payload

	hdr, ok := a.takeFree(total)
	if !ok {
		var err error
		hdr, err = a.extend(total)
		if err != nil {
			return 0, err
		}
	}
	if err := a.writeHeader(hdr, payload, false); err != nil {
		return 0, err
	}
	a.Allocs++
	a.InUse += payload
	a.Meta += HeaderSize
	if a.InUse > a.Peak {
		a.Peak = a.InUse
	}
	p := hdr + HeaderSize
	if !a.hardened {
		return p, nil
	}
	tagged, err := a.inst.HostSegmentNew(p, payload)
	if err != nil {
		return 0, fmt.Errorf("alloc: tagging allocation: %w", err)
	}
	return tagged, nil
}

// Calloc allocates zeroed memory for n items of itemSize bytes.
func (a *Allocator) Calloc(n, itemSize uint64) (uint64, error) {
	if itemSize != 0 && n > (1<<62)/itemSize {
		return 0, ErrOutOfMemory
	}
	size := n * itemSize
	p, err := a.Malloc(size)
	if err != nil {
		return 0, err
	}
	if !a.hardened { // hardened path zeroes via segment.new already
		addr := ptrlayout.Address(p)
		buf := a.inst.Memory()
		for i := addr; i < addr+align16(size); i++ {
			buf[i] = 0
		}
	}
	return p, nil
}

// Free releases an allocation; under Cage this retags the segment so
// dangling pointers fault (temporal safety).
func (a *Allocator) Free(ptr uint64) error {
	if ptr == 0 {
		return nil
	}
	addr := ptrlayout.Address(ptr)
	hdr := addr - HeaderSize
	payload, free, err := a.readHeader(hdr)
	if err != nil {
		return err
	}
	if free {
		if a.hardened {
			// Cage catches the double free deterministically: the
			// pointer's tag no longer owns the segment (Fig. 11 eq. 10).
			return fmt.Errorf("%w: double free at %#x", ErrInvalidFree, addr)
		}
		// Baseline dlmalloc behaviour: a double free silently corrupts
		// the free list, letting a later malloc return an overlapping
		// block (the CVE-2019-11932 exploitation pattern). Emulate it.
		a.insertFree(block{addr: hdr, size: HeaderSize + payload})
		return nil
	}
	if a.hardened {
		if err := a.inst.HostSegmentFree(ptr, payload); err != nil {
			return err
		}
	}
	if err := a.writeHeader(hdr, payload, true); err != nil {
		return err
	}
	a.Frees++
	a.InUse -= payload
	a.Meta -= HeaderSize
	a.insertFree(block{addr: hdr, size: HeaderSize + payload})
	return nil
}

// Realloc resizes an allocation, moving it if needed.
func (a *Allocator) Realloc(ptr uint64, newSize uint64) (uint64, error) {
	if ptr == 0 {
		return a.Malloc(newSize)
	}
	if newSize == 0 {
		return 0, a.Free(ptr)
	}
	addr := ptrlayout.Address(ptr)
	oldPayload, free, err := a.readHeader(addr - HeaderSize)
	if err != nil {
		return 0, err
	}
	if free {
		return 0, fmt.Errorf("%w: realloc of freed pointer %#x", ErrInvalidFree, addr)
	}
	if align16(newSize) <= oldPayload {
		return ptr, nil // shrink in place
	}
	np, err := a.Malloc(newSize)
	if err != nil {
		return 0, err
	}
	src := addr
	dst := ptrlayout.Address(np)
	buf := a.inst.Memory()
	copy(buf[dst:dst+oldPayload], buf[src:src+oldPayload])
	if err := a.Free(ptr); err != nil {
		return 0, err
	}
	return np, nil
}

// UsableSize returns the payload size backing ptr.
func (a *Allocator) UsableSize(ptr uint64) (uint64, error) {
	payload, _, err := a.readHeader(ptrlayout.Address(ptr) - HeaderSize)
	return payload, err
}

// takeFree pops a first-fit free block of at least total bytes,
// splitting the remainder back onto the list.
func (a *Allocator) takeFree(total uint64) (uint64, bool) {
	for i, b := range a.free {
		if b.size < total {
			continue
		}
		rest := b.size - total
		if rest >= HeaderSize+16 {
			a.free[i] = block{addr: b.addr + total, size: rest}
			// Keep the remainder header coherent for diagnostics.
			_ = a.writeHeader(b.addr+total, rest-HeaderSize, true)
		} else {
			total = b.size // absorb the sliver
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		return b.addr, true
	}
	return 0, false
}

// extend claims fresh space at the break, growing memory when needed.
func (a *Allocator) extend(total uint64) (uint64, error) {
	need := a.heapEnd + total
	if need > a.inst.MemorySize() {
		pages := (need - a.inst.MemorySize() + wasm.PageSize - 1) / wasm.PageSize
		if old := a.inst.GrowMemory(pages); old == ^uint64(0) {
			return 0, ErrOutOfMemory
		}
	}
	hdr := a.heapEnd
	a.heapEnd += total
	return hdr, nil
}

// insertFree adds a block and coalesces address-adjacent neighbours.
func (a *Allocator) insertFree(nb block) {
	// Insert sorted by address.
	i := 0
	for i < len(a.free) && a.free[i].addr < nb.addr {
		i++
	}
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = nb
	// Coalesce with successor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// writeHeader stores the untagged metadata slot (Fig. 8a). The slot
// encodes the payload size, a free flag, and a magic value so corrupt
// frees are detected even unhardened.
func (a *Allocator) writeHeader(hdr, payload uint64, free bool) error {
	word := headerMagic | payload<<1
	if free {
		word |= 1
	}
	if err := a.inst.WriteU64(hdr, word); err != nil {
		return err
	}
	return a.inst.WriteU64(hdr+8, ^word) // checksum word
}

// readHeader loads and verifies a metadata slot.
func (a *Allocator) readHeader(hdr uint64) (payload uint64, free bool, err error) {
	if hdr < a.heapStart || hdr >= a.heapEnd {
		return 0, false, fmt.Errorf("%w: pointer outside heap", ErrInvalidFree)
	}
	word, err := a.inst.ReadU64(hdr)
	if err != nil {
		return 0, false, err
	}
	check, err := a.inst.ReadU64(hdr + 8)
	if err != nil {
		return 0, false, err
	}
	if word&0xFFFF_0000_0000_0000 != headerMagic || check != ^word {
		return 0, false, fmt.Errorf("%w: corrupt allocator metadata at %#x", ErrInvalidFree, hdr)
	}
	return (word &^ headerMagic) >> 1, word&1 == 1, nil
}

// MetadataOverhead reports live metadata bytes per live payload byte,
// used by the §7.3 memory-overhead accounting.
func (a *Allocator) MetadataOverhead() float64 {
	if a.InUse == 0 {
		return 0
	}
	return float64(a.Meta) / float64(a.InUse)
}

// TagStorageOverhead is MTE's architectural tag-storage cost: 4 bits per
// 16-byte granule = 1/32 of memory (paper §7.3).
func TagStorageOverhead() float64 { return 1.0 / (2 * mte.GranuleSize) }

// HostModule is the import-module name for the libc host functions; the
// wasm32 baseline imports the 32-bit-pointer surface from HostModule32.
const (
	HostModule   = "cage_libc"
	HostModule32 = "cage_libc32"
)

// Provider locates the instance's hardened allocator from the host
// data attached to it (exec.Config.HostData / HostContext.Data). The
// allocator is created after instantiation — it needs the instance's
// __heap_base — so providers return nil until it is bound.
type Provider interface {
	HeapAllocator() *Allocator
}

// Host is the minimal Provider: embedders put a *Host in
// exec.Config.HostData and fill A once the allocator exists.
type Host struct {
	A *Allocator
}

// HeapAllocator implements Provider.
func (h *Host) HeapAllocator() *Allocator { return h.A }

// allocatorOf resolves the calling instance's allocator.
func allocatorOf(hc *exec.HostContext) (*Allocator, error) {
	if p, ok := hc.Data().(Provider); ok {
		if a := p.HeapAllocator(); a != nil {
			return a, nil
		}
	}
	return nil, errors.New("alloc: instance has no allocator bound (HostData must implement alloc.Provider)")
}

// HostModules builds the hardened-libc host surface — malloc / calloc /
// realloc / free in both the wasm64 (HostModule) and ILP32 wasm32
// (HostModule32) ABI variants — on the typed host-module builder. The
// functions reach the per-instance allocator through the host data, so
// the modules themselves are stateless and one resolved import table
// can serve every pooled instance.
func HostModules() []*exec.HostModule {
	return []*exec.HostModule{hostModule64(), hostModule32()}
}

func hostModule64() *exec.HostModule {
	hm := exec.NewHostModule(HostModule)
	exec.Func1(hm, "malloc", func(hc *exec.HostContext, n uint64) (uint64, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		p, err := a.Malloc(n)
		if err != nil {
			return 0, nil // C malloc reports failure as NULL
		}
		return p, nil
	})
	exec.Func2(hm, "calloc", func(hc *exec.HostContext, n, size uint64) (uint64, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		p, err := a.Calloc(n, size)
		if err != nil {
			return 0, nil
		}
		return p, nil
	})
	exec.Func2(hm, "realloc", func(hc *exec.HostContext, p, n uint64) (uint64, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		q, err := a.Realloc(p, n)
		if err != nil {
			return 0, nil
		}
		return q, nil
	})
	exec.Void1(hm, "free", func(hc *exec.HostContext, p uint64) error {
		a, err := allocatorOf(hc)
		if err != nil {
			return err
		}
		// Invalid frees are memory-safety violations: trap, exactly
		// as segment.free would (Fig. 11 eq. 10).
		return a.Free(p)
	})
	return hm
}

// hostModule32 is the ILP32 ABI of wasi-libc on wasm32: pointers and
// sizes are i32.
func hostModule32() *exec.HostModule {
	hm := exec.NewHostModule(HostModule32).Ptr32()
	exec.Func1(hm, "malloc", func(hc *exec.HostContext, n uint32) (uint32, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		p, err := a.Malloc(uint64(n))
		if err != nil {
			return 0, nil
		}
		return uint32(p), nil
	})
	exec.Func2(hm, "calloc", func(hc *exec.HostContext, n, size uint32) (uint32, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		p, err := a.Calloc(uint64(n), uint64(size))
		if err != nil {
			return 0, nil
		}
		return uint32(p), nil
	})
	exec.Func2(hm, "realloc", func(hc *exec.HostContext, p, n uint32) (uint32, error) {
		a, err := allocatorOf(hc)
		if err != nil {
			return 0, err
		}
		q, err := a.Realloc(uint64(p), uint64(n))
		if err != nil {
			return 0, nil
		}
		return uint32(q), nil
	})
	exec.Void1(hm, "free", func(hc *exec.HostContext, p uint32) error {
		a, err := allocatorOf(hc)
		if err != nil {
			return err
		}
		return a.Free(uint64(p))
	})
	return hm
}
