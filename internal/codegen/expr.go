package codegen

import (
	"fmt"

	"cage/internal/minicc"
	"cage/internal/wasm"
)

// Expression lowering. Values on the wasm stack use the canonical
// representation: char/int as i32 (char kept sign-extended), long as
// i64, pointers as the target's address type, float/double as f32/f64.

// loadOp/storeOp pick the memory opcode for a scalar type.
func (f *fnGen) loadOp(t *minicc.Type) wasm.Opcode {
	switch t.Kind {
	case minicc.KChar:
		if t.Unsigned {
			return wasm.OpI32Load8U
		}
		return wasm.OpI32Load8S
	case minicc.KInt:
		return wasm.OpI32Load
	case minicc.KLong:
		if f.g.layout.LongSize == 8 {
			return wasm.OpI64Load
		}
		return wasm.OpI32Load
	case minicc.KFloat:
		return wasm.OpF32Load
	case minicc.KDouble:
		return wasm.OpF64Load
	default: // pointers, function pointers
		if f.g.opts.Wasm64 {
			return wasm.OpI64Load
		}
		return wasm.OpI32Load
	}
}

func (f *fnGen) storeOp(t *minicc.Type) wasm.Opcode {
	switch t.Kind {
	case minicc.KChar:
		return wasm.OpI32Store8
	case minicc.KInt:
		return wasm.OpI32Store
	case minicc.KLong:
		if f.g.layout.LongSize == 8 {
			return wasm.OpI64Store
		}
		return wasm.OpI32Store
	case minicc.KFloat:
		return wasm.OpF32Store
	case minicc.KDouble:
		return wasm.OpF64Store
	default:
		if f.g.opts.Wasm64 {
			return wasm.OpI64Store
		}
		return wasm.OpI32Store
	}
}

// widthClass groups scalar types by wasm representation.
func (f *fnGen) widthClass(t *minicc.Type) wasm.ValType { return f.g.valType(t) }

// convert emits the conversion between two scalar MiniC types.
func (f *fnGen) convert(from, to *minicc.Type) {
	if from.Equal(to) {
		return
	}
	fw, tw := f.widthClass(from), f.widthClass(to)
	switch {
	case fw == tw:
		// Same representation; narrowing to char must renormalize to
		// the canonical (sign- or zero-extended) i32 form.
		if to.Kind == minicc.KChar &&
			!(from.Kind == minicc.KChar && from.Unsigned == to.Unsigned) {
			if to.Unsigned {
				f.emit(wasm.I32Const(0xFF), wasm.Op(wasm.OpI32And))
			} else {
				f.emit(wasm.I32Const(24), wasm.Op(wasm.OpI32Shl))
				f.emit(wasm.I32Const(24), wasm.Op(wasm.OpI32ShrS))
			}
		}
	case fw == wasm.I32 && tw == wasm.I64:
		if from.Unsigned || from.IsPtr() {
			f.emit(wasm.Op(wasm.OpI64ExtendI32U))
		} else {
			f.emit(wasm.Op(wasm.OpI64ExtendI32S))
		}
	case fw == wasm.I64 && tw == wasm.I32:
		f.emit(wasm.Op(wasm.OpI32WrapI64))
		if to.Kind == minicc.KChar {
			f.convert(minicc.TypeInt, to)
		}
	case fw == wasm.I32 && tw == wasm.F64:
		if from.Unsigned {
			f.emit(wasm.Op(wasm.OpF64ConvertI32U))
		} else {
			f.emit(wasm.Op(wasm.OpF64ConvertI32S))
		}
	case fw == wasm.I32 && tw == wasm.F32:
		if from.Unsigned {
			f.emit(wasm.Op(wasm.OpF32ConvertI32U))
		} else {
			f.emit(wasm.Op(wasm.OpF32ConvertI32S))
		}
	case fw == wasm.I64 && tw == wasm.F64:
		if from.Unsigned {
			f.emit(wasm.Op(wasm.OpF64ConvertI64U))
		} else {
			f.emit(wasm.Op(wasm.OpF64ConvertI64S))
		}
	case fw == wasm.I64 && tw == wasm.F32:
		if from.Unsigned {
			f.emit(wasm.Op(wasm.OpF32ConvertI64U))
		} else {
			f.emit(wasm.Op(wasm.OpF32ConvertI64S))
		}
	case fw == wasm.F64 && tw == wasm.I32:
		if to.Unsigned {
			f.emit(wasm.Op(wasm.OpI32TruncF64U))
		} else {
			f.emit(wasm.Op(wasm.OpI32TruncF64S))
		}
	case fw == wasm.F64 && tw == wasm.I64:
		if to.Unsigned {
			f.emit(wasm.Op(wasm.OpI64TruncF64U))
		} else {
			f.emit(wasm.Op(wasm.OpI64TruncF64S))
		}
	case fw == wasm.F32 && tw == wasm.I32:
		if to.Unsigned {
			f.emit(wasm.Op(wasm.OpI32TruncF32U))
		} else {
			f.emit(wasm.Op(wasm.OpI32TruncF32S))
		}
	case fw == wasm.F32 && tw == wasm.I64:
		if to.Unsigned {
			f.emit(wasm.Op(wasm.OpI64TruncF32U))
		} else {
			f.emit(wasm.Op(wasm.OpI64TruncF32S))
		}
	case fw == wasm.F32 && tw == wasm.F64:
		f.emit(wasm.Op(wasm.OpF64PromoteF32))
	case fw == wasm.F64 && tw == wasm.F32:
		f.emit(wasm.Op(wasm.OpF32DemoteF64))
	}
}

// exprAs emits e converted to type to.
func (f *fnGen) exprAs(e minicc.Expr, to *minicc.Type) error {
	produced, err := f.value(e)
	if err != nil {
		return err
	}
	f.convert(produced, to)
	return nil
}

// cond emits e as an i32 truth value.
func (f *fnGen) cond(e minicc.Expr) error {
	produced, err := f.value(e)
	if err != nil {
		return err
	}
	switch f.widthClass(produced) {
	case wasm.I32:
		// Nonzero is already truthy for br_if/if.
	case wasm.I64:
		f.emit(wasm.I64Const(0), wasm.Op(wasm.OpI64Ne))
	case wasm.F32:
		f.emit(wasm.F32Const(0), wasm.Op(wasm.OpF32Ne))
	case wasm.F64:
		f.emit(wasm.F64Const(0), wasm.Op(wasm.OpF64Ne))
	}
	return nil
}

// place describes where an lvalue lives.
type place struct {
	isLocal bool
	local   uint32
	typ     *minicc.Type
	offset  uint64 // folded into load/store when isLocal is false
}

// placeOf resolves e's storage; for memory places the address is left
// on the wasm stack.
func (f *fnGen) placeOf(e minicc.Expr) (place, error) {
	switch n := e.(type) {
	case *minicc.Ident:
		sym := n.Sym
		switch sym.Kind {
		case minicc.SymGlobal:
			f.addrConst(sym.GlobalAddr)
			return place{typ: sym.Type}, nil
		case minicc.SymLocal, minicc.SymParam:
			if f.inFrame[sym] {
				f.pushFrameAddr(sym)
				return place{typ: sym.Type}, nil
			}
			return place{isLocal: true, local: sym.LocalIdx, typ: sym.Type}, nil
		}
		return place{}, fmt.Errorf("codegen: %q is not assignable", sym.Name)
	case *minicc.Index:
		if err := f.indexAddr(n); err != nil {
			return place{}, err
		}
		return place{typ: n.Type()}, nil
	case *minicc.Member:
		off, err := f.memberAddr(n)
		if err != nil {
			return place{}, err
		}
		return place{typ: n.Type(), offset: off}, nil
	case *minicc.Unary:
		if n.Op == "*" {
			if _, err := f.value(n.X); err != nil {
				return place{}, err
			}
			return place{typ: n.Type()}, nil
		}
	}
	return place{}, fmt.Errorf("codegen: not an lvalue: %T", e)
}

// loadPlace reads the value of a resolved place (address already on the
// stack for memory places).
func (f *fnGen) loadPlace(p place) {
	if p.isLocal {
		f.emit(wasm.LocalGet(p.local))
		return
	}
	f.emit(wasm.Load(f.loadOp(p.typ), p.offset))
}

// indexAddr pushes the address of n = base[idx].
func (f *fnGen) indexAddr(n *minicc.Index) error {
	bt := n.X.Type()
	// Base address: arrays contribute their storage address, pointers
	// their value.
	if bt.Kind == minicc.KArray {
		if err := f.aggregateAddr(n.X); err != nil {
			return err
		}
	} else {
		if _, err := f.value(n.X); err != nil {
			return err
		}
	}
	elem := uint64(f.g.layout.Size(bt.Elem))
	// idx scaled to the pointer width.
	ptrIdx := minicc.TypeLong
	if !f.g.opts.Wasm64 {
		ptrIdx = minicc.TypeInt
	}
	if err := f.exprAs(n.Idx, ptrIdx); err != nil {
		return err
	}
	if elem != 1 {
		f.addrConst(elem)
		if f.g.opts.Wasm64 {
			f.emit(wasm.Op(wasm.OpI64Mul))
		} else {
			f.emit(wasm.Op(wasm.OpI32Mul))
		}
	}
	f.addrAdd()
	return nil
}

// memberAddr pushes the base address of n and returns the folded field
// offset.
func (f *fnGen) memberAddr(n *minicc.Member) (uint64, error) {
	if n.Arrow {
		if _, err := f.value(n.X); err != nil {
			return 0, err
		}
		return uint64(n.Field.Offset), nil
	}
	// Nested member of an aggregate lvalue.
	switch base := n.X.(type) {
	case *minicc.Member:
		off, err := f.memberAddr(base)
		if err != nil {
			return 0, err
		}
		return off + uint64(n.Field.Offset), nil
	default:
		if err := f.aggregateAddr(n.X); err != nil {
			return 0, err
		}
		return uint64(n.Field.Offset), nil
	}
}

// aggregateAddr pushes the address of an array/struct lvalue.
func (f *fnGen) aggregateAddr(e minicc.Expr) error {
	switch n := e.(type) {
	case *minicc.Ident:
		sym := n.Sym
		switch sym.Kind {
		case minicc.SymGlobal:
			f.addrConst(sym.GlobalAddr)
			return nil
		case minicc.SymLocal, minicc.SymParam:
			if f.inFrame[sym] {
				f.pushFrameAddr(sym)
				return nil
			}
		}
		return fmt.Errorf("codegen: cannot take address of register variable %q", sym.Name)
	case *minicc.Index:
		return f.indexAddr(n)
	case *minicc.Member:
		off, err := f.memberAddr(n)
		if err != nil {
			return err
		}
		if off != 0 {
			f.addrConst(off)
			f.addrAdd()
		}
		return nil
	case *minicc.Unary:
		if n.Op == "*" {
			_, err := f.value(n.X)
			return err
		}
	}
	return fmt.Errorf("codegen: cannot take address of %T", e)
}

// value emits e and returns the MiniC type it leaves on the stack
// (arrays decay to element pointers).
func (f *fnGen) value(e minicc.Expr) (*minicc.Type, error) {
	switch n := e.(type) {
	case *minicc.IntLit:
		if f.widthClass(n.Type()) == wasm.I64 {
			f.emit(wasm.I64Const(n.Val))
		} else {
			f.emit(wasm.I32Const(int32(n.Val)))
		}
		return n.Type(), nil
	case *minicc.FloatLit:
		f.emit(wasm.F64Const(n.Val))
		return minicc.TypeDouble, nil
	case *minicc.StrLit:
		f.addrConst(f.g.internString(n.Val))
		return minicc.PtrTo(minicc.TypeChar), nil
	case *minicc.Ident:
		sym := n.Sym
		switch sym.Kind {
		case minicc.SymFunc:
			return f.funcRef(sym)
		case minicc.SymExtern:
			return nil, fmt.Errorf("codegen: cannot take the value of extern %q", sym.Name)
		}
		if sym.Type.Kind == minicc.KArray || sym.Type.Kind == minicc.KStruct {
			if err := f.aggregateAddr(n); err != nil {
				return nil, err
			}
			return sym.Type.Decay(), nil
		}
		p, err := f.placeOf(n)
		if err != nil {
			return nil, err
		}
		f.loadPlace(p)
		return sym.Type, nil
	case *minicc.Unary:
		return f.unary(n)
	case *minicc.Postfix:
		return f.incDec(n.X, n.Op, false, true)
	case *minicc.Binary:
		return f.binary(n)
	case *minicc.Assign:
		return f.assign(n, true)
	case *minicc.Cond:
		if err := f.cond(n.C); err != nil {
			return nil, err
		}
		rt := n.Type()
		bt := wasm.BlockType(map[wasm.ValType]wasm.BlockType{
			wasm.I32: wasm.BlockI32, wasm.I64: wasm.BlockI64,
			wasm.F32: wasm.BlockF32, wasm.F64: wasm.BlockF64,
		}[f.widthClass(rt)])
		f.open(wasm.If(bt))
		if err := f.exprAs(n.T, rt); err != nil {
			return nil, err
		}
		f.emit(wasm.Else())
		if err := f.exprAs(n.F, rt); err != nil {
			return nil, err
		}
		f.close()
		return rt, nil
	case *minicc.Index:
		if n.Type().Kind == minicc.KArray || n.Type().Kind == minicc.KStruct {
			if err := f.indexAddr(n); err != nil {
				return nil, err
			}
			return n.Type().Decay(), nil
		}
		if err := f.indexAddr(n); err != nil {
			return nil, err
		}
		f.emit(wasm.Load(f.loadOp(n.Type()), 0))
		return n.Type(), nil
	case *minicc.Member:
		if n.Type().Kind == minicc.KArray || n.Type().Kind == minicc.KStruct {
			if err := f.aggregateAddr(n); err != nil {
				return nil, err
			}
			return n.Type().Decay(), nil
		}
		off, err := f.memberAddr(n)
		if err != nil {
			return nil, err
		}
		f.emit(wasm.Load(f.loadOp(n.Type()), off))
		return n.Type(), nil
	case *minicc.Call:
		return f.call(n)
	case *minicc.Cast:
		produced, err := f.value(n.X)
		if err != nil {
			return nil, err
		}
		f.convert(produced, n.To)
		return n.To, nil
	case *minicc.SizeofExpr:
		t := n.OfType
		if t == nil {
			t = n.OfExpr.Type()
		}
		if f.widthClass(minicc.TypeLong) == wasm.I64 {
			f.emit(wasm.I64Const(f.g.layout.Size(t)))
		} else {
			f.emit(wasm.I32Const(int32(f.g.layout.Size(t))))
		}
		return minicc.TypeLong, nil
	}
	return nil, fmt.Errorf("codegen: unhandled expression %T", e)
}

// funcRef pushes a function pointer value, signing it under the
// pointer-auth pass (paper Fig. 9: table index zero-extended, then
// signed).
func (f *fnGen) funcRef(sym *minicc.Symbol) (*minicc.Type, error) {
	slot := f.g.tableSlot(sym)
	if f.g.opts.Wasm64 {
		f.emit(wasm.I64Const(int64(slot)))
		if f.g.opts.PtrAuth {
			f.emit(wasm.PointerSign())
			f.fn.UsesFnPtrs = true
		}
	} else {
		f.emit(wasm.I32Const(slot))
	}
	return sym.Type, nil
}

func (f *fnGen) unary(n *minicc.Unary) (*minicc.Type, error) {
	switch n.Op {
	case "-":
		t := n.Type()
		switch f.widthClass(t) {
		case wasm.F64:
			if _, err := f.value(n.X); err != nil {
				return nil, err
			}
			f.emit(wasm.Op(wasm.OpF64Neg))
		case wasm.F32:
			if _, err := f.value(n.X); err != nil {
				return nil, err
			}
			f.emit(wasm.Op(wasm.OpF32Neg))
		case wasm.I64:
			f.emit(wasm.I64Const(0))
			if err := f.exprAs(n.X, t); err != nil {
				return nil, err
			}
			f.emit(wasm.Op(wasm.OpI64Sub))
		default:
			f.emit(wasm.I32Const(0))
			if err := f.exprAs(n.X, t); err != nil {
				return nil, err
			}
			f.emit(wasm.Op(wasm.OpI32Sub))
		}
		return t, nil
	case "~":
		t := n.Type()
		if err := f.exprAs(n.X, t); err != nil {
			return nil, err
		}
		if f.widthClass(t) == wasm.I64 {
			f.emit(wasm.I64Const(-1), wasm.Op(wasm.OpI64Xor))
		} else {
			f.emit(wasm.I32Const(-1), wasm.Op(wasm.OpI32Xor))
		}
		return t, nil
	case "!":
		if err := f.cond(n.X); err != nil {
			return nil, err
		}
		f.emit(wasm.Op(wasm.OpI32Eqz))
		return minicc.TypeInt, nil
	case "*":
		if n.Type().Kind == minicc.KArray || n.Type().Kind == minicc.KStruct {
			if _, err := f.value(n.X); err != nil {
				return nil, err
			}
			return n.Type().Decay(), nil
		}
		if _, err := f.value(n.X); err != nil {
			return nil, err
		}
		f.emit(wasm.Load(f.loadOp(n.Type()), 0))
		return n.Type(), nil
	case "&":
		// Address of a function is the function pointer itself.
		if id, ok := n.X.(*minicc.Ident); ok && id.Sym != nil && id.Sym.Kind == minicc.SymFunc {
			return f.funcRef(id.Sym)
		}
		if agg := n.X.Type(); agg.Kind == minicc.KArray || agg.Kind == minicc.KStruct {
			if err := f.aggregateAddr(n.X); err != nil {
				return nil, err
			}
			return n.Type(), nil
		}
		p, err := f.placeOf(n.X)
		if err != nil {
			return nil, err
		}
		if p.isLocal {
			return nil, fmt.Errorf("codegen: address of register variable")
		}
		if p.offset != 0 {
			f.addrConst(p.offset)
			f.addrAdd()
		}
		return n.Type(), nil
	case "++", "--":
		return f.incDec(n.X, n.Op, true, true)
	}
	return nil, fmt.Errorf("codegen: unhandled unary %q", n.Op)
}

// incDec lowers ++/-- (pre or post); withValue keeps a result.
func (f *fnGen) incDec(lhs minicc.Expr, op string, pre, withValue bool) (*minicc.Type, error) {
	t := lhs.Type()
	step := int64(1)
	if t.IsPtr() {
		step = f.g.layout.Size(t.Elem)
	}
	addOp, subOp := wasm.OpI32Add, wasm.OpI32Sub
	isF32, isF64 := false, false
	switch f.widthClass(t) {
	case wasm.I64:
		addOp, subOp = wasm.OpI64Add, wasm.OpI64Sub
	case wasm.F32:
		addOp, subOp, isF32 = wasm.OpF32Add, wasm.OpF32Sub, true
	case wasm.F64:
		addOp, subOp, isF64 = wasm.OpF64Add, wasm.OpF64Sub, true
	}
	theOp := addOp
	if op == "--" {
		theOp = subOp
	}
	pushStep := func() {
		switch {
		case isF64:
			f.emit(wasm.F64Const(1))
		case isF32:
			f.emit(wasm.F32Const(1))
		case f.widthClass(t) == wasm.I64:
			f.emit(wasm.I64Const(step))
		default:
			f.emit(wasm.I32Const(int32(step)))
		}
	}

	p, err := f.placeOf(lhs)
	if err != nil {
		return nil, err
	}
	if p.isLocal {
		f.emit(wasm.LocalGet(p.local))
		if withValue && !pre {
			f.emit(wasm.LocalGet(p.local))
		}
		pushStep()
		f.emit(wasm.Op(theOp))
		if withValue && pre {
			f.emit(wasm.LocalTee(p.local))
		} else {
			f.emit(wasm.LocalSet(p.local))
		}
		if withValue && !pre {
			// Old value is on the stack under nothing: already in place.
		}
		return t, nil
	}
	// Memory place: stash the address.
	sa := f.scratchLocal(f.g.addrType)
	f.emit(wasm.LocalSet(sa))
	f.emit(wasm.LocalGet(sa))
	f.emit(wasm.LocalGet(sa))
	f.emit(wasm.Load(f.loadOp(p.typ), p.offset))
	sv := f.scratchLocal(f.widthClass(t))
	if withValue && !pre {
		f.emit(wasm.LocalTee(sv))
	}
	pushStep()
	f.emit(wasm.Op(theOp))
	if withValue && pre {
		f.emit(wasm.LocalTee(sv))
	}
	f.emit(wasm.Store(f.storeOp(p.typ), p.offset))
	if withValue {
		f.emit(wasm.LocalGet(sv))
	}
	return t, nil
}

func (f *fnGen) binary(n *minicc.Binary) (*minicc.Type, error) {
	xt, yt := n.X.Type().Decay(), n.Y.Type().Decay()
	switch n.Op {
	case "&&":
		if err := f.cond(n.X); err != nil {
			return nil, err
		}
		f.open(wasm.If(wasm.BlockI32))
		if err := f.cond(n.Y); err != nil {
			return nil, err
		}
		f.emit(wasm.Op(wasm.OpI32Eqz), wasm.Op(wasm.OpI32Eqz)) // normalize to 0/1
		f.emit(wasm.Else())
		f.emit(wasm.I32Const(0))
		f.close()
		return minicc.TypeInt, nil
	case "||":
		if err := f.cond(n.X); err != nil {
			return nil, err
		}
		f.open(wasm.If(wasm.BlockI32))
		f.emit(wasm.I32Const(1))
		f.emit(wasm.Else())
		if err := f.cond(n.Y); err != nil {
			return nil, err
		}
		f.emit(wasm.Op(wasm.OpI32Eqz), wasm.Op(wasm.OpI32Eqz))
		f.close()
		return minicc.TypeInt, nil
	}

	// Pointer arithmetic.
	if (n.Op == "+" || n.Op == "-") && xt.IsPtr() && yt.IsInteger() {
		if _, err := f.value(n.X); err != nil {
			return nil, err
		}
		if err := f.scaledIndex(n.Y, f.g.layout.Size(xt.Elem)); err != nil {
			return nil, err
		}
		if n.Op == "+" {
			f.addrAdd()
		} else if f.g.opts.Wasm64 {
			f.emit(wasm.Op(wasm.OpI64Sub))
		} else {
			f.emit(wasm.Op(wasm.OpI32Sub))
		}
		return xt, nil
	}
	if n.Op == "+" && xt.IsInteger() && yt.IsPtr() {
		if err := f.scaledIndex(n.X, f.g.layout.Size(yt.Elem)); err != nil {
			return nil, err
		}
		if _, err := f.value(n.Y); err != nil {
			return nil, err
		}
		f.addrAdd()
		return yt, nil
	}
	if n.Op == "-" && xt.IsPtr() && yt.IsPtr() {
		if _, err := f.value(n.X); err != nil {
			return nil, err
		}
		if _, err := f.value(n.Y); err != nil {
			return nil, err
		}
		elem := f.g.layout.Size(xt.Elem)
		if f.g.opts.Wasm64 {
			f.emit(wasm.Op(wasm.OpI64Sub))
			if elem > 1 {
				f.emit(wasm.I64Const(elem), wasm.Op(wasm.OpI64DivS))
			}
		} else {
			f.emit(wasm.Op(wasm.OpI32Sub))
			if elem > 1 {
				f.emit(wasm.I32Const(int32(elem)), wasm.Op(wasm.OpI32DivS))
			}
		}
		return minicc.TypeLong, nil
	}

	// Comparisons.
	if isCmp(n.Op) {
		var common *minicc.Type
		switch {
		case xt.IsPtr() || yt.IsPtr() || xt.Kind == minicc.KFunc || yt.Kind == minicc.KFunc:
			common = minicc.TypeULong
			if !f.g.opts.Wasm64 {
				common = minicc.TypeUInt
			}
		default:
			common = minicc.CommonArith(xt, yt)
		}
		if err := f.exprAs(n.X, common); err != nil {
			return nil, err
		}
		if err := f.exprAs(n.Y, common); err != nil {
			return nil, err
		}
		f.emit(wasm.Op(cmpOpcode(n.Op, common, f.widthClass(common))))
		return minicc.TypeInt, nil
	}

	// Plain arithmetic / bitwise / shifts.
	common := n.Type()
	if err := f.exprAs(n.X, common); err != nil {
		return nil, err
	}
	if err := f.exprAs(n.Y, common); err != nil {
		return nil, err
	}
	op, err := arithOpcode(n.Op, common, f.widthClass(common))
	if err != nil {
		return nil, err
	}
	f.emit(wasm.Op(op))
	return common, nil
}

// scaledIndex emits idx (pointer-width) scaled by elem bytes.
func (f *fnGen) scaledIndex(idx minicc.Expr, elem int64) error {
	ptrIdx := minicc.TypeLong
	if !f.g.opts.Wasm64 {
		ptrIdx = minicc.TypeInt
	}
	if err := f.exprAs(idx, ptrIdx); err != nil {
		return err
	}
	if elem != 1 {
		f.addrConst(uint64(elem))
		if f.g.opts.Wasm64 {
			f.emit(wasm.Op(wasm.OpI64Mul))
		} else {
			f.emit(wasm.Op(wasm.OpI32Mul))
		}
	}
	return nil
}

func isCmp(op string) bool {
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		return true
	}
	return false
}

func cmpOpcode(op string, t *minicc.Type, w wasm.ValType) wasm.Opcode {
	u := t.Unsigned || t.IsPtr()
	type pair struct{ s, uo wasm.Opcode }
	var table map[string]pair
	switch w {
	case wasm.I32:
		table = map[string]pair{
			"==": {wasm.OpI32Eq, wasm.OpI32Eq}, "!=": {wasm.OpI32Ne, wasm.OpI32Ne},
			"<": {wasm.OpI32LtS, wasm.OpI32LtU}, ">": {wasm.OpI32GtS, wasm.OpI32GtU},
			"<=": {wasm.OpI32LeS, wasm.OpI32LeU}, ">=": {wasm.OpI32GeS, wasm.OpI32GeU},
		}
	case wasm.I64:
		table = map[string]pair{
			"==": {wasm.OpI64Eq, wasm.OpI64Eq}, "!=": {wasm.OpI64Ne, wasm.OpI64Ne},
			"<": {wasm.OpI64LtS, wasm.OpI64LtU}, ">": {wasm.OpI64GtS, wasm.OpI64GtU},
			"<=": {wasm.OpI64LeS, wasm.OpI64LeU}, ">=": {wasm.OpI64GeS, wasm.OpI64GeU},
		}
	case wasm.F32:
		table = map[string]pair{
			"==": {wasm.OpF32Eq, wasm.OpF32Eq}, "!=": {wasm.OpF32Ne, wasm.OpF32Ne},
			"<": {wasm.OpF32Lt, wasm.OpF32Lt}, ">": {wasm.OpF32Gt, wasm.OpF32Gt},
			"<=": {wasm.OpF32Le, wasm.OpF32Le}, ">=": {wasm.OpF32Ge, wasm.OpF32Ge},
		}
	default:
		table = map[string]pair{
			"==": {wasm.OpF64Eq, wasm.OpF64Eq}, "!=": {wasm.OpF64Ne, wasm.OpF64Ne},
			"<": {wasm.OpF64Lt, wasm.OpF64Lt}, ">": {wasm.OpF64Gt, wasm.OpF64Gt},
			"<=": {wasm.OpF64Le, wasm.OpF64Le}, ">=": {wasm.OpF64Ge, wasm.OpF64Ge},
		}
	}
	p := table[op]
	if u {
		return p.uo
	}
	return p.s
}

func arithOpcode(op string, t *minicc.Type, w wasm.ValType) (wasm.Opcode, error) {
	u := t.Unsigned
	switch w {
	case wasm.I32:
		switch op {
		case "+":
			return wasm.OpI32Add, nil
		case "-":
			return wasm.OpI32Sub, nil
		case "*":
			return wasm.OpI32Mul, nil
		case "/":
			if u {
				return wasm.OpI32DivU, nil
			}
			return wasm.OpI32DivS, nil
		case "%":
			if u {
				return wasm.OpI32RemU, nil
			}
			return wasm.OpI32RemS, nil
		case "&":
			return wasm.OpI32And, nil
		case "|":
			return wasm.OpI32Or, nil
		case "^":
			return wasm.OpI32Xor, nil
		case "<<":
			return wasm.OpI32Shl, nil
		case ">>":
			if u {
				return wasm.OpI32ShrU, nil
			}
			return wasm.OpI32ShrS, nil
		}
	case wasm.I64:
		switch op {
		case "+":
			return wasm.OpI64Add, nil
		case "-":
			return wasm.OpI64Sub, nil
		case "*":
			return wasm.OpI64Mul, nil
		case "/":
			if u {
				return wasm.OpI64DivU, nil
			}
			return wasm.OpI64DivS, nil
		case "%":
			if u {
				return wasm.OpI64RemU, nil
			}
			return wasm.OpI64RemS, nil
		case "&":
			return wasm.OpI64And, nil
		case "|":
			return wasm.OpI64Or, nil
		case "^":
			return wasm.OpI64Xor, nil
		case "<<":
			return wasm.OpI64Shl, nil
		case ">>":
			if u {
				return wasm.OpI64ShrU, nil
			}
			return wasm.OpI64ShrS, nil
		}
	case wasm.F32:
		switch op {
		case "+":
			return wasm.OpF32Add, nil
		case "-":
			return wasm.OpF32Sub, nil
		case "*":
			return wasm.OpF32Mul, nil
		case "/":
			return wasm.OpF32Div, nil
		}
	case wasm.F64:
		switch op {
		case "+":
			return wasm.OpF64Add, nil
		case "-":
			return wasm.OpF64Sub, nil
		case "*":
			return wasm.OpF64Mul, nil
		case "/":
			return wasm.OpF64Div, nil
		}
	}
	return 0, fmt.Errorf("codegen: no opcode for %q on %v", op, t)
}

// assign lowers an assignment; withValue keeps the stored value.
func (f *fnGen) assign(n *minicc.Assign, withValue bool) (*minicc.Type, error) {
	lt := n.LHS.Type()
	p, err := f.placeOf(n.LHS)
	if err != nil {
		return nil, err
	}
	if p.isLocal {
		if n.Op == "=" {
			if err := f.exprAs(n.RHS, lt); err != nil {
				return nil, err
			}
		} else {
			if err := f.compoundValue(n, p, lt); err != nil {
				return nil, err
			}
		}
		if withValue {
			f.emit(wasm.LocalTee(p.local))
		} else {
			f.emit(wasm.LocalSet(p.local))
		}
		return lt, nil
	}
	// Memory place.
	if n.Op != "=" {
		sa := f.scratchLocal(f.g.addrType)
		f.emit(wasm.LocalSet(sa))
		f.emit(wasm.LocalGet(sa))
		f.emit(wasm.LocalGet(sa))
		f.emit(wasm.Load(f.loadOp(p.typ), p.offset))
		if err := f.compoundRHS(n, lt); err != nil {
			return nil, err
		}
	} else {
		if err := f.exprAs(n.RHS, lt); err != nil {
			return nil, err
		}
	}
	if withValue {
		sv := f.scratchLocal(f.widthClass(lt))
		f.emit(wasm.LocalTee(sv))
		f.emit(wasm.Store(f.storeOp(p.typ), p.offset))
		f.emit(wasm.LocalGet(sv))
	} else {
		f.emit(wasm.Store(f.storeOp(p.typ), p.offset))
	}
	return lt, nil
}

// compoundValue computes "local <op>= rhs" leaving the new value.
func (f *fnGen) compoundValue(n *minicc.Assign, p place, lt *minicc.Type) error {
	f.emit(wasm.LocalGet(p.local))
	return f.compoundRHS(n, lt)
}

// compoundRHS, with the old LHS value on the stack, applies op= rhs.
func (f *fnGen) compoundRHS(n *minicc.Assign, lt *minicc.Type) error {
	op := n.Op[:len(n.Op)-1] // strip '='
	// Pointer += integer scales.
	if lt.IsPtr() && (op == "+" || op == "-") {
		if err := f.scaledIndex(n.RHS, f.g.layout.Size(lt.Elem)); err != nil {
			return err
		}
		if op == "+" {
			f.addrAdd()
		} else if f.g.opts.Wasm64 {
			f.emit(wasm.Op(wasm.OpI64Sub))
		} else {
			f.emit(wasm.Op(wasm.OpI32Sub))
		}
		return nil
	}
	if err := f.exprAs(n.RHS, lt); err != nil {
		return err
	}
	wop, err := arithOpcode(op, lt, f.widthClass(lt))
	if err != nil {
		return err
	}
	f.emit(wasm.Op(wop))
	return nil
}

// exprForEffect evaluates e for side effects; the result reports
// whether a value was left on the stack (caller must drop it).
func (f *fnGen) exprForEffect(e minicc.Expr) (bool, error) {
	switch n := e.(type) {
	case *minicc.Assign:
		_, err := f.assign(n, false)
		return false, err
	case *minicc.Postfix:
		_, err := f.incDec(n.X, n.Op, false, false)
		return false, err
	case *minicc.Unary:
		if n.Op == "++" || n.Op == "--" {
			_, err := f.incDec(n.X, n.Op, true, false)
			return false, err
		}
	case *minicc.Call:
		t, err := f.call(n)
		if err != nil {
			return false, err
		}
		return t != minicc.TypeVoid, nil
	}
	_, err := f.value(e)
	if err != nil {
		return false, err
	}
	return e.Type() != minicc.TypeVoid, nil
}

// call lowers direct, builtin, and indirect calls.
func (f *fnGen) call(n *minicc.Call) (*minicc.Type, error) {
	// Cage builtins map 1:1 to extension instructions (paper §6.1).
	if n.Builtin != "" {
		for i, a := range n.Args {
			want := builtinParam(n.Builtin, i)
			if err := f.exprAs(a, want); err != nil {
				return nil, err
			}
		}
		switch n.Builtin {
		case "__builtin_segment_new":
			f.emit(wasm.SegmentNew(0))
		case "__builtin_segment_set_tag":
			f.emit(wasm.SegmentSetTag(0))
		case "__builtin_segment_free":
			f.emit(wasm.SegmentFree(0))
		case "__builtin_pointer_sign":
			f.emit(wasm.PointerSign())
		case "__builtin_pointer_auth":
			f.emit(wasm.PointerAuth())
		}
		return n.Type(), nil
	}
	// Direct call to a known function or extern.
	if id, ok := n.Fun.(*minicc.Ident); ok && id.Sym != nil &&
		(id.Sym.Kind == minicc.SymFunc || id.Sym.Kind == minicc.SymExtern) {
		sig := id.Sym.Sig
		for i, a := range n.Args {
			if err := f.exprAs(a, sig.Params[i]); err != nil {
				return nil, err
			}
		}
		f.emit(wasm.Call(f.g.funcIdx[id.Sym]))
		return sig.Ret, nil
	}
	// Indirect call through a function pointer (paper Fig. 9): the
	// signed 64-bit pointer is authenticated, truncated to 32 bits, and
	// dispatched through the type-checked table.
	ft := n.Fun.Type()
	if ft.Kind == minicc.KPtr {
		ft = ft.Elem
	}
	sig := ft.Sig
	for i, a := range n.Args {
		if err := f.exprAs(a, sig.Params[i]); err != nil {
			return nil, err
		}
	}
	if _, err := f.value(n.Fun); err != nil {
		return nil, err
	}
	if f.g.opts.Wasm64 {
		if f.g.opts.PtrAuth {
			f.emit(wasm.PointerAuth())
			f.fn.UsesFnPtrs = true
		}
		f.emit(wasm.Op(wasm.OpI32WrapI64))
	}
	f.emit(wasm.CallIndirect(f.g.m.AddType(f.g.wasmSig(sig))))
	return sig.Ret, nil
}

// builtinParam gives the expected MiniC type of a builtin argument.
func builtinParam(name string, i int) *minicc.Type {
	switch name {
	case "__builtin_segment_new", "__builtin_segment_free":
		if i == 0 {
			return minicc.PtrTo(minicc.TypeChar)
		}
		return minicc.TypeLong
	case "__builtin_segment_set_tag":
		if i < 2 {
			return minicc.PtrTo(minicc.TypeChar)
		}
		return minicc.TypeLong
	default:
		return minicc.PtrTo(minicc.TypeChar)
	}
}

// constValue evaluates a constant initializer to raw bits.
func (g *gen) constValue(e minicc.Expr, to *minicc.Type) (bits uint64, width int64, ok bool) {
	width = g.layout.Size(to)
	switch n := e.(type) {
	case *minicc.IntLit:
		v := n.Val
		if to.IsFloat() {
			return floatBits(float64(v), to), width, true
		}
		return uint64(v), width, true
	case *minicc.FloatLit:
		if to.IsFloat() {
			return floatBits(n.Val, to), width, true
		}
		return uint64(int64(n.Val)), width, true
	case *minicc.Unary:
		if n.Op == "-" {
			b, _, ok2 := g.constValue(n.X, to)
			if !ok2 {
				return 0, 0, false
			}
			if to.IsFloat() {
				return floatBits(-floatFromBits(b, to), to), width, true
			}
			return uint64(-int64(b)), width, true
		}
	}
	return 0, 0, false
}

func floatBits(v float64, t *minicc.Type) uint64 {
	if t.Kind == minicc.KFloat {
		return uint64(wasm.F32ConstBits(float32(v)))
	}
	return wasm.F64Bits(v)
}

func floatFromBits(b uint64, t *minicc.Type) float64 {
	if t.Kind == minicc.KFloat {
		return float64(wasm.F32FromBits(uint32(b)))
	}
	return wasm.F64FromBits(b)
}
