package exec

import (
	"encoding/binary"
	"math"
	"math/bits"

	"cage/internal/arch"
	"cage/internal/mte"
	"cage/internal/ptrlayout"
	"cage/internal/vmem"
	"cage/internal/wasm"
)

// This file holds the opcode semantics shared by the frame machine
// (frame.go) and the legacy oracle (legacy.go): address
// translation per sandboxing strategy, scalar memory access, bulk
// memory operations, Cage segment instructions, and the numeric ALU.
// The stack-consuming helpers take the operand stack as a value slice
// and return its new height, so callers that keep the stack in the
// contiguous value arena (the frame machine) and callers that keep a
// private slice (the oracle) share one implementation.

// addrG32 is the wasm32 guard-page strategy: 4 GiB reservation + guard
// pages; no per-access cost. The Go-level check stands in for the MMU.
// limit is the guest size normally, the whole host mapping when the
// bounds lowering is (deliberately) buggy.
func (inst *Instance) addrG32(idx, offset, size, limit uint64) (uint64, error) {
	addr := uint64(uint32(idx)) + offset
	if addr+size > limit || addr+size < addr {
		return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d (guard page)", addr, size)
	}
	return addr, nil
}

// addrB64 is the wasm64 software strategy: an explicit bounds check
// (skipped by the buggy-lowering demo, which then only faults at the
// host mapping), plus the MTE memory-safety tag check when enabled.
func (inst *Instance) addrB64(idx, offset, size uint64, write, check, tagCheck bool) (uint64, error) {
	ctr := inst.counter
	if write {
		inst.memDirty = true
	}
	full := idx + offset
	tag := ptrlayout.Tag(full)
	addr := ptrlayout.Address(ptrlayout.StripTag(full))
	if check {
		ctr.Add(arch.EvBoundsCheck, 1)
		if addr+size > inst.memSize || addr+size < addr {
			return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d >= 0x%x", addr, size, inst.memSize)
		}
	} else if addr+size > uint64(len(inst.mem)) || addr+size < addr {
		return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d (host fault)", addr, size)
	}
	if tagCheck {
		if write {
			ctr.Add(arch.EvTagCheckStore, 1)
		} else {
			ctr.Add(arch.EvTagCheckLoad, 1)
		}
		if err := inst.tags.CheckAccess(addr, size, tag, write); err != nil {
			return 0, newTrap(TrapTagMismatch, "%v", err)
		}
	}
	return addr, nil
}

// addrMTE is Cage's MTE-based sandboxing (Fig. 12b / Fig. 13): mask the
// untrusted index (unless the demo drops the mask), add the tagged heap
// base, and let the tag check catch any escape.
func (inst *Instance) addrMTE(idx, offset, size uint64, write, mask bool) (uint64, error) {
	ctr := inst.counter
	if write {
		inst.memDirty = true
	}
	masked := idx
	if mask {
		ctr.Add(arch.EvMask, 1)
		masked = inst.policy.MaskIndex(idx)
	}
	full := inst.heapBase + masked + offset
	tag := ptrlayout.Tag(full)
	addr := ptrlayout.Address(ptrlayout.StripTag(full))
	if write {
		ctr.Add(arch.EvTagCheckStore, 1)
	} else {
		ctr.Add(arch.EvTagCheckLoad, 1)
	}
	// Addresses beyond the mapped region belong to the runtime: the
	// tag memory reports tag 0 there, so the check below faults.
	if addr+size > uint64(len(inst.mem)) || addr+size < addr {
		return 0, newTrap(TrapTagMismatch,
			"sandbox violation: address 0x%x outside mapped memory (runtime tag 0, pointer tag %#x)", addr, tag)
	}
	if err := inst.tags.CheckAccess(addr, size, tag, write); err != nil {
		return 0, newTrap(TrapTagMismatch, "%v", err)
	}
	return addr, nil
}

// effectiveAddr applies the instance's sandboxing strategy to a guest
// index and access size, returning the in-bounds physical offset. It is
// the un-specialized path used by bulk/host operations (memory.fill,
// memory.copy, the hardened allocator); guest loads and stores run the
// specialized lowered opcodes instead, which call the same per-mode
// helpers, so the semantics cannot drift apart.
func (inst *Instance) effectiveAddr(idx, offset, size uint64, write bool) (uint64, error) {
	if write {
		inst.memDirty = true
	}
	switch inst.strategy {
	case stratGuard32:
		limit := inst.memSize
		if inst.skipBounds {
			limit = uint64(len(inst.mem)) // buggy lowering reaches host data
		}
		return inst.addrG32(idx, offset, size, limit)
	case stratBounds64:
		return inst.addrB64(idx, offset, size, write, !inst.skipBounds, inst.features.MemSafety)
	default: // stratMTE64, Fig. 12b / Fig. 13
		return inst.addrMTE(idx, offset, size, write, !inst.skipBounds)
	}
}

// readScalar reads a little-endian scalar of the given width.
func readScalar(mem []byte, addr, size uint64) uint64 {
	var raw uint64
	for i := uint64(0); i < size; i++ {
		raw |= uint64(mem[addr+i]) << (8 * i)
	}
	return raw
}

// writeScalar writes a little-endian scalar of the given width.
func writeScalar(mem []byte, addr, size, val uint64) {
	for i := uint64(0); i < size; i++ {
		mem[addr+i] = byte(val >> (8 * i))
	}
}

// readScalarFast is readScalar as single whole-width accesses. Only the
// frame machine's guard and fused handlers use it: the legacy oracle
// keeps the byte loop, so the dispatch-tier benchmarks price the real
// historical baseline, not a retro-optimized one.
func readScalarFast(mem []byte, addr, size uint64) uint64 {
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(mem[addr:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(mem[addr:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(mem[addr:]))
	default:
		return uint64(mem[addr])
	}
}

// writeScalarFast is writeScalar as single whole-width accesses; see
// readScalarFast for where it may be used.
func writeScalarFast(mem []byte, addr, size, val uint64) {
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(mem[addr:], val)
	case 4:
		binary.LittleEndian.PutUint32(mem[addr:], uint32(val))
	case 2:
		binary.LittleEndian.PutUint16(mem[addr:], uint16(val))
	default:
		mem[addr] = byte(val)
	}
}

// extendLoad applies a load opcode's sign/zero extension to raw bytes.
func extendLoad(op wasm.Opcode, raw uint64) uint64 {
	switch op {
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(raw))))
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return raw & 0xFF
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(raw))))
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return raw & 0xFFFF
	case wasm.OpI64Load8S:
		return uint64(int64(int8(raw)))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(raw)))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(raw)))
	default:
		// Full-width and unsigned 32-bit loads: the raw bits.
		return raw
	}
}

// memoryGrow grows the guest memory by delta pages, returning the old
// page count or ^0 on failure.
func (inst *Instance) memoryGrow(deltaPages uint64) uint64 {
	oldPages := inst.memSize / wasm.PageSize
	newPages := oldPages + deltaPages
	if newPages < oldPages {
		// Guest-controlled 64-bit delta wrapped the page count; a wrap
		// would bypass every cap below and shrink memory.
		return ^uint64(0)
	}
	if inst.memType.Limits.HasMax && newPages > inst.memType.Limits.Max {
		return ^uint64(0)
	}
	if deltaPages != 0 && inst.memLimitPages != 0 && newPages > inst.memLimitPages {
		// Per-call cap (CallOptions.MemoryLimitPages): fail the grow the
		// same way an exceeded declared maximum does. A zero-delta grow
		// (the size-query idiom) always succeeds, per wasm semantics,
		// even under a cap below the current size.
		return ^uint64(0)
	}
	if newPages > 1<<32 { // 256 TiB cap to keep the simulation sane
		return ^uint64(0)
	}
	if inst.gmap != nil {
		// Guard-region backend: growth is an mprotect on the reservation,
		// never a reallocation, so gmem (and every guard handler's view of
		// it) stays valid. wasm32 page counts cannot exceed the guest
		// limit, but guard against drift defensively.
		newSize := newPages * wasm.PageSize
		if newSize > vmem.GuestLimit {
			return ^uint64(0)
		}
		if err := inst.gmap.SetCommitted(newSize); err != nil {
			return ^uint64(0)
		}
		inst.mem = inst.gmem[:newSize]
		inst.memSize = newSize
		inst.memDirty = true
		return oldPages
	}
	hostLen := uint64(len(inst.mem)) - inst.memSize
	newSize := newPages * wasm.PageSize
	grown := make([]byte, newSize+hostLen)
	copy(grown, inst.mem[:inst.memSize])
	copy(grown[newSize:], inst.mem[inst.memSize:])
	inst.mem = grown
	inst.memDirty = true
	oldSize := inst.memSize
	inst.memSize = newSize
	if inst.tags != nil {
		inst.tags.Grow(newSize + hostLen)
		if inst.features.Sandbox && newSize > oldSize {
			// New pages join the sandbox.
			if err := inst.tags.SetTagRange(oldSize, newSize-oldSize, inst.sandbox); err == nil {
				inst.counter.Add(arch.EvSTGGranule, (newSize-oldSize)/mte.GranuleSize)
			}
		}
	}
	// The grown buffer (and the grown tag array) replaced every
	// reference into a copy-on-write view; release it.
	inst.releaseMapping()
	return oldPages
}

// memoryFill pops (dst, val, n) off the operand stack s and fills guest
// memory; it returns the stack's new height.
func (inst *Instance) memoryFill(s []uint64) (int, error) {
	n := s[len(s)-1]
	val := byte(s[len(s)-2])
	dst := s[len(s)-3]
	h := len(s) - 3
	if n == 0 {
		return h, nil
	}
	// Streamed as 8-byte stores for cost purposes.
	inst.counter.Add(arch.EvStore, (n+7)/8)
	addr, err := inst.effectiveAddr(dst, 0, n, true)
	if err != nil {
		return h, err
	}
	for i := uint64(0); i < n; i++ {
		inst.mem[addr+i] = val
	}
	return h, nil
}

// memoryCopy pops (dst, src, n) off the operand stack s and copies guest
// memory; it returns the stack's new height.
func (inst *Instance) memoryCopy(s []uint64) (int, error) {
	n := s[len(s)-1]
	src := s[len(s)-2]
	dst := s[len(s)-3]
	h := len(s) - 3
	if n == 0 {
		return h, nil
	}
	inst.counter.Add(arch.EvLoad, (n+7)/8)
	inst.counter.Add(arch.EvStore, (n+7)/8)
	srcAddr, err := inst.effectiveAddr(src, 0, n, false)
	if err != nil {
		return h, err
	}
	dstAddr, err := inst.effectiveAddr(dst, 0, n, true)
	if err != nil {
		return h, err
	}
	copy(inst.mem[dstAddr:dstAddr+n], inst.mem[srcAddr:srcAddr+n])
	return h, nil
}

// Segment instruction implementations. Without the memory-safety
// feature they degrade gracefully: segment.new returns its pointer
// unchanged and the others are no-ops, matching Cage's software-fallback
// deployment model (paper §4.1).

// guestTag translates a guest pointer's tag nibble into the physical
// tag under the combined internal+external split (Fig. 13b): the guest
// never controls the sandbox bit, so bit 56 is replaced by the
// instance's sandbox identity. Outside combined mode it is the identity.
func (inst *Instance) guestTag(ptr uint64) uint64 {
	if inst.strategy == stratMTE64 && inst.features.MemSafety {
		t := (ptrlayout.Tag(ptr) &^ 1) | inst.sandbox
		return ptrlayout.WithTag(ptr, t)
	}
	return ptr
}

func (inst *Instance) segmentNew(ptr, length, offset uint64) (uint64, error) {
	if !inst.features.MemSafety {
		return ptr + offset, nil
	}
	inst.counter.Add(arch.EvIRG, 1)
	before := inst.segs.GranulesTagged
	tagged, err := inst.segs.New(ptr, length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return 0, newTrap(TrapSegment, "%v", err)
	}
	return tagged, nil
}

func (inst *Instance) segmentSetTag(ptr, tagged, length, offset uint64) error {
	if !inst.features.MemSafety {
		return nil
	}
	before := inst.segs.GranulesTagged
	err := inst.segs.SetTag(ptr, inst.guestTag(tagged), length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return newTrap(TrapSegment, "%v", err)
	}
	return nil
}

func (inst *Instance) segmentFree(tagged, length, offset uint64) error {
	if !inst.features.MemSafety {
		return nil
	}
	inst.counter.Add(arch.EvIRG, 1)
	before := inst.segs.GranulesTagged
	err := inst.segs.Free(inst.guestTag(tagged), length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return newTrap(TrapSegment, "%v", err)
	}
	return nil
}

// numeric executes the pure value instructions. s is the value slice
// holding the operand stack and sp the absolute index one past its top
// — the frame machine passes its arena and stack pointer directly, the
// legacy oracle its private stack and length — and the new top index is
// returned. The helpers are written against the entry top: setTop2
// writes the slot that becomes the new top after a binary op's
// single-value pop.
func (inst *Instance) numeric(op wasm.Opcode, s []uint64, sp int) (int, error) {
	ctr := inst.counter
	h := sp // top index on return

	top := func() *uint64 { return &s[sp-1] }
	pop2 := func() (uint64, uint64) {
		b := s[sp-1]
		a := s[sp-2]
		h = sp - 1
		return a, b
	}
	setTop2 := func(v uint64) { s[sp-2] = v }

	b32 := func(f func(a, b uint32) uint32) {
		ctr.Add(arch.EvALU, 1)
		a, b := pop2()
		setTop2(uint64(f(uint32(a), uint32(b))))
	}
	b64 := func(f func(a, b uint64) uint64) {
		ctr.Add(arch.EvALU, 1)
		a, b := pop2()
		setTop2(f(a, b))
	}
	cmp := func(f func(a, b uint64) bool) {
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		if f(a, b) {
			setTop2(1)
		} else {
			setTop2(0)
		}
	}
	f64bin := func(ev arch.Event, f func(a, b float64) float64) {
		ctr.Add(ev, 1)
		a, b := pop2()
		setTop2(math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b))))
	}
	f32bin := func(ev arch.Event, f func(a, b float32) float32) {
		ctr.Add(ev, 1)
		a, b := pop2()
		setTop2(uint64(math.Float32bits(f(
			math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))))))
	}
	f64un := func(ev arch.Event, f func(a float64) float64) {
		ctr.Add(ev, 1)
		t := top()
		*t = math.Float64bits(f(math.Float64frombits(*t)))
	}
	f32un := func(ev arch.Event, f func(a float32) float32) {
		ctr.Add(ev, 1)
		t := top()
		*t = uint64(math.Float32bits(f(math.Float32frombits(uint32(*t)))))
	}
	conv := func(f func(v uint64) uint64) {
		ctr.Add(arch.EvConv, 1)
		t := top()
		*t = f(*t)
	}

	switch op {
	// i32 compare / test.
	case wasm.OpI32Eqz:
		ctr.Add(arch.EvCmp, 1)
		t := top()
		if uint32(*t) == 0 {
			*t = 1
		} else {
			*t = 0
		}
	case wasm.OpI32Eq:
		cmp(func(a, b uint64) bool { return uint32(a) == uint32(b) })
	case wasm.OpI32Ne:
		cmp(func(a, b uint64) bool { return uint32(a) != uint32(b) })
	case wasm.OpI32LtS:
		cmp(func(a, b uint64) bool { return int32(a) < int32(b) })
	case wasm.OpI32LtU:
		cmp(func(a, b uint64) bool { return uint32(a) < uint32(b) })
	case wasm.OpI32GtS:
		cmp(func(a, b uint64) bool { return int32(a) > int32(b) })
	case wasm.OpI32GtU:
		cmp(func(a, b uint64) bool { return uint32(a) > uint32(b) })
	case wasm.OpI32LeS:
		cmp(func(a, b uint64) bool { return int32(a) <= int32(b) })
	case wasm.OpI32LeU:
		cmp(func(a, b uint64) bool { return uint32(a) <= uint32(b) })
	case wasm.OpI32GeS:
		cmp(func(a, b uint64) bool { return int32(a) >= int32(b) })
	case wasm.OpI32GeU:
		cmp(func(a, b uint64) bool { return uint32(a) >= uint32(b) })

	// i64 compare / test.
	case wasm.OpI64Eqz:
		ctr.Add(arch.EvCmp, 1)
		t := top()
		if *t == 0 {
			*t = 1
		} else {
			*t = 0
		}
	case wasm.OpI64Eq:
		cmp(func(a, b uint64) bool { return a == b })
	case wasm.OpI64Ne:
		cmp(func(a, b uint64) bool { return a != b })
	case wasm.OpI64LtS:
		cmp(func(a, b uint64) bool { return int64(a) < int64(b) })
	case wasm.OpI64LtU:
		cmp(func(a, b uint64) bool { return a < b })
	case wasm.OpI64GtS:
		cmp(func(a, b uint64) bool { return int64(a) > int64(b) })
	case wasm.OpI64GtU:
		cmp(func(a, b uint64) bool { return a > b })
	case wasm.OpI64LeS:
		cmp(func(a, b uint64) bool { return int64(a) <= int64(b) })
	case wasm.OpI64LeU:
		cmp(func(a, b uint64) bool { return a <= b })
	case wasm.OpI64GeS:
		cmp(func(a, b uint64) bool { return int64(a) >= int64(b) })
	case wasm.OpI64GeU:
		cmp(func(a, b uint64) bool { return a >= b })

	// f32/f64 compare.
	case wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge:
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		x, y := math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))
		var r bool
		switch op {
		case wasm.OpF32Eq:
			r = x == y
		case wasm.OpF32Ne:
			r = x != y
		case wasm.OpF32Lt:
			r = x < y
		case wasm.OpF32Gt:
			r = x > y
		case wasm.OpF32Le:
			r = x <= y
		case wasm.OpF32Ge:
			r = x >= y
		}
		if r {
			setTop2(1)
		} else {
			setTop2(0)
		}
	case wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge:
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var r bool
		switch op {
		case wasm.OpF64Eq:
			r = x == y
		case wasm.OpF64Ne:
			r = x != y
		case wasm.OpF64Lt:
			r = x < y
		case wasm.OpF64Gt:
			r = x > y
		case wasm.OpF64Le:
			r = x <= y
		case wasm.OpF64Ge:
			r = x >= y
		}
		if r {
			setTop2(1)
		} else {
			setTop2(0)
		}

	// i32 arithmetic.
	case wasm.OpI32Clz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.LeadingZeros32(uint32(*t)))
	case wasm.OpI32Ctz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.TrailingZeros32(uint32(*t)))
	case wasm.OpI32Popcnt:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.OnesCount32(uint32(*t)))
	case wasm.OpI32Add:
		b32(func(a, b uint32) uint32 { return a + b })
	case wasm.OpI32Sub:
		b32(func(a, b uint32) uint32 { return a - b })
	case wasm.OpI32Mul:
		ctr.Add(arch.EvMul, 1)
		a, b := pop2()
		setTop2(uint64(uint32(a) * uint32(b)))
	case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU:
		ctr.Add(arch.EvDivInt, 1)
		a, b := pop2()
		if uint32(b) == 0 {
			return h, newTrap(TrapDivByZero, "%v", op)
		}
		switch op {
		case wasm.OpI32DivS:
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				return h, newTrap(TrapIntOverflow, "i32.div_s overflow")
			}
			setTop2(uint64(uint32(int32(a) / int32(b))))
		case wasm.OpI32DivU:
			setTop2(uint64(uint32(a) / uint32(b)))
		case wasm.OpI32RemS:
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				setTop2(0)
			} else {
				setTop2(uint64(uint32(int32(a) % int32(b))))
			}
		case wasm.OpI32RemU:
			setTop2(uint64(uint32(a) % uint32(b)))
		}
	case wasm.OpI32And:
		b32(func(a, b uint32) uint32 { return a & b })
	case wasm.OpI32Or:
		b32(func(a, b uint32) uint32 { return a | b })
	case wasm.OpI32Xor:
		b32(func(a, b uint32) uint32 { return a ^ b })
	case wasm.OpI32Shl:
		b32(func(a, b uint32) uint32 { return a << (b & 31) })
	case wasm.OpI32ShrS:
		b32(func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) })
	case wasm.OpI32ShrU:
		b32(func(a, b uint32) uint32 { return a >> (b & 31) })
	case wasm.OpI32Rotl:
		b32(func(a, b uint32) uint32 { return bits.RotateLeft32(a, int(b&31)) })
	case wasm.OpI32Rotr:
		b32(func(a, b uint32) uint32 { return bits.RotateLeft32(a, -int(b&31)) })

	// i64 arithmetic.
	case wasm.OpI64Clz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.LeadingZeros64(*t))
	case wasm.OpI64Ctz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.TrailingZeros64(*t))
	case wasm.OpI64Popcnt:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.OnesCount64(*t))
	case wasm.OpI64Add:
		b64(func(a, b uint64) uint64 { return a + b })
	case wasm.OpI64Sub:
		b64(func(a, b uint64) uint64 { return a - b })
	case wasm.OpI64Mul:
		ctr.Add(arch.EvMul, 1)
		a, b := pop2()
		setTop2(a * b)
	case wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU:
		ctr.Add(arch.EvDivInt, 1)
		a, b := pop2()
		if b == 0 {
			return h, newTrap(TrapDivByZero, "%v", op)
		}
		switch op {
		case wasm.OpI64DivS:
			if int64(a) == math.MinInt64 && int64(b) == -1 {
				return h, newTrap(TrapIntOverflow, "i64.div_s overflow")
			}
			setTop2(uint64(int64(a) / int64(b)))
		case wasm.OpI64DivU:
			setTop2(a / b)
		case wasm.OpI64RemS:
			if int64(a) == math.MinInt64 && int64(b) == -1 {
				setTop2(0)
			} else {
				setTop2(uint64(int64(a) % int64(b)))
			}
		case wasm.OpI64RemU:
			setTop2(a % b)
		}
	case wasm.OpI64And:
		b64(func(a, b uint64) uint64 { return a & b })
	case wasm.OpI64Or:
		b64(func(a, b uint64) uint64 { return a | b })
	case wasm.OpI64Xor:
		b64(func(a, b uint64) uint64 { return a ^ b })
	case wasm.OpI64Shl:
		b64(func(a, b uint64) uint64 { return a << (b & 63) })
	case wasm.OpI64ShrS:
		b64(func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) })
	case wasm.OpI64ShrU:
		b64(func(a, b uint64) uint64 { return a >> (b & 63) })
	case wasm.OpI64Rotl:
		b64(func(a, b uint64) uint64 { return bits.RotateLeft64(a, int(b&63)) })
	case wasm.OpI64Rotr:
		b64(func(a, b uint64) uint64 { return bits.RotateLeft64(a, -int(b&63)) })

	// f32 arithmetic.
	case wasm.OpF32Abs:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Abs(float64(a))) })
	case wasm.OpF32Neg:
		f32un(arch.EvFAdd, func(a float32) float32 { return -a })
	case wasm.OpF32Ceil:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Ceil(float64(a))) })
	case wasm.OpF32Floor:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Floor(float64(a))) })
	case wasm.OpF32Trunc:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Trunc(float64(a))) })
	case wasm.OpF32Nearest:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.RoundToEven(float64(a))) })
	case wasm.OpF32Sqrt:
		f32un(arch.EvFDiv, func(a float32) float32 { return float32(math.Sqrt(float64(a))) })
	case wasm.OpF32Add:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return a + b })
	case wasm.OpF32Sub:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return a - b })
	case wasm.OpF32Mul:
		f32bin(arch.EvFMul, func(a, b float32) float32 { return a * b })
	case wasm.OpF32Div:
		f32bin(arch.EvFDiv, func(a, b float32) float32 { return a / b })
	case wasm.OpF32Min:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) })
	case wasm.OpF32Max:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) })
	case wasm.OpF32Copysign:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Copysign(float64(a), float64(b))) })

	// f64 arithmetic.
	case wasm.OpF64Abs:
		f64un(arch.EvFAdd, math.Abs)
	case wasm.OpF64Neg:
		f64un(arch.EvFAdd, func(a float64) float64 { return -a })
	case wasm.OpF64Ceil:
		f64un(arch.EvFAdd, math.Ceil)
	case wasm.OpF64Floor:
		f64un(arch.EvFAdd, math.Floor)
	case wasm.OpF64Trunc:
		f64un(arch.EvFAdd, math.Trunc)
	case wasm.OpF64Nearest:
		f64un(arch.EvFAdd, math.RoundToEven)
	case wasm.OpF64Sqrt:
		f64un(arch.EvFDiv, math.Sqrt)
	case wasm.OpF64Add:
		f64bin(arch.EvFAdd, func(a, b float64) float64 { return a + b })
	case wasm.OpF64Sub:
		f64bin(arch.EvFAdd, func(a, b float64) float64 { return a - b })
	case wasm.OpF64Mul:
		f64bin(arch.EvFMul, func(a, b float64) float64 { return a * b })
	case wasm.OpF64Div:
		f64bin(arch.EvFDiv, func(a, b float64) float64 { return a / b })
	case wasm.OpF64Min:
		f64bin(arch.EvFAdd, math.Min)
	case wasm.OpF64Max:
		f64bin(arch.EvFAdd, math.Max)
	case wasm.OpF64Copysign:
		f64bin(arch.EvFAdd, math.Copysign)

	// Conversions.
	case wasm.OpI32WrapI64:
		conv(func(v uint64) uint64 { return uint64(uint32(v)) })
	case wasm.OpI64ExtendI32S:
		conv(func(v uint64) uint64 { return uint64(int64(int32(v))) })
	case wasm.OpI64ExtendI32U:
		conv(func(v uint64) uint64 { return uint64(uint32(v)) })
	case wasm.OpI32TruncF64S, wasm.OpI32TruncF64U, wasm.OpI64TruncF64S, wasm.OpI64TruncF64U,
		wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U:
		ctr.Add(arch.EvConv, 1)
		t := top()
		var f float64
		switch op {
		case wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U:
			f = float64(math.Float32frombits(uint32(*t)))
		default:
			f = math.Float64frombits(*t)
		}
		if math.IsNaN(f) {
			return h, newTrap(TrapIntOverflow, "%v of NaN", op)
		}
		f = math.Trunc(f)
		switch op {
		case wasm.OpI32TruncF64S, wasm.OpI32TruncF32S:
			if f < math.MinInt32 || f > math.MaxInt32 {
				return h, newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(uint32(int32(f)))
		case wasm.OpI32TruncF64U, wasm.OpI32TruncF32U:
			if f < 0 || f > math.MaxUint32 {
				return h, newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(uint32(f))
		case wasm.OpI64TruncF64S, wasm.OpI64TruncF32S:
			if f < math.MinInt64 || f >= math.MaxInt64 {
				return h, newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(int64(f))
		default:
			if f < 0 || f >= math.MaxUint64 {
				return h, newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(f)
		}
	case wasm.OpF64ConvertI32S:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(int32(v))) })
	case wasm.OpF64ConvertI32U:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(uint32(v))) })
	case wasm.OpF64ConvertI64S:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(int64(v))) })
	case wasm.OpF64ConvertI64U:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(v)) })
	case wasm.OpF32ConvertI32S:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(int32(v)))) })
	case wasm.OpF32ConvertI32U:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(uint32(v)))) })
	case wasm.OpF32ConvertI64S:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(int64(v)))) })
	case wasm.OpF32ConvertI64U:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(v))) })
	case wasm.OpF32DemoteF64:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(math.Float64frombits(v)))) })
	case wasm.OpF64PromoteF32:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(math.Float32frombits(uint32(v)))) })
	case wasm.OpI32ReinterpretF32, wasm.OpF32ReinterpretI32:
		conv(func(v uint64) uint64 { return v & 0xFFFFFFFF })
	case wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64:
		conv(func(v uint64) uint64 { return v })

	default:
		return h, newTrap(TrapUnreachable, "unimplemented opcode %v", op)
	}
	return h, nil
}
