// Package engine provides the process-level machinery that amortizes
// Cage's per-instance hardening costs across many invocations: a keyed
// compiled-module cache and a concurrent instance pool.
//
// The paper prices two one-time costs that dominate short-lived
// executions: compiling and validating the module, and tagging the
// whole linear memory at instantiation (§7.2, Table 4/Fig. 16). A
// service handling many requests per module pays both once per request
// if it naively re-instantiates. This package lets an embedder pay them
// once per process instead:
//
//   - Cache deduplicates compilation: identical (content hash, config)
//     pairs share one validated module, with singleflight semantics so
//     concurrent first requests compile once.
//   - Pool recycles instances: a checkout/checkin protocol over
//     resettable instances replaces full re-instantiation with a reset
//     (re-zero memory, re-tag, re-seed), and bounds live instances to
//     the §7.4 sandbox-tag budget, queueing excess checkouts until an
//     instance is returned or the checkout's context ends.
//   - SnapshotCache memoizes frozen post-initialization images per
//     (module hash, config, init), so start/init execution and
//     whole-memory tagging run once and every later instance is a
//     fork (restore) of the image rather than a rebuild.
//
// The package is deliberately ignorant of wasm: Cache is generic over
// the cached value and Pool works against the small Resetter interface,
// so the cage facade can pool fully-linked instances (interpreter
// instance + hardened allocator) while tests can pool anything.
//
// # Concurrency model
//
// The package is engineered so the steady-state request path — cache
// hit, instance checkout, instance checkin — acquires no mutex and
// performs no allocation. Mutexes exist only on the cold edges (build,
// spawn, exhaustion, teardown).
//
// Caches are hash-sharded into 16 segments by the first key byte. Each
// shard publishes its entry table as an immutable map behind an
// atomic.Pointer: a lookup loads the pointer and reads the map with no
// lock and no CAS, so hits scale with cores and never contend with
// each other. Mutations (first build of a key, eviction of a failed
// build) take the shard mutex, clone the map, and republish — a
// read-copy-update discipline whose cost is charged to the miss, which
// is about to run a compile anyway. Singleflight is preserved per
// entry: the first goroutine to claim a key builds it while losers
// block on the entry's done channel, and failed builds are removed so
// a later lookup retries.
//
// The Pool's idle set is a fixed-capacity Treiber stack (see lifo):
// checkout pops and checkin pushes with at most two compare-and-swaps
// each, no locks, and no allocation — slots are preallocated and
// recycled through an internal free list, with ABA ruled out by a
// 32-bit version tag packed beside the slot index in each list head.
// The mutex-and-condvar path from earlier PRs survives underneath as
// the slow path and keeps its exact semantics: spawns (which may block
// on the shared §7.4 sandbox-tag budget) reserve cap slots under the
// pool mutex, exhausted checkouts queue on a broadcast channel and
// abandon cleanly when their context ends, and Close/Reclaim drain
// both the fast stack and the slow idle list. The lock-free checkin
// and the queued checkout rendezvous through an atomic waiter count:
// a waiter registers, re-polls the fast stack once, then sleeps; a
// checkin pushes, then broadcasts only if it observes a registered
// waiter. Sequential consistency of Go atomics makes one of the two
// observations land: either the waiter's re-poll sees the push, or
// the checkin sees the waiter and wakes it.
//
// Counters (hits, misses, spawns, recycles, discards, live, idle) are
// plain atomics throughout, so Stats and StatsFor never touch a
// hot-path mutex — a metrics scraper cannot stall a checkout.
//
// SetFastPaths(false) pins newly created caches and pools to the
// pre-sharding single-mutex layout. That exists for one purpose:
// same-binary A/B measurement of the fast paths (BENCH_scaling.json);
// production embedders should never call it.
package engine
