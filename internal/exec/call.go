package exec

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"cage/internal/arch"
)

// CallOptions bounds one invocation. The zero value is an unbounded
// call, equivalent to Invoke.
type CallOptions struct {
	// Fuel caps how many timing-model events (arch.Counter units) the
	// call may consume; 0 leaves the call unmetered. Fuel is
	// deterministic: the same module, arguments, and configuration
	// consume the same fuel on every run, and a fuel-exhausted call
	// traps with TrapFuelExhausted at the same guest instruction.
	Fuel uint64
	// MaxCallDepth overrides the instance's recursion bound for this
	// call only; 0 keeps the instance default. The bound is an exact
	// frame count — live guest frames plus in-flight host crossings —
	// enforced by the frame machine with TrapStackOverflow, not a
	// Go-recursion proxy.
	MaxCallDepth int
	// MaxStackWords overrides the instance's value-arena bound (64-bit
	// words across every live frame's params, locals, and operand stack)
	// for this call only; 0 keeps the instance default. Exceeding it
	// traps with TrapStackOverflow.
	MaxStackWords uint64
	// MemoryLimitPages caps the guest memory size (in 64 KiB pages) that
	// memory.grow may reach during this call, on top of the module's own
	// declared maximum; 0 means no per-call cap. A grow beyond the cap
	// fails with the architectural -1 result, exactly like exceeding the
	// declared maximum.
	MemoryLimitPages uint64
	// Results, when non-nil, is the backing array for the returned
	// Values: if its capacity covers the function's result count the
	// call writes into it instead of allocating a fresh slice. The
	// caller must not read a previous call's Values after passing the
	// same buffer again — this is the knob that makes a pooled
	// server's invoke path allocation-free.
	Results []uint64
}

// CallResult is the outcome of a bounded invocation.
type CallResult struct {
	// Values are the function's return values (raw 64-bit bits).
	Values []uint64
	// Fuel is how many timing-model events the call consumed (whether or
	// not the call was metered). On a trapped call it counts the events
	// up to the trap.
	Fuel uint64
	// Events is the call's timing-model event delta, ready for
	// arch.Counter.Cycles pricing — no need to reach into the instance's
	// cumulative counter.
	Events arch.Counter
}

// meter is the per-call interruption state the dispatch loop polls at
// backward-branch and call checkpoints. It is nil for unbounded calls,
// so the unmetered hot path pays one pointer test per taken branch and
// nothing else.
type meter struct {
	// interrupted is set by the context watcher goroutine; the
	// interpreter polls it at checkpoints.
	interrupted atomic.Bool
	// fuelLimit is the absolute arch.Counter total at which the call
	// runs dry; 0 means unmetered fuel. fuelBudget is the caller-facing
	// budget it was derived from, for the trap message.
	fuelLimit  uint64
	fuelBudget uint64
	// ctx supplies the cause for TrapInterrupted.
	ctx context.Context
	// parent is the meter of the InvokeWith this call re-entered from
	// (host callbacks may nest invocations); checkpoints walk the chain
	// so an inner call can never mask the outer call's deadline or fuel
	// budget.
	parent *meter
}

// check is polled at interrupt checkpoints (taken branches in the
// dispatch loop and function-call entry). It enforces every meter in
// the nesting chain: the innermost bound to trip wins.
func (m *meter) check(ctr *arch.Counter) error {
	for cur := m; cur != nil; cur = cur.parent {
		if cur.interrupted.Load() {
			return &Trap{Code: TrapInterrupted, Msg: "context done", Cause: cur.ctx.Err()}
		}
		if cur.fuelLimit != 0 && ctr.Total() > cur.fuelLimit {
			return &Trap{Code: TrapFuelExhausted, Msg: fmt.Sprintf("budget %d events", cur.fuelBudget)}
		}
	}
	return nil
}

// checkSync is check plus a direct ctx.Err() poll of every meter in
// the chain. The atomic interrupted flag is set by a watcher goroutine
// (context.AfterFunc), so immediately after a context fires there is a
// window where the flag is not yet visible; at a host-call boundary —
// where a blocking host function typically returns *because* the
// context fired — that window must not let the guest resume, so the
// boundary consults the contexts synchronously. Branch checkpoints in
// the dispatch loop keep the cheap flag-only variant.
func (m *meter) checkSync(ctr *arch.Counter) error {
	if err := m.check(ctr); err != nil {
		return err
	}
	for cur := m; cur != nil; cur = cur.parent {
		if cur.ctx != nil {
			if err := cur.ctx.Err(); err != nil {
				return &Trap{Code: TrapInterrupted, Msg: "context done", Cause: err}
			}
		}
	}
	return nil
}

// InvokeWith calls an exported function under a context and per-call
// bounds. It is the context-first core of the public invocation API:
//
//   - When ctx is cancellable or carries a deadline, a context watcher
//     (context.AfterFunc) arms the instance's interrupt flag the moment
//     ctx ends; the dispatch loop polls the flag on taken branches and
//     calls and unwinds with TrapInterrupted (wrapping ctx.Err()).
//   - When opts.Fuel is set, the same checkpoints compare the timing
//     model's event total against the budget and trap with
//     TrapFuelExhausted, deterministically.
//   - With a background context and zero options nothing is armed and
//     the dispatch loop runs its zero-cost nop variant (a nil pointer
//     test per taken branch).
//
// The instance stays consistent after an interrupt: the trap unwinds
// like any other, so a pooled instance can be reset and reused.
// InvokeWith is not safe for concurrent use on one instance (no Invoke
// variant is); the watcher goroutine only touches the atomic flag.
func (inst *Instance) InvokeWith(ctx context.Context, name string, args []uint64, opts CallOptions) (CallResult, error) {
	fidx, ok := inst.module.ExportedFunc(name)
	if !ok {
		return CallResult{}, fmt.Errorf("exec: no exported function %q", name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return CallResult{}, err
	}

	start := inst.counter.Snapshot()

	// Per-call overrides, restored on every exit path below.
	prevDepth := inst.maxCallDepth
	if opts.MaxCallDepth > 0 {
		inst.maxCallDepth = opts.MaxCallDepth
	}
	prevStackWords := inst.maxStackWords
	if opts.MaxStackWords > 0 {
		inst.maxStackWords = opts.MaxStackWords
	}
	prevMemLimit := inst.memLimitPages
	if opts.MemoryLimitPages > 0 {
		inst.memLimitPages = opts.MemoryLimitPages
	}

	// Arm the meter only when something can actually stop the call, so
	// unbounded calls keep the nop checkpoint variant. The previous
	// meter is restored on exit and chained as the new meter's parent:
	// a host callback that re-enters InvokeWith neither disarms nor
	// shadows the outer call's cancellation checkpoints. The restore is
	// deferred so even a panic out of a host function (recovered by the
	// embedder) cannot leave the instance armed with a dead call's
	// meter or overrides.
	prevMeter := inst.meter
	prevCtx := inst.callCtx
	inst.callCtx = ctx // host functions see this via HostContext.Context
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
		inst.meter = prevMeter
		inst.callCtx = prevCtx
		inst.maxCallDepth = prevDepth
		inst.maxStackWords = prevStackWords
		inst.memLimitPages = prevMemLimit
	}()
	if ctx.Done() != nil || opts.Fuel > 0 {
		m := &meter{ctx: ctx, parent: prevMeter}
		if opts.Fuel > 0 {
			m.fuelBudget = opts.Fuel
			m.fuelLimit = start.Total() + opts.Fuel
			if m.fuelLimit < opts.Fuel { // saturate on overflow
				m.fuelLimit = math.MaxUint64
			}
		}
		inst.meter = m
		if ctx.Done() != nil {
			// No goroutine unless the context actually fires.
			stopWatch = context.AfterFunc(ctx, func() { m.interrupted.Store(true) })
		}
	}

	res, err := inst.invokeInto(fidx, args, opts.Results)

	if err == nil {
		err = inst.pollAsyncFault()
	}
	delta := inst.counter.DeltaSince(start)
	return CallResult{Values: res, Fuel: delta.Total(), Events: delta}, err
}
