package bench

import (
	"fmt"
	"time"

	"cage/internal/codegen"
	"cage/internal/exec"
	"cage/internal/minicc"
)

// Call-overhead microbenchmarks for the -json report: the per-call cost
// of guest→guest calls under the frame machine, measured on kernels
// where call discipline — not loops or memory — dominates. Two shapes:
// recursive fib (an exponential call tree whose frames stack and unwind
// constantly) and mutual recursion (a deep alternating call chain).
// These are the workloads the frame machine's zero-allocation, in-place
// parameter frames exist for.

// CallOverheadRecord prices guest→guest call overhead.
type CallOverheadRecord struct {
	// FibN is the fib argument; FibCalls the calls one run(n) makes.
	FibN     int   `json:"fib_n"`
	FibCalls int64 `json:"fib_calls"`
	// FibNsPerCall is the best-of-rounds wall time per guest→guest call
	// in the fib tree.
	FibNsPerCall float64 `json:"fib_ns_per_call"`
	// MutualN is the recursion depth; MutualCalls the calls per run(n).
	MutualN     int   `json:"mutual_n"`
	MutualCalls int64 `json:"mutual_calls"`
	// MutualNsPerCall is the best-of-rounds wall time per call of the
	// alternating is_even/is_odd chain.
	MutualNsPerCall float64 `json:"mutual_ns_per_call"`
}

// fibSource is the recursive-fib kernel.
const fibSource = `
long fib(long n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
long run(long n) { return fib(n); }`

// mutualSource is the mutual-recursion kernel.
const mutualSource = `
long is_odd(long n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
long is_even(long n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
long run(long n) { return is_even(n); }`

// fibCalls counts the guest→guest calls run(n) makes: one call to fib
// per node of the call tree, plus the run→fib entry itself.
func fibCalls(n int) int64 {
	memo := make(map[int]int64)
	var nodes func(int) int64
	nodes = func(k int) int64 {
		if k < 2 {
			return 1
		}
		if v, ok := memo[k]; ok {
			return v
		}
		v := 1 + nodes(k-1) + nodes(k-2)
		memo[k] = v
		return v
	}
	return nodes(n)
}

// compileCallKernel builds a wasm64 module from MiniC source. maxDepth
// sizes the frame machine's exact activation bound for the kernel's
// recursion (0 keeps the 1024-frame default) — the deep mutual chain
// deliberately exceeds the default to showcase that frame towers live
// in the value arena, not the Go stack.
func compileCallKernel(src string, maxDepth int) (*exec.Instance, error) {
	file, err := minicc.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		return nil, err
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true})
	if err != nil {
		return nil, err
	}
	return exec.NewInstance(m, exec.Config{MaxCallDepth: maxDepth})
}

// measurePerCall times `rounds` invocations of run(n) and returns the
// best wall time divided by the number of guest→guest calls one run
// performs. An untimed warm-up round lets the frame machine's arena and
// frame stack reach steady state first.
func measurePerCall(inst *exec.Instance, n uint64, calls int64, want uint64, rounds int) (float64, error) {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds+1; r++ {
		t0 := time.Now()
		res, err := inst.Invoke("run", n)
		elapsed := time.Since(t0)
		if err != nil {
			return 0, err
		}
		if res[0] != want {
			return 0, fmt.Errorf("bench: run(%d) = %d, want %d", n, res[0], want)
		}
		if r > 0 && elapsed < best {
			best = elapsed
		}
	}
	return float64(best.Nanoseconds()) / float64(calls), nil
}

// MeasureCallOverhead runs the guest→guest call microbenchmarks.
func MeasureCallOverhead(quick bool) (*CallOverheadRecord, error) {
	fibN, mutualN, rounds := 22, 100_000, 5
	if quick {
		fibN, mutualN, rounds = 16, 512, 2
	}
	rec := &CallOverheadRecord{
		FibN:     fibN,
		FibCalls: fibCalls(fibN),
		MutualN:  mutualN,
		// run→is_even, then one call per decrement down to zero.
		MutualCalls: int64(mutualN) + 1,
	}

	fib, err := compileCallKernel(fibSource, 0)
	if err != nil {
		return nil, err
	}
	fibWant := uint64(fibRef(fibN))
	if rec.FibNsPerCall, err = measurePerCall(fib, uint64(fibN), rec.FibCalls, fibWant, rounds); err != nil {
		return nil, err
	}

	// run + is_even(n) + the n alternating activations below it.
	mutual, err := compileCallKernel(mutualSource, mutualN+16)
	if err != nil {
		return nil, err
	}
	// is_even(n) with even n is 1.
	mutualWant := uint64(1 - mutualN%2)
	if rec.MutualNsPerCall, err = measurePerCall(mutual, uint64(mutualN), rec.MutualCalls, mutualWant, rounds); err != nil {
		return nil, err
	}
	return rec, nil
}

// fibRef is the reference fibonacci value.
func fibRef(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}
