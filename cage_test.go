package cage

import (
	"bytes"
	"strings"
	"testing"
)

const quickProgram = `
extern char* malloc(long n);
extern void free(char* p);
extern void print_str(char* s, long n);

long sum(long n) {
    long* a = (long*)malloc(n * 8);
    long s = 0;
    for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
    free((char*)a);
    return s;
}

long uaf(void) {
    long* a = (long*)malloc(32);
    a[0] = 9;
    free((char*)a);
    return a[0];
}

void greet(void) {
    print_str("hi from wasm", 12);
}
`

func TestToolchainAndRuntimeEndToEnd(t *testing.T) {
	for _, cfg := range []Config{
		Baseline32(), Baseline64(), MemorySafetyOnly(),
		PointerAuthOnly(), SandboxingOnly(), FullHardening(),
	} {
		mod, err := NewToolchain(cfg).CompileSource(quickProgram)
		if err != nil {
			t.Fatalf("%+v: compile: %v", cfg, err)
		}
		inst, err := NewRuntime(cfg).Instantiate(mod)
		if err != nil {
			t.Fatalf("%+v: instantiate: %v", cfg, err)
		}
		res, err := inst.Invoke("sum", 100)
		if err != nil {
			t.Fatalf("%+v: sum: %v", cfg, err)
		}
		if res[0] != 4950 {
			t.Errorf("%+v: sum = %d", cfg, res[0])
		}
	}
}

func TestUAFTrapsOnlyWhenHardened(t *testing.T) {
	run := func(cfg Config) error {
		mod, err := NewToolchain(cfg).CompileSource(quickProgram)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewRuntime(cfg).Instantiate(mod)
		if err != nil {
			t.Fatal(err)
		}
		_, err = inst.Invoke("uaf")
		return err
	}
	if err := run(Baseline64()); err != nil {
		t.Errorf("baseline UAF trapped: %v", err)
	}
	err := run(FullHardening())
	if err == nil {
		t.Fatal("hardened UAF not caught")
	}
	if !IsMemorySafetyViolation(err) {
		t.Errorf("wrong classification: %v", err)
	}
	if IsAuthFailure(err) {
		t.Error("UAF misclassified as auth failure")
	}
}

func TestModuleBinaryRoundTrip(t *testing.T) {
	cfg := FullHardening()
	mod, err := NewToolchain(cfg).CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := mod.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModule(bin)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewRuntime(cfg).Instantiate(back)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("sum", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 45 {
		t.Errorf("round-tripped sum = %d", res[0])
	}
	if _, err := DecodeModule([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
}

func TestStdioRouting(t *testing.T) {
	cfg := FullHardening()
	mod, err := NewToolchain(cfg).CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg)
	var out bytes.Buffer
	rt.SetStdio(&out, &out)
	inst, err := rt.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("greet"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hi from wasm") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestSharedRuntimeSandboxLimit(t *testing.T) {
	cfg := SandboxingOnly()
	mod, err := NewToolchain(cfg).CompileSource(`long f(void) { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg)
	for i := 0; i < 15; i++ {
		if _, err := rt.Instantiate(mod); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	if _, err := rt.Instantiate(mod); err == nil {
		t.Error("16th sandbox accepted (paper limit: 15 per process)")
	}
}

func TestCrossInstancePointerReuse(t *testing.T) {
	// Paper §4.2: a signed pointer leaked from one instance must not
	// authenticate in another instance of the same process.
	cfg := PointerAuthOnly()
	src := `
long make(void) { return (long)__builtin_pointer_sign((char*)4096); }
long use(long p) { return (long)__builtin_pointer_auth((char*)p); }`
	mod, err := NewToolchain(cfg).CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg)
	i1, err := rt.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := rt.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := i1.Invoke("make")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := i1.Invoke("use", signed[0]); err != nil {
		t.Errorf("same-instance auth failed: %v", err)
	}
	if _, err := i2.Invoke("use", signed[0]); !IsAuthFailure(err) {
		t.Errorf("cross-instance reuse: got %v, want auth failure", err)
	}
}

func TestInvokeF64(t *testing.T) {
	cfg := Baseline64()
	mod, err := NewToolchain(cfg).CompileSource(`double half(long x) { return (double)x / 2.0; }`)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewRuntime(cfg).Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	v, err := inst.InvokeF64("half", 7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3.5 {
		t.Errorf("half(7) = %v", v)
	}
}

func TestExtendedSandboxesLiftTheLimit(t *testing.T) {
	// Paper §6.4 (future work): combining guard pages with memory
	// tagging allows tag reuse across disjoint address ranges, scaling
	// past 15 sandboxes.
	cfg := SandboxingOnly()
	mod, err := NewToolchain(cfg).CompileSource(`
long poke(long addr) { long* p = (long*)addr; return *p; }
long f(long x) { return x * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg)
	rt.EnableExtendedSandboxes()
	var insts []*Instance
	for i := 0; i < 40; i++ {
		inst, err := rt.Instantiate(mod)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		insts = append(insts, inst)
	}
	// Every instance still works and still cannot escape.
	for i, inst := range insts {
		res, err := inst.Invoke("f", uint64(i))
		if err != nil || res[0] != uint64(i*2) {
			t.Fatalf("instance %d compute: %v", i, err)
		}
		if _, err := inst.Invoke("poke", 1<<30); err == nil {
			t.Fatalf("instance %d escaped its sandbox", i)
		}
	}
}
