// Package bench regenerates every table and figure of the paper's
// evaluation (§2.3, §7): Table 1 (instruction throughput/latency),
// Fig. 4 (MTE mode overhead), Table 2 (CVE mitigation), Table 3 / Fig. 14
// (PolyBench runtime overheads), Fig. 15 (pointer-auth call overhead),
// Table 4 / Fig. 16 (tagged-memory initialization), the §7.2 startup
// cost, the §7.3 memory overhead, and the §7.4 security analysis.
//
// Executions are deterministic: kernels run once per configuration on
// the event-counting engine, and the per-core timing models price the
// same event stream for all three Tensor G3 cores.
package bench
