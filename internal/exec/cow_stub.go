//go:build !(cagecow && linux && (amd64 || arm64))

package exec

// snapshotRestoreMode: without the cagecow build tag (or off Linux)
// snapshots restore by bulk copy into retained capacity.
const snapshotRestoreMode = "copy"

// cowImage is the stub image: never materialized, never mappable. The
// restore path checks for a nil image and falls back to copying, so
// this build compiles out the mmap machinery entirely.
type cowImage struct{}

func newCOWImage(mem, tags []byte) *cowImage { return nil }

func (c *cowImage) mapView() (mem, tags []byte, unmap func(), err error) {
	return nil, nil, nil, errCOWUnavailable
}

func (c *cowImage) close() {}
