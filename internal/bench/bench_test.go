package bench

import (
	"bytes"
	"strings"
	"testing"

	"cage/internal/arch"
)

func TestTable3VariantsComplete(t *testing.T) {
	want := []string{
		"baseline wasm32", "baseline wasm64", "Cage-mem-safety",
		"Cage-ptr-auth", "Cage-sandboxing", "Cage",
	}
	vs := Table3Variants()
	if len(vs) != len(want) {
		t.Fatalf("%d variants, want %d", len(vs), len(want))
	}
	for i, name := range want {
		if vs[i].Name != name {
			t.Errorf("variant %d = %q, want %q", i, vs[i].Name, name)
		}
	}
	if _, err := VariantByName("Cage"); err != nil {
		t.Error(err)
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Error("unknown variant accepted")
	}
	// Table 3 columns: pointer width and feature flags.
	v, _ := VariantByName("baseline wasm32")
	if v.PtrWidth != 32 || v.Features.MemSafety || v.Features.Sandbox {
		t.Error("wasm32 baseline misconfigured")
	}
	v, _ = VariantByName("Cage")
	if !v.Features.MemSafety || !v.Features.Sandbox || !v.Features.PtrAuth {
		t.Error("Cage variant misconfigured")
	}
}

// TestFig14Shape asserts the paper's headline claims hold qualitatively
// (paper §7.2): wasm32 beats wasm64 (most dramatically on the in-order
// core), MTE sandboxing recovers most of the wasm64 bounds-check cost,
// memory safety costs single digits, and full Cage still beats plain
// wasm64 on the in-order core.
func TestFig14Shape(t *testing.T) {
	res, err := RunFig14(true)
	if err != nil {
		t.Fatal(err)
	}
	get := func(variant, core string) float64 { return res.MeanPct[variant][core] }

	for _, core := range res.Cores {
		if w32 := get("baseline wasm32", core); w32 >= 100 {
			t.Errorf("%s: wasm32 (%.1f) must beat wasm64", core, w32)
		}
		if sb := get("Cage-sandboxing", core); sb >= 100 {
			t.Errorf("%s: MTE sandboxing (%.1f) must beat wasm64 bounds checks", core, sb)
		}
		ms := get("Cage-mem-safety", core)
		if ms <= 100 || ms > 112 {
			t.Errorf("%s: memory safety overhead %.1f outside (100, 112]", core, ms)
		}
	}
	// The in-order A510 suffers most from software bounds checks
	// (paper: ~52 % overhead; out-of-order: 6–8 %).
	oooGain := 100 - get("baseline wasm32", "Cortex-X3")
	inoGain := 100 - get("baseline wasm32", "Cortex-A510")
	if inoGain < 2.5*oooGain {
		t.Errorf("in-order bounds-check penalty (%.1f) must dwarf out-of-order (%.1f)",
			inoGain, oooGain)
	}
	if inoGain < 20 {
		t.Errorf("A510 wasm64 overhead too small: wasm32 at %.1f", 100-inoGain)
	}
	// Full Cage on the in-order core must be a clear win over wasm64
	// (paper: 29.2 % speedup).
	if cage := get("Cage", "Cortex-A510"); cage > 85 {
		t.Errorf("full Cage on A510 = %.1f, expected a clear speedup", cage)
	}
	// Sandboxing alone beats full Cage (which adds memory safety work).
	for _, core := range res.Cores {
		if get("Cage-sandboxing", core) > get("Cage", core) {
			t.Errorf("%s: sandboxing alone slower than full Cage", core)
		}
	}
}

// TestFig15Shape asserts the paper's Fig. 15 claims: dynamic dispatch
// costs 15–22 %, authentication adds virtually nothing on top.
func TestFig15Shape(t *testing.T) {
	res, err := RunFig15(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range res.Cores {
		dyn := res.Pct["dynamic"][core]
		auth := res.Pct["ptr-auth"][core]
		if dyn < 110 || dyn > 130 {
			t.Errorf("%s: dynamic = %.1f, want 110–130 (paper: 115–122)", core, dyn)
		}
		if auth-dyn > 3 {
			t.Errorf("%s: authentication added %.1f%% over dynamic (paper: negligible)",
				core, auth-dyn)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	for _, r := range Fig4Rows() {
		if !(r.NoneMs < r.AsyncMs && r.AsyncMs < r.SyncMs) {
			t.Errorf("%s: want none < async < sync, got %.1f/%.1f/%.1f",
				r.Core, r.NoneMs, r.AsyncMs, r.SyncMs)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	cells := Fig16Cells()
	ms := func(core string, v arch.InitVariant) float64 {
		for _, c := range cells {
			if c.Core == core && c.Variant == v {
				return c.Ms
			}
		}
		t.Fatalf("missing cell %s/%v", core, v)
		return 0
	}
	for _, core := range []string{"Cortex-X3", "Cortex-A715", "Cortex-A510"} {
		base := ms(core, arch.InitMemset)
		// Paper §7.4: stzg/stz2g/stgp at least match memset.
		for _, v := range []arch.InitVariant{arch.InitSTZG, arch.InitST2ZG, arch.InitSTGP} {
			if got := ms(core, v); got > base*1.01 {
				t.Errorf("%s: %v (%.1f ms) slower than memset (%.1f ms)", core, v, got, base)
			}
		}
		// Tag-then-memset pays for two passes.
		for _, v := range []arch.InitVariant{arch.InitSTGMemset, arch.InitST2GMemset} {
			if got := ms(core, v); got < base*1.05 {
				t.Errorf("%s: %v (%.1f ms) should clearly exceed memset", core, v, got)
			}
		}
	}
}

func TestTable2AllMitigated(t *testing.T) {
	rows, err := Table2Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.BaselineDamage == 0 {
			t.Errorf("%s: baseline not exploited", r.CVE)
		}
		if !r.CageTrapped {
			t.Errorf("%s: Cage did not mitigate", r.CVE)
		}
	}
}

func TestStartupAccounting(t *testing.T) {
	res, err := RunStartup()
	if err != nil {
		t.Fatal(err)
	}
	if res.GranulesTagged != (128<<20)/16 {
		t.Errorf("granules = %d", res.GranulesTagged)
	}
	if res.TaggingMs["Cortex-X3"] <= 0 {
		t.Error("missing modeled tagging cost")
	}
}

func TestMemoryOverheadUnderPaperBound(t *testing.T) {
	res, err := RunMemoryOverhead(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagStorage != 0.03125 {
		t.Errorf("tag storage = %f", res.TagStorage)
	}
	if res.Total <= 0 || res.Total >= 0.053 {
		t.Errorf("total overhead %.2f%% outside (0, 5.3%%)", 100*res.Total)
	}
}

func TestSecurityAnalysisNumbers(t *testing.T) {
	a := AnalyzeSecurity()
	if a.MaxSandboxes != 15 {
		t.Errorf("MaxSandboxes = %d", a.MaxSandboxes)
	}
	if a.CollisionInternalOnly < 1.0/15-1e-9 || a.CollisionInternalOnly > 1.0/15+1e-9 {
		t.Errorf("internal collision = %f, want 1/15", a.CollisionInternalOnly)
	}
	if a.CollisionCombined < 1.0/7-1e-9 || a.CollisionCombined > 1.0/7+1e-9 {
		t.Errorf("combined collision = %f, want 1/7", a.CollisionCombined)
	}
}

func TestRunAllProducesFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, heading := range []string{
		"Table 1", "Fig. 4", "Table 2", "Fig. 14", "Fig. 15",
		"Fig. 16", "startup", "memory overhead", "security analysis",
	} {
		if !strings.Contains(out, heading) {
			t.Errorf("report missing section %q", heading)
		}
	}
}

func TestMeasureCallOverheadBothSizes(t *testing.T) {
	// Regression: the non-quick mutual kernel recurses 100k+ frames —
	// far past the default 1024-frame bound — and must size its
	// instance's MaxCallDepth accordingly instead of trapping with
	// TrapStackOverflow (the frame machine keeps those frames in the
	// value arena, not the Go stack).
	for _, quick := range []bool{true, false} {
		rec, err := MeasureCallOverhead(quick)
		if err != nil {
			t.Fatalf("MeasureCallOverhead(quick=%t): %v", quick, err)
		}
		if rec.FibNsPerCall <= 0 || rec.MutualNsPerCall <= 0 {
			t.Fatalf("quick=%t: non-positive per-call times: %+v", quick, rec)
		}
		if rec.FibCalls <= 0 || rec.MutualCalls != int64(rec.MutualN)+1 {
			t.Fatalf("quick=%t: bad call counts: %+v", quick, rec)
		}
	}
}
