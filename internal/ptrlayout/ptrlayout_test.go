package ptrlayout

import (
	"testing"
	"testing/quick"
)

func TestAddressMasksMetadata(t *testing.T) {
	p := uint64(0xFFFF_8000_1234_5678)
	if got, want := Address(p), uint64(0x8000_1234_5678); got != want {
		t.Errorf("Address(%#x) = %#x, want %#x", p, got, want)
	}
}

func TestKernelBit(t *testing.T) {
	if IsKernel(0) {
		t.Error("IsKernel(0) = true, want false")
	}
	if !IsKernel(1 << 55) {
		t.Error("IsKernel(1<<55) = false, want true")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for tag := uint8(0); tag < 16; tag++ {
		p := WithTag(0x1234_5678, tag)
		if got := Tag(p); got != tag {
			t.Errorf("Tag(WithTag(p, %d)) = %d", tag, got)
		}
		if got := Address(p); got != 0x1234_5678 {
			t.Errorf("WithTag changed address bits: %#x", got)
		}
	}
}

func TestStripTag(t *testing.T) {
	p := WithTag(0xABC0, 7)
	if got := StripTag(p); got != 0xABC0 {
		t.Errorf("StripTag = %#x, want %#x", got, 0xABC0)
	}
}

func TestPACBitCounts(t *testing.T) {
	// Paper Fig. 3: PAC-only layout provides 15 bits on Linux (bits
	// 63..56 and 54..48); with MTE enabled it shrinks to 10 bits
	// (63..60 and 54..49).
	if got := PACOnly.PACBits(); got != 15 {
		t.Errorf("PACOnly.PACBits() = %d, want 15", got)
	}
	if got := MTEAndPAC.PACBits(); got != 10 {
		t.Errorf("MTEAndPAC.PACBits() = %d, want 10", got)
	}
	if got := NoExtension.PACBits(); got != 0 {
		t.Errorf("NoExtension.PACBits() = %d, want 0", got)
	}
}

func TestPACFieldDoesNotOverlapMTEOrKernelBit(t *testing.T) {
	if MTEAndPAC.PACMask&MTETagMask != 0 {
		t.Error("MTE+PAC layout: PAC field overlaps the MTE tag nibble")
	}
	if MTEAndPAC.PACMask&(1<<KernelBit) != 0 {
		t.Error("MTE+PAC layout: PAC field overlaps the kernel/user bit")
	}
	if PACOnly.PACMask&(1<<KernelBit) != 0 {
		t.Error("PAC-only layout: PAC field overlaps the kernel/user bit")
	}
}

func TestInsertExtractRoundTrip(t *testing.T) {
	f := func(p, sig uint64) bool {
		for _, l := range []Layout{PACOnly, MTEAndPAC} {
			mask := uint64(1)<<l.PACBits() - 1
			signed := l.Insert(p, sig)
			if l.Extract(signed) != sig&mask {
				return false
			}
			// Non-PAC bits must be preserved.
			if signed&^l.PACMask != p&^l.PACMask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertPreservesMTETag(t *testing.T) {
	p := WithTag(0x4000, 0xB)
	signed := MTEAndPAC.Insert(p, 0x3FF)
	if Tag(signed) != 0xB {
		t.Errorf("Insert clobbered MTE tag: %#x", Tag(signed))
	}
}

func TestCanonicalClearsAllMetadata(t *testing.T) {
	f := func(p uint64) bool {
		c := MTEAndPAC.Canonical(p)
		return c == p&AddressMask&^MTETagMask || c == p&AddressMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	p := MTEAndPAC.Insert(WithTag(0x1000, 5), 0x2AA)
	if got := MTEAndPAC.Canonical(p); got != 0x1000 {
		t.Errorf("Canonical = %#x, want 0x1000", got)
	}
}
