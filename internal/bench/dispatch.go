package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cage/internal/alloc"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/polybench"
	"cage/internal/profile"
	"cage/internal/vmem"
	"cage/internal/wasm"
)

// Dispatch benchmark: prices the three dispatch tiers against each
// other — the legacy re-scanning interpreter, the lowered flat-dispatch
// stream, and the profile-guided superinstruction tier (internal/fuse)
// — per kernel and per configuration. The profile driving the fusion is
// recorded in-run from the same kernel, so each record is
// self-contained: what you see is what the profile-guided tier earns on
// exactly the sequences the kernel executes. On guard-capable builds
// (cageguard tag, Linux) the guard32 rows also use the vmem guard
// backend, which removes the explicit bounds check from every access.

// DispatchKernelRecord is one kernel × config tier comparison.
type DispatchKernelRecord struct {
	Kernel string `json:"kernel"`
	Config string `json:"config"`
	N      int    `json:"n"`
	// FusedOps counts superinstructions in the fused program — how much
	// of the stream the recorded profile collapsed.
	FusedOps int `json:"fused_ops"`
	// ProfileID identifies the recorded profile the fusion ran under.
	ProfileID string `json:"profile_id"`
	// Per-tier wall time for one run(n) invocation.
	LegacyNs  int64 `json:"legacy_ns_per_op"`
	UnfusedNs int64 `json:"unfused_ns_per_op"`
	FusedNs   int64 `json:"fused_ns_per_op"`
	// Derived speedups (legacy/fused and unfused/fused).
	FusedVsLegacy  float64 `json:"fused_speedup_vs_legacy"`
	FusedVsUnfused float64 `json:"fused_speedup_vs_unfused"`
}

// DispatchRecord is the cage-bench JSON "dispatch" record.
type DispatchRecord struct {
	// GuardBackend reports whether the guard-region memory backend was
	// active (cageguard build on a supported platform): it changes what
	// the guard32 rows measure.
	GuardBackend bool                   `json:"guard_backend"`
	Kernels      []DispatchKernelRecord `json:"kernels"`
}

// dispatchConfigs are the two poles of the configuration space: the
// wasm32 guard-page baseline (where the guard backend and fusion both
// apply) and the full Cage stack (where fusion is the only lever).
var dispatchConfigs = []struct {
	name    string
	compile codegen.Options
	feats   core.Features
}{
	{"guard32", codegen.Options{Wasm64: false}, core.Features{}},
	{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
		core.CageAll()},
}

// dispatchKernels are the loop-and-memory-bound kernels where dispatch
// overhead dominates.
var dispatchKernels = []string{"gemm", "jacobi-1d", "atax"}

// newDispatchInstance mirrors polybench.Instantiate with a pre-lowered
// program and/or profile recorder attached.
func newDispatchInstance(m *wasm.Module, feats core.Features, prog *ir.Program, rec *profile.Recorder) (*exec.Instance, error) {
	host := &alloc.Host{}
	cfg := exec.Config{
		Features: feats, HostModules: polybench.HostModules(), HostData: host,
		Seed: 1234, Profile: rec,
	}
	if prog != nil {
		cfg.Program = prog
	}
	inst, err := exec.NewInstance(m, cfg)
	if err != nil {
		return nil, err
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		inst.Close()
		return nil, fmt.Errorf("bench: module lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		inst.Close()
		return nil, err
	}
	return inst, nil
}

// timeInvoke measures the best of iters invocations of run(n) —
// best-of defends the record against scheduler noise.
func timeInvoke(invoke func() error, iters int) (int64, error) {
	best := int64(0)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := invoke(); err != nil {
			return 0, err
		}
		ns := time.Since(t0).Nanoseconds()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// MeasureDispatch runs the tier comparison for every dispatch kernel
// under every dispatch config.
func MeasureDispatch(quick bool) (*DispatchRecord, error) {
	rec := &DispatchRecord{GuardBackend: vmem.Supported()}
	iters := 3
	if quick {
		iters = 2
	}
	for _, name := range dispatchKernels {
		k, err := polybench.ByName(name)
		if err != nil {
			return nil, err
		}
		n := k.BenchN
		if quick {
			n = k.TestN
		}
		for _, cfg := range dispatchConfigs {
			m, err := polybench.Build(k, cfg.compile)
			if err != nil {
				return nil, err
			}

			prof, err := recordKernelProfile(m, cfg.feats, k.TestN)
			if err != nil {
				return nil, err
			}

			row := DispatchKernelRecord{
				Kernel: name, Config: cfg.name, N: n, ProfileID: prof.ID(),
			}

			// Legacy tier.
			leg, err := newDispatchInstance(m, cfg.feats, nil, nil)
			if err != nil {
				return nil, err
			}
			lr, err := exec.NewLegacyRunner(leg)
			if err != nil {
				return nil, err
			}
			row.LegacyNs, err = timeInvoke(func() error {
				_, err := lr.Invoke("run", uint64(n))
				return err
			}, iters)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s legacy: %w", name, cfg.name, err)
			}
			leg.Close()

			// Unfused lowered tier.
			plain, err := newDispatchInstance(m, cfg.feats, nil, nil)
			if err != nil {
				return nil, err
			}
			row.UnfusedNs, err = timeInvoke(func() error {
				_, err := plain.Invoke("run", uint64(n))
				return err
			}, iters)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s unfused: %w", name, cfg.name, err)
			}
			plain.Close()

			// Fused tier, driven by the recorded profile.
			prog, err := exec.LowerModule(m, exec.Config{Features: cfg.feats})
			if err != nil {
				return nil, err
			}
			fusedProg := fuse.Fuse(prog, prof)
			for _, f := range fusedProg.Funcs {
				for _, in := range f.Code {
					if in.Op.IsFused() {
						row.FusedOps++
					}
				}
			}
			fused, err := newDispatchInstance(m, cfg.feats, fusedProg, nil)
			if err != nil {
				return nil, err
			}
			row.FusedNs, err = timeInvoke(func() error {
				_, err := fused.Invoke("run", uint64(n))
				return err
			}, iters)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s fused: %w", name, cfg.name, err)
			}
			fused.Close()

			if row.FusedNs > 0 {
				row.FusedVsLegacy = float64(row.LegacyNs) / float64(row.FusedNs)
				row.FusedVsUnfused = float64(row.UnfusedNs) / float64(row.FusedNs)
			}
			rec.Kernels = append(rec.Kernels, row)
		}
	}
	return rec, nil
}

// recordKernelProfile runs the kernel once at the test size with the
// hot-sequence recorder armed and returns the resulting profile.
func recordKernelProfile(m *wasm.Module, feats core.Features, n int) (*profile.Profile, error) {
	r := profile.NewRecorder()
	inst, err := newDispatchInstance(m, feats, nil, r)
	if err != nil {
		return nil, err
	}
	defer inst.Close()
	if _, err := inst.Invoke("run", uint64(n)); err != nil {
		return nil, err
	}
	return r.Profile(), nil
}

// WriteDispatchJSON emits a document carrying only the dispatch record
// — the fast path for regenerating BENCH_dispatch.json.
func WriteDispatchJSON(w io.Writer, quick bool) error {
	rec, err := MeasureDispatch(quick)
	if err != nil {
		return err
	}
	rep := JSONReport{Schema: JSONSchema, Quick: quick, Dispatch: rec}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RecordCorpusProfile records the hot-sequence corpus the runtime
// embeds as its default fusion profile (internal/profile/corpus): every
// dispatch kernel at test size, under both dispatch configs, merged.
// cage-bench -record-profile writes it to stdout; the output is checked
// in as corpus/polybench.json.
func RecordCorpusProfile(quick bool) (*profile.Profile, error) {
	kernels := dispatchKernels
	if !quick {
		// The full corpus sweeps every kernel, so the embedded default
		// covers sequence shapes beyond the dispatch trio.
		kernels = nil
		for _, k := range polybench.Kernels() {
			kernels = append(kernels, k.Name)
		}
	}
	merged := &profile.Profile{}
	for _, name := range kernels {
		k, err := polybench.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range dispatchConfigs {
			m, err := polybench.Build(k, cfg.compile)
			if err != nil {
				return nil, err
			}
			prof, err := recordKernelProfile(m, cfg.feats, k.TestN)
			if err != nil {
				return nil, err
			}
			merged.Merge(prof)
		}
	}
	return merged, nil
}

// WriteProfileJSON records the corpus profile and writes it to w in the
// profile's own JSON format (not a JSONReport document: the output is
// the checked-in corpus file).
func WriteProfileJSON(w io.Writer, quick bool) error {
	prof, err := RecordCorpusProfile(quick)
	if err != nil {
		return err
	}
	return prof.WriteJSON(w)
}
