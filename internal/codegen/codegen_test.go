package codegen

import (
	"testing"

	"cage/internal/alloc"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/mte"
	"cage/internal/wasm"
)

// compile builds a module from MiniC source.
func compile(t *testing.T, src string, opts Options) *wasm.Module {
	t.Helper()
	file, err := minicc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	layout := minicc.Layout64
	if !opts.Wasm64 {
		layout = minicc.Layout32
	}
	prog, err := minicc.Analyze(file, layout)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := Compile(prog, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// instantiate runs a compiled module with the standard host surface.
func instantiate(t *testing.T, m *wasm.Module, features core.Features) (*exec.Instance, *alloc.Allocator) {
	t.Helper()
	env := exec.NewHostModule("env")
	exec.Void1(env, "print_long", func(_ *exec.HostContext, _ int64) error { return nil })
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features:    features,
		HostModules: append(alloc.HostModules(), env),
		HostData:    host,
		Seed:        17,
	})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		t.Fatal("no __heap_base export")
	}
	a, err := alloc.New(inst, heapBase)
	if err != nil {
		t.Fatal(err)
	}
	host.A = a
	return inst, a
}

// run64 compiles with full hardening options and runs under features.
func run64(t *testing.T, src string, opts Options, features core.Features, fn string, args ...uint64) (uint64, error) {
	t.Helper()
	opts.Wasm64 = true
	m := compile(t, src, opts)
	inst, _ := instantiate(t, m, features)
	res, err := inst.Invoke(fn, args...)
	if err != nil {
		return 0, err
	}
	if len(res) == 0 {
		return 0, nil
	}
	return res[0], nil
}

func cageAll() core.Features { return core.CageAll() }

func hardenedOpts() Options {
	return Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}
}

func TestReturn42(t *testing.T) {
	got, err := run64(t, `long f(void) { return 42; }`, Options{}, core.Features{}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestArithmeticMix(t *testing.T) {
	src := `
long f(long a, long b) {
    int x = (int)a * 3;
    double d = (double)x / 2.0;
    long r = (long)(d * 4.0) + b % 7;
    return r - 1;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f", 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	// x=30, d=15.0, (long)(60.0)=60, 23%7=2, 60+2-1=61
	if got != 61 {
		t.Errorf("got %d, want 61", got)
	}
}

func TestLoopsAndConditionals(t *testing.T) {
	src := `
long f(long n) {
    long acc = 0;
    for (long i = 1; i <= n; i++) {
        if (i % 2 == 0) { acc += i; } else { acc -= i; }
    }
    long j = 0;
    while (j < 3) { acc++; j++; }
    do { acc--; } while (0);
    return acc;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Sum: -1+2-3+4-5+6-7+8-9+10 = 5; +3 -1 = 7
	if got != 7 {
		t.Errorf("got %d, want 7", int64(got))
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
long f(void) {
    long acc = 0;
    for (long i = 0; i < 100; i++) {
        if (i == 5) { continue; }
        if (i == 10) { break; }
        acc += i;
    }
    return acc;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 { // 0+1+2+3+4+6+7+8+9
		t.Errorf("got %d, want 40", got)
	}
}

func TestGlobalArrays(t *testing.T) {
	src := `
double data[8][8];
long n = 8;
long f(void) {
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            data[i][j] = (double)(i * 8 + j);
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            acc += data[i][j];
        }
    }
    return (long)acc;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 2016 { // sum 0..63
		t.Errorf("got %d, want 2016", got)
	}
}

func TestRecursionFib(t *testing.T) {
	src := `
long fib(long n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}`
	got, err := run64(t, src, Options{}, core.Features{}, "fib", 15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestLocalArrayDynamicIndex(t *testing.T) {
	// A dynamically-indexed local array is an "unsafe GEP" allocation:
	// Algorithm 1 instruments it; the program still runs correctly
	// under full Cage.
	src := `
long f(long n) {
    long buf[16];
    for (long i = 0; i < 16; i++) { buf[i] = i * n; }
    long acc = 0;
    for (long i = 0; i < 16; i++) { acc += buf[i]; }
    return acc;
}`
	for _, tc := range []struct {
		name string
		opts Options
		feat core.Features
	}{
		{"baseline", Options{}, core.Features{}},
		{"cage", hardenedOpts(), cageAll()},
		{"memsafety", Options{Wasm64: true, StackSanitizer: true}, core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := run64(t, src, tc.opts, tc.feat, "f", 3)
			if err != nil {
				t.Fatal(err)
			}
			if got != 360 { // 3 * (0+..+15)
				t.Errorf("got %d, want 360", got)
			}
		})
	}
}

func TestAlgorithm1Decisions(t *testing.T) {
	src := `
extern void sink(char* p);
long f(long n) {
    long safe[4];
    long unsafe[4];
    char escaped[8];
    safe[0] = 1; safe[1] = 2; safe[2] = 3; safe[3] = 4;
    unsafe[n] = 9;
    sink(escaped);
    return safe[0] + unsafe[0];
}`
	file, err := minicc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.File.Funcs[0]
	byName := map[string]*minicc.Symbol{}
	for _, s := range fn.StackAllocs {
		byName[s.Name] = s
	}
	if byName["safe"] == nil || byName["safe"].Instrument {
		t.Error("statically-safe array must not be instrumented (Alg. 1)")
	}
	if byName["unsafe"] == nil || !byName["unsafe"].Instrument {
		t.Error("dynamically-indexed array must be instrumented")
	}
	if byName["escaped"] == nil || !byName["escaped"].Instrument {
		t.Error("escaping array must be instrumented")
	}
	// allocations[0] ("safe") is untagged: it already guards the frame
	// boundary, so no guard slot is needed.
	if fn.NeedsGuardSlot {
		t.Error("guard slot inserted although the boundary slot is untagged")
	}
}

func TestGuardSlotWhenFirstAllocInstrumented(t *testing.T) {
	src := `
long f(long n) {
    long buf[4];
    buf[n] = 1;
    return buf[0];
}`
	file, _ := minicc.Parse(src)
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.File.Funcs[0].NeedsGuardSlot {
		t.Error("guard slot missing although the first allocation is tagged (Fig. 8b)")
	}
}

func TestStackOverflowTrapsUnderCage(t *testing.T) {
	// Classic off-by-N stack smash: out-of-bounds write past a local
	// array. Baseline wasm happily corrupts the neighbouring slot; Cage
	// traps with a tag mismatch.
	src := `
long f(long n) {
    long target[2];
    long buf[2];
    target[0] = 7;
    for (long i = 0; i < n; i++) {
        buf[i] = 99;
    }
    return target[0];
}`
	if _, err := run64(t, src, Options{}, core.Features{}, "f", 4); err != nil {
		t.Fatalf("baseline must not trap: %v", err)
	}
	_, err := run64(t, src, hardenedOpts(), cageAll(), "f", 4)
	if !exec.IsTrap(err, exec.TrapTagMismatch) {
		t.Errorf("stack smash under Cage: got %v, want tag mismatch", err)
	}
	// In-bounds stays fine.
	if _, err := run64(t, src, hardenedOpts(), cageAll(), "f", 2); err != nil {
		t.Errorf("in-bounds run trapped: %v", err)
	}
}

func TestStackUseAfterReturnTraps(t *testing.T) {
	src := `
long* leak(void) {
    long buf[4];
    buf[0] = 1;
    long* p = &buf[0];
    return p;
}
long f(void) {
    long* p = leak();
    return *p;
}`
	// Baseline: stale stack reads succeed silently.
	if _, err := run64(t, src, Options{}, core.Features{}, "f"); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	_, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if !exec.IsTrap(err, exec.TrapTagMismatch) {
		t.Errorf("use-after-return under Cage: got %v", err)
	}
}

func TestHeapMallocFree(t *testing.T) {
	src := `
extern char* malloc(long n);
extern void free(char* p);
long f(long n) {
    long* a = (long*)malloc(n * 8);
    for (long i = 0; i < n; i++) { a[i] = i; }
    long acc = 0;
    for (long i = 0; i < n; i++) { acc += a[i]; }
    free((char*)a);
    return acc;
}`
	for _, hardened := range []bool{false, true} {
		opts, feat := Options{}, core.Features{}
		if hardened {
			opts, feat = hardenedOpts(), cageAll()
		}
		got, err := run64(t, src, opts, feat, "f", 100)
		if err != nil {
			t.Fatalf("hardened=%v: %v", hardened, err)
		}
		if got != 4950 {
			t.Errorf("hardened=%v: got %d, want 4950", hardened, got)
		}
	}
}

func TestHeapUseAfterFreeTraps(t *testing.T) {
	src := `
extern char* malloc(long n);
extern void free(char* p);
long f(void) {
    long* a = (long*)malloc(64);
    a[0] = 42;
    free((char*)a);
    return a[0];
}`
	if _, err := run64(t, src, Options{}, core.Features{}, "f"); err != nil {
		t.Fatalf("baseline UAF must not trap: %v", err)
	}
	_, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if !exec.IsTrap(err, exec.TrapTagMismatch) {
		t.Errorf("heap UAF under Cage: got %v", err)
	}
}

func TestHeapOverflowTraps(t *testing.T) {
	src := `
extern char* malloc(long n);
long f(long n) {
    char* a = malloc(16);
    char* b = malloc(16);
    a[n] = 65;
    return (long)b[0];
}`
	if _, err := run64(t, src, Options{}, core.Features{}, "f", 17); err != nil {
		t.Fatalf("baseline overflow must not trap: %v", err)
	}
	_, err := run64(t, src, hardenedOpts(), cageAll(), "f", 17)
	if !exec.IsTrap(err, exec.TrapTagMismatch) {
		t.Errorf("heap overflow under Cage: got %v", err)
	}
}

func TestStructsAndPointers(t *testing.T) {
	src := `
struct Point { long x; long y; double w; };
long f(void) {
    struct Point p;
    p.x = 3; p.y = 4; p.w = 1.5;
    struct Point* q = &p;
    q->x += 10;
    return q->x * p.y + (long)(p.w * 2.0);
}`
	got, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 { // 13*4 + 3
		t.Errorf("got %d, want 55", got)
	}
}

func TestFunctionPointersThroughVTable(t *testing.T) {
	src := `
struct VTable { long (*op)(long, long); };
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
long f(long sel) {
    struct VTable vt;
    if (sel) { vt.op = add; } else { vt.op = mul; }
    return vt.op(6, 7);
}`
	for _, tc := range []struct {
		name string
		opts Options
		feat core.Features
	}{
		{"baseline", Options{}, core.Features{}},
		{"ptrauth", Options{Wasm64: true, PtrAuth: true}, core.Features{PtrAuth: true}},
		{"full", hardenedOpts(), cageAll()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := run64(t, src, tc.opts, tc.feat, "f", 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != 13 {
				t.Errorf("add: got %d", got)
			}
			got, err = run64(t, src, tc.opts, tc.feat, "f", 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Errorf("mul: got %d", got)
			}
		})
	}
}

func TestForgedFunctionPointerTrapsUnderPtrAuth(t *testing.T) {
	// Overwriting a signed function pointer with a raw table index
	// must fail authentication (paper Fig. 9 / Listing 1 defense).
	src := `
long add(long a, long b) { return a + b; }
long f(void) {
    long (*op)(long, long);
    op = add;
    long* slot = (long*)&op;
    *slot = 1;
    return op(1, 2);
}`
	// Without pointer auth the forged raw index works.
	got, err := run64(t, src, Options{Wasm64: true, StackSanitizer: true},
		core.Features{MemSafety: true, MTEMode: mte.ModeSync}, "f")
	if err != nil {
		t.Fatalf("unauthenticated forge should work: %v", err)
	}
	if got != 3 {
		t.Errorf("forged call = %d", got)
	}
	// With pointer auth it traps.
	_, err = run64(t, src, hardenedOpts(), cageAll(), "f")
	if !exec.IsTrap(err, exec.TrapAuthFailure) {
		t.Errorf("forged pointer under ptr-auth: got %v", err)
	}
}

func TestCageBuiltins(t *testing.T) {
	src := `
long f(void) {
    char* raw = (char*)4096;
    char* seg = __builtin_segment_new(raw, 32);
    long* p = (long*)seg;
    p[0] = 11; p[1] = 31;
    long acc = p[0] + p[1];
    __builtin_segment_free(seg, 32);
    return acc;
}`
	got, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("builtin segment use = %d", got)
	}
}

func TestStringsAndChars(t *testing.T) {
	src := `
long strlen_(char* s) {
    long n = 0;
    while (s[n]) { n++; }
    return n;
}
long f(void) {
    char* msg = "hello cage";
    return strlen_(msg);
}`
	got, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("strlen = %d", got)
	}
}

func TestGlobalScalarInit(t *testing.T) {
	src := `
long base = 100;
double scale = 2.5;
int neg = -7;
long f(void) { return base + (long)(scale * 4.0) + neg; }`
	got, err := run64(t, src, Options{}, core.Features{}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 103 {
		t.Errorf("got %d, want 103", got)
	}
}

func TestTernaryAndLogicalOps(t *testing.T) {
	src := `
long f(long a, long b) {
    long m = a > b ? a : b;
    long flag = (a > 0 && b > 0) || (a < 0 && b < 0);
    return m * 10 + flag;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 91 {
		t.Errorf("got %d, want 91", got)
	}
}

func TestWasm32Baseline(t *testing.T) {
	src := `
int g;
int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) { acc += i; }
    g = acc;
    return acc;
}`
	m := compile(t, src, Options{Wasm64: false})
	if m.Mems[0].Memory64 {
		t.Fatal("wasm32 build produced a 64-bit memory")
	}
	inst, _ := instantiate(t, m, core.Features{})
	res, err := inst.Invoke("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 45 {
		t.Errorf("wasm32 result = %d", res[0])
	}
}

func TestSanitizerRejectsWasm32(t *testing.T) {
	file, _ := minicc.Parse(`long f(void) { return 0; }`)
	prog, err := minicc.Analyze(file, minicc.Layout32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, Options{Wasm64: false, StackSanitizer: true}); err == nil {
		t.Error("stack sanitizer accepted on wasm32")
	}
	if _, err := Compile(prog, Options{Wasm64: false, PtrAuth: true}); err == nil {
		t.Error("pointer auth accepted on wasm32")
	}
}

func TestCompiledModuleRoundTripsBinary(t *testing.T) {
	src := `
extern char* malloc(long n);
long add(long a, long b) { return a + b; }
long f(long n) {
    long buf[4];
    buf[n % 4] = 5;
    long (*op)(long, long) = add;
    long* h = (long*)malloc(16);
    h[0] = buf[n % 4];
    return op(h[0], n);
}`
	m := compile(t, src, hardenedOpts())
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := instantiate(t, m2, cageAll())
	res, err := inst.Invoke("f", 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 12 {
		t.Errorf("round-tripped module result = %d", res[0])
	}
}

func TestCharSignedness(t *testing.T) {
	src := `
long f(void) {
    char c = (char)200;
    unsigned char u = (char)200;
    return (long)c + (long)u;
}`
	got, err := run64(t, src, Options{}, core.Features{}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if int64(got) != -56+200 {
		t.Errorf("got %d, want 144", int64(got))
	}
}

func TestPointerArithmetic(t *testing.T) {
	src := `
extern char* malloc(long n);
long f(void) {
    long* a = (long*)malloc(80);
    for (long i = 0; i < 10; i++) { *(a + i) = i * i; }
    long* p = a + 3;
    p += 2;
    long diff = p - a;
    return *p + diff;
}`
	got, err := run64(t, src, hardenedOpts(), cageAll(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 { // 25 + 5
		t.Errorf("got %d, want 30", got)
	}
}
