package cage

import (
	"sync"
	"testing"
)

func TestEngineCompileSourceIsCached(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()

	m1, err := eng.CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eng.CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("identical source compiled twice: cache returned distinct modules")
	}
	s := eng.Stats()
	if s.Cache.Misses != 1 || s.Cache.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss, 1 hit", s.Cache)
	}

	// A different source must not hit.
	if _, err := eng.CompileSource(quickProgram + "\nlong extra(void) { return 1; }"); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Cache.Misses != 2 {
		t.Errorf("cache stats after new source = %+v, want 2 misses", s.Cache)
	}
}

func TestEngineDecodeModuleIsCached(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()

	mod, err := NewToolchain(FullHardening()).CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := mod.Encode()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := eng.DecodeModule(bin)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := eng.DecodeModule(bin)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("identical binary decoded twice: cache returned distinct modules")
	}
}

// TestEngineInvokeConcurrent drives every Table 3 configuration from 8+
// goroutines. Under SandboxingOnly the pool cap is the 15-tag budget;
// under FullHardening it is 1 (combined mode), so this also exercises
// checkout blocking.
func TestEngineInvokeConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline64", Baseline64()},
		{"memsafety", MemorySafetyOnly()},
		{"sandboxing", SandboxingOnly()},
		{"full", FullHardening()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(tc.cfg)
			defer eng.Close()
			mod, err := eng.CompileSource(quickProgram)
			if err != nil {
				t.Fatal(err)
			}
			const workers = 8
			const iters = 10
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						res, err := eng.Invoke(mod, "sum", 100)
						if err != nil {
							t.Error(err)
							return
						}
						if res[0] != 4950 {
							t.Errorf("sum = %d, want 4950", res[0])
						}
					}
				}()
			}
			wg.Wait()

			s := eng.Stats()
			if budget := poolBudget(tc.cfg); budget != 0 && s.Pools.Live > budget {
				t.Errorf("live instances %d exceed sandbox budget %d", s.Pools.Live, budget)
			}
			if eng.Runtime().sandboxes.InUse() > 15 {
				t.Errorf("sandbox tags in use: %d > 15", eng.Runtime().sandboxes.InUse())
			}
		})
	}
}

// TestEngineTrapDoesNotPoisonNextInvoke is the facade-level poison
// regression: a use-after-free trap in one pooled invocation must not
// corrupt the result of the next, which reuses the same instance.
func TestEngineTrapDoesNotPoisonNextInvoke(t *testing.T) {
	eng := NewEngine(FullHardening()) // pool cap 1: next Invoke reuses the instance
	defer eng.Close()
	mod, err := eng.CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Invoke(mod, "uaf"); !IsMemorySafetyViolation(err) {
		t.Fatalf("uaf: got %v, want memory-safety violation", err)
	}
	for i := 0; i < 3; i++ {
		res, err := eng.Invoke(mod, "sum", 100)
		if err != nil {
			t.Fatalf("invoke %d after trap: %v", i, err)
		}
		if res[0] != 4950 {
			t.Fatalf("invoke %d after trap: sum = %d, want 4950", i, res[0])
		}
	}
	if s := eng.Stats(); s.Pools.Spawned != 1 {
		t.Errorf("spawned = %d, want 1 (trap must not force re-instantiation)", s.Pools.Spawned)
	}
}

// TestEngineMultipleModulesShareTagBudget is the regression test for
// idle instances pinning sandbox tags: under FullHardening the combined
// tag mode allows a single sandbox (§6.4), so invoking a second module
// must evict the first module's idle instance and proceed — not fail
// with ErrSandboxesExhausted.
func TestEngineMultipleModulesShareTagBudget(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	m1, err := eng.CompileSource(`long one(void) { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eng.CompileSource(`long two(void) { return 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	// Every instance lifetime — fresh or recycled, either module — must
	// carry a distinct PAC modifier (§6.3): identical modifiers would
	// let pointers signed in one instance authenticate in another.
	modifiers := make(map[uint64]int)
	cases := []struct {
		mod  *Module
		fn   string
		want uint64
	}{{m1, "one", 1}, {m2, "two", 2}}
	for i := 0; i < 3; i++ {
		for _, c := range cases {
			err := eng.WithInstance(c.mod, func(inst *Instance) error {
				modifiers[inst.Raw().Keys().Modifier]++
				res, err := inst.Invoke(c.fn)
				if err != nil {
					return err
				}
				if res[0] != c.want {
					t.Errorf("round %d %s = %d, want %d", i, c.fn, res[0], c.want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("round %d %s: %v", i, c.fn, err)
			}
		}
	}
	for mod, n := range modifiers {
		if n > 1 {
			t.Errorf("PAC modifier %#x shared by %d instance lifetimes", mod, n)
		}
	}
}

func TestEngineWithInstance(t *testing.T) {
	eng := NewEngine(MemorySafetyOnly())
	defer eng.Close()
	mod, err := eng.CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.WithInstance(mod, func(inst *Instance) error {
		res, err := inst.Invoke("sum", 10)
		if err != nil {
			return err
		}
		if res[0] != 45 {
			t.Errorf("sum = %d, want 45", res[0])
		}
		if inst.Allocator() == nil {
			t.Error("pooled instance lacks allocator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInstanceCloseReleasesSandboxTag verifies the teardown half of the
// §7.4 tag budget: closing instances frees tags for new instantiations.
func TestInstanceCloseReleasesSandboxTag(t *testing.T) {
	cfg := SandboxingOnly()
	mod, err := NewToolchain(cfg).CompileSource(quickProgram)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(cfg)
	var insts []*Instance
	for i := 0; i < 15; i++ {
		inst, err := rt.Instantiate(mod)
		if err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		insts = append(insts, inst)
	}
	if _, err := rt.Instantiate(mod); err == nil {
		t.Fatal("16th instantiation succeeded; tag budget not enforced")
	}
	if err := insts[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Instantiate(mod); err != nil {
		t.Fatalf("instantiation after Close failed: %v", err)
	}
}
