package cage

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// forkGuest leaves a malloc'd block behind in init: forks inherit the
// pointer and the block's MTE tag state, then diverge privately.
const forkGuest = `
extern char* malloc(long n);
extern void free(char* p);

long p;

long setup() {
    p = (long)malloc(64);
    *(long*)p = 7;
    return 0;
}

long poke(long v) { *(long*)p = v; return 0; }
long peek(long x) { return *(long*)p; }
long drop(long x) { free((char*)p); return 0; }
`

// TestForkIsolation proves two instances forked from one snapshot share
// nothing observable: neither ordinary writes nor MTE tag transitions
// (a free in one fork retags only that fork's memory) leak across.
func TestForkIsolation(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	// Combined mode budgets one sandbox tag; §6.4 tag reuse lets the two
	// forks live side by side.
	if err := eng.EnableExtendedSandboxes(); err != nil {
		t.Fatal(err)
	}
	mod, err := eng.CompileSource(forkGuest)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap, err := eng.Snapshot(ctx, mod, WithInit("setup"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.InitFunction() != "setup" || snap.InitFuel() == 0 {
		t.Fatalf("snapshot init metadata: fn=%q fuel=%d", snap.InitFunction(), snap.InitFuel())
	}

	a, err := eng.NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := eng.NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Both forks start from the post-init state.
	for name, inst := range map[string]*Instance{"a": a, "b": b} {
		res, err := inst.Call(ctx, "peek", []uint64{0})
		if err != nil || res.Values[0] != 7 {
			t.Fatalf("fork %s initial peek: %v %v", name, res.Values, err)
		}
	}

	// A write in fork a is invisible to fork b.
	if _, err := a.Call(ctx, "poke", []uint64{42}); err != nil {
		t.Fatal(err)
	}
	if res, err := b.Call(ctx, "peek", []uint64{0}); err != nil || res.Values[0] != 7 {
		t.Fatalf("fork b observed fork a's write: %v %v", res.Values, err)
	}

	// A free in fork a retags only fork a's granules: a's stale access
	// traps (use-after-free caught by MTE), while b's pointer — same
	// virtual address, b's own tag state — stays valid.
	if _, err := a.Call(ctx, "drop", []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call(ctx, "peek", []uint64{0}); err == nil {
		t.Error("fork a's use-after-free was not caught")
	}
	if res, err := b.Call(ctx, "peek", []uint64{0}); err != nil || res.Values[0] != 7 {
		t.Errorf("fork a's free leaked into fork b's tag state: %v %v", res.Values, err)
	}
}

// TestConcurrentForkCheckouts hammers one snapshot from 16 goroutines
// through the pooled Call path under the 15-tag §7.4 budget, so
// checkouts genuinely queue, recycle, and fork concurrently. Run under
// -race in CI.
func TestConcurrentForkCheckouts(t *testing.T) {
	eng := NewEngine(SandboxingOnly())
	defer eng.Close()
	mod, err := eng.CompileSource(forkGuest)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Snapshot(ctx, mod, WithInit("setup")); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := eng.Call(ctx, mod, "peek", []uint64{0})
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d call %d: %w", g, i, err)
					return
				}
				if res.Values[0] != 7 {
					errCh <- fmt.Errorf("goroutine %d call %d: fork saw %d, want the snapshot state 7", g, i, res.Values[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := eng.SnapshotStats()
	if st.Restores == 0 {
		t.Error("no checkout was ever served by forking the snapshot")
	}
}

// TestEngineSnapshotMemoized pins the cache contract: identical
// (module, config, init) snapshot requests share one image and one
// init execution.
func TestEngineSnapshotMemoized(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	mod, err := eng.CompileSource(forkGuest)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s1, err := eng.Snapshot(ctx, mod, WithInit("setup"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Snapshot(ctx, mod, WithInit("setup"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("identical snapshot requests built two images")
	}
	if st := eng.SnapshotStats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("snapshot cache stats %+v: want a hit on the second request", st)
	}
}

// TestAutoSnapshotBaseline pins the automatic fast path: even without
// an explicit Engine.Snapshot, pooled resets fork from the post-start
// baseline image — and disabling auto-snapshot restores full replays
// with identical observable behavior.
func TestAutoSnapshotBaseline(t *testing.T) {
	run := func(t *testing.T, auto bool) {
		eng := NewEngine(FullHardening())
		defer eng.Close()
		eng.SetAutoSnapshot(auto)
		mod, err := eng.CompileSource(forkGuest)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			// setup + peek on one pooled instance per iteration: each
			// checkout must start from pristine state.
			if _, err := eng.Call(ctx, mod, "setup", nil); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
		st := eng.SnapshotStats()
		if auto && st.Restores == 0 {
			t.Error("auto-snapshot on: no pooled reset forked the baseline image")
		}
		if !auto && st.Restores != 0 {
			t.Errorf("auto-snapshot off: %d restores still happened", st.Restores)
		}
	}
	t.Run("on", func(t *testing.T) { run(t, true) })
	t.Run("off", func(t *testing.T) { run(t, false) })
}
