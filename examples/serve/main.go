// Serving modules: stand up the cage-serve daemon in-process, register
// a module through the content-addressed upload path, invoke it over
// HTTP as two tenants with different quotas, and read the tenant
// metrics back — the multi-tenant workflow from README "Serving
// modules", self-contained.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cage"
	"cage/internal/serve"
)

const program = `
extern char* malloc(long n);

long sum(long n) {
    long* a = (long*)malloc(n * 8);
    long s = 0;
    for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
    return s;
}

long spin(long x) { while (1) { x = x + 1; } return x; }
`

func main() {
	// Full hardening: MTE memory safety + sandboxing + PAC. Per §7.4
	// that leaves ONE sandbox tag, so every tenant below shares a
	// single pooled instance — admission control and quotas are what
	// keep them from starving each other.
	srv, err := serve.New(serve.Options{
		Config:     cage.FullHardening(),
		ConfigName: "full",
		DefaultQuota: serve.QuotaPolicy{
			Timeout: 750 * time.Millisecond,
		},
		Tenants: map[string]serve.QuotaPolicy{
			// "metered" gets a much tighter fuel ceiling; its requests
			// cannot raise it.
			"metered": {Fuel: 10_000, Timeout: 2 * time.Second},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("cage-serve listening on %s (config full)\n\n", base)

	// Tenant "alice" uploads MiniC source; the daemon compiles it and
	// names the module by content hash.
	alice := &serve.Client{BaseURL: base, Tenant: "alice"}
	id, err := alice.Upload([]byte(program))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered module %s\n", id)

	res, err := alice.Invoke(serve.InvokeRequest{Module: id, Function: "sum", Args: []uint64{1000}})
	if err != nil {
		log.Fatal(err)
	}
	var events uint64
	for _, n := range res.Events {
		events += n
	}
	fmt.Printf("alice: sum(1000) = %d (%d arch events metered)\n", res.Values[0], events)

	// Tenant "metered" invokes the SAME module (the upload is cached —
	// same bytes, same id) but under its 10k-event fuel ceiling, which
	// sum(1000) exceeds: the guest traps, mapped to a structured 422.
	metered := &serve.Client{BaseURL: base, Tenant: "metered"}
	if _, err := metered.Invoke(serve.InvokeRequest{Module: id, Function: "sum", Args: []uint64{1000}}); err != nil {
		fmt.Printf("metered: sum(1000) rejected: %v\n", err)
	}

	// A runaway guest cannot hold the single sandbox tag past its
	// quota: the timeout interrupts it and the instance is recycled.
	start := time.Now()
	if _, err := alice.Invoke(serve.InvokeRequest{Module: id, Function: "spin", Args: []uint64{0}}); err != nil {
		fmt.Printf("alice: spin interrupted after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
	}
	res, err = alice.Invoke(serve.InvokeRequest{Module: id, Function: "sum", Args: []uint64{10}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: sum(10) = %d — the tag survived the runaway guest\n\n", res.Values[0])

	// Per-tenant, per-module observability: the same numbers /metrics
	// exports in Prometheus text.
	stats, err := alice.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"alice", "metered"} {
		t := stats.Tenants[name]
		fmt.Printf("tenant %-8s requests=%d ok=%d traps=%d interrupted=%d fuel=%d\n",
			name, t.Requests, t.OK, t.Traps, t.Interrupted, t.Fuel)
	}
	m := stats.Modules[id]
	fmt.Printf("module %s… pool: spawned=%d recycled=%d live=%d\n",
		id[:16], m.Pool.Spawned, m.Pool.Recycled, m.Pool.Live)
}
