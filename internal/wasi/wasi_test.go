package wasi

import (
	"bytes"
	"testing"

	"cage/internal/exec"
	"cage/internal/wasm"
)

// newInstance builds a bare wasm64 instance with the WASI surface; the
// *System itself is the host data (it implements Provider).
func newInstance(t *testing.T, sys *System) *exec.Instance {
	t.Helper()
	m := &wasm.Module{}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	inst, err := exec.NewInstance(m, exec.Config{
		HostModules: []*exec.HostModule{HostModule()},
		HostData:    sys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func call(t *testing.T, inst *exec.Instance, name string, args ...uint64) []uint64 {
	t.Helper()
	hf, found := HostModule().Lookup(name)
	if !found {
		t.Fatalf("no wasi function %s", name)
	}
	res, err := hf.Fn(inst.HostContext(nil), args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestFdWrite(t *testing.T) {
	var out bytes.Buffer
	sys := New(&out, nil)
	inst := newInstance(t, sys)

	// Lay out "hello" and an iovec {base=64, len=5} at address 128.
	if err := inst.WriteBytes(64, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteU64(128, 64); err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteU64(136, 5); err != nil {
		t.Fatal(err)
	}
	res := call(t, inst, "fd_write", 1, 128, 1, 256)
	if res[0] != ErrnoSuccess {
		t.Fatalf("fd_write errno %d", res[0])
	}
	if out.String() != "hello" {
		t.Errorf("stdout = %q", out.String())
	}
	n, err := inst.ReadU64(256)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("nwritten = %d", n)
	}
}

func TestFdWriteBadFd(t *testing.T) {
	sys := New(nil, nil)
	inst := newInstance(t, sys)
	res := call(t, inst, "fd_write", 7, 128, 0, 256)
	if res[0] != ErrnoBadf {
		t.Errorf("bad fd errno = %d, want %d", res[0], ErrnoBadf)
	}
}

func TestProcExit(t *testing.T) {
	sys := New(nil, nil)
	inst := newInstance(t, sys)
	hf, _ := HostModule().Lookup("proc_exit")
	_, err := hf.Fn(inst.HostContext(nil), []uint64{3})
	trap, ok := err.(*exec.Trap)
	if !ok || trap.Code != exec.TrapExit || trap.ExitCode != 3 {
		t.Errorf("proc_exit: got %v", err)
	}
}

func TestClockMonotone(t *testing.T) {
	sys := New(nil, nil)
	inst := newInstance(t, sys)
	call(t, inst, "clock_time_get", 0, 0, 64)
	t1, _ := inst.ReadU64(64)
	call(t, inst, "clock_time_get", 0, 0, 64)
	t2, _ := inst.ReadU64(64)
	if t2 <= t1 {
		t.Errorf("clock not monotone: %d then %d", t1, t2)
	}
}

func TestRandomGetDeterministic(t *testing.T) {
	mk := func() []byte {
		sys := New(nil, nil)
		inst := newInstance(t, sys)
		call(t, inst, "random_get", 64, 16)
		b, _ := inst.ReadBytes(64, 16)
		return b
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Error("random_get not reproducible across fresh systems")
	}
	var zero [16]byte
	if bytes.Equal(a, zero[:]) {
		t.Error("random_get produced zeros")
	}
}

func TestArgsRoundTrip(t *testing.T) {
	sys := New(nil, nil)
	sys.Args = []string{"prog", "x"}
	inst := newInstance(t, sys)

	call(t, inst, "args_sizes_get", 64, 72)
	argc, _ := inst.ReadU64(64)
	buflen, _ := inst.ReadU64(72)
	if argc != 2 || buflen != uint64(len("prog")+1+len("x")+1) {
		t.Fatalf("args_sizes_get = %d, %d", argc, buflen)
	}
	call(t, inst, "args_get", 128, 256)
	p0, _ := inst.ReadU64(128)
	b, _ := inst.ReadBytes(p0, 5)
	if string(b) != "prog\x00" {
		t.Errorf("argv[0] = %q", b)
	}
}
