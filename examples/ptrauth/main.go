// Ptrauth demonstrates the paper's Listing 1: a stack overflow that
// overwrites a vtable function pointer. On baseline WebAssembly the
// indirect call is redirected to the attacker's choice of (signature-
// compatible) function; with Cage's pointer authentication a forged raw
// index fails authentication, and with the full configuration the
// overflow itself is already caught by MTE.
package main

import (
	"context"
	"fmt"
	"log"

	"cage"
)

// The vulnerable program from the paper's Listing 1: `transfer` is the
// intended target, `grantRoot` the attacker's. The overflow rewrites
// vtable.f's raw table index.
const program = `
long audit_log = 0;
long root_granted = 0;

void transfer(void) { audit_log = audit_log + 1; }
void grantRoot(void) { root_granted = 1; }

struct VTable { void (*f)(void); void (*g)(void); };

long vulnerable(long inputLen) {
    struct VTable vtable;
    char buf[16];
    vtable.f = transfer;
    vtable.g = grantRoot;
    // strcpy(buf, attacker_input): the crafted input overwrites
    // vtable.f (the 8 bytes after buf) with grantRoot's raw table
    // index, 2.
    for (long i = 0; i < inputLen; i++) {
        buf[i] = (char)(i == 16 ? 2 : 0);
    }
    vtable.f();
    return root_granted;
}
`

func run(name string, cfg cage.Config, inputLen uint64) {
	tc := cage.NewToolchain(cfg)
	mod, err := tc.CompileSource(program)
	if err != nil {
		log.Fatalf("%s: compile: %v", name, err)
	}
	inst, err := cage.NewRuntime(cfg).Instantiate(mod)
	if err != nil {
		log.Fatalf("%s: instantiate: %v", name, err)
	}
	res, err := inst.Call(context.Background(), "vulnerable", []uint64{inputLen})
	switch {
	case err == nil && res.Values[0] != 0:
		fmt.Printf("%-28s control flow HIJACKED (grantRoot ran)\n", name+":")
	case err == nil:
		fmt.Printf("%-28s ran benignly\n", name+":")
	case cage.IsAuthFailure(err):
		fmt.Printf("%-28s forged pointer rejected: %v\n", name+":", err)
	case cage.IsMemorySafetyViolation(err):
		fmt.Printf("%-28s overflow caught before the call: %v\n", name+":", err)
	default:
		fmt.Printf("%-28s failed: %v\n", name+":", err)
	}
}

func main() {
	const smash = 17 // one byte into vtable.f's slot per iteration

	fmt.Println("Listing 1: function-pointer overwrite via stack overflow")
	fmt.Println()
	// Benign input on the hardened build: no false positives.
	run("full Cage, benign input", cage.FullHardening(), 8)
	// Attack on the baseline succeeds.
	run("baseline wasm64, attack", cage.Baseline64(), 24)
	// Pointer authentication alone rejects the forged raw index.
	run("ptr-auth only, attack", cage.PointerAuthOnly(), 24)
	// Full Cage stops the overflow before control flow is even at risk.
	run("full Cage, attack", cage.FullHardening(), 24)
	_ = smash
}
