// Package ptrlayout models the aarch64 userspace pointer bit layouts used
// by Cage, as shipped on Linux with and without MTE and PAC enabled
// (paper Fig. 3).
//
// A 64-bit pointer only uses the low 48 bits to address memory. Bit 55
// selects between kernel (1) and user (0) space. The remaining upper bits
// are repurposed by hardware extensions:
//
//	no extension:  [63:48] must replicate bit 55 (sign extension)
//	MTE:           [59:56] hold the 4-bit allocation tag
//	PAC:           [63:56] and, with TBI off, part of [54:48] hold the
//	               signature; on Linux with MTE enabled the PAC field is
//	               bits [63:60] plus [54:49] (10 bits usable, 7 minimum)
package ptrlayout
