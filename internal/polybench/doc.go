// Package polybench provides the PolyBench/C 3.2 kernels the paper
// evaluates Cage on (§7.1), written in MiniC so the Cage toolchain
// compiles them, plus bit-faithful Go reference implementations used to
// validate the compiled results.
//
// Every kernel allocates its arrays through malloc (exercising the
// hardened allocator like the paper's polybench harness does through
// wasi-libc), initializes them deterministically, runs the kernel, and
// returns a checksum over the output data as a double. The kernels are
// the workload behind Fig. 14 (runtime overhead) and Fig. 15
// (pointer-authentication overhead on the modified 2mm).
package polybench
