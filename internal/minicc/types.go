package minicc

import (
	"fmt"
	"strings"
)

// Kind classifies a MiniC type.
type Kind int

// Type kinds.
const (
	KVoid Kind = iota
	KChar
	KInt
	KLong
	KFloat
	KDouble
	KPtr
	KArray
	KStruct
	KFunc
)

// Type is a MiniC type. Scalar types are interned singletons; derived
// types are structural.
type Type struct {
	Kind     Kind
	Unsigned bool
	Elem     *Type // pointer/array element
	ArrayLen int64
	Struct   *StructInfo
	Sig      *FuncSig // KFunc
}

// StructInfo is a struct layout.
type StructInfo struct {
	Name   string
	Fields []Field
	Size   int64
	Align  int64
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

// FuncSig is a function signature.
type FuncSig struct {
	Params []*Type
	Ret    *Type
}

// Interned scalar types.
var (
	TypeVoid   = &Type{Kind: KVoid}
	TypeChar   = &Type{Kind: KChar}
	TypeUChar  = &Type{Kind: KChar, Unsigned: true}
	TypeInt    = &Type{Kind: KInt}
	TypeUInt   = &Type{Kind: KInt, Unsigned: true}
	TypeLong   = &Type{Kind: KLong}
	TypeULong  = &Type{Kind: KLong, Unsigned: true}
	TypeFloat  = &Type{Kind: KFloat}
	TypeDouble = &Type{Kind: KDouble}
)

// PtrTo builds a pointer type.
func PtrTo(t *Type) *Type { return &Type{Kind: KPtr, Elem: t} }

// ArrayOf builds an array type.
func ArrayOf(t *Type, n int64) *Type { return &Type{Kind: KArray, Elem: t, ArrayLen: n} }

// Layout parameterizes the data model: LP64 under wasm64 (8-byte
// pointers and longs) and ILP32 under wasm32 (4-byte pointers and longs,
// matching wasi-libc), so the same front end serves both baselines
// (paper Table 3).
type Layout struct {
	PtrSize  int64
	LongSize int64
}

// Layout64 and Layout32 are the two target layouts.
var (
	Layout64 = Layout{PtrSize: 8, LongSize: 8}
	Layout32 = Layout{PtrSize: 4, LongSize: 4}
)

// Size returns the byte size of t under the layout.
func (l Layout) Size(t *Type) int64 {
	switch t.Kind {
	case KVoid:
		return 0
	case KChar:
		return 1
	case KInt, KFloat:
		return 4
	case KLong:
		return l.LongSize
	case KDouble:
		return 8
	case KPtr, KFunc:
		return l.PtrSize
	case KArray:
		return t.ArrayLen * l.Size(t.Elem)
	case KStruct:
		return t.Struct.Size
	}
	return 0
}

// Align returns the alignment of t under the layout.
func (l Layout) Align(t *Type) int64 {
	switch t.Kind {
	case KArray:
		return l.Align(t.Elem)
	case KStruct:
		return t.Struct.Align
	default:
		if s := l.Size(t); s > 0 {
			return s
		}
		return 1
	}
}

// LayoutStruct assigns field offsets and the total size.
func (l Layout) LayoutStruct(si *StructInfo) {
	var off, maxAlign int64 = 0, 1
	for i := range si.Fields {
		f := &si.Fields[i]
		a := l.Align(f.Type)
		if a > maxAlign {
			maxAlign = a
		}
		off = (off + a - 1) &^ (a - 1)
		f.Offset = off
		off += l.Size(f.Type)
	}
	si.Align = maxAlign
	si.Size = (off + maxAlign - 1) &^ (maxAlign - 1)
	if si.Size == 0 {
		si.Size = maxAlign
	}
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case KChar, KInt, KLong:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating type.
func (t *Type) IsFloat() bool { return t.Kind == KFloat || t.Kind == KDouble }

// IsArith reports whether t is numeric.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == KPtr }

// IsScalar reports whether t fits in one wasm value.
func (t *Type) IsScalar() bool { return t.IsArith() || t.IsPtr() || t.Kind == KFunc }

// Equal is structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind || t.Unsigned != o.Unsigned {
		return false
	}
	switch t.Kind {
	case KPtr:
		return t.Elem.Equal(o.Elem)
	case KArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Equal(o.Elem)
	case KStruct:
		return t.Struct == o.Struct
	case KFunc:
		if len(t.Sig.Params) != len(o.Sig.Params) || !t.Sig.Ret.Equal(o.Sig.Ret) {
			return false
		}
		for i := range t.Sig.Params {
			if !t.Sig.Params[i].Equal(o.Sig.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	u := ""
	if t.Unsigned {
		u = "unsigned "
	}
	switch t.Kind {
	case KVoid:
		return "void"
	case KChar:
		return u + "char"
	case KInt:
		return u + "int"
	case KLong:
		return u + "long"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case KStruct:
		return "struct " + t.Struct.Name
	case KFunc:
		var ps []string
		for _, p := range t.Sig.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(*)(%s)", t.Sig.Ret, strings.Join(ps, ", "))
	}
	return "?"
}

// Decay converts arrays to element pointers (C array decay).
func (t *Type) Decay() *Type {
	if t.Kind == KArray {
		return PtrTo(t.Elem)
	}
	return t
}

// CommonArith implements the usual arithmetic conversions, simplified:
// double > float > long > int (char promotes to int).
func CommonArith(a, b *Type) *Type {
	rank := func(t *Type) int {
		switch t.Kind {
		case KDouble:
			return 5
		case KFloat:
			return 4
		case KLong:
			return 3
		default:
			return 2
		}
	}
	ra, rb := rank(a), rank(b)
	if ra >= rb {
		return promote(a)
	}
	return promote(b)
}

// promote applies integer promotion (char -> int).
func promote(t *Type) *Type {
	if t.Kind == KChar {
		if t.Unsigned {
			return TypeUInt
		}
		return TypeInt
	}
	return t
}
