package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cage/internal/arch"
	"cage/internal/exec"
	"cage/internal/polybench"
)

// Machine-readable benchmark output (cage-bench -json): one record per
// (kernel, Table 3 variant) with the wall time, the timing-model event
// counts, and the fuel the run consumed, so BENCH_*.json trajectory
// files can be produced by CI instead of by hand.

// JSONSchema identifies the record layout; bump it when fields change
// incompatibly.
//
// v2 (frame-machine PR): adds the call_overhead record pricing
// guest→guest calls. Every cage-bench/v1 field is carried over
// unchanged — v1 consumers that tolerate unknown fields (the documented
// v1 contract) can read v2 documents as-is; the schema string is bumped
// because trajectory tooling keys comparisons on it and per-call
// numbers measured before the frame machine are not comparable after
// it.
const JSONSchema = "cage-bench/v2"

// KernelRecord is one kernel × variant measurement.
type KernelRecord struct {
	Kernel   string  `json:"kernel"`
	Variant  string  `json:"variant"`
	N        int     `json:"n"`
	Checksum float64 `json:"checksum"`
	// NsPerOp is the wall time of the single invocation (instantiation
	// excluded), comparable across runs of the same machine only.
	NsPerOp int64 `json:"ns_per_op"`
	// Fuel is the timing-model event total the invocation consumed —
	// the same unit cage.WithFuel meters, deterministic per (kernel,
	// variant, n).
	Fuel uint64 `json:"fuel"`
	// Events breaks Fuel down by event name (non-zero entries only).
	Events map[string]uint64 `json:"events"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Schema string `json:"schema"`
	Quick  bool   `json:"quick"`
	// Kernels is empty in documents produced by cage-loadgen, which
	// emits only the saturation record under the same schema.
	Kernels []KernelRecord `json:"kernels,omitempty"`
	// HostCall prices one guest→host crossing (typed adapter vs raw
	// slot); added with the public host-module API, omitted never —
	// consumers of cage-bench/v1 tolerate new fields.
	HostCall *HostCallRecord `json:"host_call,omitempty"`
	// CallOverhead prices one guest→guest call (recursive fib and
	// mutual-recursion kernels); added with cage-bench/v2.
	CallOverhead *CallOverheadRecord `json:"call_overhead,omitempty"`
	// Saturation is the multi-tenant service benchmark (p50/p99 latency
	// and throughput vs concurrency against a live cage-serve, per
	// sandbox preset), emitted by cage-loadgen; a compatible addition —
	// consumers tolerate unknown fields.
	Saturation *SaturationRecord `json:"saturation,omitempty"`
	// Snapshot prices warm checkouts (snapshot restore, copy and COW)
	// against cold starts across heap sizes; a compatible addition.
	Snapshot *SnapshotRecord `json:"snapshot,omitempty"`
	// Mitigation prices the Spectre-hardened preset against full — the
	// per-kernel fuel/cycle tax plus the adversary verdict table; a
	// compatible addition emitted by cage-bench -mitigation.
	Mitigation *MitigationRecord `json:"mitigation,omitempty"`
	// Dispatch prices the three dispatch tiers (legacy, lowered,
	// profile-guided fused) per kernel and config; a compatible
	// addition emitted by cage-bench -dispatch.
	Dispatch *DispatchRecord `json:"dispatch,omitempty"`
	// Scaling is the multicore scale-out A/B (locked vs fast serve path
	// across GOMAXPROCS × concurrency), emitted by cage-loadgen
	// -scaling; a compatible addition.
	Scaling *ScalingRecord `json:"scaling,omitempty"`
}

// runKernelRecord instantiates kernel k under variant v and measures
// one invocation of run(n).
func runKernelRecord(k polybench.Kernel, v Variant, n int) (KernelRecord, error) {
	rec := KernelRecord{Kernel: k.Name, Variant: v.Name, N: n}
	m, err := polybench.Build(k, v.Compile)
	if err != nil {
		return rec, err
	}
	var ctr arch.Counter
	inst, _, err := polybench.Instantiate(m, v.Features, &ctr)
	if err != nil {
		return rec, err
	}
	defer inst.Close()

	before := ctr.Snapshot()
	t0 := time.Now()
	res, err := inst.Invoke("run", uint64(n))
	elapsed := time.Since(t0)
	if err != nil {
		return rec, fmt.Errorf("bench: %s/%s: %w", k.Name, v.Name, err)
	}
	delta := ctr.DeltaSince(before)

	rec.Checksum = exec.F64Val(res[0])
	rec.NsPerOp = elapsed.Nanoseconds()
	rec.Fuel = delta.Total()
	rec.Events = delta.EventCounts()
	return rec, nil
}

// WriteJSON runs every PolyBench kernel under every Table 3 variant and
// writes the JSONReport document to w. quick selects the test problem
// sizes (the CI smoke configuration); otherwise the Fig. 14 sizes run.
func WriteJSON(w io.Writer, quick bool) error {
	rep := JSONReport{Schema: JSONSchema, Quick: quick}
	for _, k := range polybench.Kernels() {
		n := k.BenchN
		if quick {
			n = k.TestN
		}
		for _, v := range Table3Variants() {
			rec, err := runKernelRecord(k, v, n)
			if err != nil {
				return err
			}
			rep.Kernels = append(rep.Kernels, rec)
		}
	}
	hostCall, err := MeasureHostCall(quick)
	if err != nil {
		return err
	}
	rep.HostCall = hostCall
	callOverhead, err := MeasureCallOverhead(quick)
	if err != nil {
		return err
	}
	rep.CallOverhead = callOverhead
	snapshot, err := MeasureSnapshot(quick)
	if err != nil {
		return err
	}
	rep.Snapshot = snapshot
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteSnapshotJSON emits a document carrying only the snapshot
// record — the fast path for regenerating BENCH_snapshot.json without
// the full kernel sweep.
func WriteSnapshotJSON(w io.Writer, quick bool) error {
	rec, err := MeasureSnapshot(quick)
	if err != nil {
		return err
	}
	rep := JSONReport{Schema: JSONSchema, Quick: quick, Snapshot: rec}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
