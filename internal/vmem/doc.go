// Package vmem provides the mmap-backed guard-region linear memory
// behind the guard32 dispatch tier (WAVM-style virtual-memory bounds
// checks; ROADMAP "VM-assisted bounds").
//
// A Mapping is one anonymous PROT_NONE reservation of ReservationSize
// bytes: the full 4 GiB a 32-bit guest index can name, plus Headroom
// for the largest unchecked memarg offset and access width the guard
// lowering emits (ir.GuardMaxOffset). Exactly the committed prefix —
// the guest-visible memory — is readable and writable; every byte
// after it is unmapped in the MMU. A guard load or store therefore
// needs no Go-level bounds check at all: an out-of-bounds access
// faults in hardware, the executor (running with
// debug.SetPanicOnFault) recovers the fault panic, verifies the
// address belongs to the mapping, and converts it to the same
// TrapOutOfBounds the explicit check raises.
//
// Contract:
//
//   - Supported reports whether this build and kernel provide guard
//     mappings. It is constant per process: the lowering config's
//     Guard bit (and with it the program-cache identity) derives from
//     it once.
//   - Map reserves ReservationSize bytes and commits the first commit
//     bytes. SetCommitted grows (fresh zero pages) or shrinks
//     (decommit: the range is returned to PROT_NONE and its pages
//     discarded) the committed prefix; Unmap releases the reservation.
//   - Committed growth guarantees zeroed pages; shrink-then-grow
//     likewise. Reusing the still-committed prefix preserves its
//     contents — callers that need zeros there clear it themselves.
//   - Owns/GuestAddr classify a faulting host address, so the
//     executor's recover path re-panics on faults that are not guard
//     hits.
//
// The package compiles everywhere: without the cageguard build tag (or
// off Linux) the stub's Supported returns false and Map fails, exactly
// mirroring the cagecow pattern used by the snapshot COW path.
package vmem

// GuestLimit is the full 32-bit guest address space: the largest
// byte index a wasm32 access can name is GuestLimit-1.
const GuestLimit uint64 = 1 << 32

// Headroom is the PROT_NONE tail past GuestLimit. It must exceed the
// largest unchecked memarg offset (ir.GuardMaxOffset, 1<<20) plus the
// widest access (8 bytes); internal/exec cross-checks the two
// constants so the lowering and the reservation cannot drift apart.
const Headroom uint64 = 1 << 21

// ReservationSize is the size of one guard mapping.
const ReservationSize = GuestLimit + Headroom
