package adversary

import (
	"cage"
	"cage/internal/exploit"
)

// Table2Scenarios wraps the exploit package's eight CVE case studies as
// one scenario family. The programs and the expectation both come from
// cage/internal/exploit — this file adapts, it does not duplicate — so
// the matrix and the Table 2 suite share one verdict vocabulary by
// construction.
func Table2Scenarios() []Scenario {
	cases := exploit.Cases()
	out := make([]Scenario, 0, len(cases))
	for _, cs := range cases {
		out = append(out, &prog{
			name:     cs.CVE,
			family:   "table2",
			source:   cs.Source,
			entry:    "attack",
			arg:      cs.Arg,
			expect:   expectTable2,
			classify: classifyDamage,
		})
	}
	return out
}

// expectTable2 translates the exploit package's shared expectation
// table into the matrix vocabulary: configurations with the
// memory-safety extension trap with the memory-safety class, all
// others are exploited.
func expectTable2(cfg cage.Config) Outcome {
	exp := exploit.Expected(cfg.Features())
	if exp.Trap {
		return Outcome{Verdict: VerdictTrapped, Class: exp.Class}
	}
	return Outcome{Verdict: VerdictExploited}
}
