package wasm

import "math"

// Instruction constructors, used by the code generator and tests to keep
// instruction sequences readable.

// I32Const pushes a 32-bit integer constant.
func I32Const(v int32) Instr { return Instr{Op: OpI32Const, X: uint64(uint32(v))} }

// I64Const pushes a 64-bit integer constant.
func I64Const(v int64) Instr { return Instr{Op: OpI64Const, X: uint64(v)} }

// F32Const pushes a 32-bit float constant.
func F32Const(v float32) Instr { return Instr{Op: OpF32Const, F: float64(v)} }

// F64Const pushes a 64-bit float constant.
func F64Const(v float64) Instr { return Instr{Op: OpF64Const, F: v} }

// LocalGet reads local i.
func LocalGet(i uint32) Instr { return Instr{Op: OpLocalGet, X: uint64(i)} }

// LocalSet writes local i.
func LocalSet(i uint32) Instr { return Instr{Op: OpLocalSet, X: uint64(i)} }

// LocalTee writes local i, keeping the value on the stack.
func LocalTee(i uint32) Instr { return Instr{Op: OpLocalTee, X: uint64(i)} }

// GlobalGet reads global i.
func GlobalGet(i uint32) Instr { return Instr{Op: OpGlobalGet, X: uint64(i)} }

// GlobalSet writes global i.
func GlobalSet(i uint32) Instr { return Instr{Op: OpGlobalSet, X: uint64(i)} }

// Call invokes function fidx.
func Call(fidx uint32) Instr { return Instr{Op: OpCall, X: uint64(fidx)} }

// CallIndirect invokes through the table with expected type index ti.
func CallIndirect(ti uint32) Instr { return Instr{Op: OpCallIndirect, X: uint64(ti)} }

// Br branches to label depth d.
func Br(d uint32) Instr { return Instr{Op: OpBr, X: uint64(d)} }

// BrIf conditionally branches to label depth d.
func BrIf(d uint32) Instr { return Instr{Op: OpBrIf, X: uint64(d)} }

// BrTable builds a branch table with a default depth.
func BrTable(targets []uint32, def uint32) Instr {
	return Instr{Op: OpBrTable, Targets: targets, X: uint64(def)}
}

// Block opens a block with the given result signature.
func Block(bt BlockType) Instr { return Instr{Op: OpBlock, Block: bt} }

// Loop opens a loop with the given result signature.
func Loop(bt BlockType) Instr { return Instr{Op: OpLoop, Block: bt} }

// If opens a conditional with the given result signature.
func If(bt BlockType) Instr { return Instr{Op: OpIf, Block: bt} }

// Else separates the branches of an if.
func Else() Instr { return Instr{Op: OpElse} }

// End closes the innermost block/loop/if or the function body.
func End() Instr { return Instr{Op: OpEnd} }

// Op builds an immediate-free instruction.
func Op(op Opcode) Instr { return Instr{Op: op} }

// Load builds a load with a static offset (natural alignment).
func Load(op Opcode, offset uint64) Instr {
	align := uint64(0)
	for 1<<(align+1) <= op.AccessSize() {
		align++
	}
	return Instr{Op: op, X: align, Offset: offset}
}

// Store builds a store with a static offset (natural alignment).
func Store(op Opcode, offset uint64) Instr { return Load(op, offset) }

// SegmentNew builds segment.new with static offset o (paper Fig. 7).
func SegmentNew(o uint64) Instr { return Instr{Op: OpSegmentNew, Offset: o} }

// SegmentSetTag builds segment.set_tag with static offset o.
func SegmentSetTag(o uint64) Instr { return Instr{Op: OpSegmentSetTag, Offset: o} }

// SegmentFree builds segment.free with static offset o.
func SegmentFree(o uint64) Instr { return Instr{Op: OpSegmentFree, Offset: o} }

// PointerSign builds i64.pointer_sign.
func PointerSign() Instr { return Instr{Op: OpPointerSign} }

// PointerAuth builds i64.pointer_auth.
func PointerAuth() Instr { return Instr{Op: OpPointerAuth} }

// F64Bits converts a float constant to its global-initializer bits.
func F64Bits(v float64) uint64 { return math.Float64bits(v) }

// F64FromBits is the inverse of F64Bits.
func F64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// F32ConstBits converts a float32 constant to its raw bits.
func F32ConstBits(v float32) uint32 { return math.Float32bits(v) }

// F32FromBits is the inverse of F32ConstBits.
func F32FromBits(b uint32) float32 { return math.Float32frombits(b) }
