package exec

import (
	"math"
	"testing"
	"testing/quick"

	"cage/internal/wasm"
)

// Float and conversion coverage: cross-checked against Go semantics.

func f32m(body ...wasm.Instr) *wasm.Module {
	return buildModule(nil, []wasm.ValType{wasm.F32}, nil, body...)
}

func TestF32Arithmetic(t *testing.T) {
	m := f32m(
		wasm.F32Const(1.5), wasm.F32Const(2.5), wasm.Op(wasm.OpF32Mul),
		wasm.F32Const(0.25), wasm.Op(wasm.OpF32Sub),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if f := math.Float32frombits(uint32(got)); f != 3.5 {
		t.Errorf("f32 arith = %v", f)
	}
}

func TestF32PrecisionIsSingle(t *testing.T) {
	// 1/3 in f32 differs from f64: the engine must compute at single
	// precision for f32 ops.
	m := f32m(
		wasm.F32Const(1), wasm.F32Const(3), wasm.Op(wasm.OpF32Div),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(1) / float32(3)
	if math.Float32frombits(uint32(got)) != want {
		t.Errorf("f32 div = %v, want %v", math.Float32frombits(uint32(got)), want)
	}
}

func TestFloatMinMaxCopysign(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.F64}, nil,
		wasm.F64Const(-3), wasm.F64Const(2), wasm.Op(wasm.OpF64Min), // -3
		wasm.F64Const(5), wasm.Op(wasm.OpF64Max), // 5
		wasm.F64Const(-1), wasm.Op(wasm.OpF64Copysign), // -5
		wasm.Op(wasm.OpF64Abs),     // 5
		wasm.Op(wasm.OpF64Neg),     // -5
		wasm.Op(wasm.OpF64Floor),   // -5
		wasm.Op(wasm.OpF64Nearest), // -5
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if f := math.Float64frombits(got); f != -5 {
		t.Errorf("chain = %v, want -5", f)
	}
}

func TestConversionRoundTripsProperty(t *testing.T) {
	// i64 -> f64 -> i64 is exact for |v| < 2^53.
	conv := buildModule([]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64}, nil,
		wasm.LocalGet(0),
		wasm.Op(wasm.OpF64ConvertI64S),
		wasm.Op(wasm.OpI64TruncF64S),
		wasm.End())
	inst, err := NewInstance(conv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v int64) bool {
		v %= 1 << 52
		res, err := inst.Invoke("f", uint64(v))
		return err == nil && int64(res[0]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAndExtendProperty(t *testing.T) {
	m := buildModule([]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64}, nil,
		wasm.LocalGet(0),
		wasm.Op(wasm.OpI32WrapI64),
		wasm.Op(wasm.OpI64ExtendI32S),
		wasm.End())
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint64) bool {
		res, err := inst.Invoke("f", v)
		return err == nil && int64(res[0]) == int64(int32(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReinterpretRoundTrip(t *testing.T) {
	m := buildModule([]wasm.ValType{wasm.F64}, []wasm.ValType{wasm.F64}, nil,
		wasm.LocalGet(0),
		wasm.Op(wasm.OpI64ReinterpretF64),
		wasm.Op(wasm.OpF64ReinterpretI64),
		wasm.End())
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, -1.5, math.Pi, math.Inf(1)} {
		res, err := inst.Invoke("f", math.Float64bits(v))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64frombits(res[0]) != v {
			t.Errorf("reinterpret(%v) = %v", v, math.Float64frombits(res[0]))
		}
	}
}

func TestDemotePromote(t *testing.T) {
	m := buildModule(nil, []wasm.ValType{wasm.F64}, nil,
		wasm.F64Const(1.1),
		wasm.Op(wasm.OpF32DemoteF64),
		wasm.Op(wasm.OpF64PromoteF32),
		wasm.End())
	got, err := run1(t, Config{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if f := math.Float64frombits(got); f != float64(float32(1.1)) {
		t.Errorf("demote/promote = %v", f)
	}
}

func TestSelectBothTypes(t *testing.T) {
	m := buildModule([]wasm.ValType{wasm.I32}, []wasm.ValType{wasm.F64}, nil,
		wasm.F64Const(1.5), wasm.F64Const(2.5),
		wasm.LocalGet(0),
		wasm.Op(wasm.OpSelect),
		wasm.End())
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke("f", 1)
	if math.Float64frombits(res[0]) != 1.5 {
		t.Errorf("select(1) = %v", math.Float64frombits(res[0]))
	}
	res, _ = inst.Invoke("f", 0)
	if math.Float64frombits(res[0]) != 2.5 {
		t.Errorf("select(0) = %v", math.Float64frombits(res[0]))
	}
}
