package cage

import (
	"errors"
	"fmt"
	"sync"

	"cage/internal/core"
	"cage/internal/engine"
)

// Engine is the scalable front end to the toolchain and runtime: one
// process-wide compiled-module cache plus one recycled-instance pool
// per module, behind a concurrency-safe invocation API.
//
// Where Toolchain and Runtime pay compilation, validation, lowering,
// and whole-memory tagging (§7.2) on every CompileSource/Instantiate,
// an Engine pays them once per (source, Config) pair and then serves
// invocations from pooled instances that are reset — memory re-zeroed,
// MTE tags re-seeded, PAC modifier rotated — between checkouts; all
// instances of a module share one cached lowered program. Live
// instances are bounded by the §7.4 sandbox-tag budget: per-module
// invocation bursts queue instead of exhausting tags, when several
// modules compete for the budget spawning reclaims idle sibling
// instances, and when every tag is held by an in-flight invocation of
// another module the checkout queues until a tag is released or an
// instance is checked in — Invoke never surfaces
// core.ErrSandboxesExhausted under a plain budget.
// EnableExtendedSandboxes lifts the budget entirely.
//
//	eng := cage.NewEngine(cage.FullHardening())
//	mod, err := eng.CompileSource(src)
//	res, err := eng.Invoke(mod, "sum", 100) // safe from many goroutines
type Engine struct {
	cfg Config
	tc  *Toolchain
	rt  *Runtime

	modules engine.Cache[*Module]
	pools   engine.PoolSet

	// idle broadcasts instance checkins to spawns queued on the shared
	// tag budget (a Release alone never fires for a tag that moved to a
	// sibling pool's idle list).
	idleMu sync.Mutex
	idleCh chan struct{}
}

// NewEngine creates an engine for the configuration. The zero pool
// limit is derived from the configuration's sandbox-tag budget (15 for
// sandboxing alone, 1 when MTE also carries memory safety, unlimited
// without sandboxing, paper §6.4).
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg, tc: NewToolchain(cfg), rt: NewRuntime(cfg)}
	e.pools.Limit = poolBudget(cfg)
	// All pools draw reset seeds from the runtime's instantiation
	// counter: every instance lifetime in the process — fresh or
	// recycled, any module — gets a unique PAC modifier (§6.3).
	e.pools.NextSeed = func() uint64 { return e.rt.seed.Add(1) }
	return e
}

// poolBudget maps a configuration to the per-module live-instance cap.
func poolBudget(cfg Config) int {
	pol := core.NewPolicy(cfg.features())
	if cfg.Sandboxing && pol.MaxSandboxes <= 1<<20 {
		return pol.MaxSandboxes
	}
	return 0 // not tag-limited
}

// Runtime exposes the engine's process-level runtime (PAC key, sandbox
// allocator, stdio routing).
func (e *Engine) Runtime() *Runtime { return e.rt }

// EnableExtendedSandboxes lifts the 15-sandbox limit via §6.4 tag reuse
// and removes the pool cap it implies. Call before the first Invoke.
func (e *Engine) EnableExtendedSandboxes() {
	e.rt.EnableExtendedSandboxes()
	e.pools.Limit = 0
}

// SetPoolLimit overrides the per-module live-instance cap (0 =
// unlimited). Call before the first Invoke of a module.
func (e *Engine) SetPoolLimit(n int) { e.pools.Limit = n }

// cacheVariant encodes everything besides the source that influences
// compilation, so distinct configurations never share a cache entry.
func (c Config) cacheVariant() string {
	return fmt.Sprintf("w64=%t ms=%t sb=%t pa=%t", c.Wasm64, c.MemorySafety, c.Sandboxing, c.PointerAuth)
}

// CompileSource compiles a MiniC translation unit, memoizing on the
// source hash and configuration: recompiling identical source is O(1),
// and concurrent first compilations collapse into one (singleflight).
func (e *Engine) CompileSource(src string) (*Module, error) {
	key := engine.KeyOfString(src, "minicc|"+e.cfg.cacheVariant())
	return e.modules.GetOrBuild(key, func() (*Module, error) {
		return e.tc.CompileSource(src)
	})
}

// DecodeModule parses and validates a binary module image, memoized on
// the image hash (decoding is configuration-independent).
func (e *Engine) DecodeModule(bin []byte) (*Module, error) {
	key := engine.KeyOf(bin, "decode")
	return e.modules.GetOrBuild(key, func() (*Module, error) {
		return DecodeModule(bin)
	})
}

// pooledInstance adapts a linked Instance (interpreter instance plus
// hardened allocator) to the pool's Resetter protocol.
type pooledInstance Instance

func (p *pooledInstance) Reset(seed uint64) error {
	// Same order as a fresh instantiation: restore state, rewind the
	// allocator, then run the start function — which may itself
	// allocate through the (now empty) heap.
	if err := p.inst.ResetState(seed); err != nil {
		return err
	}
	if p.alloc != nil {
		p.alloc.Reset()
	}
	return p.inst.RunStart()
}

func (p *pooledInstance) Close() error { return p.inst.Close() }

// notifyIdle wakes spawns queued on the tag budget after a checkin.
func (e *Engine) notifyIdle() {
	e.idleMu.Lock()
	if e.idleCh != nil {
		close(e.idleCh)
		e.idleCh = nil
	}
	e.idleMu.Unlock()
}

// idleWait returns a channel closed at the next checkin.
func (e *Engine) idleWait() <-chan struct{} {
	e.idleMu.Lock()
	if e.idleCh == nil {
		e.idleCh = make(chan struct{})
	}
	ch := e.idleCh
	e.idleMu.Unlock()
	return ch
}

// pool returns (creating on first use) the instance pool for m.
//
// The spawn path handles cross-module tag pressure: when pools of
// several modules compete for one §7.4 tag budget, another module's
// idle instances may pin every tag. Rather than failing, spawning
// reclaims one idle sibling instance (closing it frees its tag) and
// retries. When even that fails — every tag is held by an in-flight
// invocation — the spawn queues until the allocator releases a tag or
// any pool checks an instance in, then retries, so Engine.Invoke
// queues across modules on §7.4 exhaustion instead of surfacing
// core.ErrSandboxesExhausted.
func (e *Engine) pool(m *Module) *engine.Pool {
	return e.pools.For(m, func() (engine.Resetter, error) {
		for {
			inst, err := e.rt.Instantiate(m)
			if err == nil {
				return (*pooledInstance)(inst), nil
			}
			if !errors.Is(err, core.ErrSandboxesExhausted) {
				return nil, err
			}
			if e.pools.ReclaimIdle(1) > 0 {
				continue
			}
			select {
			case <-e.rt.sandboxes.Released():
			case <-e.idleWait():
			}
		}
	})
}

// Invoke calls an exported function on a pooled instance of m. It is
// safe to call from many goroutines; under a sandbox-tag budget, excess
// concurrent invocations of the same module block until an instance
// frees up (cross-module exhaustion semantics are documented on
// Engine). The instance is reset before it becomes visible to the next
// caller, so a trap in one invocation (memory-safety violation, failed
// authentication...) cannot poison a later one.
func (e *Engine) Invoke(m *Module, fn string, args ...uint64) ([]uint64, error) {
	var res []uint64
	err := e.WithInstance(m, func(inst *Instance) error {
		var err error
		res, err = inst.Invoke(fn, args...)
		return err
	})
	return res, err
}

// InvokeF64 is Invoke for functions returning a double.
func (e *Engine) InvokeF64(m *Module, fn string, args ...uint64) (float64, error) {
	var res float64
	err := e.WithInstance(m, func(inst *Instance) error {
		var err error
		res, err = inst.InvokeF64(fn, args...)
		return err
	})
	return res, err
}

// WithInstance checks an instance of m out of the pool, runs f, and
// checks it back in (resetting it). Use it when an invocation needs
// more than Invoke offers — staging input in guest memory, reading
// results back, multiple calls against one live state.
func (e *Engine) WithInstance(m *Module, f func(inst *Instance) error) error {
	p := e.pool(m)
	r, err := p.Get()
	if err != nil {
		return err
	}
	defer func() {
		p.Put(r)
		e.notifyIdle()
	}()
	return f((*Instance)(r.(*pooledInstance)))
}

// EngineStats aggregates the engine's cache and pool counters.
type EngineStats struct {
	Cache    engine.CacheStats
	Programs engine.CacheStats
	Pools    engine.PoolStats
}

// Stats snapshots the module cache, the lowered-program cache, and the
// (summed) per-module pools.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Cache:    e.modules.Stats(),
		Programs: e.rt.ProgramCacheStats(),
		Pools:    e.pools.Stats(),
	}
}

// Close retires every pooled instance, returning their sandbox tags.
// The engine must not be used afterwards.
func (e *Engine) Close() { e.pools.Close() }
