//go:build !race

package exec

// raceEnabled reports whether the race detector is active; see
// race_on.go.
const raceEnabled = false
