package cage

import (
	"strings"
	"testing"
)

// TestConfigByName pins the preset-name mapping every CLI shares
// (cage-run, cage-bench, cage-objdump, cage-serve, cage-loadgen): each
// name resolves to exactly its Config, and an unknown name is an error
// naming the offender.
func TestConfigByName(t *testing.T) {
	cases := []struct {
		name string
		want Config
	}{
		{"full", Config{Wasm64: true, MemorySafety: true, Sandboxing: true, PointerAuth: true}},
		{"baseline32", Config{}},
		{"baseline64", Config{Wasm64: true}},
		{"memsafety", Config{Wasm64: true, MemorySafety: true}},
		{"ptrauth", Config{Wasm64: true, PointerAuth: true}},
		{"sandbox", Config{Wasm64: true, Sandboxing: true}},
		{"hardened", Config{Wasm64: true, MemorySafety: true, Sandboxing: true, PointerAuth: true, SpectreHarden: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ConfigByName(tc.name)
			if err != nil {
				t.Fatalf("ConfigByName(%q): %v", tc.name, err)
			}
			if got != tc.want {
				t.Errorf("ConfigByName(%q) = %+v, want %+v", tc.name, got, tc.want)
			}
		})
	}

	t.Run("unknown", func(t *testing.T) {
		_, err := ConfigByName("mte-ultra")
		if err == nil {
			t.Fatal("ConfigByName accepted an unknown preset")
		}
		if !strings.Contains(err.Error(), "mte-ultra") {
			t.Errorf("error %q does not name the unknown preset", err)
		}
	})

	t.Run("presets-match-constructors", func(t *testing.T) {
		for name, want := range map[string]Config{
			"full":       FullHardening(),
			"baseline32": Baseline32(),
			"baseline64": Baseline64(),
			"memsafety":  MemorySafetyOnly(),
			"ptrauth":    PointerAuthOnly(),
			"sandbox":    SandboxingOnly(),
			"hardened":   Hardened(),
		} {
			got, err := ConfigByName(name)
			if err != nil {
				t.Fatalf("ConfigByName(%q): %v", name, err)
			}
			if got != want {
				t.Errorf("ConfigByName(%q) = %+v, want the %s constructor's %+v", name, got, name, want)
			}
		}
	})
}
