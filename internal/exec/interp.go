package exec

import (
	"errors"
	"math"
	"math/bits"

	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

// compiledFunc is a function body with control-flow targets resolved.
type compiledFunc struct {
	fn        *wasm.Function
	typ       wasm.FuncType
	matchEnd  []int32 // for block/loop/if/else: pc of the matching end
	matchElse []int32 // for if: pc of its else, or -1
}

func compileFunc(m *wasm.Module, f *wasm.Function) (compiledFunc, error) {
	cf := compiledFunc{
		fn:        f,
		typ:       m.Types[f.TypeIdx],
		matchEnd:  make([]int32, len(f.Body)),
		matchElse: make([]int32, len(f.Body)),
	}
	for i := range cf.matchElse {
		cf.matchElse[i] = -1
	}
	var stack []int
	var elses []int // pending else pc per open frame (-1 if none)
	for pc, in := range f.Body {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			stack = append(stack, pc)
			elses = append(elses, -1)
		case wasm.OpElse:
			if len(stack) == 0 {
				return cf, newTrap(TrapUnreachable, "else without if at pc %d", pc)
			}
			cf.matchElse[stack[len(stack)-1]] = int32(pc)
			elses[len(elses)-1] = pc
		case wasm.OpEnd:
			if len(stack) == 0 {
				// Function-level end: must be the last instruction
				// (checked by validation).
				continue
			}
			open := stack[len(stack)-1]
			cf.matchEnd[open] = int32(pc)
			if e := elses[len(elses)-1]; e >= 0 {
				cf.matchEnd[e] = int32(pc)
			}
			stack = stack[:len(stack)-1]
			elses = elses[:len(elses)-1]
		}
	}
	return cf, nil
}

// ctrl is a runtime control-stack entry.
type ctrl struct {
	op     wasm.Opcode
	height int   // operand-stack height at entry
	arity  int   // branch arity (results for block/if, 0 for loop)
	endPC  int32 // pc of the matching end
	loopPC int32 // pc of the loop instruction (for back-edges)
}

// invoke runs function fidx with args, returning result values.
func (inst *Instance) invoke(fidx uint32, args []uint64) ([]uint64, error) {
	if inst.depth >= inst.maxCallDepth {
		return nil, newTrap(TrapCallDepth, "call depth %d", inst.depth)
	}
	inst.depth++
	defer func() { inst.depth-- }()

	if int(fidx) < len(inst.imports) {
		hf := inst.imports[fidx]
		res, err := hf.Fn(inst, args)
		if err != nil {
			var t *Trap
			if errors.As(err, &t) {
				return nil, t
			}
			return nil, &Trap{Code: TrapHost, Msg: err.Error()}
		}
		return res, nil
	}
	di := int(fidx) - len(inst.imports)
	if di >= len(inst.funcs) {
		return nil, newTrap(TrapIndirectCall, "function index %d out of range", fidx)
	}
	cf := &inst.funcs[di]
	if len(args) != len(cf.typ.Params) {
		return nil, newTrap(TrapIndirectCall, "function %d expects %d args, got %d",
			fidx, len(cf.typ.Params), len(args))
	}
	locals := make([]uint64, len(cf.typ.Params)+len(cf.fn.Locals))
	copy(locals, args)
	return inst.run(cf, locals)
}

// run executes a compiled function body.
func (inst *Instance) run(cf *compiledFunc, locals []uint64) ([]uint64, error) {
	body := cf.fn.Body
	ctr := inst.counter
	var stack []uint64
	ctrls := []ctrl{{op: wasm.OpEnd, arity: len(cf.typ.Results), endPC: int32(len(body) - 1)}}

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	// branch performs br to relative depth d, returning the new pc.
	branch := func(d int, pc int) int {
		idx := len(ctrls) - 1 - d
		fr := ctrls[idx]
		if fr.op == wasm.OpLoop {
			stack = stack[:fr.height]
			ctrls = ctrls[:idx+1]
			return int(fr.loopPC) // re-enter loop body after the loop opcode
		}
		// Carry the label arity values.
		vals := stack[len(stack)-fr.arity:]
		tmp := make([]uint64, fr.arity)
		copy(tmp, vals)
		stack = append(stack[:fr.height], tmp...)
		ctrls = ctrls[:idx]
		return int(fr.endPC) // skip to after the matching end
	}

	pc := 0
	for pc < len(body) {
		in := body[pc]
		op := in.Op
		switch op {
		case wasm.OpUnreachable:
			return nil, newTrap(TrapUnreachable, "at pc %d", pc)
		case wasm.OpNop:
		case wasm.OpBlock:
			arity := 0
			if _, ok := in.Block.Result(); ok {
				arity = 1
			}
			ctrls = append(ctrls, ctrl{op: op, height: len(stack), arity: arity, endPC: cf.matchEnd[pc]})
		case wasm.OpLoop:
			ctrls = append(ctrls, ctrl{op: op, height: len(stack), endPC: cf.matchEnd[pc], loopPC: int32(pc)})
		case wasm.OpIf:
			ctr.Add(arch.EvBranch, 1)
			arity := 0
			if _, ok := in.Block.Result(); ok {
				arity = 1
			}
			cond := pop()
			ctrls = append(ctrls, ctrl{op: op, height: len(stack), arity: arity, endPC: cf.matchEnd[pc]})
			if uint32(cond) == 0 {
				if e := cf.matchElse[pc]; e >= 0 {
					pc = int(e) // fall into the else arm
				} else {
					pc = int(cf.matchEnd[pc]) - 1 // jump to the end
				}
			}
		case wasm.OpElse:
			// Reached from the then-arm: skip over the else arm.
			pc = int(cf.matchEnd[pc]) - 1
		case wasm.OpEnd:
			ctrls = ctrls[:len(ctrls)-1]
			if len(ctrls) == 0 {
				res := make([]uint64, len(cf.typ.Results))
				copy(res, stack[len(stack)-len(res):])
				return res, nil
			}
		case wasm.OpBr:
			ctr.Add(arch.EvBranch, 1)
			pc = branch(int(in.X), pc)
		case wasm.OpBrIf:
			ctr.Add(arch.EvBranch, 1)
			if uint32(pop()) != 0 {
				pc = branch(int(in.X), pc)
			}
		case wasm.OpBrTable:
			ctr.Add(arch.EvBrTable, 1)
			i := uint32(pop())
			d := uint32(in.X)
			if uint64(i) < uint64(len(in.Targets)) {
				d = in.Targets[i]
			}
			pc = branch(int(d), pc)
		case wasm.OpReturn:
			ctr.Add(arch.EvReturn, 1)
			res := make([]uint64, len(cf.typ.Results))
			copy(res, stack[len(stack)-len(res):])
			return res, nil
		case wasm.OpCall:
			ctr.Add(arch.EvCall, 1)
			ft, err := inst.module.FuncTypeAt(uint32(in.X))
			if err != nil {
				return nil, newTrap(TrapIndirectCall, "%v", err)
			}
			n := len(ft.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := inst.invoke(uint32(in.X), args)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpCallIndirect:
			ctr.Add(arch.EvCallIndirect, 1)
			ti := uint32(pop())
			if uint64(ti) >= uint64(len(inst.table)) {
				return nil, newTrap(TrapIndirectCall, "table index %d out of range", ti)
			}
			fidx := inst.table[ti]
			if fidx < 0 {
				return nil, newTrap(TrapIndirectCall, "null table entry %d", ti)
			}
			want := inst.module.Types[in.X]
			got, err := inst.module.FuncTypeAt(uint32(fidx))
			if err != nil {
				return nil, newTrap(TrapIndirectCall, "%v", err)
			}
			if !got.Equal(want) {
				return nil, newTrap(TrapIndirectCall,
					"signature mismatch: table entry %d has %v, expected %v", ti, got, want)
			}
			n := len(want.Params)
			args := make([]uint64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			res, err := inst.invoke(uint32(fidx), args)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			ctr.Add(arch.EvSelect, 1)
			c := uint32(pop())
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}
		case wasm.OpLocalGet:
			ctr.Add(arch.EvLocal, 1)
			push(locals[in.X])
		case wasm.OpLocalSet:
			ctr.Add(arch.EvLocal, 1)
			locals[in.X] = pop()
		case wasm.OpLocalTee:
			ctr.Add(arch.EvLocal, 1)
			locals[in.X] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			ctr.Add(arch.EvGlobal, 1)
			push(inst.globals[in.X])
		case wasm.OpGlobalSet:
			ctr.Add(arch.EvGlobal, 1)
			inst.globals[in.X] = pop()
		case wasm.OpI32Const, wasm.OpI64Const:
			ctr.Add(arch.EvConst, 1)
			push(in.X)
		case wasm.OpF32Const:
			ctr.Add(arch.EvConst, 1)
			push(uint64(math.Float32bits(float32(in.F))))
		case wasm.OpF64Const:
			ctr.Add(arch.EvConst, 1)
			push(math.Float64bits(in.F))
		case wasm.OpMemorySize:
			ctr.Add(arch.EvALU, 1)
			push(inst.memSize / wasm.PageSize)
		case wasm.OpMemoryGrow:
			ctr.Add(arch.EvMemGrow, 1)
			push(inst.memoryGrow(pop()))
		case wasm.OpMemoryFill:
			if err := inst.memoryFill(&stack); err != nil {
				return nil, err
			}
		case wasm.OpMemoryCopy:
			if err := inst.memoryCopy(&stack); err != nil {
				return nil, err
			}
		case wasm.OpSegmentNew:
			length := pop()
			ptr := pop()
			tagged, err := inst.segmentNew(ptr, length, in.Offset)
			if err != nil {
				return nil, err
			}
			push(tagged)
		case wasm.OpSegmentSetTag:
			length := pop()
			tagged := pop()
			ptr := pop()
			if err := inst.segmentSetTag(ptr, tagged, length, in.Offset); err != nil {
				return nil, err
			}
		case wasm.OpSegmentFree:
			length := pop()
			tagged := pop()
			if err := inst.segmentFree(tagged, length, in.Offset); err != nil {
				return nil, err
			}
		case wasm.OpPointerSign:
			ctr.Add(arch.EvPACSign, 1)
			if inst.features.PtrAuth {
				push(inst.keys.Sign(pop()))
			}
			// Without the feature the instruction is a no-op fallback,
			// mirroring deployment on hardware without PAC.
		case wasm.OpPointerAuth:
			ctr.Add(arch.EvPACAuth, 1)
			if inst.features.PtrAuth {
				v, err := inst.keys.Auth(pop())
				if err != nil {
					if errors.Is(err, pac.ErrAuthFailed) {
						return nil, newTrap(TrapAuthFailure, "i64.pointer_auth at pc %d", pc)
					}
					return nil, err
				}
				push(v)
			}
		default:
			if op.IsLoad() {
				if err := inst.doLoad(in, &stack); err != nil {
					return nil, err
				}
			} else if op.IsStore() {
				if err := inst.doStore(in, &stack); err != nil {
					return nil, err
				}
			} else if err := inst.numeric(in, &stack); err != nil {
				return nil, err
			}
		}
		pc++
	}
	// Bodies are end-terminated, so this is unreachable for valid code.
	return nil, newTrap(TrapUnreachable, "fell off function body")
}

// effectiveAddr applies the instance's sandboxing strategy to a guest
// index and access size, returning the in-bounds physical offset.
func (inst *Instance) effectiveAddr(idx, offset, size uint64, write bool) (uint64, error) {
	ctr := inst.counter
	switch inst.strategy {
	case stratGuard32:
		// 32-bit wasm: 4 GiB reservation + guard pages; no per-access
		// cost. The Go-level check stands in for the MMU.
		addr := uint64(uint32(idx)) + offset
		limit := inst.memSize
		if inst.skipBounds {
			limit = uint64(len(inst.mem)) // buggy lowering reaches host data
		}
		if addr+size > limit || addr+size < addr {
			return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d (guard page)", addr, size)
		}
		return addr, nil

	case stratBounds64:
		full := idx + offset
		tag := ptrlayout.Tag(full)
		addr := ptrlayout.Address(ptrlayout.StripTag(full))
		if !inst.skipBounds {
			ctr.Add(arch.EvBoundsCheck, 1)
			if addr+size > inst.memSize || addr+size < addr {
				return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d >= 0x%x", addr, size, inst.memSize)
			}
		} else if addr+size > uint64(len(inst.mem)) || addr+size < addr {
			return 0, newTrap(TrapOutOfBounds, "address 0x%x+%d (host fault)", addr, size)
		}
		if inst.features.MemSafety {
			if write {
				ctr.Add(arch.EvTagCheckStore, 1)
			} else {
				ctr.Add(arch.EvTagCheckLoad, 1)
			}
			if err := inst.tags.CheckAccess(addr, size, tag, write); err != nil {
				return 0, newTrap(TrapTagMismatch, "%v", err)
			}
		}
		return addr, nil

	default: // stratMTE64, Fig. 12b / Fig. 13
		masked := idx
		if !inst.skipBounds {
			ctr.Add(arch.EvMask, 1)
			masked = inst.policy.MaskIndex(idx)
		}
		full := inst.heapBase + masked + offset
		tag := ptrlayout.Tag(full)
		addr := ptrlayout.Address(ptrlayout.StripTag(full))
		if write {
			ctr.Add(arch.EvTagCheckStore, 1)
		} else {
			ctr.Add(arch.EvTagCheckLoad, 1)
		}
		// Addresses beyond the mapped region belong to the runtime: the
		// tag memory reports tag 0 there, so the check below faults.
		if addr+size > uint64(len(inst.mem)) || addr+size < addr {
			return 0, newTrap(TrapTagMismatch,
				"sandbox violation: address 0x%x outside mapped memory (runtime tag 0, pointer tag %#x)", addr, tag)
		}
		if err := inst.tags.CheckAccess(addr, size, tag, write); err != nil {
			return 0, newTrap(TrapTagMismatch, "%v", err)
		}
		return addr, nil
	}
}

func (inst *Instance) doLoad(in wasm.Instr, stack *[]uint64) error {
	inst.counter.Add(arch.EvLoad, 1)
	s := *stack
	idx := s[len(s)-1]
	size := in.Op.AccessSize()
	addr, err := inst.effectiveAddr(idx, in.Offset, size, false)
	if err != nil {
		return err
	}
	var raw uint64
	for i := uint64(0); i < size; i++ {
		raw |= uint64(inst.mem[addr+i]) << (8 * i)
	}
	var v uint64
	switch in.Op {
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load32U:
		v = raw
	case wasm.OpI64Load, wasm.OpF64Load:
		v = raw
	case wasm.OpI32Load8S:
		v = uint64(uint32(int32(int8(raw))))
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		v = raw & 0xFF
	case wasm.OpI32Load16S:
		v = uint64(uint32(int32(int16(raw))))
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		v = raw & 0xFFFF
	case wasm.OpI64Load8S:
		v = uint64(int64(int8(raw)))
	case wasm.OpI64Load16S:
		v = uint64(int64(int16(raw)))
	case wasm.OpI64Load32S:
		v = uint64(int64(int32(raw)))
	}
	s[len(s)-1] = v
	return nil
}

func (inst *Instance) doStore(in wasm.Instr, stack *[]uint64) error {
	inst.counter.Add(arch.EvStore, 1)
	s := *stack
	val := s[len(s)-1]
	idx := s[len(s)-2]
	*stack = s[:len(s)-2]
	size := in.Op.AccessSize()
	addr, err := inst.effectiveAddr(idx, in.Offset, size, true)
	if err != nil {
		return err
	}
	for i := uint64(0); i < size; i++ {
		inst.mem[addr+i] = byte(val >> (8 * i))
	}
	return nil
}

// memoryGrow grows the guest memory by delta pages, returning the old
// page count or ^0 on failure.
func (inst *Instance) memoryGrow(deltaPages uint64) uint64 {
	oldPages := inst.memSize / wasm.PageSize
	newPages := oldPages + deltaPages
	if inst.memType.Limits.HasMax && newPages > inst.memType.Limits.Max {
		return ^uint64(0)
	}
	if newPages > 1<<32 { // 256 TiB cap to keep the simulation sane
		return ^uint64(0)
	}
	hostLen := uint64(len(inst.mem)) - inst.memSize
	newSize := newPages * wasm.PageSize
	grown := make([]byte, newSize+hostLen)
	copy(grown, inst.mem[:inst.memSize])
	copy(grown[newSize:], inst.mem[inst.memSize:])
	inst.mem = grown
	oldSize := inst.memSize
	inst.memSize = newSize
	if inst.tags != nil {
		inst.tags.Grow(newSize + hostLen)
		if inst.features.Sandbox && newSize > oldSize {
			// New pages join the sandbox.
			if err := inst.tags.SetTagRange(oldSize, newSize-oldSize, inst.sandbox); err == nil {
				inst.counter.Add(arch.EvSTGGranule, (newSize-oldSize)/mte.GranuleSize)
			}
		}
	}
	return oldPages
}

func (inst *Instance) memoryFill(stack *[]uint64) error {
	s := *stack
	n := s[len(s)-1]
	val := byte(s[len(s)-2])
	dst := s[len(s)-3]
	*stack = s[:len(s)-3]
	if n == 0 {
		return nil
	}
	// Streamed as 8-byte stores for cost purposes.
	inst.counter.Add(arch.EvStore, (n+7)/8)
	addr, err := inst.effectiveAddr(dst, 0, n, true)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		inst.mem[addr+i] = val
	}
	return nil
}

func (inst *Instance) memoryCopy(stack *[]uint64) error {
	s := *stack
	n := s[len(s)-1]
	src := s[len(s)-2]
	dst := s[len(s)-3]
	*stack = s[:len(s)-3]
	if n == 0 {
		return nil
	}
	inst.counter.Add(arch.EvLoad, (n+7)/8)
	inst.counter.Add(arch.EvStore, (n+7)/8)
	srcAddr, err := inst.effectiveAddr(src, 0, n, false)
	if err != nil {
		return err
	}
	dstAddr, err := inst.effectiveAddr(dst, 0, n, true)
	if err != nil {
		return err
	}
	copy(inst.mem[dstAddr:dstAddr+n], inst.mem[srcAddr:srcAddr+n])
	return nil
}

// Segment instruction implementations. Without the memory-safety
// feature they degrade gracefully: segment.new returns its pointer
// unchanged and the others are no-ops, matching Cage's software-fallback
// deployment model (paper §4.1).

// guestTag translates a guest pointer's tag nibble into the physical
// tag under the combined internal+external split (Fig. 13b): the guest
// never controls the sandbox bit, so bit 56 is replaced by the
// instance's sandbox identity. Outside combined mode it is the identity.
func (inst *Instance) guestTag(ptr uint64) uint64 {
	if inst.strategy == stratMTE64 && inst.features.MemSafety {
		t := (ptrlayout.Tag(ptr) &^ 1) | inst.sandbox
		return ptrlayout.WithTag(ptr, t)
	}
	return ptr
}

func (inst *Instance) segmentNew(ptr, length, offset uint64) (uint64, error) {
	if !inst.features.MemSafety {
		return ptr + offset, nil
	}
	inst.counter.Add(arch.EvIRG, 1)
	before := inst.segs.GranulesTagged
	tagged, err := inst.segs.New(ptr, length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return 0, newTrap(TrapSegment, "%v", err)
	}
	return tagged, nil
}

func (inst *Instance) segmentSetTag(ptr, tagged, length, offset uint64) error {
	if !inst.features.MemSafety {
		return nil
	}
	before := inst.segs.GranulesTagged
	err := inst.segs.SetTag(ptr, inst.guestTag(tagged), length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return newTrap(TrapSegment, "%v", err)
	}
	return nil
}

func (inst *Instance) segmentFree(tagged, length, offset uint64) error {
	if !inst.features.MemSafety {
		return nil
	}
	inst.counter.Add(arch.EvIRG, 1)
	before := inst.segs.GranulesTagged
	err := inst.segs.Free(inst.guestTag(tagged), length, offset)
	inst.counter.Add(arch.EvSTGGranule, inst.segs.GranulesTagged-before)
	if err != nil {
		return newTrap(TrapSegment, "%v", err)
	}
	return nil
}

// numeric executes the pure value instructions.
func (inst *Instance) numeric(in wasm.Instr, stack *[]uint64) error {
	ctr := inst.counter
	s := *stack
	op := in.Op

	top := func() *uint64 { return &s[len(s)-1] }
	pop2 := func() (uint64, uint64) {
		b := s[len(s)-1]
		a := s[len(s)-2]
		*stack = s[:len(s)-1]
		return a, b
	}
	setTop2 := func(v uint64) { s[len(s)-2] = v }

	b32 := func(f func(a, b uint32) uint32) {
		ctr.Add(arch.EvALU, 1)
		a, b := pop2()
		setTop2(uint64(f(uint32(a), uint32(b))))
	}
	b64 := func(f func(a, b uint64) uint64) {
		ctr.Add(arch.EvALU, 1)
		a, b := pop2()
		setTop2(f(a, b))
	}
	cmp := func(f func(a, b uint64) bool) {
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		if f(a, b) {
			setTop2(1)
		} else {
			setTop2(0)
		}
	}
	f64bin := func(ev arch.Event, f func(a, b float64) float64) {
		ctr.Add(ev, 1)
		a, b := pop2()
		setTop2(math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b))))
	}
	f32bin := func(ev arch.Event, f func(a, b float32) float32) {
		ctr.Add(ev, 1)
		a, b := pop2()
		setTop2(uint64(math.Float32bits(f(
			math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))))))
	}
	f64un := func(ev arch.Event, f func(a float64) float64) {
		ctr.Add(ev, 1)
		t := top()
		*t = math.Float64bits(f(math.Float64frombits(*t)))
	}
	f32un := func(ev arch.Event, f func(a float32) float32) {
		ctr.Add(ev, 1)
		t := top()
		*t = uint64(math.Float32bits(f(math.Float32frombits(uint32(*t)))))
	}
	conv := func(f func(v uint64) uint64) {
		ctr.Add(arch.EvConv, 1)
		t := top()
		*t = f(*t)
	}

	switch op {
	// i32 compare / test.
	case wasm.OpI32Eqz:
		ctr.Add(arch.EvCmp, 1)
		t := top()
		if uint32(*t) == 0 {
			*t = 1
		} else {
			*t = 0
		}
	case wasm.OpI32Eq:
		cmp(func(a, b uint64) bool { return uint32(a) == uint32(b) })
	case wasm.OpI32Ne:
		cmp(func(a, b uint64) bool { return uint32(a) != uint32(b) })
	case wasm.OpI32LtS:
		cmp(func(a, b uint64) bool { return int32(a) < int32(b) })
	case wasm.OpI32LtU:
		cmp(func(a, b uint64) bool { return uint32(a) < uint32(b) })
	case wasm.OpI32GtS:
		cmp(func(a, b uint64) bool { return int32(a) > int32(b) })
	case wasm.OpI32GtU:
		cmp(func(a, b uint64) bool { return uint32(a) > uint32(b) })
	case wasm.OpI32LeS:
		cmp(func(a, b uint64) bool { return int32(a) <= int32(b) })
	case wasm.OpI32LeU:
		cmp(func(a, b uint64) bool { return uint32(a) <= uint32(b) })
	case wasm.OpI32GeS:
		cmp(func(a, b uint64) bool { return int32(a) >= int32(b) })
	case wasm.OpI32GeU:
		cmp(func(a, b uint64) bool { return uint32(a) >= uint32(b) })

	// i64 compare / test.
	case wasm.OpI64Eqz:
		ctr.Add(arch.EvCmp, 1)
		t := top()
		if *t == 0 {
			*t = 1
		} else {
			*t = 0
		}
	case wasm.OpI64Eq:
		cmp(func(a, b uint64) bool { return a == b })
	case wasm.OpI64Ne:
		cmp(func(a, b uint64) bool { return a != b })
	case wasm.OpI64LtS:
		cmp(func(a, b uint64) bool { return int64(a) < int64(b) })
	case wasm.OpI64LtU:
		cmp(func(a, b uint64) bool { return a < b })
	case wasm.OpI64GtS:
		cmp(func(a, b uint64) bool { return int64(a) > int64(b) })
	case wasm.OpI64GtU:
		cmp(func(a, b uint64) bool { return a > b })
	case wasm.OpI64LeS:
		cmp(func(a, b uint64) bool { return int64(a) <= int64(b) })
	case wasm.OpI64LeU:
		cmp(func(a, b uint64) bool { return a <= b })
	case wasm.OpI64GeS:
		cmp(func(a, b uint64) bool { return int64(a) >= int64(b) })
	case wasm.OpI64GeU:
		cmp(func(a, b uint64) bool { return a >= b })

	// f32/f64 compare.
	case wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge:
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		x, y := math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))
		var r bool
		switch op {
		case wasm.OpF32Eq:
			r = x == y
		case wasm.OpF32Ne:
			r = x != y
		case wasm.OpF32Lt:
			r = x < y
		case wasm.OpF32Gt:
			r = x > y
		case wasm.OpF32Le:
			r = x <= y
		case wasm.OpF32Ge:
			r = x >= y
		}
		if r {
			setTop2(1)
		} else {
			setTop2(0)
		}
	case wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge:
		ctr.Add(arch.EvCmp, 1)
		a, b := pop2()
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var r bool
		switch op {
		case wasm.OpF64Eq:
			r = x == y
		case wasm.OpF64Ne:
			r = x != y
		case wasm.OpF64Lt:
			r = x < y
		case wasm.OpF64Gt:
			r = x > y
		case wasm.OpF64Le:
			r = x <= y
		case wasm.OpF64Ge:
			r = x >= y
		}
		if r {
			setTop2(1)
		} else {
			setTop2(0)
		}

	// i32 arithmetic.
	case wasm.OpI32Clz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.LeadingZeros32(uint32(*t)))
	case wasm.OpI32Ctz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.TrailingZeros32(uint32(*t)))
	case wasm.OpI32Popcnt:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.OnesCount32(uint32(*t)))
	case wasm.OpI32Add:
		b32(func(a, b uint32) uint32 { return a + b })
	case wasm.OpI32Sub:
		b32(func(a, b uint32) uint32 { return a - b })
	case wasm.OpI32Mul:
		ctr.Add(arch.EvMul, 1)
		a, b := pop2()
		setTop2(uint64(uint32(a) * uint32(b)))
	case wasm.OpI32DivS, wasm.OpI32DivU, wasm.OpI32RemS, wasm.OpI32RemU:
		ctr.Add(arch.EvDivInt, 1)
		a, b := pop2()
		if uint32(b) == 0 {
			return newTrap(TrapDivByZero, "%v", op)
		}
		switch op {
		case wasm.OpI32DivS:
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				return newTrap(TrapIntOverflow, "i32.div_s overflow")
			}
			setTop2(uint64(uint32(int32(a) / int32(b))))
		case wasm.OpI32DivU:
			setTop2(uint64(uint32(a) / uint32(b)))
		case wasm.OpI32RemS:
			if int32(a) == math.MinInt32 && int32(b) == -1 {
				setTop2(0)
			} else {
				setTop2(uint64(uint32(int32(a) % int32(b))))
			}
		case wasm.OpI32RemU:
			setTop2(uint64(uint32(a) % uint32(b)))
		}
	case wasm.OpI32And:
		b32(func(a, b uint32) uint32 { return a & b })
	case wasm.OpI32Or:
		b32(func(a, b uint32) uint32 { return a | b })
	case wasm.OpI32Xor:
		b32(func(a, b uint32) uint32 { return a ^ b })
	case wasm.OpI32Shl:
		b32(func(a, b uint32) uint32 { return a << (b & 31) })
	case wasm.OpI32ShrS:
		b32(func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) })
	case wasm.OpI32ShrU:
		b32(func(a, b uint32) uint32 { return a >> (b & 31) })
	case wasm.OpI32Rotl:
		b32(func(a, b uint32) uint32 { return bits.RotateLeft32(a, int(b&31)) })
	case wasm.OpI32Rotr:
		b32(func(a, b uint32) uint32 { return bits.RotateLeft32(a, -int(b&31)) })

	// i64 arithmetic.
	case wasm.OpI64Clz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.LeadingZeros64(*t))
	case wasm.OpI64Ctz:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.TrailingZeros64(*t))
	case wasm.OpI64Popcnt:
		ctr.Add(arch.EvALU, 1)
		t := top()
		*t = uint64(bits.OnesCount64(*t))
	case wasm.OpI64Add:
		b64(func(a, b uint64) uint64 { return a + b })
	case wasm.OpI64Sub:
		b64(func(a, b uint64) uint64 { return a - b })
	case wasm.OpI64Mul:
		ctr.Add(arch.EvMul, 1)
		a, b := pop2()
		setTop2(a * b)
	case wasm.OpI64DivS, wasm.OpI64DivU, wasm.OpI64RemS, wasm.OpI64RemU:
		ctr.Add(arch.EvDivInt, 1)
		a, b := pop2()
		if b == 0 {
			return newTrap(TrapDivByZero, "%v", op)
		}
		switch op {
		case wasm.OpI64DivS:
			if int64(a) == math.MinInt64 && int64(b) == -1 {
				return newTrap(TrapIntOverflow, "i64.div_s overflow")
			}
			setTop2(uint64(int64(a) / int64(b)))
		case wasm.OpI64DivU:
			setTop2(a / b)
		case wasm.OpI64RemS:
			if int64(a) == math.MinInt64 && int64(b) == -1 {
				setTop2(0)
			} else {
				setTop2(uint64(int64(a) % int64(b)))
			}
		case wasm.OpI64RemU:
			setTop2(a % b)
		}
	case wasm.OpI64And:
		b64(func(a, b uint64) uint64 { return a & b })
	case wasm.OpI64Or:
		b64(func(a, b uint64) uint64 { return a | b })
	case wasm.OpI64Xor:
		b64(func(a, b uint64) uint64 { return a ^ b })
	case wasm.OpI64Shl:
		b64(func(a, b uint64) uint64 { return a << (b & 63) })
	case wasm.OpI64ShrS:
		b64(func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) })
	case wasm.OpI64ShrU:
		b64(func(a, b uint64) uint64 { return a >> (b & 63) })
	case wasm.OpI64Rotl:
		b64(func(a, b uint64) uint64 { return bits.RotateLeft64(a, int(b&63)) })
	case wasm.OpI64Rotr:
		b64(func(a, b uint64) uint64 { return bits.RotateLeft64(a, -int(b&63)) })

	// f32 arithmetic.
	case wasm.OpF32Abs:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Abs(float64(a))) })
	case wasm.OpF32Neg:
		f32un(arch.EvFAdd, func(a float32) float32 { return -a })
	case wasm.OpF32Ceil:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Ceil(float64(a))) })
	case wasm.OpF32Floor:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Floor(float64(a))) })
	case wasm.OpF32Trunc:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.Trunc(float64(a))) })
	case wasm.OpF32Nearest:
		f32un(arch.EvFAdd, func(a float32) float32 { return float32(math.RoundToEven(float64(a))) })
	case wasm.OpF32Sqrt:
		f32un(arch.EvFDiv, func(a float32) float32 { return float32(math.Sqrt(float64(a))) })
	case wasm.OpF32Add:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return a + b })
	case wasm.OpF32Sub:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return a - b })
	case wasm.OpF32Mul:
		f32bin(arch.EvFMul, func(a, b float32) float32 { return a * b })
	case wasm.OpF32Div:
		f32bin(arch.EvFDiv, func(a, b float32) float32 { return a / b })
	case wasm.OpF32Min:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) })
	case wasm.OpF32Max:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) })
	case wasm.OpF32Copysign:
		f32bin(arch.EvFAdd, func(a, b float32) float32 { return float32(math.Copysign(float64(a), float64(b))) })

	// f64 arithmetic.
	case wasm.OpF64Abs:
		f64un(arch.EvFAdd, math.Abs)
	case wasm.OpF64Neg:
		f64un(arch.EvFAdd, func(a float64) float64 { return -a })
	case wasm.OpF64Ceil:
		f64un(arch.EvFAdd, math.Ceil)
	case wasm.OpF64Floor:
		f64un(arch.EvFAdd, math.Floor)
	case wasm.OpF64Trunc:
		f64un(arch.EvFAdd, math.Trunc)
	case wasm.OpF64Nearest:
		f64un(arch.EvFAdd, math.RoundToEven)
	case wasm.OpF64Sqrt:
		f64un(arch.EvFDiv, math.Sqrt)
	case wasm.OpF64Add:
		f64bin(arch.EvFAdd, func(a, b float64) float64 { return a + b })
	case wasm.OpF64Sub:
		f64bin(arch.EvFAdd, func(a, b float64) float64 { return a - b })
	case wasm.OpF64Mul:
		f64bin(arch.EvFMul, func(a, b float64) float64 { return a * b })
	case wasm.OpF64Div:
		f64bin(arch.EvFDiv, func(a, b float64) float64 { return a / b })
	case wasm.OpF64Min:
		f64bin(arch.EvFAdd, math.Min)
	case wasm.OpF64Max:
		f64bin(arch.EvFAdd, math.Max)
	case wasm.OpF64Copysign:
		f64bin(arch.EvFAdd, math.Copysign)

	// Conversions.
	case wasm.OpI32WrapI64:
		conv(func(v uint64) uint64 { return uint64(uint32(v)) })
	case wasm.OpI64ExtendI32S:
		conv(func(v uint64) uint64 { return uint64(int64(int32(v))) })
	case wasm.OpI64ExtendI32U:
		conv(func(v uint64) uint64 { return uint64(uint32(v)) })
	case wasm.OpI32TruncF64S, wasm.OpI32TruncF64U, wasm.OpI64TruncF64S, wasm.OpI64TruncF64U,
		wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U:
		ctr.Add(arch.EvConv, 1)
		t := top()
		var f float64
		switch op {
		case wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U:
			f = float64(math.Float32frombits(uint32(*t)))
		default:
			f = math.Float64frombits(*t)
		}
		if math.IsNaN(f) {
			return newTrap(TrapIntOverflow, "%v of NaN", op)
		}
		f = math.Trunc(f)
		switch op {
		case wasm.OpI32TruncF64S, wasm.OpI32TruncF32S:
			if f < math.MinInt32 || f > math.MaxInt32 {
				return newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(uint32(int32(f)))
		case wasm.OpI32TruncF64U, wasm.OpI32TruncF32U:
			if f < 0 || f > math.MaxUint32 {
				return newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(uint32(f))
		case wasm.OpI64TruncF64S, wasm.OpI64TruncF32S:
			if f < math.MinInt64 || f >= math.MaxInt64 {
				return newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(int64(f))
		default:
			if f < 0 || f >= math.MaxUint64 {
				return newTrap(TrapIntOverflow, "%v out of range", op)
			}
			*t = uint64(f)
		}
	case wasm.OpF64ConvertI32S:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(int32(v))) })
	case wasm.OpF64ConvertI32U:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(uint32(v))) })
	case wasm.OpF64ConvertI64S:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(int64(v))) })
	case wasm.OpF64ConvertI64U:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(v)) })
	case wasm.OpF32ConvertI32S:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(int32(v)))) })
	case wasm.OpF32ConvertI32U:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(uint32(v)))) })
	case wasm.OpF32ConvertI64S:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(int64(v)))) })
	case wasm.OpF32ConvertI64U:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(v))) })
	case wasm.OpF32DemoteF64:
		conv(func(v uint64) uint64 { return uint64(math.Float32bits(float32(math.Float64frombits(v)))) })
	case wasm.OpF64PromoteF32:
		conv(func(v uint64) uint64 { return math.Float64bits(float64(math.Float32frombits(uint32(v)))) })
	case wasm.OpI32ReinterpretF32, wasm.OpF32ReinterpretI32:
		conv(func(v uint64) uint64 { return v & 0xFFFFFFFF })
	case wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64:
		conv(func(v uint64) uint64 { return v })

	default:
		return newTrap(TrapUnreachable, "unimplemented opcode %v", op)
	}
	return nil
}

// Ensure unused imports stay referenced when features are compiled out.
var _ = core.RuntimeTag
