package exec

import (
	"fmt"

	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/wasm"
)

// deriveModifier turns an instantiation seed into a per-instance PAC
// modifier (paper §6.3: per-instance behaviour from a random modifier).
func deriveModifier(seed uint64) uint64 {
	return seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
}

// Reset returns the instance to its freshly-instantiated state so a pool
// can recycle it instead of paying full re-instantiation (validation,
// import resolution, function precompilation, memory allocation). It
//
//   - restores the linear memory to its initial size, zeroes it, and
//     replays the module's data segments,
//   - restores globals and the indirect-call table from their
//     initializers,
//   - re-zeroes all MTE tags, reseeds the deterministic tag generator
//     from seed, clears any latched asynchronous fault, and re-tags the
//     guest memory with the instance's sandbox tag (Fig. 12b),
//   - re-derives the PAC modifier from seed (unless the embedder pinned
//     one at instantiation), invalidating pointers signed in the
//     previous lifetime (§6.3),
//   - re-runs the module's start function, if any.
//
// The sandbox tag itself is retained: returning it to the allocator and
// re-acquiring would be wasted work for a pooled instance, and keeping
// it preserves the §7.4 tag-budget accounting. After a trap — even a
// memory-safety violation mid-invocation — Reset scrubs every piece of
// state an aborted execution can leave behind, so a recycled instance is
// indistinguishable from a new one.
//
// Embedders that maintain host-side state tied to the instance (the
// hardened allocator's heap bookkeeping, for example) must rewind that
// state before the start function runs: call ResetState, rewind, then
// RunStart, exactly as a fresh instantiation would order them.
func (inst *Instance) Reset(seed uint64) error {
	if err := inst.ResetState(seed); err != nil {
		return err
	}
	return inst.RunStart()
}

// ResetState is Reset without the start function: it restores memory,
// globals, table, data segments, MTE tags, and PAC state, leaving the
// instance in the pre-start moment of instantiation.
func (inst *Instance) ResetState(seed uint64) error {
	if inst.closed {
		return fmt.Errorf("exec: reset of closed instance")
	}
	// Reset leaves memory at the initial (pre-init) image, not a
	// snapshot's, so the clean-memory restore witness no longer holds.
	inst.lastImage = nil
	// Memory: shrink back to the initial page count if memory.grow ran,
	// otherwise zero in place (the common, cheap path).
	var initSize uint64
	if len(inst.module.Mems) > 0 {
		initSize = inst.memType.Limits.Min * wasm.PageSize
	}
	switch {
	case inst.gmap != nil:
		// Guard-region backend: recommit the reservation to the initial
		// size (shrink decommits and zeroes the tail) and scrub the
		// retained prefix, whose pages keep their contents.
		if err := inst.gmap.SetCommitted(initSize); err != nil {
			return err
		}
		inst.mem = inst.gmem[:initSize]
		inst.memSize = initSize
		clear(inst.mem)
	case inst.memSize != initSize:
		// Replacing the buffer abandons any copy-on-write view backing
		// it; detach the tag array from the view first (the tag scrub
		// below still writes through it), then unmap.
		if inst.tags != nil {
			inst.tags.EnsurePrivate()
		}
		inst.mem = make([]byte, initSize+inst.hostReserve)
		inst.memSize = initSize
		inst.releaseMapping()
	default:
		// In place — if mem is a copy-on-write view this dirties private
		// pages, which the next snapshot restore throws away wholesale.
		clear(inst.mem)
	}
	// A full reset rebuilds the tag layout below; the snapshot fast path
	// must not trust a layout it did not itself establish.
	inst.tagsStatic = false
	// Refill the host-reserve pattern in both paths: a previous lifetime
	// may have corrupted it (async-mode or bounds-check-disabled escape
	// demos write past memSize), and a recycled instance must be
	// indistinguishable from a fresh one.
	inst.fillHostReserve()

	// Globals, table + element segments, data segments — the same
	// replay NewInstance performs.
	inst.initGlobals()
	if err := inst.initTable(); err != nil {
		return err
	}
	if err := inst.initData(); err != nil {
		return err
	}

	// MTE state: fresh tags, fresh randomness, no latched faults.
	if inst.tags != nil {
		inst.tags.ZeroAllTags()
		if seed != 0 {
			inst.tags.Seed(seed)
		}
		inst.tags.PendingFault()
		if inst.features.Sandbox && inst.memSize > 0 {
			if err := inst.tags.SetTagRange(0, inst.memSize, inst.sandbox); err != nil {
				return err
			}
			// Re-tagging is the same cost center as the §7.2 startup
			// experiment; charge it to the timing model.
			inst.counter.Add(arch.EvSTGGranule, inst.memSize/mte.GranuleSize)
		}
	}

	// PAC: a new lifetime gets a new modifier, so signed pointers that
	// leaked out of the previous lifetime fail authentication.
	if !inst.fixedModifier {
		inst.keys = core.NewInstanceKeys(inst.keys.Key, deriveModifier(seed))
	}

	// Frame-machine state: the arena and frame stack keep their capacity
	// — that retention is what makes a pooled checkout→call→checkin
	// cycle steady-state allocation-free — but their contents are
	// scrubbed so no value from a previous lifetime (dead locals, an
	// aborted operand stack) is observable in the next one.
	inst.depth = 0
	inst.arenaTop = 0
	inst.frames = inst.frames[:0]
	clear(inst.vals)
	// Per-call interruption state never outlives InvokeWith, but a reset
	// instance must be indistinguishable from a fresh one even if an
	// embedder drove the instance in unexpected ways.
	inst.meter = nil
	inst.callCtx = nil
	inst.memLimitPages = 0
	return nil
}

// RunStart runs the module's start function, if any. It is the second
// half of Reset (and of instantiation); no-op for modules without a
// start section.
func (inst *Instance) RunStart() error {
	if inst.closed {
		return fmt.Errorf("exec: start on closed instance")
	}
	if inst.module.Start != nil {
		if _, err := inst.invoke(*inst.module.Start, nil); err != nil {
			return err
		}
	}
	return nil
}

// Close retires the instance, returning its sandbox tag to the shared
// allocator so a future instantiation can claim it (the teardown half of
// the §6.4 tag budget). Close is idempotent; a closed instance must not
// be invoked or reset again.
func (inst *Instance) Close() error {
	if inst.closed {
		return nil
	}
	inst.closed = true
	if inst.sandboxes != nil && inst.sandbox != core.RuntimeTag {
		inst.sandboxes.Release(inst.sandbox)
	}
	// Release the copy-on-write view, if any. The memory and any adopted
	// tag array become unreferencable; a closed instance must not be
	// touched again.
	if inst.tags != nil {
		inst.tags.AdoptTags(nil, 0)
	}
	inst.mem = nil
	inst.releaseMapping()
	if inst.gmap != nil {
		inst.gmem = nil
		if err := inst.gmap.Unmap(); err != nil {
			return err
		}
		inst.gmap = nil
	}
	return nil
}
