// Command cage-serve runs the multi-tenant execution service: an HTTP
// daemon that registers uploaded modules by content hash, invokes them
// on pooled hardened instances, and enforces per-tenant quotas
// (fuel/timeout/memory/stack), admission control, and bounded request
// queueing. See internal/serve for the HTTP contract.
//
// Usage:
//
//	cage-serve [-addr :8080]
//	           [-config full|hardened|baseline32|baseline64|memsafety|ptrauth|sandbox]
//	           [-fuel n] [-timeout d] [-memory-pages n]
//	           [-stack-depth n] [-stack-words n]
//	           [-max-concurrent n] [-max-queue n]
//	           [-max-modules n] [-max-module-bytes n]
//	           [-max-tenants n] [-max-upload-bytes n]
//	           [-extended-sandboxes]
//	           [-hardened-tenants a,b,c]
//	           [-legacy-hot-path]
//	           [-pprof addr] [-mutex-profile-fraction n] [-block-profile-rate n]
//
// The quota flags define the default tenant policy, applied to every
// tenant (tenants are named by the X-Cage-Tenant request header).
// -hardened-tenants names tenants whose invocations run on the
// Spectre-hardened twin of -config: identical semantics, with the
// mitigation's fence/BTB-flush events charged against their fuel.
//
// -pprof starts a side HTTP server (never the serving address) exposing
// net/http/pprof; -mutex-profile-fraction and -block-profile-rate feed
// the contention profiles that the multicore scale-out work is tuned
// against. -legacy-hot-path routes invocations through the pre-scale-out
// locked dispatch path — the same-binary A/B switch the scaling
// benchmark uses — so a regression can be bisected in production without
// rebuilding.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"cage"
	"cage/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cfgName := flag.String("config", "full", "sandbox configuration preset")
	fuel := flag.Uint64("fuel", 0, "per-call fuel ceiling in timing-model events (0 = unmetered)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-call wall-clock ceiling (0 = none)")
	memPages := flag.Uint64("memory-pages", 0, "per-call memory.grow ceiling in 64 KiB pages (0 = module maximum)")
	stackDepth := flag.Int("stack-depth", 0, "per-call frame-count ceiling (0 = engine default)")
	stackWords := flag.Uint64("stack-words", 0, "per-call value-arena ceiling in 64-bit words (0 = engine default)")
	maxConcurrent := flag.Int("max-concurrent", 64, "per-tenant in-flight invocation cap (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 256, "per-tenant admission queue depth beyond the in-flight cap")
	maxModules := flag.Int("max-modules", 0, "per-tenant registered-module cap (0 = unlimited)")
	maxModuleBytes := flag.Int64("max-module-bytes", 16<<20, "per-upload size cap in bytes (0 = tenant-unlimited; the server-wide cap still applies)")
	maxTenants := flag.Int("max-tenants", 0, "distinct tenant-state cap; excess unknown tenants share one aggregate (0 = default 256, negative = unlimited)")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "server-wide upload body cap in bytes (0 = default 64 MiB, negative = unlimited)")
	extended := flag.Bool("extended-sandboxes", false, "lift the 15-sandbox budget via §6.4 tag reuse")
	hardenedTenants := flag.String("hardened-tenants", "", "comma-separated tenants whose calls run on the Spectre-hardened engine")
	legacyHotPath := flag.Bool("legacy-hot-path", false, "route invocations through the pre-scale-out locked dispatch path (A/B bisection aid)")
	pprofAddr := flag.String("pprof", "", "listen address for a net/http/pprof side server (empty = disabled)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events for /debug/pprof/mutex (0 = off)")
	blockRate := flag.Int("block-profile-rate", 0, "sample blocking events >= n ns for /debug/pprof/block (0 = off)")
	flag.Parse()

	cfg, err := cage.ConfigByName(*cfgName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-serve: %v\n", err)
		os.Exit(2)
	}
	quota := serve.QuotaPolicy{
		Fuel:           *fuel,
		Timeout:        *timeout,
		MemoryPages:    *memPages,
		StackDepth:     *stackDepth,
		StackWords:     *stackWords,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		MaxModules:     *maxModules,
		MaxModuleBytes: *maxModuleBytes,
	}
	var tenants map[string]serve.QuotaPolicy
	if *hardenedTenants != "" {
		tenants = make(map[string]serve.QuotaPolicy)
		for _, name := range strings.Split(*hardenedTenants, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			p := quota
			p.SpectreHardened = true
			tenants[name] = p
		}
	}
	srv, err := serve.New(serve.Options{
		Config:            cfg,
		ConfigName:        *cfgName,
		DefaultQuota:      quota,
		Tenants:           tenants,
		MaxTenants:        *maxTenants,
		MaxUploadBytes:    *maxUploadBytes,
		ExtendedSandboxes: *extended,
		LegacyHotPath:     *legacyHotPath,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-serve: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	// Contention profiling knobs and the pprof side server. The profile
	// rates are process-global, so they take effect whether or not the
	// side server is enabled (a later SIGQUIT dump still carries them);
	// the pprof listener is kept off the serving address so profiling
	// endpoints are never reachable by tenants.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go func() {
			// http.DefaultServeMux carries the net/http/pprof handlers
			// registered by the blank import.
			ps := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("cage-serve: pprof on %s", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil {
				log.Printf("cage-serve: pprof server: %v", err)
			}
		}()
	}

	log.Printf("cage-serve: config %s, listening on %s", *cfgName, *addr)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "cage-serve: %v\n", err)
		os.Exit(1)
	}
}
