package engine

import "sync/atomic"

// lifo is a fixed-capacity, ABA-safe Treiber stack of Resetters — the
// pool's lock-free checkout/checkin fast path. Uncontended push and pop
// are each at most two compare-and-swaps (one on the stack head, one on
// the internal free list) and never allocate: slots are preallocated at
// construction and recycled through the free list.
//
// Both list heads pack a 32-bit version tag above a 32-bit slot index
// (offset by one so zero means "empty"). Every successful CAS bumps the
// version, so the classic ABA hazard — a stale head whose slot was
// popped, recycled, and pushed back between our load and our CAS — is
// caught by the version mismatch; a stale next-pointer read is
// discarded with the failed CAS, never dereferenced as truth.
//
// A full stack rejects the push (the caller falls back to the pool's
// mutex-guarded idle list), so capacity is a fast-path sizing hint, not
// a correctness bound.
type lifo struct {
	head  atomic.Uint64 // versioned top of the value stack
	free  atomic.Uint64 // versioned top of the free-slot list
	size  atomic.Int32  // occupancy (stats only; maintained after the fact)
	slots []lifoSlot
}

// lifoSlot is padded out to a cache line so neighboring slots never
// false-share under concurrent push/pop storms.
type lifoSlot struct {
	val  Resetter
	next atomic.Uint32 // index+1 of the slot beneath; 0 terminates
	_    [64 - 16 - 4]byte
}

// packPtr packs a version tag and an index+1 into one CAS-able word.
func packPtr(ver, idxPlus1 uint32) uint64 {
	return uint64(ver)<<32 | uint64(idxPlus1)
}

// newLifo builds a stack with the given slot capacity, all slots free.
func newLifo(capacity int) *lifo {
	l := &lifo{slots: make([]lifoSlot, capacity)}
	// Thread every slot onto the free list: slot i links down to i-1.
	for i := range l.slots {
		l.slots[i].next.Store(uint32(i))
	}
	l.free.Store(packPtr(0, uint32(capacity)))
	return l
}

// popFrom pops the top slot index off the list rooted at head.
func (l *lifo) popFrom(head *atomic.Uint64) (int, bool) {
	for {
		old := head.Load()
		idxPlus1 := uint32(old)
		if idxPlus1 == 0 {
			return 0, false
		}
		next := l.slots[idxPlus1-1].next.Load()
		if head.CompareAndSwap(old, packPtr(uint32(old>>32)+1, next)) {
			return int(idxPlus1 - 1), true
		}
	}
}

// pushTo pushes slot idx onto the list rooted at head.
func (l *lifo) pushTo(head *atomic.Uint64, idx int) {
	for {
		old := head.Load()
		l.slots[idx].next.Store(uint32(old))
		if head.CompareAndSwap(old, packPtr(uint32(old>>32)+1, uint32(idx+1))) {
			return
		}
	}
}

// push makes inst available to pop. It reports false when every slot is
// in use (stack full) — the caller keeps ownership of inst.
func (l *lifo) push(inst Resetter) bool {
	idx, ok := l.popFrom(&l.free)
	if !ok {
		return false
	}
	l.slots[idx].val = inst
	l.pushTo(&l.head, idx)
	l.size.Add(1)
	return true
}

// pop takes the most recently pushed instance, if any.
func (l *lifo) pop() (Resetter, bool) {
	idx, ok := l.popFrom(&l.head)
	if !ok {
		return nil, false
	}
	inst := l.slots[idx].val
	l.slots[idx].val = nil
	l.pushTo(&l.free, idx)
	l.size.Add(-1)
	return inst, true
}
