package ir

import (
	"fmt"
	"math"

	"cage/internal/wasm"
)

// Lower flattens every function body of m into the lowered form for
// cfg: structured control flow becomes absolute-PC branches with the
// stack repair (height to keep, values to carry) precomputed, block
// arities and immediates are decoded once, and memory accesses are
// specialized to cfg's address-translation mode. The result is
// immutable and shareable across instances.
//
// Lower is defensive: on a malformed module it returns an error rather
// than panicking, so it can run ahead of wasm.Validate in cached
// pipelines. It does not, however, replace validation — type errors a
// lowering pass cannot see still surface there.
func Lower(m *wasm.Module, cfg Config) (*Program, error) {
	p := &Program{Cfg: cfg, Funcs: make([]Func, len(m.Funcs))}
	for i := range m.Funcs {
		fn, err := lowerFunc(m, &m.Funcs[i], cfg)
		if err != nil {
			return nil, fmt.Errorf("ir: function %d: %w", i, err)
		}
		p.Funcs[i] = fn
	}
	return p, nil
}

// frame kinds tracked during lowering.
const (
	kindFunc = iota
	kindBlock
	kindLoop
	kindIf
)

// fixup is a branch awaiting its frame's end PC: it patches either an
// instruction's B field (target < 0) or a br_table entry's PC.
type fixup struct {
	instr  int
	target int
}

// frame is one open control construct during lowering.
type frame struct {
	kind      int
	depth     int // operand-stack height at entry
	arity     int // branch arity (block/if results; 0 for loop)
	results   int // values live after the end
	headerPC  int // loop body start (back-edge target)
	fixups    []fixup
	elseFixup int  // pending if-conditional awaiting else/end, -1 if none
	sawElse   bool // an else arm was seen
	live      bool // the construct was entered from reachable code
}

func lowerFunc(m *wasm.Module, f *wasm.Function, cfg Config) (Func, error) {
	typ := wasm.FuncType{}
	if int(f.TypeIdx) < len(m.Types) {
		typ = m.Types[f.TypeIdx]
	} else {
		return Func{}, fmt.Errorf("type index %d out of range", f.TypeIdx)
	}
	out := Func{
		NumParams:  len(typ.Params),
		NumResults: len(typ.Results),
		NumLocals:  len(f.Locals),
	}

	var code []Instr
	emit := func(in Instr) int {
		code = append(code, in)
		return len(code) - 1
	}
	// fence emits the hardened config's speculation barrier. It is
	// called immediately before an indirect branch or return is emitted,
	// so branch fixups that resolve to the protected instruction's
	// position land on the fence and fall through into it — the barrier
	// is never skippable.
	fence := func() {
		if cfg.Harden {
			emit(Instr{Op: OpFence})
		}
	}

	depth := 0
	unreachable := false
	maxStack := 0
	note := func() {
		if depth > maxStack {
			maxStack = depth
		}
	}
	frames := []frame{{
		kind: kindFunc, arity: len(typ.Results), results: len(typ.Results),
		elseFixup: -1, live: true,
	}}

	blockArity := func(bt wasm.BlockType) int {
		if _, ok := bt.Result(); ok {
			return 1
		}
		return 0
	}

	// branchFrame resolves relative depth d to an open frame.
	branchFrame := func(d uint64) (*frame, error) {
		if d >= uint64(len(frames)) {
			return nil, fmt.Errorf("branch depth %d exceeds %d open frames", d, len(frames))
		}
		return &frames[len(frames)-1-int(d)], nil
	}

	for pc := 0; pc < len(f.Body); pc++ {
		in := f.Body[pc]
		op := in.Op

		// Inside unreachable code nothing executes and nothing is
		// emitted; only the control nesting is tracked so else/end
		// match their construct.
		if unreachable {
			switch op {
			case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
				r := blockArity(in.Block)
				a := r
				if op == wasm.OpLoop {
					a = 0
				}
				k := kindBlock
				switch op {
				case wasm.OpLoop:
					k = kindLoop
				case wasm.OpIf:
					k = kindIf
				}
				frames = append(frames, frame{
					kind: k, depth: depth, arity: a, results: r,
					elseFixup: -1, live: false,
				})
			case wasm.OpElse, wasm.OpEnd:
				// Handled by the shared arms below.
			default:
				continue
			}
			if op != wasm.OpElse && op != wasm.OpEnd {
				continue
			}
		}

		switch op {
		case wasm.OpNop:
			// Dissolves.

		case wasm.OpUnreachable:
			emit(Instr{Op: OpUnreachable})
			unreachable = true

		case wasm.OpBlock:
			r := blockArity(in.Block)
			frames = append(frames, frame{
				kind: kindBlock, depth: depth, arity: r, results: r,
				elseFixup: -1, live: true,
			})

		case wasm.OpLoop:
			r := blockArity(in.Block)
			frames = append(frames, frame{
				kind: kindLoop, depth: depth, arity: 0, results: r,
				headerPC: len(code), elseFixup: -1, live: true,
			})

		case wasm.OpIf:
			if depth < 1 {
				return out, fmt.Errorf("pc %d: if with empty stack", pc)
			}
			depth--
			r := blockArity(in.Block)
			idx := emit(Instr{Op: OpBrIfZ})
			frames = append(frames, frame{
				kind: kindIf, depth: depth, arity: r, results: r,
				elseFixup: idx, live: true,
			})

		case wasm.OpElse:
			fr := &frames[len(frames)-1]
			if fr.kind != kindIf || fr.sawElse {
				return out, fmt.Errorf("pc %d: else without if", pc)
			}
			fr.sawElse = true
			if fr.live {
				if !unreachable {
					// The then-arm falls through: skip over the else arm.
					idx := emit(Instr{Op: OpGoto})
					fr.fixups = append(fr.fixups, fixup{instr: idx, target: -1})
				}
				// The if-conditional lands at the else arm's first
				// instruction.
				code[fr.elseFixup].B = uint64(len(code))
				fr.elseFixup = -1
				depth = fr.depth
				unreachable = false
			}

		case wasm.OpEnd:
			fr := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			endPC := len(code)
			for _, fx := range fr.fixups {
				if fx.target < 0 {
					code[fx.instr].B = uint64(endPC)
				} else {
					code[fx.instr].Targets[fx.target].PC = uint32(endPC)
				}
			}
			// An if without an else: the false edge lands after the end.
			viaCond := false
			if fr.elseFixup >= 0 && !fr.sawElse {
				code[fr.elseFixup].B = uint64(endPC)
				viaCond = true
			}
			reachable := !unreachable || len(fr.fixups) > 0 || viaCond
			depth = fr.depth + fr.results
			note()
			unreachable = !reachable
			if fr.kind == kindFunc {
				// Branches targeting the function end were patched to
				// endPC above, which is where this fence lands: they
				// run the barrier, then the epilogue.
				fence()
				emit(Instr{Op: OpRetEnd, A: uint64(fr.results)})
				if pc != len(f.Body)-1 {
					return out, fmt.Errorf("pc %d: code after function end", pc)
				}
			}

		case wasm.OpBr, wasm.OpBrIf:
			cond := op == wasm.OpBrIf
			if cond {
				if depth < 1 {
					return out, fmt.Errorf("pc %d: br_if with empty stack", pc)
				}
				depth--
			}
			fr, err := branchFrame(in.X)
			if err != nil {
				return out, fmt.Errorf("pc %d: %w", pc, err)
			}
			lop := OpBr
			if cond {
				lop = OpBrIf
			}
			lin := Instr{Op: lop, A: PackBranch(fr.depth, fr.arity)}
			if fr.kind == kindLoop {
				lin.A = PackBranch(fr.depth, 0)
				lin.B = uint64(fr.headerPC)
				emit(lin)
			} else {
				idx := emit(lin)
				fr.fixups = append(fr.fixups, fixup{instr: idx, target: -1})
			}
			if !cond {
				unreachable = true
			}

		case wasm.OpBrTable:
			if depth < 1 {
				return out, fmt.Errorf("pc %d: br_table with empty stack", pc)
			}
			depth--
			fence()
			targets := make([]BranchTarget, 0, len(in.Targets)+1)
			idx := emit(Instr{Op: OpBrTable})
			for k, d := range append(append([]uint32{}, in.Targets...), uint32(in.X)) {
				fr, err := branchFrame(uint64(d))
				if err != nil {
					return out, fmt.Errorf("pc %d: %w", pc, err)
				}
				t := BranchTarget{Keep: uint32(fr.depth), Arity: uint32(fr.arity)}
				if fr.kind == kindLoop {
					t.Arity = 0
					t.PC = uint32(fr.headerPC)
				} else {
					fr.fixups = append(fr.fixups, fixup{instr: idx, target: k})
				}
				targets = append(targets, t)
			}
			code[idx].Targets = targets
			unreachable = true

		case wasm.OpReturn:
			fence()
			emit(Instr{Op: OpReturn, A: uint64(len(typ.Results))})
			unreachable = true

		case wasm.OpCall:
			ft, err := m.FuncTypeAt(uint32(in.X))
			if err != nil {
				return out, fmt.Errorf("pc %d: %w", pc, err)
			}
			emit(Instr{Op: OpCall, A: in.X, B: uint64(len(ft.Params))})
			depth += len(ft.Results) - len(ft.Params)
			if depth < 0 {
				return out, fmt.Errorf("pc %d: call underflows stack", pc)
			}

		case wasm.OpCallIndirect:
			if int(in.X) >= len(m.Types) {
				return out, fmt.Errorf("pc %d: call_indirect type %d out of range", pc, in.X)
			}
			want := m.Types[in.X]
			fence()
			emit(Instr{Op: OpCallIndirect, A: in.X, B: uint64(len(want.Params))})
			depth += len(want.Results) - len(want.Params) - 1
			if depth < 0 {
				return out, fmt.Errorf("pc %d: call_indirect underflows stack", pc)
			}

		case wasm.OpDrop:
			emit(Instr{Op: OpDrop})
			depth--

		case wasm.OpSelect:
			emit(Instr{Op: OpSelect})
			depth -= 2

		case wasm.OpLocalGet:
			emit(Instr{Op: OpLocalGet, A: in.X})
			depth++
		case wasm.OpLocalSet:
			emit(Instr{Op: OpLocalSet, A: in.X})
			depth--
		case wasm.OpLocalTee:
			emit(Instr{Op: OpLocalTee, A: in.X})
		case wasm.OpGlobalGet:
			emit(Instr{Op: OpGlobalGet, A: in.X})
			depth++
		case wasm.OpGlobalSet:
			emit(Instr{Op: OpGlobalSet, A: in.X})
			depth--

		case wasm.OpI32Const, wasm.OpI64Const:
			emit(Instr{Op: OpConst, A: in.X})
			depth++
		case wasm.OpF32Const:
			emit(Instr{Op: OpConst, A: uint64(math.Float32bits(float32(in.F)))})
			depth++
		case wasm.OpF64Const:
			emit(Instr{Op: OpConst, A: math.Float64bits(in.F)})
			depth++

		case wasm.OpMemorySize:
			emit(Instr{Op: OpMemorySize})
			depth++
		case wasm.OpMemoryGrow:
			emit(Instr{Op: OpMemoryGrow})
		case wasm.OpMemoryFill:
			emit(Instr{Op: OpMemoryFill})
			depth -= 3
		case wasm.OpMemoryCopy:
			emit(Instr{Op: OpMemoryCopy})
			depth -= 3

		case wasm.OpSegmentNew:
			emit(Instr{Op: OpSegmentNew, A: in.Offset})
			depth--
		case wasm.OpSegmentSetTag:
			emit(Instr{Op: OpSegmentSetTag, A: in.Offset})
			depth -= 3
		case wasm.OpSegmentFree:
			emit(Instr{Op: OpSegmentFree, A: in.Offset})
			depth -= 2

		case wasm.OpPointerSign:
			if cfg.PtrAuth {
				emit(Instr{Op: OpPtrSign})
			} else {
				emit(Instr{Op: OpPtrSignNop})
			}
		case wasm.OpPointerAuth:
			if cfg.PtrAuth {
				emit(Instr{Op: OpPtrAuth})
			} else {
				emit(Instr{Op: OpPtrAuthNop})
			}

		default:
			switch {
			case op.IsLoad():
				emit(Instr{Op: cfg.loadOpFor(in.Offset), A: in.Offset, B: PackMem(op.AccessSize(), op)})
			case op.IsStore():
				emit(Instr{Op: cfg.storeOpFor(in.Offset), A: in.Offset, B: PackMem(op.AccessSize(), op)})
				depth -= 2
			default:
				pop, push, ok := numericEffect(op)
				if !ok {
					return out, fmt.Errorf("pc %d: unsupported opcode %v", pc, op)
				}
				emit(Instr{Op: OpNumericBase + Op(op)})
				depth += push - pop
			}
		}
		if depth < 0 {
			return out, fmt.Errorf("pc %d: %v underflows operand stack", pc, op)
		}
		note()
	}

	if len(frames) != 0 {
		return out, fmt.Errorf("unbalanced control flow: %d frames left open", len(frames))
	}
	if len(code) == 0 || code[len(code)-1].Op != OpRetEnd {
		return out, fmt.Errorf("function body not terminated by end")
	}
	out.MaxStack = maxStack
	out.FrameSize = out.NumParams + out.NumLocals + maxStack
	out.Code = code
	return out, nil
}

// loadOp picks the specialized load opcode for the config.
func (c Config) loadOp() Op {
	switch c.Mode {
	case ModeGuard32:
		if c.SkipBounds {
			return OpLoadG32NC
		}
		return OpLoadG32
	case ModeBounds64:
		switch {
		case c.SkipBounds && c.MemSafety:
			return OpLoadB64NCTag
		case c.SkipBounds:
			return OpLoadB64NC
		case c.MemSafety:
			return OpLoadB64Tag
		default:
			return OpLoadB64
		}
	default:
		if c.SkipBounds {
			return OpLoadMTENC
		}
		return OpLoadMTE
	}
}

// storeOp picks the specialized store opcode for the config.
func (c Config) storeOp() Op {
	switch c.Mode {
	case ModeGuard32:
		if c.SkipBounds {
			return OpStoreG32NC
		}
		return OpStoreG32
	case ModeBounds64:
		switch {
		case c.SkipBounds && c.MemSafety:
			return OpStoreB64NCTag
		case c.SkipBounds:
			return OpStoreB64NC
		case c.MemSafety:
			return OpStoreB64Tag
		default:
			return OpStoreB64
		}
	default:
		if c.SkipBounds {
			return OpStoreMTENC
		}
		return OpStoreMTE
	}
}

// loadOpFor picks the load opcode for one access: the config's
// specialized opcode, upgraded to the guard-region variant when the
// guard backend is active and the memarg offset is within the
// reservation headroom's guarantee. Offsets past GuardMaxOffset keep
// the explicit check — rare enough that the fallback costs nothing.
func (c Config) loadOpFor(offset uint64) Op {
	op := c.loadOp()
	if op == OpLoadG32 && c.Guard && offset <= GuardMaxOffset {
		return OpLoadG32G
	}
	return op
}

// storeOpFor is loadOpFor for stores.
func (c Config) storeOpFor(offset uint64) Op {
	op := c.storeOp()
	if op == OpStoreG32 && c.Guard && offset <= GuardMaxOffset {
		return OpStoreG32G
	}
	return op
}

// NumericStackEffect returns the operand-stack effect of a pure value
// instruction, or ok=false for opcodes that are not pass-through
// numerics. The fuse pass uses it to classify ALU constituents.
func NumericStackEffect(op wasm.Opcode) (pop, push int, ok bool) {
	return numericEffect(op)
}

// numericEffect returns the operand-stack effect of a pure value
// instruction, or ok=false for opcodes that are not pass-through
// numerics.
func numericEffect(op wasm.Opcode) (pop, push int, ok bool) {
	switch {
	case op == wasm.OpI32Eqz || op == wasm.OpI64Eqz:
		return 1, 1, true
	case op >= wasm.OpI32Eq && op <= wasm.OpI32GeU, // i32 compares
		op >= wasm.OpI64Eq && op <= wasm.OpI64GeU, // i64 compares
		op >= wasm.OpF32Eq && op <= wasm.OpF64Ge:  // float compares
		return 2, 1, true
	case op >= wasm.OpI32Clz && op <= wasm.OpI32Popcnt,
		op >= wasm.OpI64Clz && op <= wasm.OpI64Popcnt,
		op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt,
		op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		return 1, 1, true
	case op >= wasm.OpI32Add && op <= wasm.OpI32Rotr,
		op >= wasm.OpI64Add && op <= wasm.OpI64Rotr,
		op >= wasm.OpF32Add && op <= wasm.OpF32Copysign,
		op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return 2, 1, true
	case op >= wasm.OpI32WrapI64 && op <= wasm.OpF64ReinterpretI64:
		return 1, 1, true
	}
	return 0, 0, false
}
