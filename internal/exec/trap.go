package exec

import "fmt"

// TrapCode classifies a wasm trap.
type TrapCode int

// Trap codes.
const (
	// TrapUnreachable is the unreachable instruction.
	TrapUnreachable TrapCode = iota
	// TrapOutOfBounds is a linear-memory access outside the sandbox
	// caught by a software bounds check or guard page.
	TrapOutOfBounds
	// TrapTagMismatch is an MTE tag-check failure (memory-safety
	// violation or tag-based sandbox escape attempt).
	TrapTagMismatch
	// TrapAuthFailure is a failed i64.pointer_auth (Fig. 11 eq. 13).
	TrapAuthFailure
	// TrapSegment is an invalid segment.new/set_tag/free
	// (Fig. 11 eqs. 6, 8, 10 — unaligned, out of bounds, double free).
	TrapSegment
	// TrapDivByZero is integer division by zero.
	TrapDivByZero
	// TrapIntOverflow is integer overflow in div/trunc.
	TrapIntOverflow
	// TrapIndirectCall is a bad call_indirect (null entry, out of range,
	// signature mismatch).
	TrapIndirectCall
	// TrapStackOverflow is call-stack exhaustion: the frame machine's
	// exact frame-count bound (MaxCallDepth frames, host crossings
	// included) or its value-arena bound (MaxStackWords) was exceeded.
	// Unlike a Go-recursion proxy, the trap fires at a precise,
	// deterministic frame count.
	TrapStackOverflow
	// TrapHost is an error returned by a host function.
	TrapHost
	// TrapExit is a clean proc_exit from WASI.
	TrapExit
	// TrapFuelExhausted aborts a metered call that consumed its fuel
	// budget (CallOptions.Fuel).
	TrapFuelExhausted
	// TrapInterrupted aborts a call whose context was cancelled or whose
	// deadline passed; the trap wraps the context error (Unwrap), so
	// errors.Is(err, context.DeadlineExceeded) still works.
	TrapInterrupted
)

// TrapCallDepth is the pre-frame-machine name for TrapStackOverflow.
//
// Deprecated: use TrapStackOverflow.
const TrapCallDepth = TrapStackOverflow

var trapNames = map[TrapCode]string{
	TrapUnreachable:   "unreachable",
	TrapOutOfBounds:   "out of bounds memory access",
	TrapTagMismatch:   "MTE tag mismatch",
	TrapAuthFailure:   "pointer authentication failure",
	TrapSegment:       "invalid segment operation",
	TrapDivByZero:     "integer divide by zero",
	TrapIntOverflow:   "integer overflow",
	TrapIndirectCall:  "invalid indirect call",
	TrapStackOverflow: "call stack exhausted",
	TrapHost:          "host function error",
	TrapExit:          "process exit",
	TrapFuelExhausted: "fuel exhausted",
	TrapInterrupted:   "call interrupted",
}

// String returns the trap code's stable human-readable name (the same
// string Trap.Error embeds), so embedders building structured error
// surfaces (e.g. the serve daemon's JSON errors) never re-invent the
// mapping.
func (c TrapCode) String() string {
	if name, ok := trapNames[c]; ok {
		return name
	}
	return fmt.Sprintf("trap(%d)", int(c))
}

// Trap is a wasm trap: execution aborts and unwinds to the embedder.
type Trap struct {
	Code TrapCode
	Msg  string
	// ExitCode is set for TrapExit.
	ExitCode int32
	// Cause, when non-nil, is the error that provoked the trap (the
	// context error for TrapInterrupted); it is exposed via Unwrap.
	Cause error
}

// Error implements the error interface.
func (t *Trap) Error() string {
	name := trapNames[t.Code]
	if t.Msg == "" {
		return "wasm trap: " + name
	}
	return fmt.Sprintf("wasm trap: %s: %s", name, t.Msg)
}

// Unwrap exposes the trap's cause to errors.Is/errors.As chains.
func (t *Trap) Unwrap() error { return t.Cause }

func newTrap(code TrapCode, format string, args ...any) *Trap {
	return &Trap{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// IsTrap reports whether err is a trap with the given code.
func IsTrap(err error, code TrapCode) bool {
	t, ok := err.(*Trap)
	return ok && t.Code == code
}
