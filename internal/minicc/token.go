// Package minicc is the front end of the Cage compiler toolchain: a
// lexer, parser, and semantic analyzer for MiniC, a C subset sufficient
// for the paper's workloads (PolyBench kernels, the CVE case studies,
// allocator-exercising programs).
//
// MiniC covers: char/int/long/float/double/void, pointers, fixed-size
// arrays, structs, function pointers, globals with constant
// initializers, string literals, the usual statement forms
// (if/else, for, while, do-while, return, break, continue), the C
// operator set including assignment operators and ++/--, casts, sizeof,
// and the Cage builtins (__builtin_segment_new, __builtin_segment_free,
// __builtin_segment_set_tag, __builtin_pointer_sign,
// __builtin_pointer_auth) that the paper exposes to C programmers for
// custom allocators (§4.1, §6.1).
package minicc

import "fmt"

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	// Int/Float carry literal values.
	Int   int64
	Float float64
	Line  int
	Col   int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokIntLit:
		return fmt.Sprintf("%d", t.Int)
	case TokFloatLit:
		return fmt.Sprintf("%g", t.Float)
	default:
		return t.Text
	}
}

// keywords of MiniC.
var keywords = map[string]bool{
	"void": true, "char": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true,
	"struct": true, "if": true, "else": true, "for": true,
	"while": true, "do": true, "return": true, "break": true,
	"continue": true, "sizeof": true, "extern": true, "static": true,
	"const": true,
}

// Error is a front-end diagnostic.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("minicc: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
