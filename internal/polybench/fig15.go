package polybench

import "math"

// refSqrt keeps the reference implementations dependency-explicit.
func refSqrt(x float64) float64 { return math.Sqrt(x) }

// Fig. 15 workload: the paper's modified 2mm, where the inner product is
// moved behind a function call performed statically, dynamically through
// a vtable, or dynamically with pointer authentication (§7.2, A.3.4).
//
// The programs split setup (allocation + initialization) from the kernel
// so the harness can measure the kernel region alone, mirroring the
// PolyBench timer methodology. The static variant inlines the inner
// product the way LLVM does at -O2, making it a call-free baseline.

// CallMode selects the Fig. 15 variant.
type CallMode int

const (
	// CallStatic inlines the dot-product routine (direct/LLVM-inlined).
	CallStatic CallMode = iota
	// CallDynamic calls through a vtable function pointer.
	CallDynamic
	// CallAuthenticated is CallDynamic compiled with the pointer-auth
	// pass (sign at vtable setup, authenticate per call).
	CallAuthenticated
)

// String names the variant like the paper's legend.
func (m CallMode) String() string {
	switch m {
	case CallStatic:
		return "static"
	case CallDynamic:
		return "dynamic"
	case CallAuthenticated:
		return "ptr-auth"
	default:
		return "call(?)"
	}
}

const twoMMSetup = prelude + initHelpers + `
double* A;
double* B;
double* C;
double* D;
double* tmp;
void setup(long n) {
    A = (double*)malloc(n * n * 8);
    B = (double*)malloc(n * n * 8);
    C = (double*)malloc(n * n * 8);
    D = (double*)malloc(n * n * 8);
    tmp = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
            D[i * n + j] = initD(i, j, n);
        }
    }
}
`

const twoMMStaticSrc = twoMMSetup + `
double kernel(long n) {
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double* a = A + i * n;
            double* b = B + j;
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += a[k] * b[k * n]; }
            tmp[i * n + j] = alpha * s;
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double* a = tmp + i * n;
            double* b = C + j;
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += a[k] * b[k * n]; }
            D[i * n + j] = D[i * n + j] * beta + s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += D[i * n + j]; }
    }
    return acc;
}`

const twoMMDynamicSrc = twoMMSetup + `
struct MulOps { double (*dot)(double*, double*, long, long); };
struct MulOps ops;
double dot(double* a, double* b, long n, long stride) {
    double s = 0.0;
    for (long k = 0; k < n; k++) { s += a[k] * b[k * stride]; }
    return s;
}
double kernel(long n) {
    double alpha = 1.5;
    double beta = 1.2;
    ops.dot = dot;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            tmp[i * n + j] = alpha * ops.dot(A + i * n, B + j, n, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            D[i * n + j] = D[i * n + j] * beta + ops.dot(tmp + i * n, C + j, n, n);
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += D[i * n + j]; }
    }
    return acc;
}`

// TwoMMVariant returns the Fig. 15 kernel for the given call mode. The
// CallAuthenticated source equals the dynamic one; the difference is the
// pointer-auth compile option and runtime feature. The program exports
// setup(n) and kernel(n); Kernel.Source also works with the plain Run
// helper through the run(n) wrapper.
func TwoMMVariant(mode CallMode) Kernel {
	src := twoMMStaticSrc
	if mode != CallStatic {
		src = twoMMDynamicSrc
	}
	src += `
double run(long n) {
    setup(n);
    return kernel(n);
}`
	return Kernel{
		Name:   "2mm-" + mode.String(),
		Source: src,
		TestN:  12,
		BenchN: 48,
		Reference: func(n int) float64 {
			A, B, C, D := matA(n), matB(n), matC(n), matD(n)
			tmp := make([]float64, n*n)
			alpha, beta := 1.5, 1.2
			dot := func(a, b []float64, stride int) float64 {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a[k] * b[k*stride]
				}
				return s
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					tmp[i*n+j] = alpha * dot(A[i*n:], B[j:], n)
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					D[i*n+j] = D[i*n+j]*beta + dot(tmp[i*n:], C[j:], n)
				}
			}
			return sum(D)
		},
	}
}
