package minicc

// AST node definitions. Expressions carry their computed type (filled by
// sema) and, for identifiers, their resolved symbol.

// Expr is an expression node.
type Expr interface {
	Type() *Type
	setType(*Type)
	Pos() (line, col int)
}

type exprBase struct {
	typ  *Type
	line int
	col  int
}

func (e *exprBase) Type() *Type     { return e.typ }
func (e *exprBase) setType(t *Type) { e.typ = t }
func (e *exprBase) Pos() (int, int) { return e.line, e.col }
func at(tok Token) exprBase         { return exprBase{line: tok.Line, col: tok.Col} }

// IntLit is an integer or char literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal (lowered to a data-segment pointer).
type StrLit struct {
	exprBase
	Val string
}

// Ident references a variable or function.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix operator: - ! ~ * & ++ --.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Binary is an infix operator (arithmetic, comparison, logical).
type Binary struct {
	exprBase
	Op string
	X  Expr
	Y  Expr
}

// Assign is =, +=, -=, ....
type Assign struct {
	exprBase
	Op  string
	LHS Expr
	RHS Expr
}

// Cond is the ternary c ? t : f.
type Cond struct {
	exprBase
	C Expr
	T Expr
	F Expr
}

// Index is x[i].
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}

// Member is x.f or x->f.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *Field
}

// Call invokes a named function, builtin, or function pointer.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
	// Builtin is set by sema for __builtin_* calls.
	Builtin string
}

// Cast is (T)x.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// SizeofExpr is sizeof(T) or sizeof(expr).
type SizeofExpr struct {
	exprBase
	OfType *Type
	OfExpr Expr
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Name string
	Typ  *Type
	Init Expr
	Sym  *Symbol
	Line int
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// ForStmt is a for loop (any clause may be nil).
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is while or do-while.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	X Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

// ContinueStmt jumps to the loop continuation.
type ContinueStmt struct{}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymFunc
	SymExtern
)

// Symbol is a named entity. Analysis results (Algorithm 1) are stored
// on local symbols.
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type

	// Locals/params.
	AddrTaken bool
	// Escapes is Algorithm 1's escapes(alloc).
	Escapes bool
	// UnsafeGEP is Algorithm 1's isUsedByUnsafeGEP(alloc).
	UnsafeGEP bool
	// Instrument means the stack sanitizer tags this allocation.
	Instrument bool
	// FrameOffset/InFrame are filled by the code generator.
	FrameOffset int64
	InFrame     bool
	LocalIdx    uint32

	// Functions.
	Sig       *FuncSig
	FuncDecl  *FuncDecl
	IsBuiltin bool
	// TableIdx is assigned when the function's address is taken.
	TableIdx int32

	// Globals.
	GlobalAddr uint64
	GlobalInit Expr
}

// Param is a function parameter.
type Param struct {
	Name string
	Typ  *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    *Type
	Body   *BlockStmt
	Sym    *Symbol
	// Locals lists every declared local symbol (filled by sema).
	Locals []*Symbol
	// StackAllocs lists locals that need stack memory, in declaration
	// order (Algorithm 1's input).
	StackAllocs []*Symbol
	// NeedsGuardSlot is Algorithm 1's final insertGuardAlloc decision.
	NeedsGuardSlot bool
	// UsesFnPtrs marks functions touched by the pointer-auth pass.
	UsesFnPtrs bool
	Line       int
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name string
	Typ  *Type
	Init Expr
	Sym  *Symbol
}

// ExternDecl declares a host-provided function.
type ExternDecl struct {
	Name string
	Sig  *FuncSig
	Sym  *Symbol
}

// File is a parsed translation unit.
type File struct {
	Structs []*StructInfo
	Globals []*GlobalDecl
	Externs []*ExternDecl
	Funcs   []*FuncDecl
}
