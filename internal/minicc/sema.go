package minicc

import "fmt"

// Program is a type-checked translation unit ready for code generation.
type Program struct {
	File   *File
	Layout Layout
	// FuncSyms maps function names to symbols (defined + extern).
	FuncSyms map[string]*Symbol
	// TableFuncs are functions whose address is taken; they receive
	// function-table slots (paper Fig. 9: only address-taken functions
	// are indirect-call targets).
	TableFuncs []*Symbol
}

// Builtin type signatures (paper §6.1: clang builtins that map directly
// to the Cage instructions).
var builtinSigs = map[string]*FuncSig{
	"__builtin_segment_new":     {Params: []*Type{PtrTo(TypeChar), TypeLong}, Ret: PtrTo(TypeChar)},
	"__builtin_segment_set_tag": {Params: []*Type{PtrTo(TypeChar), PtrTo(TypeChar), TypeLong}, Ret: TypeVoid},
	"__builtin_segment_free":    {Params: []*Type{PtrTo(TypeChar), TypeLong}, Ret: TypeVoid},
	"__builtin_pointer_sign":    {Params: []*Type{PtrTo(TypeChar)}, Ret: PtrTo(TypeChar)},
	"__builtin_pointer_auth":    {Params: []*Type{PtrTo(TypeChar)}, Ret: PtrTo(TypeChar)},
}

// Analyze resolves names, checks types, and runs the Algorithm 1
// analyses, producing a Program.
func Analyze(f *File, layout Layout) (*Program, error) {
	p := &Program{File: f, Layout: layout, FuncSyms: make(map[string]*Symbol)}
	s := &sema{prog: p, layout: layout, globals: make(map[string]*Symbol)}

	for _, si := range f.Structs {
		layout.LayoutStruct(si)
	}
	for name, sig := range builtinSigs {
		p.FuncSyms[name] = &Symbol{Name: name, Kind: SymExtern, Sig: sig, IsBuiltin: true,
			Type: &Type{Kind: KFunc, Sig: sig}}
	}
	for _, ex := range f.Externs {
		sym := &Symbol{Name: ex.Name, Kind: SymExtern, Sig: ex.Sig,
			Type: &Type{Kind: KFunc, Sig: ex.Sig}}
		ex.Sym = sym
		p.FuncSyms[ex.Name] = sym
	}
	for _, fn := range f.Funcs {
		sig := &FuncSig{Ret: fn.Ret}
		for _, pa := range fn.Params {
			sig.Params = append(sig.Params, pa.Typ)
		}
		sym := &Symbol{Name: fn.Name, Kind: SymFunc, Sig: sig, FuncDecl: fn,
			Type: &Type{Kind: KFunc, Sig: sig}, TableIdx: -1}
		fn.Sym = sym
		if _, dup := p.FuncSyms[fn.Name]; dup {
			return nil, fmt.Errorf("minicc: duplicate function %q", fn.Name)
		}
		p.FuncSyms[fn.Name] = sym
	}
	for _, g := range f.Globals {
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Typ, GlobalInit: g.Init}
		g.Sym = sym
		s.globals[g.Name] = sym
		if g.Init != nil {
			if err := s.checkExpr(g.Init); err != nil {
				return nil, err
			}
		}
	}
	for _, fn := range f.Funcs {
		if err := s.checkFunc(fn); err != nil {
			return nil, err
		}
		runStackAnalysis(fn, layout)
	}
	return p, nil
}

type sema struct {
	prog    *Program
	layout  Layout
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncDecl
}

func (s *sema) pushScope() { s.scopes = append(s.scopes, make(map[string]*Symbol)) }
func (s *sema) popScope()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *sema) declare(sym *Symbol) { s.scopes[len(s.scopes)-1][sym.Name] = sym }

func (s *sema) lookup(name string) *Symbol {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if sym, ok := s.scopes[i][name]; ok {
			return sym
		}
	}
	if sym, ok := s.globals[name]; ok {
		return sym
	}
	if sym, ok := s.prog.FuncSyms[name]; ok {
		return sym
	}
	return nil
}

func (s *sema) checkFunc(fn *FuncDecl) error {
	s.fn = fn
	s.pushScope()
	defer s.popScope()
	for _, pa := range fn.Params {
		sym := &Symbol{Name: pa.Name, Kind: SymParam, Type: pa.Typ}
		fn.Locals = append(fn.Locals, sym)
		s.declare(sym)
	}
	return s.checkStmt(fn.Body)
}

func (s *sema) checkStmt(st Stmt) error {
	switch n := st.(type) {
	case *BlockStmt:
		s.pushScope()
		defer s.popScope()
		for _, sub := range n.Stmts {
			if err := s.checkStmt(sub); err != nil {
				return err
			}
		}
	case *DeclStmt:
		if n.Init != nil {
			if err := s.checkExpr(n.Init); err != nil {
				return err
			}
		}
		sym := &Symbol{Name: n.Name, Kind: SymLocal, Type: n.Typ}
		n.Sym = sym
		s.fn.Locals = append(s.fn.Locals, sym)
		s.declare(sym)
	case *ExprStmt:
		if n.X != nil {
			return s.checkExpr(n.X)
		}
	case *IfStmt:
		if err := s.checkExpr(n.Cond); err != nil {
			return err
		}
		if err := s.checkStmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return s.checkStmt(n.Else)
		}
	case *ForStmt:
		s.pushScope()
		defer s.popScope()
		if n.Init != nil {
			if err := s.checkStmt(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := s.checkExpr(n.Cond); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if err := s.checkExpr(n.Post); err != nil {
				return err
			}
		}
		return s.checkStmt(n.Body)
	case *WhileStmt:
		if err := s.checkExpr(n.Cond); err != nil {
			return err
		}
		return s.checkStmt(n.Body)
	case *ReturnStmt:
		if n.X != nil {
			if err := s.checkExpr(n.X); err != nil {
				return err
			}
			if s.fn.Ret == TypeVoid {
				return fmt.Errorf("minicc: %s: return with value in void function", s.fn.Name)
			}
			if n.X.Type() == TypeVoid {
				return fmt.Errorf("minicc: %s: returning a void expression", s.fn.Name)
			}
		} else if s.fn.Ret != TypeVoid {
			return fmt.Errorf("minicc: %s: return without value", s.fn.Name)
		}
	case *BreakStmt, *ContinueStmt:
	}
	return nil
}

func (s *sema) checkExpr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		if n.Val >= -(1<<31) && n.Val < 1<<31 {
			n.setType(TypeInt)
		} else {
			n.setType(TypeLong)
		}
	case *FloatLit:
		n.setType(TypeDouble)
	case *StrLit:
		n.setType(PtrTo(TypeChar))
	case *Ident:
		sym := s.lookup(n.Name)
		if sym == nil {
			l, c := n.Pos()
			return errf(l, c, "undeclared identifier %q", n.Name)
		}
		n.Sym = sym
		n.setType(sym.Type)
	case *Unary:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		xt := n.X.Type()
		switch n.Op {
		case "-", "~":
			if !xt.IsArith() {
				return s.typeErr(n, "unary %s on %v", n.Op, xt)
			}
			n.setType(promote(xt))
		case "!":
			n.setType(TypeInt)
		case "*":
			dt := xt.Decay()
			if !dt.IsPtr() {
				return s.typeErr(n, "dereference of non-pointer %v", xt)
			}
			n.setType(dt.Elem)
		case "&":
			if !isLvalue(n.X) {
				return s.typeErr(n, "address of non-lvalue")
			}
			markAddrTaken(n.X)
			n.setType(PtrTo(xt))
		case "++", "--":
			if !isLvalue(n.X) {
				return s.typeErr(n, "%s on non-lvalue", n.Op)
			}
			n.setType(xt)
		}
	case *Postfix:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		if !isLvalue(n.X) {
			return s.typeErr(n, "%s on non-lvalue", n.Op)
		}
		n.setType(n.X.Type())
	case *Binary:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		if err := s.checkExpr(n.Y); err != nil {
			return err
		}
		xt, yt := n.X.Type().Decay(), n.Y.Type().Decay()
		switch n.Op {
		case "&&", "||":
			n.setType(TypeInt)
		case "==", "!=", "<", ">", "<=", ">=":
			n.setType(TypeInt)
		case "+", "-":
			switch {
			case xt.IsPtr() && yt.IsInteger():
				n.setType(xt)
			case n.Op == "+" && xt.IsInteger() && yt.IsPtr():
				n.setType(yt)
			case n.Op == "-" && xt.IsPtr() && yt.IsPtr():
				n.setType(TypeLong)
			case xt.IsArith() && yt.IsArith():
				n.setType(CommonArith(xt, yt))
			default:
				return s.typeErr(n, "invalid operands %v %s %v", xt, n.Op, yt)
			}
		case "<<", ">>":
			if !xt.IsInteger() || !yt.IsInteger() {
				return s.typeErr(n, "shift of %v by %v", xt, yt)
			}
			n.setType(promote(xt))
		case "&", "|", "^", "%":
			if !xt.IsInteger() || !yt.IsInteger() {
				return s.typeErr(n, "integer op %s on %v, %v", n.Op, xt, yt)
			}
			n.setType(CommonArith(xt, yt))
		default: // * /
			if !xt.IsArith() || !yt.IsArith() {
				return s.typeErr(n, "arithmetic %s on %v, %v", n.Op, xt, yt)
			}
			n.setType(CommonArith(xt, yt))
		}
	case *Assign:
		if err := s.checkExpr(n.LHS); err != nil {
			return err
		}
		if err := s.checkExpr(n.RHS); err != nil {
			return err
		}
		if !isLvalue(n.LHS) {
			return s.typeErr(n, "assignment to non-lvalue")
		}
		lt := n.LHS.Type()
		rt := n.RHS.Type().Decay()
		if n.Op == "=" {
			if !assignable(lt, rt, n.RHS) {
				return s.typeErr(n, "cannot assign %v to %v", rt, lt)
			}
		} else if lt.IsPtr() {
			// Compound pointer arithmetic: only += and -= with an
			// integer operand.
			if (n.Op != "+=" && n.Op != "-=") || !rt.IsInteger() {
				return s.typeErr(n, "invalid %s on pointer %v", n.Op, lt)
			}
		} else if !lt.IsArith() || !rt.IsArith() {
			return s.typeErr(n, "invalid %s on %v, %v", n.Op, lt, rt)
		}
		n.setType(lt)
	case *Cond:
		if err := s.checkExpr(n.C); err != nil {
			return err
		}
		if err := s.checkExpr(n.T); err != nil {
			return err
		}
		if err := s.checkExpr(n.F); err != nil {
			return err
		}
		tt, ft := n.T.Type().Decay(), n.F.Type().Decay()
		if tt.IsArith() && ft.IsArith() {
			n.setType(CommonArith(tt, ft))
		} else {
			n.setType(tt)
		}
	case *Index:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		if err := s.checkExpr(n.Idx); err != nil {
			return err
		}
		bt := n.X.Type()
		if bt.Kind != KArray && !bt.IsPtr() {
			return s.typeErr(n, "indexing non-array %v", bt)
		}
		if !n.Idx.Type().Decay().IsInteger() {
			return s.typeErr(n, "non-integer index")
		}
		n.setType(bt.Elem)
	case *Member:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		xt := n.X.Type()
		if n.Arrow {
			if !xt.Decay().IsPtr() || xt.Decay().Elem.Kind != KStruct {
				return s.typeErr(n, "-> on non-struct-pointer %v", xt)
			}
			xt = xt.Decay().Elem
		}
		if xt.Kind != KStruct {
			return s.typeErr(n, ". on non-struct %v", xt)
		}
		for i := range xt.Struct.Fields {
			if xt.Struct.Fields[i].Name == n.Name {
				n.Field = &xt.Struct.Fields[i]
				n.setType(n.Field.Type)
				return nil
			}
		}
		return s.typeErr(n, "struct %s has no field %q", xt.Struct.Name, n.Name)
	case *Call:
		for _, a := range n.Args {
			if err := s.checkExpr(a); err != nil {
				return err
			}
		}
		// Direct call by name?
		if id, ok := n.Fun.(*Ident); ok {
			if sym := s.prog.FuncSyms[id.Name]; sym != nil && s.lookupLocalOnly(id.Name) == nil {
				id.Sym = sym
				id.setType(sym.Type)
				if sym.IsBuiltin {
					n.Builtin = sym.Name
				}
				return s.checkCallSig(n, sym.Sig)
			}
		}
		// Indirect call through a function-pointer expression.
		if err := s.checkExpr(n.Fun); err != nil {
			return err
		}
		ft := n.Fun.Type()
		if ft.Kind == KPtr && ft.Elem != nil && ft.Elem.Kind == KFunc {
			ft = ft.Elem
		}
		if ft.Kind != KFunc {
			return s.typeErr(n, "call of non-function %v", n.Fun.Type())
		}
		return s.checkCallSig(n, ft.Sig)
	case *Cast:
		if err := s.checkExpr(n.X); err != nil {
			return err
		}
		n.setType(n.To)
	case *SizeofExpr:
		if n.OfExpr != nil {
			if err := s.checkExpr(n.OfExpr); err != nil {
				return err
			}
		}
		n.setType(TypeLong)
	default:
		return fmt.Errorf("minicc: unhandled expression %T", e)
	}
	return nil
}

// lookupLocalOnly checks whether name is shadowed by a local.
func (s *sema) lookupLocalOnly(name string) *Symbol {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if sym, ok := s.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

func (s *sema) checkCallSig(n *Call, sig *FuncSig) error {
	if len(n.Args) != len(sig.Params) {
		return s.typeErr(n, "call expects %d arguments, got %d", len(sig.Params), len(n.Args))
	}
	for i, a := range n.Args {
		if !assignable(sig.Params[i], a.Type().Decay(), a) {
			return s.typeErr(n, "argument %d: cannot pass %v as %v", i+1, a.Type(), sig.Params[i])
		}
	}
	n.setType(sig.Ret)
	return nil
}

func (s *sema) typeErr(e Expr, format string, args ...any) error {
	l, c := e.Pos()
	return errf(l, c, format, args...)
}

// assignable is MiniC's lenient assignment compatibility: arithmetic
// types interconvert, pointers interconvert (C would warn), the literal
// 0 is a null pointer, and function names convert to matching function
// pointers.
func assignable(to, from *Type, fromExpr Expr) bool {
	if to.Equal(from) {
		return true
	}
	if to.IsArith() && from.IsArith() {
		return true
	}
	if to.IsPtr() && from.IsPtr() {
		return true
	}
	if to.Kind == KFunc && from.Kind == KFunc {
		return true
	}
	if to.IsPtr() && from.Kind == KFunc {
		return true
	}
	if to.Kind == KFunc && from.IsPtr() {
		return true
	}
	if to.IsPtr() || to.Kind == KFunc {
		if lit, ok := fromExpr.(*IntLit); ok && lit.Val == 0 {
			return true
		}
	}
	// Pointers convert to/from long explicitly in exploit-style code;
	// accept integer<->pointer with a cast node only.
	if _, isCast := fromExpr.(*Cast); isCast {
		if (to.IsPtr() && from.IsInteger()) || (to.IsInteger() && from.IsPtr()) {
			return true
		}
	}
	return false
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch n := e.(type) {
	case *Ident:
		return n.Sym != nil && n.Sym.Kind != SymFunc && n.Sym.Kind != SymExtern
	case *Index, *Member:
		return true
	case *Unary:
		return n.Op == "*"
	}
	return false
}

// markAddrTaken records address-of on the root symbol (feeds Alg. 1).
func markAddrTaken(e Expr) {
	switch n := e.(type) {
	case *Ident:
		if n.Sym != nil {
			n.Sym.AddrTaken = true
		}
	case *Index:
		markAddrTaken(n.X)
	case *Member:
		if !n.Arrow {
			markAddrTaken(n.X)
		}
	}
}
