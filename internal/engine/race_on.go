//go:build race

package engine

// raceEnabled reports whether this build carries the race detector,
// whose shadow-memory instrumentation adds allocations that would
// fail the zero-alloc gates.
const raceEnabled = true
