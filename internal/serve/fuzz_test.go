package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"cage"
)

// fuzzServer is one server shared across fuzz iterations, with registry
// quotas tight enough that a long fuzz run cannot grow memory without
// bound.
func fuzzServer(tb testing.TB) *Server {
	tb.Helper()
	srv, err := New(Options{
		Config:     cage.Baseline64(),
		ConfigName: "baseline64",
		DefaultQuota: QuotaPolicy{
			Fuel:           100_000,
			MaxModules:     64,
			MaxModuleBytes: 1 << 16,
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	return srv
}

// FuzzServeRequest asserts the daemon's robustness contract, mirroring
// wasm.FuzzDecode one layer up: an arbitrary body POSTed to the upload
// or invoke decoder never panics the handler, always yields a known
// status code, and always yields a JSON body. The handlers run in-
// process (no network), so a panic reaches the fuzzer instead of being
// swallowed by net/http's connection recovery.
func FuzzServeRequest(f *testing.F) {
	// Invoke-shaped seeds: the valid shape and every near miss.
	f.Add(false, []byte(`{"module":"sha256:ab","function":"run","args":[1,2]}`))
	f.Add(false, []byte(`{"module":"sha256:ab","function":"run","args":[],"fuel":1000,"timeout_ms":50}`))
	f.Add(false, []byte(`{"module":"","function":""}`))
	f.Add(false, []byte(`{"module":"m","function":"f","args":[1.5]}`))
	f.Add(false, []byte(`{"module":"m","function":"f","args":[18446744073709551615]}`))
	f.Add(false, []byte(`{"module":"m","function":"f","args":[-1]}`))
	f.Add(false, []byte(`{"module":"m","function":"f","timeout_ms":-5}`))
	f.Add(false, []byte(`{"module":"m","function":"f","unknown":true}`))
	f.Add(false, []byte(`{"module":"m","function":"f"}{"again":1}`))
	f.Add(false, []byte(`{`))
	f.Add(false, []byte(``))
	f.Add(false, []byte(`[]`))
	f.Add(false, bytes.Repeat([]byte(`[`), 10_000))

	// Upload-shaped seeds: MiniC source, a valid binary image, and
	// header-adjacent garbage (FuzzDecode's edge cases).
	f.Add(true, []byte(`long f(long n) { return n + 1; }`))
	f.Add(true, []byte(`long f( {`))
	f.Add(true, []byte("\x00asm"))
	f.Add(true, []byte("\x00asm\x01\x00\x00\x00"))
	f.Add(true, []byte("\x00asm\x01\x03\xFF\xFF"))
	if mod, err := cage.NewToolchain(cage.Baseline64()).CompileSource(`long one() { return 1; }`); err == nil {
		if bin, err := mod.Encode(); err == nil {
			f.Add(true, bin)
		}
	}

	srv := fuzzServer(f)
	okStatus := map[int]bool{
		http.StatusOK: true, http.StatusCreated: true,
		http.StatusBadRequest: true, http.StatusForbidden: true,
		http.StatusNotFound: true, http.StatusRequestTimeout: true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusUnprocessableEntity:   true,
		http.StatusTooManyRequests:       true,
		http.StatusInternalServerError:   true,
	}

	f.Fuzz(func(t *testing.T, upload bool, body []byte) {
		path := "/v1/invoke"
		if upload {
			path = "/v1/modules"
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set(TenantHeader, "fuzz")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)

		if !okStatus[rec.Code] {
			t.Fatalf("POST %s (%d bytes): unexpected status %d", path, len(body), rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("POST %s: status %d with non-JSON body %q", path, rec.Code, rec.Body.String())
		}

		// Parser differential: whenever the zero-alloc fast parser
		// accepts an invoke body, the strict stdlib decoder must agree
		// on every field — or reject with exactly the validation error
		// the fast path raises itself. Any body the fast parser gets
		// wrong it must refuse (falling back to the stdlib path), so a
		// divergence here is a real correctness bug, not a style gap.
		if !upload && len(body) <= maxInvokeBody {
			sc := getScratch()
			sc.buf = append(sc.buf[:0], body...)
			if sc.parseInvokeFast() {
				decoded, err := decodeInvokeRequest(bytes.NewReader(body))
				if err != nil {
					verr := sc.validate()
					if verr == nil || verr.Error() != err.Error() {
						t.Fatalf("body %q: stdlib rejects (%v) but fast validate says %v", body, err, verr)
					}
				} else if string(sc.module) != decoded.Module ||
					string(sc.function) != decoded.Function ||
					sc.fuel != decoded.Fuel || sc.timeoutMs != decoded.TimeoutMs ||
					!slices.Equal(sc.args, decoded.Args) {
					t.Fatalf("body %q: fast parse (%q %q %v fuel=%d t=%d) disagrees with stdlib (%q %q %v fuel=%d t=%d)",
						body, sc.module, sc.function, sc.args, sc.fuel, sc.timeoutMs,
						decoded.Module, decoded.Function, decoded.Args, decoded.Fuel, decoded.TimeoutMs)
				}
			}
			putScratch(sc)
		}
	})
}
