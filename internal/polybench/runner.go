package polybench

import (
	"fmt"
	"math"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/wasm"
)

// Build compiles a kernel with the given toolchain options.
func Build(k Kernel, opts codegen.Options) (*wasm.Module, error) {
	file, err := minicc.Parse(k.Source)
	if err != nil {
		return nil, fmt.Errorf("polybench %s: %w", k.Name, err)
	}
	layout := minicc.Layout64
	if !opts.Wasm64 {
		layout = minicc.Layout32
	}
	prog, err := minicc.Analyze(file, layout)
	if err != nil {
		return nil, fmt.Errorf("polybench %s: %w", k.Name, err)
	}
	m, err := codegen.Compile(prog, opts)
	if err != nil {
		return nil, fmt.Errorf("polybench %s: %w", k.Name, err)
	}
	return m, nil
}

// HostModules builds the host surface the kernels need: the (possibly
// hardened) allocator and libm-style helpers, for both pointer-width
// ABIs.
func HostModules() []*exec.HostModule {
	mods := alloc.HostModules()
	sqrt := func(_ *exec.HostContext, x float64) (float64, error) {
		return math.Sqrt(x), nil
	}
	env := exec.NewHostModule("env")
	exec.Func1(env, "sqrt", sqrt)
	env32 := exec.NewHostModule("env32").Ptr32()
	exec.Func1(env32, "sqrt", sqrt)
	return append(mods, env, env32)
}

// Instantiate builds a linked, allocator-bound instance of a compiled
// kernel, ready to Invoke its exports — the one kernel-bootstrapping
// sequence every runner (and the bench JSON harness) shares. The
// counter, when non-nil, accumulates lowered-code events for the
// timing model.
func Instantiate(m *wasm.Module, features core.Features, counter *arch.Counter) (*exec.Instance, *alloc.Allocator, error) {
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features:    features,
		HostModules: HostModules(),
		HostData:    host,
		Seed:        1234,
		Counter:     counter,
	})
	if err != nil {
		return nil, nil, err
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		inst.Close()
		return nil, nil, fmt.Errorf("polybench: module lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		inst.Close()
		return nil, nil, err
	}
	return inst, host.A, nil
}

// RunModule instantiates a compiled kernel and invokes run(n), returning
// the checksum.
func RunModule(m *wasm.Module, n int, features core.Features, counter *arch.Counter) (float64, error) {
	inst, _, err := Instantiate(m, features, counter)
	if err != nil {
		return 0, err
	}
	defer inst.Close()
	res, err := inst.Invoke("run", uint64(n))
	if err != nil {
		return 0, err
	}
	return exec.F64Val(res[0]), nil
}

// RunModuleWithAllocator runs a compiled kernel and returns the
// allocator for footprint inspection (§7.3 memory accounting).
func RunModuleWithAllocator(m *wasm.Module, n int, features core.Features) (*alloc.Allocator, error) {
	inst, a, err := Instantiate(m, features, nil)
	if err != nil {
		return nil, err
	}
	defer inst.Close()
	if _, err := inst.Invoke("run", uint64(n)); err != nil {
		return nil, err
	}
	return a, nil
}

// RunKernelRegion instantiates a module exporting setup(n) and
// kernel(n), runs both, and returns the checksum plus the event delta of
// the kernel region alone (the PolyBench timer methodology).
func RunKernelRegion(m *wasm.Module, n int, features core.Features) (float64, arch.Counter, error) {
	var ctr arch.Counter
	inst, _, err := Instantiate(m, features, &ctr)
	if err != nil {
		return 0, arch.Counter{}, err
	}
	defer inst.Close()
	if _, err := inst.Invoke("setup", uint64(n)); err != nil {
		return 0, arch.Counter{}, err
	}
	before := ctr.Snapshot()
	res, err := inst.Invoke("kernel", uint64(n))
	if err != nil {
		return 0, arch.Counter{}, err
	}
	return exec.F64Val(res[0]), ctr.DeltaSince(before), nil
}

// Run compiles and executes a kernel in one step.
func Run(k Kernel, n int, opts codegen.Options, features core.Features, counter *arch.Counter) (float64, error) {
	m, err := Build(k, opts)
	if err != nil {
		return 0, err
	}
	return RunModule(m, n, features, counter)
}

// Validate runs the kernel at its test size and compares against the
// reference implementation.
func Validate(k Kernel, opts codegen.Options, features core.Features) error {
	got, err := Run(k, k.TestN, opts, features, nil)
	if err != nil {
		return err
	}
	want := k.Reference(k.TestN)
	if !closeEnough(got, want) {
		return fmt.Errorf("polybench %s: checksum %g, want %g", k.Name, got, want)
	}
	return nil
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
