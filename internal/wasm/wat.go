package wasm

import (
	"fmt"
	"strings"
)

// WAT-style text rendering of modules, used by cage-objdump and for
// debugging compiler output. The format follows the WebAssembly text
// format conventions (s-expressions, indentation tracking block
// structure); Cage instructions print with their paper mnemonics.

// Wat renders the module in a WAT-like text form.
func Wat(m *Module) string {
	var b strings.Builder
	b.WriteString("(module\n")
	for i, t := range m.Types {
		fmt.Fprintf(&b, "  (type (;%d;) (func%s))\n", i, watSig(t))
	}
	for i, im := range m.Imports {
		fmt.Fprintf(&b, "  (import %q %q (func (;%d;) (type %d)))\n",
			im.Module, im.Name, i, im.TypeIdx)
	}
	for _, mem := range m.Mems {
		flavor := ""
		if mem.Memory64 {
			flavor = " i64"
		}
		if mem.Limits.HasMax {
			fmt.Fprintf(&b, "  (memory%s %d %d)\n", flavor, mem.Limits.Min, mem.Limits.Max)
		} else {
			fmt.Fprintf(&b, "  (memory%s %d)\n", flavor, mem.Limits.Min)
		}
	}
	for _, t := range m.Tables {
		fmt.Fprintf(&b, "  (table %d funcref)\n", t.Limits.Min)
	}
	for i, g := range m.Globals {
		mut := g.Type.Type.String()
		if g.Type.Mutable {
			mut = "(mut " + mut + ")"
		}
		fmt.Fprintf(&b, "  (global (;%d;) %s (%s.const %d))\n",
			i, mut, g.Type.Type, int64(g.Init))
	}
	for i := range m.Funcs {
		writeWatFunc(&b, m, i)
	}
	for _, e := range m.Elems {
		idxs := make([]string, len(e.Funcs))
		for i, f := range e.Funcs {
			idxs[i] = fmt.Sprintf("%d", f)
		}
		fmt.Fprintf(&b, "  (elem (i32.const %d) func %s)\n", e.Offset, strings.Join(idxs, " "))
	}
	for _, d := range m.Datas {
		fmt.Fprintf(&b, "  (data (offset %d) (;%d bytes;))\n", d.Offset, len(d.Bytes))
	}
	for _, e := range m.Exports {
		kind := map[ExportKind]string{
			ExportFunc: "func", ExportTable: "table",
			ExportMemory: "memory", ExportGlobal: "global",
		}[e.Kind]
		fmt.Fprintf(&b, "  (export %q (%s %d))\n", e.Name, kind, e.Idx)
	}
	if m.Start != nil {
		fmt.Fprintf(&b, "  (start %d)\n", *m.Start)
	}
	b.WriteString(")\n")
	return b.String()
}

func watSig(t FuncType) string {
	var b strings.Builder
	if len(t.Params) > 0 {
		b.WriteString(" (param")
		for _, p := range t.Params {
			b.WriteString(" " + p.String())
		}
		b.WriteString(")")
	}
	if len(t.Results) > 0 {
		b.WriteString(" (result")
		for _, r := range t.Results {
			b.WriteString(" " + r.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

func writeWatFunc(b *strings.Builder, m *Module, i int) {
	f := &m.Funcs[i]
	name := ""
	if f.Name != "" {
		name = " $" + f.Name
	}
	fmt.Fprintf(b, "  (func%s (;%d;) (type %d)%s\n",
		name, len(m.Imports)+i, f.TypeIdx, watSig(m.Types[f.TypeIdx]))
	if len(f.Locals) > 0 {
		b.WriteString("    (local")
		for _, l := range f.Locals {
			b.WriteString(" " + l.String())
		}
		b.WriteString(")\n")
	}
	depth := 0
	for pc, in := range f.Body {
		if pc == len(f.Body)-1 && in.Op == OpEnd {
			break // the function-closing end becomes the footer paren
		}
		switch in.Op {
		case OpEnd, OpElse:
			depth--
		}
		if depth < 0 {
			depth = 0
		}
		fmt.Fprintf(b, "    %s%s\n", strings.Repeat("  ", depth), watInstr(in))
		switch in.Op {
		case OpBlock, OpLoop, OpIf, OpElse:
			depth++
		}
	}
	b.WriteString("  )\n")
}

func watInstr(in Instr) string {
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		if t, ok := in.Block.Result(); ok {
			return fmt.Sprintf("%s (result %s)", in.Op, t)
		}
		return in.Op.String()
	}
	return in.String()
}
