// Memsafety walks the paper's Table 2: eight CVE-modeled memory-safety
// bugs that are silently exploitable on baseline WebAssembly and trap
// under Cage.
package main

import (
	"fmt"
	"log"

	"cage/internal/exploit"
)

func main() {
	fmt.Println("Table 2: memory safety errors and their mitigation")
	fmt.Println()
	for _, cs := range exploit.Cases() {
		base, err := exploit.Run(cs, false)
		if err != nil {
			log.Fatalf("%s baseline: %v", cs.CVE, err)
		}
		caged, err := exploit.Run(cs, true)
		if err != nil {
			log.Fatalf("%s cage: %v", cs.CVE, err)
		}
		fmt.Printf("%-15s %-14s\n", cs.CVE, cs.Cause)
		fmt.Printf("    %s\n", cs.Description)
		if base.Damage != 0 {
			fmt.Printf("    baseline: EXPLOITED (damage indicator %d)\n", base.Damage)
		} else {
			fmt.Printf("    baseline: no observable damage\n")
		}
		if caged.Trapped {
			fmt.Printf("    cage:     trapped -> %s\n", trapName(caged))
		} else {
			fmt.Printf("    cage:     NOT MITIGATED\n")
		}
		fmt.Println()
	}
}

func trapName(r exploit.Result) string {
	return fmt.Sprintf("trap code %d", r.TrapCode)
}
