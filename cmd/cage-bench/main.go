// Command cage-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cage-bench [-quick] [-exp all|table1|table2|fig4|fig14|fig15|fig16|startup|mem|security]
package main

import (
	"flag"
	"fmt"
	"os"

	"cage/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use small problem sizes")
	exp := flag.String("exp", "all", "which experiment to run")
	flag.Parse()

	w := os.Stdout
	var err error
	switch *exp {
	case "all":
		err = bench.RunAll(w, *quick)
	case "table1":
		bench.Table1Report(w)
	case "table2":
		err = bench.Table2Report(w)
	case "fig4":
		bench.Fig4Report(w)
	case "fig14":
		var r *bench.Fig14Result
		if r, err = bench.RunFig14(*quick); err == nil {
			r.Report(w)
		}
	case "fig15":
		var r *bench.Fig15Result
		if r, err = bench.RunFig15(*quick); err == nil {
			r.Report(w)
		}
	case "fig16":
		bench.Fig16Report(w)
	case "startup":
		err = bench.StartupReport(w)
	case "mem":
		err = bench.MemoryReport(w, *quick)
	case "security":
		bench.SecurityReport(w)
	default:
		fmt.Fprintf(os.Stderr, "cage-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
		os.Exit(1)
	}
}
