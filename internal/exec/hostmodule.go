package exec

import (
	"fmt"
	"sync"

	"cage/internal/wasm"
)

// HostModule is the embedder-facing builder for a named module of host
// functions ("env", "wasi_snapshot_preview1", an embedder's own
// "mymod"). Functions are defined either through the raw Func slot or
// through the typed generic adapters (Func0..Func4, Void0..Void4),
// which derive the wasm signature from the Go signature and marshal
// arguments and results.
//
// A HostModule is mutable until it is frozen: linking it into an
// instance (Linker.AddModule, ResolveImports — and therefore the first
// use of any engine it is registered with) freezes it, after which
// further definitions panic. This mirrors the facade's ErrEngineStarted
// contract: the host surface is fixed before the first call, so
// resolved import tables can be snapshotted and shared by every pooled
// instance without locking.
type HostModule struct {
	name  string
	ptr32 bool

	mu     sync.Mutex
	frozen bool
	funcs  map[string]HostFunc
	names  []string // definition order, for deterministic merging
}

// NewHostModule creates an empty host module named name. The module
// uses the wasm64 pointer ABI (guest pointers are i64); call Ptr32
// first for an ILP32 module.
func NewHostModule(name string) *HostModule {
	return &HostModule{name: name, funcs: make(map[string]HostFunc)}
}

// Name returns the import-module name guests use.
func (hm *HostModule) Name() string { return hm.name }

// Ptr32 switches the module to the ILP32 pointer ABI: Ptr and Str
// parameters lower to i32 slots and pointer results are truncated to 32
// bits. It must be called before any function is defined.
func (hm *HostModule) Ptr32() *HostModule {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	if len(hm.funcs) > 0 {
		panic(fmt.Sprintf("exec: host module %q: Ptr32 must precede function definitions", hm.name))
	}
	hm.ptr32 = true
	return hm
}

// HostFn is the raw-slot host callback: args and results are raw
// 64-bit value bits, exactly as the guest passed them. The typed
// adapters lower onto this form.
type HostFn func(hc *HostContext, args []uint64) ([]uint64, error)

// Func defines a host function under the given raw wasm signature.
// It panics on a duplicate name or a frozen module (host surfaces are
// assembled at startup; both are programming errors, not runtime
// conditions).
func (hm *HostModule) Func(name string, typ wasm.FuncType, fn HostFn) *HostModule {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	if hm.frozen {
		panic(fmt.Sprintf("exec: host module %q is frozen (already linked); define %s before first use", hm.name, name))
	}
	if _, dup := hm.funcs[name]; dup {
		panic(fmt.Sprintf("exec: host module %q: duplicate function %q", hm.name, name))
	}
	hm.funcs[name] = HostFunc{Type: typ, Fn: fn}
	hm.names = append(hm.names, name)
	return hm
}

// Freeze makes the module immutable. Linking freezes implicitly; Freeze
// is for embedders that want to hand a module out read-only.
func (hm *HostModule) Freeze() {
	hm.mu.Lock()
	hm.frozen = true
	hm.mu.Unlock()
}

// Lookup resolves a function by name (for direct host-side invocation,
// e.g. in tests).
func (hm *HostModule) Lookup(name string) (HostFunc, bool) {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	fn, ok := hm.funcs[name]
	return fn, ok
}

// Typed adapter value kinds.

// Ptr marks a guest-pointer parameter or result in typed host
// signatures. As a parameter it arrives untagged (MTE tag and PAC bits
// stripped, truncated to the module's pointer width) so it can be
// passed straight to the Memory view; as a result it is truncated to
// the pointer width but otherwise passed through, so a tagged pointer
// (e.g. from the hardened allocator) keeps its tag.
type Ptr uint64

// Str marks a guest string parameter: a (pointer, length) pair in the
// wasm signature, materialized as a Go string through the
// bounds-checked Memory view before the host function runs.
type Str string

// HostParam constrains typed host-function parameters.
type HostParam interface {
	int32 | uint32 | int64 | uint64 | float64 | Ptr | Str
}

// HostResult constrains typed host-function results.
type HostResult interface {
	int32 | uint32 | int64 | uint64 | float64 | Ptr
}

// ptrType is the wasm value type of the module's pointers.
func (hm *HostModule) ptrType() wasm.ValType {
	if hm.ptr32 {
		return wasm.I32
	}
	return wasm.I64
}

// appendParam appends T's lowered slot type(s) to sig.
func appendParam[T HostParam](hm *HostModule, sig []wasm.ValType) []wasm.ValType {
	var z T
	switch any(z).(type) {
	case int32, uint32:
		return append(sig, wasm.I32)
	case int64, uint64:
		return append(sig, wasm.I64)
	case float64:
		return append(sig, wasm.F64)
	case Ptr:
		return append(sig, hm.ptrType())
	case Str:
		return append(sig, hm.ptrType(), hm.ptrType())
	}
	panic("exec: unsupported host parameter type")
}

// resultType is T's lowered result type.
func resultType[T HostResult](hm *HostModule) wasm.ValType {
	var z T
	switch any(z).(type) {
	case int32, uint32:
		return wasm.I32
	case int64, uint64:
		return wasm.I64
	case float64:
		return wasm.F64
	case Ptr:
		return hm.ptrType()
	}
	panic("exec: unsupported host result type")
}

// decodeParam consumes T's slot(s) from args at *i.
func decodeParam[T HostParam](hc *HostContext, ptr32 bool, args []uint64, i *int) (T, error) {
	var z T
	var v any
	switch any(z).(type) {
	case int32:
		v = int32(uint32(args[*i]))
		*i++
	case uint32:
		v = uint32(args[*i])
		*i++
	case int64:
		v = int64(args[*i])
		*i++
	case uint64:
		v = args[*i]
		*i++
	case float64:
		v = F64Val(args[*i])
		*i++
	case Ptr:
		v = Ptr(untagPtr(args[*i], ptr32))
		*i++
	case Str:
		p := untagPtr(args[*i], ptr32)
		n := untagPtr(args[*i+1], ptr32)
		*i += 2
		s, err := hc.Memory().ReadString(p, n)
		if err != nil {
			return z, err
		}
		v = Str(s)
	}
	return v.(T), nil
}

// encodeResult lowers r to its raw slot bits.
func encodeResult[R HostResult](ptr32 bool, r R) uint64 {
	switch v := any(r).(type) {
	case int32:
		return uint64(uint32(v))
	case uint32:
		return uint64(v)
	case int64:
		return uint64(v)
	case uint64:
		return v
	case float64:
		return F64Bits(v)
	case Ptr:
		if ptr32 {
			return uint64(v) & 0xFFFFFFFF
		}
		return uint64(v)
	}
	return 0
}

// Typed adapters. Go methods cannot be generic, so these are package
// functions taking the module first; each derives the wasm signature
// from the Go one and lowers the typed function onto a raw slot.

// Void0 defines name as func() with no results.
func Void0(hm *HostModule, name string, fn func(*HostContext) error) *HostModule {
	return hm.Func(name, wasm.FuncType{}, func(hc *HostContext, _ []uint64) ([]uint64, error) {
		return nil, fn(hc)
	})
}

// Void1 defines name as func(A) with no results.
func Void1[A HostParam](hm *HostModule, name string, fn func(*HostContext, A) error) *HostModule {
	typ := wasm.FuncType{Params: appendParam[A](hm, nil)}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		return nil, fn(hc, a)
	})
}

// Void2 defines name as func(A, B) with no results.
func Void2[A, B HostParam](hm *HostModule, name string, fn func(*HostContext, A, B) error) *HostModule {
	typ := wasm.FuncType{Params: appendParam[B](hm, appendParam[A](hm, nil))}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		return nil, fn(hc, a, b)
	})
}

// Func0 defines name as func() R.
func Func0[R HostResult](hm *HostModule, name string, fn func(*HostContext) (R, error)) *HostModule {
	typ := wasm.FuncType{Results: []wasm.ValType{resultType[R](hm)}}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, _ []uint64) ([]uint64, error) {
		r, err := fn(hc)
		if err != nil {
			return nil, err
		}
		return []uint64{encodeResult(p32, r)}, nil
	})
}

// Func1 defines name as func(A) R.
func Func1[A HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A) (R, error)) *HostModule {
	typ := wasm.FuncType{Params: appendParam[A](hm, nil), Results: []wasm.ValType{resultType[R](hm)}}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		r, err := fn(hc, a)
		if err != nil {
			return nil, err
		}
		return []uint64{encodeResult(p32, r)}, nil
	})
}

// Func2 defines name as func(A, B) R.
func Func2[A, B HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B) (R, error)) *HostModule {
	typ := wasm.FuncType{Params: appendParam[B](hm, appendParam[A](hm, nil)), Results: []wasm.ValType{resultType[R](hm)}}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		r, err := fn(hc, a, b)
		if err != nil {
			return nil, err
		}
		return []uint64{encodeResult(p32, r)}, nil
	})
}

// Func3 defines name as func(A, B, C) R.
func Func3[A, B, C HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B, C) (R, error)) *HostModule {
	typ := wasm.FuncType{
		Params:  appendParam[C](hm, appendParam[B](hm, appendParam[A](hm, nil))),
		Results: []wasm.ValType{resultType[R](hm)},
	}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		c, err := decodeParam[C](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		r, err := fn(hc, a, b, c)
		if err != nil {
			return nil, err
		}
		return []uint64{encodeResult(p32, r)}, nil
	})
}

// Func4 defines name as func(A, B, C, D) R.
func Func4[A, B, C, D HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B, C, D) (R, error)) *HostModule {
	typ := wasm.FuncType{
		Params:  appendParam[D](hm, appendParam[C](hm, appendParam[B](hm, appendParam[A](hm, nil)))),
		Results: []wasm.ValType{resultType[R](hm)},
	}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		c, err := decodeParam[C](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		d, err := decodeParam[D](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		r, err := fn(hc, a, b, c, d)
		if err != nil {
			return nil, err
		}
		return []uint64{encodeResult(p32, r)}, nil
	})
}

// Void3 defines name as func(A, B, C) with no results.
func Void3[A, B, C HostParam](hm *HostModule, name string, fn func(*HostContext, A, B, C) error) *HostModule {
	typ := wasm.FuncType{Params: appendParam[C](hm, appendParam[B](hm, appendParam[A](hm, nil)))}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		c, err := decodeParam[C](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		return nil, fn(hc, a, b, c)
	})
}

// Void4 defines name as func(A, B, C, D) with no results.
func Void4[A, B, C, D HostParam](hm *HostModule, name string, fn func(*HostContext, A, B, C, D) error) *HostModule {
	typ := wasm.FuncType{Params: appendParam[D](hm, appendParam[C](hm, appendParam[B](hm, appendParam[A](hm, nil))))}
	p32 := hm.ptr32
	return hm.Func(name, typ, func(hc *HostContext, args []uint64) ([]uint64, error) {
		i := 0
		a, err := decodeParam[A](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		b, err := decodeParam[B](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		c, err := decodeParam[C](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		d, err := decodeParam[D](hc, p32, args, &i)
		if err != nil {
			return nil, err
		}
		return nil, fn(hc, a, b, c, d)
	})
}
