package exec

import (
	"math"

	"cage/internal/arch"
	"cage/internal/ir"
	"cage/internal/wasm"
)

// This file holds the out-of-line halves of the fused-superinstruction
// handlers (frame.go): the cold tail of the ALU constituent executor
// (the hottest ops run in the dispatch loop's shared fusedALU block)
// and the variant-dispatched memory constituents (the guard-region
// variant is likewise inlined in the loop). Everything here mirrors an
// existing unfused path op-for-op and event-for-event — fusedALUSlow is
// the dispatch loop's inlined hot switch plus the shared numeric
// fallback, and the memory helpers call the same per-mode address
// functions the specialized load/store opcodes call — which is what
// makes the fusion pass semantics- and event-preserving by
// construction.

// fusedALUSlow executes one pure-value constituent of a fused
// superinstruction against the operand stack, returning the new stack.
// The inlined cases are copied from the dispatch loop's default-case
// fast path (same ops, same events); everything else takes the shared
// numeric ALU, exactly as an unfused instruction would.
func (inst *Instance) fusedALUSlow(op wasm.Opcode, stack []uint64) ([]uint64, error) {
	ctr := inst.counter
	l := len(stack)
	switch op {
	case wasm.OpI64Add:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] += stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI64Sub:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] -= stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI64And:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] &= stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI64Or:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] |= stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI64Xor:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] ^= stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI64Shl:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] <<= stack[l-1] & 63
		return stack[:l-1], nil
	case wasm.OpI64ShrS:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(int64(stack[l-2]) >> (stack[l-1] & 63))
		return stack[:l-1], nil
	case wasm.OpI64ShrU:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] >>= stack[l-1] & 63
		return stack[:l-1], nil
	case wasm.OpI64Mul:
		ctr.Add(arch.EvMul, 1)
		stack[l-2] *= stack[l-1]
		return stack[:l-1], nil
	case wasm.OpI32Add:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) + uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Sub:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) - uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32And:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) & uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Or:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) | uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Xor:
		ctr.Add(arch.EvALU, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) ^ uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Mul:
		ctr.Add(arch.EvMul, 1)
		stack[l-2] = uint64(uint32(stack[l-2]) * uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI64LtS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int64(stack[l-2]) < int64(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI64LtU:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(stack[l-2] < stack[l-1])
		return stack[:l-1], nil
	case wasm.OpI64GtS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int64(stack[l-2]) > int64(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI64GeS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int64(stack[l-2]) >= int64(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI64LeS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int64(stack[l-2]) <= int64(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI64Eq:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(stack[l-2] == stack[l-1])
		return stack[:l-1], nil
	case wasm.OpI64Ne:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(stack[l-2] != stack[l-1])
		return stack[:l-1], nil
	case wasm.OpI64Eqz:
		ctr.Add(arch.EvCmp, 1)
		stack[l-1] = b2u(stack[l-1] == 0)
		return stack, nil
	case wasm.OpI32LtS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int32(stack[l-2]) < int32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32LtU:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(uint32(stack[l-2]) < uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32GtS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int32(stack[l-2]) > int32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32GeS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int32(stack[l-2]) >= int32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32LeS:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(int32(stack[l-2]) <= int32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Eq:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(uint32(stack[l-2]) == uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Ne:
		ctr.Add(arch.EvCmp, 1)
		stack[l-2] = b2u(uint32(stack[l-2]) != uint32(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpI32Eqz:
		ctr.Add(arch.EvCmp, 1)
		stack[l-1] = b2u(uint32(stack[l-1]) == 0)
		return stack, nil
	case wasm.OpI32WrapI64:
		ctr.Add(arch.EvConv, 1)
		stack[l-1] = uint64(uint32(stack[l-1]))
		return stack, nil
	case wasm.OpI64ExtendI32S:
		ctr.Add(arch.EvConv, 1)
		stack[l-1] = uint64(int64(int32(stack[l-1])))
		return stack, nil
	case wasm.OpI64ExtendI32U:
		ctr.Add(arch.EvConv, 1)
		stack[l-1] = uint64(uint32(stack[l-1]))
		return stack, nil
	case wasm.OpF64ConvertI64S:
		ctr.Add(arch.EvConv, 1)
		stack[l-1] = math.Float64bits(float64(int64(stack[l-1])))
		return stack, nil
	case wasm.OpF64ConvertI32S:
		ctr.Add(arch.EvConv, 1)
		stack[l-1] = math.Float64bits(float64(int32(stack[l-1])))
		return stack, nil
	case wasm.OpF64Add:
		ctr.Add(arch.EvFAdd, 1)
		stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) + math.Float64frombits(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpF64Sub:
		ctr.Add(arch.EvFAdd, 1)
		stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) - math.Float64frombits(stack[l-1]))
		return stack[:l-1], nil
	case wasm.OpF64Mul:
		ctr.Add(arch.EvFMul, 1)
		stack[l-2] = math.Float64bits(math.Float64frombits(stack[l-2]) * math.Float64frombits(stack[l-1]))
		return stack[:l-1], nil
	default:
		n, err := inst.numeric(op, stack, l)
		if err != nil {
			return stack, err
		}
		return stack[:n], nil
	}
}

// fusedMemAddr translates a fused memory constituent's guest index
// through the same per-mode address function its unfused opcode uses —
// same events, same trap — for every specialized variant except the
// guard-region one, which the dispatch loop handles inline (it has no
// address function; the MMU is the check).
func (inst *Instance) fusedMemAddr(variant ir.Op, idx, offset, sz uint64) (uint64, error) {
	switch variant {
	case ir.OpLoadG32, ir.OpStoreG32:
		return inst.addrG32(idx, offset, sz, inst.memSize)
	case ir.OpLoadG32NC, ir.OpStoreG32NC:
		return inst.addrG32(idx, offset, sz, uint64(len(inst.mem)))
	case ir.OpLoadB64:
		return inst.addrB64(idx, offset, sz, false, true, false)
	case ir.OpLoadB64NC:
		return inst.addrB64(idx, offset, sz, false, false, false)
	case ir.OpLoadB64Tag:
		return inst.addrB64(idx, offset, sz, false, true, true)
	case ir.OpLoadB64NCTag:
		return inst.addrB64(idx, offset, sz, false, false, true)
	case ir.OpLoadMTE:
		return inst.addrMTE(idx, offset, sz, false, true)
	case ir.OpLoadMTENC:
		return inst.addrMTE(idx, offset, sz, false, false)
	case ir.OpStoreB64:
		return inst.addrB64(idx, offset, sz, true, true, false)
	case ir.OpStoreB64NC:
		return inst.addrB64(idx, offset, sz, true, false, false)
	case ir.OpStoreB64Tag:
		return inst.addrB64(idx, offset, sz, true, true, true)
	case ir.OpStoreB64NCTag:
		return inst.addrB64(idx, offset, sz, true, false, true)
	case ir.OpStoreMTE:
		return inst.addrMTE(idx, offset, sz, true, true)
	case ir.OpStoreMTENC:
		return inst.addrMTE(idx, offset, sz, true, false)
	}
	return 0, newTrap(TrapUnreachable, "fused memory op with variant %v", variant)
}

// fusedMemLoad executes the load constituent of a fused
// superinstruction for every variant but the guard-region one (which
// the dispatch loop runs inline): per-variant address translation,
// read, extension. The EvLoad charge happens at the call site, before
// translation, exactly like the unfused specialized loads.
func (inst *Instance) fusedMemLoad(in *ir.Instr, offset, idx uint64) (uint64, error) {
	sz := ir.FusedMemSize(in.B)
	addr, err := inst.fusedMemAddr(ir.FusedMemVariant(in.B), idx, offset, sz)
	if err != nil {
		return 0, err
	}
	return extendLoad(ir.FusedMemOp(in.B), readScalarFast(inst.mem, addr, sz)), nil
}

// fusedMemStore executes the store constituent of a fused
// superinstruction for every variant but the guard-region one (inlined
// in the dispatch loop): per-variant address translation, write. The
// EvStore charge happens at the call site, before translation.
func (inst *Instance) fusedMemStore(in *ir.Instr, idx, val uint64) error {
	inst.memDirty = true
	sz := ir.FusedMemSize(in.B)
	addr, err := inst.fusedMemAddr(ir.FusedMemVariant(in.B), idx, in.A, sz)
	if err != nil {
		return err
	}
	writeScalarFast(inst.mem, addr, sz, val)
	return nil
}
