package polybench

import "fmt"

// Kernel is one benchmark program.
type Kernel struct {
	// Name is the PolyBench kernel name (e.g. "2mm").
	Name string
	// Source is the MiniC program exporting `double run(long n)`.
	Source string
	// Reference computes the expected checksum with identical
	// floating-point operation order.
	Reference func(n int) float64
	// TestN is the problem size used by tests; BenchN by the Fig. 14
	// harness.
	TestN  int
	BenchN int
}

var registry []Kernel

func register(k Kernel) { registry = append(registry, k) }

// Kernels returns all kernels in registration order.
func Kernels() []Kernel { return registry }

// ByName finds a kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range registry {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("polybench: unknown kernel %q", name)
}

// prelude is shared by every kernel source.
const prelude = `
extern char* malloc(long n);
extern void free(char* p);
`

// Matrix initializers mirrored exactly by the Go references.
const initHelpers = `
double initA(long i, long j, long n) { return (double)((i * j + 1) % n) / (double)n; }
double initB(long i, long j, long n) { return (double)((i * (j + 1)) % n) / (double)n; }
double initC(long i, long j, long n) { return (double)((i * (j + 3) + 1) % n) / (double)n; }
double initD(long i, long j, long n) { return (double)((i * (j + 2)) % n) / (double)n; }
double initV(long i, long n) { return (double)(i % n) / (double)n; }
`

func refInitA(i, j, n int) float64 { return float64((i*j+1)%n) / float64(n) }
func refInitB(i, j, n int) float64 { return float64((i*(j+1))%n) / float64(n) }
func refInitC(i, j, n int) float64 { return float64((i*(j+3)+1)%n) / float64(n) }
func refInitD(i, j, n int) float64 { return float64((i*(j+2))%n) / float64(n) }
func refInitV(i, n int) float64    { return float64(i%n) / float64(n) }

func matA(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = refInitA(i, j, n)
		}
	}
	return m
}

func matB(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = refInitB(i, j, n)
		}
	}
	return m
}

func matC(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = refInitC(i, j, n)
		}
	}
	return m
}

func matD(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = refInitD(i, j, n)
		}
	}
	return m
}

func vecV(n int) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = refInitV(i, n)
	}
	return v
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
