//go:build cagecow && linux && amd64

package exec

// memfd_create on linux/amd64.
const sysMemfdCreate = 319
