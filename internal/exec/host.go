package exec

import "fmt"

// Host-side accessors used by runtime components (the hardened
// allocator, WASI). Host code runs with runtime privileges: raw reads
// and writes bypass MTE tag checks the way the runtime's own memory
// accesses do, while the HostSegment* wrappers go through the same
// segment semantics (and event accounting) as guest instructions.

// HostSegmentNew performs segment.new on behalf of the runtime.
func (inst *Instance) HostSegmentNew(ptr, length uint64) (uint64, error) {
	return inst.segmentNew(ptr, length, 0)
}

// HostSegmentSetTag performs segment.set_tag on behalf of the runtime.
func (inst *Instance) HostSegmentSetTag(ptr, tagged, length uint64) error {
	return inst.segmentSetTag(ptr, tagged, length, 0)
}

// HostSegmentFree performs segment.free on behalf of the runtime.
func (inst *Instance) HostSegmentFree(tagged, length uint64) error {
	return inst.segmentFree(tagged, length, 0)
}

// GrowMemory grows the guest memory by delta pages, returning the old
// page count or ^0 on failure.
func (inst *Instance) GrowMemory(deltaPages uint64) uint64 {
	return inst.memoryGrow(deltaPages)
}

func (inst *Instance) hostRange(addr, n uint64) error {
	if addr+n < addr || addr+n > inst.memSize {
		return fmt.Errorf("exec: host access [%#x, +%d) outside guest memory (%#x bytes)",
			addr, n, inst.memSize)
	}
	return nil
}

// ReadU64 reads a little-endian u64 at addr with runtime privileges.
func (inst *Instance) ReadU64(addr uint64) (uint64, error) {
	if err := inst.hostRange(addr, 8); err != nil {
		return 0, err
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(inst.mem[addr+i]) << (8 * i)
	}
	return v, nil
}

// WriteU64 writes a little-endian u64 at addr with runtime privileges.
func (inst *Instance) WriteU64(addr, v uint64) error {
	if err := inst.hostRange(addr, 8); err != nil {
		return err
	}
	for i := uint64(0); i < 8; i++ {
		inst.mem[addr+i] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies n guest bytes starting at addr.
func (inst *Instance) ReadBytes(addr, n uint64) ([]byte, error) {
	if err := inst.hostRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, inst.mem[addr:addr+n])
	return out, nil
}

// WriteBytes copies b into guest memory at addr.
func (inst *Instance) WriteBytes(addr uint64, b []byte) error {
	if err := inst.hostRange(addr, uint64(len(b))); err != nil {
		return err
	}
	copy(inst.mem[addr:], b)
	return nil
}
