// Sandbox demonstrates MTE-based external memory safety (paper Fig. 12b):
// several instances share a process, each with its own sandbox tag; an
// out-of-sandbox access traps on the tag mismatch instead of a software
// bounds check — even when the bounds-check lowering is buggy
// (the CVE-2023-26489 scenario, paper §3).
package main

import (
	"context"
	"fmt"
	"log"

	"cage"
	"cage/internal/alloc"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/mte"

	cg "cage/internal/codegen"
)

const guest = `
extern char* malloc(long n);
long poke(long addr) {
    long* p = (long*)addr;
    return *p;
}
long work(long x) {
    long* data = (long*)malloc(64);
    data[0] = x * 2;
    return data[0];
}
`

func compile() *cage.Module {
	tc := cage.NewToolchain(cage.SandboxingOnly())
	mod, err := tc.CompileSource(guest)
	if err != nil {
		log.Fatal(err)
	}
	return mod
}

func main() {
	mod := compile()
	rt := cage.NewRuntime(cage.SandboxingOnly())

	// Several tenants in one process, each with a distinct sandbox tag.
	fmt.Println("spawning 3 sandboxed instances:")
	for i := 1; i <= 3; i++ {
		inst, err := rt.Instantiate(mod)
		if err != nil {
			log.Fatal(err)
		}
		res, err := inst.Call(context.Background(), "work", []uint64{uint64(i * 10)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  instance %d: work(%d) = %d (sandbox tag %d)\n",
			i, i*10, int64(res.Values[0]), inst.Raw().SandboxTag())
	}

	// Escape attempt: read far outside the linear memory. MTE catches
	// it because everything beyond the sandbox carries the runtime tag.
	inst, err := rt.Instantiate(mod)
	if err != nil {
		log.Fatal(err)
	}
	_, err = inst.Call(context.Background(), "poke", []uint64{1 << 30})
	if err == nil {
		log.Fatal("sandbox escape succeeded!")
	}
	fmt.Printf("\nescape attempt: %v\n", err)

	// The CVE-2023-26489 scenario: emulate a buggy bounds-check
	// lowering. Software sandboxing leaks host memory; MTE sandboxing
	// still traps.
	fmt.Println("\nbuggy bounds-check lowering (CVE-2023-26489 analog):")
	leaky := buildBuggy(core.Features{}, true)
	res, err := leaky.Invoke("poke", uint64(leaky.Raw().MemorySize()+8))
	if err != nil {
		log.Fatalf("expected a silent leak, got %v", err)
	}
	fmt.Printf("  software bounds checks + bug: leaked host bytes 0x%x\n", res[0])

	mteGuard := buildBuggy(core.Features{Sandbox: true, MTEMode: mte.ModeSync}, true)
	_, err = mteGuard.Invoke("poke", uint64(mteGuard.Raw().MemorySize()+8))
	if err == nil {
		log.Fatal("MTE sandbox failed to catch the buggy lowering")
	}
	fmt.Printf("  MTE sandboxing + same bug:    %v\n", err)
}

// buildBuggy compiles the guest and instantiates it with the buggy
// lowering emulation enabled (exec.Config.SkipBoundsChecks).
func buildBuggy(features core.Features, skipBounds bool) *wrapped {
	file, err := minicc.Parse(guest)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cg.Compile(prog, cg.Options{Wasm64: true})
	if err != nil {
		log.Fatal(err)
	}
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features:         features,
		HostModules:      alloc.HostModules(),
		HostData:         host,
		Seed:             7,
		SkipBoundsChecks: skipBounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	heapBase, _ := inst.GlobalValue("__heap_base")
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		log.Fatal(err)
	}
	return &wrapped{inst}
}

type wrapped struct{ inst *exec.Instance }

func (w *wrapped) Invoke(name string, args ...uint64) ([]uint64, error) {
	return w.inst.Invoke(name, args...)
}
func (w *wrapped) Raw() *exec.Instance { return w.inst }
