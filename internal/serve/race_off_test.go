//go:build !race

package serve

// raceServeEnabled skips allocation-count gates under -race, whose
// instrumentation allocates on paths that are heap-free in real builds.
const raceServeEnabled = false
