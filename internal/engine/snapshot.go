package engine

import "sync/atomic"

// SnapshotCache memoizes frozen post-initialization instance images,
// sitting alongside the program cache in the engine's amortization
// story: the program cache pays lowering once per (module, config), the
// snapshot cache pays start/init execution and whole-memory tagging
// once per (module, config, init) — after which every instance is a
// fork, not a rebuild. Like the rest of the package it is ignorant of
// wasm: V is whatever image the embedder freezes (the cage facade
// caches its *Snapshot pairing instance state with allocator state).
//
// On top of Cache's hit/miss/singleflight accounting it counts
// restores — forks served from a cached image — which is the number
// that makes the cache worth having. The zero value is ready to use.
type SnapshotCache[V any] struct {
	cache    Cache[V]
	restores atomic.Uint64
}

// SnapshotCacheStats extends the cache counters with restore
// accounting.
type SnapshotCacheStats struct {
	CacheStats
	// Restores counts instance forks served from a cached snapshot
	// (pool spawns, resets, and explicit NewFromSnapshot calls).
	Restores uint64
}

// GetOrBuild returns the cached snapshot for key, building (capturing)
// it on first use with singleflight semantics; failed captures are not
// cached and will be retried.
func (c *SnapshotCache[V]) GetOrBuild(key Key, build func() (V, error)) (V, error) {
	return c.cache.GetOrBuild(key, build)
}

// NoteRestore records one fork served from a cached snapshot.
func (c *SnapshotCache[V]) NoteRestore() { c.restores.Add(1) }

// Stats returns a snapshot of the cache and restore counters.
func (c *SnapshotCache[V]) Stats() SnapshotCacheStats {
	return SnapshotCacheStats{CacheStats: c.cache.Stats(), Restores: c.restores.Load()}
}
