package codegen

import (
	"fmt"

	"cage/internal/minicc"
	"cage/internal/wasm"
)

// fnGen compiles one function body.
type fnGen struct {
	g    *gen
	fn   *minicc.FuncDecl
	code []wasm.Instr
	// locals are the extra wasm locals beyond the parameters.
	locals    []wasm.ValType
	nextLocal uint32

	hasFrame  bool
	spLocal   uint32
	frameSize int64
	// tagLocals maps an instrumented stack symbol to the local holding
	// its tagged base pointer.
	tagLocals map[*minicc.Symbol]uint32
	inFrame   map[*minicc.Symbol]bool

	hasRet   bool
	retLocal uint32

	depth     int
	exitDepth int
	loops     []loopInfo

	scratch map[wasm.ValType]uint32
}

type loopInfo struct {
	breakDepth int
	contDepth  int
}

func (g *gen) compileFunc(fn *minicc.FuncDecl) ([]wasm.Instr, []wasm.ValType, error) {
	f := &fnGen{
		g: g, fn: fn,
		tagLocals: make(map[*minicc.Symbol]uint32),
		inFrame:   make(map[*minicc.Symbol]bool),
		scratch:   make(map[wasm.ValType]uint32),
	}
	f.nextLocal = uint32(len(fn.Params))
	for i, pa := range fn.Params {
		fn.Locals[i].LocalIdx = uint32(i)
		_ = pa
	}

	// Frame layout: 16-byte aligned slots (paper §4.2: "each stack
	// allocation needs to be aligned to 16 bytes"), laid out like a C
	// stack: the first-declared allocation sits at the highest offset,
	// adjacent to the caller's frame, so allocations[0] is the
	// frame-boundary slot Algorithm 1 reasons about. The guard slot,
	// when required, goes above it (Fig. 8b).
	sanitize := g.opts.StackSanitizer
	var total int64
	sizes := make([]int64, len(fn.StackAllocs))
	for i, sym := range fn.StackAllocs {
		size := g.layout.Size(sym.Type)
		if size == 0 {
			size = 1
		}
		size = (size + 15) &^ 15
		sizes[i] = size
		total += size
	}
	off := total
	for i, sym := range fn.StackAllocs {
		off -= sizes[i]
		sym.FrameOffset = off
		sym.InFrame = true
		f.inFrame[sym] = true
		if sanitize && sym.Instrument {
			f.tagLocals[sym] = f.newLocal(wasm.I64)
		}
	}
	if sanitize && fn.NeedsGuardSlot {
		total += 16
	}
	f.frameSize = total
	f.hasFrame = total > 0

	if f.hasFrame {
		f.spLocal = f.newLocal(g.addrType)
	}
	// Scalar locals that stay in wasm locals (registers).
	for _, sym := range fn.Locals {
		if sym.Kind == minicc.SymParam || f.inFrame[sym] {
			continue
		}
		sym.LocalIdx = f.newLocal(g.valType(sym.Type))
	}
	if fn.Ret != minicc.TypeVoid {
		f.hasRet = true
		f.retLocal = f.newLocal(g.valType(fn.Ret))
	}

	f.prologue()
	f.exitDepth = f.open(wasm.Block(wasm.BlockVoid))
	if err := f.stmt(fn.Body); err != nil {
		return nil, nil, err
	}
	f.close()
	f.epilogue()
	if f.hasRet {
		f.emit(wasm.LocalGet(f.retLocal))
	}
	f.emit(wasm.End())
	return f.code, f.locals, nil
}

func (f *fnGen) emit(ins ...wasm.Instr) { f.code = append(f.code, ins...) }

func (f *fnGen) newLocal(t wasm.ValType) uint32 {
	f.locals = append(f.locals, t)
	idx := f.nextLocal
	f.nextLocal++
	return idx
}

func (f *fnGen) scratchLocal(t wasm.ValType) uint32 {
	if idx, ok := f.scratch[t]; ok {
		return idx
	}
	idx := f.newLocal(t)
	f.scratch[t] = idx
	return idx
}

func (f *fnGen) open(in wasm.Instr) int {
	f.emit(in)
	f.depth++
	return f.depth
}

func (f *fnGen) close() {
	f.emit(wasm.End())
	f.depth--
}

func (f *fnGen) brTo(target int)   { f.emit(wasm.Br(uint32(f.depth - target))) }
func (f *fnGen) brIfTo(target int) { f.emit(wasm.BrIf(uint32(f.depth - target))) }

// addrConst pushes an address constant of the target's pointer width.
func (f *fnGen) addrConst(v uint64) {
	if f.g.opts.Wasm64 {
		f.emit(wasm.I64Const(int64(v)))
	} else {
		f.emit(wasm.I32Const(int32(uint32(v))))
	}
}

// addrAdd emits pointer-width addition.
func (f *fnGen) addrAdd() {
	if f.g.opts.Wasm64 {
		f.emit(wasm.Op(wasm.OpI64Add))
	} else {
		f.emit(wasm.Op(wasm.OpI32Add))
	}
}

// prologue allocates the frame, copies address-taken parameters into it,
// and runs the stack sanitizer's tagging sequence.
func (f *fnGen) prologue() {
	if !f.hasFrame {
		return
	}
	// sp = __sp - frameSize; __sp = sp
	f.emit(wasm.GlobalGet(spPlaceholder))
	f.addrConst(uint64(f.frameSize))
	if f.g.opts.Wasm64 {
		f.emit(wasm.Op(wasm.OpI64Sub))
	} else {
		f.emit(wasm.Op(wasm.OpI32Sub))
	}
	f.emit(wasm.LocalTee(f.spLocal))
	f.emit(wasm.GlobalSet(spPlaceholder))

	// Copy address-taken parameters into their frame slots.
	for i, pa := range f.fn.Params {
		sym := f.fn.Locals[i]
		if !f.inFrame[sym] {
			continue
		}
		f.emit(wasm.LocalGet(f.spLocal))
		f.emit(wasm.LocalGet(uint32(i)))
		f.emit(wasm.Store(f.storeOp(pa.Typ), uint64(sym.FrameOffset)))
	}

	if !f.g.opts.StackSanitizer {
		return
	}
	// Tagging: the first instrumented slot draws a random tag via
	// segment.new; subsequent slots increment it (paper §4.2).
	var prevTag uint32
	first := true
	for _, sym := range f.fn.StackAllocs {
		if !sym.Instrument {
			continue
		}
		size := (f.g.layout.Size(sym.Type) + 15) &^ 15
		tagLocal := f.tagLocals[sym]
		if first {
			f.emit(wasm.LocalGet(f.spLocal))
			f.emit(wasm.I64Const(size))
			f.emit(wasm.SegmentNew(uint64(sym.FrameOffset)))
			f.emit(wasm.LocalSet(tagLocal))
			first = false
		} else {
			f.emitIncrementedTag(prevTag, sym, size, tagLocal)
		}
		prevTag = tagLocal
		// Re-copy an instrumented parameter through its tagged pointer
		// (segment.new zeroed the slot).
		for i := range f.fn.Params {
			if f.fn.Locals[i] == sym {
				f.emit(wasm.LocalGet(tagLocal))
				f.emit(wasm.LocalGet(uint32(i)))
				f.emit(wasm.Store(f.storeOp(f.fn.Params[i].Typ), 0))
			}
		}
	}
}

// emitIncrementedTag derives the next stack tag from prev (wrapping
// modulo 16 and skipping the reserved zero tag) and transfers the slot
// to it via segment.set_tag.
func (f *fnGen) emitIncrementedTag(prev uint32, sym *minicc.Symbol, size int64, tagLocal uint32) {
	s := f.scratchLocal(wasm.I64)
	// t' = ((prev >> 56) + 1) & 15
	f.emit(wasm.LocalGet(prev))
	f.emit(wasm.I64Const(56), wasm.Op(wasm.OpI64ShrU))
	f.emit(wasm.I64Const(1), wasm.Op(wasm.OpI64Add))
	f.emit(wasm.I64Const(15), wasm.Op(wasm.OpI64And))
	f.emit(wasm.LocalTee(s))
	// t'' = t' + (t' == 0)  — skip the reserved zero/guard tag.
	f.emit(wasm.Op(wasm.OpI64Eqz), wasm.Op(wasm.OpI64ExtendI32U))
	f.emit(wasm.LocalGet(s), wasm.Op(wasm.OpI64Add))
	f.emit(wasm.I64Const(56), wasm.Op(wasm.OpI64Shl))
	// tagged = (sp + off) | (t'' << 56)
	f.emit(wasm.LocalGet(f.spLocal))
	f.emit(wasm.I64Const(sym.FrameOffset), wasm.Op(wasm.OpI64Add))
	f.emit(wasm.Op(wasm.OpI64Or))
	f.emit(wasm.LocalSet(tagLocal))
	// segment.set_tag(sp + off, tagged, size)
	f.emit(wasm.LocalGet(f.spLocal))
	f.emit(wasm.LocalGet(tagLocal))
	f.emit(wasm.I64Const(size))
	f.emit(wasm.SegmentSetTag(uint64(sym.FrameOffset)))
}

// epilogue untags instrumented slots (returning them to the frame's
// untagged state, §4.2) and releases the frame.
func (f *fnGen) epilogue() {
	if !f.hasFrame {
		return
	}
	if f.g.opts.StackSanitizer {
		for _, sym := range f.fn.StackAllocs {
			if !sym.Instrument {
				continue
			}
			size := (f.g.layout.Size(sym.Type) + 15) &^ 15
			f.emit(wasm.LocalGet(f.spLocal))
			f.emit(wasm.LocalGet(f.spLocal))
			f.emit(wasm.I64Const(sym.FrameOffset), wasm.Op(wasm.OpI64Add))
			f.emit(wasm.I64Const(size))
			f.emit(wasm.SegmentSetTag(uint64(sym.FrameOffset)))
		}
	}
	// __sp = sp + frameSize
	f.emit(wasm.LocalGet(f.spLocal))
	f.addrConst(uint64(f.frameSize))
	f.addrAdd()
	f.emit(wasm.GlobalSet(spPlaceholder))
}

// stmt lowers one statement.
func (f *fnGen) stmt(st minicc.Stmt) error {
	switch n := st.(type) {
	case *minicc.BlockStmt:
		for _, s := range n.Stmts {
			if err := f.stmt(s); err != nil {
				return err
			}
		}
	case *minicc.DeclStmt:
		if n.Init == nil {
			return nil
		}
		return f.assignTo(n.Sym, n.Init)
	case *minicc.ExprStmt:
		if n.X == nil {
			return nil
		}
		drop, err := f.exprForEffect(n.X)
		if err != nil {
			return err
		}
		if drop {
			f.emit(wasm.Op(wasm.OpDrop))
		}
	case *minicc.IfStmt:
		if err := f.cond(n.Cond); err != nil {
			return err
		}
		f.open(wasm.If(wasm.BlockVoid))
		if err := f.stmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			f.emit(wasm.Else())
			if err := f.stmt(n.Else); err != nil {
				return err
			}
		}
		f.close()
	case *minicc.ForStmt:
		if n.Init != nil {
			if err := f.stmt(n.Init); err != nil {
				return err
			}
		}
		brk := f.open(wasm.Block(wasm.BlockVoid))
		top := f.open(wasm.Loop(wasm.BlockVoid))
		if n.Cond != nil {
			if err := f.cond(n.Cond); err != nil {
				return err
			}
			f.emit(wasm.Op(wasm.OpI32Eqz))
			f.brIfTo(brk)
		}
		cont := f.open(wasm.Block(wasm.BlockVoid))
		f.loops = append(f.loops, loopInfo{breakDepth: brk, contDepth: cont})
		if err := f.stmt(n.Body); err != nil {
			return err
		}
		f.loops = f.loops[:len(f.loops)-1]
		f.close() // cont
		if n.Post != nil {
			drop, err := f.exprForEffect(n.Post)
			if err != nil {
				return err
			}
			if drop {
				f.emit(wasm.Op(wasm.OpDrop))
			}
		}
		f.brTo(top)
		f.close() // loop
		f.close() // brk
	case *minicc.WhileStmt:
		brk := f.open(wasm.Block(wasm.BlockVoid))
		top := f.open(wasm.Loop(wasm.BlockVoid))
		if n.DoWhile {
			cont := f.open(wasm.Block(wasm.BlockVoid))
			f.loops = append(f.loops, loopInfo{breakDepth: brk, contDepth: cont})
			if err := f.stmt(n.Body); err != nil {
				return err
			}
			f.loops = f.loops[:len(f.loops)-1]
			f.close()
			if err := f.cond(n.Cond); err != nil {
				return err
			}
			f.brIfTo(top)
		} else {
			if err := f.cond(n.Cond); err != nil {
				return err
			}
			f.emit(wasm.Op(wasm.OpI32Eqz))
			f.brIfTo(brk)
			f.loops = append(f.loops, loopInfo{breakDepth: brk, contDepth: top})
			if err := f.stmt(n.Body); err != nil {
				return err
			}
			f.loops = f.loops[:len(f.loops)-1]
			f.brTo(top)
		}
		f.close()
		f.close()
	case *minicc.ReturnStmt:
		if n.X != nil {
			if err := f.exprAs(n.X, f.fn.Ret); err != nil {
				return err
			}
			f.emit(wasm.LocalSet(f.retLocal))
		}
		f.brTo(f.exitDepth)
	case *minicc.BreakStmt:
		if len(f.loops) == 0 {
			return fmt.Errorf("codegen: %s: break outside loop", f.fn.Name)
		}
		f.brTo(f.loops[len(f.loops)-1].breakDepth)
	case *minicc.ContinueStmt:
		if len(f.loops) == 0 {
			return fmt.Errorf("codegen: %s: continue outside loop", f.fn.Name)
		}
		f.brTo(f.loops[len(f.loops)-1].contDepth)
	default:
		return fmt.Errorf("codegen: unhandled statement %T", st)
	}
	return nil
}

// assignTo stores an initializer into a just-declared local.
func (f *fnGen) assignTo(sym *minicc.Symbol, init minicc.Expr) error {
	if !f.inFrame[sym] {
		if err := f.exprAs(init, sym.Type); err != nil {
			return err
		}
		f.emit(wasm.LocalSet(sym.LocalIdx))
		return nil
	}
	// Frame-resident scalar: store through its (possibly tagged) base.
	f.pushFrameAddr(sym)
	if err := f.exprAs(init, sym.Type); err != nil {
		return err
	}
	f.emit(wasm.Store(f.storeOp(sym.Type), 0))
	return nil
}

// pushFrameAddr pushes the address of a frame slot: the tagged pointer
// for instrumented slots, sp+offset otherwise.
func (f *fnGen) pushFrameAddr(sym *minicc.Symbol) {
	if tl, ok := f.tagLocals[sym]; ok {
		f.emit(wasm.LocalGet(tl))
		return
	}
	f.emit(wasm.LocalGet(f.spLocal))
	if sym.FrameOffset != 0 {
		f.addrConst(uint64(sym.FrameOffset))
		f.addrAdd()
	}
}
