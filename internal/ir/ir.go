package ir

import (
	"fmt"
	"strings"
	"sync"

	"cage/internal/wasm"
)

// Op is a lowered opcode. Control flow, calls, and memory accesses get
// dedicated dense opcodes; pure value (numeric) instructions pass
// through as OpNumericBase+wasm-opcode so the executor's numeric ALU
// keeps a single switch.
type Op uint16

// Lowered opcodes. The memory-access family is specialized at lower
// time on the instance's sandboxing strategy (paper Figs. 12–13) so the
// hot dispatch loop never branches on the mode:
//
//   - G32: wasm32 guard-page sandboxing (no per-access check cost)
//   - B64: wasm64 software bounds check; Tag variants add the MTE
//     memory-safety tag check; NC variants model a disabled (buggy)
//     bounds check, limited only by the host mapping
//   - MTE: MTE-based sandboxing (index mask + tag check); the NC
//     variant drops the mask
const (
	OpInvalid Op = iota

	// Control flow, fully resolved to absolute lowered PCs.
	OpUnreachable
	OpGoto    // unconditional jump, no cost event (else-arm skip)
	OpBr      // unconditional branch with stack repair (br)
	OpBrIf    // pop cond, branch if non-zero (br_if)
	OpBrIfZ   // pop cond, branch if zero (the "if" conditional)
	OpBrTable // pop index, branch through Targets (default last)
	OpReturn  // explicit return
	OpRetEnd  // fall-through function epilogue, no cost event

	// Calls.
	OpCall         // A = callee index, B = param count
	OpCallIndirect // A = type index, B = param count

	// Parametric / variable / constant.
	OpDrop
	OpSelect
	OpLocalGet  // A = local index
	OpLocalSet  // A = local index
	OpLocalTee  // A = local index
	OpGlobalGet // A = global index
	OpGlobalSet // A = global index
	OpConst     // A = raw value bits (i32/i64/f32/f64 alike)

	// Memory management and bulk ops.
	OpMemorySize
	OpMemoryGrow
	OpMemoryFill
	OpMemoryCopy

	// Cage segment ops. A = static offset immediate.
	OpSegmentNew
	OpSegmentSetTag
	OpSegmentFree

	// Pointer authentication. The Nop variants are chosen at lower time
	// when the feature is off: they keep the timing-model event (the
	// paper's software-fallback deployment still executes the
	// instruction) but touch nothing.
	OpPtrSign
	OpPtrAuth
	OpPtrSignNop
	OpPtrAuthNop

	// Loads: A = memarg offset, B = size<<32 | wasm opcode (extension).
	OpLoadG32
	OpLoadG32NC
	OpLoadB64
	OpLoadB64NC
	OpLoadB64Tag
	OpLoadB64NCTag
	OpLoadMTE
	OpLoadMTENC
	// OpLoadG32G is the guard-region variant of OpLoadG32, selected when
	// Config.Guard is set and the memarg offset fits GuardMaxOffset: the
	// executor's linear memory is an mmap reservation whose tail is
	// PROT_NONE (internal/vmem), so the access needs no explicit Go-level
	// bounds check — an out-of-bounds address faults in the MMU exactly
	// like the paper's guard pages, and the executor converts the fault
	// to TrapOutOfBounds. Event accounting is unchanged: the guard32
	// strategy charges no per-access check events either way.
	OpLoadG32G

	// Stores: same immediates as loads.
	OpStoreG32
	OpStoreG32NC
	OpStoreB64
	OpStoreB64NC
	OpStoreB64Tag
	OpStoreB64NCTag
	OpStoreMTE
	OpStoreMTENC
	// OpStoreG32G is the guard-region variant of OpStoreG32; see
	// OpLoadG32G.
	OpStoreG32G

	// OpFence is the Swivel-style speculation barrier the hardened
	// lowering (Config.Harden) inserts immediately before every indirect
	// branch (call_indirect, br_table) and every return. It has no
	// semantic effect — no operands, no stack motion — and exists purely
	// to charge the timing model's fence event, so a hardened program is
	// bit-identical to its unhardened twin in results and traps while
	// the mitigation tax stays visible in the event stream.
	OpFence

	numNamedOps
)

// OpNumericBase offsets pass-through numeric opcodes: a lowered op in
// [OpNumericBase, OpNumericBase+0x100) encodes
// wasm.Opcode(op - OpNumericBase). Wasm numeric opcodes are single
// bytes, so the block is exactly 0x100 wide; the fused-superinstruction
// block (OpFusedBase) sits above it.
const OpNumericBase Op = 0x100

// IsNumeric reports whether op is a pass-through numeric opcode.
func (op Op) IsNumeric() bool { return op >= OpNumericBase && op < OpNumericBase+0x100 }

// Wasm returns the wasm opcode of a pass-through numeric op.
func (op Op) Wasm() wasm.Opcode { return wasm.Opcode(op - OpNumericBase) }

// IsLoad reports whether op is a lowered load.
func (op Op) IsLoad() bool { return op >= OpLoadG32 && op <= OpLoadG32G }

// IsStore reports whether op is a lowered store.
func (op Op) IsStore() bool { return op >= OpStoreG32 && op <= OpStoreG32G }

// GuardMaxOffset is the largest memarg offset the guard lowering
// (Config.Guard) leaves unchecked. The guard reservation's PROT_NONE
// tail (internal/vmem's headroom) must cover the worst case
// 32-bit index + GuardMaxOffset + 8-byte access beyond the 4 GiB
// guest limit; offsets above it fall back to the explicitly checked
// opcode at lower time, so correctness never depends on headroom an
// embedder might shrink.
const GuardMaxOffset = 1 << 20

// OpFusedBase offsets the superinstruction block: fused opcodes the
// profile-guided pass (internal/fuse) rewrites hot adjacent pairs and
// triples into. Each fused opcode executes its constituent lowered
// instructions in order — identical semantics, identical trap points,
// identical timing-model events — in a single dispatch. Branch targets
// embedded in fused opcodes are absolute PCs into the *fused* code.
const OpFusedBase Op = 0x200

// Fused superinstructions. Immediate encodings (aux fields are
// documented per opcode; "alu" is always a single-byte wasm numeric
// opcode, "x"/"y" local indices, "target" an absolute fused PC):
//
//	OpFusedGetGet      local.get x; local.get y          A=x, B=y
//	OpFusedGetConst    local.get x; const c              A=x, B=c
//	OpFusedConstALU    const c; alu                      A=c, B=alu
//	OpFusedGetALU      local.get x; alu                  A=x, B=alu
//	OpFusedGetGetALU   local.get x; local.get y; alu     A=x<<32|y, B=alu
//	OpFusedGetConstALU local.get x; const c; alu         A=c, B=x<<32|alu
//	OpFusedALUSet      alu; local.set x                  A=x, B=alu
//	OpFusedSetGet      local.set x; local.get y          A=x, B=y
//	OpFusedSetBr       local.set x; br                   A=PackBranch, B=x<<32|target
//	OpFusedCmpBrIf     alu; br_if                        A=PackBranch, B=alu<<32|target
//	OpFusedCmpBrIfZ    alu; br_ifz                       A=PackBranch, B=alu<<32|target
//	OpFusedCmpEqzBrIf  alu; i32.eqz; br_if               A=PackBranch, B=alu<<32|target
//	OpFusedLoadALU     load; alu                         A=offset, B=PackFusedMem
//	OpFusedALULoad     alu; load                         A=offset, B=PackFusedMem
//	OpFusedALUStore    alu; store                        A=offset, B=PackFusedMem
//	OpFusedConstALUALU const c; alu1; alu2               A=c, B=alu2<<8|alu1
//	OpFusedGetALUGetALU  get x; alu1; get y; alu2        A=x<<32|y, B=alu2<<8|alu1
//	OpFusedGetGetCmpEqzBr get x; get y; cmp; i32.eqz; br_if  A=x<<32|y, B=cmp<<32|target
//	OpFusedIncBr       get x; const c; alu; set x; br    A=c<<8|alu, B=x<<32|target
//	OpFusedGet4        get w; get x; get y; get z        A=w<<48|x<<32|y<<16|z
//	OpFusedGet3ALUGetALU  get w; get x; get y; alu1; get z; alu2  A=w<<48|x<<32|y<<16|z, B=alu2<<8|alu1
//	OpFusedConstALUALULoadALU  const c; alu1; alu2; load; alu3  A=c<<32|offset, B=alu2<<40|alu1<<32|PackFusedMem
//	OpFusedALUSetIncBr alu0; set x; get y; const c; alu1; set y; br  A=alu0<<48|x<<32|y<<16|c<<8|alu1, B=target
//
// The two loop-shaped quintuples (OpFusedGetGetCmpEqzBr heads,
// OpFusedIncBr latches) only match branches with a zero repair pack
// (keep=0, arity=0) — the shape structured lowering gives every loop
// back-edge — so their handlers truncate the operand stack outright.
const (
	OpFusedGetGet Op = OpFusedBase + iota
	OpFusedGetConst
	OpFusedConstALU
	OpFusedGetALU
	OpFusedGetGetALU
	OpFusedGetConstALU
	OpFusedALUSet
	OpFusedSetGet
	OpFusedSetBr
	OpFusedCmpBrIf
	OpFusedCmpBrIfZ
	OpFusedCmpEqzBrIf
	OpFusedLoadALU
	OpFusedALULoad
	OpFusedALUStore
	OpFusedConstALUALU
	OpFusedGetALUGetALU
	OpFusedGetGetCmpEqzBr
	OpFusedIncBr
	OpFusedGet4
	OpFusedGet3ALUGetALU
	OpFusedConstALUALULoadALU
	OpFusedALUSetIncBr
	endFusedOps
)

// IsFused reports whether op is a fused superinstruction.
func (op Op) IsFused() bool { return op >= OpFusedBase && op < endFusedOps }

var fusedNames = [...]string{
	OpFusedGetGet - OpFusedBase:             "fused.get+get",
	OpFusedGetConst - OpFusedBase:           "fused.get+const",
	OpFusedConstALU - OpFusedBase:           "fused.const+alu",
	OpFusedGetALU - OpFusedBase:             "fused.get+alu",
	OpFusedGetGetALU - OpFusedBase:          "fused.get+get+alu",
	OpFusedGetConstALU - OpFusedBase:        "fused.get+const+alu",
	OpFusedALUSet - OpFusedBase:             "fused.alu+set",
	OpFusedSetGet - OpFusedBase:             "fused.set+get",
	OpFusedSetBr - OpFusedBase:              "fused.set+br",
	OpFusedCmpBrIf - OpFusedBase:            "fused.cmp+br_if",
	OpFusedCmpBrIfZ - OpFusedBase:           "fused.cmp+br_ifz",
	OpFusedCmpEqzBrIf - OpFusedBase:         "fused.cmp+eqz+br_if",
	OpFusedLoadALU - OpFusedBase:            "fused.load+alu",
	OpFusedALULoad - OpFusedBase:            "fused.alu+load",
	OpFusedALUStore - OpFusedBase:           "fused.alu+store",
	OpFusedConstALUALU - OpFusedBase:        "fused.const+alu+alu",
	OpFusedGetALUGetALU - OpFusedBase:       "fused.get+alu+get+alu",
	OpFusedGetGetCmpEqzBr - OpFusedBase:     "fused.get+get+cmp+eqz+br_if",
	OpFusedIncBr - OpFusedBase:              "fused.inc+br",
	OpFusedGet4 - OpFusedBase:               "fused.get+get+get+get",
	OpFusedGet3ALUGetALU - OpFusedBase:      "fused.get3+alu+get+alu",
	OpFusedConstALUALULoadALU - OpFusedBase: "fused.const+alu+alu+load+alu",
	OpFusedALUSetIncBr - OpFusedBase:        "fused.alu+set+inc+br",
}

// PackFusedMem packs the memory half of a fused load/store — access
// width, the specialized (unfused) memory opcode, the ALU constituent,
// and the originating wasm memory opcode — into the B immediate. All
// four fields are single bytes: named lowered opcodes, wasm numeric
// opcodes, and wasm load/store opcodes each fit 8 bits.
func PackFusedMem(size uint64, mem Op, alu wasm.Opcode, memOp wasm.Opcode) uint64 {
	return size<<24 | uint64(mem)<<16 | uint64(alu)<<8 | uint64(uint8(memOp))
}

// FusedMemSize unpacks the access width of a fused load/store.
func FusedMemSize(b uint64) uint64 { return (b >> 24) & 0xFF }

// FusedMemVariant unpacks the specialized memory opcode the fused
// access executes as (OpLoadG32, OpStoreB64Tag, ...).
func FusedMemVariant(b uint64) Op { return Op((b >> 16) & 0xFF) }

// FusedMemALU unpacks the ALU constituent of a fused load/store.
func FusedMemALU(b uint64) wasm.Opcode { return wasm.Opcode((b >> 8) & 0xFF) }

// FusedMemOp unpacks the originating wasm memory opcode (which fixes
// the load extension).
func FusedMemOp(b uint64) wasm.Opcode { return wasm.Opcode(b & 0xFF) }

// PackFusedBranch packs a fused branch's auxiliary field (the local
// index of OpFusedSetBr, the ALU opcode of OpFusedCmpBrIf*) above its
// absolute target PC.
func PackFusedBranch(aux, target uint64) uint64 { return aux<<32 | uint64(uint32(target)) }

// FusedBranchTarget unpacks a fused branch's absolute target PC.
func FusedBranchTarget(b uint64) int { return int(uint32(b)) }

// FusedBranchAux unpacks a fused branch's auxiliary field.
func FusedBranchAux(b uint64) uint64 { return b >> 32 }

var opNames = [...]string{
	OpInvalid: "invalid", OpUnreachable: "unreachable", OpGoto: "goto",
	OpBr: "br", OpBrIf: "br_if", OpBrIfZ: "br_ifz", OpBrTable: "br_table",
	OpReturn: "return", OpRetEnd: "ret_end",
	OpCall: "call", OpCallIndirect: "call_indirect",
	OpDrop: "drop", OpSelect: "select",
	OpLocalGet: "local.get", OpLocalSet: "local.set", OpLocalTee: "local.tee",
	OpGlobalGet: "global.get", OpGlobalSet: "global.set", OpConst: "const",
	OpMemorySize: "memory.size", OpMemoryGrow: "memory.grow",
	OpMemoryFill: "memory.fill", OpMemoryCopy: "memory.copy",
	OpSegmentNew: "segment.new", OpSegmentSetTag: "segment.set_tag",
	OpSegmentFree: "segment.free",
	OpPtrSign:     "ptr_sign", OpPtrAuth: "ptr_auth",
	OpPtrSignNop: "ptr_sign.nop", OpPtrAuthNop: "ptr_auth.nop",
	OpLoadG32: "load.g32", OpLoadG32NC: "load.g32.nc",
	OpLoadB64: "load.b64", OpLoadB64NC: "load.b64.nc",
	OpLoadB64Tag: "load.b64.tag", OpLoadB64NCTag: "load.b64.nc.tag",
	OpLoadMTE: "load.mte", OpLoadMTENC: "load.mte.nc",
	OpLoadG32G: "load.g32.guard",
	OpStoreG32: "store.g32", OpStoreG32NC: "store.g32.nc",
	OpStoreB64: "store.b64", OpStoreB64NC: "store.b64.nc",
	OpStoreB64Tag: "store.b64.tag", OpStoreB64NCTag: "store.b64.nc.tag",
	OpStoreMTE: "store.mte", OpStoreMTENC: "store.mte.nc",
	OpStoreG32G: "store.g32.guard",
	OpFence:     "fence",
}

// String returns the lowered mnemonic.
func (op Op) String() string {
	if op.IsNumeric() {
		return op.Wasm().String()
	}
	if op.IsFused() {
		return fusedNames[op-OpFusedBase]
	}
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("irop(0x%x)", uint16(op))
}

// ParseOp resolves a lowered mnemonic (the Op.String form: named ops,
// pass-through numerics by their wasm mnemonic, fused names) back to
// its opcode. Profiles serialize opcodes by name so a checked-in corpus
// survives opcode renumbering; this is the read-side resolver.
func ParseOp(name string) (Op, bool) {
	op, ok := opsByName()[name]
	return op, ok
}

var (
	opsByNameOnce sync.Once
	opsByNameMap  map[string]Op
)

func opsByName() map[string]Op {
	opsByNameOnce.Do(func() {
		m := make(map[string]Op, 256)
		for op := Op(0); op < numNamedOps; op++ {
			if int(op) < len(opNames) && opNames[op] != "" {
				m[opNames[op]] = op
			}
		}
		for w := 0; w < 0x100; w++ {
			op := OpNumericBase + Op(w)
			name := wasm.Opcode(w).String()
			// Skip the unknown-opcode fallback, and never shadow a named
			// op: wasm mnemonics like "local.get" belong to opcodes the
			// lowering always rewrites, so they can only name the named
			// form (numeric pass-throughs never carry them).
			if !strings.HasPrefix(name, "op(") {
				if _, taken := m[name]; !taken {
					m[name] = op
				}
			}
		}
		for op := OpFusedBase; op < endFusedOps; op++ {
			m[fusedNames[op-OpFusedBase]] = op
		}
		opsByNameMap = m
	})
	return opsByNameMap
}

// BranchTarget is one resolved br_table destination.
type BranchTarget struct {
	PC    uint32 // absolute lowered pc
	Keep  uint32 // operand-stack height to truncate to
	Arity uint32 // values carried over the branch
}

// PackBranch packs the stack repair of a branch into the A immediate.
func PackBranch(keep, arity int) uint64 {
	return uint64(keep)<<32 | uint64(uint32(arity))
}

// BranchKeep unpacks the stack height from a packed branch immediate.
func BranchKeep(a uint64) int { return int(a >> 32) }

// BranchArity unpacks the carried-value count from a packed immediate.
func BranchArity(a uint64) int { return int(uint32(a)) }

// PackMem packs a memory access's byte width and originating wasm
// opcode (which fixes the load extension) into the B immediate.
func PackMem(size uint64, op wasm.Opcode) uint64 {
	return size<<32 | uint64(uint32(op))
}

// MemSize unpacks the access width from a packed memory immediate.
func MemSize(b uint64) uint64 { return b >> 32 }

// MemOp unpacks the originating wasm opcode from a packed immediate.
func MemOp(b uint64) wasm.Opcode { return wasm.Opcode(uint32(b)) }

// Instr is one lowered instruction. The meaning of A and B depends on
// the opcode:
//
//	OpBr/OpBrIf/OpBrIfZ  A = PackBranch(keep, arity), B = target pc
//	OpGoto               B = target pc
//	OpBrTable            Targets (default entry last)
//	OpReturn/OpRetEnd    A = result count
//	OpCall               A = callee function index, B = param count
//	OpCallIndirect       A = type index, B = param count
//	OpLocal*/OpGlobal*   A = index
//	OpConst              A = value bits
//	loads/stores         A = memarg offset, B = PackMem(size, wasmOp)
//	OpSegment*           A = static offset immediate
type Instr struct {
	Op      Op
	A       uint64
	B       uint64
	Targets []BranchTarget
}

// String renders a readable disassembly of the lowered instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpGoto:
		return fmt.Sprintf("%s ->%d", in.Op, in.B)
	case OpBr, OpBrIf, OpBrIfZ:
		return fmt.Sprintf("%s ->%d keep=%d arity=%d",
			in.Op, in.B, BranchKeep(in.A), BranchArity(in.A))
	case OpBrTable:
		s := fmt.Sprintf("%s", in.Op)
		for i, t := range in.Targets {
			sep := " "
			if i == len(in.Targets)-1 {
				sep = " default="
			}
			s += fmt.Sprintf("%s->%d(keep=%d,arity=%d)", sep, t.PC, t.Keep, t.Arity)
		}
		return s
	case OpReturn, OpRetEnd:
		return fmt.Sprintf("%s arity=%d", in.Op, in.A)
	case OpCall:
		return fmt.Sprintf("%s func=%d nargs=%d", in.Op, in.A, in.B)
	case OpCallIndirect:
		return fmt.Sprintf("%s type=%d nargs=%d", in.Op, in.A, in.B)
	case OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpConst:
		return fmt.Sprintf("%s %#x", in.Op, in.A)
	case OpSegmentNew, OpSegmentSetTag, OpSegmentFree:
		return fmt.Sprintf("%s offset=%d", in.Op, in.A)
	case OpFence:
		return "fence ;; speculation barrier (hardened)"
	case OpFusedSetBr, OpFusedCmpBrIf, OpFusedCmpBrIfZ, OpFusedCmpEqzBrIf:
		return fmt.Sprintf("%s ->%d keep=%d arity=%d",
			in.Op, FusedBranchTarget(in.B), BranchKeep(in.A), BranchArity(in.A))
	case OpFusedLoadALU, OpFusedALULoad, OpFusedALUStore:
		return fmt.Sprintf("%s offset=%d size=%d (%s; %s)",
			in.Op, in.A, FusedMemSize(in.B), FusedMemOp(in.B), FusedMemALU(in.B))
	}
	if in.Op.IsFused() {
		return in.Op.String()
	}
	if in.Op.IsLoad() || in.Op.IsStore() {
		return fmt.Sprintf("%s offset=%d size=%d (%s)",
			in.Op, in.A, MemSize(in.B), MemOp(in.B))
	}
	return in.Op.String()
}

// Constituents expands a fused superinstruction into the exact lowered
// instructions it executes, in order — the expansion cage-objdump
// prints inline and the fuse pass's round-trip validation checks
// against. Branch constituents carry the fused instruction's (already
// remapped) target. For non-fused instructions it returns nil.
func (in Instr) Constituents() []Instr {
	num := func(alu wasm.Opcode) Instr { return Instr{Op: OpNumericBase + Op(alu)} }
	switch in.Op {
	case OpFusedGetGet:
		return []Instr{{Op: OpLocalGet, A: in.A}, {Op: OpLocalGet, A: in.B}}
	case OpFusedGetConst:
		return []Instr{{Op: OpLocalGet, A: in.A}, {Op: OpConst, A: in.B}}
	case OpFusedConstALU:
		return []Instr{{Op: OpConst, A: in.A}, num(wasm.Opcode(in.B))}
	case OpFusedGetALU:
		return []Instr{{Op: OpLocalGet, A: in.A}, num(wasm.Opcode(in.B))}
	case OpFusedGetGetALU:
		return []Instr{
			{Op: OpLocalGet, A: in.A >> 32},
			{Op: OpLocalGet, A: uint64(uint32(in.A))},
			num(wasm.Opcode(in.B)),
		}
	case OpFusedGetConstALU:
		return []Instr{
			{Op: OpLocalGet, A: FusedBranchAux(in.B)},
			{Op: OpConst, A: in.A},
			num(wasm.Opcode(uint32(in.B))),
		}
	case OpFusedALUSet:
		return []Instr{num(wasm.Opcode(in.B)), {Op: OpLocalSet, A: in.A}}
	case OpFusedSetGet:
		return []Instr{{Op: OpLocalSet, A: in.A}, {Op: OpLocalGet, A: in.B}}
	case OpFusedSetBr:
		return []Instr{
			{Op: OpLocalSet, A: FusedBranchAux(in.B)},
			{Op: OpBr, A: in.A, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedCmpBrIf:
		return []Instr{
			num(wasm.Opcode(FusedBranchAux(in.B))),
			{Op: OpBrIf, A: in.A, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedCmpBrIfZ:
		return []Instr{
			num(wasm.Opcode(FusedBranchAux(in.B))),
			{Op: OpBrIfZ, A: in.A, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedCmpEqzBrIf:
		return []Instr{
			num(wasm.Opcode(FusedBranchAux(in.B))),
			num(wasm.OpI32Eqz),
			{Op: OpBrIf, A: in.A, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedLoadALU:
		return []Instr{
			{Op: FusedMemVariant(in.B), A: in.A, B: PackMem(FusedMemSize(in.B), FusedMemOp(in.B))},
			num(FusedMemALU(in.B)),
		}
	case OpFusedALULoad:
		return []Instr{
			num(FusedMemALU(in.B)),
			{Op: FusedMemVariant(in.B), A: in.A, B: PackMem(FusedMemSize(in.B), FusedMemOp(in.B))},
		}
	case OpFusedALUStore:
		return []Instr{
			num(FusedMemALU(in.B)),
			{Op: FusedMemVariant(in.B), A: in.A, B: PackMem(FusedMemSize(in.B), FusedMemOp(in.B))},
		}
	case OpFusedConstALUALU:
		return []Instr{
			{Op: OpConst, A: in.A},
			num(wasm.Opcode(in.B & 0xFF)),
			num(wasm.Opcode((in.B >> 8) & 0xFF)),
		}
	case OpFusedGetALUGetALU:
		return []Instr{
			{Op: OpLocalGet, A: in.A >> 32},
			num(wasm.Opcode(in.B & 0xFF)),
			{Op: OpLocalGet, A: uint64(uint32(in.A))},
			num(wasm.Opcode((in.B >> 8) & 0xFF)),
		}
	case OpFusedGetGetCmpEqzBr:
		return []Instr{
			{Op: OpLocalGet, A: in.A >> 32},
			{Op: OpLocalGet, A: uint64(uint32(in.A))},
			num(wasm.Opcode(FusedBranchAux(in.B))),
			num(wasm.OpI32Eqz),
			{Op: OpBrIf, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedIncBr:
		x := FusedBranchAux(in.B)
		return []Instr{
			{Op: OpLocalGet, A: x},
			{Op: OpConst, A: in.A >> 8},
			num(wasm.Opcode(in.A & 0xFF)),
			{Op: OpLocalSet, A: x},
			{Op: OpBr, B: uint64(FusedBranchTarget(in.B))},
		}
	case OpFusedGet4:
		return []Instr{
			{Op: OpLocalGet, A: in.A >> 48},
			{Op: OpLocalGet, A: (in.A >> 32) & 0xFFFF},
			{Op: OpLocalGet, A: (in.A >> 16) & 0xFFFF},
			{Op: OpLocalGet, A: in.A & 0xFFFF},
		}
	case OpFusedGet3ALUGetALU:
		return []Instr{
			{Op: OpLocalGet, A: in.A >> 48},
			{Op: OpLocalGet, A: (in.A >> 32) & 0xFFFF},
			{Op: OpLocalGet, A: (in.A >> 16) & 0xFFFF},
			num(wasm.Opcode(in.B & 0xFF)),
			{Op: OpLocalGet, A: in.A & 0xFFFF},
			num(wasm.Opcode((in.B >> 8) & 0xFF)),
		}
	case OpFusedConstALUALULoadALU:
		return []Instr{
			{Op: OpConst, A: in.A >> 32},
			num(wasm.Opcode((in.B >> 32) & 0xFF)),
			num(wasm.Opcode((in.B >> 40) & 0xFF)),
			{Op: FusedMemVariant(in.B), A: uint64(uint32(in.A)),
				B: PackMem(FusedMemSize(in.B), FusedMemOp(in.B))},
			num(FusedMemALU(in.B)),
		}
	case OpFusedALUSetIncBr:
		y := (in.A >> 16) & 0xFFFF
		return []Instr{
			num(wasm.Opcode(in.A >> 48)),
			{Op: OpLocalSet, A: (in.A >> 32) & 0xFFFF},
			{Op: OpLocalGet, A: y},
			{Op: OpConst, A: (in.A >> 8) & 0xFF},
			num(wasm.Opcode(in.A & 0xFF)),
			{Op: OpLocalSet, A: y},
			{Op: OpBr, B: uint64(FusedBranchTarget(in.B))},
		}
	}
	return nil
}

// Mode is the address-translation strategy a program was lowered for.
// It mirrors the exec package's sandboxing strategies; the lowered
// memory opcodes bake the mode in so dispatch never re-derives it.
type Mode int

// Address-translation modes.
const (
	// ModeGuard32 is 32-bit wasm with virtual-memory guard pages.
	ModeGuard32 Mode = iota
	// ModeBounds64 is wasm64 with explicit software bounds checks.
	ModeBounds64
	// ModeMTE64 is Cage's MTE-based sandboxing.
	ModeMTE64
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGuard32:
		return "guard32"
	case ModeBounds64:
		return "bounds64"
	case ModeMTE64:
		return "mte64"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config selects the specialization a module is lowered under. It is
// derived from the instance configuration (core.Features plus the
// module's memory kind) by the exec layer, and is part of the cache key
// for lowered programs: two configs that differ in any field produce
// distinct instruction streams.
type Config struct {
	// Mode is the address-translation strategy.
	Mode Mode
	// SkipBounds drops software checks (the CVE-2023-26489-style buggy
	// lowering of paper §3), selecting the NC opcode variants.
	SkipBounds bool
	// MemSafety adds MTE tag checks to Bounds64 accesses.
	MemSafety bool
	// PtrAuth enables i64.pointer_sign/auth; off lowers them to the
	// event-only Nop variants.
	PtrAuth bool
	// Harden inserts OpFence speculation barriers before indirect
	// branches and returns (the Swivel-style hardened preset). Purely a
	// timing-model change: the lowered semantics are unaffected.
	Harden bool
	// Guard selects the guard-region opcode variants for ModeGuard32
	// accesses whose offset fits GuardMaxOffset: the executor backs the
	// linear memory with an mmap reservation (internal/vmem) whose tail
	// is PROT_NONE, so the MMU performs the bounds check. Set only when
	// the build provides the backing (cageguard tag on Linux); it is
	// part of the cache identity like every other field, so guard and
	// non-guard programs never mix.
	Guard bool
}

// Func is one lowered function body.
//
// Frame layout: one activation of the function occupies FrameSize
// contiguous value slots in the executor's arena —
//
//	slot [0, NumParams)                      parameters
//	slot [NumParams, NumParams+NumLocals)    declared locals
//	slot [StackBase(), FrameSize)            operand stack (MaxStack deep)
//
// Local index i (the immediate of OpLocalGet/Set/Tee) is frame-relative
// slot i, so a caller's operand-stack top can become the callee's
// parameter slots in place: the frame machine opens the callee frame at
// the caller's stack top minus the argument count, with no copy.
type Func struct {
	// NumParams/NumResults mirror the function signature; NumLocals is
	// the count of declared (non-parameter) locals.
	NumParams  int
	NumResults int
	NumLocals  int
	// MaxStack is the operand-stack high-water mark, precomputed so the
	// executor can size the frame once, exactly.
	MaxStack int
	// FrameSize is the total number of contiguous arena slots one
	// activation needs: NumParams + NumLocals + MaxStack. Computed at
	// lower time; the frame machine's exact arena bound is a sum of
	// these.
	FrameSize int
	// Code is the flat lowered instruction stream. Every function ends
	// with OpRetEnd; branch targets are absolute indices into Code.
	Code []Instr
}

// StackBase returns the frame-relative slot where the operand stack
// begins: the first slot past the parameters and declared locals.
func (f *Func) StackBase() int { return f.NumParams + f.NumLocals }

// Program is a module lowered under one Config. Programs are immutable
// after Lower and safe to share across concurrent instances; the engine
// caches them per (module content hash, config).
type Program struct {
	Cfg   Config
	Funcs []Func
	// Fused marks a program rewritten by the superinstruction pass
	// (internal/fuse). Fused programs execute identically — the pass is
	// semantics- and event-preserving — but their PCs differ from the
	// plain lowering, so the pass refuses to run twice.
	Fused bool
}

// Matches reports whether the program can execute module m under cfg —
// the compatibility check instances run before adopting a shared
// (cached) program.
func (p *Program) Matches(m *wasm.Module, cfg Config) bool {
	return p != nil && p.Cfg == cfg && len(p.Funcs) == len(m.Funcs)
}
