// Package wasm models 64-bit WebAssembly modules extended with the Cage
// memory-safety instructions (paper §4.2, Fig. 7).
//
// The package covers the subset of WebAssembly 1.0 + memory64 that the
// Cage toolchain needs — integer/float numerics, structured control
// flow, linear memory with 64-bit addressing, tables and indirect calls,
// bulk memory fill/copy — plus the five Cage instructions:
//
//	segment.new o          : i64 i64 -> i64
//	segment.set_tag o      : i64 i64 i64 -> ε
//	segment.free o         : i64 i64 -> ε
//	i64.pointer_sign       : i64 -> i64
//	i64.pointer_auth       : i64 -> i64
//
// Modules can be built programmatically, encoded to and decoded from the
// binary format, and validated (including the Fig. 10 typing rules).
package wasm

import "fmt"

// ValType is a WebAssembly value type.
type ValType byte

// Value types (binary encodings per the spec).
const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

// String returns the textual name of the value type.
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("valtype(0x%x)", byte(t))
	}
}

// Valid reports whether t is a known value type.
func (t ValType) Valid() bool {
	switch t {
	case I32, I64, F32, F64:
		return true
	}
	return false
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports signature equality (call_indirect's type check).
func (ft FuncType) Equal(other FuncType) bool {
	if len(ft.Params) != len(other.Params) || len(ft.Results) != len(other.Results) {
		return false
	}
	for i, p := range ft.Params {
		if other.Params[i] != p {
			return false
		}
	}
	for i, r := range ft.Results {
		if other.Results[i] != r {
			return false
		}
	}
	return true
}

// String renders the signature as "(i64, i64) -> (i64)".
func (ft FuncType) String() string {
	s := "("
	for i, p := range ft.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range ft.Results {
		if i > 0 {
			s += ", "
		}
		s += r.String()
	}
	return s + ")"
}

// Limits bound a memory or table size. Units are pages for memories and
// entries for tables.
type Limits struct {
	Min    uint64
	Max    uint64
	HasMax bool
}

// PageSize is the WebAssembly linear-memory page size.
const PageSize = 64 * 1024

// MemoryType describes a linear memory. Memory64 selects 64-bit
// addressing (wasm64, the memory64 proposal the paper builds on).
type MemoryType struct {
	Limits   Limits
	Memory64 bool
}

// TableType describes a funcref table. Indices stay 32-bit even under
// memory64 (paper §4.2: "the indices for the WASM function table remain
// 32 bit wide").
type TableType struct {
	Limits Limits
}

// GlobalType describes a global variable.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// Global is a module-level global with a constant initializer.
type Global struct {
	Type GlobalType
	// Init is the constant initial value, encoded in the bits of a
	// uint64 (float bits for F32/F64).
	Init uint64
}

// Import declares a host function import.
type Import struct {
	Module string
	Name   string
	// TypeIdx indexes Module.Types.
	TypeIdx uint32
}

// ExportKind tags what an export refers to.
type ExportKind byte

// Export kinds (binary encodings per the spec).
const (
	ExportFunc   ExportKind = 0
	ExportTable  ExportKind = 1
	ExportMemory ExportKind = 2
	ExportGlobal ExportKind = 3
)

// Export makes a definition visible to the embedder.
type Export struct {
	Name string
	Kind ExportKind
	Idx  uint32
}

// Function is a defined (non-imported) function.
type Function struct {
	// TypeIdx indexes Module.Types.
	TypeIdx uint32
	// Locals lists the declared locals (excluding parameters).
	Locals []ValType
	// Body is the flat instruction sequence, terminated by OpEnd.
	Body []Instr
	// Name is an optional debug name.
	Name string
}

// ElemSegment is an active element segment for table 0.
type ElemSegment struct {
	// Offset is the constant table offset.
	Offset uint32
	// Funcs are function indices placed at Offset.
	Funcs []uint32
}

// DataSegment is an active data segment for memory 0.
type DataSegment struct {
	// Offset is the constant memory offset.
	Offset uint64
	// Bytes is the initial content.
	Bytes []byte
}

// Module is a parsed or programmatically-built module.
type Module struct {
	Types   []FuncType
	Imports []Import
	Funcs   []Function
	Tables  []TableType
	Mems    []MemoryType
	Globals []Global
	Exports []Export
	Elems   []ElemSegment
	Datas   []DataSegment
	// Start, if non-nil, is the start function index.
	Start *uint32
}

// NumImports returns the number of imported functions. Function index
// space is imports first, then defined functions.
func (m *Module) NumImports() int { return len(m.Imports) }

// FuncTypeAt resolves the signature of function index fidx (spanning
// imports and defined functions).
func (m *Module) FuncTypeAt(fidx uint32) (FuncType, error) {
	if int(fidx) < len(m.Imports) {
		ti := m.Imports[fidx].TypeIdx
		if int(ti) >= len(m.Types) {
			return FuncType{}, fmt.Errorf("wasm: import %d has invalid type index %d", fidx, ti)
		}
		return m.Types[ti], nil
	}
	di := int(fidx) - len(m.Imports)
	if di >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", fidx)
	}
	ti := m.Funcs[di].TypeIdx
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has invalid type index %d", fidx, ti)
	}
	return m.Types[ti], nil
}

// ExportedFunc finds the function index exported under name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExportFunc && e.Name == name {
			return e.Idx, true
		}
	}
	return 0, false
}

// AddType interns a function type, returning its index.
func (m *Module) AddType(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}
