package exec

import (
	"encoding/binary"
	"fmt"
)

// Host-side accessors used by runtime components (the hardened
// allocator, WASI). Host code runs with runtime privileges: raw reads
// and writes bypass MTE tag checks the way the runtime's own memory
// accesses do, while the HostSegment* wrappers go through the same
// segment semantics (and event accounting) as guest instructions. These
// accessors take physical offsets and charge no timing-model events;
// host functions handling guest-supplied pointers should use the
// HostContext's Memory view instead, which untags pointers and accounts
// its accesses.

// HostSegmentNew performs segment.new on behalf of the runtime.
func (inst *Instance) HostSegmentNew(ptr, length uint64) (uint64, error) {
	return inst.segmentNew(ptr, length, 0)
}

// HostSegmentSetTag performs segment.set_tag on behalf of the runtime.
func (inst *Instance) HostSegmentSetTag(ptr, tagged, length uint64) error {
	return inst.segmentSetTag(ptr, tagged, length, 0)
}

// HostSegmentFree performs segment.free on behalf of the runtime.
func (inst *Instance) HostSegmentFree(tagged, length uint64) error {
	return inst.segmentFree(tagged, length, 0)
}

// GrowMemory grows the guest memory by delta pages, returning the old
// page count or ^0 on failure.
func (inst *Instance) GrowMemory(deltaPages uint64) uint64 {
	return inst.memoryGrow(deltaPages)
}

// checkHostRange is the one overflow-safe bounds check every host
// accessor shares: it verifies [addr, addr+n) lies inside a memory of
// size bytes without ever forming the possibly-wrapping sum addr+n.
func checkHostRange(addr, n, size uint64) error {
	if n > size || addr > size-n {
		return fmt.Errorf("exec: host access [%#x, +%d) outside guest memory (%#x bytes)",
			addr, n, size)
	}
	return nil
}

func (inst *Instance) hostRange(addr, n uint64) error {
	return checkHostRange(addr, n, inst.memSize)
}

// ReadU64 reads a little-endian u64 at addr with runtime privileges.
func (inst *Instance) ReadU64(addr uint64) (uint64, error) {
	if err := inst.hostRange(addr, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(inst.mem[addr:]), nil
}

// WriteU64 writes a little-endian u64 at addr with runtime privileges.
func (inst *Instance) WriteU64(addr, v uint64) error {
	if err := inst.hostRange(addr, 8); err != nil {
		return err
	}
	inst.memDirty = true
	binary.LittleEndian.PutUint64(inst.mem[addr:], v)
	return nil
}

// ReadBytes copies n guest bytes starting at addr.
func (inst *Instance) ReadBytes(addr, n uint64) ([]byte, error) {
	if err := inst.hostRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, inst.mem[addr:addr+n])
	return out, nil
}

// WriteBytes copies b into guest memory at addr.
func (inst *Instance) WriteBytes(addr uint64, b []byte) error {
	if err := inst.hostRange(addr, uint64(len(b))); err != nil {
		return err
	}
	inst.memDirty = true
	copy(inst.mem[addr:], b)
	return nil
}
