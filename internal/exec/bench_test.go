package exec_test

import (
	"testing"

	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/polybench"
)

// BenchmarkLoweredVsLegacy is the before/after of the lowered-IR
// execution pipeline: the same instantiated PolyBench kernel invoked
// through the legacy re-scanning interpreter (the pre-refactor engine,
// preserved in legacy_test.go) and through the lowered flat-dispatch
// loop. Kernels free their allocations, so one instance serves every
// iteration and the delta is pure dispatch.
func BenchmarkLoweredVsLegacy(b *testing.B) {
	for _, kernel := range []string{"gemm", "jacobi-1d"} {
		k, err := polybench.ByName(kernel)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name  string
			opts  codegen.Options
			feats core.Features
		}{
			{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
			{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}, core.CageAll()},
		} {
			m, err := polybench.Build(k, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			n := uint64(k.TestN)

			b.Run(kernel+"/"+cfg.name+"/legacy", func(b *testing.B) {
				var ctr arch.Counter
				inst := newKernelInstance(b, m, cfg.feats, &ctr)
				lr, err := exec.NewLegacyRunner(inst)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := lr.Invoke("run", n); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(kernel+"/"+cfg.name+"/lowered", func(b *testing.B) {
				var ctr arch.Counter
				inst := newKernelInstance(b, m, cfg.feats, &ctr)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Invoke("run", n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
