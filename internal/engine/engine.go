// Package engine provides the process-level machinery that amortizes
// Cage's per-instance hardening costs across many invocations: a keyed
// compiled-module cache and a concurrent instance pool.
//
// The paper prices two one-time costs that dominate short-lived
// executions: compiling and validating the module, and tagging the
// whole linear memory at instantiation (§7.2, Table 4/Fig. 16). A
// service handling many requests per module pays both once per request
// if it naively re-instantiates. This package lets an embedder pay them
// once per process instead:
//
//   - Cache deduplicates compilation: identical (content hash, config)
//     pairs share one validated module, with singleflight semantics so
//     concurrent first requests compile once.
//   - Pool recycles instances: a checkout/checkin protocol over
//     resettable instances replaces full re-instantiation with a reset
//     (re-zero memory, re-tag, re-seed), and bounds live instances to
//     the §7.4 sandbox-tag budget, queueing excess checkouts until an
//     instance is returned or the checkout's context ends.
//   - SnapshotCache memoizes frozen post-initialization images per
//     (module hash, config, init), so start/init execution and
//     whole-memory tagging run once and every later instance is a
//     fork (restore) of the image rather than a rebuild.
//
// The package is deliberately ignorant of wasm: Cache is generic over
// the cached value and Pool works against the small Resetter interface,
// so the cage facade can pool fully-linked instances (interpreter
// instance + hardened allocator) while tests can pool anything.
package engine

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Key identifies a cached artifact: a content hash plus a variant string
// encoding everything else that influences the build (the Table 3
// configuration, the ABI, the toolchain revision...).
type Key struct {
	Hash    [sha256.Size]byte
	Variant string
}

// KeyOf hashes content and pairs it with a variant.
func KeyOf(content []byte, variant string) Key {
	return Key{Hash: sha256.Sum256(content), Variant: variant}
}

// KeyOfString is KeyOf for string content (e.g. MiniC source).
func KeyOfString(content, variant string) Key {
	return Key{Hash: sha256.Sum256([]byte(content)), Variant: variant}
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits    uint64 // lookups served from (or joined onto) an entry
	Misses  uint64 // lookups that ran the build function
	Entries int    // values currently cached
}

// cacheEntry is a singleflight slot: the first goroutine to claim a key
// builds; everyone else blocks on done.
type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a concurrency-safe build cache with singleflight semantics:
// for each key the build function runs at most once at a time, losers
// wait for the winner's result, and failed builds are not cached (a
// later lookup retries).
//
// The zero value is ready to use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry[V]
	hits    uint64
	misses  uint64
}

// GetOrBuild returns the cached value for key, building it with build on
// first use. Concurrent callers of the same key share one build.
func (c *Cache[V]) GetOrBuild(key Key, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[Key]*cacheEntry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.err = build()
	close(e.done)
	if e.err != nil {
		// Do not cache failures: the build may be retried (and an error
		// kept alive forever would pin its inputs).
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default: // still building
		}
	}
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: n}
}

// Resetter is the unit a Pool recycles. Reset must return the value to
// its initial state (seed drives any fresh randomness the new lifetime
// needs); Close releases resources held against shared budgets (e.g.
// the instance's sandbox tag).
type Resetter interface {
	Reset(seed uint64) error
	Close() error
}

// PoolStats is a point-in-time pool counter snapshot.
type PoolStats struct {
	Spawned   uint64 // instances created
	Recycled  uint64 // successful checkins (reset ok)
	Discarded uint64 // instances dropped because reset failed
	Idle      int    // instances ready for checkout
	Live      int    // spawned minus closed (checked out + idle)
}

// Pool recycles instances of one compiled module across invocations.
//
// Checkout (GetContext) prefers an idle instance; otherwise it spawns
// one, unless doing so would exceed the pool's live cap — then it
// queues until a checkin frees one or the context ends, so a caller
// holding a deadline can abandon a contended checkout without leaking
// anything. Checkin (Put) resets the instance before making it visible
// again, so state poisoned by a trapped execution never leaks into the
// next checkout; instances whose reset fails are closed and discarded.
//
// All methods are safe for concurrent use.
type Pool struct {
	spawn func(ctx context.Context) (Resetter, error)

	// NextSeed supplies the reset seed for each checkin. Pools sharing a
	// process (one PAC key) must share one seed source so no two
	// instance lifetimes — across any pool — derive the same PAC
	// modifier (§6.3). Nil falls back to a pool-private counter, which
	// is only safe for a process with a single pool.
	NextSeed func() uint64

	mu       sync.Mutex
	idle     []Resetter
	live     int // materialized instances: checked out + idle
	spawning int // spawn attempts in flight (reserve cap slots)
	max      int
	seed     uint64
	closed   bool
	stats    PoolStats
	// wake is a channel-shaped broadcast condition variable: it is
	// closed (and lazily replaced) whenever a checkout might newly
	// succeed — checkin, discard, reclaim, close, failed spawn — so
	// queued GetContext calls can select on it against ctx.Done().
	// Broadcast (vs. the old cond.Signal) wakes every waiter per event;
	// that is a deliberate tradeoff for cancellability, matching the
	// core.SandboxAllocator condvar, and queue depth is bounded by the
	// caller's concurrency (at most the §7.4 budget's overflow).
	wake chan struct{}
}

// NewPool creates a pool over spawn. The spawn function receives the
// checkout's context so a queued spawn (e.g. one waiting on a shared
// sandbox-tag budget) can be abandoned with it. max bounds live
// instances (checked out plus idle); 0 means unlimited. Embedders
// running under a sandbox-tag budget (§7.4) should pass the budget as
// max so checkouts queue instead of failing with ErrSandboxesExhausted.
func NewPool(max int, spawn func(ctx context.Context) (Resetter, error)) *Pool {
	return &Pool{spawn: spawn, max: max, seed: 0x6361_6765} // "cage"
}

// waitLocked returns the channel closed at the next wakeLocked.
func (p *Pool) waitLocked() chan struct{} {
	if p.wake == nil {
		p.wake = make(chan struct{})
	}
	return p.wake
}

// wakeLocked wakes every queued checkout (they re-examine the pool).
func (p *Pool) wakeLocked() {
	if p.wake != nil {
		close(p.wake)
		p.wake = nil
	}
}

// nextSeed draws the next reset seed from NextSeed or the private
// counter.
func (p *Pool) nextSeed() uint64 {
	if p.NextSeed != nil {
		return p.NextSeed()
	}
	p.mu.Lock()
	p.seed++
	s := p.seed
	p.mu.Unlock()
	return s
}

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = fmt.Errorf("engine: pool is closed")

// Get checks an instance out of the pool, spawning or blocking as the
// cap dictates. It is GetContext with a background context.
func (p *Pool) Get() (Resetter, error) {
	return p.GetContext(context.Background())
}

// GetContext checks an instance out of the pool, spawning or queueing
// as the cap dictates. A queued checkout — whether blocked on the live
// cap or inside a spawn waiting on a shared budget — is abandoned
// cleanly when ctx ends: GetContext returns ctx.Err() and no instance
// or budget reservation leaks.
func (p *Pool) GetContext(ctx context.Context) (Resetter, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if n := len(p.idle); n > 0 {
			inst := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			return inst, nil
		}
		if p.max == 0 || p.live+p.spawning < p.max {
			p.spawning++
			p.mu.Unlock()
			inst, err := p.spawn(ctx)
			p.mu.Lock()
			p.spawning--
			if err != nil {
				// The cap slot this spawn reserved is free again; let
				// blocked waiters retry.
				p.wakeLocked()
				if ctx.Err() != nil {
					// The spawn was abandoned by our own context; report
					// that, not whatever wrapped error it surfaced as.
					p.mu.Unlock()
					return nil, ctx.Err()
				}
				if p.live > 0 && !p.closed {
					// Spawning can fail on a shared budget the cap does
					// not see (several pools over one sandbox
					// allocator). This pool's live instances will be
					// checked in eventually; wait for one instead of
					// failing the request — unless one arrived while we
					// were spawning.
					if len(p.idle) == 0 {
						ch := p.waitLocked()
						p.mu.Unlock()
						select {
						case <-ch:
						case <-ctx.Done():
						}
						p.mu.Lock()
					}
					continue
				}
				p.mu.Unlock()
				return nil, err
			}
			p.live++
			p.stats.Spawned++
			p.mu.Unlock()
			return inst, nil
		}
		ch := p.waitLocked()
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
		p.mu.Lock()
	}
}

// Put checks an instance back in. The instance is reset first; a reset
// failure closes and discards it (freeing its slot under the cap).
func (p *Pool) Put(inst Resetter) {
	err := inst.Reset(p.nextSeed())

	p.mu.Lock()
	if err != nil || p.closed {
		p.live--
		if err != nil {
			p.stats.Discarded++
		}
		p.wakeLocked()
		p.mu.Unlock()
		inst.Close()
		return
	}
	p.idle = append(p.idle, inst)
	p.stats.Recycled++
	p.wakeLocked()
	p.mu.Unlock()
}

// ReclaimIdle closes up to n idle instances, freeing whatever shared
// budget they hold (sandbox tags, memory). Returns how many were
// reclaimed. Used by engines whose pools compete for one tag budget: a
// pool that cannot spawn may reclaim a sibling's idle instance and
// retry.
func (p *Pool) ReclaimIdle(n int) int {
	p.mu.Lock()
	k := n
	if k > len(p.idle) {
		k = len(p.idle)
	}
	evicted := p.idle[len(p.idle)-k:]
	p.idle = p.idle[:len(p.idle)-k]
	p.live -= k
	if k > 0 {
		p.wakeLocked() // cap slots freed
	}
	p.mu.Unlock()
	for _, inst := range evicted {
		inst.Close()
	}
	return k
}

// Discard removes a checked-out instance from the pool without
// recycling it (e.g. after an invocation error the embedder considers
// fatal for the instance).
func (p *Pool) Discard(inst Resetter) {
	p.mu.Lock()
	p.live--
	p.stats.Discarded++
	p.wakeLocked()
	p.mu.Unlock()
	inst.Close()
}

// Close retires all idle instances and fails future checkouts.
// Instances currently checked out are closed as they come back.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.live -= len(idle)
	p.wakeLocked()
	p.mu.Unlock()
	for _, inst := range idle {
		inst.Close()
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Idle = len(p.idle)
	s.Live = p.live
	return s
}

// PoolSet lazily manages one Pool per key (e.g. per compiled module).
// The zero value is ready to use.
type PoolSet struct {
	// NextSeed, when non-nil, is installed on every created pool so all
	// pools of one process share a seed source (see Pool.NextSeed).
	NextSeed func() uint64

	mu      sync.Mutex
	limit   int // live-instance cap applied to pools as they are created
	pools   map[any]*Pool
	started bool // a pool has been built; limit is frozen
	closed  bool
}

// ErrSetStarted is returned by SetLimit once a pool exists: that pool
// was built under the old limit and would never observe a new one.
var ErrSetStarted = fmt.Errorf("engine: pool set already built a pool; set the limit before first use")

// SetLimit sets the live-instance cap applied to pools as they are
// created (0 = unlimited). The check and the mutation share the set's
// lock with For, so a SetLimit racing the first checkout either wins
// (the pool sees the new limit) or fails with ErrSetStarted — it can
// never return success while a pool built under the old limit ignores
// it.
func (s *PoolSet) SetLimit(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return ErrSetStarted
	}
	s.limit = n
	return nil
}

// For returns the pool for key, creating it with spawn on first use.
func (s *PoolSet) For(key any, spawn func(ctx context.Context) (Resetter, error)) *Pool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started = true
	if s.pools == nil {
		s.pools = make(map[any]*Pool)
	}
	p, ok := s.pools[key]
	if !ok {
		p = NewPool(s.limit, spawn)
		p.NextSeed = s.NextSeed
		if s.closed {
			// A closed set must not resurrect: hand out a pool whose
			// Get fails with ErrPoolClosed instead of silently leaking
			// fresh instances past the one Close that already ran.
			p.closed = true
		}
		s.pools[key] = p
	}
	return p
}

// ReclaimIdle closes up to n idle instances across the set's pools,
// returning how many were reclaimed. See Pool.ReclaimIdle.
func (s *PoolSet) ReclaimIdle(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := 0
	for _, p := range s.pools {
		if freed >= n {
			break
		}
		freed += p.ReclaimIdle(n - freed)
	}
	return freed
}

// StatsFor snapshots the pool for key alone; ok is false when no pool
// has been created for it yet (no checkout has happened). Services
// exporting per-module occupancy (cage-serve's /stats) use this to
// attribute live instances, recycles, and discards to one module
// instead of the set-wide sum.
func (s *PoolSet) StatsFor(key any) (stats PoolStats, ok bool) {
	s.mu.Lock()
	p, ok := s.pools[key]
	s.mu.Unlock()
	if !ok {
		return PoolStats{}, false
	}
	return p.Stats(), true
}

// Stats sums the counters of every pool in the set.
func (s *PoolSet) Stats() PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum PoolStats
	for _, p := range s.pools {
		ps := p.Stats()
		sum.Spawned += ps.Spawned
		sum.Recycled += ps.Recycled
		sum.Discarded += ps.Discarded
		sum.Idle += ps.Idle
		sum.Live += ps.Live
	}
	return sum
}

// Close closes every pool in the set; later For calls yield pools that
// fail checkout with ErrPoolClosed.
func (s *PoolSet) Close() {
	s.mu.Lock()
	pools := s.pools
	s.pools = nil
	s.closed = true
	s.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
