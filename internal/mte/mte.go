// Package mte simulates the Arm Memory Tagging Extension (MTE) used by
// Cage as its memory-safety building block (paper §2.3).
//
// MTE is a lock-and-key mechanism: memory is tagged in 16-byte granules
// with one of 16 4-bit tags, pointers carry a tag in bits 59..56, and an
// access is only allowed when the pointer tag matches the tag of every
// granule it touches. The simulation reproduces the architectural
// behaviour relevant to Cage:
//
//   - tag storage at GranuleSize granularity over a linear memory
//   - the four check modes (disabled, synchronous, asynchronous,
//     asymmetric) with the async fault flag polled at "context switch"
//   - random tag generation with a tag-exclusion mask (the prctl
//     PR_MTE_TAG_MASK analog Cage uses to reserve tags, paper §6.4)
//   - tag arithmetic and tag load/store operations mirroring the
//     irg/addg/ldg/stg instruction family
package mte

import "fmt"

const (
	// GranuleSize is the MTE tagging granularity in bytes.
	GranuleSize = 16
	// TagBits is the width of an allocation tag.
	TagBits = 4
	// NumTags is the number of distinct tags.
	NumTags = 1 << TagBits
)

// Mode selects how tag-check faults are reported (paper §2.3).
type Mode int

const (
	// ModeDisabled performs no tag checks.
	ModeDisabled Mode = iota
	// ModeSync faults immediately, before the access takes effect.
	ModeSync
	// ModeAsync sets a cumulative fault flag checked at the next
	// context switch; the access itself proceeds.
	ModeAsync
	// ModeAsymmetric checks reads asynchronously and writes synchronously.
	ModeAsymmetric
)

// String returns the conventional lowercase mode name.
func (m Mode) String() string {
	switch m {
	case ModeDisabled:
		return "disabled"
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	case ModeAsymmetric:
		return "asymmetric"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TagFault describes a tag-check failure.
type TagFault struct {
	Addr   uint64 // untagged faulting address (offset into the memory)
	PtrTag uint8  // tag carried by the pointer
	MemTag uint8  // tag stored for the granule
	Write  bool   // true for stores
	Async  bool   // true if reported via the async flag
}

// Error implements the error interface.
func (f *TagFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	how := "synchronous"
	if f.Async {
		how = "asynchronous"
	}
	return fmt.Sprintf("mte: %s tag fault on %s at 0x%x: pointer tag %#x, memory tag %#x",
		how, kind, f.Addr, f.PtrTag, f.MemTag)
}

// Memory is the tag storage for one linear memory region. Tags live in a
// separate array mirroring the hardware's dedicated tag PA space; the data
// bytes themselves are owned by the caller.
type Memory struct {
	mode    Mode
	tags    []uint8 // one tag per granule
	size    uint64  // bytes covered
	pending *TagFault
	exclude uint16 // bit i set => tag i never produced by RandomTag
	rng     uint64 // xorshift64 state, deterministic and seedable
	// adopted marks tag storage borrowed from a caller-owned mapping
	// (AdoptTags); such storage must never be reused as a private
	// array, since the mapping can be unmapped underneath it.
	adopted bool
}

// NewMemory creates tag storage covering size bytes (rounded up to a whole
// number of granules), with all granules tagged zero and checks in mode.
func NewMemory(size uint64, mode Mode) *Memory {
	return &Memory{
		mode: mode,
		tags: make([]uint8, granules(size)),
		size: size,
		rng:  0x9E3779B97F4A7C15,
	}
}

func granules(size uint64) uint64 {
	return (size + GranuleSize - 1) / GranuleSize
}

// Size returns the number of data bytes covered by the tag storage.
func (m *Memory) Size() uint64 { return m.size }

// Mode returns the current check mode.
func (m *Memory) Mode() Mode { return m.mode }

// SetMode switches the check mode.
func (m *Memory) SetMode(mode Mode) { m.mode = mode }

// Seed reseeds the deterministic random tag generator.
func (m *Memory) Seed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	m.rng = seed
}

// SetExcludeMask configures which tags RandomTag may never return (the
// GCR_EL1.Exclude / prctl analog). At least one tag must remain usable.
func (m *Memory) SetExcludeMask(mask uint16) error {
	if mask == 0xFFFF {
		return fmt.Errorf("mte: exclude mask %#x leaves no usable tags", mask)
	}
	m.exclude = mask
	return nil
}

// ExcludeMask returns the current tag exclusion mask.
func (m *Memory) ExcludeMask() uint16 { return m.exclude }

// Grow extends the covered region to newSize bytes; new granules are
// tagged zero. Shrinking is not supported and is ignored.
func (m *Memory) Grow(newSize uint64) {
	if newSize <= m.size {
		return
	}
	need := granules(newSize)
	if uint64(len(m.tags)) < need || m.adopted {
		grown := make([]uint8, need)
		copy(grown, m.tags)
		m.tags = grown
		m.adopted = false
	}
	m.size = newSize
}

func (m *Memory) next() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}

// RandomTag returns a uniformly random non-excluded tag (irg).
func (m *Memory) RandomTag() uint8 {
	return m.RandomTagExcluding(0)
}

// RandomTagExcluding returns a uniformly random tag outside both the
// global exclude mask and extra — irg's Xm exclusion operand, which
// lets a caller rule out specific tags per draw (Cage's allocator
// excludes a reused block's current and previous-owner tags so a stale
// pointer from the immediately preceding lifetime can never draw a
// colliding tag). An extra mask that would leave no usable tag is
// ignored in favour of the global mask alone. Tags come from the
// xorshift state's high bits; the low bits are too weakly mixed to cut
// a 4-bit tag from.
func (m *Memory) RandomTagExcluding(extra uint16) uint8 {
	mask := m.exclude | extra
	if mask == 0xFFFF {
		mask = m.exclude
	}
	for {
		t := uint8(m.next() >> (64 - TagBits))
		if mask&(1<<t) == 0 {
			return t
		}
	}
}

// NextTag returns the tag after t, wrapping modulo 16 and skipping
// excluded tags. Cage uses this for successive stack allocations
// (paper §4.2: "subsequent stack allocations use this tag and increment
// it by one ... the tag wraps around on overflow").
func (m *Memory) NextTag(t uint8) uint8 {
	for i := 0; i < NumTags; i++ {
		t = (t + 1) & (NumTags - 1)
		if m.exclude&(1<<t) == 0 {
			return t
		}
	}
	return t
}

// PrevTag returns the tag before t, wrapping modulo 16 and skipping
// excluded tags — NextTag's inverse. Cage's allocator uses it to
// recover a freed block's previous-owner tag from the free tag
// segment.free stamped (NextTag of the owner), so reallocation can
// exclude it.
func (m *Memory) PrevTag(t uint8) uint8 {
	for i := 0; i < NumTags; i++ {
		t = (t - 1) & (NumTags - 1)
		if m.exclude&(1<<t) == 0 {
			return t
		}
	}
	return t
}

// TagAt returns the tag of the granule containing addr (ldg).
func (m *Memory) TagAt(addr uint64) uint8 {
	g := addr / GranuleSize
	if g >= uint64(len(m.tags)) {
		return 0
	}
	return m.tags[g]
}

// SetTagRange assigns tag to every granule in [addr, addr+length)
// (an stg loop). addr and length must be granule-aligned and in bounds.
func (m *Memory) SetTagRange(addr, length uint64, tag uint8) error {
	if addr%GranuleSize != 0 || length%GranuleSize != 0 {
		return fmt.Errorf("mte: unaligned tag range [%#x, +%#x)", addr, length)
	}
	if addr+length < addr || addr+length > m.size {
		return fmt.Errorf("mte: tag range [%#x, +%#x) out of bounds (size %#x)", addr, length, m.size)
	}
	first := addr / GranuleSize
	for g := first; g < first+length/GranuleSize; g++ {
		m.tags[g] = tag & (NumTags - 1)
	}
	return nil
}

// RangeTag returns the common tag of all granules in [addr, addr+length),
// or ok=false when the range spans granules with differing tags or is out
// of bounds. This is the s_tag(i, addr, len) accessor of paper Fig. 11.
func (m *Memory) RangeTag(addr, length uint64) (tag uint8, ok bool) {
	if length == 0 {
		length = 1
	}
	if addr+length < addr || addr+length > m.size {
		return 0, false
	}
	first := addr / GranuleSize
	last := (addr + length - 1) / GranuleSize
	tag = m.tags[first]
	for g := first + 1; g <= last; g++ {
		if m.tags[g] != tag {
			return 0, false
		}
	}
	return tag, true
}

// CheckAccess performs the tag check for an access of length bytes at the
// untagged address addr using a pointer carrying ptrTag. The return value
// follows the configured mode: sync faults return a *TagFault, async
// faults are latched for PendingFault and return nil.
func (m *Memory) CheckAccess(addr uint64, length uint64, ptrTag uint8, write bool) error {
	if m.mode == ModeDisabled {
		return nil
	}
	memTag, uniform := m.RangeTag(addr, length)
	if uniform && memTag == ptrTag {
		return nil
	}
	if !uniform {
		// Mixed-tag range: report the first mismatching granule.
		memTag = m.TagAt(addr)
		if memTag == ptrTag {
			// Find the granule that differs.
			for a := addr &^ (GranuleSize - 1); a < addr+length; a += GranuleSize {
				if t := m.TagAt(a); t != ptrTag {
					addr, memTag = a, t
					break
				}
			}
		}
	}
	fault := &TagFault{Addr: addr, PtrTag: ptrTag, MemTag: memTag, Write: write}
	sync := m.mode == ModeSync || (m.mode == ModeAsymmetric && write)
	if sync {
		return fault
	}
	fault.Async = true
	if m.pending == nil {
		m.pending = fault
	}
	return nil
}

// PendingFault returns and clears the latched asynchronous fault, if any.
// Callers invoke this at context-switch points (e.g. after a host call or
// when an instance yields), mirroring the hardware's TFSR check.
func (m *Memory) PendingFault() *TagFault {
	f := m.pending
	m.pending = nil
	return f
}

// ZeroAllTags resets every granule to tag zero.
func (m *Memory) ZeroAllTags() {
	for i := range m.tags {
		m.tags[i] = 0
	}
}

// Snapshot/restore accessors: an instance snapshot captures the tag
// state as three values — the per-granule tag image, the deterministic
// RNG state, and the covered size — and restore puts them back without
// re-running the stg loops that created them (the §7.2 cost the
// snapshot exists to avoid).

// CloneTags returns a copy of the per-granule tag image.
func (m *Memory) CloneTags() []uint8 {
	out := make([]uint8, len(m.tags))
	copy(out, m.tags)
	return out
}

// RandState returns the deterministic tag generator's state, so a
// restored instance draws the same tag sequence the snapshotted one
// would have.
func (m *Memory) RandState() uint64 { return m.rng }

// SetRandState restores the tag generator state captured by RandState.
func (m *Memory) SetRandState(s uint64) {
	if s == 0 {
		s = 1
	}
	m.rng = s
}

// RestoreTags overwrites the tag image from src (covering size data
// bytes), remapping granules tagged from to the tag to — the sandbox
// identity of the restoring instance differs from the snapshotted one's
// under per-instance tagging — and clears any latched fault. A from ==
// to remap is a plain bulk copy. The destination is always a private
// array: storage borrowed via AdoptTags is abandoned, never written
// through, so the caller may unmap its old view after RestoreTags
// returns.
func (m *Memory) RestoreTags(src []uint8, size uint64, from, to uint8) {
	if len(m.tags) != len(src) || m.adopted {
		m.tags = make([]uint8, len(src))
		m.adopted = false
	}
	copy(m.tags, src)
	if from != to {
		for i, t := range m.tags {
			if t == from {
				m.tags[i] = to
			}
		}
	}
	m.size = size
	m.pending = nil
}

// AdoptTags replaces the tag storage with tags (covering size data
// bytes) without copying — the copy-on-write restore path hands the
// mmap'd snapshot view straight in, so tag restore is O(1) regardless
// of heap size. The caller guarantees tags stays valid until the next
// AdoptTags/RestoreTags/Grow replaces it.
func (m *Memory) AdoptTags(tags []uint8, size uint64) {
	m.tags = tags
	m.size = size
	m.pending = nil
	m.adopted = true
}

// EnsurePrivate replaces adopted tag storage with a private copy, so
// the borrowed mapping can be unmapped. No-op for owned storage.
func (m *Memory) EnsurePrivate() {
	if !m.adopted {
		return
	}
	private := make([]uint8, len(m.tags))
	copy(private, m.tags)
	m.tags = private
	m.adopted = false
}
