// Quickstart: compile a small C program with the Cage toolchain, run it
// hardened, and watch a heap overflow get caught by (simulated) MTE.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cage"
)

const program = `
extern char* malloc(long n);
extern void free(char* p);

long checksum(long n) {
    long* data = (long*)malloc(n * 8);
    long acc = 0;
    for (long i = 0; i < n; i++) {
        data[i] = i * 3;
        acc += data[i];
    }
    free((char*)data);
    return acc;
}

// An off-by-N write: for bad >= 0 this writes past the allocation.
long oops(long bad) {
    char* buf = malloc(16);
    buf[16 + bad] = 65;
    return (long)buf[0];
}
`

func main() {
	cfg := cage.FullHardening()
	tc := cage.NewToolchain(cfg)
	mod, err := tc.CompileSource(program)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	bin, err := mod.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d bytes of hardened wasm64\n", len(bin))

	rt := cage.NewRuntime(cfg)
	rt.SetStdio(os.Stdout, os.Stderr)
	inst, err := rt.Instantiate(mod)
	if err != nil {
		log.Fatalf("instantiate: %v", err)
	}

	res, err := inst.Call(context.Background(), "checksum", []uint64{1000})
	if err != nil {
		log.Fatalf("checksum: %v", err)
	}
	fmt.Printf("checksum(1000) = %d\n", int64(res.Values[0]))

	// Heap overflow: one byte past the allocation lands in the
	// untagged allocator metadata slot and trips the tag check.
	_, err = inst.Call(context.Background(), "oops", []uint64{0})
	if err == nil {
		log.Fatal("the overflow went unnoticed!")
	}
	if cage.IsMemorySafetyViolation(err) {
		fmt.Printf("overflow caught: %v\n", err)
	} else {
		log.Fatalf("unexpected failure: %v", err)
	}
}
