package cage

import (
	"context"
	"errors"
	"fmt"

	"cage/internal/alloc"
	"cage/internal/core"
	"cage/internal/engine"
	"cage/internal/exec"
)

// Snapshot is a frozen post-initialization image of a module under this
// engine's configuration: the instance state (memory, globals, table,
// MTE tags, PAC keys) paired with the hardened allocator's heap
// bookkeeping, captured after the module's start function — and
// optionally a named init function (Wizer-style pre-initialization) —
// ran once under the normal meter chain. Instances forked from a
// snapshot (pool checkouts, NewFromSnapshot) start in that state
// without re-running any of it.
//
// Snapshots are immutable and safe to fork from concurrently.
type Snapshot struct {
	mod      *Module
	exec     *exec.Snapshot
	heap     alloc.HeapState
	hasHeap  bool
	initFn   string
	initFuel uint64
}

// Module returns the module the snapshot images.
func (s *Snapshot) Module() *Module { return s.mod }

// InitFunction returns the init function the snapshot ran, "" for a
// plain post-start image.
func (s *Snapshot) InitFunction() string { return s.initFn }

// InitFuel returns the fuel the one-time init call consumed — the cost
// every fork skips. It is what a metering embedder (cage-serve) charges
// once at snapshot time instead of per request.
func (s *Snapshot) InitFuel() uint64 { return s.initFuel }

// snapshotSettings collects SnapshotOption state.
type snapshotSettings struct {
	initFn   string
	initArgs []uint64
	callOpts []CallOption
}

// SnapshotOption configures Engine.Snapshot.
type SnapshotOption func(*snapshotSettings)

// WithInit runs the exported function fn(args...) once, after the start
// function, before the image is frozen — the Wizer pre-initialization
// pattern: parse configs, warm caches, allocate long-lived structures
// at snapshot time, then serve every request from the warm fork.
func WithInit(fn string, args ...uint64) SnapshotOption {
	return func(s *snapshotSettings) {
		s.initFn = fn
		s.initArgs = args
	}
}

// WithInitOptions applies per-call options (WithFuel, WithTimeout, ...)
// to the init run, so a hostile init cannot spin forever at snapshot
// time. The fuel it consumes is reported by Snapshot.InitFuel.
func WithInitOptions(opts ...CallOption) SnapshotOption {
	return func(s *snapshotSettings) { s.callOpts = append(s.callOpts, opts...) }
}

// snapKey derives the snapshot cache key: module content hash plus the
// configuration and init spec.
func (e *Engine) snapKey(m *Module, st snapshotSettings) (engine.Key, error) {
	hash, err := m.contentHash()
	if err != nil {
		return engine.Key{}, err
	}
	variant := fmt.Sprintf("snap|%s|init=%s|args=%x", e.cfg.cacheVariant(), st.initFn, st.initArgs)
	return engine.Key{Hash: hash, Variant: variant}, nil
}

// Snapshot captures (memoized on module hash, configuration, and init
// spec) a post-initialization image of m: it instantiates the module
// once — running its start function and, with WithInit, the named init
// function under the normal meter chain — freezes the result in the
// engine's snapshot cache, and registers it as the image the module's
// instance pool forks from. Subsequent calls with the same arguments
// return the cached image without executing anything.
//
// ctx bounds the one-time build (the instantiation may queue on the
// §7.4 tag budget, and the init call honors it like any Call).
func (e *Engine) Snapshot(ctx context.Context, m *Module, opts ...SnapshotOption) (*Snapshot, error) {
	var st snapshotSettings
	for _, o := range opts {
		o(&st)
	}
	key, err := e.snapKey(m, st)
	if err != nil {
		return nil, err
	}
	s, err := e.snapshots.GetOrBuild(key, func() (*Snapshot, error) {
		return e.buildSnapshot(ctx, m, st)
	})
	if err != nil {
		return nil, err
	}
	e.setActiveSnapshot(m, s)
	return s, nil
}

// buildSnapshot instantiates m, runs the optional init, and captures
// the image. The builder instance is closed afterwards, returning its
// sandbox tag; under tag pressure the build reclaims idle pooled
// instances and queues exactly like a pool spawn.
func (e *Engine) buildSnapshot(ctx context.Context, m *Module, st snapshotSettings) (*Snapshot, error) {
	var inst *Instance
	for {
		var err error
		inst, err = e.rt.Instantiate(m)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrSandboxesExhausted) {
			return nil, err
		}
		if e.pools.ReclaimIdle(1) > 0 {
			continue
		}
		select {
		case <-e.rt.sandboxes.Released():
		case <-e.idleWait():
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer inst.Close()
	var fuel uint64
	if st.initFn != "" {
		res, err := inst.Call(ctx, st.initFn, st.initArgs, st.callOpts...)
		if err != nil {
			return nil, fmt.Errorf("cage: snapshot init %q: %w", st.initFn, err)
		}
		fuel = res.Fuel
	}
	return snapshotOf(m, inst, st.initFn, fuel)
}

// snapshotOf freezes inst (instance state + heap bookkeeping) into a
// Snapshot for m.
func snapshotOf(m *Module, inst *Instance, initFn string, initFuel uint64) (*Snapshot, error) {
	es, err := inst.inst.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{mod: m, exec: es, initFn: initFn, initFuel: initFuel}
	if inst.alloc != nil {
		s.heap = inst.alloc.Snapshot()
		s.hasHeap = true
	}
	return s, nil
}

// NewFromSnapshot forks a standalone (un-pooled) instance from s: a
// fresh sandbox tag and PAC-keyed identity over the snapshot's memory
// image, without data-segment replay, whole-memory tagging, or
// start/init execution. The caller owns the instance and must Close it;
// for pooled checkouts just use Call — the pool forks from the module's
// registered snapshot automatically.
func (e *Engine) NewFromSnapshot(s *Snapshot) (*Instance, error) {
	if s == nil {
		return nil, fmt.Errorf("cage: NewFromSnapshot of nil snapshot")
	}
	inst, err := e.rt.instantiate(s.mod, s)
	if err != nil {
		return nil, err
	}
	e.snapshots.NoteRestore()
	return inst, nil
}

// restoreFrom rewinds a live instance to the snapshot: the single
// restore helper the pooled reset path uses (the exec layer's
// RestoreFromSnapshot plus the allocator's bookkeeping).
func (i *Instance) restoreFrom(s *Snapshot, seed uint64) error {
	if err := i.inst.RestoreFromSnapshot(s.exec, seed); err != nil {
		return err
	}
	if i.alloc != nil {
		if s.hasHeap {
			i.alloc.Restore(s.heap)
		} else {
			i.alloc.Reset()
		}
	}
	return nil
}

// activeSnapshot returns the image the module's pool currently forks
// from (nil when none is registered yet). It runs on every pool reset,
// so it is a lock-free read of the published map.
func (e *Engine) activeSnapshot(m *Module) *Snapshot {
	if mp := e.active.Load(); mp != nil {
		return (*mp)[m]
	}
	return nil
}

// publishActiveLocked clones the active map, applies one binding, and
// republishes; replace false preserves an existing binding (the
// first-spawn baseline must not displace an explicit Snapshot that
// landed while the baseline was being captured). Caller holds snapMu.
func (e *Engine) publishActiveLocked(m *Module, s *Snapshot, replace bool) {
	old := e.active.Load()
	n := 1
	if old != nil {
		n += len(*old)
	}
	next := make(map[*Module]*Snapshot, n)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if _, ok := next[m]; ok && !replace {
		return
	}
	next[m] = s
	e.active.Store(&next)
}

// setActiveSnapshot registers s as the image m's pool forks from,
// replacing the automatic post-start baseline (or an earlier init
// image). Instances already checked out pick it up at their next reset.
func (e *Engine) setActiveSnapshot(m *Module, s *Snapshot) {
	e.snapMu.Lock()
	e.publishActiveLocked(m, s, true)
	e.snapMu.Unlock()
}

// captureBaseline freezes a just-instantiated (pristine, post-start)
// instance as the module's automatic fork image, so even modules that
// never see an explicit Engine.Snapshot get copy/COW-fast pool resets.
// Failures are non-fatal: the pool falls back to full resets.
func (e *Engine) captureBaseline(m *Module, inst *Instance) {
	if e.activeSnapshot(m) != nil {
		return
	}
	key, err := e.snapKey(m, snapshotSettings{})
	if err != nil {
		return
	}
	s, err := e.snapshots.GetOrBuild(key, func() (*Snapshot, error) {
		return snapshotOf(m, inst, "", 0)
	})
	if err != nil {
		return
	}
	e.snapMu.Lock()
	e.publishActiveLocked(m, s, false)
	e.snapMu.Unlock()
}

// SnapshotStats snapshots the engine's snapshot-cache counters: cache
// hits/misses/entries plus the number of forks served from cached
// images.
func (e *Engine) SnapshotStats() engine.SnapshotCacheStats { return e.snapshots.Stats() }

// RestoreMode names the restore fast path this build uses: "cow" under
// the cagecow build tag on Linux (forks map a copy-on-write view of the
// frozen image), "copy" otherwise (forks bulk-copy it).
func (e *Engine) RestoreMode() string { return exec.SnapshotRestoreMode() }

// SetAutoSnapshot enables or disables the automatic post-start baseline
// capture at first pool spawn (enabled by default). Disabling it
// restores the pre-snapshot pool behavior — every reset replays data
// segments, re-tags memory, and re-runs the start function — which is
// mainly useful for measuring that cost. Explicit Engine.Snapshot
// images are honored either way.
func (e *Engine) SetAutoSnapshot(enabled bool) { e.autoSnapshotOff.Store(!enabled) }
