package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The stress suite drives the sharded caches and the lock-free pool
// with 64 goroutines each; run under -race it checks the fast paths'
// happens-before edges, and in any mode it checks the counters and
// the no-leak invariants the serve layer depends on.

const stressWorkers = 64

// TestStressCacheHitStorm hammers one hot key plus a sharded spread of
// warm keys from 64 goroutines and checks that every lookup after the
// first resolves to the same value with no lost hits.
func TestStressCacheHitStorm(t *testing.T) {
	var c Cache[int]
	keys := make([]Key, 32)
	for i := range keys {
		keys[i] = KeyOfString(fmt.Sprintf("warm-%d", i), "stress")
	}
	var builds atomic.Uint64
	for _, k := range keys {
		k := k
		if _, err := c.GetOrBuild(k, func() (int, error) {
			builds.Add(1)
			return int(k.Hash[0]), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := keys[rng.Intn(len(keys))]
				v, err := c.GetOrBuild(k, func() (int, error) {
					builds.Add(1)
					return -1, nil
				})
				if err != nil || v != int(k.Hash[0]) {
					panic(fmt.Sprintf("storm lookup: v=%d err=%v", v, err))
				}
			}
		}(w)
	}
	wg.Wait()

	if got := builds.Load(); got != uint64(len(keys)) {
		t.Fatalf("builds = %d, want %d (storm must be all hits)", got, len(keys))
	}
	s := c.Stats()
	if s.Entries != len(keys) {
		t.Fatalf("Entries = %d, want %d", s.Entries, len(keys))
	}
	wantHits := uint64(stressWorkers * 2000)
	if s.Hits != wantHits {
		t.Fatalf("Hits = %d, want %d", s.Hits, wantHits)
	}
	if s.Misses != uint64(len(keys)) {
		t.Fatalf("Misses = %d, want %d", s.Misses, len(keys))
	}
}

// TestStressCacheMissSingleflight releases 64 goroutines at once onto
// each of several cold keys and asserts exactly one build per key, with
// every loser receiving the winner's value.
func TestStressCacheMissSingleflight(t *testing.T) {
	var c Cache[string]
	const keyCount = 8
	var builds [keyCount]atomic.Uint64

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			ki := w % keyCount
			k := KeyOfString(fmt.Sprintf("cold-%d", ki), "stress")
			v, err := c.GetOrBuild(k, func() (string, error) {
				builds[ki].Add(1)
				time.Sleep(time.Millisecond) // widen the join window
				return fmt.Sprintf("built-%d", ki), nil
			})
			if err != nil || v != fmt.Sprintf("built-%d", ki) {
				panic(fmt.Sprintf("singleflight lookup: v=%q err=%v", v, err))
			}
		}(w)
	}
	close(start)
	wg.Wait()

	for ki := range builds {
		if got := builds[ki].Load(); got != 1 {
			t.Fatalf("key %d built %d times, want exactly 1", ki, got)
		}
	}
	s := c.Stats()
	if s.Misses != keyCount {
		t.Fatalf("Misses = %d, want %d", s.Misses, keyCount)
	}
	if s.Hits != uint64(stressWorkers-keyCount) {
		t.Fatalf("Hits = %d, want %d", s.Hits, stressWorkers-keyCount)
	}
}

// stressInst is a Resetter that checks the single-owner invariant: the
// pool must never hand one instance to two checkouts at once.
type stressInst struct {
	inUse  atomic.Bool
	resets atomic.Uint64
	closed atomic.Bool
}

func (s *stressInst) Reset(seed uint64) error {
	s.resets.Add(1)
	return nil
}

func (s *stressInst) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		panic("stressInst closed twice")
	}
	return nil
}

// TestStressPoolChurn runs 64 goroutines of checkout/compute/checkin
// churn with random discards and random ctx-abandoned checkouts over a
// capped pool, then checks ownership was always exclusive and the
// final accounting balances.
func TestStressPoolChurn(t *testing.T) {
	const cap = 8
	var spawned atomic.Uint64
	p := NewPool(cap, func(ctx context.Context) (Resetter, error) {
		spawned.Add(1)
		return &stressInst{}, nil
	})

	const perWorker = 500
	var wg sync.WaitGroup
	var discards, abandons atomic.Uint64
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < perWorker; i++ {
				roll := rng.Intn(100)
				if roll < 5 {
					// Abandon a queued checkout via an already-dead ctx
					// (the queue is usually non-empty: 64 workers, cap 8).
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if inst, err := p.GetContext(ctx); err == nil {
						// The fast path may win before noticing ctx; fine —
						// we own the instance and must return it.
						p.Put(inst)
					} else {
						abandons.Add(1)
					}
					continue
				}
				inst, err := p.Get()
				if err != nil {
					panic(err)
				}
				si := inst.(*stressInst)
				if !si.inUse.CompareAndSwap(false, true) {
					panic("instance checked out twice")
				}
				if si.closed.Load() {
					panic("checked out a closed instance")
				}
				si.inUse.Store(false)
				if roll < 10 {
					p.Discard(inst)
					discards.Add(1)
				} else {
					p.Put(inst)
				}
			}
		}(w)
	}
	wg.Wait()

	s := p.Stats()
	if s.Live != s.Idle {
		t.Fatalf("after churn: Live=%d Idle=%d — checked-out instances leaked", s.Live, s.Idle)
	}
	if s.Live > cap {
		t.Fatalf("Live=%d exceeds cap %d", s.Live, cap)
	}
	if s.Spawned != spawned.Load() {
		t.Fatalf("Spawned=%d, spawn fn ran %d times", s.Spawned, spawned.Load())
	}
	if s.Spawned > uint64(cap+int(discards.Load())) {
		t.Fatalf("Spawned=%d, want ≤ cap(%d)+discards(%d)", s.Spawned, cap, discards.Load())
	}
	if s.Discarded != discards.Load() {
		t.Fatalf("Discarded=%d, want %d", s.Discarded, discards.Load())
	}
	p.Close()
	if after := p.Stats(); after.Live != 0 || after.Idle != 0 {
		t.Fatalf("after Close: Live=%d Idle=%d, want 0/0", after.Live, after.Idle)
	}
}

// TestStressPoolTagExhaustion models §7.4 tag contention: a pool whose
// spawn fails once the shared budget is taken. 64 checkouts contend for
// 4 instances; every one must either get an instance or abandon on its
// own ctx, queued checkouts must drain roughly in order (FIFO-ish:
// broadcast wakeups do not starve anyone), and nothing leaks.
func TestStressPoolTagExhaustion(t *testing.T) {
	const budget = 4
	var tags atomic.Int64
	errBudget := errors.New("tag budget exhausted")
	p := NewPool(0 /* cap does not see the shared budget */, func(ctx context.Context) (Resetter, error) {
		for {
			n := tags.Load()
			if n >= budget {
				return nil, errBudget
			}
			if tags.CompareAndSwap(n, n+1) {
				return &stressInst{}, nil
			}
		}
	})

	var served, abandoned atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 104729))
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(5))*time.Millisecond)
				inst, err := p.GetContext(ctx)
				cancel()
				switch {
				case err == nil:
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					p.Put(inst)
					served.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					abandoned.Add(1)
				case errors.Is(err, errBudget):
					// Legal only in the startup race: a spawn can lose the
					// budget before any winner has registered as live.
				default:
					panic(fmt.Sprintf("unexpected checkout error: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no checkout ever succeeded under tag contention")
	}
	s := p.Stats()
	if s.Live != s.Idle {
		t.Fatalf("Live=%d Idle=%d — contended checkouts leaked instances", s.Live, s.Idle)
	}
	if s.Live > budget {
		t.Fatalf("Live=%d exceeds shared budget %d", s.Live, budget)
	}
	if got := tags.Load(); got != int64(s.Live) {
		t.Fatalf("budget holds %d tags but pool reports %d live", got, s.Live)
	}
	t.Logf("served=%d abandoned=%d live=%d", served.Load(), abandoned.Load(), s.Live)
}

// TestStressPoolQueueFIFOIsh checks that under sustained exhaustion the
// condvar queue drains without starvation: with checkins trickling in
// one at a time, every one of 64 queued checkouts completes.
func TestStressPoolQueueFIFOIsh(t *testing.T) {
	p := NewPool(1, func(ctx context.Context) (Resetter, error) {
		return &stressInst{}, nil
	})
	first, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst, err := p.GetContext(context.Background())
			if err != nil {
				panic(err)
			}
			done.Add(1)
			p.Put(inst)
		}()
	}

	// Release the single instance; each checkin hands it to exactly one
	// of the remaining waiters until all 64 have held it.
	p.Put(first)
	deadline := time.Now().Add(10 * time.Second)
	for done.Load() < stressWorkers {
		if time.Now().After(deadline) {
			t.Fatalf("queue starved: only %d/%d waiters served", done.Load(), stressWorkers)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	s := p.Stats()
	if s.Spawned != 1 {
		t.Fatalf("Spawned=%d, want 1 (everyone recycles the same instance)", s.Spawned)
	}
	if s.Recycled != stressWorkers+1 {
		t.Fatalf("Recycled=%d, want %d", s.Recycled, stressWorkers+1)
	}
}

// TestStressLegacyParity runs the churn workload against the legacy
// single-mutex layout so the A/B baseline stays correct, not just slow.
func TestStressLegacyParity(t *testing.T) {
	SetFastPaths(false)
	defer SetFastPaths(true)

	p := NewPool(4, func(ctx context.Context) (Resetter, error) {
		return &stressInst{}, nil
	})
	if p.fast != nil {
		t.Fatal("legacy pool latched the fast stack")
	}
	var c Cache[int]
	k := KeyOfString("legacy", "stress")

	var wg sync.WaitGroup
	for w := 0; w < stressWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.GetOrBuild(k, func() (int, error) { return 1, nil }); err != nil {
					panic(err)
				}
				inst, err := p.Get()
				if err != nil {
					panic(err)
				}
				p.Put(inst)
			}
		}()
	}
	wg.Wait()

	if s := p.Stats(); s.Live != s.Idle || s.Live > 4 {
		t.Fatalf("legacy churn: Live=%d Idle=%d", s.Live, s.Idle)
	}
	if s := c.Stats(); s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("legacy cache: %+v", s)
	}
}
