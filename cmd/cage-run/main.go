// Command cage-run executes a wasm binary under the Cage runtime.
//
// Modules are decoded through the engine's compiled-module cache and
// invoked on pooled instances, so -repeat N re-invocations recycle one
// hardened instance instead of re-instantiating N times.
//
// Invocations run through the context-first Call API: -timeout bounds
// each invocation's wall time (a guest infinite loop is interrupted
// with a TrapInterrupted trap) and -fuel meters it deterministically
// (TrapFuelExhausted on an exceeded budget).
//
// Usage:
//
// With -preinit fn the engine runs fn() once, snapshots the post-init
// state (Wizer-style pre-initialization), and serves every invocation
// from an instance forked off the frozen image — -repeat N then prices
// warm checkouts instead of cold starts.
//
// Usage:
//
//	cage-run [-config full|hardened|baseline32|baseline64|memsafety|ptrauth|sandbox]
//	         [-invoke name] [-args "1 2 3"] [-repeat n] [-stats]
//	         [-timeout d] [-fuel n] [-preinit fn] module.wasm
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cage"
)

func main() {
	cfgName := flag.String("config", "full", "runtime configuration")
	invoke := flag.String("invoke", "main", "exported function to call")
	argStr := flag.String("args", "", "space-separated integer arguments")
	repeat := flag.Int("repeat", 1, "invoke the function n times on pooled instances")
	stats := flag.Bool("stats", false, "print engine cache/pool statistics to stderr")
	timeout := flag.Duration("timeout", 0, "per-invocation deadline (0 = none)")
	fuel := flag.Uint64("fuel", 0, "per-invocation fuel budget in timing-model events (0 = unmetered)")
	preinit := flag.String("preinit", "", "run this exported function once, snapshot the result, and fork every invocation from it")
	flag.Parse()

	if flag.NArg() != 1 || *repeat < 1 {
		fmt.Fprintln(os.Stderr, "usage: cage-run [flags] module.wasm")
		os.Exit(2)
	}
	cfg, err := cage.ConfigByName(*cfgName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(2)
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	var args []uint64
	for _, f := range strings.Fields(*argStr) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-run: bad argument %q: %v\n", f, err)
			os.Exit(2)
		}
		args = append(args, uint64(v))
	}

	eng := cage.NewEngine(cfg)
	defer eng.Close()
	eng.Runtime().SetStdio(os.Stdout, os.Stderr)
	mod, err := eng.DecodeModule(bin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
		os.Exit(1)
	}
	var opts []cage.CallOption
	if *timeout > 0 {
		opts = append(opts, cage.WithTimeout(*timeout))
	}
	if *fuel > 0 {
		opts = append(opts, cage.WithFuel(*fuel))
	}
	if *preinit != "" {
		snap, err := eng.Snapshot(context.Background(), mod,
			cage.WithInit(*preinit), cage.WithInitOptions(opts...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-run: preinit %q: %v\n", *preinit, err)
			os.Exit(1)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "cage-run: preinit %q consumed %d fuel once; forking via %s restore\n",
				*preinit, snap.InitFuel(), eng.RestoreMode())
		}
	}
	var res cage.Result
	var fuelTotal uint64
	for i := 0; i < *repeat; i++ {
		res, err = eng.Call(context.Background(), mod, *invoke, args, opts...)
		fuelTotal += res.Fuel
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-run: %v\n", err)
			os.Exit(1)
		}
	}
	for _, v := range res.Values {
		fmt.Printf("%d (0x%x)\n", int64(v), v)
	}
	if *stats {
		s := eng.Stats()
		fmt.Fprintf(os.Stderr, "cage-run: cache %d/%d hit, pool spawned %d recycled %d, fuel %d\n",
			s.Cache.Hits, s.Cache.Hits+s.Cache.Misses, s.Pools.Spawned, s.Pools.Recycled, fuelTotal)
	}
}
