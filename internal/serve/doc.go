// Package serve is the multi-tenant execution service over the cage
// engine: the HTTP front end the paper's economics argue for — when
// hardware-backed sandboxing makes isolation cheap (§7), one host can
// pack many mutually-distrusting tenants, so the binding constraint
// becomes admission, quotas, and observability, not page tables.
//
// # Surface
//
//	POST /v1/modules   upload a module (wasm binary or MiniC source);
//	                   responds with its content-hash id ("sha256:…")
//	GET  /v1/modules   list registered modules
//	POST /v1/invoke    invoke an exported function of a registered module
//	GET  /v1/stats     JSON counters per tenant and per module
//	GET  /metrics      the same counters in Prometheus text format
//	GET  /healthz      liveness
//
// Tenants are named by the X-Cage-Tenant request header (absent means
// the "default" tenant). A tenant is a quota namespace and a metrics
// namespace — nothing more; module ids are global (content-addressed,
// so two tenants uploading the same bytes share one compiled module,
// one lowered program, and one instance pool). The header is
// unauthenticated, so per-tenant state is bounded: once MaxTenants
// distinct names exist, unknown names share one aggregate tenant
// (labeled OverflowTenant) instead of growing the tenant map and the
// metrics label space without bound; names configured in
// Options.Tenants always keep their own state.
//
// # Quota model
//
// A QuotaPolicy bounds a tenant along the exact per-call axes the
// engine already enforces (cage.CallOption): fuel (deterministic
// timing-model events), wall-clock timeout, memory pages, frame depth,
// and value-stack words. The policy is a ceiling, not a default the
// guest can escape: a request may ask for *less* fuel or time than the
// policy grants, never more — requests above the cap are silently
// clamped. Enforcement is the interpreter's own meter chain, so a
// tenant's `for(;;);` is interrupted at the next branch checkpoint,
// the trapped instance is reset before the pool reuses it, and its
// §7.4 sandbox tag is back in service for the next request — a tenant
// can waste its own budget, never the host's.
//
// Registry quotas are enforced before resources are consumed, not
// after: an upload from a tenant with no MaxModules headroom is
// refused before its body is compiled, and the quota charge is
// reserved under the registry lock before the entry becomes visible,
// so a rejected upload leaves no registry entry, no engine-cache
// slot, and no free cached re-upload path. Upload bodies are bounded
// twice — by the tenant's MaxModuleBytes and by the server-wide
// MaxUploadBytes backstop, which holds even for tenants with no byte
// quota of their own.
//
// # Admission control and queueing
//
// Requests pass two gates. The first is per-tenant admission: at most
// MaxConcurrent invocations in flight, with at most MaxQueue more
// waiting; a request past both bounds is rejected immediately with
// 429 and a Retry-After hint, so a bursty tenant sheds its own load
// instead of growing an unbounded goroutine queue. The wait is
// context-bound: a client that disconnects while queued abandons its
// slot at once.
//
// The second gate is the engine's: checkouts queue on the per-module
// pool cap and on the shared §7.4 sandbox-tag budget, again bound to
// the request context (Pool.GetContext). The tenant gate bounds how
// much load one tenant may present; the pool gate arbitrates the
// hardware budget among the admitted. Queue depth and in-flight
// counts per tenant, and pool occupancy per module, are exported on
// /v1/stats and /metrics.
//
// # Privilege boundary
//
// Guests are confined by the sandbox configuration the server was
// started with (MTE sandboxing, software bounds, or guard pages — the
// Table 3 presets). The daemon itself adds no host functions beyond
// the runtime's built-in surface (hardened libc, WASI stdio, env
// helpers), so an uploaded module's reach is: its own linear memory,
// its own hardened heap, and stdout/stderr of the daemon process.
// Cross-tenant isolation rests on three mechanisms, from innermost
// out: the sandbox (a guest cannot address another instance's
// memory), the pool reset protocol (an instance is re-zeroed,
// re-tagged, and re-seeded before any reuse, so no tenant observes
// another's heap through recycling), and per-tenant metrics/quota
// namespaces (a tenant cannot read — or exhaust — another's
// counters or concurrency slots). Uploads are untrusted input: the
// decoder and validator run before registration, request bodies are
// size-capped, and malformed requests are answered with structured
// JSON errors, never a panic (FuzzServeRequest pins this).
package serve
