package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"cage/internal/wasm"
)

// spinModule is a guest infinite loop: loop { br 0 }.
func spinModule() *wasm.Module {
	return buildModule(nil, []wasm.ValType{wasm.I64}, nil,
		wasm.Loop(wasm.BlockVoid),
		wasm.Br(0),
		wasm.End(),
		wasm.I64Const(0),
		wasm.End(),
	)
}

// countModule loops n times and returns n.
func countModule() *wasm.Module {
	return buildModule([]wasm.ValType{wasm.I64}, []wasm.ValType{wasm.I64},
		[]wasm.ValType{wasm.I64},
		wasm.Block(wasm.BlockVoid),
		wasm.Loop(wasm.BlockVoid),
		wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op(wasm.OpI64GeS), wasm.BrIf(1),
		wasm.LocalGet(1), wasm.I64Const(1), wasm.Op(wasm.OpI64Add), wasm.LocalSet(1),
		wasm.Br(0),
		wasm.End(),
		wasm.End(),
		wasm.LocalGet(1),
		wasm.End(),
	)
}

func TestInvokeWithContextInterruptsLoop(t *testing.T) {
	inst, err := NewInstance(spinModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = inst.InvokeWith(ctx, "f", nil, CallOptions{})
	if !IsTrap(err, TrapInterrupted) {
		t.Fatalf("InvokeWith = %v, want TrapInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("trap does not wrap the context error: %v", err)
	}
	// The instance must remain usable after the unwind.
	res, err := inst.InvokeWith(context.Background(), "f", nil, CallOptions{Fuel: 100})
	if !IsTrap(err, TrapFuelExhausted) {
		t.Fatalf("second call = %v (res %+v), want TrapFuelExhausted", err, res)
	}
}

func TestInvokeWithFuelDeterministic(t *testing.T) {
	inst, err := NewInstance(countModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := inst.InvokeWith(context.Background(), "f", []uint64{1000}, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Values[0] != 1000 || full.Fuel == 0 {
		t.Fatalf("unmetered run = %+v", full)
	}

	var readings []uint64
	for i := 0; i < 3; i++ {
		r, err := inst.InvokeWith(context.Background(), "f", []uint64{1000},
			CallOptions{Fuel: full.Fuel / 3})
		if !IsTrap(err, TrapFuelExhausted) {
			t.Fatalf("metered run %d = %v, want TrapFuelExhausted", i, err)
		}
		readings = append(readings, r.Fuel)
	}
	if readings[0] != readings[1] || readings[1] != readings[2] {
		t.Fatalf("fuel at exhaustion not deterministic: %v", readings)
	}

	// An exact budget completes: metering must not change execution.
	r, err := inst.InvokeWith(context.Background(), "f", []uint64{1000},
		CallOptions{Fuel: full.Fuel})
	if err != nil {
		t.Fatalf("run with exact fuel: %v", err)
	}
	if r.Fuel != full.Fuel {
		t.Errorf("metered fuel %d != unmetered fuel %d", r.Fuel, full.Fuel)
	}
}

func TestInvokeWithMemoryLimit(t *testing.T) {
	// f() = memory.grow(4): old page count on success, -1 on refusal.
	m := i64m(wasm.I64Const(4), wasm.Op(wasm.OpMemoryGrow), wasm.End())

	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.InvokeWith(context.Background(), "f", nil,
		CallOptions{MemoryLimitPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != ^uint64(0) {
		t.Fatalf("grow under a 2-page cap = %d, want -1", int64(res.Values[0]))
	}

	// The cap is per-call: without it the same grow (to 5 pages, within
	// the module's declared max of 16) succeeds.
	res, err = inst.InvokeWith(context.Background(), "f", nil, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1 {
		t.Fatalf("uncapped grow = %d, want old page count 1", int64(res.Values[0]))
	}

	// memory.grow 0 is the size-query idiom and must succeed even under
	// a cap below the current size.
	q := i64m(wasm.I64Const(0), wasm.Op(wasm.OpMemoryGrow), wasm.End())
	qi, err := NewInstance(q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = qi.InvokeWith(context.Background(), "f", nil, CallOptions{MemoryLimitPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1 {
		t.Fatalf("grow(0) under a sub-current cap = %d, want 1", int64(res.Values[0]))
	}
}

func TestMemoryGrowDeltaOverflowFails(t *testing.T) {
	// A guest-controlled delta that wraps the page count must fail with
	// -1, not shrink memory while reporting success.
	m := i64m(wasm.I64Const(-1), wasm.Op(wasm.OpMemoryGrow), wasm.End())
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != ^uint64(0) {
		t.Fatalf("wrapping grow = %d, want -1", int64(res[0]))
	}
	if got := inst.MemorySize(); got != wasm.PageSize {
		t.Fatalf("memory size after failed grow = %d, want %d", got, wasm.PageSize)
	}
}

func TestInvokeWithStackDepth(t *testing.T) {
	// f(n): n <= 0 ? 0 : f(n-1)+1 via direct recursion.
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 16, HasMax: true}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{
		wasm.Block(wasm.BlockVoid),
		wasm.LocalGet(0), wasm.I64Const(0), wasm.Op(wasm.OpI64GtS), wasm.BrIf(0),
		wasm.I64Const(0), wasm.Op(wasm.OpReturn),
		wasm.End(),
		wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Sub),
		wasm.Call(0),
		wasm.I64Const(1), wasm.Op(wasm.OpI64Add),
		wasm.End(),
	}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}

	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.InvokeWith(context.Background(), "f", []uint64{100},
		CallOptions{MaxCallDepth: 10})
	if !IsTrap(err, TrapCallDepth) {
		t.Fatalf("rec(100) under depth 10 = %v, want TrapCallDepth", err)
	}
	// The override is per-call.
	res, err := inst.InvokeWith(context.Background(), "f", []uint64{100}, CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 100 {
		t.Fatalf("rec(100) = %d, want 100", res.Values[0])
	}
}

// TestNestedInvokeWithDoesNotMaskOuterDeadline: a host callback that
// re-enters InvokeWith with its own meter (here a large fuel budget on
// a background context) must not shadow the outer call's deadline —
// checkpoints walk the meter chain.
func TestNestedInvokeWithDoesNotMaskOuterDeadline(t *testing.T) {
	m := &wasm.Module{}
	tVoid := m.AddType(wasm.FuncType{})
	tI64 := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 16, HasMax: true}, Memory64: true}}
	m.Imports = []wasm.Import{{Module: "env", Name: "reenter", TypeIdx: tVoid}}
	m.Funcs = []wasm.Function{
		// g: call the host, which re-enters spin with its own meter.
		{TypeIdx: tI64, Body: []wasm.Instr{
			wasm.Call(0), wasm.I64Const(0), wasm.End(),
		}},
		// spin: loop { br 0 }.
		{TypeIdx: tI64, Body: []wasm.Instr{
			wasm.Loop(wasm.BlockVoid), wasm.Br(0), wasm.End(),
			wasm.I64Const(0), wasm.End(),
		}},
	}
	m.Exports = []wasm.Export{
		{Name: "g", Kind: wasm.ExportFunc, Idx: 1},
		{Name: "spin", Kind: wasm.ExportFunc, Idx: 2},
	}

	linker := NewLinker()
	linker.Define("env", "reenter", HostFunc{
		Type: wasm.FuncType{},
		Fn: func(hc *HostContext, _ []uint64) ([]uint64, error) {
			// A bounded-but-large inner budget: if the chain is broken
			// the outer deadline is ignored until this runs dry, and the
			// test observes the wrong trap code instead of hanging.
			_, err := hc.Instance().InvokeWith(context.Background(), "spin", nil,
				CallOptions{Fuel: 100_000_000})
			return nil, err
		},
	})
	inst, err := NewInstance(m, Config{Linker: linker})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = inst.InvokeWith(ctx, "g", nil, CallOptions{})
	if !IsTrap(err, TrapInterrupted) {
		t.Fatalf("nested call = %v, want the outer TrapInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("outer deadline took %v to fire through the nested meter", elapsed)
	}
}

func TestInvokeWithBackgroundIsUnmetered(t *testing.T) {
	inst, err := NewInstance(countModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.InvokeWith(context.Background(), "f", []uint64{10}, CallOptions{}); err != nil {
		t.Fatal(err)
	}
	if inst.meter != nil {
		t.Error("meter armed for a background-context, optionless call")
	}
}
