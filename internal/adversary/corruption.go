package adversary

import "cage"

// In-sandbox corruption scenarios: intra-instance heap and stack
// smashing that stays inside one allocation — one MTE tag granule — so
// no tag check, bounds check, or pointer authentication can see it.
// This is the corruption the paper's §3 threat model explicitly leaves
// to the guest program: WebAssembly (and Cage) isolate allocations from
// each other and the sandbox from the host, not a program from itself.
// The oracle therefore expects exploited under every configuration;
// a preset that trapped here would be a false positive.

// CorruptionScenarios returns the in-sandbox corruption family.
func CorruptionScenarios() []Scenario {
	return []Scenario{
		&prog{
			name:   "intra-allocation-heap-overflow",
			family: "corruption",
			// One malloc carries one tag: slots 0..5 model a data
			// buffer and slots 6..7 a control field of the same logical
			// record. Overflowing the buffer clobbers the field without
			// ever leaving the allocation.
			source: `
extern char* malloc(long n);
long attack(long evil) {
    long* record = (long*)malloc(8 * 8);
    record[6] = 777;
    long len = 6;
    if (evil) { len = 7; }
    for (long i = 0; i < len; i++) { record[i] = -1; }
    if (record[6] != 777) { return 1; }
    return 0;
}`,
			entry:    "attack",
			arg:      1,
			expect:   expectCorruption,
			classify: classifyDamage,
		},
		&prog{
			name:   "intra-frame-stack-smash",
			family: "corruption",
			// The stack sanitizer tags each stack array as one unit, so
			// an overflow inside the array — the parser state machine
			// whose slot 3 is the privilege flag — is in-bounds for
			// every check any configuration performs.
			source: `
long attack(long evil) {
    long state[4];
    state[3] = 0;
    long n = 3;
    if (evil) { n = 4; }
    for (long i = 0; i < n; i++) { state[i] = 7; }
    if (state[3] != 0) { return 1; }
    return 0;
}`,
			entry:    "attack",
			arg:      1,
			expect:   expectCorruption,
			classify: classifyDamage,
		},
	}
}

// expectCorruption: unmitigated by every configuration, by design.
func expectCorruption(cfg cage.Config) Outcome {
	return Outcome{Verdict: VerdictExploited}
}
