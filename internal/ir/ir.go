package ir

import (
	"fmt"

	"cage/internal/wasm"
)

// Op is a lowered opcode. Control flow, calls, and memory accesses get
// dedicated dense opcodes; pure value (numeric) instructions pass
// through as OpNumericBase+wasm-opcode so the executor's numeric ALU
// keeps a single switch.
type Op uint16

// Lowered opcodes. The memory-access family is specialized at lower
// time on the instance's sandboxing strategy (paper Figs. 12–13) so the
// hot dispatch loop never branches on the mode:
//
//   - G32: wasm32 guard-page sandboxing (no per-access check cost)
//   - B64: wasm64 software bounds check; Tag variants add the MTE
//     memory-safety tag check; NC variants model a disabled (buggy)
//     bounds check, limited only by the host mapping
//   - MTE: MTE-based sandboxing (index mask + tag check); the NC
//     variant drops the mask
const (
	OpInvalid Op = iota

	// Control flow, fully resolved to absolute lowered PCs.
	OpUnreachable
	OpGoto    // unconditional jump, no cost event (else-arm skip)
	OpBr      // unconditional branch with stack repair (br)
	OpBrIf    // pop cond, branch if non-zero (br_if)
	OpBrIfZ   // pop cond, branch if zero (the "if" conditional)
	OpBrTable // pop index, branch through Targets (default last)
	OpReturn  // explicit return
	OpRetEnd  // fall-through function epilogue, no cost event

	// Calls.
	OpCall         // A = callee index, B = param count
	OpCallIndirect // A = type index, B = param count

	// Parametric / variable / constant.
	OpDrop
	OpSelect
	OpLocalGet  // A = local index
	OpLocalSet  // A = local index
	OpLocalTee  // A = local index
	OpGlobalGet // A = global index
	OpGlobalSet // A = global index
	OpConst     // A = raw value bits (i32/i64/f32/f64 alike)

	// Memory management and bulk ops.
	OpMemorySize
	OpMemoryGrow
	OpMemoryFill
	OpMemoryCopy

	// Cage segment ops. A = static offset immediate.
	OpSegmentNew
	OpSegmentSetTag
	OpSegmentFree

	// Pointer authentication. The Nop variants are chosen at lower time
	// when the feature is off: they keep the timing-model event (the
	// paper's software-fallback deployment still executes the
	// instruction) but touch nothing.
	OpPtrSign
	OpPtrAuth
	OpPtrSignNop
	OpPtrAuthNop

	// Loads: A = memarg offset, B = size<<32 | wasm opcode (extension).
	OpLoadG32
	OpLoadG32NC
	OpLoadB64
	OpLoadB64NC
	OpLoadB64Tag
	OpLoadB64NCTag
	OpLoadMTE
	OpLoadMTENC

	// Stores: same immediates as loads.
	OpStoreG32
	OpStoreG32NC
	OpStoreB64
	OpStoreB64NC
	OpStoreB64Tag
	OpStoreB64NCTag
	OpStoreMTE
	OpStoreMTENC

	// OpFence is the Swivel-style speculation barrier the hardened
	// lowering (Config.Harden) inserts immediately before every indirect
	// branch (call_indirect, br_table) and every return. It has no
	// semantic effect — no operands, no stack motion — and exists purely
	// to charge the timing model's fence event, so a hardened program is
	// bit-identical to its unhardened twin in results and traps while
	// the mitigation tax stays visible in the event stream.
	OpFence

	numNamedOps
)

// OpNumericBase offsets pass-through numeric opcodes: a lowered op
// >= OpNumericBase encodes wasm.Opcode(op - OpNumericBase).
const OpNumericBase Op = 0x100

// IsNumeric reports whether op is a pass-through numeric opcode.
func (op Op) IsNumeric() bool { return op >= OpNumericBase }

// Wasm returns the wasm opcode of a pass-through numeric op.
func (op Op) Wasm() wasm.Opcode { return wasm.Opcode(op - OpNumericBase) }

// IsLoad reports whether op is a lowered load.
func (op Op) IsLoad() bool { return op >= OpLoadG32 && op <= OpLoadMTENC }

// IsStore reports whether op is a lowered store.
func (op Op) IsStore() bool { return op >= OpStoreG32 && op <= OpStoreMTENC }

var opNames = [...]string{
	OpInvalid: "invalid", OpUnreachable: "unreachable", OpGoto: "goto",
	OpBr: "br", OpBrIf: "br_if", OpBrIfZ: "br_ifz", OpBrTable: "br_table",
	OpReturn: "return", OpRetEnd: "ret_end",
	OpCall: "call", OpCallIndirect: "call_indirect",
	OpDrop: "drop", OpSelect: "select",
	OpLocalGet: "local.get", OpLocalSet: "local.set", OpLocalTee: "local.tee",
	OpGlobalGet: "global.get", OpGlobalSet: "global.set", OpConst: "const",
	OpMemorySize: "memory.size", OpMemoryGrow: "memory.grow",
	OpMemoryFill: "memory.fill", OpMemoryCopy: "memory.copy",
	OpSegmentNew: "segment.new", OpSegmentSetTag: "segment.set_tag",
	OpSegmentFree: "segment.free",
	OpPtrSign:     "ptr_sign", OpPtrAuth: "ptr_auth",
	OpPtrSignNop: "ptr_sign.nop", OpPtrAuthNop: "ptr_auth.nop",
	OpLoadG32: "load.g32", OpLoadG32NC: "load.g32.nc",
	OpLoadB64: "load.b64", OpLoadB64NC: "load.b64.nc",
	OpLoadB64Tag: "load.b64.tag", OpLoadB64NCTag: "load.b64.nc.tag",
	OpLoadMTE: "load.mte", OpLoadMTENC: "load.mte.nc",
	OpStoreG32: "store.g32", OpStoreG32NC: "store.g32.nc",
	OpStoreB64: "store.b64", OpStoreB64NC: "store.b64.nc",
	OpStoreB64Tag: "store.b64.tag", OpStoreB64NCTag: "store.b64.nc.tag",
	OpStoreMTE: "store.mte", OpStoreMTENC: "store.mte.nc",
	OpFence: "fence",
}

// String returns the lowered mnemonic.
func (op Op) String() string {
	if op.IsNumeric() {
		return op.Wasm().String()
	}
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("irop(0x%x)", uint16(op))
}

// BranchTarget is one resolved br_table destination.
type BranchTarget struct {
	PC    uint32 // absolute lowered pc
	Keep  uint32 // operand-stack height to truncate to
	Arity uint32 // values carried over the branch
}

// PackBranch packs the stack repair of a branch into the A immediate.
func PackBranch(keep, arity int) uint64 {
	return uint64(keep)<<32 | uint64(uint32(arity))
}

// BranchKeep unpacks the stack height from a packed branch immediate.
func BranchKeep(a uint64) int { return int(a >> 32) }

// BranchArity unpacks the carried-value count from a packed immediate.
func BranchArity(a uint64) int { return int(uint32(a)) }

// PackMem packs a memory access's byte width and originating wasm
// opcode (which fixes the load extension) into the B immediate.
func PackMem(size uint64, op wasm.Opcode) uint64 {
	return size<<32 | uint64(uint32(op))
}

// MemSize unpacks the access width from a packed memory immediate.
func MemSize(b uint64) uint64 { return b >> 32 }

// MemOp unpacks the originating wasm opcode from a packed immediate.
func MemOp(b uint64) wasm.Opcode { return wasm.Opcode(uint32(b)) }

// Instr is one lowered instruction. The meaning of A and B depends on
// the opcode:
//
//	OpBr/OpBrIf/OpBrIfZ  A = PackBranch(keep, arity), B = target pc
//	OpGoto               B = target pc
//	OpBrTable            Targets (default entry last)
//	OpReturn/OpRetEnd    A = result count
//	OpCall               A = callee function index, B = param count
//	OpCallIndirect       A = type index, B = param count
//	OpLocal*/OpGlobal*   A = index
//	OpConst              A = value bits
//	loads/stores         A = memarg offset, B = PackMem(size, wasmOp)
//	OpSegment*           A = static offset immediate
type Instr struct {
	Op      Op
	A       uint64
	B       uint64
	Targets []BranchTarget
}

// String renders a readable disassembly of the lowered instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpGoto:
		return fmt.Sprintf("%s ->%d", in.Op, in.B)
	case OpBr, OpBrIf, OpBrIfZ:
		return fmt.Sprintf("%s ->%d keep=%d arity=%d",
			in.Op, in.B, BranchKeep(in.A), BranchArity(in.A))
	case OpBrTable:
		s := fmt.Sprintf("%s", in.Op)
		for i, t := range in.Targets {
			sep := " "
			if i == len(in.Targets)-1 {
				sep = " default="
			}
			s += fmt.Sprintf("%s->%d(keep=%d,arity=%d)", sep, t.PC, t.Keep, t.Arity)
		}
		return s
	case OpReturn, OpRetEnd:
		return fmt.Sprintf("%s arity=%d", in.Op, in.A)
	case OpCall:
		return fmt.Sprintf("%s func=%d nargs=%d", in.Op, in.A, in.B)
	case OpCallIndirect:
		return fmt.Sprintf("%s type=%d nargs=%d", in.Op, in.A, in.B)
	case OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpConst:
		return fmt.Sprintf("%s %#x", in.Op, in.A)
	case OpSegmentNew, OpSegmentSetTag, OpSegmentFree:
		return fmt.Sprintf("%s offset=%d", in.Op, in.A)
	case OpFence:
		return "fence ;; speculation barrier (hardened)"
	}
	if in.Op.IsLoad() || in.Op.IsStore() {
		return fmt.Sprintf("%s offset=%d size=%d (%s)",
			in.Op, in.A, MemSize(in.B), MemOp(in.B))
	}
	return in.Op.String()
}

// Mode is the address-translation strategy a program was lowered for.
// It mirrors the exec package's sandboxing strategies; the lowered
// memory opcodes bake the mode in so dispatch never re-derives it.
type Mode int

// Address-translation modes.
const (
	// ModeGuard32 is 32-bit wasm with virtual-memory guard pages.
	ModeGuard32 Mode = iota
	// ModeBounds64 is wasm64 with explicit software bounds checks.
	ModeBounds64
	// ModeMTE64 is Cage's MTE-based sandboxing.
	ModeMTE64
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGuard32:
		return "guard32"
	case ModeBounds64:
		return "bounds64"
	case ModeMTE64:
		return "mte64"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config selects the specialization a module is lowered under. It is
// derived from the instance configuration (core.Features plus the
// module's memory kind) by the exec layer, and is part of the cache key
// for lowered programs: two configs that differ in any field produce
// distinct instruction streams.
type Config struct {
	// Mode is the address-translation strategy.
	Mode Mode
	// SkipBounds drops software checks (the CVE-2023-26489-style buggy
	// lowering of paper §3), selecting the NC opcode variants.
	SkipBounds bool
	// MemSafety adds MTE tag checks to Bounds64 accesses.
	MemSafety bool
	// PtrAuth enables i64.pointer_sign/auth; off lowers them to the
	// event-only Nop variants.
	PtrAuth bool
	// Harden inserts OpFence speculation barriers before indirect
	// branches and returns (the Swivel-style hardened preset). Purely a
	// timing-model change: the lowered semantics are unaffected.
	Harden bool
}

// Func is one lowered function body.
//
// Frame layout: one activation of the function occupies FrameSize
// contiguous value slots in the executor's arena —
//
//	slot [0, NumParams)                      parameters
//	slot [NumParams, NumParams+NumLocals)    declared locals
//	slot [StackBase(), FrameSize)            operand stack (MaxStack deep)
//
// Local index i (the immediate of OpLocalGet/Set/Tee) is frame-relative
// slot i, so a caller's operand-stack top can become the callee's
// parameter slots in place: the frame machine opens the callee frame at
// the caller's stack top minus the argument count, with no copy.
type Func struct {
	// NumParams/NumResults mirror the function signature; NumLocals is
	// the count of declared (non-parameter) locals.
	NumParams  int
	NumResults int
	NumLocals  int
	// MaxStack is the operand-stack high-water mark, precomputed so the
	// executor can size the frame once, exactly.
	MaxStack int
	// FrameSize is the total number of contiguous arena slots one
	// activation needs: NumParams + NumLocals + MaxStack. Computed at
	// lower time; the frame machine's exact arena bound is a sum of
	// these.
	FrameSize int
	// Code is the flat lowered instruction stream. Every function ends
	// with OpRetEnd; branch targets are absolute indices into Code.
	Code []Instr
}

// StackBase returns the frame-relative slot where the operand stack
// begins: the first slot past the parameters and declared locals.
func (f *Func) StackBase() int { return f.NumParams + f.NumLocals }

// Program is a module lowered under one Config. Programs are immutable
// after Lower and safe to share across concurrent instances; the engine
// caches them per (module content hash, config).
type Program struct {
	Cfg   Config
	Funcs []Func
}

// Matches reports whether the program can execute module m under cfg —
// the compatibility check instances run before adopting a shared
// (cached) program.
func (p *Program) Matches(m *wasm.Module, cfg Config) bool {
	return p != nil && p.Cfg == cfg && len(p.Funcs) == len(m.Funcs)
}
