package cage

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cage/internal/arch"
	"cage/internal/exec"
)

// CallOption bounds a single Call. Options compose freely:
//
//	res, err := eng.Call(ctx, mod, "sum", []uint64{100},
//	    cage.WithTimeout(50*time.Millisecond),
//	    cage.WithFuel(1_000_000))
type CallOption func(*callSettings)

// callSettings is the resolved option set for one call.
type callSettings struct {
	fuel        uint64
	stackDepth  int
	stackWords  uint64
	memPages    uint64
	timeout     time.Duration
	deadline    time.Time
	hasDeadline bool
	results     []uint64
}

// WithFuel caps the call at n fuel units. One fuel unit is one
// timing-model event (the arch.Counter units the paper's cost model
// prices), so fuel is deterministic: the same module, arguments, and
// configuration consume identical fuel on every run, and an exhausted
// call traps with TrapFuelExhausted at the same guest instruction.
// Zero leaves the call unmetered.
func WithFuel(n uint64) CallOption {
	return func(s *callSettings) { s.fuel = n }
}

// WithTimeout interrupts the call d after it starts (checkout queueing
// included). It is WithDeadline relative to Call's entry; the earliest
// of the context deadline, WithDeadline, and WithTimeout wins.
func WithTimeout(d time.Duration) CallOption {
	return func(s *callSettings) { s.timeout = d }
}

// WithDeadline interrupts the call at t. The earliest of the context
// deadline, WithDeadline, and WithTimeout wins.
func WithDeadline(t time.Time) CallOption {
	return func(s *callSettings) { s.deadline = t; s.hasDeadline = true }
}

// WithStackDepth overrides the engine's recursion bound (default 1024
// frames) for this call only. The bound is exact: the frame machine
// counts live activations — guest frames plus in-flight host crossings
// — and the n+1'th frame traps with a deterministic TrapStackOverflow,
// not a Go-recursion proxy.
func WithStackDepth(n int) CallOption {
	return func(s *callSettings) { s.stackDepth = n }
}

// WithValueStack caps the call's value arena — the contiguous slots
// holding every live frame's parameters, locals, and operand stack — at
// n 64-bit words (default 1<<22, 32 MiB), for this call only. Exceeding
// the cap traps with TrapStackOverflow at an exact, deterministic
// arena size, so guest recursion is bounded in bytes as well as frames.
func WithValueStack(words uint64) CallOption {
	return func(s *callSettings) { s.stackWords = words }
}

// WithMemoryLimit caps the guest memory size (in 64 KiB wasm pages)
// that memory.grow may reach during this call, on top of the module's
// declared maximum. A grow past the cap fails with the architectural -1
// result, exactly like exceeding the declared maximum.
func WithMemoryLimit(pages uint64) CallOption {
	return func(s *callSettings) { s.memPages = pages }
}

// resolveCallSettings folds the options into one settings value.
func resolveCallSettings(opts []CallOption) callSettings {
	var s callSettings
	for _, o := range opts {
		o(&s)
	}
	return s
}

// CallSpec is the allocation-free sibling of the CallOption list: a
// plain value struct carrying the same per-call bounds. Where each
// WithFuel/WithTimeout call allocates a closure, a CallSpec can live in
// a request-scoped pool or a per-tenant policy and be passed by value —
// Engine.CallWith with a zero-timeout spec and a non-cancellable ctx
// stays off the heap entirely, which is what the serve hot path (and
// its zero-alloc CI gate) runs on. The zero value means "no bounds",
// like an empty option list.
type CallSpec struct {
	// Fuel caps the call in timing-model events; 0 leaves it unmetered.
	Fuel uint64
	// StackDepth/StackWords bound frames and the value arena; 0 keeps
	// the engine defaults. See WithStackDepth/WithValueStack.
	StackDepth int
	StackWords uint64
	// MemoryPages caps memory.grow for the call; see WithMemoryLimit.
	MemoryPages uint64
	// Timeout interrupts the call that long after entry; Deadline (when
	// set) at an absolute instant. The earliest of these and the ctx
	// deadline wins. See WithTimeout/WithDeadline.
	Timeout     time.Duration
	Deadline    time.Time
	HasDeadline bool
	// Results, when non-nil, backs Result.Values: if its capacity covers
	// the function's result count the call writes into it instead of
	// allocating. The caller must treat the previous call's Values as
	// dead once it passes the buffer again.
	Results []uint64
}

// settings converts the spec to the internal resolved form.
func (c CallSpec) settings() callSettings {
	return callSettings{
		fuel:        c.Fuel,
		stackDepth:  c.StackDepth,
		stackWords:  c.StackWords,
		memPages:    c.MemoryPages,
		timeout:     c.Timeout,
		deadline:    c.Deadline,
		hasDeadline: c.HasDeadline,
		results:     c.Results,
	}
}

// context derives the effective call context: the caller's ctx bounded
// by WithTimeout/WithDeadline. The returned cancel func must always be
// called (it is a no-op when no option applied).
func (s callSettings) context(ctx context.Context) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if s.hasDeadline {
		ctx, cancel = context.WithDeadline(ctx, s.deadline)
	}
	if s.timeout > 0 {
		prev := cancel
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		inner := cancel
		cancel = func() { inner(); prev() }
	}
	return ctx, cancel
}

// execOptions translates the settings into the interpreter's per-call
// bounds (the context travels separately).
func (s callSettings) execOptions() exec.CallOptions {
	return exec.CallOptions{
		Fuel:             s.fuel,
		MaxCallDepth:     s.stackDepth,
		MaxStackWords:    s.stackWords,
		MemoryLimitPages: s.memPages,
		Results:          s.results,
	}
}

// Result is the outcome of a Call: the return values plus the resource
// telemetry embedders previously had to scrape out of Instance.Raw().
type Result struct {
	// Values are the function's return values as raw 64-bit bits.
	Values []uint64
	// Fuel is the fuel the call consumed (timing-model events), counted
	// whether or not the call was metered; on a trapped call it covers
	// the events up to the trap.
	Fuel uint64
	// Events is the call's timing-model event snapshot, ready to be
	// priced on any core (Events.Cycles, Events.Millis).
	Events arch.Counter
}

// F64 decodes the first return value as a float64; fn names the
// function in the error for a void result.
func (r Result) F64(fn string) (float64, error) {
	if len(r.Values) == 0 {
		return 0, fmt.Errorf("cage: %s returned no value", fn)
	}
	return exec.F64Val(r.Values[0]), nil
}

// Call invokes an exported function on a pooled instance of m under ctx
// and per-call bounds. It is the context-first replacement for Invoke
// and is safe to call from many goroutines.
//
// ctx (tightened by WithTimeout/WithDeadline) governs the whole call:
// a checkout queued on the live cap or the §7.4 sandbox-tag budget is
// abandoned with ctx.Err() when it ends, and a running guest — even a
// guest infinite loop — is interrupted at the next branch or call
// checkpoint with a TrapInterrupted trap that wraps the context error.
// The interrupted instance is reset before the pool reuses it, so a
// cancelled call can never poison a later one or leak its sandbox tag.
//
// With a background context and no options the interpreter runs its
// unmetered fast path; the per-call machinery costs nothing.
func (e *Engine) Call(ctx context.Context, m *Module, fn string, args []uint64, opts ...CallOption) (Result, error) {
	return e.callSettings(ctx, m, fn, args, resolveCallSettings(opts))
}

// CallWith is Call with the bounds passed as a CallSpec value instead
// of an option list. Semantics are identical; the difference is purely
// allocation: the whole checkout → invoke → checkin round trip is
// heap-free when spec carries no timeout/deadline and ctx is not
// cancellable, so a server can run millions of admitted requests per
// GC cycle. This is the path cage-serve's invoke handler uses.
func (e *Engine) CallWith(ctx context.Context, m *Module, fn string, args []uint64, spec CallSpec) (Result, error) {
	return e.callSettings(ctx, m, fn, args, spec.settings())
}

// callSettings runs the checkout → invoke → checkin round trip with
// resolved settings, with no intermediate closures.
func (e *Engine) callSettings(ctx context.Context, m *Module, fn string, args []uint64, s callSettings) (Result, error) {
	ctx, cancel := s.context(ctx)
	defer cancel()
	p := e.pool(m)
	r, err := p.GetContext(ctx)
	if err != nil {
		return Result{}, err
	}
	pi := r.(*pooledInstance)
	defer pi.checkin()
	return pi.i.callResolved(ctx, fn, args, s)
}

// Call invokes an exported function under ctx and per-call bounds. See
// Engine.Call for the semantics; on a bare Runtime instance there is no
// pool, so ctx only governs the invocation itself.
func (i *Instance) Call(ctx context.Context, fn string, args []uint64, opts ...CallOption) (Result, error) {
	s := resolveCallSettings(opts)
	ctx, cancel := s.context(ctx)
	defer cancel()
	return i.callResolved(ctx, fn, args, s)
}

// callResolved runs the call with already-resolved settings (so
// Engine.Call does not re-apply timeout options after the checkout).
func (i *Instance) callResolved(ctx context.Context, fn string, args []uint64, s callSettings) (Result, error) {
	cr, err := i.inst.InvokeWith(ctx, fn, args, s.execOptions())
	return Result{Values: cr.Values, Fuel: cr.Fuel, Events: cr.Events}, err
}

// IsInterrupted reports whether err is a call cut off by its context
// (cancellation or deadline) — whether the guest was interrupted
// mid-run (a TrapInterrupted trap, which wraps the context error) or
// the deadline landed before guest entry, e.g. while the checkout was
// queued on the pool or the tag budget (a bare context error). Callers
// that care about the difference can errors.As for *exec.Trap.
func IsInterrupted(err error) bool {
	var t *exec.Trap
	if errors.As(err, &t) {
		return t.Code == exec.TrapInterrupted
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsFuelExhausted reports whether err is a call that ran out of its
// WithFuel budget.
func IsFuelExhausted(err error) bool {
	var t *exec.Trap
	return errors.As(err, &t) && t.Code == exec.TrapFuelExhausted
}
