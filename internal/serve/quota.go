package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"cage"
)

// QuotaPolicy bounds one tenant. Per-call fields are ceilings mapped
// onto the engine's CallOptions — a request may ask for less, never
// more; zero means "no bound on this axis". Admission fields bound the
// tenant's presented load; registry fields bound its uploads.
type QuotaPolicy struct {
	// Fuel caps each call's deterministic timing-model event budget
	// (cage.WithFuel). 0 leaves calls unmetered.
	Fuel uint64
	// Timeout caps each call's wall clock, queueing included
	// (cage.WithTimeout). 0 means the call runs until the client
	// disconnects.
	Timeout time.Duration
	// MemoryPages caps memory.grow in 64 KiB pages (cage.WithMemoryLimit).
	MemoryPages uint64
	// StackDepth caps live frames (cage.WithStackDepth).
	StackDepth int
	// StackWords caps the value arena in 64-bit words (cage.WithValueStack).
	StackWords uint64

	// MaxConcurrent caps the tenant's in-flight invocations; 0 is
	// unlimited (the engine pool still arbitrates instances).
	MaxConcurrent int
	// MaxQueue caps invocations waiting for an admission slot beyond
	// MaxConcurrent; one more is rejected with 429. Meaningless unless
	// MaxConcurrent > 0.
	MaxQueue int
	// RetryAfter is the hint returned with 429; zero defaults to 1s.
	RetryAfter time.Duration

	// MaxModules caps how many distinct modules the tenant may register
	// (re-uploading existing content is free); 0 is unlimited.
	MaxModules int
	// MaxModuleBytes caps one upload body; 0 is unlimited.
	MaxModuleBytes int64

	// SpectreHardened runs the tenant's invocations under the
	// Spectre-hardened twin of the server's configuration (fence events
	// at indirect branches and returns, BTB flushes at sandbox
	// transitions). Semantics are identical to the base config; the
	// tenant pays the mitigation's fuel tax, so per-call Fuel ceilings
	// bite sooner. The server builds the sibling hardened engine only
	// when some policy sets this.
	SpectreHardened bool
}

// callOptions folds the policy's per-call ceilings with the request's
// asks: the effective bound on each axis is the smaller of the two
// (an ask of 0 inherits the ceiling).
func (q QuotaPolicy) callOptions(askFuel uint64, askTimeout time.Duration) []cage.CallOption {
	var opts []cage.CallOption
	fuel := askFuel
	if q.Fuel > 0 && (fuel == 0 || fuel > q.Fuel) {
		fuel = q.Fuel
	}
	if fuel > 0 {
		opts = append(opts, cage.WithFuel(fuel))
	}
	if timeout := q.effectiveTimeout(askTimeout); timeout > 0 {
		opts = append(opts, cage.WithTimeout(timeout))
	}
	if q.MemoryPages > 0 {
		opts = append(opts, cage.WithMemoryLimit(q.MemoryPages))
	}
	if q.StackDepth > 0 {
		opts = append(opts, cage.WithStackDepth(q.StackDepth))
	}
	if q.StackWords > 0 {
		opts = append(opts, cage.WithValueStack(q.StackWords))
	}
	return opts
}

// effectiveTimeout folds the request's wall-clock ask with the
// policy's ceiling: the smaller of the two wins, and an ask of 0
// inherits the ceiling. This is the bound callOptions enforces, and
// the one a 408 must report.
func (q QuotaPolicy) effectiveTimeout(ask time.Duration) time.Duration {
	timeout := ask
	if q.Timeout > 0 && (timeout <= 0 || timeout > q.Timeout) {
		timeout = q.Timeout
	}
	return timeout
}

// retryAfter returns the 429 hint with its default applied.
func (q QuotaPolicy) retryAfter() time.Duration {
	if q.RetryAfter > 0 {
		return q.RetryAfter
	}
	return time.Second
}

// errQueueFull rejects a request that found the tenant's admission
// queue at capacity.
var errQueueFull = errors.New("serve: tenant admission queue is full")

// errModuleQuota rejects an upload from a tenant with no MaxModules
// headroom; registry.register returns it from the reserve callback
// without inserting anything.
var errModuleQuota = errors.New("serve: tenant module quota exceeded")

// tenant is one quota + metrics namespace.
type tenant struct {
	name   string
	policy QuotaPolicy

	// spec carries the policy's per-call ceilings as a precomputed
	// cage.CallSpec; callSpec folds a request's asks into a copy without
	// touching the heap, which is why the hot path can skip the
	// CallOption closures entirely.
	spec cage.CallSpec

	// sem is the admission semaphore (nil when MaxConcurrent == 0);
	// waiting counts requests queued on it, bounded by MaxQueue with a
	// CAS so the bound is exact under concurrent arrivals.
	sem     chan struct{}
	waiting atomic.Int64
	// active counts invocations between admission and response,
	// including time queued on the engine pool.
	active atomic.Int64
	// modules counts distinct registrations against MaxModules.
	modules atomic.Int64

	m counters
}

func newTenant(name string, policy QuotaPolicy) *tenant {
	t := &tenant{name: name, policy: policy}
	t.spec = cage.CallSpec{
		Fuel:        policy.Fuel,
		StackDepth:  policy.StackDepth,
		StackWords:  policy.StackWords,
		MemoryPages: policy.MemoryPages,
		Timeout:     policy.Timeout,
	}
	if policy.MaxConcurrent > 0 {
		t.sem = make(chan struct{}, policy.MaxConcurrent)
	}
	return t
}

// callSpec folds the policy's precomputed spec with one request's asks
// — the same smaller-wins rule callOptions applies, without the option
// closures. The returned value is heap-free; the caller sets Results.
func (t *tenant) callSpec(askFuel uint64, askTimeout time.Duration) cage.CallSpec {
	s := t.spec
	if askFuel > 0 && (s.Fuel == 0 || askFuel < s.Fuel) {
		s.Fuel = askFuel
	}
	s.Timeout = t.policy.effectiveTimeout(askTimeout)
	return s
}

// admit acquires an admission slot, queueing up to the policy's bound.
// It returns nil on admission (pair with release), errQueueFull when
// the queue is at capacity, or ctx.Err() when the caller disconnected
// while queued — the queued wait is abandoned immediately, holding
// nothing. admit used to return a release closure; the method pair
// keeps `defer tn.release()` open-coded, so admission costs no heap
// allocation on the serve hot path.
func (t *tenant) admit(ctx context.Context) error {
	if t.sem == nil {
		return nil
	}
	select {
	case t.sem <- struct{}{}:
		return nil
	default:
	}
	for {
		w := t.waiting.Load()
		if w >= int64(t.policy.MaxQueue) {
			return errQueueFull
		}
		if t.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	defer t.waiting.Add(-1)
	select {
	case t.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot admit acquired; a no-op for unlimited
// tenants, so callers defer it unconditionally.
func (t *tenant) release() {
	if t.sem != nil {
		<-t.sem
	}
}
