package arch

import (
	"math"
	"testing"

	"cage/internal/mte"
)

func near(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestTable1ThroughputShape(t *testing.T) {
	// Spot-check the microbenchmark simulator against paper Table 1.
	x3 := NewCortexX3()
	a715 := NewCortexA715()
	a510 := NewCortexA510()
	const n = 100000

	if tp := x3.MeasureThroughput(IRG, n); !near(tp, 1.34, 0.05) {
		t.Errorf("X3 irg throughput = %.2f, want ~1.34", tp)
	}
	if tp := a715.MeasureThroughput(ADDG, n); !near(tp, 3.81, 0.05) {
		t.Errorf("A715 addg throughput = %.2f, want ~3.81", tp)
	}
	if tp := a510.MeasureThroughput(PACDA, n); !near(tp, 0.20, 0.05) {
		t.Errorf("A510 pacda throughput = %.2f, want ~0.20", tp)
	}
	// Throughput can never exceed the front-end issue width.
	for _, c := range Cores() {
		for _, cl := range append(append([]InstClass{}, MTEInstClasses...), PACInstClasses...) {
			if tp := c.MeasureThroughput(cl, n); tp > c.IssueWidth+1e-9 {
				t.Errorf("%s %v throughput %.2f exceeds issue width %.1f",
					c.Name, cl, tp, c.IssueWidth)
			}
		}
	}
}

func TestTable1LatencyShape(t *testing.T) {
	x3 := NewCortexX3()
	a510 := NewCortexA510()
	const n = 10000
	// PAC sign latency is ~5 cycles everywhere.
	if lat := x3.MeasureLatency(PACDA, n); !near(lat, 4.97, 0.05) {
		t.Errorf("X3 pacda latency = %.2f, want ~4.97", lat)
	}
	// A510 authentication is slower (~8 cycles) than signing (~5).
	sign := a510.MeasureLatency(PACDA, n)
	auth := a510.MeasureLatency(AUTDA, n)
	if auth <= sign {
		t.Errorf("A510: autda latency (%.2f) must exceed pacda latency (%.2f)", auth, sign)
	}
}

func TestMeasureAllCoversTable1Rows(t *testing.T) {
	rows := NewCortexX3().MeasureAll(1000)
	if len(rows) != len(MTEInstClasses)+len(PACInstClasses) {
		t.Fatalf("MeasureAll returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%v: non-positive throughput", r.Class)
		}
		if r.Class.HasLatencyRow() && r.Latency <= 0 {
			t.Errorf("%v: missing latency", r.Class)
		}
		if !r.Class.HasLatencyRow() && r.Latency != 0 {
			t.Errorf("%v: unexpected latency row", r.Class)
		}
	}
}

func TestFig4MemsetShape(t *testing.T) {
	// Paper Fig. 4: 128 MiB memset; sync MTE costs 19.1/14.4/29.9 %,
	// async 2.6/3.3/11.3 % on X3/A715/A510. Check ordering and rough
	// magnitudes.
	const size = 128 << 20
	for _, c := range Cores() {
		off := c.MemsetCycles(size, mte.ModeDisabled)
		async := c.MemsetCycles(size, mte.ModeAsync)
		sync := c.MemsetCycles(size, mte.ModeSync)
		if !(off < async && async < sync) {
			t.Errorf("%s: want none < async < sync, got %.0f / %.0f / %.0f",
				c.Name, off, async, sync)
		}
		syncOverhead := (sync - off) / off
		if syncOverhead < 0.10 || syncOverhead > 0.40 {
			t.Errorf("%s: sync overhead %.1f%%, want 10–40%%", c.Name, 100*syncOverhead)
		}
		asyncOverhead := (async - off) / off
		if asyncOverhead < 0.005 || asyncOverhead > 0.15 {
			t.Errorf("%s: async overhead %.1f%%, want 0.5–15%%", c.Name, 100*asyncOverhead)
		}
	}
	// Absolute runtime sanity: X3 disabled ≈ 30.2 ms.
	x3 := NewCortexX3()
	if ms := x3.Millis(x3.MemsetCycles(size, mte.ModeDisabled)); !near(ms, 30.2, 0.05) {
		t.Errorf("X3 memset = %.1f ms, want ~30.2", ms)
	}
}

func TestFig16InitShape(t *testing.T) {
	// Paper §7.4: stzg, stz2g, and stgp are at least as fast as a raw
	// memset (they skip the tag-check-before-access), while the
	// tag-then-memset combinations pay for two passes.
	const size = 128 << 20
	for _, c := range Cores() {
		base := c.InitCycles(size, InitMemset)
		for _, v := range []InitVariant{InitSTZG, InitST2ZG, InitSTGP} {
			if got := c.InitCycles(size, v); got > base*1.01 {
				t.Errorf("%s: %v (%.0f cycles) slower than memset (%.0f)",
					c.Name, v, got, base)
			}
		}
		for _, v := range []InitVariant{InitSTGMemset, InitST2GMemset} {
			got := c.InitCycles(size, v)
			if got < base*1.05 {
				t.Errorf("%s: %v should cost clearly more than memset", c.Name, v)
			}
		}
	}
}

func TestInitVariantTable4Columns(t *testing.T) {
	// Reproduce the Table 4 attribute matrix.
	type row struct {
		v       InitVariant
		zero    bool
		memsets bool
	}
	rows := []row{
		{InitMemset, true, true},
		{InitSTG, false, false},
		{InitST2G, false, false},
		{InitSTGP, true, false},
		{InitSTZG, true, false},
		{InitST2ZG, true, false},
		{InitSTGMemset, true, true},
		{InitST2GMemset, true, true},
	}
	for _, r := range rows {
		if r.v.SetsZero() != r.zero {
			t.Errorf("%v.SetsZero() = %v, want %v", r.v, r.v.SetsZero(), r.zero)
		}
		if r.v.UsesMemset() != r.memsets {
			t.Errorf("%v.UsesMemset() = %v, want %v", r.v, r.v.UsesMemset(), r.memsets)
		}
	}
}

func TestCounterPricing(t *testing.T) {
	var ctr Counter
	ctr.Add(EvLoad, 100)
	ctr.Add(EvBoundsCheck, 100)
	x3 := NewCortexX3()
	a510 := NewCortexA510()
	// In-order core pays far more for bounds checks relative to the
	// load itself (speculation asymmetry, paper §3).
	relX3 := x3.Wasm[EvBoundsCheck] / x3.Wasm[EvLoad]
	relA510 := a510.Wasm[EvBoundsCheck] / a510.Wasm[EvLoad]
	if relA510 <= relX3 {
		t.Errorf("bounds-check relative cost: A510 %.2f <= X3 %.2f", relA510, relX3)
	}
	if got := ctr.Cycles(x3); got <= 0 {
		t.Errorf("Cycles = %f", got)
	}
	if ctr.Total() != 200 {
		t.Errorf("Total = %d", ctr.Total())
	}
}

func TestCounterMergeReset(t *testing.T) {
	var a, b Counter
	a.Add(EvALU, 5)
	b.Add(EvALU, 7)
	b.Add(EvCall, 1)
	a.Merge(&b)
	if a.Get(EvALU) != 12 || a.Get(EvCall) != 1 {
		t.Errorf("merge: alu=%d call=%d", a.Get(EvALU), a.Get(EvCall))
	}
	a.Reset()
	if a.Total() != 0 {
		t.Error("reset did not clear counts")
	}
}

func TestMillisConversion(t *testing.T) {
	c := NewCortexX3() // 2.91 GHz
	if ms := c.Millis(2.91e9); !near(ms, 1000, 1e-9) {
		t.Errorf("Millis(2.91e9) = %f, want 1000", ms)
	}
}

func TestCoreByName(t *testing.T) {
	if CoreByName("Cortex-A715") == nil {
		t.Error("CoreByName failed for Cortex-A715")
	}
	if CoreByName("Cortex-M0") != nil {
		t.Error("CoreByName returned a model for an unknown core")
	}
}

func TestTagStoreClassMapping(t *testing.T) {
	pairs := map[mte.TagStoreOp]InstClass{
		mte.OpSTG: STG, mte.OpST2G: ST2G, mte.OpSTZG: STZG,
		mte.OpST2ZG: ST2ZG, mte.OpSTGP: STGP,
	}
	for op, want := range pairs {
		if got := TagStoreClass(op); got != want {
			t.Errorf("TagStoreClass(%v) = %v, want %v", op, got, want)
		}
	}
}
