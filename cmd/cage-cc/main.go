// Command cage-cc compiles MiniC source files to Cage-hardened wasm64
// binaries (or plain wasm32/wasm64 baselines).
//
// Usage:
//
//	cage-cc [-o out.wasm] [-wasm32] [-no-stack-sanitizer] [-no-ptr-auth] input.c
//
// By default the full Cage pipeline runs: the Algorithm 1 stack
// sanitizer and the pointer-authentication pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"cage"
)

func main() {
	out := flag.String("o", "a.wasm", "output file")
	wasm32 := flag.Bool("wasm32", false, "target 32-bit memory (baseline, no hardening)")
	noStack := flag.Bool("no-stack-sanitizer", false, "disable the stack sanitizer")
	noAuth := flag.Bool("no-ptr-auth", false, "disable pointer authentication")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cage-cc [flags] input.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-cc: %v\n", err)
		os.Exit(1)
	}
	cfg := cage.FullHardening()
	if *wasm32 {
		cfg = cage.Baseline32()
	}
	if *noStack {
		cfg.MemorySafety = false
	}
	if *noAuth {
		cfg.PointerAuth = false
	}
	mod, err := cage.NewToolchain(cfg).CompileSource(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-cc: %v\n", err)
		os.Exit(1)
	}
	bin, err := mod.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-cc: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, bin, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cage-cc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(bin))
}
