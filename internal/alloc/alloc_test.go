package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/mte"
	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

// newInstance builds an empty wasm64 instance for allocator testing.
func newInstance(t *testing.T, hardened bool) *exec.Instance {
	t.Helper()
	m := &wasm.Module{}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 2, Max: 64, HasMax: true}, Memory64: true}}
	cfg := exec.Config{Seed: 42}
	if hardened {
		cfg.Features = core.Features{MemSafety: true, MTEMode: mte.ModeSync}
	}
	inst, err := exec.NewInstance(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func newAlloc(t *testing.T, hardened bool) (*Allocator, *exec.Instance) {
	t.Helper()
	inst := newInstance(t, hardened)
	a, err := New(inst, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return a, inst
}

func TestMallocReturnsAlignedTaggedPointers(t *testing.T) {
	a, _ := newAlloc(t, true)
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		p, err := a.Malloc(24)
		if err != nil {
			t.Fatal(err)
		}
		addr := ptrlayout.Address(p)
		if addr%16 != 0 {
			t.Errorf("allocation %d not 16-byte aligned: %#x", i, addr)
		}
		if ptrlayout.Tag(p) == 0 {
			t.Errorf("allocation %d untagged", i)
		}
		if seen[addr] {
			t.Errorf("address %#x handed out twice", addr)
		}
		seen[addr] = true
	}
}

func TestAdjacentAllocationsSeparatedByUntaggedHeader(t *testing.T) {
	// Fig. 8a: allocator metadata slots stay untagged, so adjacent
	// allocations never share a tag boundary.
	a, inst := newAlloc(t, true)
	p1, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	end1 := ptrlayout.Address(p1) + 16
	start2 := ptrlayout.Address(p2)
	if start2-end1 != HeaderSize {
		t.Fatalf("gap between allocations = %d, want %d", start2-end1, HeaderSize)
	}
	// The header granule between them is untagged.
	if tag := inst.Tags().TagAt(end1); tag != 0 {
		t.Errorf("metadata slot tagged %d, want 0", tag)
	}
}

func TestHeapOverflowIntoNeighborTraps(t *testing.T) {
	a, inst := newAlloc(t, true)
	p1, _ := a.Malloc(16)
	if _, err := a.Malloc(16); err != nil {
		t.Fatal(err)
	}
	// Off-by-one overflow: one byte past p1's payload lands in the
	// untagged metadata slot and must fault.
	tag := ptrlayout.Tag(p1)
	end := ptrlayout.Address(p1) + 16
	if err := inst.Tags().CheckAccess(end, 1, tag, true); err == nil {
		t.Error("off-by-one heap overflow not caught")
	}
}

func TestUseAfterFreeCaught(t *testing.T) {
	a, inst := newAlloc(t, true)
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := inst.Tags().CheckAccess(ptrlayout.Address(p), 8, ptrlayout.Tag(p), false); err == nil {
		t.Error("use-after-free not caught")
	}
}

func TestDoubleFreeCaught(t *testing.T) {
	a, _ := newAlloc(t, true)
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free not caught")
	}
}

func TestInvalidFreeCaught(t *testing.T) {
	a, _ := newAlloc(t, true)
	if err := a.Free(0x4000); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("wild free: got %v", err)
	}
	p, _ := a.Malloc(64)
	// Interior pointer.
	if err := a.Free(p + 16); err == nil {
		t.Error("interior-pointer free accepted")
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	a, _ := newAlloc(t, true)
	if err := a.Free(0); err != nil {
		t.Errorf("free(NULL) = %v", err)
	}
}

func TestReuseAfterFree(t *testing.T) {
	a, _ := newAlloc(t, true)
	p1, _ := a.Malloc(64)
	addr1 := ptrlayout.Address(p1)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Address(p2) != addr1 {
		t.Errorf("freed block not reused: %#x vs %#x", ptrlayout.Address(p2), addr1)
	}
}

func TestCoalescing(t *testing.T) {
	a, _ := newAlloc(t, true)
	p1, _ := a.Malloc(32)
	p2, _ := a.Malloc(32)
	p3, _ := a.Malloc(32)
	base := ptrlayout.Address(p1)
	for _, p := range []uint64{p1, p2, p3} {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// All three coalesce into one block big enough for a 96+ byte
	// allocation at the same base.
	big, err := a.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Address(big) != base {
		t.Errorf("coalesced block not reused: %#x vs %#x", ptrlayout.Address(big), base)
	}
}

func TestCallocZeroes(t *testing.T) {
	for _, hardened := range []bool{true, false} {
		a, inst := newAlloc(t, hardened)
		// Dirty the heap area first.
		p1, _ := a.Malloc(64)
		addr := ptrlayout.Address(p1)
		mem := inst.Memory()
		for i := addr; i < addr+64; i++ {
			mem[i] = 0xEE
		}
		if err := a.Free(p1); err != nil {
			t.Fatal(err)
		}
		p2, err := a.Calloc(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		addr2 := ptrlayout.Address(p2)
		for i := addr2; i < addr2+64; i++ {
			if mem[i] != 0 {
				t.Fatalf("hardened=%v: calloc memory not zeroed at %#x", hardened, i)
			}
		}
	}
}

func TestReallocPreservesData(t *testing.T) {
	a, inst := newAlloc(t, true)
	p, _ := a.Malloc(32)
	addr := ptrlayout.Address(p)
	mem := inst.Memory()
	for i := uint64(0); i < 32; i++ {
		mem[addr+i] = byte(i)
	}
	p2, err := a.Realloc(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	addr2 := ptrlayout.Address(p2)
	for i := uint64(0); i < 32; i++ {
		if mem[addr2+i] != byte(i) {
			t.Fatalf("realloc lost byte %d", i)
		}
	}
	// The old segment is freed: stale pointer faults.
	if err := inst.Tags().CheckAccess(addr, 8, ptrlayout.Tag(p), false); err == nil {
		t.Error("stale pointer usable after realloc move")
	}
}

func TestHeapGrowsViaMemoryGrow(t *testing.T) {
	a, inst := newAlloc(t, true)
	before := inst.MemorySize()
	// Allocate more than the initial 2 pages.
	var ptrs []uint64
	for i := 0; i < 10; i++ {
		p, err := a.Malloc(32 * 1024)
		if err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
	}
	if inst.MemorySize() <= before {
		t.Error("heap did not grow memory")
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.InUse != 0 {
		t.Errorf("InUse = %d after freeing everything", a.InUse)
	}
}

func TestOutOfMemory(t *testing.T) {
	a, _ := newAlloc(t, false)
	// Max is 64 pages = 4 MiB; ask for more.
	if _, err := a.Malloc(16 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized malloc: got %v", err)
	}
}

func TestUnhardenedPointersUntagged(t *testing.T) {
	a, _ := newAlloc(t, false)
	p, err := a.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if ptrlayout.Tag(p) != 0 {
		t.Errorf("unhardened malloc returned tagged pointer %#x", p)
	}
}

func TestAllocatorStats(t *testing.T) {
	a, _ := newAlloc(t, true)
	p1, _ := a.Malloc(100) // rounds to 112
	if a.InUse != 112 || a.Meta != HeaderSize {
		t.Errorf("InUse=%d Meta=%d", a.InUse, a.Meta)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if a.InUse != 0 || a.Allocs != 1 || a.Frees != 1 {
		t.Errorf("stats after free: %+v", *a)
	}
	if a.Peak != 112 {
		t.Errorf("Peak = %d", a.Peak)
	}
}

func TestMallocFreeProperty(t *testing.T) {
	// Property: any interleaving of allocations and frees keeps every
	// live allocation accessible through its own pointer and leaves
	// metadata intact.
	f := func(sizes []uint16) bool {
		a, inst := newAlloc(t, true)
		type liveAlloc struct{ ptr, size uint64 }
		var live []liveAlloc
		for i, s16 := range sizes {
			if len(sizes) > 24 && i >= 24 {
				break
			}
			size := uint64(s16%2048) + 1
			p, err := a.Malloc(size)
			if err != nil {
				return false
			}
			live = append(live, liveAlloc{p, size})
			if i%3 == 2 && len(live) > 1 {
				victim := live[0]
				live = live[1:]
				if err := a.Free(victim.ptr); err != nil {
					return false
				}
			}
		}
		for _, la := range live {
			addr := ptrlayout.Address(la.ptr)
			if err := inst.Tags().CheckAccess(addr, la.size, ptrlayout.Tag(la.ptr), true); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUsableSize(t *testing.T) {
	a, _ := newAlloc(t, true)
	p, _ := a.Malloc(50)
	n, err := a.UsableSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Errorf("UsableSize = %d, want 64", n)
	}
}

func TestTagStorageOverheadConstant(t *testing.T) {
	if got := TagStorageOverhead(); got != 0.03125 {
		t.Errorf("tag storage overhead = %f, want 1/32", got)
	}
}
