package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/polybench"
)

// --- Fig. 14 ---

// Fig14Result holds the PolyBench sweep: modeled runtimes per (kernel,
// variant, core) and the normalized means the paper reports.
type Fig14Result struct {
	Kernels  []string
	Variants []string
	Cores    []string
	// Millis[kernel][variant][core]
	Millis map[string]map[string]map[string]float64
	// MeanPct[variant][core] is the mean runtime normalized to the
	// wasm64 baseline (=100), as in Fig. 14.
	MeanPct map[string]map[string]float64
	// StdPct[variant][core] is the standard deviation across kernels.
	StdPct map[string]map[string]float64
}

// RunFig14 executes every kernel under every Table 3 variant, verifying
// checksums, and prices the event streams on all three cores. quick uses
// the small test sizes.
func RunFig14(quick bool) (*Fig14Result, error) {
	variants := Table3Variants()
	cores := arch.Cores()
	res := &Fig14Result{
		Millis:  make(map[string]map[string]map[string]float64),
		MeanPct: make(map[string]map[string]float64),
		StdPct:  make(map[string]map[string]float64),
	}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Name)
	}
	for _, c := range cores {
		res.Cores = append(res.Cores, c.Name)
	}
	for _, k := range polybench.Kernels() {
		res.Kernels = append(res.Kernels, k.Name)
		n := k.BenchN
		if quick {
			n = k.TestN
		}
		want := k.Reference(n)
		perVariant := make(map[string]map[string]float64)
		for _, v := range variants {
			var ctr arch.Counter
			got, err := polybench.Run(k, n, v.Compile, v.Features, &ctr)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s/%s: %w", k.Name, v.Name, err)
			}
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return nil, fmt.Errorf("fig14 %s/%s: checksum %g, want %g", k.Name, v.Name, got, want)
			}
			perCore := make(map[string]float64)
			for _, c := range cores {
				perCore[c.Name] = ctr.Millis(c)
			}
			perVariant[v.Name] = perCore
		}
		res.Millis[k.Name] = perVariant
	}

	// Normalize to the wasm64 baseline and aggregate.
	for _, v := range res.Variants {
		res.MeanPct[v] = make(map[string]float64)
		res.StdPct[v] = make(map[string]float64)
		for _, c := range res.Cores {
			var pcts []float64
			for _, k := range res.Kernels {
				base := res.Millis[k]["baseline wasm64"][c]
				pcts = append(pcts, 100*res.Millis[k][v][c]/base)
			}
			mean := 0.0
			for _, p := range pcts {
				mean += p
			}
			mean /= float64(len(pcts))
			variance := 0.0
			for _, p := range pcts {
				variance += (p - mean) * (p - mean)
			}
			res.MeanPct[v][c] = mean
			res.StdPct[v][c] = math.Sqrt(variance / float64(len(pcts)))
		}
	}
	return res, nil
}

// Report prints the Fig. 14 summary (normalized means per core) and the
// per-kernel detail.
func (r *Fig14Result) Report(w io.Writer) {
	t := &table{header: append([]string{"Variant"}, r.Cores...)}
	for _, v := range r.Variants {
		cells := []string{v}
		for _, c := range r.Cores {
			cells = append(cells, fmt.Sprintf("%.1f ± %.1f", r.MeanPct[v][c], r.StdPct[v][c]))
		}
		t.add(cells...)
	}
	fmt.Fprintln(w, "mean runtime normalized to wasm64 = 100 (lower is better):")
	t.write(w)

	fmt.Fprintln(w, "\nper-kernel modeled runtimes on Cortex-X3 (ms):")
	kt := &table{header: append([]string{"Kernel"}, r.Variants...)}
	kernels := append([]string{}, r.Kernels...)
	sort.Strings(kernels)
	for _, k := range kernels {
		cells := []string{k}
		for _, v := range r.Variants {
			cells = append(cells, fmt.Sprintf("%.3f", r.Millis[k][v]["Cortex-X3"]))
		}
		kt.add(cells...)
	}
	kt.write(w)
}

// --- Fig. 15 ---

// Fig15Result compares static, dynamic, and authenticated dynamic calls
// on the modified 2mm.
type Fig15Result struct {
	Cores []string
	// Pct[mode][core]: runtime normalized to static = 100.
	Pct map[string]map[string]float64
	// Millis[mode][core]
	Millis map[string]map[string]float64
}

// RunFig15 runs the three call variants.
func RunFig15(quick bool) (*Fig15Result, error) {
	cores := arch.Cores()
	res := &Fig15Result{
		Pct:    make(map[string]map[string]float64),
		Millis: make(map[string]map[string]float64),
	}
	for _, c := range cores {
		res.Cores = append(res.Cores, c.Name)
	}
	modes := []polybench.CallMode{polybench.CallStatic, polybench.CallDynamic, polybench.CallAuthenticated}
	for _, mode := range modes {
		k := polybench.TwoMMVariant(mode)
		n := k.BenchN
		if quick {
			n = k.TestN
		}
		opts := codegen.Options{Wasm64: true}
		feats := core.Features{}
		if mode == polybench.CallAuthenticated {
			opts.PtrAuth = true
			feats.PtrAuth = true
		}
		m, err := polybench.Build(k, opts)
		if err != nil {
			return nil, fmt.Errorf("fig15 %v: %w", mode, err)
		}
		// Measure the kernel region only (the paper's PolyBench timers).
		got, ctr, err := polybench.RunKernelRegion(m, n, feats)
		if err != nil {
			return nil, fmt.Errorf("fig15 %v: %w", mode, err)
		}
		want := k.Reference(n)
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			return nil, fmt.Errorf("fig15 %v: checksum %g, want %g", mode, got, want)
		}
		ms := make(map[string]float64)
		for _, c := range cores {
			ms[c.Name] = ctr.Millis(c)
		}
		res.Millis[mode.String()] = ms
	}
	for mode, ms := range res.Millis {
		pct := make(map[string]float64)
		for coreName, v := range ms {
			pct[coreName] = 100 * v / res.Millis["static"][coreName]
		}
		res.Pct[mode] = pct
	}
	return res, nil
}

// Report prints the Fig. 15 series.
func (r *Fig15Result) Report(w io.Writer) {
	t := &table{header: append([]string{"Variant"}, r.Cores...)}
	for _, mode := range []string{"static", "dynamic", "ptr-auth"} {
		cells := []string{mode}
		for _, c := range r.Cores {
			cells = append(cells, fmt.Sprintf("%.1f", r.Pct[mode][c]))
		}
		t.add(cells...)
	}
	fmt.Fprintln(w, "runtime normalized to static calls = 100 (lower is better):")
	t.write(w)
}

// --- §7.3 memory measurement ---

// RunMemoryOverhead measures the data-footprint difference between
// wasm32 and wasm64 kernel builds and combines it with the architectural
// tag-storage cost (paper §7.3).
func RunMemoryOverhead(quick bool) (*MemoryResult, error) {
	kernels := polybench.Kernels()
	if quick {
		kernels = kernels[:6]
	}
	var sum32, sum64 float64
	var metaSum float64
	var metaN int
	for _, k := range kernels {
		n := k.TestN
		f32, _, err := footprint(k, n, codegen.Options{Wasm64: false}, core.Features{})
		if err != nil {
			return nil, err
		}
		f64b, meta, err := footprint(k, n, codegen.Options{Wasm64: true}, core.Features{})
		if err != nil {
			return nil, err
		}
		sum32 += f32
		sum64 += f64b
		metaSum += meta
		metaN++
	}
	over := sum64/sum32 - 1
	res := &MemoryResult{
		Wasm64OverWasm32:  over,
		TagStorage:        TagStorageOverhead(),
		AllocatorMetadata: metaSum / float64(metaN),
	}
	res.Total = res.Wasm64OverWasm32 + res.TagStorage + res.AllocatorMetadata
	return res, nil
}

// footprint compiles and runs a kernel, returning its peak data
// footprint (static data + peak heap) and allocator metadata ratio.
func footprint(k polybench.Kernel, n int, opts codegen.Options, feats core.Features) (float64, float64, error) {
	m, err := polybench.Build(k, opts)
	if err != nil {
		return 0, 0, err
	}
	staticBytes := 0.0
	for _, d := range m.Datas {
		staticBytes += float64(len(d.Bytes))
	}
	a, err := polybench.RunModuleWithAllocator(m, n, feats)
	if err != nil {
		return 0, 0, err
	}
	// PolyBench allocations coexist until the final frees, so the
	// metadata high-water mark is one header per allocation.
	meta := float64(a.Allocs) * alloc.HeaderSize
	ratio := 0.0
	if a.Peak > 0 {
		ratio = meta / float64(a.Peak)
	}
	return staticBytes + float64(a.Peak) + meta, ratio, nil
}
