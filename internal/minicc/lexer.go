package minicc

import (
	"strconv"
	"strings"
)

// Lex tokenizes src. Comments (// and /* */) are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			for {
				if i+1 >= n {
					return nil, errf(startLine, startCol, "unterminated block comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case isIdentStart(c):
			start := i
			startLine, startCol := line, col
			for i < n && isIdentChar(src[i]) {
				advance(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
		case c >= '0' && c <= '9':
			tok, k, err := lexNumber(src[i:], line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			advance(k)
		case c == '"':
			tok, k, err := lexString(src[i:], line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			advance(k)
		case c == '\'':
			tok, k, err := lexChar(src[i:], line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			advance(k)
		default:
			op, k := lexPunct(src[i:])
			if k == 0 {
				return nil, errf(line, col, "unexpected character %q", c)
			}
			toks = append(toks, Token{Kind: TokPunct, Text: op, Line: line, Col: col})
			advance(k)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// threeCharOps through oneCharOps: longest-match operator tables.
var threeCharOps = []string{"<<=", ">>="}
var twoCharOps = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

func lexPunct(s string) (string, int) {
	for _, op := range threeCharOps {
		if strings.HasPrefix(s, op) {
			return op, 3
		}
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(s, op) {
			return op, 2
		}
	}
	if strings.IndexByte("+-*/%<>=!&|^~(){}[];,.?:", s[0]) >= 0 {
		return s[:1], 1
	}
	return "", 0
}

func lexNumber(s string, line, col int) (Token, int, error) {
	k := 0
	isFloat := false
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		k = 2
		for k < len(s) && isHexDigit(s[k]) {
			k++
		}
		v, err := strconv.ParseUint(s[2:k], 16, 64)
		if err != nil {
			return Token{}, 0, errf(line, col, "bad hex literal: %v", err)
		}
		k = eatIntSuffix(s, k)
		return Token{Kind: TokIntLit, Text: s[:k], Int: int64(v), Line: line, Col: col}, k, nil
	}
	for k < len(s) && s[k] >= '0' && s[k] <= '9' {
		k++
	}
	if k < len(s) && s[k] == '.' {
		isFloat = true
		k++
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
	}
	if k < len(s) && (s[k] == 'e' || s[k] == 'E') {
		isFloat = true
		k++
		if k < len(s) && (s[k] == '+' || s[k] == '-') {
			k++
		}
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
	}
	if isFloat {
		end := k
		if k < len(s) && (s[k] == 'f' || s[k] == 'F') {
			k++
		}
		v, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return Token{}, 0, errf(line, col, "bad float literal: %v", err)
		}
		return Token{Kind: TokFloatLit, Text: s[:k], Float: v, Line: line, Col: col}, k, nil
	}
	v, err := strconv.ParseUint(s[:k], 10, 64)
	if err != nil {
		return Token{}, 0, errf(line, col, "bad integer literal: %v", err)
	}
	k = eatIntSuffix(s, k)
	return Token{Kind: TokIntLit, Text: s[:k], Int: int64(v), Line: line, Col: col}, k, nil
}

func eatIntSuffix(s string, k int) int {
	for k < len(s) && (s[k] == 'u' || s[k] == 'U' || s[k] == 'l' || s[k] == 'L') {
		k++
	}
	return k
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func lexString(s string, line, col int) (Token, int, error) {
	var sb strings.Builder
	k := 1
	for {
		if k >= len(s) {
			return Token{}, 0, errf(line, col, "unterminated string literal")
		}
		c := s[k]
		if c == '"' {
			k++
			break
		}
		if c == '\\' {
			if k+1 >= len(s) {
				return Token{}, 0, errf(line, col, "unterminated escape")
			}
			e, ok := unescape(s[k+1])
			if !ok {
				return Token{}, 0, errf(line, col, "unknown escape \\%c", s[k+1])
			}
			sb.WriteByte(e)
			k += 2
			continue
		}
		sb.WriteByte(c)
		k++
	}
	return Token{Kind: TokStrLit, Text: sb.String(), Line: line, Col: col}, k, nil
}

func lexChar(s string, line, col int) (Token, int, error) {
	if len(s) < 3 {
		return Token{}, 0, errf(line, col, "unterminated char literal")
	}
	var v byte
	k := 1
	if s[1] == '\\' {
		e, ok := unescape(s[2])
		if !ok {
			return Token{}, 0, errf(line, col, "unknown escape \\%c", s[2])
		}
		v = e
		k = 3
	} else {
		v = s[1]
		k = 2
	}
	if k >= len(s) || s[k] != '\'' {
		return Token{}, 0, errf(line, col, "unterminated char literal")
	}
	return Token{Kind: TokCharLit, Text: s[:k+1], Int: int64(v), Line: line, Col: col}, k + 1, nil
}

func unescape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return 0, false
}
