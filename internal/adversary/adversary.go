package adversary

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"cage"
	"cage/internal/arch"
	"cage/internal/exec"
	"cage/internal/exploit"
)

// Verdict classifies one scenario run.
type Verdict string

const (
	// VerdictExploited means the run completed and the damage or
	// leakage indicator fired.
	VerdictExploited Verdict = "exploited"
	// VerdictTrapped means a runtime defense aborted the run; the
	// Outcome carries the trap's exploit.TrapClass.
	VerdictTrapped Verdict = "trapped"
	// VerdictMitigatedTiming means the attack's speculative channel is
	// closed by the modeled mitigations: every executed speculation
	// site was fenced and the sandbox boundary flushed the BTB.
	VerdictMitigatedTiming Verdict = "mitigated-timing"
	// VerdictHarmless means the run completed without damage.
	VerdictHarmless Verdict = "harmless"
)

// Outcome is a verdict plus its supporting detail.
type Outcome struct {
	Verdict Verdict `json:"verdict"`
	// Class is the trap's violation class when Verdict is trapped.
	Class exploit.TrapClass `json:"class,omitempty"`
	// Detail is a human-readable explanation (unfenced-site counts,
	// damage indicators); it does not participate in matrix matching.
	Detail string `json:"detail,omitempty"`
}

// Observation is the raw material an oracle classifies: how the run
// ended and the timing-model events it produced.
type Observation struct {
	// Trapped reports whether the run aborted with a trap.
	Trapped bool
	// TrapCode is valid when Trapped.
	TrapCode exec.TrapCode
	// Damage is the entry point's damage indicator (nonzero =
	// exploited) for runs that completed.
	Damage int64
	// Events is the run's event delta, the observable the speculative
	// oracles inspect.
	Events arch.Counter
}

// Scenario is one adversarial program plus its oracle.
type Scenario interface {
	// Name uniquely identifies the scenario within the matrix.
	Name() string
	// Family groups scenarios: "table2", "speculative", "corruption".
	Family() string
	// Program returns the scenario's guest module. MiniC scenarios
	// compile their source with the preset's toolchain; raw-wasm
	// scenarios may ignore tc and decode a prebuilt binary.
	Program(tc *cage.Toolchain) (*cage.Module, error)
	// Entry returns the exported entry point and its attack argument.
	Entry() (string, uint64)
	// Expect is the oracle: the verdict required under cfg.
	Expect(cfg cage.Config) Outcome
	// Classify turns one observed run under cfg into a verdict.
	Classify(cfg cage.Config, obs Observation) Outcome
}

// prog is the shared Scenario implementation: a MiniC program plus
// family-specific oracle hooks.
type prog struct {
	name, family string
	source       string
	entry        string
	arg          uint64
	expect       func(cfg cage.Config) Outcome
	classify     func(cfg cage.Config, obs Observation) Outcome
}

func (p *prog) Name() string   { return p.name }
func (p *prog) Family() string { return p.family }
func (p *prog) Program(tc *cage.Toolchain) (*cage.Module, error) {
	return tc.CompileSource(p.source)
}
func (p *prog) Entry() (string, uint64)        { return p.entry, p.arg }
func (p *prog) Expect(cfg cage.Config) Outcome { return p.expect(cfg) }
func (p *prog) Classify(cfg cage.Config, obs Observation) Outcome {
	return p.classify(cfg, obs)
}

// Preset is one named configuration column of the matrix.
type Preset struct {
	Name   string
	Config cage.Config
}

// Presets returns the matrix's configuration columns: the wasm64
// Table 3 presets plus the Spectre-hardened one, resolved through
// cage.ConfigByName so the matrix can never drift from the CLI names.
func Presets() []Preset {
	names := []string{"baseline64", "memsafety", "sandbox", "ptrauth", "full", "hardened"}
	out := make([]Preset, 0, len(names))
	for _, n := range names {
		cfg, err := cage.ConfigByName(n)
		if err != nil {
			panic(err) // static name list; unreachable
		}
		out = append(out, Preset{Name: n, Config: cfg})
	}
	return out
}

// Matrix pairs the scenarios to evaluate with the presets to evaluate
// them under.
type Matrix struct {
	Scenarios []Scenario
	Presets   []Preset
}

// DefaultMatrix is every shipped scenario against every preset.
func DefaultMatrix() Matrix {
	return Matrix{Scenarios: AllScenarios(), Presets: Presets()}
}

// AllScenarios returns the three shipped families in order.
func AllScenarios() []Scenario {
	var out []Scenario
	out = append(out, Table2Scenarios()...)
	out = append(out, SpeculativeScenarios()...)
	out = append(out, CorruptionScenarios()...)
	return out
}

// TableSchema identifies the verdict table's JSON encoding.
const TableSchema = "cage-adversary/v1"

// Cell is one (scenario, preset) evaluation.
type Cell struct {
	Scenario string  `json:"scenario"`
	Family   string  `json:"family"`
	Config   string  `json:"config"`
	Expected Outcome `json:"expected"`
	Observed Outcome `json:"observed"`
	// Match reports oracle agreement: same verdict and same class.
	Match bool `json:"match"`
	// Fuel is the run's event total, so the table doubles as a coarse
	// mitigation-tax trace.
	Fuel uint64 `json:"fuel"`
}

// Table is the machine-readable verdict matrix.
type Table struct {
	Schema string `json:"schema"`
	Cells  []Cell `json:"cells"`
}

// Mismatches returns the cells whose observed verdict disagrees with
// the oracle; empty exactly when the security claims hold.
func (t *Table) Mismatches() []Cell {
	var out []Cell
	for _, c := range t.Cells {
		if !c.Match {
			out = append(out, c)
		}
	}
	return out
}

// Cell returns the (scenario, config) cell, or false.
func (t *Table) Cell(scenario, config string) (Cell, bool) {
	for _, c := range t.Cells {
		if c.Scenario == scenario && c.Config == config {
			return c, true
		}
	}
	return Cell{}, false
}

// WriteJSON emits the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// cellTimeout bounds one scenario run; adversarial programs are small,
// so this only guards against a scenario regressing into an infinite
// loop under some configuration.
const cellTimeout = 30 * time.Second

// Run evaluates the matrix: every scenario under every preset, each in
// a fresh instance, classified by the scenario's oracle. Infrastructure
// failures (compile or link errors) abort the run; guest traps are
// observations, not errors.
func Run(m Matrix) (*Table, error) {
	tbl := &Table{Schema: TableSchema}
	for _, p := range m.Presets {
		tc := cage.NewToolchain(p.Config)
		rt := cage.NewRuntime(p.Config)
		for _, s := range m.Scenarios {
			cell, err := runCell(tc, rt, p, s)
			if err != nil {
				return nil, fmt.Errorf("adversary: %s under %s: %w", s.Name(), p.Name, err)
			}
			tbl.Cells = append(tbl.Cells, cell)
		}
	}
	return tbl, nil
}

// runCell executes one matrix cell.
func runCell(tc *cage.Toolchain, rt *cage.Runtime, p Preset, s Scenario) (Cell, error) {
	mod, err := s.Program(tc)
	if err != nil {
		return Cell{}, err
	}
	inst, err := rt.Instantiate(mod)
	if err != nil {
		return Cell{}, err
	}
	defer inst.Close()
	entry, arg := s.Entry()
	res, callErr := inst.Call(context.Background(), entry, []uint64{arg},
		cage.WithTimeout(cellTimeout))
	obs := Observation{Events: res.Events}
	if callErr != nil {
		var t *exec.Trap
		if !errors.As(callErr, &t) {
			return Cell{}, callErr
		}
		obs.Trapped = true
		obs.TrapCode = t.Code
	} else if len(res.Values) > 0 {
		obs.Damage = int64(res.Values[0])
	}
	observed := s.Classify(p.Config, obs)
	expected := s.Expect(p.Config)
	return Cell{
		Scenario: s.Name(),
		Family:   s.Family(),
		Config:   p.Name,
		Expected: expected,
		Observed: observed,
		Match:    observed.Verdict == expected.Verdict && observed.Class == expected.Class,
		Fuel:     res.Fuel,
	}, nil
}

// classifyDamage is the oracle hook shared by the damage-indicator
// families (table2, corruption): a trap is classified by its code, a
// completed run by its indicator.
func classifyDamage(_ cage.Config, obs Observation) Outcome {
	if obs.Trapped {
		return Outcome{Verdict: VerdictTrapped, Class: exploit.ClassOf(obs.TrapCode),
			Detail: obs.TrapCode.String()}
	}
	if obs.Damage != 0 {
		return Outcome{Verdict: VerdictExploited,
			Detail: fmt.Sprintf("damage indicator %d", obs.Damage)}
	}
	return Outcome{Verdict: VerdictHarmless}
}
