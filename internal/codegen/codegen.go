// Package codegen lowers type-checked MiniC to Cage-extended wasm64 (or
// plain wasm32/wasm64 for the baseline configurations of paper Table 3).
//
// The two sanitizer passes of the paper run here, after semantic
// analysis and register allocation decisions (mirroring §6.1 "both
// sanitizer passes run after all LLVM optimizations"):
//
//   - the stack sanitizer consumes the Algorithm 1 analysis results and
//     emits segment.new/segment.set_tag tagging for unsafe stack slots,
//     per-frame incrementing tags, untagging epilogues, and the guard
//     slot of Fig. 8b;
//   - the pointer-authentication pass signs function-table indices when
//     a function's address is taken and authenticates before indirect
//     calls (Fig. 9).
package codegen

import (
	"fmt"

	"cage/internal/minicc"
	"cage/internal/wasm"
)

// Options selects the target and sanitizers.
type Options struct {
	// Wasm64 targets 64-bit memory; false produces the wasm32 baseline.
	Wasm64 bool
	// StackSanitizer enables the Algorithm 1 instrumentation.
	StackSanitizer bool
	// PtrAuth enables the pointer-authentication pass.
	PtrAuth bool
	// StackSize is the shadow-stack size in bytes (default 256 KiB).
	StackSize uint64
	// HeapPages is how many 64 KiB pages to reserve beyond data+stack
	// (default 96).
	HeapPages uint64
	// MaxPages caps memory growth (default 4096 pages = 256 MiB).
	MaxPages uint64
}

// Defaults fills unset option fields.
func (o Options) defaults() Options {
	if o.StackSize == 0 {
		o.StackSize = 256 * 1024
	}
	if o.HeapPages == 0 {
		o.HeapPages = 96
	}
	if o.MaxPages == 0 {
		o.MaxPages = 4096
	}
	return o
}

// hostModuleFor routes extern functions to their host modules: the
// allocator interface belongs to the hardened libc (paper §6.2) — in
// the pointer-width variant matching the target — and everything else
// to the generic "env" host module.
func (g *gen) hostModuleFor(name string) string {
	switch name {
	case "malloc", "free", "calloc", "realloc":
		if g.opts.Wasm64 {
			return "cage_libc"
		}
		return "cage_libc32"
	}
	if g.opts.Wasm64 {
		return "env"
	}
	return "env32"
}

// Compile lowers a program to a wasm module.
func Compile(prog *minicc.Program, opts Options) (*wasm.Module, error) {
	opts = opts.defaults()
	if opts.StackSanitizer && !opts.Wasm64 {
		return nil, fmt.Errorf("codegen: the stack sanitizer requires wasm64 (tag bits)")
	}
	if opts.PtrAuth && !opts.Wasm64 {
		return nil, fmt.Errorf("codegen: pointer authentication requires wasm64")
	}
	g := &gen{
		prog:    prog,
		opts:    opts,
		m:       &wasm.Module{},
		strings: make(map[string]uint64),
		funcIdx: make(map[*minicc.Symbol]uint32),
	}
	if opts.Wasm64 {
		g.layout = minicc.Layout64
		g.addrType = wasm.I64
	} else {
		g.layout = minicc.Layout32
		g.addrType = wasm.I32
	}
	return g.compile()
}

type gen struct {
	prog     *minicc.Program
	opts     Options
	m        *wasm.Module
	layout   minicc.Layout
	addrType wasm.ValType

	dataEnd   uint64 // next free static address
	strings   map[string]uint64
	stringSeg []byte
	strBase   uint64

	stackBase uint64
	stackTop  uint64
	heapBase  uint64

	spGlobal uint32
	funcIdx  map[*minicc.Symbol]uint32 // function symbol -> wasm index
	table    []uint32                  // address-taken functions
}

// compile drives the whole lowering.
func (g *gen) compile() (*wasm.Module, error) {
	// Imports first: they occupy the low function indices.
	for _, ex := range g.prog.File.Externs {
		ti := g.m.AddType(g.wasmSig(ex.Sig))
		g.funcIdx[ex.Sym] = uint32(len(g.m.Imports))
		g.m.Imports = append(g.m.Imports, wasm.Import{
			Module: g.hostModuleFor(ex.Name), Name: ex.Name, TypeIdx: ti,
		})
	}
	// Static data: globals from address 1024 (0 stays the null page).
	g.dataEnd = 1024
	for _, gd := range g.prog.File.Globals {
		a := uint64(g.layout.Align(gd.Typ))
		g.dataEnd = (g.dataEnd + a - 1) &^ (a - 1)
		gd.Sym.GlobalAddr = g.dataEnd
		g.dataEnd += uint64(g.layout.Size(gd.Typ))
	}
	g.strBase = (g.dataEnd + 15) &^ 15

	// Function index assignment for defined functions.
	for _, fn := range g.prog.File.Funcs {
		g.funcIdx[fn.Sym] = uint32(len(g.m.Imports) + len(g.m.Funcs))
		g.m.Funcs = append(g.m.Funcs, wasm.Function{
			TypeIdx: g.m.AddType(g.wasmSig(fn.Sym.Sig)),
			Name:    fn.Name,
		})
	}

	// Compile bodies.
	for i, fn := range g.prog.File.Funcs {
		body, locals, err := g.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		def := &g.m.Funcs[i]
		def.Locals = locals
		def.Body = body
	}

	// Memory layout: data | strings | shadow stack | heap.
	g.stackBase = g.strBase + uint64(len(g.stringSeg))
	g.stackBase = (g.stackBase + 15) &^ 15
	g.stackTop = g.stackBase + g.opts.StackSize
	g.heapBase = g.stackTop
	pages := (g.heapBase+wasm.PageSize-1)/wasm.PageSize + g.opts.HeapPages
	g.m.Mems = []wasm.MemoryType{{
		Limits:   wasm.Limits{Min: pages, Max: g.opts.MaxPages, HasMax: true},
		Memory64: g.opts.Wasm64,
	}}

	// The shadow stack pointer global, initialized to the stack top.
	g.spGlobal = uint32(len(g.m.Globals))
	g.m.Globals = append(g.m.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: g.addrType, Mutable: true},
		Init: g.stackTop,
	})
	heapBaseGlobal := uint32(len(g.m.Globals))
	g.m.Globals = append(g.m.Globals, wasm.Global{
		Type: wasm.GlobalType{Type: g.addrType, Mutable: false},
		Init: g.heapBase,
	})

	// Patch the placeholder global indices emitted during body
	// compilation (globals are laid out after bodies).
	for i := range g.m.Funcs {
		for j := range g.m.Funcs[i].Body {
			in := &g.m.Funcs[i].Body[j]
			if in.Op == wasm.OpGlobalGet || in.Op == wasm.OpGlobalSet {
				if in.X == spPlaceholder {
					in.X = uint64(g.spGlobal)
				}
			}
		}
	}

	// Data segments: global initializers and the string pool.
	if init := g.globalInitBytes(); len(init) > 0 {
		g.m.Datas = append(g.m.Datas, wasm.DataSegment{Offset: 1024, Bytes: init})
	}
	if len(g.stringSeg) > 0 {
		g.m.Datas = append(g.m.Datas, wasm.DataSegment{Offset: g.strBase, Bytes: g.stringSeg})
	}

	// Function table for address-taken functions (paper Fig. 9). Slot 0
	// stays null so a zero function pointer faults.
	if len(g.table) > 0 || g.hasIndirectCalls() {
		g.m.Tables = []wasm.TableType{{Limits: wasm.Limits{Min: uint64(len(g.table)) + 1}}}
		if len(g.table) > 0 {
			g.m.Elems = []wasm.ElemSegment{{Offset: 1, Funcs: g.table}}
		}
	}

	// Exports: every defined function, the memory, and the heap base.
	for _, fn := range g.prog.File.Funcs {
		g.m.Exports = append(g.m.Exports, wasm.Export{
			Name: fn.Name, Kind: wasm.ExportFunc, Idx: g.funcIdx[fn.Sym],
		})
	}
	g.m.Exports = append(g.m.Exports,
		wasm.Export{Name: "memory", Kind: wasm.ExportMemory, Idx: 0},
		wasm.Export{Name: "__heap_base", Kind: wasm.ExportGlobal, Idx: heapBaseGlobal},
	)

	if err := wasm.Validate(g.m); err != nil {
		return nil, fmt.Errorf("codegen: generated invalid module: %w", err)
	}
	return g.m, nil
}

// spPlaceholder marks stack-pointer global references until the global
// index is known.
const spPlaceholder = 0xFFFF

func (g *gen) hasIndirectCalls() bool {
	for i := range g.m.Funcs {
		for _, in := range g.m.Funcs[i].Body {
			if in.Op == wasm.OpCallIndirect {
				return true
			}
		}
	}
	return false
}

// wasmSig converts a MiniC signature.
func (g *gen) wasmSig(sig *minicc.FuncSig) wasm.FuncType {
	var ft wasm.FuncType
	for _, p := range sig.Params {
		ft.Params = append(ft.Params, g.valType(p))
	}
	if sig.Ret != minicc.TypeVoid {
		ft.Results = []wasm.ValType{g.valType(sig.Ret)}
	}
	return ft
}

// valType maps a scalar MiniC type to its wasm value type. Under the
// ILP32 wasm32 layout, long is 32-bit like in wasi-libc.
func (g *gen) valType(t *minicc.Type) wasm.ValType {
	switch t.Kind {
	case minicc.KChar, minicc.KInt:
		return wasm.I32
	case minicc.KLong:
		if g.layout.LongSize == 8 {
			return wasm.I64
		}
		return wasm.I32
	case minicc.KFloat:
		return wasm.F32
	case minicc.KDouble:
		return wasm.F64
	case minicc.KPtr, minicc.KArray, minicc.KFunc:
		return g.addrType
	default:
		return g.addrType
	}
}

// internString pools a string literal and returns its static address.
func (g *gen) internString(s string) uint64 {
	if addr, ok := g.strings[s]; ok {
		return addr
	}
	addr := g.strBase + uint64(len(g.stringSeg))
	g.strings[s] = addr
	g.stringSeg = append(g.stringSeg, []byte(s)...)
	g.stringSeg = append(g.stringSeg, 0)
	return addr
}

// globalInitBytes renders the constant initializers of globals.
func (g *gen) globalInitBytes() []byte {
	end := g.dataEnd
	if end <= 1024 {
		return nil
	}
	buf := make([]byte, end-1024)
	any := false
	for _, gd := range g.prog.File.Globals {
		if gd.Init == nil {
			continue
		}
		bits, width, ok := g.constValue(gd.Init, gd.Typ)
		if !ok {
			continue
		}
		any = true
		off := gd.Sym.GlobalAddr - 1024
		for i := int64(0); i < width; i++ {
			buf[off+uint64(i)] = byte(bits >> (8 * i))
		}
	}
	if !any {
		return nil
	}
	return buf
}

// tableSlot assigns (once) a table index for an address-taken function.
func (g *gen) tableSlot(sym *minicc.Symbol) int32 {
	if sym.TableIdx >= 0 {
		return sym.TableIdx
	}
	sym.TableIdx = int32(len(g.table) + 1) // slot 0 is null
	g.table = append(g.table, g.funcIdx[sym])
	g.prog.TableFuncs = append(g.prog.TableFuncs, sym)
	return sym.TableIdx
}
