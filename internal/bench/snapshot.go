package bench

import (
	"fmt"
	"time"

	"cage/internal/alloc"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/mte"
	"cage/internal/polybench"
	"cage/internal/wasm"
)

// Snapshot benchmark: prices a warm checkout against a cold start. The
// "fresh" leg is everything a cold start pays — instantiation (data
// segments, whole-memory tagging under MTE) plus the init call that
// populates the heap; the restore legs rewind a live instance from the
// frozen post-init image by bulk copy and, under the cagecow build tag,
// by mapping a copy-on-write view. Heap size is the independent
// variable: copy restores scale with it, COW restores should not.

// SnapshotPoint is one heap-size measurement.
type SnapshotPoint struct {
	HeapBytes int64 `json:"heap_bytes"`
	// FreshNs is instantiate + init(heap_bytes) + first call.
	FreshNs int64 `json:"fresh_ns_per_op"`
	// CopyRestoreNs is bulk-copy restore + first call.
	CopyRestoreNs int64 `json:"copy_restore_ns_per_op"`
	// CowRestoreNs is MAP_PRIVATE restore + first call; 0 when the
	// build has no COW support (restore_mode "copy").
	CowRestoreNs int64 `json:"cow_restore_ns_per_op,omitempty"`
}

// SnapshotRecord is the cage-bench JSON "snapshot" record.
type SnapshotRecord struct {
	// Config names the sandbox feature set the measurement ran under.
	Config string `json:"config"`
	// RestoreMode is the build's native restore fast path ("cow" under
	// the cagecow build tag on Linux, "copy" otherwise).
	RestoreMode string          `json:"restore_mode"`
	Points      []SnapshotPoint `json:"points"`
}

// snapshotGuestSource allocates and dirties a caller-sized heap in
// init — the work a snapshot amortizes — and serves trivial calls.
const snapshotGuestSource = `
extern char* malloc(long n);

long init(long bytes) {
    char* p = malloc(bytes);
    for (long i = 0; i < bytes; i = i + 64) { p[i] = 1; }
    return (long)p;
}

long ping(long x) { return x + 1; }
`

// newSnapshotInstance instantiates the snapshot guest with the
// hardened allocator wired up, optionally from a snapshot image.
func newSnapshotInstance(m *wasm.Module, feats core.Features, snap *exec.Snapshot, seed uint64) (*exec.Instance, error) {
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features: feats, HostModules: polybench.HostModules(), HostData: host,
		Seed: seed, Snapshot: snap,
	})
	if err != nil {
		return nil, err
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		return nil, fmt.Errorf("bench: snapshot guest lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		return nil, err
	}
	return inst, nil
}

// MeasureSnapshot runs the fresh-vs-restore comparison across heap
// sizes under the sandbox feature set (MTE sandboxing, sync mode —
// the configuration whose cold starts pay whole-memory tagging).
func MeasureSnapshot(quick bool) (*SnapshotRecord, error) {
	feats := core.Features{Sandbox: true, MTEMode: mte.ModeSync}
	rec := &SnapshotRecord{Config: "sandbox", RestoreMode: exec.SnapshotRestoreMode()}

	heaps := []int64{1 << 20, 16 << 20, 64 << 20}
	freshIters, restoreIters := 3, 30
	if quick {
		heaps = heaps[:2]
		freshIters, restoreIters = 2, 10
	}

	file, err := minicc.Parse(snapshotGuestSource)
	if err != nil {
		return nil, err
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		return nil, err
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true})
	if err != nil {
		return nil, err
	}

	for _, heap := range heaps {
		pt := SnapshotPoint{HeapBytes: heap}

		// Fresh: every iteration builds, initializes, and serves one
		// call from scratch — the cost every cold start pays.
		t0 := time.Now()
		for i := 0; i < freshIters; i++ {
			inst, err := newSnapshotInstance(m, feats, nil, uint64(100+i))
			if err != nil {
				return nil, err
			}
			if _, err := inst.Invoke("init", uint64(heap)); err != nil {
				return nil, err
			}
			if _, err := inst.Invoke("ping", 1); err != nil {
				return nil, err
			}
			inst.Close()
		}
		pt.FreshNs = time.Since(t0).Nanoseconds() / int64(freshIters)

		// One builder produces the frozen post-init image both restore
		// legs fork from.
		builder, err := newSnapshotInstance(m, feats, nil, 1)
		if err != nil {
			return nil, err
		}
		if _, err := builder.Invoke("init", uint64(heap)); err != nil {
			return nil, err
		}
		snap, err := builder.Snapshot()
		if err != nil {
			return nil, err
		}
		builder.Close()

		measureRestore := func(s *exec.Snapshot) (int64, error) {
			target, err := newSnapshotInstance(m, feats, s, 2)
			if err != nil {
				return 0, err
			}
			defer target.Close()
			t0 := time.Now()
			for i := 0; i < restoreIters; i++ {
				if err := target.RestoreFromSnapshot(s, uint64(200+i)); err != nil {
					return 0, err
				}
				if _, err := target.Invoke("ping", 1); err != nil {
					return 0, err
				}
			}
			return time.Since(t0).Nanoseconds() / int64(restoreIters), nil
		}

		if pt.CopyRestoreNs, err = measureRestore(snap.WithoutCOW()); err != nil {
			return nil, err
		}
		if rec.RestoreMode == "cow" {
			if pt.CowRestoreNs, err = measureRestore(snap); err != nil {
				return nil, err
			}
		}
		snap.Close()
		rec.Points = append(rec.Points, pt)
	}
	return rec, nil
}
