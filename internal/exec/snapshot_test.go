package exec_test

// Snapshot/restore differential tests: an instance forked from a
// post-start snapshot must be observationally identical to a freshly
// instantiated one — same results, same trap codes, and same per-call
// timing-model event counts — across every sandbox configuration, so
// warm checkouts change instantiation cost and nothing else.

import (
	"context"
	"errors"
	"testing"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/mte"
	"cage/internal/polybench"
	"cage/internal/wasm"
)

// snapshotConfigs are the four sandbox configurations the differential
// suite runs under, mirroring differential_test.go.
var snapshotConfigs = []struct {
	name  string
	opts  codegen.Options
	feats core.Features
}{
	{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
	{"memsafety", codegen.Options{Wasm64: true, StackSanitizer: true},
		core.Features{MemSafety: true, MTEMode: mte.ModeSync}},
	{"sandbox", codegen.Options{Wasm64: true},
		core.Features{Sandbox: true, MTEMode: mte.ModeSync}},
	{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true},
		core.CageAll()},
}

// newForkedKernelInstance snapshots a pristine builder instance and
// instantiates a fork from the image via Config.Snapshot, with the
// hardened allocator wired up like newKernelInstance does.
func newForkedKernelInstance(t testing.TB, m *wasm.Module, feats core.Features, ctr *arch.Counter) *exec.Instance {
	t.Helper()
	var bctr arch.Counter
	builder := newKernelInstance(t, m, feats, &bctr)
	snap, err := builder.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	host := &alloc.Host{}
	inst, err := exec.NewInstance(m, exec.Config{
		Features: feats, HostModules: polybench.HostModules(), HostData: host,
		Seed: 7777, Counter: ctr, Snapshot: snap,
	})
	if err != nil {
		t.Fatalf("instantiate from snapshot: %v", err)
	}
	heapBase, ok := inst.GlobalValue("__heap_base")
	if !ok {
		t.Fatal("module lacks __heap_base")
	}
	host.A, err = alloc.New(inst, heapBase)
	if err != nil {
		t.Fatalf("allocator: %v", err)
	}
	return inst
}

// TestForkMatchesFreshOnPolybench pins the fork-vs-fresh contract on
// real kernels: results, checksums, and every per-call event count must
// be identical whether the instance was built from scratch or forked
// from a snapshot.
func TestForkMatchesFreshOnPolybench(t *testing.T) {
	kernels := []string{"gemm", "2mm", "atax", "jacobi-1d", "durbin"}
	for _, name := range kernels {
		k, err := polybench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range snapshotConfigs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				m, err := polybench.Build(k, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}

				var ctrFresh arch.Counter
				fresh := newKernelInstance(t, m, cfg.feats, &ctrFresh)
				freshRes, freshErr := fresh.InvokeWith(context.Background(), "run", []uint64{uint64(k.TestN)}, exec.CallOptions{})

				var ctrFork arch.Counter
				fork := newForkedKernelInstance(t, m, cfg.feats, &ctrFork)
				forkRes, forkErr := fork.InvokeWith(context.Background(), "run", []uint64{uint64(k.TestN)}, exec.CallOptions{})

				if (freshErr == nil) != (forkErr == nil) {
					t.Fatalf("error mismatch: fresh=%v fork=%v", freshErr, forkErr)
				}
				if freshErr != nil {
					t.Fatalf("kernel failed under both paths: %v", freshErr)
				}
				if len(forkRes.Values) != len(freshRes.Values) {
					t.Fatalf("result arity: fresh=%d fork=%d", len(freshRes.Values), len(forkRes.Values))
				}
				for i := range freshRes.Values {
					if forkRes.Values[i] != freshRes.Values[i] {
						t.Fatalf("result[%d]: fresh=%#x fork=%#x", i, freshRes.Values[i], forkRes.Values[i])
					}
				}
				// The checksum must also match the C reference.
				if got, want := exec.F64Val(forkRes.Values[0]), k.Reference(k.TestN); got != want {
					diff := got - want
					if diff < 0 {
						diff = -diff
					}
					scale := want
					if scale < 0 {
						scale = -scale
					}
					if diff > 1e-9*scale {
						t.Fatalf("checksum %g, reference %g", got, want)
					}
				}
				// Per-call event identity: the fork skipped instantiation
				// work, not call work — Fig. 14/15 per-invocation numbers
				// must be unchanged.
				for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
					if forkRes.Events.Get(ev) != freshRes.Events.Get(ev) {
						t.Errorf("event %v: fresh=%d fork=%d", ev, freshRes.Events.Get(ev), forkRes.Events.Get(ev))
					}
				}
				if forkRes.Fuel != freshRes.Fuel {
					t.Errorf("fuel: fresh=%d fork=%d", freshRes.Fuel, forkRes.Fuel)
				}
			})
		}
	}
}

// TestForkMatchesFreshOnTrap pins trap identity: a fuel-starved call
// must trap with the same code after consuming the same fuel on a fork
// as on a fresh instance — metering determinism survives forking.
func TestForkMatchesFreshOnTrap(t *testing.T) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range snapshotConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			m, err := polybench.Build(k, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			opts := exec.CallOptions{Fuel: 20_000}

			var ctrFresh arch.Counter
			fresh := newKernelInstance(t, m, cfg.feats, &ctrFresh)
			freshRes, freshErr := fresh.InvokeWith(context.Background(), "run", []uint64{uint64(k.TestN)}, opts)

			var ctrFork arch.Counter
			fork := newForkedKernelInstance(t, m, cfg.feats, &ctrFork)
			forkRes, forkErr := fork.InvokeWith(context.Background(), "run", []uint64{uint64(k.TestN)}, opts)

			var freshTrap, forkTrap *exec.Trap
			if !errors.As(freshErr, &freshTrap) || freshTrap.Code != exec.TrapFuelExhausted {
				t.Fatalf("fresh: err = %v, want fuel exhaustion", freshErr)
			}
			if !errors.As(forkErr, &forkTrap) || forkTrap.Code != exec.TrapFuelExhausted {
				t.Fatalf("fork: err = %v, want fuel exhaustion", forkErr)
			}
			if freshRes.Fuel != forkRes.Fuel {
				t.Errorf("fuel at trap: fresh=%d fork=%d", freshRes.Fuel, forkRes.Fuel)
			}
			for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
				if forkRes.Events.Get(ev) != freshRes.Events.Get(ev) {
					t.Errorf("event %v at trap: fresh=%d fork=%d", ev, freshRes.Events.Get(ev), forkRes.Events.Get(ev))
				}
			}
		})
	}
}

// constModule builds a wasm64 module exporting f() -> i64 const v.
func constModule(v uint64) *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 16, HasMax: true}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{{Op: wasm.OpI64Const, X: v}, {Op: wasm.OpEnd}}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	return m
}

// TestSnapshotLifecycleErrors pins the misuse surface: snapshots of
// closed instances, restores across modules, and restores across
// feature sets are errors, not corruption.
func TestSnapshotLifecycleErrors(t *testing.T) {
	m := constModule(7)
	inst, err := exec.NewInstance(m, exec.Config{Features: core.Features{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.SnapshotRestoreMode(); got != "copy" && got != "cow" {
		t.Errorf("SnapshotRestoreMode() = %q", got)
	}

	// Restoring into an instance of a different module must fail.
	other := constModule(8)
	oinst, err := exec.NewInstance(other, exec.Config{Features: core.Features{}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := oinst.RestoreFromSnapshot(snap, 3); err == nil {
		t.Error("restore across modules succeeded")
	}

	// Restoring under different features must fail.
	finst, err := exec.NewInstance(m, exec.Config{Features: core.Features{Sandbox: true, MTEMode: mte.ModeSync}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := finst.RestoreFromSnapshot(snap, 5); err == nil {
		t.Error("restore across feature sets succeeded")
	}

	inst.Close()
	if _, err := inst.Snapshot(); err == nil {
		t.Error("snapshot of closed instance succeeded")
	}
	if err := inst.RestoreFromSnapshot(snap, 6); err == nil {
		t.Error("restore into closed instance succeeded")
	}
}
