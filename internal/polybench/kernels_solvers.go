package polybench

// Solver and stencil kernels: trisolv, trmm, cholesky, durbin,
// jacobi-1d, jacobi-2d, seidel-2d.

func init() {
	register(Kernel{
		Name: "trisolv", TestN: 32, BenchN: 96,
		Source: prelude + initHelpers + `
double run(long n) {
    double* L = (double*)malloc(n * n * 8);
    double* b = (double*)malloc(n * 8);
    double* x = (double*)malloc(n * 8);
    for (long i = 0; i < n; i++) {
        b[i] = initV(i + 1, n) + 1.0;
        for (long j = 0; j < n; j++) {
            L[i * n + j] = initA(i, j, n);
        }
        L[i * n + i] = L[i * n + i] + 2.0;
    }
    for (long i = 0; i < n; i++) {
        double s = b[i];
        for (long j = 0; j < i; j++) { s -= L[i * n + j] * x[j]; }
        x[i] = s / L[i * n + i];
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += x[i]; }
    free((char*)L); free((char*)b); free((char*)x);
    return acc;
}`,
		Reference: func(n int) float64 {
			L := matA(n)
			b := make([]float64, n)
			x := make([]float64, n)
			for i := 0; i < n; i++ {
				b[i] = refInitV(i+1, n) + 1.0
				L[i*n+i] = L[i*n+i] + 2.0
			}
			for i := 0; i < n; i++ {
				s := b[i]
				for j := 0; j < i; j++ {
					s -= L[i*n+j] * x[j]
				}
				x[i] = s / L[i*n+i]
			}
			return sum(x)
		},
	})

	register(Kernel{
		Name: "trmm", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = B[i * n + j];
            for (long k = i + 1; k < n; k++) {
                s += A[k * n + i] * B[k * n + j];
            }
            B[i * n + j] = alpha * s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += B[i * n + j]; }
    }
    free((char*)A); free((char*)B);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B := matA(n), matB(n)
			alpha := 1.5
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := B[i*n+j]
					for k := i + 1; k < n; k++ {
						s += A[k*n+i] * B[k*n+j]
					}
					B[i*n+j] = alpha * s
				}
			}
			return sum(B)
		},
	})

	register(Kernel{
		Name: "cholesky", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
extern double sqrt(double x);
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n) * 0.1;
            if (i == j) { A[i * n + j] = A[i * n + j] + (double)n; }
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < i; j++) {
            double s = A[i * n + j];
            for (long k = 0; k < j; k++) { s -= A[i * n + k] * A[j * n + k]; }
            A[i * n + j] = s / A[j * n + j];
        }
        double d = A[i * n + i];
        for (long k = 0; k < i; k++) { d -= A[i * n + k] * A[i * n + k]; }
        A[i * n + i] = sqrt(d);
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j <= i; j++) { acc += A[i * n + j]; }
    }
    free((char*)A);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = refInitA(i, j, n) * 0.1
					if i == j {
						A[i*n+j] += float64(n)
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					s := A[i*n+j]
					for k := 0; k < j; k++ {
						s -= A[i*n+k] * A[j*n+k]
					}
					A[i*n+j] = s / A[j*n+j]
				}
				d := A[i*n+i]
				for k := 0; k < i; k++ {
					d -= A[i*n+k] * A[i*n+k]
				}
				A[i*n+i] = refSqrt(d)
			}
			acc := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					acc += A[i*n+j]
				}
			}
			return acc
		},
	})

	register(Kernel{
		Name: "durbin", TestN: 32, BenchN: 96,
		Source: prelude + initHelpers + `
double run(long n) {
    double* r = (double*)malloc(n * 8);
    double* y = (double*)malloc(n * 8);
    double* z = (double*)malloc(n * 8);
    for (long i = 0; i < n; i++) { r[i] = initV(i + 1, n) + 1.0; }
    y[0] = -r[0];
    double beta = 1.0;
    double alpha = -r[0];
    for (long k = 1; k < n; k++) {
        beta = (1.0 - alpha * alpha) * beta;
        double s = 0.0;
        for (long i = 0; i < k; i++) { s += r[k - i - 1] * y[i]; }
        alpha = -(r[k] + s) / beta;
        for (long i = 0; i < k; i++) { z[i] = y[i] + alpha * y[k - i - 1]; }
        for (long i = 0; i < k; i++) { y[i] = z[i]; }
        y[k] = alpha;
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += y[i]; }
    free((char*)r); free((char*)y); free((char*)z);
    return acc;
}`,
		Reference: func(n int) float64 {
			r := make([]float64, n)
			y := make([]float64, n)
			z := make([]float64, n)
			for i := 0; i < n; i++ {
				r[i] = refInitV(i+1, n) + 1.0
			}
			y[0] = -r[0]
			beta := 1.0
			alpha := -r[0]
			for k := 1; k < n; k++ {
				beta = (1.0 - alpha*alpha) * beta
				s := 0.0
				for i := 0; i < k; i++ {
					s += r[k-i-1] * y[i]
				}
				alpha = -(r[k] + s) / beta
				for i := 0; i < k; i++ {
					z[i] = y[i] + alpha*y[k-i-1]
				}
				for i := 0; i < k; i++ {
					y[i] = z[i]
				}
				y[k] = alpha
			}
			return sum(y)
		},
	})

	register(Kernel{
		Name: "jacobi-1d", TestN: 64, BenchN: 256,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * 8);
    double* B = (double*)malloc(n * 8);
    long tsteps = 10;
    for (long i = 0; i < n; i++) {
        A[i] = ((double)i + 2.0) / (double)n;
        B[i] = ((double)i + 3.0) / (double)n;
    }
    for (long t = 0; t < tsteps; t++) {
        for (long i = 1; i < n - 1; i++) {
            B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
        }
        for (long i = 1; i < n - 1; i++) {
            A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += A[i]; }
    free((char*)A); free((char*)B);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n)
			B := make([]float64, n)
			for i := 0; i < n; i++ {
				A[i] = (float64(i) + 2.0) / float64(n)
				B[i] = (float64(i) + 3.0) / float64(n)
			}
			for t := 0; t < 10; t++ {
				for i := 1; i < n-1; i++ {
					B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])
				}
				for i := 1; i < n-1; i++ {
					A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1])
				}
			}
			return sum(A)
		},
	})

	register(Kernel{
		Name: "jacobi-2d", TestN: 16, BenchN: 32,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    long tsteps = 6;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = ((double)i * ((double)j + 2.0)) / (double)n;
            B[i * n + j] = ((double)i * ((double)j + 3.0)) / (double)n;
        }
    }
    for (long t = 0; t < tsteps; t++) {
        for (long i = 1; i < n - 1; i++) {
            for (long j = 1; j < n - 1; j++) {
                B[i * n + j] = 0.2 * (A[i * n + j] + A[i * n + j - 1] + A[i * n + j + 1]
                    + A[(i + 1) * n + j] + A[(i - 1) * n + j]);
            }
        }
        for (long i = 1; i < n - 1; i++) {
            for (long j = 1; j < n - 1; j++) {
                A[i * n + j] = 0.2 * (B[i * n + j] + B[i * n + j - 1] + B[i * n + j + 1]
                    + B[(i + 1) * n + j] + B[(i - 1) * n + j]);
            }
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += A[i * n + j]; }
    }
    free((char*)A); free((char*)B);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n)
			B := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = (float64(i) * (float64(j) + 2.0)) / float64(n)
					B[i*n+j] = (float64(i) * (float64(j) + 3.0)) / float64(n)
				}
			}
			for t := 0; t < 6; t++ {
				for i := 1; i < n-1; i++ {
					for j := 1; j < n-1; j++ {
						B[i*n+j] = 0.2 * (A[i*n+j] + A[i*n+j-1] + A[i*n+j+1] +
							A[(i+1)*n+j] + A[(i-1)*n+j])
					}
				}
				for i := 1; i < n-1; i++ {
					for j := 1; j < n-1; j++ {
						A[i*n+j] = 0.2 * (B[i*n+j] + B[i*n+j-1] + B[i*n+j+1] +
							B[(i+1)*n+j] + B[(i-1)*n+j])
					}
				}
			}
			return sum(A)
		},
	})

	register(Kernel{
		Name: "seidel-2d", TestN: 16, BenchN: 32,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    long tsteps = 6;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = ((double)i * ((double)j + 2.0) + 2.0) / (double)n;
        }
    }
    for (long t = 0; t < tsteps; t++) {
        for (long i = 1; i < n - 1; i++) {
            for (long j = 1; j < n - 1; j++) {
                A[i * n + j] = (A[(i - 1) * n + j - 1] + A[(i - 1) * n + j] + A[(i - 1) * n + j + 1]
                    + A[i * n + j - 1] + A[i * n + j] + A[i * n + j + 1]
                    + A[(i + 1) * n + j - 1] + A[(i + 1) * n + j] + A[(i + 1) * n + j + 1]) / 9.0;
            }
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += A[i * n + j]; }
    }
    free((char*)A);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = (float64(i)*(float64(j)+2.0) + 2.0) / float64(n)
				}
			}
			for t := 0; t < 6; t++ {
				for i := 1; i < n-1; i++ {
					for j := 1; j < n-1; j++ {
						A[i*n+j] = (A[(i-1)*n+j-1] + A[(i-1)*n+j] + A[(i-1)*n+j+1] +
							A[i*n+j-1] + A[i*n+j] + A[i*n+j+1] +
							A[(i+1)*n+j-1] + A[(i+1)*n+j] + A[(i+1)*n+j+1]) / 9.0
					}
				}
			}
			return sum(A)
		},
	})
}
