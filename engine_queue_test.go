package cage

import (
	"fmt"
	"testing"
	"time"
)

// TestEngineQueuesAcrossModulesOnTagExhaustion is the regression for
// the ROADMAP item: under the combined configuration the process owns a
// single §7.4 sandbox tag. While module A's invocation holds it
// in-flight, an invocation of module B must queue — not surface
// core.ErrSandboxesExhausted — and complete once A's instance is
// checked back in.
func TestEngineQueuesAcrossModulesOnTagExhaustion(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()

	modA, err := eng.CompileSource(`long fa(long n) { return n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	modB, err := eng.CompileSource(`long fb(long n) { return n + 2; }`)
	if err != nil {
		t.Fatal(err)
	}

	holding := make(chan struct{})
	release := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		aDone <- eng.WithInstance(modA, func(inst *Instance) error {
			close(holding)
			<-release
			res, err := inst.Invoke("fa", 1)
			if err == nil && res[0] != 2 {
				err = fmt.Errorf("fa returned %d", res[0])
			}
			return err
		})
	}()
	<-holding

	bDone := make(chan error, 1)
	go func() {
		res, err := eng.Invoke(modB, "fb", 1)
		if err == nil && (len(res) != 1 || res[0] != 3) {
			err = fmt.Errorf("fb returned %v", res)
		}
		bDone <- err
	}()

	// B must queue while A pins the only tag.
	select {
	case err := <-bDone:
		t.Fatalf("Invoke(modB) returned while the tag was held: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-aDone; err != nil {
		t.Fatalf("module A: %v", err)
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("module B after queueing: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("module B still queued after the tag was freed")
	}
}

// TestRuntimeSharesLoweredProgram pins the compile→lower→cache→pool
// flow: every instance of one module under one runtime executes the
// same cached ir.Program, and repeat instantiations hit the cache.
func TestRuntimeSharesLoweredProgram(t *testing.T) {
	tc := NewToolchain(FullHardening())
	mod, err := tc.CompileSource(`long f(long n) { return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(Baseline64())
	a, err := rt.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := rt.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Raw().Program() != b.Raw().Program() {
		t.Error("instances of one module do not share a lowered program")
	}
	stats := rt.ProgramCacheStats()
	if stats.Misses != 1 || stats.Hits < 1 {
		t.Errorf("program cache stats = %+v, want 1 miss and >=1 hit", stats)
	}

	// A different configuration must lower separately.
	rt2 := NewRuntime(MemorySafetyOnly())
	c, err := rt2.Instantiate(mod)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Raw().Program() == a.Raw().Program() {
		t.Error("distinct configurations share one lowered program")
	}
}

// TestEngineContendedModules drives two modules from many goroutines
// under the 1-tag budget: every invocation must eventually succeed.
func TestEngineContendedModules(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	modA, err := eng.CompileSource(`long fa(long n) { return n * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	modB, err := eng.CompileSource(`long fb(long n) { return n * 3; }`)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			mod, fn, mul := modA, "fa", uint64(2)
			if w%2 == 1 {
				mod, fn, mul = modB, "fb", 3
			}
			for i := 0; i < 10; i++ {
				res, err := eng.Invoke(mod, fn, uint64(i))
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if res[0] != uint64(i)*mul {
					errs <- fmt.Errorf("worker %d: %s(%d) = %d", w, fn, i, res[0])
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
