package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cage/internal/mte"
	"cage/internal/pac"
	"cage/internal/ptrlayout"
)

// Features selects which Cage components are active for an instance
// (paper Table 3 configurations).
type Features struct {
	// MemSafety enables internal memory safety: segments and tag-checked
	// loads/stores.
	MemSafety bool
	// Sandbox enables MTE-based external sandboxing, replacing explicit
	// software bounds checks.
	Sandbox bool
	// PtrAuth enables i64.pointer_sign / i64.pointer_auth.
	PtrAuth bool
	// MTEMode is the tag-check mode; Cage uses synchronous checks so
	// violations trap before their effects are observable (paper §6.3).
	MTEMode mte.Mode
	// SpectreHarden models Swivel-style speculation mitigations in the
	// timing model: the lowering inserts fence barriers before indirect
	// branches and returns, and the executor charges a BTB flush at
	// every sandbox transition. Semantics are unchanged — only the
	// event/fuel accounting differs — so it does not participate in tag
	// policy derivation (NewPolicy ignores it).
	SpectreHarden bool
}

// CageAll returns the full Cage configuration (all features, sync MTE).
func CageAll() Features {
	return Features{MemSafety: true, Sandbox: true, PtrAuth: true, MTEMode: mte.ModeSync}
}

// RuntimeTag is the tag reserved for runtime (non-guest) memory.
const RuntimeTag uint8 = 0

// Policy is the tag-budget decision derived from a feature set
// (paper §6.4):
//
//   - external only: the runtime keeps tag 0, each sandbox owns one of
//     the 15 remaining tags, and untrusted indices have the whole tag
//     nibble (bits 59..56) masked off before address computation.
//   - internal only: tag 0 is reserved for guard slots and untagged
//     segments; tags 1..15 are the allocation pool (collision 1/15).
//   - combined: bit 56 (tag LSB) is the sandbox bit; the upper three tag
//     bits are the allocation pool within the sandbox. One tag of the 8
//     is reserved for guards, leaving 7 (collision 1/7), and only a
//     single sandbox fits alongside the runtime.
type Policy struct {
	Features Features
	// IRGExclude is the tag-exclusion mask for random tag generation.
	IRGExclude uint16
	// IndexMask has a 1 in every pointer bit that untrusted indices are
	// allowed to contribute (Fig. 13: tag bits owned by the runtime are
	// cleared from the index before adding the heap base).
	IndexMask uint64
	// MaxSandboxes is how many instances can coexist in one process.
	MaxSandboxes int
	// SandboxBit is the tag bit carrying sandbox identity in combined
	// mode (0 when unused).
	SandboxBit uint8
}

// NewPolicy derives the tag policy for a feature set.
func NewPolicy(f Features) Policy {
	p := Policy{Features: f, IndexMask: ^uint64(0), MaxSandboxes: 1 << 30}
	switch {
	case f.MemSafety && f.Sandbox:
		// Guest allocation tags: odd tags (sandbox bit set), excluding
		// the sandbox's own "untagged" representative (tag 1).
		p.IRGExclude = irgExcludeCombined
		p.IndexMask = ^(uint64(1) << ptrlayout.MTETagShift) // mask bit 56
		p.MaxSandboxes = 1
		p.SandboxBit = 1
	case f.Sandbox:
		p.IRGExclude = 1 << RuntimeTag
		p.IndexMask = ^ptrlayout.MTETagMask // mask bits 56..59
		p.MaxSandboxes = mte.NumTags - 1    // 15 sandboxes + runtime
	case f.MemSafety:
		p.IRGExclude = 1 << RuntimeTag // zero tag reserved for guards
		p.MaxSandboxes = 1 << 30       // sandboxing not tag-limited
	}
	return p
}

// irgExcludeCombined excludes even tags (runtime side of the sandbox
// bit) plus tag 1, the sandbox's guard/untagged representative.
const irgExcludeCombined uint16 = 0x5555 | 1<<1

// GuardTag returns the tag treated as "untagged" for guest segments:
// tag 0 normally, tag 1 when the sandbox bit is in use.
func (p Policy) GuardTag() uint8 {
	if p.SandboxBit != 0 {
		return 1
	}
	return RuntimeTag
}

// CollisionProbability is the chance two adjacent instrumented
// allocations draw the same tag (paper §7.4: 1/15, rising to 1/7 when
// MTE also carries the sandbox).
func (p Policy) CollisionProbability() float64 {
	n := p.UsableTags()
	if n == 0 {
		return 0
	}
	return 1 / float64(n)
}

// UsableTags counts the allocation tags available to the guest.
func (p Policy) UsableTags() int {
	n := 0
	for t := 0; t < mte.NumTags; t++ {
		if p.IRGExclude&(1<<t) == 0 {
			n++
		}
	}
	return n
}

// MaskIndex applies the Fig. 13 index mask so untrusted indices cannot
// smuggle tag bits into the effective address.
func (p Policy) MaskIndex(index uint64) uint64 { return index & p.IndexMask }

// SandboxAllocator hands out sandbox tags to instances (paper §6.4:
// "the runtime assigns a tag to each instance on module instantiation").
//
// The allocator is safe for concurrent use: an engine that instantiates
// and retires instances from many goroutines shares one allocator per
// process, so Acquire/Release serialize on an internal mutex.
type SandboxAllocator struct {
	mu    sync.Mutex
	pol   Policy
	refs  [mte.NumTags]int // live instances per tag (tag reuse may stack)
	count int
	// reuse implements the paper's §6.4 future-work extension: tags may
	// be reused across sandboxes whose linear memories occupy disjoint,
	// guard-separated address ranges, lifting the 15-per-process limit.
	reuse   bool
	nextRot uint8
	// freed broadcasts tag releases to blocked acquirers: it is closed
	// (and replaced lazily) on every Release that frees budget, the
	// channel-shaped condition variable AcquireContext waits on.
	freed chan struct{}
}

// EnableTagReuse lifts the sandbox limit by cycling tags across
// instances. Safe only when each instance's reachable address range is
// disjoint from every other instance with the same tag and separated by
// guard pages — which holds in this runtime because every instance owns
// a private linear-memory mapping (the combination of guard pages and
// memory tagging the paper's §6.4 suggests).
func (a *SandboxAllocator) EnableTagReuse() {
	a.mu.Lock()
	a.reuse = true
	a.mu.Unlock()
}

// ErrSandboxesExhausted is returned when all sandbox tags are taken
// (paper §7.4: at most 15 sandboxes per process).
var ErrSandboxesExhausted = errors.New("core: no free sandbox tags (max 15 per process)")

// NewSandboxAllocator creates an allocator for the policy.
func NewSandboxAllocator(pol Policy) *SandboxAllocator {
	return &SandboxAllocator{pol: pol}
}

// Acquire reserves a sandbox tag for a new instance, failing with
// ErrSandboxesExhausted when the budget is spent. Use AcquireContext to
// queue for a tag instead.
func (a *SandboxAllocator) Acquire() (uint8, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acquireLocked()
}

// AcquireContext reserves a sandbox tag, blocking while the §7.4 budget
// is exhausted until another instance releases one (each Release wakes
// the waiters, condition-variable style) or ctx ends — pass a context
// with a deadline to bound the wait.
func (a *SandboxAllocator) AcquireContext(ctx context.Context) (uint8, error) {
	for {
		a.mu.Lock()
		tag, err := a.acquireLocked()
		if err == nil {
			a.mu.Unlock()
			return tag, nil
		}
		ch := a.releasedLocked()
		a.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// Released returns a channel closed at the next Release that frees
// budget. Engines that hold tags in pooled instances wait on it (plus
// their own checkin signal) before retrying a failed instantiation.
func (a *SandboxAllocator) Released() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releasedLocked()
}

func (a *SandboxAllocator) releasedLocked() chan struct{} {
	if a.freed == nil {
		a.freed = make(chan struct{})
	}
	return a.freed
}

func (a *SandboxAllocator) acquireLocked() (uint8, error) {
	if !a.pol.Features.Sandbox {
		return RuntimeTag, nil
	}
	if a.pol.SandboxBit != 0 {
		// Combined mode: the single sandbox is the odd-tag half.
		if a.refs[a.pol.SandboxBit] >= 1 && !a.reuse {
			return 0, ErrSandboxesExhausted
		}
		a.refs[a.pol.SandboxBit]++
		a.count++
		return a.pol.SandboxBit, nil
	}
	if a.count < a.pol.MaxSandboxes {
		for t := uint8(1); t < mte.NumTags; t++ {
			if a.refs[t] == 0 {
				a.refs[t]++
				a.count++
				return t, nil
			}
		}
	}
	if a.reuse {
		// Extended mode: rotate through the guest tags; address-range
		// disjointness keeps same-tag sandboxes apart.
		a.nextRot = a.nextRot%(mte.NumTags-1) + 1
		a.refs[a.nextRot]++
		a.count++
		return a.nextRot, nil
	}
	return 0, ErrSandboxesExhausted
}

// Release returns a sandbox tag to the pool, making it available to a
// later Acquire. Releasing the runtime tag or a tag with no live owner
// is a no-op.
func (a *SandboxAllocator) Release(tag uint8) {
	if tag == RuntimeTag || tag >= mte.NumTags {
		return
	}
	a.mu.Lock()
	if a.refs[tag] > 0 {
		a.refs[tag]--
		a.count--
		if a.freed != nil {
			close(a.freed) // wake every blocked acquirer
			a.freed = nil
		}
	}
	a.mu.Unlock()
}

// InUse reports the number of live sandboxes.
func (a *SandboxAllocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// SegmentError describes a failed segment operation; the engine turns it
// into a wasm trap (Fig. 11 eqs. 6, 8, 10).
type SegmentError struct {
	Op   string
	Addr uint64
	Len  uint64
	Msg  string
}

// Error implements the error interface.
func (e *SegmentError) Error() string {
	return fmt.Sprintf("cage: %s at 0x%x (+%d): %s", e.Op, e.Addr, e.Len, e.Msg)
}

// Segments implements the segment instructions over a tag memory
// (paper Fig. 11, eqs. 5–10).
type Segments struct {
	tags *mte.Memory
	pol  Policy
	// data returns the current linear-memory bytes (the slice may move
	// on memory.grow, hence the indirection).
	data func() []byte
	// limit returns the guest-visible memory size; segments may never
	// cover runtime memory beyond it. Nil means the whole tag space.
	limit func() uint64
	// GranulesTagged counts tag-store work for the cost model.
	GranulesTagged uint64
	// TagsGenerated counts irg-style random tag draws.
	TagsGenerated uint64
}

// NewSegments wires a segment manager over tag storage and the linear
// memory accessor.
func NewSegments(tags *mte.Memory, pol Policy, data func() []byte) *Segments {
	return &Segments{tags: tags, pol: pol, data: data}
}

// SetLimit restricts segments to the first limit() bytes (the guest
// linear memory), keeping runtime memory out of reach.
func (s *Segments) SetLimit(limit func() uint64) { s.limit = limit }

// Tags exposes the underlying tag memory.
func (s *Segments) Tags() *mte.Memory { return s.tags }

// Policy returns the active tag policy.
func (s *Segments) Policy() Policy { return s.pol }

func (s *Segments) check(op string, addr, length uint64) error {
	if addr%mte.GranuleSize != 0 || length%mte.GranuleSize != 0 {
		return &SegmentError{Op: op, Addr: addr, Len: length,
			Msg: "segment not aligned to 16 bytes"}
	}
	bound := s.tags.Size()
	if s.limit != nil {
		bound = s.limit()
	}
	if addr+length < addr || addr+length > bound {
		return &SegmentError{Op: op, Addr: addr, Len: length,
			Msg: "segment outside linear memory"}
	}
	return nil
}

// New implements segment.new: creates a zeroed segment of length bytes
// at untag(ptr)+offset with a fresh random tag, returning the tagged
// pointer (Fig. 11 eq. 5; trap conditions eq. 6).
func (s *Segments) New(ptr, length, offset uint64) (uint64, error) {
	addr := ptrlayout.Address(ptrlayout.StripTag(ptr)) + offset
	if err := s.check("segment.new", addr, length); err != nil {
		return 0, err
	}
	// irg with per-draw exclusion: rule out the block's current tag
	// and — because segment.free stamps NextTag(owner) — the previous
	// owner's tag recovered via PrevTag. A stale pointer from the
	// immediately preceding lifetime therefore always mismatches
	// (Scudo-style previous-tag exclusion); temporal safety for older
	// generations stays probabilistic (§7.4).
	extra := uint16(0)
	if cur, uniform := s.tags.RangeTag(addr, length); uniform {
		extra = 1<<cur | 1<<s.tags.PrevTag(cur)
	}
	tag := s.tags.RandomTagExcluding(extra)
	s.TagsGenerated++
	if err := s.tags.SetTagRange(addr, length, tag); err != nil {
		return 0, &SegmentError{Op: "segment.new", Addr: addr, Len: length, Msg: err.Error()}
	}
	s.GranulesTagged += length / mte.GranuleSize
	buf := s.data()
	for i := addr; i < addr+length && i < uint64(len(buf)); i++ {
		buf[i] = 0
	}
	return ptrlayout.WithTag(addr, tag), nil
}

// SetTag implements segment.set_tag: transfers ownership of the region
// at untag(ptr)+offset to the tag carried by tagged (Fig. 11 eq. 7).
func (s *Segments) SetTag(ptr, tagged, length, offset uint64) error {
	addr := ptrlayout.Address(ptrlayout.StripTag(ptr)) + offset
	if err := s.check("segment.set_tag", addr, length); err != nil {
		return err
	}
	tag := ptrlayout.Tag(tagged)
	if err := s.tags.SetTagRange(addr, length, tag); err != nil {
		return &SegmentError{Op: "segment.set_tag", Addr: addr, Len: length, Msg: err.Error()}
	}
	s.GranulesTagged += length / mte.GranuleSize
	return nil
}

// Free implements segment.free: verifies the caller's tagged pointer
// still owns the segment (catching double-free) and retags the region
// with a fresh, different tag so stale pointers fault (Fig. 11 eqs.
// 9–10; paper §4.2).
func (s *Segments) Free(tagged, length, offset uint64) error {
	addr := ptrlayout.Address(tagged) + offset
	if err := s.check("segment.free", addr, length); err != nil {
		return err
	}
	ptrTag := ptrlayout.Tag(tagged)
	memTag, uniform := s.tags.RangeTag(addr, length)
	if !uniform || memTag != ptrTag {
		return &SegmentError{Op: "segment.free", Addr: addr, Len: length,
			Msg: fmt.Sprintf("pointer tag %#x does not own segment (memory tag %#x) — double free or invalid free", ptrTag, memTag)}
	}
	// free_tag: deterministically the owner's successor tag. It always
	// differs from the owner's — every stale access between free and
	// reuse traps — and it encodes the owner (PrevTag recovers it), so
	// segment.new can exclude the previous lifetime's tag on reuse.
	freeTag := s.tags.NextTag(ptrTag)
	s.TagsGenerated++
	if err := s.tags.SetTagRange(addr, length, freeTag); err != nil {
		return &SegmentError{Op: "segment.free", Addr: addr, Len: length, Msg: err.Error()}
	}
	s.GranulesTagged += length / mte.GranuleSize
	return nil
}

// InstanceKeys is the per-instance pointer-authentication state: PAC
// keys are per-process, so Cage derives per-instance behaviour from a
// random modifier (paper §6.3).
type InstanceKeys struct {
	Config   pac.Config
	Key      pac.Key
	Modifier uint64
}

// NewInstanceKeys mints the PAC state for a new instance.
func NewInstanceKeys(processKey pac.Key, modifier uint64) InstanceKeys {
	return InstanceKeys{Config: pac.DefaultConfig, Key: processKey, Modifier: modifier}
}

// Sign implements i64.pointer_sign (Fig. 11 eq. 11).
func (k InstanceKeys) Sign(ptr uint64) uint64 {
	return k.Config.Sign(ptr, k.Modifier, k.Key)
}

// Auth implements i64.pointer_auth (Fig. 11 eqs. 12–13); the error is a
// trap.
func (k InstanceKeys) Auth(ptr uint64) (uint64, error) {
	return k.Config.Auth(ptr, k.Modifier, k.Key)
}
