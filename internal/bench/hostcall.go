package bench

import (
	"fmt"
	"time"

	"cage/internal/codegen"
	"cage/internal/exec"
	"cage/internal/minicc"
	"cage/internal/wasm"
)

// Host-call microbenchmark for the -json report: the per-crossing cost
// of a guest→host call through the typed adapter vs the raw slot, the
// same comparison BenchmarkHostCall makes under `go test -bench`.

// HostCallRecord prices one guest→host crossing.
type HostCallRecord struct {
	// Calls is the number of host calls per measured guest invocation.
	Calls int `json:"calls"`
	// TypedNsPerCall is the per-call wall time with the typed adapter
	// (signature derived from the Go function, args marshalled).
	TypedNsPerCall float64 `json:"typed_ns_per_call"`
	// RawNsPerCall is the per-call wall time with the raw uint64 slot.
	RawNsPerCall float64 `json:"raw_ns_per_call"`
}

// hostCallSource loops n host calls through env.host_add.
const hostCallSource = `
extern long host_add(long a, long b);
long run(long n) {
    long s = 0;
    for (long i = 0; i < n; i++) { s = host_add(s, i); }
    return s;
}`

// measureHostCalls builds the loop module against the given env module
// and times `rounds` invocations of run(calls), returning the best
// per-call time.
func measureHostCalls(env *exec.HostModule, calls, rounds int) (float64, error) {
	file, err := minicc.Parse(hostCallSource)
	if err != nil {
		return 0, err
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		return 0, err
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true})
	if err != nil {
		return 0, err
	}
	inst, err := exec.NewInstance(m, exec.Config{HostModules: []*exec.HostModule{env}})
	if err != nil {
		return 0, err
	}
	want := uint64(calls) * uint64(calls-1) / 2
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds+1; r++ { // +1 warm-up round, not timed below
		t0 := time.Now()
		res, err := inst.Invoke("run", uint64(calls))
		elapsed := time.Since(t0)
		if err != nil {
			return 0, err
		}
		if res[0] != want {
			return 0, fmt.Errorf("bench: host_add sum = %d, want %d", res[0], want)
		}
		if r > 0 && elapsed < best {
			best = elapsed
		}
	}
	return float64(best.Nanoseconds()) / float64(calls), nil
}

// MeasureHostCall runs the typed-vs-raw host-call comparison.
func MeasureHostCall(quick bool) (*HostCallRecord, error) {
	calls, rounds := 4096, 5
	if quick {
		calls, rounds = 512, 2
	}
	typedEnv := exec.NewHostModule("env")
	exec.Func2(typedEnv, "host_add", func(_ *exec.HostContext, a, x int64) (int64, error) {
		return a + x, nil
	})
	rawEnv := exec.NewHostModule("env")
	rawEnv.Func("host_add",
		wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}},
		func(_ *exec.HostContext, args []uint64) ([]uint64, error) {
			return []uint64{args[0] + args[1]}, nil
		})
	rec := &HostCallRecord{Calls: calls}
	var err error
	if rec.TypedNsPerCall, err = measureHostCalls(typedEnv, calls, rounds); err != nil {
		return nil, err
	}
	if rec.RawNsPerCall, err = measureHostCalls(rawEnv, calls, rounds); err != nil {
		return nil, err
	}
	return rec, nil
}
