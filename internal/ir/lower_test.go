package ir

import (
	"strings"
	"testing"

	"cage/internal/wasm"
)

func lowerBody(t *testing.T, cfg Config, typ wasm.FuncType, locals []wasm.ValType, body ...wasm.Instr) Func {
	t.Helper()
	m := &wasm.Module{
		Types: []wasm.FuncType{typ},
		Funcs: []wasm.Function{{TypeIdx: 0, Locals: locals, Body: body}},
	}
	p, err := Lower(m, cfg)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return p.Funcs[0]
}

func checkCode(t *testing.T, fn Func, want []string) {
	t.Helper()
	var got []string
	for _, in := range fn.Code {
		got = append(got, in.String())
	}
	if len(got) != len(want) {
		t.Fatalf("lowered to %d instructions, want %d:\n got: %s\nwant: %s",
			len(got), len(want), strings.Join(got, " | "), strings.Join(want, " | "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLowerLoopInBlock is the codegen's for-loop shape: a loop nested
// in a block, exit via br_if to the block end, back-edge via br to the
// loop header. The golden stream pins absolute branch targets.
func TestLowerLoopInBlock(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}}, nil,
		wasm.Block(wasm.BlockVoid),
		wasm.Loop(wasm.BlockVoid),
		wasm.LocalGet(0),
		wasm.Op(wasm.OpI64Eqz),
		wasm.BrIf(1), // exit the block
		wasm.LocalGet(0),
		wasm.I64Const(1),
		wasm.Op(wasm.OpI64Sub),
		wasm.LocalSet(0),
		wasm.Br(0), // loop back-edge
		wasm.Op(wasm.OpEnd),
		wasm.Op(wasm.OpEnd),
		wasm.LocalGet(0),
		wasm.Op(wasm.OpEnd),
	)
	checkCode(t, fn, []string{
		"local.get 0",
		"i64.eqz",
		"br_if ->8 keep=0 arity=0",
		"local.get 0",
		"const 0x1",
		"i64.sub",
		"local.set 0",
		"br ->0 keep=0 arity=0",
		"local.get 0",
		"ret_end arity=1",
	})
	if fn.MaxStack != 2 {
		t.Errorf("MaxStack = %d, want 2", fn.MaxStack)
	}
	if fn.NumParams != 1 || fn.NumResults != 1 || fn.NumLocals != 0 {
		t.Errorf("signature = (%d,%d,%d), want (1,1,0)", fn.NumParams, fn.NumResults, fn.NumLocals)
	}
}

// TestLowerIfElse pins the conditional shape: if lowers to a br_ifz to
// the else arm, the then-arm ends with an uncounted goto over it.
func TestLowerIfElse(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}}, nil,
		wasm.LocalGet(0),
		wasm.If(wasm.BlockI64),
		wasm.I64Const(1),
		wasm.Op(wasm.OpElse),
		wasm.I64Const(2),
		wasm.Op(wasm.OpEnd),
		wasm.Op(wasm.OpEnd),
	)
	checkCode(t, fn, []string{
		"local.get 0",
		"br_ifz ->4 keep=0 arity=0",
		"const 0x1",
		"goto ->5",
		"const 0x2",
		"ret_end arity=1",
	})
}

// TestLowerIfNoElse: with no else arm the false edge lands after the
// end.
func TestLowerIfNoElse(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}},
		[]wasm.ValType{wasm.I64},
		wasm.LocalGet(0),
		wasm.If(wasm.BlockVoid),
		wasm.I64Const(7),
		wasm.LocalSet(1),
		wasm.Op(wasm.OpEnd),
		wasm.LocalGet(1),
		wasm.Op(wasm.OpEnd),
	)
	checkCode(t, fn, []string{
		"local.get 0",
		"br_ifz ->4 keep=0 arity=0",
		"const 0x7",
		"local.set 1",
		"local.get 1",
		"ret_end arity=1",
	})
}

// TestLowerBrTable pins br_table resolution: entries through nested
// blocks get their own keep/arity/PC, loops resolve to the header.
func TestLowerBrTable(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}}, nil,
		wasm.Block(wasm.BlockVoid),
		wasm.Block(wasm.BlockVoid),
		wasm.LocalGet(0),
		wasm.BrTable([]uint32{0, 1}, 1),
		wasm.Op(wasm.OpEnd),
		wasm.I64Const(10),
		wasm.Op(wasm.OpReturn),
		wasm.Op(wasm.OpEnd),
		wasm.I64Const(20),
		wasm.Op(wasm.OpEnd),
	)
	checkCode(t, fn, []string{
		"local.get 0",
		"br_table ->2(keep=0,arity=0) ->4(keep=0,arity=0) default=->4(keep=0,arity=0)",
		"const 0xa",
		"return arity=1",
		"const 0x14",
		"ret_end arity=1",
	})
}

// TestLowerDeadCode: instructions after an unconditional branch are
// never emitted; the stream stays dense.
func TestLowerDeadCode(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{}, nil,
		wasm.Block(wasm.BlockVoid),
		wasm.Br(0),
		wasm.I64Const(5), // dead
		wasm.Op(wasm.OpDrop),
		wasm.Op(wasm.OpEnd),
		wasm.Op(wasm.OpEnd),
	)
	checkCode(t, fn, []string{
		"br ->1 keep=0 arity=0",
		"ret_end arity=0",
	})
}

// TestLowerBranchCarriesResult: a br out of a value-producing block
// records arity 1 and the height to truncate to.
func TestLowerBranchCarriesResult(t *testing.T) {
	fn := lowerBody(t, Config{Mode: ModeBounds64},
		wasm.FuncType{Results: []wasm.ValType{wasm.I64}}, nil,
		wasm.I64Const(99), // padding under the block
		wasm.Block(wasm.BlockI64),
		wasm.I64Const(42),
		wasm.Br(0),
		wasm.Op(wasm.OpEnd),
		wasm.Op(wasm.OpSelect), // dead filler never emitted? no — reachable via end
		wasm.Op(wasm.OpEnd),
	)
	// Stack at block entry is 1 (the padding const), so the branch
	// keeps height 1 and carries 1 value; select then consumes
	// [padding, blockresult, ...] — it is only here to prove depth
	// bookkeeping, not to run.
	_ = fn
	want := "br ->3 keep=1 arity=1"
	if got := fn.Code[2].String(); got != want {
		t.Errorf("branch = %q, want %q", got, want)
	}
}

// TestLowerMemorySpecialization: the same load/store body lowers to
// mode-specific opcodes chosen by the config.
func TestLowerMemorySpecialization(t *testing.T) {
	cases := []struct {
		cfg   Config
		load  Op
		store Op
	}{
		{Config{Mode: ModeGuard32}, OpLoadG32, OpStoreG32},
		{Config{Mode: ModeGuard32, SkipBounds: true}, OpLoadG32NC, OpStoreG32NC},
		{Config{Mode: ModeBounds64}, OpLoadB64, OpStoreB64},
		{Config{Mode: ModeBounds64, MemSafety: true}, OpLoadB64Tag, OpStoreB64Tag},
		{Config{Mode: ModeBounds64, SkipBounds: true}, OpLoadB64NC, OpStoreB64NC},
		{Config{Mode: ModeBounds64, SkipBounds: true, MemSafety: true}, OpLoadB64NCTag, OpStoreB64NCTag},
		{Config{Mode: ModeMTE64}, OpLoadMTE, OpStoreMTE},
		{Config{Mode: ModeMTE64, SkipBounds: true}, OpLoadMTENC, OpStoreMTENC},
	}
	for _, tc := range cases {
		vt := wasm.I64
		loadOp, storeOp := wasm.OpI64Load, wasm.OpI64Store
		if tc.cfg.Mode == ModeGuard32 {
			vt = wasm.I32
			loadOp, storeOp = wasm.OpI32Load, wasm.OpI32Store
		}
		fn := lowerBody(t, tc.cfg,
			wasm.FuncType{Params: []wasm.ValType{vt}}, nil,
			wasm.LocalGet(0),
			wasm.Load(loadOp, 8),
			wasm.Op(wasm.OpDrop),
			wasm.LocalGet(0),
			wasm.LocalGet(0),
			wasm.Store(storeOp, 16),
			wasm.Op(wasm.OpEnd),
		)
		if got := fn.Code[1].Op; got != tc.load {
			t.Errorf("%+v: load lowered to %v, want %v", tc.cfg, got, tc.load)
		}
		if got := fn.Code[5].Op; got != tc.store {
			t.Errorf("%+v: store lowered to %v, want %v", tc.cfg, got, tc.store)
		}
		if off := fn.Code[1].A; off != 8 {
			t.Errorf("load offset = %d, want 8", off)
		}
		if sz := MemSize(fn.Code[1].B); sz != loadOp.AccessSize() {
			t.Errorf("load size = %d, want %d", sz, loadOp.AccessSize())
		}
		if op := MemOp(fn.Code[1].B); op != loadOp {
			t.Errorf("load op = %v, want %v", op, loadOp)
		}
	}
}

// TestLowerPtrAuthSpecialization: pointer instructions keep their cost
// event but lower to no-ops when PAC is off.
func TestLowerPtrAuthSpecialization(t *testing.T) {
	body := []wasm.Instr{
		wasm.LocalGet(0),
		wasm.PointerSign(),
		wasm.PointerAuth(),
		wasm.Op(wasm.OpDrop),
		wasm.Op(wasm.OpEnd),
	}
	typ := wasm.FuncType{Params: []wasm.ValType{wasm.I64}}
	on := lowerBody(t, Config{Mode: ModeBounds64, PtrAuth: true}, typ, nil, body...)
	if on.Code[1].Op != OpPtrSign || on.Code[2].Op != OpPtrAuth {
		t.Errorf("PtrAuth on: got %v, %v", on.Code[1].Op, on.Code[2].Op)
	}
	off := lowerBody(t, Config{Mode: ModeBounds64}, typ, nil, body...)
	if off.Code[1].Op != OpPtrSignNop || off.Code[2].Op != OpPtrAuthNop {
		t.Errorf("PtrAuth off: got %v, %v", off.Code[1].Op, off.Code[2].Op)
	}
}

// TestLowerRejectsMalformed: lowering errors (not panics) on broken
// bodies, since caches may lower ahead of validation.
func TestLowerRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		typ  wasm.FuncType
		body []wasm.Instr
	}{
		{"unbalanced-block", wasm.FuncType{}, []wasm.Instr{
			wasm.Block(wasm.BlockVoid), wasm.Op(wasm.OpEnd),
		}},
		{"branch-too-deep", wasm.FuncType{}, []wasm.Instr{
			wasm.Br(7), wasm.Op(wasm.OpEnd),
		}},
		{"stack-underflow", wasm.FuncType{}, []wasm.Instr{
			wasm.Op(wasm.OpDrop), wasm.Op(wasm.OpEnd),
		}},
		{"call-out-of-range", wasm.FuncType{}, []wasm.Instr{
			wasm.Call(42), wasm.Op(wasm.OpEnd),
		}},
		{"missing-end", wasm.FuncType{}, []wasm.Instr{
			wasm.Op(wasm.OpNop),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &wasm.Module{
				Types: []wasm.FuncType{tc.typ},
				Funcs: []wasm.Function{{TypeIdx: 0, Body: tc.body}},
			}
			if _, err := Lower(m, Config{}); err == nil {
				t.Error("Lower accepted a malformed body")
			}
		})
	}
}

// TestProgramMatches covers the compatibility gate instances apply to
// shared cached programs.
func TestProgramMatches(t *testing.T) {
	m := &wasm.Module{
		Types: []wasm.FuncType{{}},
		Funcs: []wasm.Function{{TypeIdx: 0, Body: []wasm.Instr{wasm.Op(wasm.OpEnd)}}},
	}
	cfg := Config{Mode: ModeBounds64, MemSafety: true}
	p, err := Lower(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(m, cfg) {
		t.Error("program does not match its own module/config")
	}
	if p.Matches(m, Config{Mode: ModeBounds64}) {
		t.Error("program matched a different config")
	}
	m2 := &wasm.Module{Types: m.Types, Funcs: append([]wasm.Function{}, m.Funcs[0], m.Funcs[0])}
	if p.Matches(m2, cfg) {
		t.Error("program matched a module with a different function count")
	}
	if (*Program)(nil).Matches(m, cfg) {
		t.Error("nil program matched")
	}
}
